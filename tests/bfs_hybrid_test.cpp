#include <gtest/gtest.h>

#include "core/bfs.hpp"
#include "core/validate.hpp"
#include "gen/rmat.hpp"
#include "gen/uniform.hpp"
#include "graph/builder.hpp"
#include "test_util.hpp"

namespace sge {
namespace {

std::uint64_t total_scanned(const BfsResult& r) {
    std::uint64_t total = 0;
    for (const auto& s : r.level_stats) total += s.edges_scanned;
    return total;
}

CsrGraph dense_uniform() {
    UniformParams params;
    params.num_vertices = 8192;
    params.degree = 16;
    params.seed = 4;
    return csr_from_edges(generate_uniform(params));
}

BfsOptions hybrid_options(int threads = 4) {
    BfsOptions opts;
    opts.engine = BfsEngine::kHybrid;
    opts.threads = threads;
    opts.topology = Topology::emulate(1, threads, 1);
    opts.collect_stats = true;
    return opts;
}

TEST(BfsHybrid, BottomUpSkipsMostEdgeWork) {
    // On a dense low-diameter graph the explosive middle levels run
    // bottom-up and stop at the first frontier parent: total scanned
    // edges must come out well below the top-down engine's (which scans
    // every edge of every visited vertex).
    const CsrGraph g = dense_uniform();

    BfsOptions bitmap = hybrid_options();
    bitmap.engine = BfsEngine::kBitmap;
    const BfsResult top_down = bfs(g, 0, bitmap);

    const BfsResult hybrid = bfs(g, 0, hybrid_options());
    EXPECT_TRUE(validate_bfs_tree(g, 0, hybrid).ok);
    EXPECT_EQ(hybrid.vertices_visited, top_down.vertices_visited);
    EXPECT_LT(total_scanned(hybrid), total_scanned(top_down) / 2)
        << "direction optimization saved no work";
    // The rate convention stays comparable.
    EXPECT_EQ(hybrid.edges_traversed, top_down.edges_traversed);
}

TEST(BfsHybrid, TinyAlphaDegeneratesToTopDown) {
    // The flip condition is next_frontier_degree > unexplored/alpha, so
    // alpha -> 0 drives the threshold to infinity: pure top-down.
    const CsrGraph g = dense_uniform();
    BfsOptions opts = hybrid_options();
    opts.hybrid_alpha = 1e-18;
    const BfsResult r = bfs(g, 0, opts);

    BfsOptions bitmap = hybrid_options();
    bitmap.engine = BfsEngine::kBitmap;
    const BfsResult top_down = bfs(g, 0, bitmap);

    EXPECT_EQ(total_scanned(r), total_scanned(top_down));
    test::expect_equivalent(top_down, r);
}

TEST(BfsHybrid, HighDiameterGraphStaysTopDown) {
    // A path's frontier is one vertex wide — below the n/beta width
    // guard — so the traversal never leaves top-down and scans each arc
    // exactly once. (Without the guard, the drained unexplored-edge
    // pool would trigger useless O(n) bottom-up sweeps near the tail.)
    const CsrGraph g = test::path_graph(2000);
    const BfsResult r = bfs(g, 0, hybrid_options());
    EXPECT_TRUE(validate_bfs_tree(g, 0, r).ok);
    EXPECT_EQ(r.num_levels, 2000u);
    EXPECT_EQ(total_scanned(r), 2u * 1999);
}

TEST(BfsHybrid, TinyAlphaOnPathScansEachArcOnce) {
    const CsrGraph g = test::path_graph(2000);
    BfsOptions opts = hybrid_options();
    opts.hybrid_alpha = 1e-18;  // pin top-down
    const BfsResult r = bfs(g, 0, opts);
    EXPECT_EQ(total_scanned(r), 2u * 1999);
}

TEST(BfsHybrid, AggressiveAlphaStillCorrect) {
    const CsrGraph g = dense_uniform();
    BfsOptions opts = hybrid_options();
    opts.hybrid_alpha = 1e18;  // flip to bottom-up immediately
    opts.hybrid_beta = 1e18;   // and never flip back (threshold n/beta -> 0)
    const BfsResult r = bfs(g, 0, opts);
    EXPECT_TRUE(validate_bfs_tree(g, 0, r).ok);

    BfsOptions serial;
    serial.engine = BfsEngine::kSerial;
    test::expect_equivalent(bfs(g, 0, serial), r);
}

TEST(BfsHybrid, RmatFromHubAndFromLeaf) {
    RmatParams params;
    params.scale = 13;
    params.num_edges = 1 << 17;
    params.seed = 6;
    const CsrGraph g = csr_from_edges(generate_rmat(params));

    BfsOptions serial;
    serial.engine = BfsEngine::kSerial;

    // Hub-ish root (id 0 pre-permutation is the heaviest quadrant) and
    // an arbitrary low-degree root.
    for (const vertex_t root : {vertex_t{0}, vertex_t{4099}}) {
        if (g.degree(root) == 0) continue;
        const BfsResult r = bfs(g, root, hybrid_options(8));
        EXPECT_TRUE(validate_bfs_tree(g, root, r).ok);
        test::expect_equivalent(bfs(g, root, serial), r);
    }
}

TEST(BfsHybrid, DisconnectedGraph) {
    const CsrGraph g = test::two_cliques(32);
    const BfsResult r = bfs(g, 5, hybrid_options());
    EXPECT_EQ(r.vertices_visited, 32u);
    EXPECT_TRUE(validate_bfs_tree(g, 5, r).ok);
}

TEST(BfsHybrid, RepeatedRunsAgree) {
    const CsrGraph g = dense_uniform();
    BfsRunner runner(hybrid_options(8));
    const BfsResult first = runner.run(g, 9);
    for (int i = 0; i < 3; ++i)
        test::expect_equivalent(first, runner.run(g, 9));
}

}  // namespace
}  // namespace sge
