#include "analytics/diameter.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

namespace sge {

namespace {

/// Farthest reached vertex and its level in a BFS result.
std::pair<vertex_t, level_t> farthest(const BfsResult& r) {
    vertex_t far = kInvalidVertex;
    level_t depth = 0;
    for (vertex_t v = 0; v < r.level.size(); ++v) {
        if (r.level[v] == kInvalidLevel) continue;
        if (far == kInvalidVertex || r.level[v] > depth) {
            far = v;
            depth = r.level[v];
        }
    }
    return {far, depth};
}

}  // namespace

DiameterEstimate estimate_diameter(const CsrGraph& g, vertex_t start,
                                   const BfsOptions& options,
                                   std::uint32_t max_sweeps) {
    BfsOptions opts = options;
    opts.compute_levels = true;  // eccentricities come from the levels
    BfsRunner runner(opts);
    return estimate_diameter(g, start, runner, max_sweeps);
}

DiameterEstimate estimate_diameter(const CsrGraph& g, vertex_t start,
                                   BfsRunner& runner,
                                   std::uint32_t max_sweeps) {
    if (start >= g.num_vertices())
        throw std::out_of_range("estimate_diameter: start vertex out of range");
    if (!runner.options().compute_levels)
        throw std::invalid_argument(
            "estimate_diameter: runner must have compute_levels enabled");

    DiameterEstimate estimate;
    estimate.upper_bound = std::numeric_limits<std::uint32_t>::max();

    BfsResult r;  // reused across sweeps (run_into keeps its buffers)
    vertex_t cursor = start;
    for (std::uint32_t sweep = 0; sweep < max_sweeps; ++sweep) {
        runner.run_into(r, g, cursor);
        ++estimate.sweeps;
        const auto [far, ecc] = farthest(r);

        if (ecc > estimate.lower_bound ||
            estimate.peripheral_vertex == kInvalidVertex) {
            estimate.lower_bound = ecc;
            estimate.peripheral_vertex = far;
        }
        // Eccentricity(v) <= diam <= 2 * ecc(v) for any v (triangle
        // inequality through v): keep the tightest upper bound seen.
        estimate.upper_bound = std::min(estimate.upper_bound, 2 * ecc);

        if (estimate.exact()) break;
        if (far == cursor || ecc < estimate.lower_bound) break;  // converged
        if (ecc == estimate.lower_bound && sweep > 0 && far == estimate.peripheral_vertex)
            break;  // no progress
        cursor = far;
    }
    return estimate;
}

}  // namespace sge
