#pragma once

// Internal shared machinery for the BFS engines. Not part of the public
// API surface; include only from src/core/*.cpp and tests.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "concurrency/spin_barrier.hpp"
#include "concurrency/versioned_bitmap.hpp"
#include "concurrency/work_queue.hpp"
#include "core/bfs.hpp"
#include "core/frontier.hpp"
#include "core/frontier_compact.hpp"
#include "runtime/cacheline.hpp"
#include "runtime/env.hpp"
#include "runtime/obs.hpp"
#include "runtime/stats.hpp"
#include "runtime/timer.hpp"

namespace sge::detail {

/// Effective watchdog deadline for a run: the per-run option wins;
/// otherwise the process-wide SGE_BFS_WATCHDOG_MS default applies
/// (0/unset = disabled).
inline double resolve_watchdog_seconds(const BfsOptions& options) {
    if (options.watchdog_seconds > 0.0) return options.watchdog_seconds;
    const std::int64_t ms = env_int("SGE_BFS_WATCHDOG_MS", 0);
    return ms > 0 ? static_cast<double>(ms) / 1000.0 : 0.0;
}

/// Per-run watchdog: converts a stalled level step into a diagnostic
/// error instead of a hang.
///
/// Armed with a deadline, it sleeps on a condition variable; if the run
/// finishes first, disarm() (or the destructor) stops it for free. If
/// the deadline passes, it snapshots the engine-supplied diagnostics
/// and aborts the run's barrier, which releases every worker with
/// `arrive_and_wait() == false`; the engine then observes fired() and
/// throws BfsDeadlineError. The diagnose callback runs concurrently
/// with the workers, so it must only read atomic state (queue cursors,
/// channel counters) — the snapshot is momentary by design.
class LevelWatchdog {
  public:
    LevelWatchdog(double deadline_seconds, SpinBarrier& barrier,
                  std::function<std::string()> diagnose)
        : deadline_seconds_(deadline_seconds),
          barrier_(&barrier),
          diagnose_(std::move(diagnose)) {
        if (deadline_seconds_ > 0.0)
            thread_ = std::thread([this] { watch(); });
    }

    LevelWatchdog(const LevelWatchdog&) = delete;
    LevelWatchdog& operator=(const LevelWatchdog&) = delete;

    ~LevelWatchdog() { disarm(); }

    /// Stops the watchdog and joins its thread. Idempotent. After
    /// disarm() returns, fired()/report() are stable.
    void disarm() noexcept {
        {
            std::lock_guard guard(mutex_);
            stop_ = true;
        }
        cv_.notify_all();
        if (thread_.joinable()) thread_.join();
    }

    /// True when the deadline expired and the barrier was aborted.
    /// Reliable only after disarm().
    [[nodiscard]] bool fired() const noexcept { return fired_; }

    /// The diagnostic captured at expiry (empty unless fired()).
    [[nodiscard]] const std::string& report() const noexcept { return report_; }

  private:
    void watch() {
        std::unique_lock lock(mutex_);
        const auto deadline = std::chrono::duration<double>(deadline_seconds_);
        if (cv_.wait_for(lock, deadline, [this] { return stop_; })) return;
        fired_ = true;
        try {
            report_ = diagnose_ ? diagnose_() : std::string();
        } catch (...) {
            report_ = "(diagnostics unavailable)";
        }
        runtime_warnings().watchdog_fires.fetch_add(1,
                                                    std::memory_order_relaxed);
        barrier_->abort();
    }

    const double deadline_seconds_;
    SpinBarrier* const barrier_;
    const std::function<std::string()> diagnose_;
    std::mutex mutex_;
    std::condition_variable cv_;
    std::thread thread_;
    bool stop_ = false;
    bool fired_ = false;      // written by the watchdog thread only;
    std::string report_;      // read after disarm() joins it
};

/// Shared epilogue: disarm the watchdog and convert a firing into the
/// documented error. Call immediately after team.run() returns.
/// `level_reached`/`vertices_settled` are the partial progress to carry
/// in the error (pass the run's shared counters when available).
inline void finish_watchdog(LevelWatchdog& watchdog, const char* engine,
                            std::uint32_t level_reached = 0,
                            std::uint64_t vertices_settled = 0) {
    watchdog.disarm();
    if (watchdog.fired())
        throw BfsDeadlineError(std::string(engine) +
                                   ": watchdog deadline exceeded; " +
                                   watchdog.report(),
                               level_reached, vertices_settled,
                               /*cancelled=*/false);
}

/// Thread 0's once-per-level cancellation check (free when no token is
/// threaded through the options). Engines call this in the end-of-level
/// bookkeeping window; a fired token makes them mark the run done so
/// every worker exits at the next barrier.
inline bool poll_cancel(const BfsOptions& options) noexcept {
    return options.cancel != nullptr && options.cancel->poll();
}

/// Shared epilogue for cooperative cancellation: call after team.run()
/// (and after finish_watchdog) when the run ended because a CancelToken
/// fired. Throws the documented error carrying the partial progress.
[[noreturn]] inline void throw_cancelled(const char* engine,
                                         std::uint32_t level_reached,
                                         std::uint64_t vertices_settled) {
    throw BfsDeadlineError(
        std::string(engine) + ": cancelled by CancelToken at level " +
            std::to_string(level_reached) + " (" +
            std::to_string(vertices_settled) + " vertices settled)",
        level_reached, vertices_settled, /*cancelled=*/true);
}

/// Shared per-level accumulation slot. Workers fetch_add their local
/// counters into it once per level; the engine copies the totals into
/// BfsResult::level_stats after the run.
///
/// Slots live in a std::deque (LevelAccumLog below): thread 0 grows the
/// log in its end-of-level bookkeeping window, and because deque growth
/// never relocates existing elements, workers may keep a reference to
/// the current level's slot across that window — which is how barrier
/// wait time lands in the *right* level (the wait happens after the
/// scan-counter flush).
struct LevelAccum {
    std::uint64_t frontier_size = 0;  // written by thread 0 only
    double seconds = 0.0;             // written by thread 0 only
    std::atomic<std::uint64_t> edges_scanned{0};
    std::atomic<std::uint64_t> bitmap_checks{0};
    std::atomic<std::uint64_t> atomic_ops{0};
    std::atomic<std::uint64_t> remote_tuples{0};
    // Extended counters (zero unless SGE_OBS builds collect them).
    std::atomic<std::uint64_t> bitmap_skips{0};
    std::atomic<std::uint64_t> atomic_wins{0};
    std::atomic<std::uint64_t> batches_pushed{0};
    std::atomic<std::uint64_t> batches_popped{0};
    std::atomic<std::uint64_t> batch_occupancy[kBatchOccupancyBuckets]{};
    std::atomic<std::uint64_t> barrier_wait_ns{0};
    std::atomic<std::uint64_t> chunks_claimed{0};
    std::atomic<std::uint64_t> chunks_stolen{0};
    std::atomic<std::uint64_t> max_thread_edges{0};  // max, not sum
    std::atomic<std::uint64_t> prefix_sum_ns{0};
    std::atomic<std::uint64_t> compact_writes{0};
    std::atomic<std::uint64_t> simd_words_scanned{0};
    std::atomic<std::uint64_t> bytes_decoded{0};
    std::atomic<std::uint64_t> decode_ns{0};

    LevelAccum() = default;
    LevelAccum(const LevelAccum&) = delete;
    LevelAccum& operator=(const LevelAccum&) = delete;

    /// Rewinds a slot for reuse across queries (workspace-owned logs
    /// keep their slots allocated; the values must not leak between
    /// runs). Relaxed: called between barriers / before the run.
    void reset() noexcept {
        frontier_size = 0;
        seconds = 0.0;
        edges_scanned.store(0, std::memory_order_relaxed);
        bitmap_checks.store(0, std::memory_order_relaxed);
        atomic_ops.store(0, std::memory_order_relaxed);
        remote_tuples.store(0, std::memory_order_relaxed);
        bitmap_skips.store(0, std::memory_order_relaxed);
        atomic_wins.store(0, std::memory_order_relaxed);
        batches_pushed.store(0, std::memory_order_relaxed);
        batches_popped.store(0, std::memory_order_relaxed);
        for (std::size_t b = 0; b < kBatchOccupancyBuckets; ++b)
            batch_occupancy[b].store(0, std::memory_order_relaxed);
        barrier_wait_ns.store(0, std::memory_order_relaxed);
        chunks_claimed.store(0, std::memory_order_relaxed);
        chunks_stolen.store(0, std::memory_order_relaxed);
        max_thread_edges.store(0, std::memory_order_relaxed);
        prefix_sum_ns.store(0, std::memory_order_relaxed);
        compact_writes.store(0, std::memory_order_relaxed);
        simd_words_scanned.store(0, std::memory_order_relaxed);
        bytes_decoded.store(0, std::memory_order_relaxed);
        decode_ns.store(0, std::memory_order_relaxed);
    }
};

/// The per-run log of LevelAccum slots. A deque, not a vector, so
/// emplace_back (thread 0, between barriers) never invalidates the slot
/// references other workers hold while timing their barrier waits.
using LevelAccumLog = std::deque<LevelAccum>;

/// Slot for level `depth`, reusing (and rewinding) a slot left behind by
/// a previous query on the same workspace-owned log, or growing the log
/// by one. Engines acquire slots sequentially (depth 0 in the prologue,
/// depth+1 in thread 0's end-of-level window), so `depth` is at most
/// log.size(). Stale slots beyond this run's depth are harmless —
/// copy_level_stats only copies the levels that actually ran.
inline LevelAccum& acquire_level_slot(LevelAccumLog& log, std::size_t depth) {
    if (depth < log.size()) {
        log[depth].reset();
        return log[depth];
    }
    log.emplace_back();
    return log.back();
}

/// Worker-local counters, flushed into a LevelAccum once per level so
/// the hot loop touches no shared cache lines. Cache-line aligned: the
/// engines keep one per worker stack frame, and alignment guarantees
/// two workers' blocks never share a line even if an engine ever moves
/// them into a shared array.
///
/// The first four fields are always counted (the engines' own
/// accounting — edges_traversed — depends on them, and they predate the
/// obs subsystem). The extended fields below cost one local increment
/// each and compile to nothing when SGE_OBS is off: every increment
/// funnels through the count_* helpers, which are `if constexpr` gated
/// on obs::compiled_in().
struct alignas(kCacheLineSize) ThreadCounters {
    std::uint64_t edges_scanned = 0;
    std::uint64_t bitmap_checks = 0;
    std::uint64_t atomic_ops = 0;
    std::uint64_t remote_tuples = 0;
    // Extended (SGE_OBS) counters.
    std::uint64_t bitmap_skips = 0;
    std::uint64_t atomic_wins = 0;
    std::uint64_t batches_pushed = 0;
    std::uint64_t batches_popped = 0;
    std::uint64_t batch_occupancy[kBatchOccupancyBuckets] = {};
    std::uint64_t chunks_claimed = 0;
    std::uint64_t chunks_stolen = 0;
    std::uint64_t simd_words_scanned = 0;
    std::uint64_t bytes_decoded = 0;
    std::uint64_t decode_ns = 0;
    std::uint64_t decode_calls = 0;  // sampling clock; never flushed

    /// A frontier chunk claimed from the scheduler (stolen when it came
    /// from a same-socket sibling's range).
    void count_chunk(bool stolen) noexcept {
        if constexpr (obs::compiled_in()) {
            ++chunks_claimed;
            if (stolen) ++chunks_stolen;
        }
    }

    /// A neighbour filtered by the plain (unlocked) visited test.
    void count_skip() noexcept {
        if constexpr (obs::compiled_in()) ++bitmap_skips;
    }

    /// A visited claim that succeeded (this worker became the parent).
    void count_win() noexcept {
        if constexpr (obs::compiled_in()) ++atomic_wins;
    }

    /// A channel batch of `size` items flushed from a staging buffer of
    /// `capacity`.
    void count_batch_push(std::size_t size, std::size_t capacity) noexcept {
        if constexpr (obs::compiled_in()) {
            ++batches_pushed;
            ++batch_occupancy[batch_occupancy_bucket(size, capacity)];
        }
    }

    /// `words` bitmap / lane-mask words examined by a word-at-a-time
    /// scan (simd_scan.hpp), vector-skipped or ctz-iterated alike.
    void count_simd_words(std::uint64_t words) noexcept {
        if constexpr (obs::compiled_in()) simd_words_scanned += words;
        (void)words;
    }

    /// A non-empty channel drain of `size` items (capacity = the drain
    /// buffer size). Pops do not feed the occupancy histogram — it
    /// characterises the producer-side batching the paper optimizes.
    void count_batch_pop(std::size_t size) noexcept {
        if constexpr (obs::compiled_in()) {
            ++batches_popped;
            (void)size;
        }
    }

    void flush_into(LevelAccum& slot) noexcept {
        slot.edges_scanned.fetch_add(edges_scanned, std::memory_order_relaxed);
        slot.bitmap_checks.fetch_add(bitmap_checks, std::memory_order_relaxed);
        slot.atomic_ops.fetch_add(atomic_ops, std::memory_order_relaxed);
        slot.remote_tuples.fetch_add(remote_tuples, std::memory_order_relaxed);
        if constexpr (obs::compiled_in()) {
            slot.bitmap_skips.fetch_add(bitmap_skips,
                                        std::memory_order_relaxed);
            slot.atomic_wins.fetch_add(atomic_wins, std::memory_order_relaxed);
            slot.batches_pushed.fetch_add(batches_pushed,
                                          std::memory_order_relaxed);
            slot.batches_popped.fetch_add(batches_popped,
                                          std::memory_order_relaxed);
            for (std::size_t b = 0; b < kBatchOccupancyBuckets; ++b)
                slot.batch_occupancy[b].fetch_add(batch_occupancy[b],
                                                  std::memory_order_relaxed);
            slot.chunks_claimed.fetch_add(chunks_claimed,
                                          std::memory_order_relaxed);
            slot.chunks_stolen.fetch_add(chunks_stolen,
                                         std::memory_order_relaxed);
            slot.simd_words_scanned.fetch_add(simd_words_scanned,
                                              std::memory_order_relaxed);
            slot.bytes_decoded.fetch_add(bytes_decoded,
                                         std::memory_order_relaxed);
            slot.decode_ns.fetch_add(decode_ns, std::memory_order_relaxed);
            atomic_accumulate_max(slot.max_thread_edges, edges_scanned);
        }
        *this = ThreadCounters{};
    }

  private:
    /// Relaxed atomic max — the edge-spread accumulator. Loops only
    /// while another thread is concurrently raising the same slot.
    static void atomic_accumulate_max(std::atomic<std::uint64_t>& slot,
                                      std::uint64_t value) noexcept {
        std::uint64_t seen = slot.load(std::memory_order_relaxed);
        while (seen < value &&
               !slot.compare_exchange_weak(seen, value,
                                           std::memory_order_relaxed)) {
        }
    }
};

/// Barrier arrival that optionally times the wait into `slot` (the
/// load-imbalance signal: how long this worker idled for stragglers).
/// `timed` is false when stats are off, so un-instrumented runs pay
/// only the branch.
inline bool timed_wait(SpinBarrier& barrier, LevelAccum& slot, bool timed) {
    if constexpr (obs::compiled_in()) {
        if (timed) {
            WallTimer wait;
            const bool ok = barrier.arrive_and_wait();
            slot.barrier_wait_ns.fetch_add(wait.nanoseconds(),
                                           std::memory_order_relaxed);
            return ok;
        }
    }
    (void)slot;
    (void)timed;
    return barrier.arrive_and_wait();
}

/// One worker's compact-mode copy-out step: exclusive prefix offset +
/// contiguous memcpy of its staged discoveries into `dst` (the target
/// queue's slots). Times the step into the level slot's prefix_sum_ns
/// and counts the vertices into compact_writes (SGE_OBS builds; the
/// slot is written directly because the worker's ThreadCounters were
/// already flushed before the level barrier). Call between the barrier
/// that follows publish() and the barrier that precedes set_size().
inline void compact_copy_out(const FrontierCompactor& fc, int tid,
                             vertex_t* dst, LevelAccum& slot) {
    if constexpr (obs::compiled_in()) {
        WallTimer timer;
        const std::size_t copied = fc.copy_out(tid, dst);
        slot.prefix_sum_ns.fetch_add(timer.nanoseconds(),
                                     std::memory_order_relaxed);
        slot.compact_writes.fetch_add(copied, std::memory_order_relaxed);
        return;
    }
    (void)slot;
    fc.copy_out(tid, dst);
}

/// Slot-direct variant of ThreadCounters::count_simd_words for sweeps
/// that run after the worker's counters were flushed (the hybrid
/// harvest's two passes).
inline void note_simd_words(LevelAccum& slot, std::uint64_t words) noexcept {
    if constexpr (obs::compiled_in())
        slot.simd_words_scanned.fetch_add(words, std::memory_order_relaxed);
    (void)slot;
    (void)words;
}

/// Slot-direct compact_writes/prefix_sum_ns accounting for harvest-style
/// compaction that writes queue slots directly instead of copy_out.
inline void note_compaction(LevelAccum& slot, std::uint64_t ns,
                            std::uint64_t writes) noexcept {
    if constexpr (obs::compiled_in()) {
        slot.prefix_sum_ns.fetch_add(ns, std::memory_order_relaxed);
        slot.compact_writes.fetch_add(writes, std::memory_order_relaxed);
    }
    (void)slot;
    (void)ns;
    (void)writes;
}

/// Per-thread level-span log for the Chrome trace export. Each worker
/// appends into its own cache-padded vector (no synchronisation in the
/// hot path beyond the two timer reads); collect_into() concatenates
/// after the team has joined. Construct with enabled=false (e.g. stats
/// off or SGE_OBS compiled out) to make record() free.
class SpanRecorder {
  public:
    SpanRecorder(int threads, bool enabled)
        : enabled_(enabled && obs::compiled_in()) {
        if (enabled_) logs_.resize(static_cast<std::size_t>(threads));
    }

    [[nodiscard]] bool enabled() const noexcept { return enabled_; }

    /// Timestamp against the traversal epoch — free when disabled, so
    /// engines can call it unconditionally at level boundaries.
    [[nodiscard]] std::uint64_t now(const WallTimer& epoch) const noexcept {
        return enabled_ ? epoch.nanoseconds() : 0;
    }

    void record(int tid, std::uint32_t level, std::uint64_t start_ns,
                std::uint64_t end_ns) {
        if (!enabled_) return;
        logs_[static_cast<std::size_t>(tid)].value.push_back(
            BfsThreadSpan{tid, level, start_ns, end_ns});
    }

    /// Moves every worker's spans into result.thread_spans (ordered by
    /// thread, then level). Call after the parallel region has joined.
    void collect_into(BfsResult& result) {
        if (!enabled_) return;
        std::size_t total = 0;
        for (const auto& log : logs_) total += log.value.size();
        result.thread_spans.reserve(total);
        for (auto& log : logs_)
            result.thread_spans.insert(result.thread_spans.end(),
                                       log.value.begin(), log.value.end());
    }

  private:
    bool enabled_;
    std::vector<CachePadded<std::vector<BfsThreadSpan>>> logs_;
};

/// Adjacency-scan lookahead distance (in neighbours) for the visited /
/// claim word prefetch — far enough to cover a demand miss, near enough
/// that the line is still resident when the scan catches up.
inline constexpr std::size_t kVisitedPrefetchDistance = 8;

template <class Graph>
inline void check_root(const Graph& g, vertex_t root) {
    if (root >= g.num_vertices())
        throw std::out_of_range("bfs: root vertex out of range");
}

// ---------------------------------------------------------------------
// Accessor-generic adjacency scans (docs/ALGORITHMS.md "Compressed
// adjacency"). One engine body serves both CSR backends: `if constexpr`
// on Graph::kCompressed picks the raw span walk (with the visited-word
// lookahead prefetch) or the sequential varint decode (where lookahead
// ids do not exist before they are decoded).
// ---------------------------------------------------------------------

/// Decode-cost sampling period. Timing every decode call would cost two
/// clock reads (~40 ns) against a ~30 ns decode of a degree-16 row, so
/// the scan helpers time every 64th call and scale by 64: decode_ns is
/// a statistical estimate with per-level error bounded by the sampling,
/// while bytes_decoded stays exact (a plain add on every call).
inline constexpr std::uint64_t kDecodeSampleEvery = 64;

/// Full adjacency scan of `u`: calls `fn(w)` per neighbour, counts the
/// scanned edges into `tc.edges_scanned`, and on the compressed backend
/// also accounts bytes_decoded (always) and sampled decode_ns (SGE_OBS
/// builds). `hint(w)` is the plain backend's lookahead prefetch —
/// called kVisitedPrefetchDistance neighbours ahead of `fn` so the
/// visited/claim word is resident by the time the scan reaches it; pass
/// a no-op lambda for engines that do not want it.
template <class Graph, class Hint, class Fn>
inline void scan_adjacency(const Graph& g, vertex_t u, ThreadCounters& tc,
                           Hint&& hint, Fn&& fn) {
    if constexpr (Graph::kCompressed) {
        (void)hint;  // decode order is sequential; no ids to look ahead to
        tc.edges_scanned += g.degree(u);
        if constexpr (obs::compiled_in()) {
            std::size_t bytes = 0;
            if (tc.decode_calls++ % kDecodeSampleEvery == 0) {
                WallTimer timer;
                bytes = g.neighbors_for_each(u, fn);
                tc.decode_ns += timer.nanoseconds() * kDecodeSampleEvery;
            } else {
                bytes = g.neighbors_for_each(u, fn);
            }
            tc.bytes_decoded += bytes;
        } else {
            g.neighbors_for_each(u, fn);
        }
    } else {
        const auto adj = g.neighbors(u);
        tc.edges_scanned += adj.size();
        for (std::size_t j = 0; j < adj.size(); ++j) {
            if (j + kVisitedPrefetchDistance < adj.size())
                hint(adj[j + kVisitedPrefetchDistance]);
            fn(adj[j]);
        }
    }
}

/// Early-exit adjacency scan for the bottom-up probe: `fn(w)` returns
/// true to continue, false to stop (a parent was found). Edges are
/// counted per neighbour actually examined — the early exit is the
/// point — and on the compressed backend the bytes consumed up to the
/// stop feed bytes_decoded.
template <class Graph, class Fn>
inline void scan_adjacency_until(const Graph& g, vertex_t v,
                                 ThreadCounters& tc, Fn&& fn) {
    if constexpr (Graph::kCompressed) {
        const auto counted = [&tc, &fn](vertex_t w) {
            ++tc.edges_scanned;
            return fn(w);
        };
        if constexpr (obs::compiled_in()) {
            std::size_t bytes = 0;
            if (tc.decode_calls++ % kDecodeSampleEvery == 0) {
                WallTimer timer;
                bytes = g.neighbors_for_each_until(v, counted);
                tc.decode_ns += timer.nanoseconds() * kDecodeSampleEvery;
            } else {
                bytes = g.neighbors_for_each_until(v, counted);
            }
            tc.bytes_decoded += bytes;
        } else {
            g.neighbors_for_each_until(v, counted);
        }
    } else {
        for (const vertex_t w : g.neighbors(v)) {
            ++tc.edges_scanned;
            if (!fn(w)) break;
        }
    }
}

/// Frontier-ahead prefetch hook: hands a freshly built next frontier to
/// the paged backend's async prefetcher, so the stripe I/O for level
/// d+1's rows overlaps the level-d barrier and bookkeeping (the FlashR
/// SAFS overlap). Detected by a requires-expression on the `kPaged`
/// backend's prefetch_frontier(); for the in-memory backends the call
/// compiles away entirely. One caller per engine — the thread that owns
/// the end-of-level window (tid 0 / the serial loop), right after the
/// next queue's contents are final.
template <class Graph>
inline void prefetch_next_frontier(const Graph& g, const vertex_t* items,
                                   std::size_t count) {
    if constexpr (requires { g.prefetch_frontier(items, count); }) {
        g.prefetch_frontier(items, count);
    }
}

/// Rewinds a (possibly reused) BfsResult for a fresh run: the dense
/// arrays are resized to `n` — a no-op on back-to-back queries over the
/// same graph, which is the whole point of run_into — and the scalars
/// and logs cleared. The arrays are NOT sentinel-filled here: the
/// parallel engines write every slot exactly once (claimed vertices by
/// their winner, unreached vertices by the post-traversal
/// fill_unreached sweep).
inline void reset_result(BfsResult& result, vertex_t n, bool levels) {
    result.parent.resize(n);
    if (levels)
        result.level.resize(n);
    else
        result.level.clear();
    result.vertices_visited = 0;
    result.edges_traversed = 0;
    result.num_levels = 0;
    result.seconds = 0.0;
    result.level_stats.clear();
    result.thread_spans.clear();
}

/// Post-traversal sweep writing the unreached sentinels into [lo, hi):
/// the replacement for the old O(n) pre-initialisation pass. Reads the
/// visited bitmap and writes only the slots no winner claimed, so on a
/// fully-reached graph it is a read-only scan of the (cache-resident)
/// bitmap.
inline void fill_unreached(const VersionedBitmap& visited, std::size_t lo,
                           std::size_t hi, vertex_t* parent,
                           level_t* level) noexcept {
    for (std::size_t v = lo; v < hi; ++v) {
        if (!visited.test(v)) {
            parent[v] = kInvalidVertex;
            if (level != nullptr) level[v] = kInvalidLevel;
        }
    }
}

/// Copies accumulated per-level slots into `out` (dropping the trailing
/// slot engines pre-create for a level that never ran).
inline void copy_level_stats(std::vector<BfsLevelStats>& out,
                             const LevelAccumLog& slots,
                             std::uint32_t levels_run) {
    out.clear();
    out.reserve(levels_run);
    for (std::uint32_t d = 0; d < levels_run && d < slots.size(); ++d) {
        const LevelAccum& a = slots[d];
        BfsLevelStats s;
        s.frontier_size = a.frontier_size;
        s.edges_scanned = a.edges_scanned.load(std::memory_order_relaxed);
        s.bitmap_checks = a.bitmap_checks.load(std::memory_order_relaxed);
        s.atomic_ops = a.atomic_ops.load(std::memory_order_relaxed);
        s.remote_tuples = a.remote_tuples.load(std::memory_order_relaxed);
        s.seconds = a.seconds;
        s.bitmap_skips = a.bitmap_skips.load(std::memory_order_relaxed);
        s.atomic_wins = a.atomic_wins.load(std::memory_order_relaxed);
        s.batches_pushed = a.batches_pushed.load(std::memory_order_relaxed);
        s.batches_popped = a.batches_popped.load(std::memory_order_relaxed);
        for (std::size_t b = 0; b < kBatchOccupancyBuckets; ++b)
            s.batch_occupancy[b] =
                a.batch_occupancy[b].load(std::memory_order_relaxed);
        s.barrier_wait_ns = a.barrier_wait_ns.load(std::memory_order_relaxed);
        s.chunks_claimed = a.chunks_claimed.load(std::memory_order_relaxed);
        s.chunks_stolen = a.chunks_stolen.load(std::memory_order_relaxed);
        s.max_thread_edges =
            a.max_thread_edges.load(std::memory_order_relaxed);
        s.prefix_sum_ns = a.prefix_sum_ns.load(std::memory_order_relaxed);
        s.compact_writes = a.compact_writes.load(std::memory_order_relaxed);
        s.simd_words_scanned =
            a.simd_words_scanned.load(std::memory_order_relaxed);
        s.bytes_decoded = a.bytes_decoded.load(std::memory_order_relaxed);
        s.decode_ns = a.decode_ns.load(std::memory_order_relaxed);
        out.push_back(s);
    }
}

inline void copy_level_stats(BfsResult& result, const LevelAccumLog& slots,
                             std::uint32_t levels_run) {
    copy_level_stats(result.level_stats, slots, levels_run);
}

/// Splits [0, n) into `parts` near-equal chunks; returns chunk `index`.
inline std::pair<std::size_t, std::size_t> split_range(std::size_t n, int parts,
                                                       int index) noexcept {
    const std::size_t base = n / static_cast<std::size_t>(parts);
    const std::size_t extra = n % static_cast<std::size_t>(parts);
    const auto i = static_cast<std::size_t>(index);
    const std::size_t begin = i * base + (i < extra ? i : extra);
    const std::size_t size = base + (i < extra ? 1 : 0);
    return {begin, begin + size};
}

// ---------------------------------------------------------------------
// Edge-aware frontier scheduling (docs/PERF_MODEL.md "Load balance").
// ---------------------------------------------------------------------

/// Weighted plans target this many chunks per claimant: enough slack
/// that dynamic claiming (and stealing) can rebalance a ragged tail,
/// few enough that cursor traffic stays a rounding error next to the
/// per-chunk edge work.
inline constexpr std::size_t kChunksPerClaimant = 16;

/// Effective kHybrid bottom-up claim granularity: the explicit option
/// wins; otherwise n / (threads * 64) clamped to [64, 4096] — coarse
/// enough to amortise the cursor on big graphs, fine enough that small
/// graphs still yield several chunks per thread.
inline std::size_t resolve_bottomup_chunk(const BfsOptions& options,
                                          std::size_t n, int threads) noexcept {
    if (options.bottomup_chunk > 0) return options.bottomup_chunk;
    const std::size_t derived = n / (static_cast<std::size_t>(threads) * 64);
    return derived < 64 ? 64 : (derived > 4096 ? 4096 : derived);
}

/// Logical socket of every worker, in team order — the WorkQueue's
/// steal-domain map.
inline std::vector<int> team_socket_map(const ThreadTeam& team) {
    std::vector<int> sockets(static_cast<std::size_t>(team.size()));
    for (int t = 0; t < team.size(); ++t)
        sockets[static_cast<std::size_t>(t)] = team.socket_of(t);
    return sockets;
}

/// Plans `wq` over the `count` vertices at `items` for `policy`:
/// fixed `chunk_size` vertex chunks (kStatic) or degree-balanced cuts
/// from the CSR offsets (kEdgeWeighted / kStealing, the latter dealt
/// into per-claimant ranges). Weight is out-degree + 1 so zero-degree
/// vertices still advance the cut. Single-threaded; publish via a
/// barrier before claiming.
template <class Graph>
inline void plan_frontier(WorkQueue& wq, const vertex_t* items,
                          std::size_t count, const Graph& g,
                          SchedulePolicy policy, std::size_t chunk_size) {
    if (policy == SchedulePolicy::kStatic) {
        wq.plan_static(count, chunk_size);
        return;
    }
    const std::size_t chunks =
        static_cast<std::size_t>(wq.claimants()) * kChunksPerClaimant;
    wq.plan_weighted(count, chunks, policy == SchedulePolicy::kStealing,
                     [items, &g](std::size_t i) {
                         return static_cast<std::uint64_t>(
                                    g.degree(items[i])) + 1;
                     });
}

/// Plans `wq` over the whole vertex range [0, n) — the hybrid engine's
/// bottom-up sweep and MS-BFS's dense scan, where the "frontier" is
/// every vertex and the chunk item IS the vertex id.
template <class Graph>
inline void plan_vertex_range(WorkQueue& wq, std::size_t n, const Graph& g,
                              SchedulePolicy policy, std::size_t chunk_size) {
    if (policy == SchedulePolicy::kStatic) {
        wq.plan_static(n, chunk_size);
        return;
    }
    const std::size_t chunks =
        static_cast<std::size_t>(wq.claimants()) * kChunksPerClaimant;
    wq.plan_weighted(n, chunks, policy == SchedulePolicy::kStealing,
                     [&g](std::size_t v) {
                         return static_cast<std::uint64_t>(
                                    g.degree(static_cast<vertex_t>(v))) + 1;
                     });
}

}  // namespace sge::detail
