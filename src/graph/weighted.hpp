#pragma once

#include <cstdint>

#include "graph/csr_graph.hpp"

namespace sge {

/// Edge weight. 32-bit unsigned keeps the weight array the same size as
/// the target array (memory traffic parity with the BFS layout).
using weight_t = std::uint32_t;

/// A CSR graph plus a parallel per-arc weight array: weights()[e] is the
/// weight of the arc targets()[e]. Built on top of CsrGraph so every
/// unweighted algorithm (BFS, components, ...) runs on the structure
/// unchanged, while weighted searches (uniform-cost/Dijkstra,
/// delta-stepping) read the weights in lockstep with the adjacency scan.
class WeightedCsrGraph {
  public:
    WeightedCsrGraph() = default;

    /// Takes ownership; `weights.size()` must equal `graph.num_edges()`.
    WeightedCsrGraph(CsrGraph graph, AlignedBuffer<weight_t> weights);

    [[nodiscard]] const CsrGraph& graph() const noexcept { return graph_; }
    [[nodiscard]] vertex_t num_vertices() const noexcept {
        return graph_.num_vertices();
    }
    [[nodiscard]] edge_offset_t num_edges() const noexcept {
        return graph_.num_edges();
    }

    [[nodiscard]] std::span<const vertex_t> neighbors(vertex_t v) const noexcept {
        return graph_.neighbors(v);
    }

    /// Weights of v's adjacency, aligned index-for-index with neighbors(v).
    [[nodiscard]] std::span<const weight_t> weights(vertex_t v) const noexcept {
        const auto offsets = graph_.offsets();
        return {weights_.data() + offsets[v],
                static_cast<std::size_t>(offsets[v + 1] - offsets[v])};
    }

    [[nodiscard]] std::span<const weight_t> all_weights() const noexcept {
        return weights_.span();
    }

  private:
    CsrGraph graph_;
    AlignedBuffer<weight_t> weights_;
};

/// Attaches pseudo-random integer weights in [min_weight, max_weight] to
/// every arc of `graph`. Symmetric arcs get *matching* weights (the
/// weight of (u,v) equals that of (v,u)) so shortest paths on the
/// builder's undirected graphs are well defined; this is achieved by
/// hashing the unordered endpoint pair, so it needs no edge lookup.
WeightedCsrGraph with_random_weights(CsrGraph graph, weight_t min_weight,
                                     weight_t max_weight, std::uint64_t seed);

}  // namespace sge
