#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>

#include "graph/csr_compressed.hpp"
#include "graph/csr_graph.hpp"
#include "graph/types.hpp"
#include "runtime/aligned_buffer.hpp"
#include "runtime/prefetch.hpp"

namespace sge {

/// Thrown by the paged container on any I/O or validation failure:
/// missing/unreadable files, truncated stripes, offsets past EOF, a
/// corrupt manifest, or an injected SGE_FAULT_PAGED_READ failure. A
/// paged read problem is always this typed error, never UB or a wrong
/// traversal.
class PagedIoError : public std::runtime_error {
  public:
    using std::runtime_error::runtime_error;
};

/// What the striped payload holds: the plain 4 B/edge targets[] stream
/// or the PR 8 delta+varint blob ("SGEZSR01" encoding). Either way the
/// byte_offsets/degree metadata stays resident, so the choice only
/// changes what the scan streams from disk.
enum class PagedPayload : std::uint8_t {
    kPlainTargets = 0,
    kVarintBlob = 1,
};

[[nodiscard]] std::string to_string(PagedPayload payload);

struct PagedWriteOptions {
    PagedPayload payload = PagedPayload::kPlainTargets;

    /// Bytes per stripe file (rounded up to the page size; every stripe
    /// except the last is exactly this long). The FlashR SAFS default
    /// regime: big enough to amortise per-file overhead, small enough
    /// that prefetch granularity stays useful.
    std::size_t stripe_bytes = std::size_t{1} << 20;
};

struct PagedOpenOptions {
    /// Start the background prefetcher so prefetch_frontier() overlaps
    /// stripe I/O with the current level's discovery.
    bool prefetch = true;

    /// Run the full bounds-checked payload validation (well_formed) at
    /// open. Required for untrusted files — after it passes, the
    /// engines' unchecked hot-path scan is safe. The runner's own
    /// spill-to-disk path disables it (the payload was just written
    /// from a validated in-memory graph).
    bool validate_payload = true;

    /// Unlink the manifest and stripes when the graph is destroyed —
    /// the spill-file mode of BfsRunner.
    bool owns_files = false;
};

/// Always-on I/O counters of one PagedGraph (relaxed atomics; the
/// ablation bench and tests read them, obs compile gates do not apply
/// because nothing here sits on a traversal hot path).
struct PagedIoStats {
    /// Stripe-file segments the background prefetcher touched (one per
    /// stripe a coalesced page range overlaps).
    std::atomic<std::uint64_t> stripe_reads{0};
    /// Payload pages handed to the prefetcher.
    std::atomic<std::uint64_t> prefetch_issued{0};
    /// Subset of prefetch_issued already resident when the request was
    /// processed (always <= prefetch_issued).
    std::atomic<std::uint64_t> prefetch_hits{0};
    /// Bytes of payload address space mapped (page-rounded; a gauge,
    /// set once at open).
    std::atomic<std::uint64_t> bytes_mapped{0};
};

/// Semi-external CSR: adjacency payload memory-mapped from striped
/// on-disk files, metadata resident.
///
/// The working-set split (ROADMAP "Semi-external graphs"): the visited /
/// parent / frontier state plus byte_offsets[n+1] and degree[n] stay in
/// RAM — so degree(), scheduler weighting and the hybrid heuristic
/// never touch disk — while the payload (plain targets[] or the varint
/// blob) lives in `path`.s0000... stripe files, MAP_FIXED-mapped
/// contiguously into one reserved region so rows spanning stripe
/// boundaries decode transparently. Graphs whose payload exceeds RAM
/// traverse at page-cache speed plus the stripe faults the async
/// prefetcher (prefetch_frontier) hides behind the level barrier.
///
/// Plugs into the engines through the same accessor seam as
/// CompressedCsrGraph (kCompressed == true selects the callback-scan
/// path); on this backend bytes_decoded counts payload bytes streamed
/// from the mapping, whichever payload format backs it.
class PagedGraph {
  public:
    /// Accessor marker: engines scan via neighbors_for_each (the
    /// callback path), which is the only shape that works when the
    /// payload may be varint-encoded.
    static constexpr bool kCompressed = true;

    /// Marker for the frontier-ahead prefetch hook
    /// (detail::prefetch_next_frontier): the engines hand each freshly
    /// built next frontier to prefetch_frontier().
    static constexpr bool kPaged = true;

    PagedGraph();
    PagedGraph(PagedGraph&&) noexcept;
    PagedGraph& operator=(PagedGraph&&) noexcept;
    ~PagedGraph();

    [[nodiscard]] vertex_t num_vertices() const noexcept {
        return degrees_.empty() ? 0 : static_cast<vertex_t>(degrees_.size());
    }

    [[nodiscard]] edge_offset_t num_edges() const noexcept {
        return num_edges_;
    }

    [[nodiscard]] edge_offset_t degree(vertex_t v) const noexcept {
        return degrees_[v];
    }

    /// Payload bytes of v's adjacency run (4 * degree for plain
    /// payload, the varint run length otherwise).
    [[nodiscard]] std::size_t row_bytes(vertex_t v) const noexcept {
        return static_cast<std::size_t>(byte_offsets_[v + 1] -
                                        byte_offsets_[v]);
    }

    /// Scans v's full adjacency, `fn(w)` per neighbour in storage
    /// (ascending) order. Returns the payload bytes consumed — the
    /// bytes_decoded feed, here literally "bytes from the mapping".
    template <class Fn>
    std::size_t neighbors_for_each(vertex_t v, Fn&& fn) const noexcept {
        const vertex_t deg = degrees_[v];
        if (deg == 0) return 0;
        const std::uint8_t* p = payload_ + byte_offsets_[v];
        if (payload_kind_ == PagedPayload::kPlainTargets) {
            const auto* adj = reinterpret_cast<const vertex_t*>(p);
            for (vertex_t i = 0; i < deg; ++i) fn(adj[i]);
            return static_cast<std::size_t>(deg) * sizeof(vertex_t);
        }
        const std::uint8_t* const start = p;
        std::uint64_t u = 0;
        p = varint::decode_u64(p, u);
        auto prev = static_cast<vertex_t>(static_cast<std::int64_t>(v) +
                                          varint::zigzag_decode(u));
        fn(prev);
        for (vertex_t i = 1; i < deg; ++i) {
            p = varint::decode_u64(p, u);
            prev = static_cast<vertex_t>(prev + u);
            fn(prev);
        }
        return static_cast<std::size_t>(p - start);
    }

    /// Early-exit variant for the bottom-up probe: `fn(w)` returns true
    /// to continue, false to stop. Returns the bytes consumed up to and
    /// including the stopping neighbour.
    template <class Fn>
    std::size_t neighbors_for_each_until(vertex_t v, Fn&& fn) const noexcept {
        const vertex_t deg = degrees_[v];
        if (deg == 0) return 0;
        const std::uint8_t* p = payload_ + byte_offsets_[v];
        if (payload_kind_ == PagedPayload::kPlainTargets) {
            const auto* adj = reinterpret_cast<const vertex_t*>(p);
            vertex_t i = 0;
            while (i < deg) {
                ++i;
                if (!fn(adj[i - 1])) break;
            }
            return static_cast<std::size_t>(i) * sizeof(vertex_t);
        }
        const std::uint8_t* const start = p;
        std::uint64_t u = 0;
        p = varint::decode_u64(p, u);
        auto prev = static_cast<vertex_t>(static_cast<std::int64_t>(v) +
                                          varint::zigzag_decode(u));
        if (fn(prev)) {
            for (vertex_t i = 1; i < deg; ++i) {
                p = varint::decode_u64(p, u);
                prev = static_cast<vertex_t>(prev + u);
                if (!fn(prev)) break;
            }
        }
        return static_cast<std::size_t>(p - start);
    }

    /// Prefetches the *resident* adjacency metadata a scan of `v` reads
    /// first — never the payload (that is the async prefetcher's job).
    void prefetch_adjacency(vertex_t v) const noexcept {
        prefetch_read(&byte_offsets_[v]);
        prefetch_read(&degrees_[v]);
    }

    /// Byte offsets into the mapped payload, n+1 entries. The address
    /// of this resident array is the graph's workspace identity tag,
    /// like the other two backends' offsets().
    [[nodiscard]] std::span<const edge_offset_t> offsets() const noexcept {
        return byte_offsets_.span();
    }
    [[nodiscard]] std::span<const vertex_t> degrees() const noexcept {
        return degrees_.span();
    }

    [[nodiscard]] PagedPayload payload() const noexcept {
        return payload_kind_;
    }

    /// Total payload bytes backing the mapping (on disk, not resident).
    [[nodiscard]] std::size_t payload_bytes() const noexcept {
        return byte_offsets_.empty()
                   ? 0
                   : static_cast<std::size_t>(
                         byte_offsets_[byte_offsets_.size() - 1]);
    }

    /// RESIDENT bytes only — the backend's whole point is that this
    /// excludes the payload: byte offsets (8 B/vertex) + degrees
    /// (4 B/vertex).
    [[nodiscard]] std::size_t memory_bytes() const noexcept {
        return byte_offsets_.size() * sizeof(edge_offset_t) +
               degrees_.size() * sizeof(vertex_t);
    }

    /// Hands the next frontier to the background prefetcher: it
    /// coalesces the rows into page ranges, issues madvise(WILLNEED)
    /// and background-touches the non-resident pages, overlapping
    /// stripe I/O with the current level's scan. Advisory and
    /// non-blocking — a new request supersedes an unprocessed one, and
    /// a read failure (including SGE_FAULT_PAGED_READ) degrades to
    /// skipping the range. No-op when the prefetcher is off.
    void prefetch_frontier(const vertex_t* items, std::size_t count) const;

    [[nodiscard]] bool prefetch_enabled() const noexcept;

    /// Blocks until the prefetcher has drained every accepted request —
    /// deterministic counter reads for tests and the ablation bench.
    void prefetch_quiesce() const;

    /// Drops the payload from memory: MADV_DONTNEED over the mapping
    /// plus POSIX_FADV_DONTNEED on every stripe, so the next traversal
    /// re-reads from disk — root-free cold-run emulation
    /// (bench_util.hpp evict_paged).
    void evict() const noexcept;

    /// Payload bytes currently resident (mincore sweep, page-rounded).
    [[nodiscard]] std::size_t resident_payload_bytes() const;

    [[nodiscard]] const PagedIoStats& io_stats() const noexcept;

    /// Manifest path this graph was opened from (empty for a
    /// default-constructed instance).
    [[nodiscard]] const std::string& path() const noexcept;

    /// Structural checks on an untrusted instance: monotone offsets
    /// bounded by the payload, degree sum == num_edges(), per-row byte
    /// sizes consistent with the payload format, and for varint payload
    /// a full bounds-checked decode. After this returns true the
    /// unchecked hot-path scan is safe.
    [[nodiscard]] bool well_formed() const noexcept;

  private:
    friend PagedGraph open_paged_graph(const std::string&,
                                       const PagedOpenOptions&);

    struct Io;  // mapping, stripe fds, prefetcher (paged_graph.cpp)

    AlignedBuffer<edge_offset_t> byte_offsets_;  // n+1, resident
    AlignedBuffer<vertex_t> degrees_;            // n, resident
    const std::uint8_t* payload_ = nullptr;      // mapped, read-only
    edge_offset_t num_edges_ = 0;
    PagedPayload payload_kind_ = PagedPayload::kPlainTargets;
    std::unique_ptr<Io> io_;
};

/// Writes the paged container for `g`: a manifest ("SGEPGR01": payload
/// kind, n, m, payload_bytes, stripe_bytes, num_stripes,
/// byte_offsets[n+1], degrees[n]) at `path` plus `path`.s0000...
/// stripe files of PagedWriteOptions::stripe_bytes each (page-rounded;
/// last stripe short). kVarintBlob encodes via csr_compress first.
void write_paged_graph(const CsrGraph& g, const std::string& path,
                       const PagedWriteOptions& options = {});

/// Same container from an already-encoded graph (payload kVarintBlob).
void write_paged_graph(const CompressedCsrGraph& g, const std::string& path,
                       const PagedWriteOptions& options = {});

/// Opens a paged container: validates the untrusted manifest against
/// its file size *before* any allocation (the read_csr size-gate
/// discipline), checks every stripe file's existence and exact size,
/// maps the stripes contiguously, and (by default) runs the full
/// payload validation. Throws PagedIoError on any problem.
[[nodiscard]] PagedGraph open_paged_graph(const std::string& path,
                                          const PagedOpenOptions& options = {});

/// write + open in one step (bench/test convenience).
[[nodiscard]] PagedGraph make_paged(const CsrGraph& g, const std::string& path,
                                    const PagedWriteOptions& write_options = {},
                                    const PagedOpenOptions& open_options = {});

/// Removes the manifest and every stripe file of a paged container.
/// Missing files are ignored.
void remove_paged_files(const std::string& path) noexcept;

}  // namespace sge
