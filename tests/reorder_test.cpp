#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "core/bfs.hpp"
#include "gen/rmat.hpp"
#include "graph/builder.hpp"
#include "graph/degree_stats.hpp"
#include "graph/reorder.hpp"
#include "test_util.hpp"

namespace sge {
namespace {

bool is_permutation_of_n(const std::vector<vertex_t>& perm, vertex_t n) {
    if (perm.size() != n) return false;
    std::vector<bool> hit(n, false);
    for (const vertex_t p : perm) {
        if (p >= n || hit[p]) return false;
        hit[p] = true;
    }
    return true;
}

TEST(Reorder, DegreeOrderPutsHubsFirst) {
    RmatParams params;
    params.scale = 10;
    params.num_edges = 8192;
    const CsrGraph g = csr_from_edges(generate_rmat(params));
    const auto perm = degree_descending_order(g);
    ASSERT_TRUE(is_permutation_of_n(perm, g.num_vertices()));

    const CsrGraph h = apply_vertex_permutation(g, perm);
    // New ids must be sorted by non-increasing degree.
    for (vertex_t v = 0; v + 1 < h.num_vertices(); ++v)
        ASSERT_GE(h.degree(v), h.degree(v + 1)) << "at " << v;
    EXPECT_EQ(h.degree(0), compute_degree_stats(g).max_degree);
}

TEST(Reorder, DegreeOrderIsStableForTies) {
    const CsrGraph g = test::cycle_graph(8);  // all degree 2
    const auto perm = degree_descending_order(g);
    for (vertex_t v = 0; v < 8; ++v) EXPECT_EQ(perm[v], v);  // identity
}

TEST(Reorder, BfsOrderOnPathFromEndIsIdentity) {
    const CsrGraph g = test::path_graph(20);
    const auto perm = bfs_visit_order(g, 0);
    for (vertex_t v = 0; v < 20; ++v) EXPECT_EQ(perm[v], v);
}

TEST(Reorder, BfsOrderRootGetsIdZero) {
    const CsrGraph g = test::path_graph(20);
    const auto perm = bfs_visit_order(g, 7);
    EXPECT_EQ(perm[7], 0u);
    ASSERT_TRUE(is_permutation_of_n(perm, 20));
}

TEST(Reorder, BfsOrderAppendsUnreached) {
    const CsrGraph g = test::two_cliques(3);  // {0,1,2} and {3,4,5}
    const auto perm = bfs_visit_order(g, 4);
    ASSERT_TRUE(is_permutation_of_n(perm, 6));
    // Reached clique occupies ids 0..2; unreached keeps order in 3..5.
    EXPECT_EQ(perm[4], 0u);
    EXPECT_LT(perm[3], 3u);
    EXPECT_LT(perm[5], 3u);
    EXPECT_EQ(perm[0], 3u);
    EXPECT_EQ(perm[1], 4u);
    EXPECT_EQ(perm[2], 5u);
}

TEST(Reorder, ApplyIdentityPermutationPreservesGraph) {
    const CsrGraph g = test::two_cliques(4);
    std::vector<vertex_t> identity(g.num_vertices());
    std::iota(identity.begin(), identity.end(), vertex_t{0});
    EXPECT_TRUE(g == apply_vertex_permutation(g, identity));
}

TEST(Reorder, PermutationPreservesDistances) {
    RmatParams params;
    params.scale = 9;
    params.num_edges = 4000;
    const CsrGraph g = csr_from_edges(generate_rmat(params));
    const auto perm = degree_descending_order(g);
    const CsrGraph h = apply_vertex_permutation(g, perm);

    BfsOptions serial;
    serial.engine = BfsEngine::kSerial;
    const vertex_t root = 5;
    const BfsResult rg = bfs(g, root, serial);
    const BfsResult rh = bfs(h, perm[root], serial);
    EXPECT_EQ(rg.vertices_visited, rh.vertices_visited);
    for (vertex_t v = 0; v < g.num_vertices(); ++v)
        ASSERT_EQ(rg.level[v], rh.level[perm[v]]) << "vertex " << v;
}

TEST(Reorder, ApplyRejectsNonPermutations) {
    const CsrGraph g = test::path_graph(4);
    std::vector<vertex_t> short_perm = {0, 1, 2};
    EXPECT_THROW(apply_vertex_permutation(g, short_perm), std::invalid_argument);
    std::vector<vertex_t> dup = {0, 1, 1, 3};
    EXPECT_THROW(apply_vertex_permutation(g, dup), std::invalid_argument);
    std::vector<vertex_t> oob = {0, 1, 2, 9};
    EXPECT_THROW(apply_vertex_permutation(g, oob), std::invalid_argument);
}

TEST(Reorder, BfsOrderInvalidRootThrows) {
    const CsrGraph g = test::path_graph(4);
    EXPECT_THROW(bfs_visit_order(g, 4), std::out_of_range);
}

}  // namespace
}  // namespace sge
