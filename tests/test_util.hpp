#pragma once

// Shared fixtures for the sge test suite: tiny graphs with known
// structure plus comparison helpers against the serial reference.

#include <gtest/gtest.h>

#include <vector>

#include "core/bfs.hpp"
#include "graph/builder.hpp"
#include "graph/csr_graph.hpp"
#include "graph/edge_list.hpp"

namespace sge::test {

/// 0 - 1 - 2 - ... - (n-1): worst case for level count.
inline CsrGraph path_graph(vertex_t n) {
    EdgeList edges(n);
    for (vertex_t v = 0; v + 1 < n; ++v) edges.add(v, v + 1);
    return csr_from_edges(edges);
}

/// Hub 0 connected to 1..n-1: one fat level.
inline CsrGraph star_graph(vertex_t n) {
    EdgeList edges(n);
    for (vertex_t v = 1; v < n; ++v) edges.add(0, v);
    return csr_from_edges(edges);
}

/// Simple cycle over n vertices.
inline CsrGraph cycle_graph(vertex_t n) {
    EdgeList edges(n);
    for (vertex_t v = 0; v < n; ++v) edges.add(v, (v + 1) % n);
    return csr_from_edges(edges);
}

/// Two disjoint cliques of size k (vertices [0,k) and [k,2k)).
inline CsrGraph two_cliques(vertex_t k) {
    EdgeList edges(2 * k);
    for (vertex_t base : {vertex_t{0}, k})
        for (vertex_t a = base; a < base + k; ++a)
            for (vertex_t b = a + 1; b < base + k; ++b) edges.add(a, b);
    return csr_from_edges(edges);
}

/// Asserts two BFS results agree: identical reached sets and levels.
/// Parent arrays may legitimately differ (any BFS tree is valid), so
/// only reachability and distance are compared.
inline void expect_equivalent(const BfsResult& expected, const BfsResult& actual) {
    ASSERT_EQ(expected.parent.size(), actual.parent.size());
    EXPECT_EQ(expected.vertices_visited, actual.vertices_visited);
    EXPECT_EQ(expected.edges_traversed, actual.edges_traversed);
    EXPECT_EQ(expected.num_levels, actual.num_levels);
    ASSERT_EQ(expected.level.size(), actual.level.size());
    for (std::size_t v = 0; v < expected.parent.size(); ++v) {
        const bool e_reached = expected.parent[v] != kInvalidVertex;
        const bool a_reached = actual.parent[v] != kInvalidVertex;
        ASSERT_EQ(e_reached, a_reached) << "reachability differs at vertex " << v;
        if (!expected.level.empty()) {
            ASSERT_EQ(expected.level[v], actual.level[v])
                << "level differs at vertex " << v;
        }
    }
}

}  // namespace sge::test
