#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/bfs.hpp"
#include "gen/uniform.hpp"
#include "graph/builder.hpp"
#include "runtime/prng.hpp"
#include "stream/dynamic_graph.hpp"
#include "stream/incremental_bfs.hpp"
#include "stream/versioned_store.hpp"
#include "test_util.hpp"

namespace sge {
namespace {

// ---------- DynamicGraph ----------

TEST(DynamicGraph, InsertQueryRemove) {
    DynamicGraph g(4);
    EXPECT_EQ(g.num_vertices(), 4u);
    EXPECT_EQ(g.num_arcs(), 0u);

    g.add_edge(0, 1);
    g.add_edge(1, 2);
    EXPECT_EQ(g.num_arcs(), 4u);
    EXPECT_TRUE(g.has_edge(0, 1));
    EXPECT_TRUE(g.has_edge(1, 0));
    EXPECT_FALSE(g.has_edge(0, 2));
    EXPECT_EQ(g.degree(1), 2u);

    EXPECT_TRUE(g.remove_edge(0, 1));
    EXPECT_FALSE(g.has_edge(0, 1));
    EXPECT_FALSE(g.remove_edge(0, 1));  // already gone
    EXPECT_EQ(g.num_arcs(), 2u);
}

TEST(DynamicGraph, SelfLoopCountsOneArc) {
    DynamicGraph g(2);
    g.add_edge(1, 1);
    EXPECT_EQ(g.num_arcs(), 1u);
    EXPECT_TRUE(g.has_edge(1, 1));
    EXPECT_TRUE(g.remove_edge(1, 1));
    EXPECT_EQ(g.num_arcs(), 0u);
}

TEST(DynamicGraph, AddVertexGrows) {
    DynamicGraph g(2);
    const vertex_t v = g.add_vertex();
    EXPECT_EQ(v, 2u);
    EXPECT_EQ(g.num_vertices(), 3u);
    g.add_edge(0, v);
    EXPECT_TRUE(g.has_edge(v, 0));
}

TEST(DynamicGraph, OutOfRangeThrows) {
    DynamicGraph g(3);
    EXPECT_THROW(g.add_edge(0, 3), std::out_of_range);
    EXPECT_THROW((void)g.degree(3), std::out_of_range);
}

TEST(DynamicGraph, SnapshotMatchesBuilder) {
    // Same edges through both paths must yield identical CSR structure.
    UniformParams params;
    params.num_vertices = 500;
    params.degree = 4;
    const EdgeList edges = generate_uniform(params);

    BuildOptions opts;
    opts.deduplicate = false;  // DynamicGraph keeps multiplicity
    opts.remove_self_loops = false;
    const CsrGraph built = csr_from_edges(edges, opts);

    DynamicGraph dynamic(params.num_vertices);
    for (const Edge& e : edges) dynamic.add_edge(e.src, e.dst);
    EXPECT_TRUE(built == dynamic.snapshot());
}

TEST(DynamicGraph, RoundTripFromStatic) {
    const CsrGraph g = test::two_cliques(5);
    const DynamicGraph dynamic(g);
    EXPECT_TRUE(g == dynamic.snapshot());
    EXPECT_EQ(dynamic.num_arcs(), g.num_edges());
}

// ---------- IncrementalBfs ----------

TEST(IncrementalBfs, InitialLevelsMatchBatchBfs) {
    const CsrGraph g = test::cycle_graph(20);
    const DynamicGraph dynamic(g);
    const IncrementalBfs inc(dynamic, 0);

    BfsOptions opts;
    opts.engine = BfsEngine::kSerial;
    const BfsResult batch = bfs(g, 0, opts);
    for (vertex_t v = 0; v < 20; ++v)
        EXPECT_EQ(inc.level(v), batch.level[v]) << v;
    EXPECT_EQ(inc.reached_count(), 20u);
}

TEST(IncrementalBfs, ShortcutEdgeLowersLevels) {
    // Path 0..9; adding edge {0, 9} folds the far end to level 1.
    DynamicGraph g(10);
    for (vertex_t v = 0; v + 1 < 10; ++v) g.add_edge(v, v + 1);
    IncrementalBfs inc(g, 0);
    EXPECT_EQ(inc.level(9), 9u);

    g.add_edge(0, 9);
    const std::size_t changed = inc.on_edge_added(0, 9);
    EXPECT_GT(changed, 0u);
    EXPECT_EQ(inc.level(9), 1u);
    EXPECT_EQ(inc.level(8), 2u);
    EXPECT_EQ(inc.level(5), 5u);  // middle unaffected (min of two waves)
}

TEST(IncrementalBfs, ConnectsNewComponent) {
    DynamicGraph g(6);
    g.add_edge(0, 1);
    g.add_edge(3, 4);
    g.add_edge(4, 5);
    IncrementalBfs inc(g, 0);
    EXPECT_EQ(inc.reached_count(), 2u);
    EXPECT_FALSE(inc.reached(4));

    g.add_edge(1, 3);
    inc.on_edge_added(1, 3);
    EXPECT_EQ(inc.reached_count(), 5u);
    EXPECT_EQ(inc.level(3), 2u);
    EXPECT_EQ(inc.level(5), 4u);
    EXPECT_FALSE(inc.reached(2));
}

TEST(IncrementalBfs, EdgeBetweenUnreachedIsDeferred) {
    DynamicGraph g(5);
    g.add_edge(0, 1);
    IncrementalBfs inc(g, 0);

    g.add_edge(3, 4);  // island edge
    EXPECT_EQ(inc.on_edge_added(3, 4), 0u);
    EXPECT_FALSE(inc.reached(3));

    // Later the island connects; the earlier edge must now count.
    g.add_edge(1, 3);
    inc.on_edge_added(1, 3);
    EXPECT_TRUE(inc.reached(4));
    EXPECT_EQ(inc.level(4), 3u);
}

TEST(IncrementalBfs, VertexGrowth) {
    DynamicGraph g(2);
    g.add_edge(0, 1);
    IncrementalBfs inc(g, 0);
    const vertex_t v = g.add_vertex();
    inc.on_vertex_added();
    EXPECT_FALSE(inc.reached(v));
    g.add_edge(1, v);
    inc.on_edge_added(1, v);
    EXPECT_EQ(inc.level(v), 2u);
}

TEST(IncrementalBfs, RandomStreamMatchesBatchRecompute) {
    // Property test: after every insertion, incremental levels must
    // equal a from-scratch BFS on the snapshot.
    Xoshiro256 rng(2024);
    constexpr vertex_t kN = 300;
    DynamicGraph g(kN);
    IncrementalBfs inc(g, 0);

    BfsOptions opts;
    opts.engine = BfsEngine::kSerial;
    for (int step = 0; step < 400; ++step) {
        const auto u = static_cast<vertex_t>(rng.next_below(kN));
        auto v = static_cast<vertex_t>(rng.next_below(kN - 1));
        if (v >= u) ++v;
        g.add_edge(u, v);
        inc.on_edge_added(u, v);

        if (step % 20 != 0) continue;  // full audit every 20 insertions
        const BfsResult batch = bfs(g.snapshot(), 0, opts);
        for (vertex_t w = 0; w < kN; ++w)
            ASSERT_EQ(inc.level(w), batch.level[w])
                << "step " << step << " vertex " << w;
        ASSERT_EQ(inc.reached_count(), batch.vertices_visited);
    }
}

TEST(IncrementalBfs, RebuildAfterRemoval) {
    DynamicGraph g(4);
    g.add_edge(0, 1);
    g.add_edge(1, 2);
    g.add_edge(2, 3);
    IncrementalBfs inc(g, 0);
    EXPECT_EQ(inc.level(3), 3u);

    g.remove_edge(1, 2);
    inc.rebuild();
    EXPECT_FALSE(inc.reached(2));
    EXPECT_EQ(inc.reached_count(), 2u);
}

TEST(IncrementalBfs, InvalidRootThrows) {
    DynamicGraph g(3);
    EXPECT_THROW(IncrementalBfs(g, 3), std::out_of_range);
}

// ---------- mutation-version guard ----------

TEST(DynamicGraph, VersionCountsMutations) {
    DynamicGraph g(3);
    EXPECT_EQ(g.version(), 0u);
    g.add_edge(0, 1);
    EXPECT_EQ(g.version(), 1u);
    g.add_vertex();
    EXPECT_EQ(g.version(), 2u);
    EXPECT_TRUE(g.remove_edge(0, 1));
    EXPECT_EQ(g.version(), 3u);
    // A no-op removal is not a mutation: nothing changed.
    EXPECT_FALSE(g.remove_edge(0, 1));
    EXPECT_EQ(g.version(), 3u);
}

TEST(IncrementalBfs, UnobservedInsertionThrowsOnQuery) {
    DynamicGraph g(4);
    g.add_edge(0, 1);
    IncrementalBfs inc(g, 0);
    EXPECT_TRUE(inc.in_sync());
    EXPECT_EQ(inc.level(1), 1u);

    g.add_edge(1, 2);  // mutation without on_edge_added
    EXPECT_FALSE(inc.in_sync());
    EXPECT_THROW((void)inc.level(1), std::logic_error);
    EXPECT_THROW((void)inc.reached_count(), std::logic_error);

    inc.rebuild();  // re-syncs
    EXPECT_TRUE(inc.in_sync());
    EXPECT_EQ(inc.level(2), 2u);
}

TEST(IncrementalBfs, UnobservedRemovalThrowsOnQuery) {
    DynamicGraph g(3);
    g.add_edge(0, 1);
    g.add_edge(1, 2);
    IncrementalBfs inc(g, 0);
    EXPECT_EQ(inc.level(2), 2u);

    // This is the bug the guard exists for: silently answering level(2)
    // == 2 after the removal would be wrong, and there is no
    // notification hook for removals (decrease-only repair can't raise
    // levels) — only rebuild() re-syncs.
    g.remove_edge(1, 2);
    EXPECT_THROW((void)inc.level(2), std::logic_error);
    inc.rebuild();
    EXPECT_FALSE(inc.reached(2));
}

TEST(IncrementalBfs, OverNotificationThrows) {
    DynamicGraph g(3);
    g.add_edge(0, 1);
    IncrementalBfs inc(g, 0);
    // Claiming two insertions when the graph saw none is a caller bug.
    const std::pair<vertex_t, vertex_t> edges[] = {{0, 2}, {1, 2}};
    EXPECT_THROW((void)inc.on_edges_added(edges), std::logic_error);
}

// ---------- batched repair + stale-entry skip ----------

TEST(IncrementalBfs, BatchedCascadeSkipsStaleEntries) {
    // Path 0-1-...-99. One batch delivers a far shortcut (50, 99) and
    // then a much better one (0, 99): vertex 99 is first enqueued at
    // level 51, then improved to 1 before its entry is dequeued. The
    // level-51 entry is stale; without the skip it would rescan and
    // re-propagate an entire obsolete cascade (the quadratic repair).
    constexpr vertex_t kN = 100;
    DynamicGraph g(kN);
    for (vertex_t v = 0; v + 1 < kN; ++v) g.add_edge(v, v + 1);
    IncrementalBfs inc(g, 0);
    EXPECT_EQ(inc.level(99), 99u);

    std::vector<std::pair<vertex_t, vertex_t>> batch = {{50, 99}, {0, 99}};
    for (const auto& [u, v] : batch) g.add_edge(u, v);
    const std::size_t changed = inc.on_edges_added(batch);
    EXPECT_GT(changed, 0u);
    EXPECT_GT(inc.repair_stats().stale_skips, 0u)
        << "the superseded level-51 entry must be dropped, not rescanned";
    EXPECT_EQ(inc.repair_stats().waves, 1u) << "one wave per batch";

    // Exactness: identical to a from-scratch BFS on the new graph.
    BfsOptions opts;
    opts.engine = BfsEngine::kSerial;
    const BfsResult batch_bfs = bfs(g.snapshot(), 0, opts);
    for (vertex_t w = 0; w < kN; ++w)
        ASSERT_EQ(inc.level(w), batch_bfs.level[w]) << "vertex " << w;
}

TEST(IncrementalBfs, BatchedRepairBoundsWorkOnCascade) {
    // Same cascade served two ways: one batched wave must not scan more
    // edges than the sequential per-edge repairs did (the coalesced
    // wave should strictly beat replaying obsolete intermediate states).
    constexpr vertex_t kN = 200;
    const auto shortcuts = std::vector<std::pair<vertex_t, vertex_t>>{
        {150, 199}, {100, 199}, {50, 199}, {0, 199}};

    DynamicGraph seq(kN);
    for (vertex_t v = 0; v + 1 < kN; ++v) seq.add_edge(v, v + 1);
    IncrementalBfs inc_seq(seq, 0);
    std::uint64_t seq_scanned = 0;
    for (const auto& [u, v] : shortcuts) {
        seq.add_edge(u, v);
        inc_seq.on_edge_added(u, v);
    }
    seq_scanned = inc_seq.repair_stats().edges_scanned;

    DynamicGraph bat(kN);
    for (vertex_t v = 0; v + 1 < kN; ++v) bat.add_edge(v, v + 1);
    IncrementalBfs inc_bat(bat, 0);
    for (const auto& [u, v] : shortcuts) bat.add_edge(u, v);
    inc_bat.on_edges_added(shortcuts);

    EXPECT_LE(inc_bat.repair_stats().edges_scanned, seq_scanned);
    for (vertex_t w = 0; w < kN; ++w)
        ASSERT_EQ(inc_bat.level(w), inc_seq.level(w)) << "vertex " << w;
}

// ---------- snapshot edge cases + dirty-set amortisation ----------

TEST(DynamicGraph, SnapshotZeroVertices) {
    const DynamicGraph g(0);
    const CsrGraph s = g.snapshot();  // zero-count AlignedBuffer path
    EXPECT_EQ(s.num_vertices(), 0u);
    EXPECT_EQ(s.num_edges(), 0u);
}

TEST(DynamicGraph, SnapshotAllSelfLoops) {
    DynamicGraph g(3);
    for (vertex_t v = 0; v < 3; ++v) g.add_edge(v, v);
    const CsrGraph s = g.snapshot();
    EXPECT_EQ(s.num_edges(), 3u);  // one arc per self-loop
    for (vertex_t v = 0; v < 3; ++v) {
        ASSERT_EQ(s.degree(v), 1u);
        EXPECT_EQ(s.neighbors(v)[0], v);
    }
}

TEST(DynamicGraph, SnapshotSortsOnlyDirtyLists) {
    DynamicGraph g(4);
    g.add_edge(0, 1);
    g.add_edge(0, 2);
    g.add_edge(0, 3);  // ascending inserts: list stays known-sorted
    EXPECT_EQ(g.dirty_vertices(), 0u);

    g.add_edge(2, 1);  // 2's list becomes [0, 1] — appended 1 after 0:
                       // still ascending; 1's list gains 2 after 0: sorted
    EXPECT_EQ(g.dirty_vertices(), 0u);

    g.add_edge(3, 1);  // 3's list: [0, 1] fine; 1's list: [0, 2, 3] fine
    g.add_edge(1, 0);  // both endpoint lists get an out-of-order append
    EXPECT_EQ(g.dirty_vertices(), 2u);

    const CsrGraph s1 = g.snapshot();
    EXPECT_EQ(g.dirty_vertices(), 0u);  // snapshot cleaned it
    EXPECT_TRUE(std::is_sorted(s1.neighbors(1).begin(),
                               s1.neighbors(1).end()));

    // Removal of a non-tail element swap-erases => dirty again.
    EXPECT_TRUE(g.remove_edge(1, 0));
    EXPECT_GT(g.dirty_vertices(), 0u);
    const CsrGraph s2 = g.snapshot();
    EXPECT_EQ(g.dirty_vertices(), 0u);
    for (vertex_t v = 0; v < 4; ++v)
        EXPECT_TRUE(std::is_sorted(s2.neighbors(v).begin(),
                                   s2.neighbors(v).end()))
            << "vertex " << v;
}

// ---------- randomized differential: mixed stream vs batch BFS ----------

TEST(StreamDifferential, MixedStreamMatchesBatchBfs) {
    // Inserts, removals and queries interleave; after EVERY step the
    // incremental answer must equal a from-scratch serial BFS on
    // snapshot(). Removals rebuild (the documented contract); inserts
    // repair incrementally.
    Xoshiro256 rng(91);
    constexpr vertex_t kN = 120;
    DynamicGraph g(kN);
    IncrementalBfs inc(g, 0);
    std::vector<std::pair<vertex_t, vertex_t>> live;

    BfsOptions opts;
    opts.engine = BfsEngine::kSerial;
    for (int step = 0; step < 250; ++step) {
        if (!live.empty() && rng.next_below(4) == 0) {
            const std::size_t i = rng.next_below(live.size());
            const auto [u, v] = live[i];
            ASSERT_TRUE(g.remove_edge(u, v));
            live[i] = live.back();
            live.pop_back();
            inc.rebuild();
        } else {
            const auto u = static_cast<vertex_t>(rng.next_below(kN));
            auto v = static_cast<vertex_t>(rng.next_below(kN - 1));
            if (v >= u) ++v;
            g.add_edge(u, v);
            live.emplace_back(u, v);
            inc.on_edge_added(u, v);
        }

        const BfsResult batch = bfs(g.snapshot(), 0, opts);
        ASSERT_EQ(inc.reached_count(), batch.vertices_visited)
            << "step " << step;
        for (vertex_t w = 0; w < kN; ++w)
            ASSERT_EQ(inc.level(w), batch.level[w])
                << "step " << step << " vertex " << w;
    }
}

// ---------- VersionedGraphStore ----------

TEST(VersionedStore, PublishesInitialSnapshot) {
    const CsrGraph g = test::cycle_graph(8);
    VersionedGraphStore store(g);
    EXPECT_EQ(store.version(), 1u);
    EXPECT_EQ(store.num_vertices(), 8u);

    const SnapshotRef ref = store.acquire();
    ASSERT_TRUE(ref);
    EXPECT_EQ(ref.version(), 1u);
    EXPECT_EQ(ref.graph().num_edges(), g.num_edges());
    EXPECT_EQ(store.live_snapshots(), 1u);
}

TEST(VersionedStore, ApplyPublishesImmutableVersions) {
    VersionedGraphStore store(4);
    const SnapshotRef empty = store.acquire();  // pin v1 across publishes

    MutationBatch b1;
    b1.insert(0, 1);
    b1.insert(1, 2);
    EXPECT_EQ(store.apply(b1), 2u);
    EXPECT_EQ(store.version(), 2u);

    MutationBatch b2;
    b2.remove(0, 1);
    EXPECT_EQ(store.apply(b2), 3u);

    // The pinned v1 snapshot never changed under the readers' feet.
    EXPECT_EQ(empty.version(), 1u);
    EXPECT_EQ(empty.graph().num_edges(), 0u);
    const SnapshotRef now = store.acquire();
    EXPECT_EQ(now.version(), 3u);
    EXPECT_EQ(now.graph().num_edges(), 2u);  // only {1, 2} survives

    const auto& c = store.counters();
    EXPECT_EQ(c.batches_applied.load(), 2u);
    EXPECT_EQ(c.snapshots_published.load(), 3u);  // v1 + two applies
    EXPECT_EQ(c.delta_edges.load(), 3u);          // 2 inserts + 1 remove
}

TEST(VersionedStore, InBatchInsertRemoveCancels) {
    VersionedGraphStore store(3);
    MutationBatch b;
    b.insert(0, 1);
    b.remove(1, 0);  // cancels the pending insert (normalized key)
    EXPECT_EQ(store.apply(b), 1u) << "fully-cancelled batch publishes nothing";
    EXPECT_EQ(store.version(), 1u);
    EXPECT_EQ(store.counters().noop_ops.load(), 2u);
    EXPECT_EQ(store.counters().snapshots_published.load(), 1u);
    EXPECT_EQ(store.acquire().graph().num_edges(), 0u);
}

TEST(VersionedStore, RemoveBeforeInsertStaysReal) {
    // remove(0,1) precedes insert(0,1): the remove targets a
    // pre-existing copy (there is none — no-op), the insert is new.
    // Net-counting would wrongly cancel both.
    VersionedGraphStore store(3);
    MutationBatch b;
    b.remove(0, 1);
    b.insert(0, 1);
    store.apply(b);
    EXPECT_EQ(store.acquire().graph().num_edges(), 2u);  // {0,1} exists
    EXPECT_EQ(store.counters().noop_ops.load(), 1u);    // the remove
    EXPECT_EQ(store.counters().delta_edges.load(), 1u);
}

TEST(VersionedStore, PinnedSnapshotDefersReclaim) {
    VersionedGraphStore store(4);
    SnapshotRef pin = store.acquire();  // v1
    MutationBatch b;
    b.insert(0, 1);
    for (int i = 0; i < 3; ++i) store.apply(b);  // v2, v3, v4

    // v2 and v3 retired unpinned => already swept; v1 is held.
    EXPECT_EQ(store.live_snapshots(), 2u);
    EXPECT_EQ(store.counters().snapshots_retired.load(), 3u);
    EXPECT_EQ(store.counters().snapshots_reclaimed.load(), 2u);

    pin.release();
    EXPECT_EQ(store.reclaim(), 1u);
    EXPECT_EQ(store.live_snapshots(), 1u);
    EXPECT_EQ(store.counters().snapshots_reclaimed.load(), 3u);
}

TEST(VersionedStore, OutOfRangeOpLeavesStoreUntouched) {
    VersionedGraphStore store(3);
    MutationBatch b;
    b.insert(0, 1);
    b.insert(0, 7);  // bad id after a good op
    EXPECT_THROW(store.apply(b), std::out_of_range);
    EXPECT_EQ(store.version(), 1u);
    EXPECT_EQ(store.acquire().graph().num_edges(), 0u)
        << "validation precedes application: nothing was half-applied";
}

TEST(VersionedStore, InsertOnlyRepairBitIdenticalToRecompute) {
    Xoshiro256 rng(123);
    constexpr vertex_t kN = 150;
    VersionedGraphStore store(kN);
    store.track(0);

    BfsOptions opts;
    opts.engine = BfsEngine::kSerial;
    for (int round = 0; round < 30; ++round) {
        MutationBatch b;
        for (int i = 0; i < 8; ++i) {
            const auto u = static_cast<vertex_t>(rng.next_below(kN));
            auto v = static_cast<vertex_t>(rng.next_below(kN - 1));
            if (v >= u) ++v;
            b.insert(u, v);
        }
        store.apply(b);

        const SnapshotRef ref = store.acquire();
        const BfsResult batch = bfs(ref.graph(), 0, opts);
        const std::vector<level_t> levels = store.tracked_levels(0);
        ASSERT_EQ(levels.size(), batch.level.size());
        for (vertex_t w = 0; w < kN; ++w)
            ASSERT_EQ(levels[w], batch.level[w])
                << "round " << round << " vertex " << w;
    }
    EXPECT_EQ(store.counters().rebuilds.load(), 0u)
        << "insert-only traffic must never rebuild";
    EXPECT_GT(store.counters().repair_touched.load(), 0u);
}

TEST(VersionedStore, DeleteBatchRebuildsTrackedLevels) {
    VersionedGraphStore store(5);
    store.track(0);
    MutationBatch grow;
    grow.insert(0, 1);
    grow.insert(1, 2);
    grow.insert(2, 3);
    store.apply(grow);
    EXPECT_EQ(store.tracked_levels(0)[3], 3u);

    MutationBatch cut;
    cut.remove(1, 2);
    store.apply(cut);
    EXPECT_EQ(store.counters().rebuilds.load(), 1u);
    EXPECT_EQ(store.tracked_levels(0)[3], kInvalidLevel)
        << "levels must rise after the cut — only a rebuild can do that";
    EXPECT_THROW((void)store.tracked_levels(2), std::invalid_argument);
}

TEST(VersionedStore, StagingFlushesOnCapacity) {
    StoreOptions opts;
    opts.batch_capacity = 3;
    VersionedGraphStore store(6, opts);
    store.stage_insert(0, 1);
    store.stage_insert(1, 2);
    EXPECT_EQ(store.staged(), 2u);
    EXPECT_EQ(store.version(), 1u) << "below capacity: nothing published";

    store.stage_insert(2, 3);  // hits capacity => auto-flush
    EXPECT_EQ(store.staged(), 0u);
    EXPECT_EQ(store.version(), 2u);

    store.stage_remove(0, 1);
    EXPECT_EQ(store.flush(), 3u) << "explicit flush publishes the remainder";
    EXPECT_EQ(store.flush(), 3u) << "empty flush is a no-op";
}

// ---------- readers-vs-writer soak (TSan coverage) ----------

namespace {

/// FNV-1a over the CSR arrays: any torn or half-applied publish makes
/// a reader's recomputed digest diverge from the writer's.
std::uint64_t graph_digest(const CsrGraph& g) {
    std::uint64_t h = 1469598103934665603ull;
    const auto mix = [&h](std::uint64_t x) {
        h ^= x;
        h *= 1099511628211ull;
    };
    mix(g.num_vertices());
    for (vertex_t v = 0; v < g.num_vertices(); ++v) {
        mix(g.degree(v));
        for (const vertex_t w : g.neighbors(v)) mix(w);
    }
    return h;
}

}  // namespace

TEST(VersionedStoreSoak, ReadersVsWriterSeeOnlyWholeBatches) {
    constexpr vertex_t kN = 64;
    constexpr int kBatches = 120;
    VersionedGraphStore store(kN);

    // Slot per version: the writer records the digest of what it
    // published; readers recompute from their pinned snapshot. 0 means
    // "not yet recorded" (the digest itself is never 0 in practice; the
    // reader spins until the slot fills).
    std::vector<std::atomic<std::uint64_t>> digest(kBatches + 2);
    for (auto& d : digest) d.store(0);
    digest[1].store(graph_digest(store.acquire().graph()));

    std::atomic<bool> done{false};
    std::atomic<std::uint64_t> reader_checks{0};

    std::vector<std::thread> readers;
    for (int t = 0; t < 4; ++t) {
        readers.emplace_back([&] {
            std::uint64_t last_version = 0;
            while (!done.load(std::memory_order_acquire)) {
                const SnapshotRef ref = store.acquire();
                ASSERT_GE(ref.version(), last_version)
                    << "published versions are monotone per reader";
                last_version = ref.version();
                std::uint64_t expect = 0;
                while ((expect = digest[ref.version()].load(
                            std::memory_order_acquire)) == 0) {
                }
                ASSERT_EQ(graph_digest(ref.graph()), expect)
                    << "version " << ref.version();
                reader_checks.fetch_add(1, std::memory_order_relaxed);
            }
        });
    }

    Xoshiro256 rng(42);
    for (int round = 0; round < kBatches; ++round) {
        MutationBatch b;
        for (int i = 0; i < 6; ++i) {
            const auto u = static_cast<vertex_t>(rng.next_below(kN));
            const auto v = static_cast<vertex_t>(rng.next_below(kN));
            if (rng.next_below(5) == 0)
                b.remove(u, v);
            else
                b.insert(u, v);
        }
        const std::uint64_t version = store.apply(b);
        const SnapshotRef ref = store.acquire();
        ASSERT_EQ(ref.version(), version) << "single writer: no one races us";
        digest[version].store(graph_digest(ref.graph()),
                              std::memory_order_release);
    }
    // The writer can outrun reader-thread startup entirely; hold `done`
    // until the readers have audited some snapshots. This always
    // terminates: the final version's digest slot is filled, so readers
    // keep completing checks against it.
    while (reader_checks.load(std::memory_order_relaxed) < 8)
        std::this_thread::yield();
    done.store(true, std::memory_order_release);
    for (auto& t : readers) t.join();

    EXPECT_GT(reader_checks.load(), 0u);
    // Everyone dropped their pins: the store shrinks back to one
    // snapshot.
    store.reclaim();
    EXPECT_EQ(store.live_snapshots(), 1u);
}

}  // namespace
}  // namespace sge
