// Ablation bench: how the vertex *partition* feeds Algorithm 3. The
// paper assigns contiguous id blocks to sockets (Algorithm 3 line 2);
// on label-shuffled graphs that cuts almost every edge, and every cut
// edge becomes a channel tuple. BFS region growing + relabelling
// reduces the cut, trading preprocessing for channel traffic — and on
// real NUMA hardware, for coherence traffic.

#include <cstdio>

#include "bench_util.hpp"
#include "gen/grid.hpp"
#include "gen/permute.hpp"
#include "graph/gpartition.hpp"
#include "graph/reorder.hpp"

namespace {

using namespace sge;
using namespace sge::bench;

std::uint64_t channel_tuples(const CsrGraph& g, int sockets) {
    BfsOptions opts;
    opts.engine = BfsEngine::kMultiSocket;
    opts.threads = sockets;
    opts.topology = Topology::emulate(sockets, 1, 1);
    opts.collect_stats = true;
    const BfsResult r = bfs(g, 0, opts);
    std::uint64_t tuples = 0;
    for (const auto& s : r.level_stats) tuples += s.remote_tuples;
    return tuples;
}

void run_workload(const char* label, const CsrGraph& g, int sockets) {
    const PartitionAssignment blocks = block_partition(g.num_vertices(), sockets);
    const PartitionAssignment grown = bfs_grow_partition(g, sockets, 7);
    const PartitionQuality q_blocks =
        evaluate_partition(g, blocks.part, sockets);
    const PartitionQuality q_grown = evaluate_partition(g, grown.part, sockets);

    const CsrGraph relabeled =
        apply_vertex_permutation(g, partition_order(grown));

    BfsOptions opts;
    opts.engine = BfsEngine::kMultiSocket;
    opts.threads = sockets;
    opts.topology = Topology::emulate(sockets, 1, 1);

    Table table({"partition", "cut arcs", "imbalance", "BFS channel tuples",
                 "BFS rate"});
    table.add_row({"blocks (paper)", fmt_u64(q_blocks.cut_arcs),
                   fmt("%.3f", q_blocks.imbalance),
                   fmt_u64(channel_tuples(g, sockets)),
                   fmt("%.1f ME/s", bfs_rate(g, opts) / 1e6)});
    table.add_row({"bfs-grown + relabel", fmt_u64(q_grown.cut_arcs),
                   fmt("%.3f", q_grown.imbalance),
                   fmt_u64(channel_tuples(relabeled, sockets)),
                   fmt("%.1f ME/s", bfs_rate(relabeled, opts) / 1e6)});
    std::printf("%s, %d sockets:\n", label, sockets);
    table.print();
    std::printf("\n");
}

}  // namespace

int main() {
    banner("Ablation: block vs BFS-grown partition for Algorithm 3",
           "Algorithm 3 line 2 (vertex-to-socket assignment)");

    const std::uint64_t n = scaled(1 << 14);

    {
        // Geometry-rich workload where region growing shines.
        GridParams params;
        params.width = static_cast<std::uint32_t>(1) << 7;
        params.height = static_cast<std::uint32_t>(n >> 7);
        EdgeList edges = generate_grid(params);
        permute_vertices(edges, 13);  // destroy the id-space geometry
        run_workload("shuffled grid", csr_from_edges(edges), 4);
    }
    {
        // The paper's R-MAT workload: weaker geometry, smaller win.
        run_workload("R-MAT arity 16", rmat_graph(n, 16 * n, 5), 4);
    }

    std::printf(
        "expected shape: on geometric graphs the grown partition cuts a "
        "small fraction\nof what blocks cut and ships correspondingly fewer "
        "tuples; on scale-free\ngraphs hubs touch every region and the gap "
        "narrows — why the paper's simple\nblock rule is defensible for "
        "R-MAT workloads.\n");
    return 0;
}
