#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "analytics/connected_components.hpp"
#include "analytics/level_histogram.hpp"
#include "analytics/shortest_path.hpp"
#include "analytics/st_connectivity.hpp"
#include "gen/rmat.hpp"
#include "gen/uniform.hpp"
#include "graph/builder.hpp"
#include "test_util.hpp"

namespace sge {
namespace {

// ---------- connected components ----------

TEST(ConnectedComponents, TwoCliques) {
    const CsrGraph g = test::two_cliques(6);
    const ComponentsResult r = connected_components(g);
    EXPECT_EQ(r.num_components(), 2u);
    EXPECT_EQ(r.sizes[0], 6u);
    EXPECT_EQ(r.sizes[1], 6u);
    for (vertex_t v = 0; v < 6; ++v) EXPECT_EQ(r.component[v], 0u);
    for (vertex_t v = 6; v < 12; ++v) EXPECT_EQ(r.component[v], 1u);
}

TEST(ConnectedComponents, IsolatedVerticesAreSingletons) {
    const CsrGraph g = csr_from_edges(EdgeList(7));
    const ComponentsResult r = connected_components(g);
    EXPECT_EQ(r.num_components(), 7u);
    for (const auto size : r.sizes) EXPECT_EQ(size, 1u);
}

TEST(ConnectedComponents, ConnectedGraphIsOneComponent) {
    const CsrGraph g = test::cycle_graph(50);
    const ComponentsResult r = connected_components(g);
    EXPECT_EQ(r.num_components(), 1u);
    EXPECT_EQ(r.largest_size(), 50u);
}

TEST(ConnectedComponents, SizesSumToVertexCount) {
    UniformParams params;
    params.num_vertices = 3000;
    params.degree = 2;
    const CsrGraph g = csr_from_edges(generate_uniform(params));
    const ComponentsResult r = connected_components(g);
    const std::uint64_t total =
        std::accumulate(r.sizes.begin(), r.sizes.end(), std::uint64_t{0});
    EXPECT_EQ(total, 3000u);
}

TEST(ConnectedComponents, AgreesWithBfsReachability) {
    RmatParams params;
    params.scale = 11;
    params.num_edges = 6000;  // sparse: several components
    const CsrGraph g = csr_from_edges(generate_rmat(params));
    const ComponentsResult r = connected_components(g);
    EXPECT_GT(r.num_components(), 1u);

    // BFS from vertex 0 must reach exactly component[0]'s members.
    BfsOptions opts;
    opts.engine = BfsEngine::kSerial;
    const BfsResult b = bfs(g, 0, opts);
    const std::uint32_t c0 = r.component[0];
    for (vertex_t v = 0; v < g.num_vertices(); ++v) {
        const bool reached = b.parent[v] != kInvalidVertex;
        ASSERT_EQ(reached, r.component[v] == c0) << "vertex " << v;
    }
    EXPECT_EQ(b.vertices_visited, r.sizes[c0]);
}

TEST(ConnectedComponents, EmptyGraph) {
    const ComponentsResult r = connected_components(csr_from_edges(EdgeList(0)));
    EXPECT_EQ(r.num_components(), 0u);
    EXPECT_EQ(r.largest_size(), 0u);
}

// ---------- parallel (Shiloach-Vishkin-style) components ----------

TEST(ParallelComponents, MatchesSerialExactly) {
    // Identical partition AND identical dense ids: both number
    // components by their smallest vertex.
    for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
        UniformParams params;
        params.num_vertices = 3000;
        params.degree = 2;  // fragmented: many components
        params.seed = seed;
        const CsrGraph g = csr_from_edges(generate_uniform(params));

        const ComponentsResult serial = connected_components(g);
        ParallelComponentsOptions opts;
        opts.threads = 4;
        opts.topology = Topology::emulate(2, 2, 1);
        const ComponentsResult parallel = connected_components_parallel(g, opts);
        ASSERT_EQ(serial.component, parallel.component) << "seed " << seed;
        ASSERT_EQ(serial.sizes, parallel.sizes) << "seed " << seed;
    }
}

TEST(ParallelComponents, LongChainConverges) {
    // A path is the worst case for hooking (O(log n) rounds of pointer
    // jumping must collapse a length-n chain).
    const CsrGraph g = test::path_graph(5000);
    ParallelComponentsOptions opts;
    opts.threads = 4;
    opts.topology = Topology::emulate(1, 4, 1);
    const ComponentsResult r = connected_components_parallel(g, opts);
    EXPECT_EQ(r.num_components(), 1u);
    EXPECT_EQ(r.sizes[0], 5000u);
}

TEST(ParallelComponents, IsolatedAndEmpty) {
    const ComponentsResult iso =
        connected_components_parallel(csr_from_edges(EdgeList(5)));
    EXPECT_EQ(iso.num_components(), 5u);
    const ComponentsResult empty =
        connected_components_parallel(csr_from_edges(EdgeList(0)));
    EXPECT_EQ(empty.num_components(), 0u);
}

TEST(ParallelComponents, SingleThreadDegenerates) {
    const CsrGraph g = test::two_cliques(7);
    const ComponentsResult r = connected_components_parallel(g);
    EXPECT_EQ(r.num_components(), 2u);
    EXPECT_EQ(r.sizes[0], 7u);
    EXPECT_EQ(r.sizes[1], 7u);
}

// ---------- st-connectivity ----------

TEST(StConnectivity, PathEndpoints) {
    const CsrGraph g = test::path_graph(20);
    const StResult r = st_connectivity(g, 0, 19);
    ASSERT_TRUE(r.connected);
    EXPECT_EQ(r.distance, 19u);
    ASSERT_EQ(r.path.size(), 20u);
    EXPECT_EQ(r.path.front(), 0u);
    EXPECT_EQ(r.path.back(), 19u);
}

TEST(StConnectivity, SameVertex) {
    const CsrGraph g = test::path_graph(5);
    const StResult r = st_connectivity(g, 2, 2);
    EXPECT_TRUE(r.connected);
    EXPECT_EQ(r.distance, 0u);
    EXPECT_EQ(r.path, (std::vector<vertex_t>{2}));
}

TEST(StConnectivity, DisconnectedPair) {
    const CsrGraph g = test::two_cliques(4);
    const StResult r = st_connectivity(g, 0, 6);
    EXPECT_FALSE(r.connected);
    EXPECT_TRUE(r.path.empty());
}

TEST(StConnectivity, DistanceMatchesBfsOnRandomPairs) {
    UniformParams params;
    params.num_vertices = 2000;
    params.degree = 4;
    const CsrGraph g = csr_from_edges(generate_uniform(params));

    BfsOptions opts;
    opts.engine = BfsEngine::kSerial;
    for (const vertex_t s : {0u, 17u, 500u}) {
        const BfsResult b = bfs(g, s, opts);
        for (const vertex_t t : {1u, 999u, 1500u}) {
            const StResult r = st_connectivity(g, s, t);
            const bool reachable = b.level[t] != kInvalidLevel;
            ASSERT_EQ(r.connected, reachable) << s << "->" << t;
            if (reachable) {
                ASSERT_EQ(r.distance, b.level[t]) << s << "->" << t;
            }
        }
    }
}

TEST(StConnectivity, PathEdgesExist) {
    RmatParams params;
    params.scale = 10;
    params.num_edges = 8000;
    const CsrGraph g = csr_from_edges(generate_rmat(params));
    const StResult r = st_connectivity(g, 0, 1);
    if (!r.connected) GTEST_SKIP() << "0 and 1 in different components";
    ASSERT_GE(r.path.size(), 2u);
    EXPECT_EQ(r.path.front(), 0u);
    EXPECT_EQ(r.path.back(), 1u);
    for (std::size_t i = 0; i + 1 < r.path.size(); ++i)
        ASSERT_TRUE(g.has_edge(r.path[i], r.path[i + 1]))
            << r.path[i] << "-" << r.path[i + 1];
    EXPECT_EQ(r.path.size(), r.distance + 1);
}

TEST(StConnectivity, ExpandsFewerVerticesThanFullBfs) {
    UniformParams params;
    params.num_vertices = 20000;
    params.degree = 8;
    const CsrGraph g = csr_from_edges(generate_uniform(params));
    const StResult r = st_connectivity(g, 0, 12345);
    ASSERT_TRUE(r.connected);
    EXPECT_LT(r.vertices_expanded, g.num_vertices());
}

TEST(StConnectivity, OutOfRangeThrows) {
    const CsrGraph g = test::path_graph(4);
    EXPECT_THROW(st_connectivity(g, 0, 4), std::out_of_range);
}

// ---------- shortest path ----------

TEST(ShortestPath, ExtractsRootToTarget) {
    const CsrGraph g = test::path_graph(10);
    const auto p = shortest_path(g, 0, 7);
    ASSERT_TRUE(p.has_value());
    ASSERT_EQ(p->size(), 8u);
    for (vertex_t i = 0; i < 8; ++i) EXPECT_EQ((*p)[i], i);
}

TEST(ShortestPath, UnreachableTargetIsNullopt) {
    const CsrGraph g = test::two_cliques(3);
    EXPECT_FALSE(shortest_path(g, 0, 5).has_value());
}

TEST(ShortestPath, ExtractPathValidatesInput) {
    const CsrGraph g = test::path_graph(5);
    BfsOptions opts;
    opts.engine = BfsEngine::kSerial;
    BfsResult r = bfs(g, 0, opts);
    EXPECT_THROW(extract_path(r, 99), std::out_of_range);
    // Corrupt the chain into a cycle.
    r.parent[1] = 2;
    r.parent[2] = 1;
    EXPECT_THROW(extract_path(r, 4), std::invalid_argument);
}

TEST(ShortestPath, WorksWithParallelEngine) {
    UniformParams params;
    params.num_vertices = 1000;
    params.degree = 6;
    const CsrGraph g = csr_from_edges(generate_uniform(params));
    BfsOptions opts;
    opts.engine = BfsEngine::kMultiSocket;
    opts.threads = 4;
    opts.topology = Topology::emulate(2, 2, 1);
    const auto p = shortest_path(g, 0, 500, opts);
    ASSERT_TRUE(p.has_value());
    for (std::size_t i = 0; i + 1 < p->size(); ++i)
        ASSERT_TRUE(g.has_edge((*p)[i], (*p)[i + 1]));
}

// ---------- level histogram ----------

TEST(LevelHistogram, CountsPerLevel) {
    const CsrGraph g = test::star_graph(10);
    BfsOptions opts;
    opts.engine = BfsEngine::kSerial;
    const BfsResult r = bfs(g, 0, opts);
    const auto h = level_histogram(r);
    ASSERT_EQ(h.size(), 2u);
    EXPECT_EQ(h[0], 1u);
    EXPECT_EQ(h[1], 9u);
}

TEST(LevelHistogram, SkipsUnreached) {
    const CsrGraph g = test::two_cliques(4);
    BfsOptions opts;
    opts.engine = BfsEngine::kSerial;
    const BfsResult r = bfs(g, 0, opts);
    const auto h = level_histogram(r);
    std::uint64_t total = 0;
    for (const auto c : h) total += c;
    EXPECT_EQ(total, 4u);
}

TEST(LevelHistogram, RequiresLevels) {
    const CsrGraph g = test::path_graph(3);
    BfsOptions opts;
    opts.engine = BfsEngine::kSerial;
    opts.compute_levels = false;
    const BfsResult r = bfs(g, 0, opts);
    EXPECT_THROW(level_histogram(r), std::invalid_argument);
}

TEST(LevelHistogram, RenderProducesOneLinePerLevel) {
    const std::vector<std::uint64_t> h = {1, 5, 3};
    const std::string s = render_level_histogram(h, 20);
    EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 3);
    EXPECT_NE(s.find("level 0"), std::string::npos);
    EXPECT_NE(s.find("level 2"), std::string::npos);
}

}  // namespace
}  // namespace sge
