#include "graph/csr_graph.hpp"

#include <algorithm>

namespace sge {

bool CsrGraph::has_edge(vertex_t u, vertex_t v) const noexcept {
    if (u >= num_vertices()) return false;
    const auto adj = neighbors(u);
    // Sorted adjacencies are the builder default; fall back to a linear
    // scan when the prefix looks unsorted (cheap heuristic: check once).
    if (adj.size() > 8 && std::is_sorted(adj.begin(), adj.end()))
        return std::binary_search(adj.begin(), adj.end(), v);
    return std::find(adj.begin(), adj.end(), v) != adj.end();
}

bool CsrGraph::well_formed() const noexcept {
    if (offsets_.empty()) return targets_.size() == 0;
    if (offsets_[0] != 0) return false;
    const vertex_t n = num_vertices();
    for (vertex_t v = 0; v < n; ++v)
        if (offsets_[v] > offsets_[v + 1]) return false;
    if (offsets_[n] != targets_.size()) return false;
    for (std::size_t e = 0; e < targets_.size(); ++e)
        if (targets_[e] >= n) return false;
    return true;
}

bool operator==(const CsrGraph& a, const CsrGraph& b) noexcept {
    return a.offsets_.size() == b.offsets_.size() &&
           a.targets_.size() == b.targets_.size() &&
           std::equal(a.offsets_.begin(), a.offsets_.end(), b.offsets_.begin()) &&
           std::equal(a.targets_.begin(), a.targets_.end(), b.targets_.begin());
}

}  // namespace sge
