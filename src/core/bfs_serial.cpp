#include "core/engine_common.hpp"
#include "graph/csr_compressed.hpp"
#include "graph/paged_graph.hpp"
#include "runtime/timer.hpp"

namespace sge::detail {

namespace {

/// Sequential reference BFS: two std::vector queues, no atomics. This is
/// the "best sequential implementation" every parallel-BFS paper must
/// beat (Section I cites Bader/Cong/Feo [3] on how rarely that happens),
/// and the oracle the validator compares reachability against.
///
/// Writes into caller-owned `result` (run_into's reuse path): assign()
/// keeps the capacity of a previous query's arrays. The serial engine
/// has no visited bitmap — parent[v] == kInvalidVertex IS the visited
/// test — so the sentinel fill stays, unlike the parallel engines.
///
/// One body for both CSR backends (scan_adjacency); the per-level
/// ThreadCounters instance carries the edge and decode accounting the
/// scan helper produces.
template <class Graph>
void bfs_serial_impl(const Graph& g, vertex_t root, const BfsOptions& options,
                     BfsResult& result) {
    check_root(g, root);
    const vertex_t n = g.num_vertices();

    reset_result(result, n, options.compute_levels);
    WallTimer timer;

    result.parent.assign(n, kInvalidVertex);
    if (options.compute_levels) result.level.assign(n, kInvalidLevel);

    std::vector<vertex_t> current;
    std::vector<vertex_t> next;
    current.push_back(root);
    result.parent[root] = root;
    if (options.compute_levels) result.level[root] = 0;
    result.vertices_visited = 1;

    level_t depth = 0;
    WallTimer level_timer;
    while (!current.empty()) {
        BfsLevelStats stats;
        stats.frontier_size = current.size();
        ThreadCounters counters;
        level_timer.reset();
        for (const vertex_t u : current) {
            scan_adjacency(
                g, u, counters, [](vertex_t) {},
                [&](vertex_t v) {
                    ++stats.bitmap_checks;
                    if (result.parent[v] == kInvalidVertex) {
                        // Plain claim (no atomics here): counted as a
                        // "win" so sum(atomic_wins) == n-1 holds for
                        // every engine.
                        if constexpr (obs::compiled_in()) ++stats.atomic_wins;
                        result.parent[v] = u;
                        if (options.compute_levels)
                            result.level[v] = depth + 1;
                        next.push_back(v);
                        ++result.vertices_visited;
                    } else {
                        if constexpr (obs::compiled_in()) ++stats.bitmap_skips;
                    }
                });
        }
        stats.seconds = level_timer.seconds();
        result.edges_traversed += counters.edges_scanned;
        stats.edges_scanned = counters.edges_scanned;
        if constexpr (obs::compiled_in()) {
            stats.bytes_decoded = counters.bytes_decoded;
            stats.decode_ns = counters.decode_ns;
        }
        if (options.collect_stats) result.level_stats.push_back(stats);
        ++depth;
        current.swap(next);
        next.clear();
        prefetch_next_frontier(g, current.data(), current.size());
        // Same once-per-level cadence as the parallel engines' tid-0
        // window, so fire_after_polls(k) means "cancel at level k" here
        // too. Polled after the swap so a finished traversal is never
        // reported cancelled.
        if (!current.empty() && poll_cancel(options))
            throw_cancelled("bfs_serial", depth, result.vertices_visited);
    }

    result.num_levels = depth;
    result.seconds = timer.seconds();
}

}  // namespace

void bfs_serial(const CsrGraph& g, vertex_t root, const BfsOptions& options,
                BfsResult& result) {
    bfs_serial_impl(g, root, options, result);
}

void bfs_serial(const CompressedCsrGraph& g, vertex_t root,
                const BfsOptions& options, BfsResult& result) {
    bfs_serial_impl(g, root, options, result);
}

void bfs_serial(const PagedGraph& g, vertex_t root, const BfsOptions& options,
                BfsResult& result) {
    bfs_serial_impl(g, root, options, result);
}

}  // namespace sge::detail
