#include <gtest/gtest.h>

#include <filesystem>

#include "analytics/connected_components.hpp"
#include "analytics/level_histogram.hpp"
#include "analytics/shortest_path.hpp"
#include "core/bfs.hpp"
#include "core/validate.hpp"
#include "gen/permute.hpp"
#include "gen/rmat.hpp"
#include "gen/uniform.hpp"
#include "graph/builder.hpp"
#include "graph/degree_stats.hpp"
#include "graph/io.hpp"
#include "test_util.hpp"

namespace sge {
namespace {

using test::expect_equivalent;

// End-to-end: generate -> permute -> build -> traverse on the paper's
// emulated 4-socket EX -> validate -> analyze. This is the full pipeline
// every benchmark binary runs.
TEST(Integration, RmatPipelineOnEmulatedEx) {
    RmatParams params;
    params.scale = 13;
    params.num_edges = 1 << 16;
    params.seed = 2026;
    EdgeList edges = generate_rmat(params);
    permute_vertices(edges, 1);
    const CsrGraph g = csr_from_edges(edges);
    ASSERT_TRUE(g.well_formed());

    BfsOptions opts;
    opts.engine = BfsEngine::kMultiSocket;
    opts.threads = 16;
    opts.topology = Topology::nehalem_ex();
    opts.collect_stats = true;
    BfsRunner runner(opts);

    // Traverse from several random-ish roots, validating each.
    BfsOptions serial;
    serial.engine = BfsEngine::kSerial;
    serial.collect_stats = true;
    for (const vertex_t root : {0u, 4097u, 8190u}) {
        const BfsResult r = runner.run(g, root);
        const auto report = validate_bfs_tree(g, root, r);
        ASSERT_TRUE(report.ok) << report.error;
        expect_equivalent(bfs(g, root, serial), r);

        // Stats must cover every level and show the double-check working:
        // strictly fewer atomics than checks on a graph this connected.
        ASSERT_EQ(r.level_stats.size(), r.num_levels);
        std::uint64_t checks = 0;
        std::uint64_t atomics = 0;
        for (const auto& s : r.level_stats) {
            checks += s.bitmap_checks;
            atomics += s.atomic_ops;
        }
        if (r.edges_traversed > 1000) {
            EXPECT_LT(atomics, checks);
        }
    }
}

TEST(Integration, SaveLoadTraverseMatchesInMemory) {
    UniformParams params;
    params.num_vertices = 5000;
    params.degree = 8;
    const CsrGraph g = csr_from_edges(generate_uniform(params));

    const auto dir = std::filesystem::temp_directory_path() / "sge_integ";
    std::filesystem::create_directories(dir);
    const std::string path = (dir / "u.csr").string();
    write_csr(g, path);
    const CsrGraph loaded = read_csr(path);
    std::filesystem::remove_all(dir);

    BfsOptions opts;
    opts.engine = BfsEngine::kBitmap;
    opts.threads = 4;
    opts.topology = Topology::emulate(1, 4, 1);
    expect_equivalent(bfs(g, 7, opts), bfs(loaded, 7, opts));
}

TEST(Integration, ComponentsThenPathWithinLargest) {
    UniformParams params;
    params.num_vertices = 4000;
    params.degree = 3;
    const CsrGraph g = csr_from_edges(generate_uniform(params));

    const ComponentsResult cc = connected_components(g);
    const std::uint32_t giant = cc.largest_component();
    ASSERT_GT(cc.largest_size(), 2000u);  // arity-6 undirected: giant exists

    // Pick two members of the giant component; a path must exist.
    vertex_t s = kInvalidVertex;
    vertex_t t = kInvalidVertex;
    for (vertex_t v = 0; v < g.num_vertices(); ++v) {
        if (cc.component[v] != giant) continue;
        if (s == kInvalidVertex) {
            s = v;
        } else {
            t = v;  // keep overwriting: ends far apart in id space
        }
    }
    BfsOptions opts;
    opts.engine = BfsEngine::kMultiSocket;
    opts.threads = 8;
    opts.topology = Topology::nehalem_ep();
    const auto p = shortest_path(g, s, t, opts);
    ASSERT_TRUE(p.has_value());
    for (std::size_t i = 0; i + 1 < p->size(); ++i)
        ASSERT_TRUE(g.has_edge((*p)[i], (*p)[i + 1]));
}

TEST(Integration, EngineAgreementAcrossAllFourEnginesManyRoots) {
    RmatParams params;
    params.scale = 11;
    params.num_edges = 1 << 14;
    const CsrGraph g = csr_from_edges(generate_rmat(params));

    BfsOptions serial;
    serial.engine = BfsEngine::kSerial;

    BfsOptions naive;
    naive.engine = BfsEngine::kNaive;
    naive.threads = 3;
    naive.topology = Topology::emulate(1, 3, 1);
    BfsRunner naive_runner(naive);

    BfsOptions bitmap;
    bitmap.engine = BfsEngine::kBitmap;
    bitmap.threads = 5;
    bitmap.topology = Topology::emulate(1, 5, 1);
    BfsRunner bitmap_runner(bitmap);

    BfsOptions multi;
    multi.engine = BfsEngine::kMultiSocket;
    multi.threads = 6;
    multi.topology = Topology::emulate(3, 2, 1);
    BfsRunner multi_runner(multi);

    for (const vertex_t root : {1u, 100u, 2047u}) {
        const BfsResult expected = bfs(g, root, serial);
        expect_equivalent(expected, naive_runner.run(g, root));
        expect_equivalent(expected, bitmap_runner.run(g, root));
        expect_equivalent(expected, multi_runner.run(g, root));
    }
}

TEST(Integration, DegreeStatsMatchWorkloadFamilies) {
    UniformParams up;
    up.num_vertices = 1 << 12;
    up.degree = 8;
    const DegreeStats uniform = compute_degree_stats(
        csr_from_edges(generate_uniform(up)));

    RmatParams rp;
    rp.scale = 12;
    rp.num_edges = std::uint64_t{8} << 12;
    const DegreeStats rmat = compute_degree_stats(
        csr_from_edges(generate_rmat(rp)));

    // Uniform: tight around 16 (8 out + ~8 in, undirected). R-MAT: same
    // mean neighbourhood but a far heavier tail.
    EXPECT_GT(rmat.max_degree, 2 * uniform.max_degree);
    EXPECT_LT(uniform.max_degree, 64u);
}

}  // namespace
}  // namespace sge
