#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "graph/weighted.hpp"

namespace sge {

/// Shortest-path distance. 64-bit: paths can accumulate ~n * max_weight.
using dist_t = std::uint64_t;
inline constexpr dist_t kInfiniteDistance = std::numeric_limits<dist_t>::max();

/// Output of a single-source shortest-path computation.
struct SsspResult {
    /// distance[v] = weight of the shortest s->v path (kInfiniteDistance
    /// when unreachable).
    std::vector<dist_t> distance;
    /// Shortest-path tree; the source is its own parent.
    std::vector<vertex_t> parent;
    std::uint64_t vertices_settled = 0;
    std::uint64_t edges_relaxed = 0;
    double seconds = 0.0;
};

/// Textbook Dijkstra (binary heap, lazy deletion) — the uniform-cost
/// search the paper's introduction lists among the BFS-derived searches
/// ("best-first search, uniform-cost search, greedy-search and A*").
/// The exact reference every other SSSP here is validated against.
SsspResult dijkstra(const WeightedCsrGraph& g, vertex_t source);

/// Delta-stepping (Meyer & Sanders) options.
struct DeltaSteppingOptions {
    /// Bucket width. 0 selects max(1, mean edge weight), the customary
    /// starting point.
    weight_t delta = 0;
};

/// Delta-stepping SSSP: vertices bucketed by tentative distance / delta;
/// each bucket settles by repeated *light*-edge (w <= delta) relaxation
/// phases, then relaxes heavy edges once. With delta = 1 and unit
/// weights this degenerates to BFS; with delta = infinity to
/// Bellman-Ford. The bucket phases are the natural parallel grain — the
/// same level-synchronous shape as the paper's BFS.
SsspResult delta_stepping(const WeightedCsrGraph& g, vertex_t source,
                          const DeltaSteppingOptions& options = {});

}  // namespace sge
