#include "analytics/pagerank.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <stdexcept>

#include "concurrency/spin_barrier.hpp"
#include "concurrency/thread_team.hpp"

namespace sge {

PageRankResult pagerank(const CsrGraph& g, const PageRankOptions& options) {
    if (options.damping < 0.0 || options.damping >= 1.0)
        throw std::invalid_argument("pagerank: damping must be in [0, 1)");
    const vertex_t n = g.num_vertices();
    PageRankResult result;
    if (n == 0) {
        result.converged = true;
        return result;
    }

    const double d = options.damping;
    const double base = (1.0 - d) / n;
    result.score.assign(n, 1.0 / n);
    std::vector<double> next(n, 0.0);
    // contribution[u] = score[u] / deg(u), precomputed per iteration so
    // the pull loop is a pure stream over the CSR.
    std::vector<double> contribution(n, 0.0);

    const int threads = std::max(1, options.threads);
    ThreadTeam team(threads,
                    options.topology ? *options.topology : Topology::detect());
    SpinBarrier barrier(threads);

    struct Shared {
        // double accumulation via per-thread slots, reduced by tid 0
        // (deterministic order — an atomic-double sum would not be).
        std::vector<double> dangling_parts;
        std::vector<double> error_parts;
        double dangling_share = 0.0;
        double error = 0.0;
        bool stop = false;
        int iterations = 0;
    } shared;
    shared.dangling_parts.assign(static_cast<std::size_t>(threads), 0.0);
    shared.error_parts.assign(static_cast<std::size_t>(threads), 0.0);

    team.run([&](int tid) {
        const std::size_t per =
            (n + static_cast<std::size_t>(threads) - 1) / threads;
        const std::size_t begin = static_cast<std::size_t>(tid) * per;
        const std::size_t end = std::min<std::size_t>(begin + per, n);

        for (;;) {
            // Pass 1: per-vertex contributions + this thread's dangling mass.
            double dangling = 0.0;
            for (std::size_t v = begin; v < end; ++v) {
                const auto deg = g.degree(static_cast<vertex_t>(v));
                if (deg == 0) {
                    dangling += result.score[v];
                    contribution[v] = 0.0;
                } else {
                    contribution[v] = result.score[v] / static_cast<double>(deg);
                }
            }
            shared.dangling_parts[static_cast<std::size_t>(tid)] = dangling;
            if (!barrier.arrive_and_wait()) return;

            if (tid == 0) {
                double total = 0.0;
                for (const double p : shared.dangling_parts) total += p;
                shared.dangling_share = d * total / n;
            }
            if (!barrier.arrive_and_wait()) return;

            // Pass 2: pull.
            double error = 0.0;
            const double add = base + shared.dangling_share;
            for (std::size_t v = begin; v < end; ++v) {
                double sum = 0.0;
                for (const vertex_t u : g.neighbors(static_cast<vertex_t>(v)))
                    sum += contribution[u];
                next[v] = add + d * sum;
                error += std::fabs(next[v] - result.score[v]);
            }
            shared.error_parts[static_cast<std::size_t>(tid)] = error;
            if (!barrier.arrive_and_wait()) return;

            if (tid == 0) {
                shared.error = 0.0;
                for (const double p : shared.error_parts) shared.error += p;
                result.score.swap(next);
                ++shared.iterations;
                shared.stop = shared.error < options.tolerance ||
                              shared.iterations >= options.max_iterations;
            }
            if (!barrier.arrive_and_wait()) return;
            if (shared.stop) break;
        }
    }, &barrier);

    result.iterations = shared.iterations;
    result.error = shared.error;
    result.converged = shared.error < options.tolerance;
    return result;
}

}  // namespace sge
