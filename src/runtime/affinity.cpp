#include "runtime/affinity.hpp"

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

#include "runtime/fault.hpp"

namespace sge {

bool pin_current_thread(int cpu) noexcept {
#ifdef __linux__
    if (cpu < 0) return false;
    // Fault site `pin`: simulate the cpuset/container refusal path.
    if (fault::should_fire(fault::Site::kPin)) return false;
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(cpu, &set);
    return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
    (void)cpu;
    return false;
#endif
}

int current_cpu() noexcept {
#ifdef __linux__
    return sched_getcpu();
#else
    return -1;
#endif
}

}  // namespace sge
