#include <atomic>

#include "concurrency/spin_barrier.hpp"
#include "core/engine_common.hpp"
#include "core/frontier.hpp"
#include "runtime/timer.hpp"

namespace sge::detail {

/// Algorithm 1: the high-level parallel BFS before any of the paper's
/// optimizations. One shared current/next queue pair; the visited check
/// is an unconditional atomic on the parent array (the listing's lines
/// 10-12 "must be executed atomically"); vertices are dequeued and
/// enqueued one at a time (LockedDequeue/LockedEnqueue). This is the
/// baseline curve of Figure 5.
BfsResult bfs_naive(const CsrGraph& g, vertex_t root, const BfsOptions& options,
                    ThreadTeam& team) {
    check_root(g, root);
    const vertex_t n = g.num_vertices();
    const int threads = team.size();

    BfsResult result;
    result.parent.resize(n);
    if (options.compute_levels) result.level.resize(n);

    FrontierQueue queues[2] = {FrontierQueue(n), FrontierQueue(n)};
    SpinBarrier barrier(threads);
    // kStatic keeps chunk == 1: the unbatched LockedDequeue of
    // Algorithm 1. Weighted plans batch by out-edges instead.
    WorkQueue wq(threads, team_socket_map(team));

    struct Shared {
        std::atomic<std::uint64_t> visited{0};
        std::atomic<std::uint64_t> edges{0};
        int current = 0;   // queue index; written by tid 0 between barriers
        bool done = false; // written by tid 0 between barriers
        // Atomic so the watchdog may snapshot it mid-run.
        std::atomic<std::uint32_t> levels_run{0};
    } shared;

    LevelAccumLog stats;
    stats.emplace_back();
    stats[0].frontier_size = 1;

    vertex_t* const parent = result.parent.data();
    level_t* const level = options.compute_levels ? result.level.data() : nullptr;
    const bool collect = options.collect_stats;
    SpanRecorder spans(threads, collect);

    LevelWatchdog watchdog(resolve_watchdog_seconds(options), barrier, [&] {
        return "level=" +
               std::to_string(shared.levels_run.load(std::memory_order_relaxed)) +
               " q0=" + std::to_string(queues[0].size()) +
               " q1=" + std::to_string(queues[1].size());
    });

    WallTimer timer;
    team.run([&](int tid) {
        // Parallel init: each worker owns an equal slice of the arrays.
        const auto [init_begin, init_end] = split_range(n, threads, tid);
        for (std::size_t v = init_begin; v < init_end; ++v) {
            parent[v] = kInvalidVertex;
            if (level != nullptr) level[v] = kInvalidLevel;
        }
        if (!barrier.arrive_and_wait()) return;

        if (tid == 0) {
            parent[root] = root;
            if (level != nullptr) level[root] = 0;
            queues[0].push_one(root);
            shared.visited.fetch_add(1, std::memory_order_relaxed);
            plan_frontier(wq, queues[0].data(), queues[0].size(), g,
                          options.schedule, 1);
        }
        if (!barrier.arrive_and_wait()) return;

        level_t depth = 0;
        std::uint64_t total_edges = 0;
        std::uint64_t discovered = 0;
        WallTimer level_timer;  // tid 0 stamps per-level wall time
        for (;;) {
            const std::uint64_t span_start = spans.now(timer);
            const int cur = shared.current;
            FrontierQueue& cq = queues[cur];
            FrontierQueue& nq = queues[1 - cur];
            ThreadCounters counters;
            // Deque slots never relocate, so the reference stays valid
            // across tid 0's emplace_back between the two barriers.
            LevelAccum& slot = stats[depth];

            std::size_t begin = 0;
            std::size_t end = 0;
            WorkQueue::Claim cl;
            while ((cl = wq.claim(tid, begin, end)) != WorkQueue::Claim::kNone) {
                counters.count_chunk(cl == WorkQueue::Claim::kStolen);
                for (std::size_t i = begin; i < end; ++i) {
                    const vertex_t u = cq[i];
                    const auto adj = g.neighbors(u);
                    counters.edges_scanned += adj.size();
                    for (const vertex_t v : adj) {
                        // Unconditional atomic claim: P[v] == INF -> u.
                        ++counters.bitmap_checks;
                        ++counters.atomic_ops;
                        std::atomic_ref<vertex_t> pv(parent[v]);
                        vertex_t expected = kInvalidVertex;
                        if (pv.compare_exchange_strong(
                                expected, u, std::memory_order_acq_rel,
                                std::memory_order_relaxed)) {
                            counters.count_win();
                            if (level != nullptr) level[v] = depth + 1;
                            nq.push_one(v);
                            ++discovered;
                        }
                    }
                }
            }
            total_edges += counters.edges_scanned;
            counters.flush_into(slot);
            if (!timed_wait(barrier, slot, collect)) return;

            if (tid == 0) {
                slot.seconds = level_timer.seconds();
                level_timer.reset();
                cq.reset();
                shared.current = 1 - cur;
                shared.done = nq.size() == 0;
                shared.levels_run.fetch_add(1, std::memory_order_relaxed);
                if (!shared.done) {
                    stats.emplace_back();
                    stats[depth + 1].frontier_size = nq.size();
                    plan_frontier(wq, nq.data(), nq.size(), g,
                                  options.schedule, 1);
                }
            }
            if (!timed_wait(barrier, slot, collect)) return;
            spans.record(tid, depth, span_start, spans.now(timer));
            if (shared.done) break;
            ++depth;
        }

        shared.edges.fetch_add(total_edges, std::memory_order_relaxed);
        shared.visited.fetch_add(discovered, std::memory_order_relaxed);
    }, &barrier);
    finish_watchdog(watchdog, "bfs_naive");
    result.seconds = timer.seconds();
    spans.collect_into(result);

    const std::uint32_t levels = shared.levels_run.load(std::memory_order_relaxed);
    result.vertices_visited = shared.visited.load(std::memory_order_relaxed);
    result.edges_traversed = shared.edges.load(std::memory_order_relaxed);
    result.num_levels = levels;
    if (options.collect_stats) copy_level_stats(result, stats, levels);
    return result;
}

}  // namespace sge::detail
