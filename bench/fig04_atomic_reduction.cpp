// Figure 4: "Number of bitmap accesses and atomic operations in a BFS
// search, random uniform graph with 16 millions of edges, and average
// arity 8."
//
// Runs Algorithm 2 with per-level instrumentation and prints, per BFS
// level, the bitmap queries versus the atomic test-and-sets actually
// issued. The paper's point: the cheap pre-check collapses atomics in
// the later levels, where nearly every neighbour is already visited.

#include <cstdio>

#include "bench_util.hpp"
#include "report.hpp"

int main() {
    using namespace sge;
    using namespace sge::bench;

    banner("Figure 4: bitmap accesses vs atomic operations per BFS level",
           "Fig. 4");

    // Paper: 2M vertices, 16M edges (arity 8). CI default: 1/16 of that.
    const std::uint64_t n = scaled(1 << 17);
    const std::uint64_t m = 8 * n;
    const CsrGraph g = uniform_graph(n, m);

    BfsOptions options;
    options.engine = BfsEngine::kBitmap;
    options.threads = 4;
    options.topology = Topology::emulate(1, 4, 1);
    options.collect_stats = true;
    const BfsResult r = bfs(g, 0, options);

    BenchReport report("fig04_atomic_reduction", "Figure 4");
    report.set_topology(options.topology->describe());
    report.set_workload("uniform", 1 << 17);
    report.add_levels("levels", {{"threads", options.threads}}, r.level_stats);
    report.write();

    Table table({"level", "frontier", "edges scanned", "bitmap accesses",
                 "atomic ops", "atomics filtered"});
    std::uint64_t total_checks = 0;
    std::uint64_t total_atomics = 0;
    for (std::size_t d = 0; d < r.level_stats.size(); ++d) {
        const BfsLevelStats& s = r.level_stats[d];
        total_checks += s.bitmap_checks;
        total_atomics += s.atomic_ops;
        const double filtered =
            s.bitmap_checks == 0
                ? 0.0
                : 100.0 * (1.0 - static_cast<double>(s.atomic_ops) /
                                     static_cast<double>(s.bitmap_checks));
        table.add_row({fmt_u64(d), fmt_u64(s.frontier_size),
                       fmt_u64(s.edges_scanned), fmt_u64(s.bitmap_checks),
                       fmt_u64(s.atomic_ops), fmt("%.1f%%", filtered)});
    }
    table.print();

    std::printf("\ntotals: %llu bitmap accesses, %llu atomic ops (%.1f%% of "
                "accesses escalated)\n",
                static_cast<unsigned long long>(total_checks),
                static_cast<unsigned long long>(total_atomics),
                100.0 * static_cast<double>(total_atomics) /
                    static_cast<double>(total_checks));
    std::printf(
        "paper's shape: atomics track accesses in the first levels, then "
        "fall to a tiny\nfraction in the tail levels as the bitmap check "
        "filters visited vertices.\n");
    return 0;
}
