#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "concurrency/channel.hpp"

namespace sge {
namespace {

constexpr std::uint64_t kEmpty = ~0ULL;
using Chan = Channel<std::uint64_t, kEmpty>;

TEST(Channel, PushPopRoundTrip) {
    Chan chan(16);
    const std::uint64_t items[] = {1, 2, 3, 4, 5};
    chan.push_batch(items, 5);

    std::uint64_t out[8];
    EXPECT_EQ(chan.pop_batch(out, 8), 5u);
    for (std::uint64_t i = 0; i < 5; ++i) EXPECT_EQ(out[i], i + 1);
    EXPECT_EQ(chan.pop_batch(out, 8), 0u);
}

TEST(Channel, SpillBeyondRingCapacityLosesNothing) {
    Chan chan(4);  // tiny ring: most items must take the spill path
    std::vector<std::uint64_t> sent(1000);
    for (std::uint64_t i = 0; i < sent.size(); ++i) sent[i] = i;
    chan.push_batch(sent.data(), sent.size());

    std::vector<std::uint64_t> got;
    std::uint64_t buf[32];
    for (;;) {
        const std::size_t k = chan.pop_batch(buf, 32);
        if (k == 0) break;
        got.insert(got.end(), buf, buf + k);
    }
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, sent);
}

TEST(Channel, CountersTrackTraffic) {
    Chan chan(8);
    const std::uint64_t items[] = {10, 20, 30};
    chan.push_batch(items, 3);
    EXPECT_EQ(chan.pushed(), 3u);
    std::uint64_t out[4];
    EXPECT_EQ(chan.pop_batch(out, 4), 3u);
    EXPECT_EQ(chan.popped(), 3u);
}

TEST(Channel, InterleavedPushPopPhases) {
    // Mimics the BFS usage: push phase, drain phase, repeated.
    Chan chan(8);
    std::uint64_t buf[16];
    for (std::uint64_t level = 0; level < 50; ++level) {
        std::uint64_t items[20];
        for (std::uint64_t i = 0; i < 20; ++i) items[i] = level * 100 + i;
        chan.push_batch(items, 20);

        std::vector<std::uint64_t> got;
        for (;;) {
            const std::size_t k = chan.pop_batch(buf, 16);
            if (k == 0) break;
            got.insert(got.end(), buf, buf + k);
        }
        std::sort(got.begin(), got.end());
        ASSERT_EQ(got.size(), 20u) << "level " << level;
        for (std::uint64_t i = 0; i < 20; ++i)
            ASSERT_EQ(got[i], level * 100 + i) << "level " << level;
    }
}

TEST(Channel, PartialFinalBatchesDrainCompletely) {
    // Regression for the multisocket flush path: a batch size that does
    // not divide the frontier leaves a partial final batch per producer
    // and per level. Every phase must end fully drained — the engine
    // asserts drained() after its drain loop, so the counters must
    // agree exactly, spill path included.
    Chan chan(8);
    std::uint64_t buf[16];
    std::uint64_t next = 0;
    for (std::uint64_t level = 0; level < 20; ++level) {
        const std::uint64_t frontier = 3 + level * 13;  // never % 7 == 0 pattern
        std::uint64_t batch[7];
        std::size_t fill = 0;
        for (std::uint64_t i = 0; i < frontier; ++i) {
            batch[fill++] = next++;
            if (fill == 7) {
                chan.push_batch(batch, fill);
                fill = 0;
            }
        }
        if (fill > 0) chan.push_batch(batch, fill);  // the partial batch

        std::uint64_t drained_items = 0;
        for (;;) {
            const std::size_t k = chan.pop_batch(buf, 16);
            if (k == 0) break;
            drained_items += k;
        }
        ASSERT_EQ(drained_items, frontier) << "level " << level;
        ASSERT_TRUE(chan.drained()) << "level " << level;
        ASSERT_EQ(chan.pushed(), chan.popped());
    }
    EXPECT_EQ(chan.pushed(), next);
}

TEST(Channel, MultiProducerMultiConsumerStress) {
    Chan chan(64);
    constexpr int kProducers = 4;
    constexpr int kConsumers = 3;
    constexpr std::uint64_t kPerProducer = 20000;

    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&chan, p] {
            std::uint64_t batch[16];
            std::size_t fill = 0;
            for (std::uint64_t i = 0; i < kPerProducer; ++i) {
                batch[fill++] = static_cast<std::uint64_t>(p) * kPerProducer + i;
                if (fill == 16) {
                    chan.push_batch(batch, fill);
                    fill = 0;
                }
            }
            if (fill > 0) chan.push_batch(batch, fill);
        });
    }

    std::atomic<std::uint64_t> consumed{0};
    std::atomic<bool> producers_done{false};
    std::vector<std::uint64_t> seen[kConsumers];
    std::vector<std::thread> consumers;
    for (int c = 0; c < kConsumers; ++c) {
        consumers.emplace_back([&, c] {
            std::uint64_t buf[32];
            for (;;) {
                const std::size_t k = chan.pop_batch(buf, 32);
                if (k == 0) {
                    if (producers_done.load()) {
                        // One final drain after the producers are done:
                        // anything pushed before the flag is visible now.
                        const std::size_t k2 = chan.pop_batch(buf, 32);
                        if (k2 == 0) return;
                        seen[c].insert(seen[c].end(), buf, buf + k2);
                        consumed.fetch_add(k2);
                        continue;
                    }
                    std::this_thread::yield();
                    continue;
                }
                seen[c].insert(seen[c].end(), buf, buf + k);
                consumed.fetch_add(k);
            }
        });
    }

    for (auto& t : producers) t.join();
    producers_done.store(true);
    for (auto& t : consumers) t.join();

    // Every value delivered exactly once.
    std::vector<std::uint64_t> all;
    for (const auto& s : seen) all.insert(all.end(), s.begin(), s.end());
    ASSERT_EQ(all.size(), static_cast<std::size_t>(kProducers) * kPerProducer);
    std::sort(all.begin(), all.end());
    for (std::uint64_t i = 0; i < all.size(); ++i) ASSERT_EQ(all[i], i);
}

}  // namespace
}  // namespace sge
