#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace sge {

/// Reads an environment variable, if set and non-empty.
std::optional<std::string> env_string(const char* name);

/// Reads an integer environment variable; returns `fallback` when unset
/// or unparsable.
std::int64_t env_int(const char* name, std::int64_t fallback);

/// Reads a boolean environment variable ("1", "true", "yes", "on" — case
/// insensitive); returns `fallback` when unset or unparsable.
bool env_bool(const char* name, bool fallback);

/// Benchmark scale knob. Workload sizes in bench/ are multiplied by
/// 2^(sge_scale_shift()). SGE_FULL=1 selects paper-sized graphs;
/// SGE_SCALE=<k> adds k doublings on top of the CI-sized defaults.
int scale_shift();

}  // namespace sge
