#include "analytics/sssp.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>
#include <utility>

#include "runtime/timer.hpp"

namespace sge {

namespace {

void check_source(const WeightedCsrGraph& g, vertex_t source) {
    if (source >= g.num_vertices())
        throw std::out_of_range("sssp: source vertex out of range");
}

SsspResult make_result(const WeightedCsrGraph& g, vertex_t source) {
    SsspResult result;
    result.distance.assign(g.num_vertices(), kInfiniteDistance);
    result.parent.assign(g.num_vertices(), kInvalidVertex);
    result.distance[source] = 0;
    result.parent[source] = source;
    return result;
}

}  // namespace

SsspResult dijkstra(const WeightedCsrGraph& g, vertex_t source) {
    check_source(g, source);
    WallTimer timer;
    SsspResult result = make_result(g, source);

    using Entry = std::pair<dist_t, vertex_t>;  // (tentative distance, vertex)
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
    heap.emplace(0, source);

    while (!heap.empty()) {
        const auto [d, u] = heap.top();
        heap.pop();
        if (d != result.distance[u]) continue;  // stale (lazy deletion)
        ++result.vertices_settled;

        const auto adj = g.neighbors(u);
        const auto w = g.weights(u);
        for (std::size_t i = 0; i < adj.size(); ++i) {
            ++result.edges_relaxed;
            const dist_t nd = d + w[i];
            if (nd < result.distance[adj[i]]) {
                result.distance[adj[i]] = nd;
                result.parent[adj[i]] = u;
                heap.emplace(nd, adj[i]);
            }
        }
    }

    result.seconds = timer.seconds();
    return result;
}

SsspResult delta_stepping(const WeightedCsrGraph& g, vertex_t source,
                          const DeltaSteppingOptions& options) {
    check_source(g, source);
    WallTimer timer;
    SsspResult result = make_result(g, source);

    weight_t delta = options.delta;
    if (delta == 0) {
        // Default: mean edge weight (at least 1).
        std::uint64_t total = 0;
        for (const weight_t w : g.all_weights()) total += w;
        const std::uint64_t m = g.num_edges();
        delta = m == 0 ? 1 : static_cast<weight_t>(std::max<std::uint64_t>(
                                 1, total / std::max<std::uint64_t>(m, 1)));
    }

    // Buckets by floor(tentative distance / delta). Vertices are
    // inserted eagerly on every improvement and filtered lazily on
    // removal (their bucket index must still match), the standard
    // simplification that avoids bucket deletion.
    std::vector<std::vector<vertex_t>> buckets;
    const auto bucket_of = [&](dist_t d) {
        return static_cast<std::size_t>(d / delta);
    };
    const auto push_bucket = [&](vertex_t v, dist_t d) {
        const std::size_t b = bucket_of(d);
        if (buckets.size() <= b) buckets.resize(b + 1);
        buckets[b].push_back(v);
    };
    push_bucket(source, 0);

    const auto relax = [&](vertex_t v, dist_t nd, vertex_t via) {
        if (nd >= result.distance[v]) return;
        result.distance[v] = nd;
        result.parent[v] = via;
        push_bucket(v, nd);
    };

    std::vector<vertex_t> settled_this_bucket;
    for (std::size_t i = 0; i < buckets.size(); ++i) {
        settled_this_bucket.clear();
        // Light phases: re-process the bucket until no vertex re-enters.
        while (!buckets[i].empty()) {
            std::vector<vertex_t> frontier;
            frontier.swap(buckets[i]);
            for (const vertex_t u : frontier) {
                const dist_t du = result.distance[u];
                if (du == kInfiniteDistance || bucket_of(du) != i)
                    continue;  // moved to a lighter bucket or stale
                settled_this_bucket.push_back(u);
                const auto adj = g.neighbors(u);
                const auto w = g.weights(u);
                for (std::size_t e = 0; e < adj.size(); ++e) {
                    if (w[e] > delta) continue;  // heavy: deferred
                    ++result.edges_relaxed;
                    relax(adj[e], du + w[e], u);
                }
            }
        }
        // Heavy phase: each settled vertex relaxes its heavy edges once.
        for (const vertex_t u : settled_this_bucket) {
            const dist_t du = result.distance[u];
            if (bucket_of(du) != i) continue;  // improved by a later phase
            const auto adj = g.neighbors(u);
            const auto w = g.weights(u);
            for (std::size_t e = 0; e < adj.size(); ++e) {
                if (w[e] <= delta) continue;
                ++result.edges_relaxed;
                relax(adj[e], du + w[e], u);
            }
        }
    }

    // settled count: vertices with finite distance.
    for (const dist_t d : result.distance)
        if (d != kInfiniteDistance) ++result.vertices_settled;

    result.seconds = timer.seconds();
    return result;
}

}  // namespace sge
