#include "runtime/cache_info.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace sge {

namespace {

std::string read_line(const std::string& path) {
    std::ifstream in(path);
    std::string line;
    std::getline(in, line);
    return line;
}

/// Parses sysfs cache sizes like "32K", "24576K", "8M".
std::size_t parse_size(const std::string& text) {
    if (text.empty()) return 0;
    char* end = nullptr;
    const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
    if (end == text.c_str()) return 0;
    std::size_t multiplier = 1;
    if (end != nullptr && *end != '\0') {
        switch (*end) {
            case 'K': multiplier = 1024; break;
            case 'M': multiplier = 1024 * 1024; break;
            case 'G': multiplier = 1024ULL * 1024 * 1024; break;
            default: break;
        }
    }
    return static_cast<std::size_t>(value) * multiplier;
}

}  // namespace

std::vector<CacheLevel> detect_caches(int cpu) {
    std::vector<CacheLevel> caches;
    for (int index = 0;; ++index) {
        std::ostringstream base;
        base << "/sys/devices/system/cpu/cpu" << cpu << "/cache/index" << index;
        std::ifstream probe(base.str() + "/level");
        if (!probe) break;

        CacheLevel cache;
        int level = 0;
        probe >> level;
        cache.level = level;
        cache.type = read_line(base.str() + "/type");
        cache.size_bytes = parse_size(read_line(base.str() + "/size"));
        cache.line_bytes = parse_size(read_line(base.str() + "/coherency_line_size"));
        caches.push_back(std::move(cache));
    }
    std::stable_sort(caches.begin(), caches.end(),
                     [](const CacheLevel& a, const CacheLevel& b) {
                         return a.level < b.level;
                     });
    return caches;
}

std::string describe_caches(const std::vector<CacheLevel>& caches) {
    if (caches.empty()) return "unknown";
    std::ostringstream out;
    bool first = true;
    for (const CacheLevel& c : caches) {
        if (!first) out << " / ";
        first = false;
        out << "L" << c.level << " " << (c.type.empty() ? "?" : c.type) << " ";
        if (c.size_bytes >= 1024 * 1024)
            out << (c.size_bytes / (1024 * 1024)) << " MB";
        else
            out << (c.size_bytes / 1024) << " KB";
    }
    return out.str();
}

}  // namespace sge
