#include <gtest/gtest.h>

#include "analytics/astar.hpp"
#include "analytics/neighborhood.hpp"
#include "gen/grid.hpp"
#include "gen/rmat.hpp"
#include "graph/builder.hpp"
#include "graph/weighted.hpp"
#include "test_util.hpp"

namespace sge {
namespace {

WeightedCsrGraph weighted_grid(std::uint32_t side, bool diagonal,
                               weight_t min_w, weight_t max_w,
                               std::uint64_t seed) {
    GridParams params;
    params.width = side;
    params.height = side;
    params.diagonal = diagonal;
    return with_random_weights(csr_from_edges(generate_grid(params)), min_w,
                               max_w, seed);
}

// ---------- A* ----------

TEST(Astar, AdmissibleHeuristicGivesOptimalDistance) {
    const std::uint32_t side = 40;
    const WeightedCsrGraph g = weighted_grid(side, false, 1, 9, 3);
    const vertex_t start = 0;
    const vertex_t goal = side * side - 1;

    const SsspResult exact = dijkstra(g, start);
    const AstarResult r =
        astar(g, start, goal, grid_manhattan_heuristic(side, goal, 1));
    ASSERT_TRUE(r.found);
    EXPECT_EQ(r.distance, exact.distance[goal]);
    EXPECT_EQ(r.path.front(), start);
    EXPECT_EQ(r.path.back(), goal);
    // Path edges must exist and sum to the distance.
    dist_t sum = 0;
    for (std::size_t i = 0; i + 1 < r.path.size(); ++i) {
        const auto adj = g.neighbors(r.path[i]);
        const auto w = g.weights(r.path[i]);
        bool found = false;
        for (std::size_t e = 0; e < adj.size(); ++e) {
            if (adj[e] == r.path[i + 1]) {
                sum += w[e];
                found = true;
                break;
            }
        }
        ASSERT_TRUE(found);
    }
    EXPECT_EQ(sum, r.distance);
}

TEST(Astar, ChebyshevAdmissibleOnDiagonalGrid) {
    const std::uint32_t side = 30;
    const WeightedCsrGraph g = weighted_grid(side, true, 2, 11, 5);
    const vertex_t goal = side * side - 1;
    const SsspResult exact = dijkstra(g, 0);
    const AstarResult r =
        astar(g, 0, goal, grid_chebyshev_heuristic(side, goal, 2));
    ASSERT_TRUE(r.found);
    EXPECT_EQ(r.distance, exact.distance[goal]);
}

TEST(Astar, HeuristicPrunesExpansion) {
    // Goal in the start's row: off-row detours strictly raise f, so A*
    // expands a corridor while UCS floods a radius. (Corner-to-corner on
    // a unit grid would NOT prune — every vertex then lies on an optimal
    // monotone path and all f-values tie.)
    const std::uint32_t side = 60;
    const WeightedCsrGraph g = weighted_grid(side, false, 1, 1, 1);
    const vertex_t goal = side - 1;  // (side-1, 0)

    const AstarResult blind = uniform_cost_search(g, 0, goal);
    const AstarResult guided =
        astar(g, 0, goal, grid_manhattan_heuristic(side, goal, 1));
    ASSERT_TRUE(blind.found);
    ASSERT_TRUE(guided.found);
    EXPECT_EQ(blind.distance, guided.distance);
    EXPECT_EQ(guided.distance, side - 1);
    EXPECT_LT(guided.vertices_expanded, blind.vertices_expanded / 4);
}

TEST(Astar, UnreachableGoal) {
    const WeightedCsrGraph g =
        with_random_weights(test::two_cliques(4), 1, 5, 2);
    const AstarResult r = uniform_cost_search(g, 0, 6);
    EXPECT_FALSE(r.found);
    EXPECT_TRUE(r.path.empty());
}

TEST(Astar, StartEqualsGoal) {
    const WeightedCsrGraph g = weighted_grid(4, false, 1, 3, 1);
    const AstarResult r = uniform_cost_search(g, 5, 5);
    ASSERT_TRUE(r.found);
    EXPECT_EQ(r.distance, 0u);
    EXPECT_EQ(r.path, (std::vector<vertex_t>{5}));
}

TEST(Astar, OutOfRangeThrows) {
    const WeightedCsrGraph g = weighted_grid(4, false, 1, 3, 1);
    EXPECT_THROW(uniform_cost_search(g, 0, 16), std::out_of_range);
}

// ---------- neighbourhood function ----------

NeighborhoodOptions exact_options() {
    NeighborhoodOptions opts;
    opts.sample_sources = 0xFFFFFFFF;  // clamped to n: exact
    return opts;
}

TEST(Neighborhood, ExactOnPath) {
    // Path of 5: N(0)=5, N(1)=5+2*4=13, ..., N(4)=25 (all pairs).
    const CsrGraph g = test::path_graph(5);
    const NeighborhoodFunction nf =
        approximate_neighborhood_function(g, exact_options());
    ASSERT_EQ(nf.pairs.size(), 5u);
    EXPECT_DOUBLE_EQ(nf.pairs[0], 5.0);
    EXPECT_DOUBLE_EQ(nf.pairs[1], 13.0);  // 5 self + 8 adjacent ordered
    EXPECT_DOUBLE_EQ(nf.pairs[4], 25.0);
}

TEST(Neighborhood, StarSaturatesAtTwo) {
    const CsrGraph g = test::star_graph(20);
    const NeighborhoodFunction nf =
        approximate_neighborhood_function(g, exact_options());
    ASSERT_EQ(nf.pairs.size(), 3u);
    EXPECT_DOUBLE_EQ(nf.pairs.back(), 400.0);  // all ordered pairs
    EXPECT_LE(nf.effective_diameter(0.9), 2.0);
    EXPECT_GT(nf.effective_diameter(0.9), 0.0);
}

TEST(Neighborhood, EffectiveDiameterOfPathNearItsLength) {
    const CsrGraph g = test::path_graph(100);
    const NeighborhoodFunction nf =
        approximate_neighborhood_function(g, exact_options());
    const double ed = nf.effective_diameter(0.9);
    EXPECT_GT(ed, 50.0);
    EXPECT_LT(ed, 99.0);
}

TEST(Neighborhood, SampledEstimateTracksExact) {
    RmatParams params;
    params.scale = 11;
    params.num_edges = 1 << 14;
    const CsrGraph g = csr_from_edges(generate_rmat(params));

    const NeighborhoodFunction exact =
        approximate_neighborhood_function(g, exact_options());
    NeighborhoodOptions sampled;
    sampled.sample_sources = 128;
    sampled.seed = 7;
    sampled.threads = 4;
    sampled.topology = Topology::emulate(1, 4, 1);
    const NeighborhoodFunction approx =
        approximate_neighborhood_function(g, sampled);

    // Final pair counts within 15% and effective diameters within 1 hop.
    EXPECT_NEAR(approx.pairs.back() / exact.pairs.back(), 1.0, 0.15);
    EXPECT_NEAR(approx.effective_diameter(), exact.effective_diameter(), 1.0);
}

TEST(Neighborhood, RejectsBadQuantile) {
    NeighborhoodFunction nf;
    nf.pairs = {1.0, 2.0};
    EXPECT_THROW((void)nf.effective_diameter(0.0), std::invalid_argument);
    EXPECT_THROW((void)nf.effective_diameter(1.5), std::invalid_argument);
}

TEST(Neighborhood, EmptyGraph) {
    const NeighborhoodFunction nf =
        approximate_neighborhood_function(csr_from_edges(EdgeList(0)));
    EXPECT_TRUE(nf.pairs.empty());
    EXPECT_DOUBLE_EQ(nf.effective_diameter(), 0.0);
}

}  // namespace
}  // namespace sge
