#pragma once

#include <optional>

#include "analytics/sssp.hpp"
#include "runtime/topology.hpp"

namespace sge {

/// Options for the parallel delta-stepping engine.
struct ParallelSsspOptions {
    /// Bucket width; 0 selects max(1, mean edge weight).
    weight_t delta = 0;
    int threads = 1;
    std::optional<Topology> topology;
    /// Vertices a worker claims from the active bucket per cursor bump.
    std::size_t chunk_size = 64;
};

/// Bucket-synchronous parallel delta-stepping — the weighted
/// generalisation of the paper's level-synchronous BFS, built from the
/// same substrates: a persistent thread team, chunked frontier claiming
/// via an atomic cursor, thread-local staging merged between barriers,
/// and a CAS-min on the tentative-distance array playing the role the
/// visited bitmap plays in BFS (the winner of the atomic owns the
/// update). Light-edge rounds within a bucket correspond to BFS levels;
/// the heavy-edge phase fires once per bucket.
///
/// Produces exactly Dijkstra's distances (validated against the serial
/// reference in the test suite). The parent tree is *derived* from the
/// final distances in a post-pass (concurrent CAS winners cannot track
/// parents atomically alongside 64-bit distances), which assumes
/// symmetric weights — what with_random_weights() produces; on
/// asymmetric inputs distances remain exact but parents may be absent.
SsspResult parallel_delta_stepping(const WeightedCsrGraph& g, vertex_t source,
                                   const ParallelSsspOptions& options = {});

}  // namespace sge
