#include "core/bfs.hpp"

#include <stdexcept>

#include "core/engine_common.hpp"

namespace sge {

std::string to_string(BfsEngine engine) {
    switch (engine) {
        case BfsEngine::kSerial: return "serial";
        case BfsEngine::kNaive: return "naive";
        case BfsEngine::kBitmap: return "bitmap";
        case BfsEngine::kMultiSocket: return "multisocket";
        case BfsEngine::kHybrid: return "hybrid";
        case BfsEngine::kAuto: return "auto";
    }
    return "unknown";
}

namespace {

Topology resolve_topology(const BfsOptions& options) {
    return options.topology ? *options.topology : Topology::detect();
}

int resolve_threads(const BfsOptions& options, const Topology& topo) {
    if (options.threads < 0)
        throw std::invalid_argument("BfsOptions::threads must be >= 0");
    if (options.threads == 0) return topo.max_threads();
    return options.threads;
}

BfsEngine resolve_engine(const BfsOptions& options, const Topology& topo,
                         int threads) {
    if (options.engine != BfsEngine::kAuto) return options.engine;
    if (threads <= 1) return BfsEngine::kSerial;
    // The paper disables the inter-socket machinery when all workers fit
    // on one socket ("when the threads run on the same socket, we
    // disable inter-socket channels to get the highest performance").
    if (topo.sockets_used(threads) <= 1) return BfsEngine::kBitmap;
    return BfsEngine::kMultiSocket;
}

}  // namespace

BfsRunner::BfsRunner(BfsOptions options)
    : options_(std::move(options)), topology_(resolve_topology(options_)) {
    const int threads = resolve_threads(options_, topology_);
    if (resolve_engine(options_, topology_, threads) != BfsEngine::kSerial)
        team_ = std::make_unique<ThreadTeam>(threads, topology_);
}

BfsRunner::~BfsRunner() = default;
BfsRunner::BfsRunner(BfsRunner&&) noexcept = default;
BfsRunner& BfsRunner::operator=(BfsRunner&&) noexcept = default;

BfsEngine BfsRunner::resolved_engine() const noexcept {
    return resolve_engine(options_, topology_,
                          resolve_threads(options_, topology_));
}

int BfsRunner::threads() const noexcept {
    return team_ ? team_->size() : 1;
}

BfsResult BfsRunner::run(const CsrGraph& g, vertex_t root) {
    switch (resolved_engine()) {
        case BfsEngine::kSerial:
            return detail::bfs_serial(g, root, options_);
        case BfsEngine::kNaive:
            return detail::bfs_naive(g, root, options_, *team_);
        case BfsEngine::kBitmap:
            return detail::bfs_bitmap(g, root, options_, *team_);
        case BfsEngine::kMultiSocket:
            return detail::bfs_multisocket(g, root, options_, *team_);
        case BfsEngine::kHybrid:
            return detail::bfs_hybrid(g, root, options_, *team_);
        case BfsEngine::kAuto:
            break;  // resolved_engine never returns kAuto
    }
    throw std::logic_error("BfsRunner: unresolved engine");
}

BfsResult bfs(const CsrGraph& g, vertex_t root, const BfsOptions& options) {
    BfsRunner runner(options);
    return runner.run(g, root);
}

}  // namespace sge
