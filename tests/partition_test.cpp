#include <gtest/gtest.h>

#include "graph/partition.hpp"

namespace sge {
namespace {

TEST(SocketPartition, RangesTileTheVertexSpace) {
    for (const vertex_t n : {0u, 1u, 7u, 64u, 100u, 1000003u}) {
        for (const int sockets : {1, 2, 3, 4, 8}) {
            const SocketPartition p(n, sockets);
            vertex_t covered = 0;
            vertex_t expect_next = 0;
            for (int s = 0; s < sockets; ++s) {
                const auto [first, last] = p.range(s);
                ASSERT_EQ(first, expect_next) << "n=" << n << " s=" << s;
                ASSERT_LE(first, last);
                covered += last - first;
                expect_next = last;
            }
            ASSERT_EQ(covered, n) << "n=" << n << " sockets=" << sockets;
        }
    }
}

TEST(SocketPartition, SocketOfMatchesRanges) {
    const SocketPartition p(1000, 4);
    for (int s = 0; s < 4; ++s) {
        const auto [first, last] = p.range(s);
        for (vertex_t v = first; v < last; ++v)
            ASSERT_EQ(p.socket_of(v), s) << "v=" << v;
    }
}

TEST(SocketPartition, BlockAssignmentIsContiguous) {
    const SocketPartition p(100, 4);
    EXPECT_EQ(p.socket_of(0), 0);
    EXPECT_EQ(p.socket_of(24), 0);
    EXPECT_EQ(p.socket_of(25), 1);
    EXPECT_EQ(p.socket_of(99), 3);
    EXPECT_EQ(p.size(0), 25u);
}

TEST(SocketPartition, MoreSocketsThanVertices) {
    const SocketPartition p(3, 8);
    vertex_t total = 0;
    for (int s = 0; s < 8; ++s) total += p.size(s);
    EXPECT_EQ(total, 3u);
    for (vertex_t v = 0; v < 3; ++v) {
        const int s = p.socket_of(v);
        ASSERT_GE(s, 0);
        ASSERT_LT(s, 8);
        const auto [first, last] = p.range(s);
        ASSERT_GE(v, first);
        ASSERT_LT(v, last);
    }
}

TEST(SocketPartition, SingleSocketOwnsEverything) {
    const SocketPartition p(12345, 1);
    EXPECT_EQ(p.socket_of(0), 0);
    EXPECT_EQ(p.socket_of(12344), 0);
    EXPECT_EQ(p.size(0), 12345u);
}

TEST(SocketPartition, NonDivisibleTailGoesToLastSocket) {
    const SocketPartition p(10, 3);  // blocks of 4: 4, 4, 2
    EXPECT_EQ(p.size(0), 4u);
    EXPECT_EQ(p.size(1), 4u);
    EXPECT_EQ(p.size(2), 2u);
}

TEST(SocketPartition, ZeroVertices) {
    const SocketPartition p(0, 4);
    for (int s = 0; s < 4; ++s) EXPECT_EQ(p.size(s), 0u);
}

}  // namespace
}  // namespace sge
