#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

// sge::obs — the observability subsystem.
//
// Three layers, mirroring the fault-injection pattern (runtime/fault.hpp):
//
//  1. A *compile-time* gate: building with -DSGE_OBS=OFF removes the
//     extended per-thread counters (bitmap skip/win tallies, channel
//     batch occupancy histograms, barrier wait timing, per-thread level
//     spans) from the BFS hot loops entirely — compiled_in() becomes a
//     constexpr `false` and every gated increment folds away. The
//     always-on counters the engines need for their own accounting
//     (edges traversed, frontier sizes) are unaffected.
//
//  2. A *runtime* master switch: SGE_OBS=0 in the environment makes
//     enabled() false, which the benchmark drivers and examples consult
//     before collecting per-level stats or emitting reports. Library
//     callers opt in per run via BfsOptions::collect_stats regardless.
//
//  3. Exporters, always available (they are never on a hot path):
//     a minimal streaming JSON writer and a Chrome trace-event
//     timeline (chrome://tracing / https://ui.perfetto.dev), used by
//     core/make_bfs_trace() and the bench/ BENCH_*.json reports.
//
// See docs/OBSERVABILITY.md for counter definitions, the report schema
// and a trace-viewing walkthrough.

namespace sge::obs {

/// True when the library was built with the extended observability
/// counters compiled into the BFS engines (CMake option SGE_OBS,
/// default ON).
[[nodiscard]] constexpr bool compiled_in() noexcept {
#if defined(SGE_OBS_ENABLED) && SGE_OBS_ENABLED
    return true;
#else
    return false;
#endif
}

/// Runtime master switch for the *tools* (bench drivers, examples):
/// SGE_OBS=0 disables stats collection and report/trace emission in
/// them. Defaults to true. Library API behaviour
/// (BfsOptions::collect_stats) is independent of this switch.
[[nodiscard]] bool enabled() noexcept;

// ---------------------------------------------------------------------
// Minimal streaming JSON writer.
// ---------------------------------------------------------------------

/// Emits syntactically valid JSON to an ostream: comma placement and
/// nesting are tracked internally, strings are escaped, and non-finite
/// doubles degrade to null (JSON has no NaN/Inf). The writer is
/// deliberately tiny — no DOM, no reflection — because both exporters
/// only ever append.
class JsonWriter {
  public:
    explicit JsonWriter(std::ostream& out) : out_(out) {}

    JsonWriter(const JsonWriter&) = delete;
    JsonWriter& operator=(const JsonWriter&) = delete;

    void begin_object();
    void end_object();
    void begin_array();
    void end_array();

    /// Emits an object key; the next value/begin_* call supplies its
    /// value. Only valid directly inside an object.
    void key(std::string_view k);

    void value(std::string_view v);
    void value(const char* v) { value(std::string_view(v)); }
    void value(double v);
    void value(std::uint64_t v);
    void value(std::int64_t v);
    void value(int v) { value(static_cast<std::int64_t>(v)); }
    void value(bool v);
    void value_null();

    /// Shorthand: key(k) followed by value(v).
    template <typename T>
    void field(std::string_view k, T&& v) {
        key(k);
        value(std::forward<T>(v));
    }

  private:
    void comma_for_value();
    void raw(std::string_view s) { out_ << s; }

    struct Frame {
        char kind;        // '{' or '['
        bool first = true;
        bool have_key = false;  // a key() awaits its value
    };
    std::ostream& out_;
    std::vector<Frame> stack_;
};

/// Escapes `s` as the *contents* of a JSON string literal (no quotes).
[[nodiscard]] std::string json_escape(std::string_view s);

// ---------------------------------------------------------------------
// Chrome trace-event timeline.
// ---------------------------------------------------------------------

/// Accumulates a Chrome trace-event timeline — complete spans ("ph":"X")
/// on per-thread tracks plus counter series ("ph":"C") — and writes the
/// standard {"traceEvents": [...]} JSON object. Load the file in
/// chrome://tracing or https://ui.perfetto.dev.
///
/// Timestamps are nanoseconds from an arbitrary epoch (the BFS engines
/// use the traversal start); the trace format wants microseconds, so
/// values are scaled on write with fractional microseconds preserved.
class ChromeTrace {
  public:
    using Args = std::vector<std::pair<std::string, std::uint64_t>>;

    /// Names the process track (shown as the top-level group).
    void set_process_name(std::string name) { process_name_ = std::move(name); }

    /// Names one thread track ("worker 3", "rank 0", ...).
    void set_thread_name(int tid, std::string name);

    /// Adds a complete span to thread `tid`'s track.
    void add_span(int tid, std::string name, std::uint64_t start_ns,
                  std::uint64_t end_ns, Args args = {});

    /// Adds one sample of a counter series. Chrome renders each distinct
    /// `series` name as a stacked-area track; `values` holds the stacked
    /// components (one is fine).
    void add_counter(std::string series, std::uint64_t ts_ns, Args values);

    [[nodiscard]] std::size_t span_count() const noexcept {
        return spans_.size();
    }

    void write(std::ostream& out) const;

    /// Writes to `path`; returns false (and reports on stderr) when the
    /// file cannot be created.
    bool write_file(const std::string& path) const;

  private:
    struct Span {
        int tid;
        std::string name;
        std::uint64_t start_ns;
        std::uint64_t end_ns;
        Args args;
    };
    struct Counter {
        std::string series;
        std::uint64_t ts_ns;
        Args values;
    };
    std::string process_name_;
    std::vector<std::pair<int, std::string>> thread_names_;
    std::vector<Span> spans_;
    std::vector<Counter> counters_;
};

}  // namespace sge::obs
