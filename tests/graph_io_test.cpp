#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "gen/rmat.hpp"
#include "graph/builder.hpp"
#include "graph/io.hpp"
#include "graph/weighted.hpp"

namespace sge {
namespace {

class GraphIoTest : public ::testing::Test {
  protected:
    void SetUp() override {
        dir_ = std::filesystem::temp_directory_path() / "sge_io_test";
        std::filesystem::create_directories(dir_);
    }
    void TearDown() override { std::filesystem::remove_all(dir_); }

    std::string path(const char* name) const { return (dir_ / name).string(); }

    /// Overwrites 8 bytes at `offset` in an existing file — used to
    /// corrupt the n (offset 8) or m (offset 16) header field in place.
    static void poke_u64(const std::string& file, std::streamoff offset,
                         std::uint64_t value) {
        std::fstream f(file, std::ios::binary | std::ios::in | std::ios::out);
        ASSERT_TRUE(f.is_open());
        f.seekp(offset);
        f.write(reinterpret_cast<const char*>(&value), sizeof(value));
        ASSERT_TRUE(f.good());
    }

    std::filesystem::path dir_;
};

TEST_F(GraphIoTest, BinaryRoundTrip) {
    RmatParams params;
    params.scale = 10;
    params.num_edges = 8192;
    const CsrGraph g = csr_from_edges(generate_rmat(params));

    write_csr(g, path("g.csr"));
    const CsrGraph loaded = read_csr(path("g.csr"));
    EXPECT_TRUE(g == loaded);
}

TEST_F(GraphIoTest, BinaryRoundTripEmptyGraph) {
    const CsrGraph g = csr_from_edges(EdgeList(0));
    write_csr(g, path("empty.csr"));
    const CsrGraph loaded = read_csr(path("empty.csr"));
    EXPECT_EQ(loaded.num_vertices(), 0u);
    EXPECT_EQ(loaded.num_edges(), 0u);
}

TEST_F(GraphIoTest, ReadRejectsBadMagic) {
    std::ofstream out(path("bad.csr"), std::ios::binary);
    out << "NOTACSR0 garbage follows";
    out.close();
    EXPECT_THROW(read_csr(path("bad.csr")), std::runtime_error);
}

TEST_F(GraphIoTest, ReadRejectsTruncatedFile) {
    const CsrGraph g = csr_from_edges(EdgeList(10));
    write_csr(g, path("trunc.csr"));
    std::filesystem::resize_file(path("trunc.csr"), 20);  // cut mid-header
    EXPECT_THROW(read_csr(path("trunc.csr")), std::runtime_error);
}

TEST_F(GraphIoTest, ReadRejectsMissingFile) {
    EXPECT_THROW(read_csr(path("does_not_exist.csr")), std::runtime_error);
}

TEST_F(GraphIoTest, TextEdgeListRoundTrip) {
    EdgeList edges(5);
    edges.add(0, 1);
    edges.add(3, 4);
    edges.add(2, 2);
    write_edge_list_text(edges, path("e.txt"));
    const EdgeList loaded = read_edge_list_text(path("e.txt"));
    ASSERT_EQ(loaded.num_edges(), 3u);
    EXPECT_EQ(loaded[0], (Edge{0, 1}));
    EXPECT_EQ(loaded[1], (Edge{3, 4}));
    EXPECT_EQ(loaded[2], (Edge{2, 2}));
    EXPECT_EQ(loaded.num_vertices(), 5u);
}

TEST_F(GraphIoTest, TextReaderSkipsComments) {
    std::ofstream out(path("c.txt"));
    out << "# comment\n% another style\n1 2\n\n3 4\n";
    out.close();
    const EdgeList loaded = read_edge_list_text(path("c.txt"));
    EXPECT_EQ(loaded.num_edges(), 2u);
}

TEST_F(GraphIoTest, TextReaderRejectsGarbageLine) {
    std::ofstream out(path("g.txt"));
    out << "1 2\nhello world\n";
    out.close();
    EXPECT_THROW(read_edge_list_text(path("g.txt")), std::runtime_error);
}

// ---------------------------------------------------------------------
// Hostile binary headers: a corrupt n/m must be rejected against the
// actual file size *before* allocation — a 16-byte edit must never
// demand a multi-GB buffer or feed garbage to the parser.
// ---------------------------------------------------------------------

TEST_F(GraphIoTest, ReadRejectsHugeClaimedEdgeCount) {
    const CsrGraph g = csr_from_edges(EdgeList(10));
    write_csr(g, path("m.csr"));
    poke_u64(path("m.csr"), 16, std::uint64_t{1} << 61);  // m field
    EXPECT_THROW(read_csr(path("m.csr")), std::runtime_error);
}

TEST_F(GraphIoTest, ReadRejectsHugeClaimedVertexCount) {
    const CsrGraph g = csr_from_edges(EdgeList(10));
    write_csr(g, path("n.csr"));
    poke_u64(path("n.csr"), 8, std::uint64_t{1} << 61);  // n field
    EXPECT_THROW(read_csr(path("n.csr")), std::runtime_error);
    // n just under kInvalidVertex passes the range check but not the
    // file-size check.
    poke_u64(path("n.csr"), 8, kInvalidVertex - 1);
    EXPECT_THROW(read_csr(path("n.csr")), std::runtime_error);
}

TEST_F(GraphIoTest, ReadRejectsTruncatedPayload) {
    RmatParams params;
    params.scale = 8;
    params.num_edges = 1024;
    const CsrGraph g = csr_from_edges(generate_rmat(params));
    write_csr(g, path("p.csr"));
    const auto full = std::filesystem::file_size(path("p.csr"));
    std::filesystem::resize_file(path("p.csr"), full - 7);
    EXPECT_THROW(read_csr(path("p.csr")), std::runtime_error);
}

TEST_F(GraphIoTest, ReadRejectsOversizedPayload) {
    const CsrGraph g = csr_from_edges(EdgeList(10));
    write_csr(g, path("x.csr"));
    std::ofstream out(path("x.csr"), std::ios::binary | std::ios::app);
    out << "extra bytes";
    out.close();
    EXPECT_THROW(read_csr(path("x.csr")), std::runtime_error);
}

TEST_F(GraphIoTest, WeightedReadRejectsCorruptHeader) {
    EdgeList edges(4);
    edges.add(0, 1);
    edges.add(1, 2);
    edges.add(2, 3);
    const WeightedCsrGraph g =
        with_random_weights(csr_from_edges(std::move(edges)), 1, 9, 3);
    write_weighted_csr(g, path("w.csr"));

    const WeightedCsrGraph loaded = read_weighted_csr(path("w.csr"));
    EXPECT_EQ(loaded.num_edges(), g.num_edges());

    poke_u64(path("w.csr"), 16, std::uint64_t{1} << 60);  // m field
    EXPECT_THROW(read_weighted_csr(path("w.csr")), std::runtime_error);
    poke_u64(path("w.csr"), 8, std::uint64_t{1} << 60);  // n field
    EXPECT_THROW(read_weighted_csr(path("w.csr")), std::runtime_error);
}

// ---------------------------------------------------------------------
// Hostile text edge lists: negative ids, overflow, non-numeric tokens
// and trailing garbage must fail with a line-numbered error, not wrap
// silently into valid-looking vertex ids (sscanf "%llu" accepted all
// of them).
// ---------------------------------------------------------------------

TEST_F(GraphIoTest, TextReaderRejectsNegativeIds) {
    std::ofstream out(path("neg.txt"));
    out << "0 1\n-3 4\n";
    out.close();
    EXPECT_THROW(read_edge_list_text(path("neg.txt")), std::runtime_error);
}

TEST_F(GraphIoTest, TextReaderRejectsOutOfRangeIds) {
    std::ofstream out(path("big.txt"));
    out << "4294967295 1\n";  // == kInvalidVertex, the reserved sentinel
    out.close();
    EXPECT_THROW(read_edge_list_text(path("big.txt")), std::runtime_error);

    std::ofstream out2(path("huge.txt"));
    out2 << "1 99999999999999999999999999\n";  // overflows u64 (ERANGE)
    out2.close();
    EXPECT_THROW(read_edge_list_text(path("huge.txt")), std::runtime_error);
}

TEST_F(GraphIoTest, TextReaderRejectsTrailingGarbage) {
    std::ofstream out(path("t.txt"));
    out << "1 2 junk\n";
    out.close();
    EXPECT_THROW(read_edge_list_text(path("t.txt")), std::runtime_error);
}

TEST_F(GraphIoTest, TextReaderRejectsMissingSecondId) {
    std::ofstream out(path("one.txt"));
    out << "7\n";
    out.close();
    EXPECT_THROW(read_edge_list_text(path("one.txt")), std::runtime_error);
}

TEST_F(GraphIoTest, TextReaderErrorsNameTheLine) {
    std::ofstream out(path("line.txt"));
    out << "# header\n0 1\n1 bad\n";
    out.close();
    try {
        read_edge_list_text(path("line.txt"));
        FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find(":3:"), std::string::npos)
            << e.what();
    }
}

TEST_F(GraphIoTest, TextReaderAcceptsWindowsLineEndings) {
    std::ofstream out(path("crlf.txt"), std::ios::binary);
    out << "0 1\r\n2 3\r\n";
    out.close();
    const EdgeList loaded = read_edge_list_text(path("crlf.txt"));
    ASSERT_EQ(loaded.num_edges(), 2u);
    EXPECT_EQ(loaded[1], (Edge{2, 3}));
}

}  // namespace
}  // namespace sge
