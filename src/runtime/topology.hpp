#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sge {

/// Machine topology model: sockets × cores-per-socket × SMT-per-core.
///
/// The multi-socket BFS (Algorithm 3 in the paper) needs to know (a) how
/// many sockets participate, (b) which socket each worker thread belongs
/// to, and (c) which OS CPU each worker should be pinned to. On the
/// paper's machines this comes from the hardware (Table I lists the core
/// affinities of the Nehalem EP/EX). On machines without multiple
/// sockets — including this reproduction's container — the topology can
/// be *emulated*: threads are grouped into logical sockets and all the
/// per-socket data structures and inter-socket channels behave exactly
/// as on real hardware, minus the physical latency asymmetry.
class Topology {
  public:
    /// Emulated topology with explicit shape.
    static Topology emulate(int sockets, int cores_per_socket, int smt_per_core);

    /// Paper's dual-socket Nehalem EP: 2 sockets x 4 cores x 2 SMT = 16 threads.
    static Topology nehalem_ep();

    /// Paper's 4-socket Nehalem EX: 4 sockets x 8 cores x 2 SMT = 64 threads.
    static Topology nehalem_ex();

    /// Best-effort detection from /sys (Linux). Falls back to a single
    /// socket holding all online CPUs when the sysfs layout is absent.
    static Topology detect();

    [[nodiscard]] int sockets() const noexcept { return sockets_; }
    [[nodiscard]] int cores_per_socket() const noexcept { return cores_per_socket_; }
    [[nodiscard]] int smt_per_core() const noexcept { return smt_per_core_; }
    [[nodiscard]] bool emulated() const noexcept { return emulated_; }

    /// Total hardware threads in the model.
    [[nodiscard]] int max_threads() const noexcept {
        return sockets_ * cores_per_socket_ * smt_per_core_;
    }

    /// Logical socket that worker thread `t` belongs to, following the
    /// paper's placement: fill all cores of socket 0 first, then socket 1,
    /// ... and only then start the second SMT thread per core. This way
    /// "8 threads on a 2x4x2 EP" means one thread per physical core.
    [[nodiscard]] int socket_of_thread(int t) const noexcept;

    /// OS CPU id that worker thread `t` should be pinned to, or -1 when
    /// the topology is emulated on fewer CPUs than workers (pinning is
    /// then skipped).
    [[nodiscard]] int cpu_of_thread(int t) const noexcept;

    /// Number of sockets actually engaged when running `threads` workers
    /// under the placement of socket_of_thread().
    [[nodiscard]] int sockets_used(int threads) const noexcept;

    /// Human-readable description ("4 sockets x 8 cores x 2 SMT (emulated)").
    [[nodiscard]] std::string describe() const;

  private:
    Topology(int sockets, int cores_per_socket, int smt_per_core, bool emulated,
             std::vector<int> cpu_map);

    int sockets_ = 1;
    int cores_per_socket_ = 1;
    int smt_per_core_ = 1;
    bool emulated_ = true;
    /// cpu_map_[t] = OS CPU for worker t; empty means "don't pin".
    std::vector<int> cpu_map_;
};

}  // namespace sge
