#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace sge {

/// Cooperative cancellation for traversals — the per-request deadline
/// mechanism of the query service (service/graph_service.hpp), threaded
/// through BfsOptions::cancel / MsBfsOptions::cancel.
///
/// The engines poll the token exactly once per BFS level, in thread 0's
/// end-of-level bookkeeping window between the level barriers, so a
/// fired token stops the traversal within one level barrier: thread 0
/// marks the run done, every worker exits the level loop at the next
/// barrier, and the engine throws BfsDeadlineError carrying the partial
/// progress (level reached, vertices settled). Unlike the watchdog
/// (engine_common.hpp LevelWatchdog), cancellation never poisons the
/// barrier or abandons mid-level state, so the workspace is immediately
/// reusable for the next query — which is what lets the service keep a
/// prepared arena hot across cancelled requests.
///
/// Three trigger modes, any combination:
///   * cancel()            — manual, from any thread, sticky;
///   * set_deadline*()     — poll() fires once steady_clock passes it;
///   * fire_after_polls(n) — deterministic: the nth poll() fires. The
///     engines poll once per level, so n == "cancel at level n"; used
///     by tests and chaos harnesses to hit an exact level regardless of
///     machine speed.
///
/// Configure (set_deadline / fire_after_polls) before handing the token
/// to a run; cancel() alone is safe concurrently with polling.
class CancelToken {
  public:
    using clock = std::chrono::steady_clock;

    CancelToken() = default;
    CancelToken(const CancelToken&) = delete;
    CancelToken& operator=(const CancelToken&) = delete;

    /// Requests cancellation. Thread-safe, sticky, idempotent.
    void cancel() noexcept { cancelled_.store(true, std::memory_order_release); }

    /// Fires poll() once `deadline` passes.
    void set_deadline(clock::time_point deadline) noexcept {
        deadline_ = deadline;
        has_deadline_ = true;
    }

    /// Fires poll() once `seconds` from now have elapsed. <= 0 cancels
    /// immediately (an already-expired budget).
    void set_deadline_after(double seconds) noexcept {
        if (seconds <= 0.0) {
            cancel();
            return;
        }
        set_deadline(clock::now() +
                     std::chrono::duration_cast<clock::duration>(
                         std::chrono::duration<double>(seconds)));
    }

    /// Deterministic trigger: the nth poll() (1-based) fires. 0 disarms.
    void fire_after_polls(std::uint64_t n) noexcept {
        fire_at_poll_ = n;
        polls_.store(0, std::memory_order_relaxed);
    }

    /// True once cancellation was requested or observed by a poll.
    [[nodiscard]] bool cancelled() const noexcept {
        return cancelled_.load(std::memory_order_acquire);
    }

    /// The engines' once-per-level check: true when the token has fired
    /// (manually, by deadline, or by poll count). Sticky — after the
    /// first true, every later poll is a single relaxed load.
    [[nodiscard]] bool poll() noexcept {
        if (cancelled()) return true;
        const std::uint64_t count =
            polls_.fetch_add(1, std::memory_order_relaxed) + 1;
        if (fire_at_poll_ > 0 && count >= fire_at_poll_) {
            cancel();
            return true;
        }
        if (has_deadline_ && clock::now() >= deadline_) {
            cancel();
            return true;
        }
        return false;
    }

    /// True when a deadline is set and already in the past (checked
    /// without consuming a poll — the service's pre-dispatch test).
    [[nodiscard]] bool deadline_passed() const noexcept {
        if (cancelled()) return true;
        return has_deadline_ && clock::now() >= deadline_;
    }

    [[nodiscard]] bool has_deadline() const noexcept { return has_deadline_; }
    [[nodiscard]] clock::time_point deadline() const noexcept {
        return deadline_;
    }

    /// Times poll() was called since construction / the last
    /// fire_after_polls().
    [[nodiscard]] std::uint64_t polls() const noexcept {
        return polls_.load(std::memory_order_relaxed);
    }

    /// Rewinds the token for reuse (not thread-safe; call between runs).
    void reset() noexcept {
        cancelled_.store(false, std::memory_order_relaxed);
        polls_.store(0, std::memory_order_relaxed);
        has_deadline_ = false;
        fire_at_poll_ = 0;
    }

  private:
    std::atomic<bool> cancelled_{false};
    std::atomic<std::uint64_t> polls_{0};
    clock::time_point deadline_{};
    bool has_deadline_ = false;
    std::uint64_t fire_at_poll_ = 0;
};

}  // namespace sge
