#include "gen/permute.hpp"

#include <numeric>

#include "runtime/prng.hpp"

namespace sge {

std::vector<vertex_t> permute_vertices(EdgeList& edges, std::uint64_t seed) {
    const vertex_t n = edges.num_vertices();
    std::vector<vertex_t> perm(n);
    std::iota(perm.begin(), perm.end(), vertex_t{0});

    Xoshiro256 rng(seed);
    // Fisher-Yates: perm becomes a uniform random permutation.
    for (vertex_t i = n; i > 1; --i) {
        const auto j = static_cast<vertex_t>(rng.next_below(i));
        std::swap(perm[i - 1], perm[j]);
    }

    for (Edge& e : edges.edges()) {
        e.src = perm[e.src];
        e.dst = perm[e.dst];
    }
    return perm;
}

}  // namespace sge
