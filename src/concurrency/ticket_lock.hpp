#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

#include "runtime/cacheline.hpp"

namespace sge {

/// Ticket lock (Mellor-Crummey/Scott style), the paper's choice for
/// guarding each side of the inter-socket FastForward channels
/// ([22] Sridharan et al., SPAA'07). FIFO-fair: contending threads are
/// served in arrival order, which matters when whole sockets of workers
/// flush batches into the same channel — an unfair lock would let one
/// producer starve the rest and serialize the level step.
///
/// `next_` and `serving_` live on separate cache lines so the enqueue
/// (fetch_add on next_) does not invalidate the line spinners poll.
class TicketLock {
  public:
    TicketLock() = default;
    TicketLock(const TicketLock&) = delete;
    TicketLock& operator=(const TicketLock&) = delete;

    void lock() noexcept {
        const std::uint32_t my = next_->fetch_add(1, std::memory_order_acq_rel);
        int spins = 0;
        while (serving_->load(std::memory_order_acquire) != my) {
            // Bounded spin, then yield: this library routinely runs more
            // workers than CPUs (emulated topologies), where pure
            // spinning would deadlock the oversubscribed scheduler.
            if (++spins < kSpinLimit) {
                cpu_pause();
            } else {
                std::this_thread::yield();
            }
        }
    }

    bool try_lock() noexcept {
        std::uint32_t ticket = serving_->load(std::memory_order_acquire);
        return next_->compare_exchange_strong(ticket, ticket + 1,
                                              std::memory_order_acq_rel,
                                              std::memory_order_relaxed);
    }

    void unlock() noexcept {
        // Only the holder writes serving_, so a plain add-release works.
        serving_->store(serving_->load(std::memory_order_relaxed) + 1,
                        std::memory_order_release);
    }

    static void cpu_pause() noexcept {
#if defined(__x86_64__) || defined(__i386__)
        __builtin_ia32_pause();
#else
        std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
    }

  private:
    static constexpr int kSpinLimit = 64;
    CachePadded<std::atomic<std::uint32_t>> next_{};
    CachePadded<std::atomic<std::uint32_t>> serving_{};
};

}  // namespace sge
