// GraphService under an open-loop query stream.
//
// The figure benches measure one traversal; bench_throughput measures a
// closed query loop. This bench measures the *service* path end to end:
// paced open-loop arrivals into the bounded admission queue, wave
// coalescing (concurrent single-source requests riding one MS-BFS
// wave), per-request latency as the caller sees it (queue wait + run),
// and the outcome mix — with and without injected faults at the
// service sites.
//
// Series params: batching (0 = every request runs individually, 1 =
// wave coalescing on) x faults (0 = clean run, 1 = service fault sites
// armed at p=1e-3). CI guards the clean runs via check_bench_json.py:
// a faults=0 series must report zero degraded and zero shed requests —
// degradation is a fault response, never a steady-state behaviour.

#include <algorithm>
#include <cstdio>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "report.hpp"
#include "runtime/fault.hpp"
#include "runtime/prng.hpp"
#include "runtime/timer.hpp"
#include "service/graph_service.hpp"

namespace {

using namespace sge;
using namespace sge::bench;
using service::GraphService;
using service::QueryResult;
using service::ServiceOptions;

constexpr int kRequests = 512;
constexpr int kBurst = 32;  // arrivals per pacing tick

double percentile(std::vector<double>& sorted_ms, double p) {
    if (sorted_ms.empty()) return 0.0;
    const auto rank = static_cast<std::size_t>(
        p * static_cast<double>(sorted_ms.size() - 1));
    return sorted_ms[rank];
}

}  // namespace

int main() {
    banner("GraphService: open-loop query stream, coalescing and degradation",
           "Section I semantic-graph query services");

    BenchReport report("bench_service", "service throughput");
    report.set_topology("emulated 2x2");
    report.set_workload("rmat", scaled(1 << 12));

    const std::uint64_t n = scaled(1 << 12);
    const CsrGraph graph = rmat_graph(n, 8 * n, 21);

    Table table({"batching", "faults", "queries/s", "p50 ms", "p99 ms",
                 "completed", "degraded", "cancelled", "shed", "waves"});

    for (const bool batching : {false, true}) {
        for (const bool faults : {false, true}) {
            fault::disarm_all();
            if (faults) {
                fault::reseed(7);
                for (const fault::Site site :
                     {fault::Site::kServiceSubmit, fault::Site::kServiceFlush,
                      fault::Site::kServiceWorker})
                    fault::arm(site,
                               fault::Trigger{.probability = 1e-3, .nth = 0});
            }

            ServiceOptions options;
            options.bfs.engine = BfsEngine::kBitmap;
            options.bfs.threads = 4;
            options.bfs.topology = Topology::emulate(2, 2, 1);
            options.workers = 2;
            // Large enough for the whole stream: a clean run must never
            // shed (check_bench_json.py guards faults=0 => shed == 0).
            options.queue_capacity = kRequests;
            options.batching = batching;
            options.batch_window_seconds = 0.0005;
            GraphService svc(graph, options);

            // Paced open loop: bursts of arrivals on a fixed tick,
            // independent of completions (queueing shows up as wait
            // time, overload as shed — never as a stalled producer).
            Xoshiro256 rng(987654);
            std::vector<std::future<QueryResult>> futures;
            futures.reserve(kRequests);
            WallTimer timer;
            for (int i = 0; i < kRequests; ++i) {
                const auto root =
                    static_cast<vertex_t>(rng.next_below(graph.num_vertices()));
                futures.push_back(svc.submit(root).result);
                if ((i + 1) % kBurst == 0)
                    std::this_thread::sleep_for(
                        std::chrono::microseconds(200));
            }

            std::vector<double> latencies_ms;
            latencies_ms.reserve(futures.size());
            for (auto& f : futures)
                latencies_ms.push_back(f.get().latency_seconds() * 1e3);
            const double seconds = timer.seconds();
            svc.stop();

            std::sort(latencies_ms.begin(), latencies_ms.end());
            const double qps =
                seconds > 0 ? kRequests / seconds : 0.0;
            const double p50 = percentile(latencies_ms, 0.50);
            const double p99 = percentile(latencies_ms, 0.99);

            const auto& c = svc.counters();
            table.add_row({batching ? "on" : "off", faults ? "on" : "off",
                           fmt("%.0f", qps), fmt("%.3f", p50),
                           fmt("%.3f", p99), fmt_u64(c.completed.load()),
                           fmt_u64(c.degraded.load()),
                           fmt_u64(c.cancelled.load()), fmt_u64(c.shed.load()),
                           fmt_u64(c.waves.load())});

            report.add(
                std::string("rmat/") + (batching ? "waves" : "single"),
                {{"vertices", static_cast<std::int64_t>(graph.num_vertices())},
                 {"workers", options.workers},
                 {"threads", options.bfs.threads},
                 {"batching", batching ? 1 : 0},
                 {"faults", faults ? 1 : 0}},
                {{"queries_per_second", qps},
                 {"p50_ms", p50},
                 {"p99_ms", p99},
                 {"completed", static_cast<double>(c.completed.load())},
                 {"degraded", static_cast<double>(c.degraded.load())},
                 {"cancelled", static_cast<double>(c.cancelled.load())},
                 {"shed", static_cast<double>(c.shed.load())},
                 {"batched", static_cast<double>(c.batched.load())},
                 {"waves", static_cast<double>(c.waves.load())}});
        }
    }
    fault::disarm_all();

    table.print();
    std::printf("\n%d paced open-loop requests per cell (bursts of %d); "
                "latency = queue wait + run\nas the caller observes it. "
                "faults=on arms the service sites at p=1e-3.\n",
                kRequests, kBurst);
    report.write();
    return 0;
}
