#include "stream/dynamic_graph.hpp"

#include <algorithm>

#include "runtime/aligned_buffer.hpp"

namespace sge {

CsrGraph DynamicGraph::snapshot() const {
    const vertex_t n = num_vertices();
    AlignedBuffer<edge_offset_t> offsets(static_cast<std::size_t>(n) + 1);
    offsets[0] = 0;
    for (vertex_t v = 0; v < n; ++v)
        offsets[v + 1] = offsets[v] + adjacency_[v].size();

    // Dirty lists are sorted in place once (clearing their flag), so a
    // stream of snapshots pays sorting only for the vertices actually
    // touched between them; everything else is a straight copy. The
    // n == 0 path constructs a zero-count targets buffer (AlignedBuffer
    // allocates nothing) and a one-entry offsets array — a well-formed
    // empty CSR.
    AlignedBuffer<vertex_t> targets(static_cast<std::size_t>(offsets[n]));
    for (vertex_t v = 0; v < n; ++v) {
        auto& adj = adjacency_[v];
        if (!sorted_[v]) {
            std::sort(adj.begin(), adj.end());
            sorted_[v] = 1;
        }
        std::copy(adj.begin(), adj.end(), targets.data() + offsets[v]);
    }
    return CsrGraph(std::move(offsets), std::move(targets));
}

}  // namespace sge
