#include "gen/rmat.hpp"

#include <cmath>
#include <stdexcept>

#include "runtime/prng.hpp"

namespace sge {

EdgeList generate_rmat(const RmatParams& params) {
    if (params.a < 0 || params.b < 0 || params.c < 0 || params.d < 0 ||
        std::abs(params.a + params.b + params.c + params.d - 1.0) > 1e-6)
        throw std::invalid_argument(
            "generate_rmat: quadrant probabilities must be >= 0 and sum to 1");
    if (params.scale >= 32)
        throw std::invalid_argument("generate_rmat: scale must be < 32");

    const auto n = static_cast<vertex_t>(1ULL << params.scale);
    EdgeList edges(n);
    edges.reserve(params.num_edges);

    Xoshiro256 rng(params.seed);
    for (std::uint64_t e = 0; e < params.num_edges; ++e) {
        vertex_t src = 0;
        vertex_t dst = 0;
        for (std::uint32_t depth = 0; depth < params.scale; ++depth) {
            // GTgraph-style jitter: perturb (a,b,c,d) per level so the
            // recursion does not imprint exact self-similar artefacts.
            const double ja = params.a * (1.0 + params.noise * (2 * rng.next_double() - 1));
            const double jb = params.b * (1.0 + params.noise * (2 * rng.next_double() - 1));
            const double jc = params.c * (1.0 + params.noise * (2 * rng.next_double() - 1));
            const double jd = params.d * (1.0 + params.noise * (2 * rng.next_double() - 1));
            const double norm = ja + jb + jc + jd;

            const double r = rng.next_double() * norm;
            src <<= 1;
            dst <<= 1;
            if (r < ja) {
                // top-left quadrant: neither bit set
            } else if (r < ja + jb) {
                dst |= 1;
            } else if (r < ja + jb + jc) {
                src |= 1;
            } else {
                src |= 1;
                dst |= 1;
            }
        }
        edges.add(src, dst);
    }
    return edges;
}

}  // namespace sge
