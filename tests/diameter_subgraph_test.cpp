#include <gtest/gtest.h>

#include <vector>

#include "analytics/connected_components.hpp"
#include "analytics/diameter.hpp"
#include "gen/small_world.hpp"
#include "gen/uniform.hpp"
#include "graph/builder.hpp"
#include "graph/subgraph.hpp"
#include "runtime/stats.hpp"
#include "test_util.hpp"

namespace sge {
namespace {

// ---------- diameter estimation ----------

BfsOptions serial_opts() {
    BfsOptions opts;
    opts.engine = BfsEngine::kSerial;
    return opts;
}

TEST(Diameter, ExactOnPath) {
    const CsrGraph g = test::path_graph(100);
    const DiameterEstimate d = estimate_diameter(g, 50, serial_opts());
    EXPECT_EQ(d.lower_bound, 99u);  // double sweep is exact on trees
    EXPECT_GE(d.upper_bound, 99u);
    // The peripheral vertex must be one of the path's endpoints.
    EXPECT_TRUE(d.peripheral_vertex == 0 || d.peripheral_vertex == 99);
}

TEST(Diameter, ExactOnStar) {
    const CsrGraph g = test::star_graph(50);
    const DiameterEstimate d = estimate_diameter(g, 0, serial_opts());
    EXPECT_EQ(d.lower_bound, 2u);
    EXPECT_LE(d.sweeps, 3u);
}

TEST(Diameter, CycleLowerBoundIsHalf) {
    const CsrGraph g = test::cycle_graph(30);
    const DiameterEstimate d = estimate_diameter(g, 3, serial_opts());
    EXPECT_EQ(d.lower_bound, 15u);  // every vertex has eccentricity n/2
}

TEST(Diameter, BoundsAreOrdered) {
    UniformParams params;
    params.num_vertices = 3000;
    params.degree = 4;
    const CsrGraph g = csr_from_edges(generate_uniform(params));
    const DiameterEstimate d = estimate_diameter(g, 0, serial_opts());
    EXPECT_GT(d.lower_bound, 0u);
    EXPECT_LE(d.lower_bound, d.upper_bound);
    EXPECT_LE(d.upper_bound, 2 * d.lower_bound);
}

TEST(Diameter, WorksWithParallelEngine) {
    const CsrGraph g = test::path_graph(200);
    BfsOptions opts;
    opts.engine = BfsEngine::kMultiSocket;
    opts.threads = 4;
    opts.topology = Topology::emulate(2, 2, 1);
    const DiameterEstimate d = estimate_diameter(g, 100, opts);
    EXPECT_EQ(d.lower_bound, 199u);
}

TEST(Diameter, InvalidStartThrows) {
    const CsrGraph g = test::path_graph(5);
    EXPECT_THROW(estimate_diameter(g, 5, serial_opts()), std::out_of_range);
}

TEST(Diameter, RespectsSweepBudget) {
    const CsrGraph g = test::cycle_graph(1000);
    const DiameterEstimate d = estimate_diameter(g, 0, serial_opts(), 2);
    EXPECT_LE(d.sweeps, 2u);
}

// ---------- subgraph extraction ----------

TEST(Subgraph, InducedKeepsInternalEdgesOnly) {
    // Path 0-1-2-3-4; select {1, 2, 4}: edges 1-2 survive, 4 isolates.
    const CsrGraph g = test::path_graph(5);
    const std::vector<vertex_t> pick = {1, 2, 4};
    const Subgraph s = induced_subgraph(g, pick);

    EXPECT_EQ(s.graph.num_vertices(), 3u);
    EXPECT_EQ(s.graph.num_edges(), 2u);  // 1-2 both directions
    EXPECT_EQ(s.original_of, pick);
    EXPECT_EQ(s.new_of[1], 0u);
    EXPECT_EQ(s.new_of[2], 1u);
    EXPECT_EQ(s.new_of[4], 2u);
    EXPECT_EQ(s.new_of[0], kInvalidVertex);
    EXPECT_TRUE(s.graph.has_edge(0, 1));
    EXPECT_EQ(s.graph.degree(2), 0u);
}

TEST(Subgraph, DeduplicatesSelection) {
    const CsrGraph g = test::path_graph(4);
    const std::vector<vertex_t> pick = {2, 2, 1, 2};
    const Subgraph s = induced_subgraph(g, pick);
    EXPECT_EQ(s.graph.num_vertices(), 2u);
    EXPECT_EQ(s.original_of, (std::vector<vertex_t>{2, 1}));
}

TEST(Subgraph, OutOfRangeSelectionThrows) {
    const CsrGraph g = test::path_graph(4);
    const std::vector<vertex_t> pick = {1, 9};
    EXPECT_THROW(induced_subgraph(g, pick), std::out_of_range);
}

TEST(Subgraph, EmptySelection) {
    const CsrGraph g = test::path_graph(4);
    const Subgraph s = induced_subgraph(g, {});
    EXPECT_EQ(s.graph.num_vertices(), 0u);
    EXPECT_EQ(s.graph.num_edges(), 0u);
}

TEST(Subgraph, LargestComponentOfTwoCliques) {
    // Make the components unequal: K4 and K6.
    EdgeList edges(10);
    for (vertex_t a = 0; a < 4; ++a)
        for (vertex_t b = a + 1; b < 4; ++b) edges.add(a, b);
    for (vertex_t a = 4; a < 10; ++a)
        for (vertex_t b = a + 1; b < 10; ++b) edges.add(a, b);
    const CsrGraph g = csr_from_edges(edges);

    const Subgraph s = largest_component_subgraph(g);
    EXPECT_EQ(s.graph.num_vertices(), 6u);
    EXPECT_EQ(s.graph.num_edges(), 30u);  // K6: 15 undirected
    for (const vertex_t old : s.original_of) EXPECT_GE(old, 4u);
}

TEST(Subgraph, LargestComponentIsConnected) {
    UniformParams params;
    params.num_vertices = 2000;
    params.degree = 2;
    const CsrGraph g = csr_from_edges(generate_uniform(params));
    const Subgraph s = largest_component_subgraph(g);
    EXPECT_GT(s.graph.num_vertices(), 0u);
    const ComponentsResult cc = connected_components(s.graph);
    EXPECT_EQ(cc.num_components(), 1u);
    // And it matches the component census of the original.
    const ComponentsResult orig = connected_components(g);
    EXPECT_EQ(s.graph.num_vertices(), orig.largest_size());
}

// ---------- small-world generator ----------

TEST(SmallWorld, ZeroRewireIsARingLattice) {
    SmallWorldParams params;
    params.num_vertices = 100;
    params.mean_degree = 4;
    params.rewire_probability = 0.0;
    const CsrGraph g = csr_from_edges(generate_small_world(params));
    for (vertex_t v = 0; v < 100; ++v) {
        ASSERT_EQ(g.degree(v), 4u) << "vertex " << v;
        ASSERT_TRUE(g.has_edge(v, (v + 1) % 100));
        ASSERT_TRUE(g.has_edge(v, (v + 2) % 100));
    }
}

TEST(SmallWorld, RewiringShrinksDiameter) {
    SmallWorldParams params;
    params.num_vertices = 2000;
    params.mean_degree = 6;
    params.rewire_probability = 0.0;
    const CsrGraph lattice = csr_from_edges(generate_small_world(params));
    params.rewire_probability = 0.2;
    const CsrGraph small_world =
        csr_from_edges(generate_small_world(params));

    BfsOptions opts;
    opts.engine = BfsEngine::kSerial;
    const auto d_lattice = estimate_diameter(lattice, 0, opts, 4);
    const auto d_sw = estimate_diameter(small_world, 0, opts, 4);
    // Ring lattice diameter ~ n/k = 333; a few shortcuts collapse it.
    EXPECT_GT(d_lattice.lower_bound, 10 * d_sw.lower_bound);
}

TEST(SmallWorld, DeterministicAndValidArguments) {
    SmallWorldParams params;
    params.num_vertices = 300;
    params.rewire_probability = 0.5;
    params.seed = 7;
    const EdgeList a = generate_small_world(params);
    const EdgeList b = generate_small_world(params);
    ASSERT_EQ(a.num_edges(), b.num_edges());
    for (std::size_t i = 0; i < a.num_edges(); ++i) ASSERT_EQ(a[i], b[i]);

    params.rewire_probability = 1.5;
    EXPECT_THROW(generate_small_world(params), std::invalid_argument);
    params.rewire_probability = 0.5;
    params.mean_degree = 600;
    EXPECT_THROW(generate_small_world(params), std::invalid_argument);
}

// ---------- sample statistics ----------

TEST(Stats, SummaryOfKnownSample) {
    const std::vector<double> v = {4.0, 1.0, 3.0, 2.0};
    const SampleSummary s = summarize(v);
    EXPECT_EQ(s.count, 4u);
    EXPECT_DOUBLE_EQ(s.min, 1.0);
    EXPECT_DOUBLE_EQ(s.max, 4.0);
    EXPECT_DOUBLE_EQ(s.mean, 2.5);
    EXPECT_DOUBLE_EQ(s.median, 2.5);
    EXPECT_NEAR(s.stddev, 1.1180, 1e-3);
}

TEST(Stats, OddMedianAndEmptyInput) {
    const std::vector<double> v = {9.0, 1.0, 5.0};
    EXPECT_DOUBLE_EQ(summarize(v).median, 5.0);
    const SampleSummary empty = summarize({});
    EXPECT_EQ(empty.count, 0u);
    EXPECT_DOUBLE_EQ(empty.mean, 0.0);
}

TEST(Stats, HarmonicMean) {
    const std::vector<double> v = {1.0, 2.0, 4.0};
    EXPECT_NEAR(harmonic_mean(v), 3.0 / (1.0 + 0.5 + 0.25), 1e-12);
    EXPECT_DOUBLE_EQ(harmonic_mean({}), 0.0);
    const std::vector<double> with_zero = {1.0, 0.0};
    EXPECT_DOUBLE_EQ(harmonic_mean(with_zero), 0.0);
}

}  // namespace
}  // namespace sge
