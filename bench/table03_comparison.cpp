// Table III: comparison against published parallel-BFS results.
//
// Reruns the paper's headline match-ups on (scaled-down) versions of the
// exact workloads and prints our measured ME/s next to the published
// numbers. The paper's three claims, checked here in shape:
//   1. 2.4x a 128-proc Cray XMT on uniform 64M vertices / 512M edges;
//   2. ~550 ME/s on R-MAT 200M/1B, matching a 40-proc Cray MTA-2;
//   3. 5x 256 BlueGene/L processors at average degree 50.

#include <cstdio>

#include "bench_util.hpp"

int main() {
    using namespace sge;
    using namespace sge::bench;

    banner("Table III: comparison with published BFS results", "Table III");

    struct Row {
        const char* reference;
        const char* system;
        const char* type;        // workload family
        std::uint64_t paper_n;   // the published instance
        std::uint64_t paper_m;
        double published_meps;   // their number
        int arity;               // m/n, reused for our scaled instance
        bool rmat;
    };
    // Published rows from Table III of the paper.
    const Row rows[] = {
        {"Mizell, Maschhoff [15]", "Cray XMT, 128 proc", "uniform", 64000000,
         512000000, 210, 8, false},
        {"Bader, Madduri [16]", "Cray MTA-2, 40 proc", "R-MAT", 200000000,
         1000000000, 500, 5, true},
        {"Yoo et al. [20]", "BlueGene/L, 256 proc", "uniform d=50", 1000000,
         50000000, 232, 50, false},
        {"Scarpazza et al. [14]", "Cell/BE, 1 chip", "uniform", 5000000,
         256000000, 305, 51, false},
        {"Xia, Prasanna [19]", "2x Xeon X5580", "uniform", 1000000, 16000000,
         220, 16, false},
    };

    // Our instances: same arity, vertex count scaled to the CI budget.
    const std::uint64_t our_n = scaled(1 << 15);

    Table table({"reference", "system", "workload", "published ME/s",
                 "ours ME/s (EX model)", "ratio"});
    for (const Row& row : rows) {
        const std::uint64_t m = static_cast<std::uint64_t>(row.arity) * our_n;
        const CsrGraph g = row.rmat ? rmat_graph(our_n, m, 3)
                                    : uniform_graph(our_n, m, 3);

        BfsOptions options;
        options.engine = BfsEngine::kAuto;
        options.topology = Topology::nehalem_ex();
        options.threads = 0;  // all 64 model threads
        const double ours = bfs_rate(g, options) / 1e6;

        table.add_row({row.reference, row.system,
                       std::string(row.type) + " n=" + fmt_u64(our_n) +
                           " m=" + fmt_u64(m),
                       fmt("%.0f", row.published_meps), fmt("%.1f", ours),
                       fmt("%.2fx", ours / row.published_meps)});
    }
    table.print();

    std::printf(
        "\npaper's numbers on real hardware (4-socket EX): ~500 ME/s on the "
        "XMT workload\n(2.4x), ~550 ME/s on the MTA-2 R-MAT workload "
        "(parity), ~1160 ME/s on the\nBG/L d=50 workload (5x). Absolute "
        "ratios here reflect this container's single\nCPU; the per-workload "
        "ordering (R-MAT >= uniform, dense > sparse) is the\nreproducible "
        "shape.\n");
    return 0;
}
