#include "core/bfs.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <filesystem>
#include <stdexcept>
#include <string>

#include "core/bfs_workspace.hpp"
#include "core/engine_common.hpp"
#include "graph/csr_compressed.hpp"
#include "graph/paged_graph.hpp"
#include "runtime/env.hpp"

namespace sge {

std::string to_string(BfsEngine engine) {
    switch (engine) {
        case BfsEngine::kSerial: return "serial";
        case BfsEngine::kNaive: return "naive";
        case BfsEngine::kBitmap: return "bitmap";
        case BfsEngine::kMultiSocket: return "multisocket";
        case BfsEngine::kHybrid: return "hybrid";
        case BfsEngine::kAuto: return "auto";
    }
    return "unknown";
}

std::string to_string(FrontierGen gen) {
    switch (gen) {
        case FrontierGen::kAtomic: return "atomic";
        case FrontierGen::kCompact: return "compact";
    }
    return "unknown";
}

std::string to_string(GraphBackend backend) {
    switch (backend) {
        case GraphBackend::kPlain: return "plain";
        case GraphBackend::kCompressed: return "compressed";
        case GraphBackend::kPaged: return "paged";
        case GraphBackend::kPagedCompressed: return "paged_compressed";
    }
    return "unknown";
}

namespace {

Topology resolve_topology(const BfsOptions& options) {
    return options.topology ? *options.topology : Topology::detect();
}

int resolve_threads(const BfsOptions& options, const Topology& topo) {
    if (options.threads < 0)
        throw std::invalid_argument("BfsOptions::threads must be >= 0");
    if (options.threads == 0) return topo.max_threads();
    return options.threads;
}

BfsEngine resolve_engine(const BfsOptions& options, const Topology& topo,
                         int threads) {
    if (options.engine != BfsEngine::kAuto) return options.engine;
    if (threads <= 1) return BfsEngine::kSerial;
    // The paper disables the inter-socket machinery when all workers fit
    // on one socket ("when the threads run on the same socket, we
    // disable inter-socket channels to get the highest performance").
    if (topo.sockets_used(threads) <= 1) return BfsEngine::kBitmap;
    return BfsEngine::kMultiSocket;
}

}  // namespace

BfsRunner::BfsRunner(BfsOptions options)
    : options_(std::move(options)), topology_(resolve_topology(options_)) {
    const int threads = resolve_threads(options_, topology_);
    if (resolve_engine(options_, topology_, threads) != BfsEngine::kSerial)
        team_ = std::make_unique<ThreadTeam>(threads, topology_);
}

BfsRunner::~BfsRunner() = default;
BfsRunner::BfsRunner(BfsRunner&&) noexcept = default;
BfsRunner& BfsRunner::operator=(BfsRunner&&) noexcept = default;

BfsEngine BfsRunner::resolved_engine() const noexcept {
    return resolve_engine(options_, topology_,
                          resolve_threads(options_, topology_));
}

int BfsRunner::threads() const noexcept {
    return team_ ? team_->size() : 1;
}

const BfsWorkspaceStats& BfsRunner::workspace_stats() const noexcept {
    static const BfsWorkspaceStats kEmpty{};
    return workspace_ ? workspace_->stats : kEmpty;
}

BfsResult BfsRunner::run(const CsrGraph& g, vertex_t root) {
    BfsResult result;
    run_into(result, g, root);
    return result;
}

BfsResult BfsRunner::run(const CompressedCsrGraph& g, vertex_t root) {
    BfsResult result;
    run_into(result, g, root);
    return result;
}

BfsResult BfsRunner::run(const PagedGraph& g, vertex_t root) {
    BfsResult result;
    run_into(result, g, root);
    return result;
}

const CompressedCsrGraph& BfsRunner::compressed_for(const CsrGraph& g) {
    const void* tag = g.offsets().data();
    if (!compressed_ || compressed_tag_ != tag ||
        compressed_n_ != g.num_vertices() || compressed_m_ != g.num_edges()) {
        compressed_ = std::make_unique<CompressedCsrGraph>(csr_compress(g));
        compressed_tag_ = tag;
        compressed_n_ = g.num_vertices();
        compressed_m_ = g.num_edges();
    }
    return *compressed_;
}

const PagedGraph& BfsRunner::paged_for(const CsrGraph& g, bool compressed) {
    const void* tag = g.offsets().data();
    if (!paged_ || paged_tag_ != tag || paged_compressed_ != compressed ||
        paged_n_ != g.num_vertices() || paged_m_ != g.num_edges()) {
        // Unique spill basename: pid + a process-wide counter, under
        // $SGE_PAGED_DIR or the system temp dir. owns_files unlinks the
        // manifest and stripes when the cached graph is replaced or the
        // runner dies; validate_payload is skipped because the payload
        // was written a microsecond ago from a validated graph.
        static std::atomic<std::uint64_t> counter{0};
        std::string dir = env_string("SGE_PAGED_DIR").value_or("");
        if (dir.empty()) dir = std::filesystem::temp_directory_path().string();
        const std::string path =
            dir + "/sge_paged_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter.fetch_add(1, std::memory_order_relaxed));
        PagedWriteOptions wopts;
        wopts.payload = compressed ? PagedPayload::kVarintBlob
                                   : PagedPayload::kPlainTargets;
        PagedOpenOptions oopts;
        oopts.validate_payload = false;
        oopts.owns_files = true;
        paged_ = std::make_unique<PagedGraph>(make_paged(g, path, wopts, oopts));
        paged_tag_ = tag;
        paged_compressed_ = compressed;
        paged_n_ = g.num_vertices();
        paged_m_ = g.num_edges();
    }
    return *paged_;
}

void BfsRunner::run_into(BfsResult& result, const CsrGraph& g, vertex_t root) {
    if (options_.backend == GraphBackend::kCompressed) {
        detail::check_root(g, root);  // validate before paying the encode
        run_into_impl(result, compressed_for(g), root);
        return;
    }
    if (options_.backend == GraphBackend::kPaged ||
        options_.backend == GraphBackend::kPagedCompressed) {
        detail::check_root(g, root);  // validate before paying the spill
        run_into_impl(
            result,
            paged_for(g, options_.backend == GraphBackend::kPagedCompressed),
            root);
        return;
    }
    run_into_impl(result, g, root);
}

void BfsRunner::run_into(BfsResult& result, const CompressedCsrGraph& g,
                         vertex_t root) {
    run_into_impl(result, g, root);
}

void BfsRunner::run_into(BfsResult& result, const PagedGraph& g,
                         vertex_t root) {
    run_into_impl(result, g, root);
}

template <class Graph>
void BfsRunner::run_into_impl(BfsResult& result, const Graph& g,
                              vertex_t root) {
    detail::check_root(g, root);
    const BfsEngine engine = resolved_engine();
    if (engine == BfsEngine::kSerial) {
        detail::bfs_serial(g, root, options_, result);
        return;
    }
    if (!workspace_) workspace_ = std::make_unique<BfsWorkspace>();
    workspace_->prepare(g, engine, options_, *team_);
    switch (engine) {
        case BfsEngine::kNaive:
            detail::bfs_naive(g, root, options_, *team_, *workspace_, result);
            return;
        case BfsEngine::kBitmap:
            detail::bfs_bitmap(g, root, options_, *team_, *workspace_, result);
            return;
        case BfsEngine::kMultiSocket:
            detail::bfs_multisocket(g, root, options_, *team_, *workspace_,
                                    result);
            return;
        case BfsEngine::kHybrid:
            detail::bfs_hybrid(g, root, options_, *team_, *workspace_, result);
            return;
        default:
            break;  // resolved_engine never returns kAuto/kSerial here
    }
    throw std::logic_error("BfsRunner: unresolved engine");
}

BfsResult bfs(const CsrGraph& g, vertex_t root, const BfsOptions& options) {
    BfsRunner runner(options);
    return runner.run(g, root);
}

BfsResult bfs(const CompressedCsrGraph& g, vertex_t root,
              const BfsOptions& options) {
    BfsRunner runner(options);
    return runner.run(g, root);
}

BfsResult bfs(const PagedGraph& g, vertex_t root, const BfsOptions& options) {
    BfsRunner runner(options);
    return runner.run(g, root);
}

obs::ChromeTrace make_bfs_trace(const BfsResult& result,
                                const std::string& name) {
    obs::ChromeTrace trace;
    trace.set_process_name(name);

    if (!result.thread_spans.empty()) {
        int max_tid = 0;
        for (const BfsThreadSpan& s : result.thread_spans)
            max_tid = std::max(max_tid, s.thread);
        for (int t = 0; t <= max_tid; ++t)
            trace.set_thread_name(t, "worker " + std::to_string(t));
        for (const BfsThreadSpan& s : result.thread_spans)
            trace.add_span(s.thread, "level " + std::to_string(s.level),
                           s.start_ns, s.end_ns,
                           {{"level", static_cast<std::uint64_t>(s.level)}});
    } else if (!result.level_stats.empty()) {
        // No per-thread spans (serial engine, or SGE_OBS compiled out):
        // synthesize one track from the per-level wall times so the
        // trace still shows the level structure.
        trace.set_thread_name(0, "levels");
        std::uint64_t cursor = 0;
        for (std::size_t d = 0; d < result.level_stats.size(); ++d) {
            const auto ns = static_cast<std::uint64_t>(
                result.level_stats[d].seconds * 1e9);
            trace.add_span(0, "level " + std::to_string(d), cursor,
                           cursor + ns,
                           {{"level", static_cast<std::uint64_t>(d)}});
            cursor += ns;
        }
    }

    // Counter series, one sample per level boundary (timestamped with
    // the cumulative per-level wall time so they line up with the spans
    // in either mode).
    std::uint64_t cursor = 0;
    for (const BfsLevelStats& s : result.level_stats) {
        trace.add_counter("frontier", cursor, {{"vertices", s.frontier_size}});
        trace.add_counter("edges scanned", cursor, {{"edges", s.edges_scanned}});
        const std::uint64_t wins = std::min(s.atomic_wins, s.atomic_ops);
        trace.add_counter("atomics", cursor,
                          {{"wins", s.atomic_ops > 0 ? wins : s.atomic_wins},
                           {"wasted", s.atomic_ops > wins
                                          ? s.atomic_ops - wins
                                          : 0}});
        trace.add_counter("plain-test skips", cursor,
                          {{"skips", s.bitmap_skips}});
        if (s.remote_tuples > 0)
            trace.add_counter("remote tuples", cursor,
                              {{"tuples", s.remote_tuples}});
        if (s.barrier_wait_ns > 0)
            trace.add_counter("barrier wait us", cursor,
                              {{"us", s.barrier_wait_ns / 1000}});
        if (s.chunks_claimed > 0)
            trace.add_counter("scheduler chunks", cursor,
                              {{"claimed", s.chunks_claimed},
                               {"stolen", s.chunks_stolen}});
        if (s.compact_writes > 0 || s.prefix_sum_ns > 0)
            trace.add_counter("compaction", cursor,
                              {{"writes", s.compact_writes},
                               {"prefix us", s.prefix_sum_ns / 1000}});
        if (s.simd_words_scanned > 0)
            trace.add_counter("simd words", cursor,
                              {{"words", s.simd_words_scanned}});
        if (s.bytes_decoded > 0)
            trace.add_counter("decode", cursor,
                              {{"bytes", s.bytes_decoded},
                               {"us", s.decode_ns / 1000}});
        cursor += static_cast<std::uint64_t>(s.seconds * 1e9);
    }
    return trace;
}

}  // namespace sge
