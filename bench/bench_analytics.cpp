// Throughput bench for the BFS-derived analytics layer: the
// applications the paper's introduction motivates, all running on the
// multicore BFS substrates. Complements the figure benches (which
// measure the traversal kernel itself) with end-to-end application
// numbers.

#include <cstdio>
#include <vector>

#include "analytics/betweenness.hpp"
#include "analytics/closeness.hpp"
#include "analytics/connected_components.hpp"
#include "analytics/diameter.hpp"
#include "analytics/kcore.hpp"
#include "analytics/parallel_sssp.hpp"
#include "analytics/sssp.hpp"
#include "analytics/st_connectivity.hpp"
#include "analytics/triangles.hpp"
#include "bench_util.hpp"
#include "graph/weighted.hpp"
#include "runtime/timer.hpp"

int main() {
    using namespace sge;
    using namespace sge::bench;

    banner("Analytics layer: the intro's BFS applications, end to end",
           "Section I motivation");

    const std::uint64_t n = scaled(1 << 15);
    const CsrGraph g = rmat_graph(n, 16 * n, 4);
    std::printf("workload: R-MAT, %llu vertices, %llu arcs\n\n",
                static_cast<unsigned long long>(g.num_vertices()),
                static_cast<unsigned long long>(g.num_edges()));

    Table table({"analysis", "time", "result"});
    WallTimer timer;

    {
        timer.reset();
        const ComponentsResult cc = connected_components(g);
        table.add_row({"connected components", fmt("%.1f ms", timer.seconds() * 1e3),
                       fmt_u64(cc.num_components()) + " components, giant = " +
                           fmt_u64(cc.largest_size())});
    }
    {
        BfsOptions opts;
        opts.engine = BfsEngine::kHybrid;
        opts.threads = 4;
        opts.topology = Topology::emulate(1, 4, 1);
        timer.reset();
        const DiameterEstimate d = estimate_diameter(g, 0, opts);
        table.add_row({"diameter (double sweep)",
                       fmt("%.1f ms", timer.seconds() * 1e3),
                       "in [" + fmt_u64(d.lower_bound) + ", " +
                           fmt_u64(d.upper_bound) + "], " + fmt_u64(d.sweeps) +
                           " sweeps"});
    }
    {
        timer.reset();
        const StResult st = st_connectivity(g, 0, static_cast<vertex_t>(n - 1));
        table.add_row(
            {"st-connectivity (bidirectional)",
             fmt("%.1f ms", timer.seconds() * 1e3),
             st.connected ? "distance " + fmt_u64(st.distance) + ", expanded " +
                                fmt_u64(st.vertices_expanded)
                          : "not connected"});
    }
    {
        std::vector<vertex_t> sources;
        for (vertex_t s = 0; s < 64; ++s)
            sources.push_back(static_cast<vertex_t>((s * 1315423911ULL) % n));
        std::sort(sources.begin(), sources.end());
        sources.erase(std::unique(sources.begin(), sources.end()),
                      sources.end());
        ClosenessOptions opts;
        opts.threads = 4;
        opts.topology = Topology::emulate(1, 4, 1);
        timer.reset();
        const auto scores = closeness_centrality(g, sources, opts);
        table.add_row({"closeness (" + fmt_u64(sources.size()) +
                           " sources, MS-BFS)",
                       fmt("%.1f ms", timer.seconds() * 1e3),
                       "one shared 64-lane traversal"});
    }
    {
        BetweennessOptions opts;
        opts.sample_sources = 32;
        opts.threads = 4;
        opts.topology = Topology::emulate(1, 4, 1);
        timer.reset();
        const auto bc = betweenness_centrality(g, opts);
        vertex_t top = 0;
        for (vertex_t v = 1; v < g.num_vertices(); ++v)
            if (bc[v] > bc[top]) top = v;
        table.add_row({"betweenness (32-source sample)",
                       fmt("%.1f ms", timer.seconds() * 1e3),
                       "top vertex " + fmt_u64(top)});
    }
    {
        timer.reset();
        const KcoreResult kc = kcore_decomposition(g);
        table.add_row({"k-core decomposition",
                       fmt("%.1f ms", timer.seconds() * 1e3),
                       "degeneracy " + fmt_u64(kc.degeneracy)});
    }
    {
        TriangleOptions opts;
        opts.threads = 4;
        opts.topology = Topology::emulate(1, 4, 1);
        timer.reset();
        const TriangleCounts tc = count_triangles(g, opts);
        table.add_row({"triangle census", fmt("%.1f ms", timer.seconds() * 1e3),
                       fmt_u64(tc.total) + " triangles, clustering " +
                           fmt("%.4f", tc.global_clustering(g))});
    }
    {
        const WeightedCsrGraph wg = with_random_weights(
            rmat_graph(n, 16 * n, 4), 1, 100, 9);
        timer.reset();
        const SsspResult exact = dijkstra(wg, 0);
        const double dijkstra_ms = timer.seconds() * 1e3;
        timer.reset();
        const SsspResult buckets = delta_stepping(wg, 0);
        const double delta_ms = timer.seconds() * 1e3;
        table.add_row({"sssp: dijkstra", fmt("%.1f ms", dijkstra_ms),
                       fmt_u64(exact.edges_relaxed) + " relaxations"});
        table.add_row({"sssp: delta-stepping", fmt("%.1f ms", delta_ms),
                       fmt_u64(buckets.edges_relaxed) + " relaxations"});
        ParallelSsspOptions popts;
        popts.threads = 4;
        popts.topology = Topology::emulate(1, 4, 1);
        timer.reset();
        const SsspResult par = parallel_delta_stepping(wg, 0, popts);
        table.add_row({"sssp: parallel delta-stepping (4t)",
                       fmt("%.1f ms", timer.seconds() * 1e3),
                       fmt_u64(par.edges_relaxed) + " relaxations"});
    }

    table.print();
    return 0;
}
