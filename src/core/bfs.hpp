#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "concurrency/thread_team.hpp"
#include "graph/csr_graph.hpp"
#include "graph/types.hpp"
#include "runtime/topology.hpp"

namespace sge {

/// Which BFS implementation to run.
enum class BfsEngine {
    kSerial,       ///< textbook two-queue BFS, the sequential reference
    kNaive,        ///< Algorithm 1: shared queues, CAS on the parent array
    kBitmap,       ///< Algorithm 2: visited bitmap + double-checked atomics
    kMultiSocket,  ///< Algorithm 3: per-socket queues + inter-socket channels
    kHybrid,       ///< extension: direction-optimizing (top-down/bottom-up)
    kAuto,         ///< pick by thread count / sockets engaged
};

[[nodiscard]] std::string to_string(BfsEngine engine);

/// Tuning and instrumentation knobs. Defaults reproduce the paper's
/// most-optimized configuration.
struct BfsOptions {
    BfsEngine engine = BfsEngine::kAuto;

    /// Worker threads; 0 means "all threads of the topology".
    int threads = 0;

    /// Socket/core model; defaults to Topology::detect(). Use
    /// Topology::nehalem_ep()/nehalem_ex() to reproduce the paper's
    /// machines on any host (emulated placement, see DESIGN.md).
    std::optional<Topology> topology;

    /// Vertices per inter-socket channel batch (Algorithm 3's batching
    /// optimization: amortizes the ticket-lock acquisition).
    std::size_t batch_size = 64;

    /// Vertices a worker claims from the current queue at a time.
    std::size_t chunk_size = 128;

    /// FastForward ring capacity per inter-socket channel (entries).
    std::size_t channel_capacity = 1 << 15;

    /// Fill BfsResult::level (hop distance per vertex).
    bool compute_levels = true;

    /// Collect per-level counters (frontier sizes, bitmap checks,
    /// atomic ops, remote tuples) into BfsResult::level_stats.
    bool collect_stats = false;

    /// Algorithm 2's cheap-test-before-atomic optimization. Disabling it
    /// makes every visited check a `lock or` — the Figure 4/5 ablation.
    bool bitmap_double_check = true;

    /// Algorithm 3 ablation: also consult the (possibly remote) bitmap
    /// before shipping a tuple through a channel. The paper does NOT do
    /// this — the bit lives on the owner socket and reading it remotely
    /// is exactly the coherence traffic the channels exist to avoid —
    /// but on low-latency hosts the filter can win by shrinking channel
    /// traffic. Measured in bench/ablation_tuning.
    bool remote_sender_filter = false;

    /// kHybrid: switch top-down -> bottom-up when the frontier's
    /// unexplored out-edges exceed (remaining edges)/alpha, and back
    /// when the frontier shrinks below vertices/beta. Beamer et al.'s
    /// defaults.
    double hybrid_alpha = 14.0;
    double hybrid_beta = 24.0;

    /// Opt-in watchdog deadline for the whole traversal, in seconds.
    /// <= 0 disables (the default; SGE_BFS_WATCHDOG_MS then supplies a
    /// process-wide default). When the deadline passes before the run
    /// completes, the engine aborts its barrier — unwinding every
    /// worker in bounded time — and throws BfsDeadlineError carrying a
    /// diagnostic snapshot (level reached, queue depths, channel
    /// counters) instead of hanging.
    double watchdog_seconds = 0.0;
};

/// Thrown by the parallel engines when BfsOptions::watchdog_seconds (or
/// SGE_BFS_WATCHDOG_MS) expires before the traversal completes. what()
/// carries the stall diagnostics.
class BfsDeadlineError : public std::runtime_error {
  public:
    using std::runtime_error::runtime_error;
};

/// Per-level instrumentation (Figure 4 reproduces from this).
struct BfsLevelStats {
    std::uint64_t frontier_size = 0;   ///< vertices expanded this level
    std::uint64_t edges_scanned = 0;   ///< adjacency entries examined
    std::uint64_t bitmap_checks = 0;   ///< plain bitmap/parent queries
    std::uint64_t atomic_ops = 0;      ///< locked RMW instructions issued
    std::uint64_t remote_tuples = 0;   ///< (v,u) pairs shipped via channels
    double seconds = 0.0;              ///< wall time of this level
};

/// Output of one BFS run.
struct BfsResult {
    /// parent[v] is v's BFS-tree parent; the root is its own parent;
    /// kInvalidVertex marks unreached vertices.
    std::vector<vertex_t> parent;

    /// Hop distance from the root (kInvalidLevel when unreached);
    /// empty when !BfsOptions::compute_levels.
    std::vector<level_t> level;

    std::uint64_t vertices_visited = 0;

    /// ma in the paper: adjacency entries actually scanned. Processing
    /// rate = ma / seconds.
    std::uint64_t edges_traversed = 0;

    std::uint32_t num_levels = 0;
    double seconds = 0.0;

    /// Filled when BfsOptions::collect_stats.
    std::vector<BfsLevelStats> level_stats;

    [[nodiscard]] double edges_per_second() const noexcept {
        return seconds > 0 ? static_cast<double>(edges_traversed) / seconds : 0.0;
    }
};

/// Reusable BFS executor: owns the worker team so repeated traversals
/// (benchmarks, connected components, multi-root analytics) do not pay
/// thread creation per run.
class BfsRunner {
  public:
    explicit BfsRunner(BfsOptions options = {});
    ~BfsRunner();

    BfsRunner(BfsRunner&&) noexcept;
    BfsRunner& operator=(BfsRunner&&) noexcept;

    /// Runs a BFS from `root`. Throws std::out_of_range for an invalid
    /// root or std::invalid_argument for inconsistent options.
    BfsResult run(const CsrGraph& g, vertex_t root);

    [[nodiscard]] const BfsOptions& options() const noexcept { return options_; }

    /// Engine actually selected (kAuto resolved) for `g`-independent
    /// options; what run() will dispatch to.
    [[nodiscard]] BfsEngine resolved_engine() const noexcept;

    [[nodiscard]] int threads() const noexcept;
    [[nodiscard]] const Topology& topology() const noexcept { return topology_; }

  private:
    BfsOptions options_;
    Topology topology_;
    std::unique_ptr<ThreadTeam> team_;  // null for serial-only runners
};

/// One-shot convenience wrapper around BfsRunner.
BfsResult bfs(const CsrGraph& g, vertex_t root, const BfsOptions& options = {});

namespace detail {

// Engine entry points (exposed for tests; use BfsRunner in user code).
BfsResult bfs_serial(const CsrGraph& g, vertex_t root, const BfsOptions& options);
BfsResult bfs_naive(const CsrGraph& g, vertex_t root, const BfsOptions& options,
                    ThreadTeam& team);
BfsResult bfs_bitmap(const CsrGraph& g, vertex_t root, const BfsOptions& options,
                     ThreadTeam& team);
BfsResult bfs_multisocket(const CsrGraph& g, vertex_t root,
                          const BfsOptions& options, ThreadTeam& team);
BfsResult bfs_hybrid(const CsrGraph& g, vertex_t root, const BfsOptions& options,
                     ThreadTeam& team);

}  // namespace detail

}  // namespace sge
