#include <gtest/gtest.h>

#include "memprobe/atomic_probe.hpp"
#include "memprobe/memory_probe.hpp"

namespace sge {
namespace {

TEST(MemoryProbe, CountsAllOperations) {
    MemoryProbeParams params;
    params.working_set_bytes = 1 << 16;
    params.batch_depth = 8;
    params.total_reads = 1 << 16;
    const ProbeResult r = run_memory_probe(params);
    EXPECT_EQ(r.operations, (1u << 16) / 8 * 8);
    EXPECT_GT(r.seconds, 0.0);
    EXPECT_GT(r.ops_per_second(), 0.0);
}

TEST(MemoryProbe, ChecksumIsDeterministicPerSeed) {
    MemoryProbeParams params;
    params.working_set_bytes = 1 << 14;
    params.total_reads = 1 << 14;
    params.seed = 42;
    const ProbeResult a = run_memory_probe(params);
    const ProbeResult b = run_memory_probe(params);
    EXPECT_EQ(a.checksum, b.checksum);
    EXPECT_EQ(a.operations, b.operations);
}

TEST(MemoryProbe, DepthOneWorks) {
    MemoryProbeParams params;
    params.working_set_bytes = 1 << 12;
    params.batch_depth = 1;
    params.total_reads = 10000;
    const ProbeResult r = run_memory_probe(params);
    EXPECT_EQ(r.operations, 10000u);
}

TEST(MemoryProbe, RejectsAbsurdDepth) {
    MemoryProbeParams params;
    params.batch_depth = 100;
    EXPECT_THROW(run_memory_probe(params), std::invalid_argument);
}

TEST(MemoryProbe, TinyWorkingSetClampedToTwoSlots) {
    MemoryProbeParams params;
    params.working_set_bytes = 1;  // sub-slot: clamped internally
    params.batch_depth = 2;
    params.total_reads = 100;
    const ProbeResult r = run_memory_probe(params);
    EXPECT_EQ(r.operations, 100u);
}

TEST(AtomicProbe, FetchAddCountsOps) {
    AtomicProbeParams params;
    params.buffer_bytes = 1 << 16;
    params.threads = 4;
    params.ops_per_thread = 10000;
    params.topology = Topology::emulate(2, 2, 1);
    const ProbeResult r = run_atomic_probe(params);
    EXPECT_EQ(r.operations, 40000u);
    EXPECT_GT(r.ops_per_second(), 0.0);
}

TEST(AtomicProbe, PlainReadMode) {
    AtomicProbeParams params;
    params.buffer_bytes = 1 << 16;
    params.threads = 2;
    params.ops_per_thread = 10000;
    params.mode = AtomicProbeParams::Mode::kPlainRead;
    params.topology = Topology::emulate(1, 2, 1);
    const ProbeResult r = run_atomic_probe(params);
    EXPECT_EQ(r.operations, 20000u);
}

TEST(AtomicProbe, FetchAddsActuallyLand) {
    // Indirect but strong: with T threads doing N adds of 1 on a tiny
    // buffer, re-running the probe must take the sum further — here we
    // just verify single-thread determinism of op count and a nonzero
    // runtime, plus that threads < 1 is rejected.
    AtomicProbeParams params;
    params.threads = 0;
    EXPECT_THROW(run_atomic_probe(params), std::invalid_argument);
}

}  // namespace
}  // namespace sge
