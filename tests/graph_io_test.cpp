#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "gen/rmat.hpp"
#include "graph/builder.hpp"
#include "graph/io.hpp"

namespace sge {
namespace {

class GraphIoTest : public ::testing::Test {
  protected:
    void SetUp() override {
        dir_ = std::filesystem::temp_directory_path() / "sge_io_test";
        std::filesystem::create_directories(dir_);
    }
    void TearDown() override { std::filesystem::remove_all(dir_); }

    std::string path(const char* name) const { return (dir_ / name).string(); }

    std::filesystem::path dir_;
};

TEST_F(GraphIoTest, BinaryRoundTrip) {
    RmatParams params;
    params.scale = 10;
    params.num_edges = 8192;
    const CsrGraph g = csr_from_edges(generate_rmat(params));

    write_csr(g, path("g.csr"));
    const CsrGraph loaded = read_csr(path("g.csr"));
    EXPECT_TRUE(g == loaded);
}

TEST_F(GraphIoTest, BinaryRoundTripEmptyGraph) {
    const CsrGraph g = csr_from_edges(EdgeList(0));
    write_csr(g, path("empty.csr"));
    const CsrGraph loaded = read_csr(path("empty.csr"));
    EXPECT_EQ(loaded.num_vertices(), 0u);
    EXPECT_EQ(loaded.num_edges(), 0u);
}

TEST_F(GraphIoTest, ReadRejectsBadMagic) {
    std::ofstream out(path("bad.csr"), std::ios::binary);
    out << "NOTACSR0 garbage follows";
    out.close();
    EXPECT_THROW(read_csr(path("bad.csr")), std::runtime_error);
}

TEST_F(GraphIoTest, ReadRejectsTruncatedFile) {
    const CsrGraph g = csr_from_edges(EdgeList(10));
    write_csr(g, path("trunc.csr"));
    std::filesystem::resize_file(path("trunc.csr"), 20);  // cut mid-header
    EXPECT_THROW(read_csr(path("trunc.csr")), std::runtime_error);
}

TEST_F(GraphIoTest, ReadRejectsMissingFile) {
    EXPECT_THROW(read_csr(path("does_not_exist.csr")), std::runtime_error);
}

TEST_F(GraphIoTest, TextEdgeListRoundTrip) {
    EdgeList edges(5);
    edges.add(0, 1);
    edges.add(3, 4);
    edges.add(2, 2);
    write_edge_list_text(edges, path("e.txt"));
    const EdgeList loaded = read_edge_list_text(path("e.txt"));
    ASSERT_EQ(loaded.num_edges(), 3u);
    EXPECT_EQ(loaded[0], (Edge{0, 1}));
    EXPECT_EQ(loaded[1], (Edge{3, 4}));
    EXPECT_EQ(loaded[2], (Edge{2, 2}));
    EXPECT_EQ(loaded.num_vertices(), 5u);
}

TEST_F(GraphIoTest, TextReaderSkipsComments) {
    std::ofstream out(path("c.txt"));
    out << "# comment\n% another style\n1 2\n\n3 4\n";
    out.close();
    const EdgeList loaded = read_edge_list_text(path("c.txt"));
    EXPECT_EQ(loaded.num_edges(), 2u);
}

TEST_F(GraphIoTest, TextReaderRejectsGarbageLine) {
    std::ofstream out(path("g.txt"));
    out << "1 2\nhello world\n";
    out.close();
    EXPECT_THROW(read_edge_list_text(path("g.txt")), std::runtime_error);
}

}  // namespace
}  // namespace sge
