#include <gtest/gtest.h>

#include <vector>

#include "graph/builder.hpp"
#include "graph/csr_graph.hpp"
#include "graph/degree_stats.hpp"
#include "graph/edge_list.hpp"

namespace sge {
namespace {

EdgeList triangle_plus_tail() {
    // 0-1, 1-2, 2-0 triangle; 2-3 tail; 4 isolated.
    EdgeList edges(5);
    edges.add(0, 1);
    edges.add(1, 2);
    edges.add(2, 0);
    edges.add(2, 3);
    return edges;
}

TEST(CsrBuilder, UndirectedDefaultSymmetrizes) {
    const CsrGraph g = csr_from_edges(triangle_plus_tail());
    EXPECT_EQ(g.num_vertices(), 5u);
    EXPECT_EQ(g.num_edges(), 8u);  // 4 undirected edges -> 8 arcs
    EXPECT_TRUE(g.well_formed());
    EXPECT_TRUE(g.has_edge(0, 1));
    EXPECT_TRUE(g.has_edge(1, 0));
    EXPECT_TRUE(g.has_edge(3, 2));
    EXPECT_FALSE(g.has_edge(0, 3));
    EXPECT_EQ(g.degree(4), 0u);
}

TEST(CsrBuilder, DirectedMode) {
    BuildOptions opts;
    opts.make_undirected = false;
    const CsrGraph g = csr_from_edges(triangle_plus_tail(), opts);
    EXPECT_EQ(g.num_edges(), 4u);
    EXPECT_TRUE(g.has_edge(0, 1));
    EXPECT_FALSE(g.has_edge(1, 0));
}

TEST(CsrBuilder, RemovesSelfLoops) {
    EdgeList edges(3);
    edges.add(0, 0);
    edges.add(0, 1);
    edges.add(2, 2);
    const CsrGraph g = csr_from_edges(edges);
    EXPECT_EQ(g.num_edges(), 2u);  // only 0-1 symmetrized
    EXPECT_FALSE(g.has_edge(0, 0));
    EXPECT_EQ(g.degree(2), 0u);
}

TEST(CsrBuilder, KeepsSelfLoopsWhenAsked) {
    EdgeList edges(2);
    edges.add(0, 0);
    BuildOptions opts;
    opts.remove_self_loops = false;
    opts.make_undirected = false;
    const CsrGraph g = csr_from_edges(edges, opts);
    EXPECT_TRUE(g.has_edge(0, 0));
}

TEST(CsrBuilder, DeduplicatesParallelEdges) {
    EdgeList edges(2);
    for (int i = 0; i < 5; ++i) edges.add(0, 1);
    const CsrGraph g = csr_from_edges(edges);
    EXPECT_EQ(g.num_edges(), 2u);  // one arc each way
    EXPECT_EQ(g.degree(0), 1u);
    EXPECT_EQ(g.degree(1), 1u);
}

TEST(CsrBuilder, KeepsParallelEdgesWhenAsked) {
    EdgeList edges(2);
    for (int i = 0; i < 5; ++i) edges.add(0, 1);
    BuildOptions opts;
    opts.deduplicate = false;
    opts.make_undirected = false;
    const CsrGraph g = csr_from_edges(edges, opts);
    EXPECT_EQ(g.num_edges(), 5u);
    EXPECT_EQ(g.degree(0), 5u);
}

TEST(CsrBuilder, NeighborsAreSorted) {
    EdgeList edges(6);
    edges.add(0, 5);
    edges.add(0, 2);
    edges.add(0, 4);
    edges.add(0, 1);
    BuildOptions opts;
    opts.make_undirected = false;
    const CsrGraph g = csr_from_edges(edges, opts);
    const auto adj = g.neighbors(0);
    const std::vector<vertex_t> got(adj.begin(), adj.end());
    EXPECT_EQ(got, (std::vector<vertex_t>{1, 2, 4, 5}));
}

TEST(CsrBuilder, RejectsOutOfRangeEndpoints) {
    EdgeList edges(2);
    edges.add(0, 7);
    EXPECT_THROW(csr_from_edges(edges), std::out_of_range);
}

TEST(CsrBuilder, EmptyGraph) {
    const CsrGraph g = csr_from_edges(EdgeList(0));
    EXPECT_EQ(g.num_vertices(), 0u);
    EXPECT_EQ(g.num_edges(), 0u);
    EXPECT_TRUE(g.well_formed());
}

TEST(CsrBuilder, VerticesWithoutEdges) {
    const CsrGraph g = csr_from_edges(EdgeList(100));
    EXPECT_EQ(g.num_vertices(), 100u);
    EXPECT_EQ(g.num_edges(), 0u);
    for (vertex_t v = 0; v < 100; ++v) ASSERT_EQ(g.degree(v), 0u);
}

TEST(CsrBuilder, RoundTripThroughEdgeList) {
    const CsrGraph g = csr_from_edges(triangle_plus_tail());
    const EdgeList extracted = edges_from_csr(g);
    BuildOptions opts;
    opts.make_undirected = false;  // already symmetric
    const CsrGraph g2 = csr_from_edges(extracted, opts);
    EXPECT_TRUE(g == g2);
}

TEST(CsrGraph, WellFormedRejectsBrokenOffsets) {
    AlignedBuffer<edge_offset_t> offsets(3);
    offsets[0] = 0;
    offsets[1] = 5;  // exceeds target count
    offsets[2] = 2;  // non-monotone
    AlignedBuffer<vertex_t> targets(2);
    targets[0] = 0;
    targets[1] = 1;
    const CsrGraph g(std::move(offsets), std::move(targets));
    EXPECT_FALSE(g.well_formed());
}

TEST(CsrGraph, WellFormedRejectsOutOfRangeTargets) {
    AlignedBuffer<edge_offset_t> offsets(2);
    offsets[0] = 0;
    offsets[1] = 1;
    AlignedBuffer<vertex_t> targets(1);
    targets[0] = 99;
    const CsrGraph g(std::move(offsets), std::move(targets));
    EXPECT_FALSE(g.well_formed());
}

TEST(CsrGraph, MemoryBytesAccountsBothArrays) {
    const CsrGraph g = csr_from_edges(triangle_plus_tail());
    EXPECT_EQ(g.memory_bytes(),
              6 * sizeof(edge_offset_t) + 8 * sizeof(vertex_t));
}

TEST(DegreeStats, SummarizesDistribution) {
    const CsrGraph g = csr_from_edges(triangle_plus_tail());
    const DegreeStats stats = compute_degree_stats(g);
    EXPECT_EQ(stats.min_degree, 0u);   // vertex 4
    EXPECT_EQ(stats.max_degree, 3u);   // vertex 2
    EXPECT_DOUBLE_EQ(stats.mean_degree, 8.0 / 5.0);
    EXPECT_EQ(stats.isolated_vertices, 1u);
    EXPECT_FALSE(stats.describe().empty());
}

}  // namespace
}  // namespace sge
