// Figure 10: "SCCA#2 benchmark, throughput with uniform graphs, Nehalem
// EX."
//
// Instead of one BFS spanning all sockets, run one *independent* BFS
// instance per socket, each on its own graph with the socket's own
// cores — the SSCA#2-representative throughput mode. Reports aggregate
// edges/second as instances are added (1..sockets).

#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "runtime/timer.hpp"

int main() {
    using namespace sge;
    using namespace sge::bench;

    banner("Figure 10: SSCA#2-style throughput, one BFS per socket (EX model)",
           "Fig. 10");

    const Topology ex = Topology::nehalem_ex();
    const int sockets = ex.sockets();
    const int cores = ex.cores_per_socket();

    const std::uint64_t n = scaled(1 << 15);
    const std::uint64_t m = 16 * n;

    // One private graph per instance, as in the paper ("multiple
    // instances of the algorithm on different graphs on different
    // sockets").
    std::vector<CsrGraph> graphs;
    graphs.reserve(static_cast<std::size_t>(sockets));
    for (int s = 0; s < sockets; ++s)
        graphs.push_back(uniform_graph(n, m, 100 + static_cast<std::uint64_t>(s)));

    Table table({"instances", "threads total", "aggregate rate",
                 "per-instance rate"});
    for (int instances = 1; instances <= sockets; ++instances) {
        std::vector<double> rates(static_cast<std::size_t>(instances), 0.0);
        std::vector<std::thread> drivers;
        WallTimer timer;
        for (int i = 0; i < instances; ++i) {
            drivers.emplace_back([&, i] {
                // Each instance: Algorithm 2 on one socket's cores.
                BfsOptions options;
                options.engine = BfsEngine::kBitmap;
                options.threads = cores;
                options.topology = Topology::emulate(1, cores, 1);
                BfsRunner runner(options);
                rates[static_cast<std::size_t>(i)] =
                    bfs_rate(graphs[static_cast<std::size_t>(i)], runner,
                             /*runs=*/2, /*seed=*/7 + i);
            });
        }
        for (auto& d : drivers) d.join();

        double aggregate = 0.0;
        for (const double r : rates) aggregate += r;
        table.add_row({fmt_u64(instances), fmt_u64(instances * cores),
                       fmt("%.1f ME/s", aggregate / 1e6),
                       fmt("%.1f ME/s", aggregate / instances / 1e6)});
    }
    table.print();

    std::printf(
        "\npaper's shape: aggregate throughput grows ~linearly with the "
        "number of\nper-socket instances (independent working sets, no "
        "cross-socket traffic).\n");
    return 0;
}
