#include "analytics/betweenness.hpp"

#include <algorithm>
#include <atomic>
#include <memory>
#include <numeric>

#include "concurrency/thread_team.hpp"
#include "runtime/prng.hpp"

namespace sge {

namespace {

/// Per-worker traversal state, reused across sources.
struct BrandesState {
    explicit BrandesState(vertex_t n)
        : sigma(n, 0), dist(n, kInvalidLevel), delta(n, 0.0), scores(n, 0.0) {
        order.reserve(n);
        frontier_ends.reserve(64);
    }

    std::vector<std::uint64_t> sigma;  // shortest-path counts
    std::vector<level_t> dist;
    std::vector<double> delta;         // dependency accumulator
    std::vector<double> scores;        // this worker's partial centrality
    std::vector<vertex_t> order;       // vertices in visit order
    std::vector<std::size_t> frontier_ends;  // level boundaries in `order`

    void accumulate_from(const CsrGraph& g, vertex_t s) {
        // Phase 1: BFS from s, counting shortest paths.
        order.clear();
        frontier_ends.clear();
        sigma[s] = 1;
        dist[s] = 0;
        order.push_back(s);
        std::size_t level_begin = 0;
        while (level_begin < order.size()) {
            const std::size_t level_end = order.size();
            frontier_ends.push_back(level_end);
            for (std::size_t i = level_begin; i < level_end; ++i) {
                const vertex_t u = order[i];
                for (const vertex_t v : g.neighbors(u)) {
                    if (dist[v] == kInvalidLevel) {
                        dist[v] = dist[u] + 1;
                        order.push_back(v);
                    }
                    if (dist[v] == dist[u] + 1) sigma[v] += sigma[u];
                }
            }
            level_begin = level_end;
        }

        // Phase 2: reverse sweep accumulating dependencies.
        for (std::size_t i = order.size(); i-- > 1;) {
            const vertex_t w = order[i];
            const double coeff =
                (1.0 + delta[w]) / static_cast<double>(sigma[w]);
            for (const vertex_t v : g.neighbors(w)) {
                if (dist[v] + 1 == dist[w])
                    delta[v] += static_cast<double>(sigma[v]) * coeff;
            }
            scores[w] += delta[w];
        }

        // Reset only the touched vertices (sparse components stay cheap).
        for (const vertex_t v : order) {
            sigma[v] = 0;
            dist[v] = kInvalidLevel;
            delta[v] = 0.0;
        }
    }
};

}  // namespace

std::vector<double> betweenness_centrality(const CsrGraph& g,
                                           const BetweennessOptions& options) {
    const vertex_t n = g.num_vertices();
    std::vector<double> centrality(n, 0.0);
    if (n == 0) return centrality;

    // Source set: all vertices, or a uniform sample without replacement.
    std::vector<vertex_t> sources;
    if (options.sample_sources == 0 || options.sample_sources >= n) {
        sources.resize(n);
        std::iota(sources.begin(), sources.end(), vertex_t{0});
    } else {
        std::vector<vertex_t> pool(n);
        std::iota(pool.begin(), pool.end(), vertex_t{0});
        Xoshiro256 rng(options.seed);
        for (std::uint32_t i = 0; i < options.sample_sources; ++i) {
            const auto j =
                static_cast<std::size_t>(i + rng.next_below(n - i));
            std::swap(pool[i], pool[j]);
        }
        pool.resize(options.sample_sources);
        sources = std::move(pool);
    }

    std::unique_ptr<ThreadTeam> owned_team;
    if (options.team == nullptr)
        owned_team = std::make_unique<ThreadTeam>(
            std::max(1, options.threads),
            options.topology ? *options.topology : Topology::detect());
    ThreadTeam& team = options.team != nullptr ? *options.team : *owned_team;
    const int threads = team.size();

    std::atomic<std::size_t> cursor{0};
    std::vector<BrandesState> states;
    states.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) states.emplace_back(n);

    team.run([&](int tid) {
        BrandesState& state = states[static_cast<std::size_t>(tid)];
        for (;;) {
            const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
            if (i >= sources.size()) break;
            state.accumulate_from(g, sources[i]);
        }
    });

    for (const BrandesState& state : states)
        for (vertex_t v = 0; v < n; ++v) centrality[v] += state.scores[v];

    // Sampling estimator: scale partial sums up to the full source set.
    if (!sources.empty() && sources.size() < n) {
        const double scale =
            static_cast<double>(n) / static_cast<double>(sources.size());
        for (double& c : centrality) c *= scale;
    }
    // Undirected graphs count each pair twice (once per endpoint order).
    for (double& c : centrality) c *= 0.5;

    if (options.normalize && n > 2) {
        const double norm = 2.0 / (static_cast<double>(n - 1) *
                                   static_cast<double>(n - 2));
        for (double& c : centrality) c *= norm;
    }
    return centrality;
}

}  // namespace sge
