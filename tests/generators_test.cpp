#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "gen/grid.hpp"
#include "gen/permute.hpp"
#include "gen/rmat.hpp"
#include "gen/ssca2.hpp"
#include "gen/uniform.hpp"
#include "graph/builder.hpp"
#include "graph/degree_stats.hpp"

namespace sge {
namespace {

// ---------- uniform ----------

TEST(UniformGen, EdgeCountAndRange) {
    UniformParams params;
    params.num_vertices = 1000;
    params.degree = 8;
    const EdgeList edges = generate_uniform(params);
    EXPECT_EQ(edges.num_edges(), 8000u);
    EXPECT_EQ(edges.num_vertices(), 1000u);
    for (const Edge& e : edges) {
        ASSERT_LT(e.src, 1000u);
        ASSERT_LT(e.dst, 1000u);
        ASSERT_NE(e.src, e.dst) << "self-loop generated";
    }
}

TEST(UniformGen, EveryVertexHasExactOutDegree) {
    UniformParams params;
    params.num_vertices = 500;
    params.degree = 4;
    const EdgeList edges = generate_uniform(params);
    std::vector<int> out(500, 0);
    for (const Edge& e : edges) ++out[e.src];
    for (const int d : out) ASSERT_EQ(d, 4);
}

TEST(UniformGen, DeterministicPerSeed) {
    UniformParams params;
    params.num_vertices = 200;
    params.degree = 5;
    params.seed = 99;
    const EdgeList a = generate_uniform(params);
    const EdgeList b = generate_uniform(params);
    ASSERT_EQ(a.num_edges(), b.num_edges());
    for (std::size_t i = 0; i < a.num_edges(); ++i) ASSERT_EQ(a[i], b[i]);
}

TEST(UniformGen, DifferentSeedsDiffer) {
    UniformParams params;
    params.num_vertices = 200;
    params.degree = 5;
    params.seed = 1;
    const EdgeList a = generate_uniform(params);
    params.seed = 2;
    const EdgeList b = generate_uniform(params);
    int same = 0;
    for (std::size_t i = 0; i < a.num_edges(); ++i) same += (a[i] == b[i]);
    EXPECT_LT(same, 30);
}

TEST(UniformGen, NeighboursRoughlyUniform) {
    // Chi-square-ish sanity: destination counts over 10 buckets.
    UniformParams params;
    params.num_vertices = 10000;
    params.degree = 10;
    const EdgeList edges = generate_uniform(params);
    std::uint64_t buckets[10] = {};
    for (const Edge& e : edges) ++buckets[e.dst / 1000];
    for (const std::uint64_t c : buckets) {
        EXPECT_GT(c, 9000u);
        EXPECT_LT(c, 11000u);
    }
}

TEST(UniformGen, ThrowsOnSingleVertexWithDegree) {
    UniformParams params;
    params.num_vertices = 1;
    params.degree = 2;
    EXPECT_THROW(generate_uniform(params), std::invalid_argument);
}

TEST(UniformGen, EmptyGraph) {
    UniformParams params;
    params.num_vertices = 0;
    EXPECT_EQ(generate_uniform(params).num_edges(), 0u);
}

// ---------- R-MAT ----------

TEST(RmatGen, CountsAndRange) {
    RmatParams params;
    params.scale = 12;
    params.num_edges = 40000;
    const EdgeList edges = generate_rmat(params);
    EXPECT_EQ(edges.num_edges(), 40000u);
    EXPECT_EQ(edges.num_vertices(), 1u << 12);
    for (const Edge& e : edges) {
        ASSERT_LT(e.src, 1u << 12);
        ASSERT_LT(e.dst, 1u << 12);
    }
}

TEST(RmatGen, DeterministicPerSeed) {
    RmatParams params;
    params.scale = 10;
    params.num_edges = 5000;
    params.seed = 7;
    const EdgeList a = generate_rmat(params);
    const EdgeList b = generate_rmat(params);
    for (std::size_t i = 0; i < a.num_edges(); ++i) ASSERT_EQ(a[i], b[i]);
}

TEST(RmatGen, SkewedDegreeDistribution) {
    // The point of R-MAT: a heavy tail. Max degree must dwarf the mean
    // (a uniform graph of the same size has max within ~3x of mean).
    RmatParams params;
    params.scale = 14;
    params.num_edges = 1 << 17;  // mean arity 8
    const CsrGraph g = csr_from_edges(generate_rmat(params));
    const DegreeStats stats = compute_degree_stats(g);
    EXPECT_GT(static_cast<double>(stats.max_degree), 5.0 * stats.mean_degree);
    EXPECT_GT(stats.isolated_vertices, 0u);  // scale-free leaves orphans
}

TEST(RmatGen, RejectsBadProbabilities) {
    RmatParams params;
    params.a = 0.9;
    params.b = 0.9;  // sums to > 1
    params.c = 0.1;
    params.d = 0.1;
    EXPECT_THROW(generate_rmat(params), std::invalid_argument);
    RmatParams neg;
    neg.a = -0.1;
    neg.b = 0.5;
    neg.c = 0.3;
    neg.d = 0.3;
    EXPECT_THROW(generate_rmat(neg), std::invalid_argument);
}

TEST(RmatGen, RejectsHugeScale) {
    RmatParams params;
    params.scale = 32;
    EXPECT_THROW(generate_rmat(params), std::invalid_argument);
}

TEST(RmatGen, ZeroNoiseStillWorks) {
    RmatParams params;
    params.scale = 8;
    params.num_edges = 1000;
    params.noise = 0.0;
    const EdgeList edges = generate_rmat(params);
    EXPECT_EQ(edges.num_edges(), 1000u);
}

// ---------- grid ----------

TEST(GridGen, LatticeStructure) {
    GridParams params;
    params.width = 4;
    params.height = 3;
    const CsrGraph g = csr_from_edges(generate_grid(params));
    EXPECT_EQ(g.num_vertices(), 12u);
    // Undirected 4x3 grid: 3*3 horizontal + 4*2 vertical = 17 edges.
    EXPECT_EQ(g.num_edges(), 2u * 17);
    // Corner (0,0) has degree 2; centre (1,1) has degree 4.
    EXPECT_EQ(g.degree(0), 2u);
    EXPECT_EQ(g.degree(5), 4u);
    EXPECT_TRUE(g.has_edge(0, 1));
    EXPECT_TRUE(g.has_edge(0, 4));
    EXPECT_FALSE(g.has_edge(0, 5));
}

TEST(GridGen, DiagonalConnectivity) {
    GridParams params;
    params.width = 3;
    params.height = 3;
    params.diagonal = true;
    const CsrGraph g = csr_from_edges(generate_grid(params));
    EXPECT_TRUE(g.has_edge(0, 4));  // (0,0)-(1,1)
    EXPECT_TRUE(g.has_edge(2, 4));  // (2,0)-(1,1) anti-diagonal
    EXPECT_EQ(g.degree(4), 8u);     // centre of a 3x3 with diagonals
}

TEST(GridGen, TorusWrap) {
    GridParams params;
    params.width = 5;
    params.height = 4;
    params.wrap = true;
    const CsrGraph g = csr_from_edges(generate_grid(params));
    EXPECT_TRUE(g.has_edge(4, 0));   // row wrap
    EXPECT_TRUE(g.has_edge(15, 0));  // column wrap
    // Torus: every vertex has degree exactly 4.
    for (vertex_t v = 0; v < g.num_vertices(); ++v)
        ASSERT_EQ(g.degree(v), 4u) << "vertex " << v;
}

TEST(GridGen, EmptyAndDegenerate) {
    GridParams params;
    EXPECT_EQ(generate_grid(params).num_edges(), 0u);
    params.width = 1;
    params.height = 5;  // a path
    const CsrGraph g = csr_from_edges(generate_grid(params));
    EXPECT_EQ(g.num_edges(), 8u);  // 4 undirected edges
}

// ---------- SSCA#2 ----------

TEST(Ssca2Gen, DeterministicAndInRange) {
    Ssca2Params params;
    params.num_vertices = 2000;
    params.seed = 5;
    const EdgeList a = generate_ssca2(params);
    const EdgeList b = generate_ssca2(params);
    ASSERT_EQ(a.num_edges(), b.num_edges());
    EXPECT_GT(a.num_edges(), 0u);
    for (std::size_t i = 0; i < a.num_edges(); ++i) {
        ASSERT_EQ(a[i], b[i]);
        ASSERT_LT(a[i].src, 2000u);
        ASSERT_LT(a[i].dst, 2000u);
    }
}

TEST(Ssca2Gen, HasClusteredStructure) {
    Ssca2Params params;
    params.num_vertices = 5000;
    params.max_clique_size = 20;
    const CsrGraph g = csr_from_edges(generate_ssca2(params));
    // Cliques push the mean degree well above the inter-clique spray.
    const DegreeStats stats = compute_degree_stats(g);
    EXPECT_GT(stats.mean_degree, 4.0);
    EXPECT_EQ(stats.isolated_vertices, 0u);
}

// ---------- permutation ----------

TEST(Permute, ProducesValidPermutation) {
    UniformParams uparams;
    uparams.num_vertices = 300;
    uparams.degree = 4;
    EdgeList edges = generate_uniform(uparams);
    const auto perm = permute_vertices(edges, 123);

    ASSERT_EQ(perm.size(), 300u);
    std::vector<vertex_t> sorted = perm;
    std::sort(sorted.begin(), sorted.end());
    for (vertex_t i = 0; i < 300; ++i) ASSERT_EQ(sorted[i], i);
}

TEST(Permute, PreservesDegreeMultiset) {
    UniformParams uparams;
    uparams.num_vertices = 400;
    uparams.degree = 6;
    EdgeList original = generate_uniform(uparams);
    EdgeList shuffled = original;
    permute_vertices(shuffled, 77);

    const auto degree_multiset = [](const EdgeList& e) {
        std::map<vertex_t, int> out;
        for (const Edge& edge : e) ++out[edge.src];
        std::vector<int> degrees;
        for (const auto& [v, d] : out) degrees.push_back(d);
        std::sort(degrees.begin(), degrees.end());
        return degrees;
    };
    EXPECT_EQ(degree_multiset(original), degree_multiset(shuffled));
}

TEST(Permute, RelabelsConsistently) {
    EdgeList edges(4);
    edges.add(0, 1);
    edges.add(2, 3);
    EdgeList copy = edges;
    const auto perm = permute_vertices(copy, 9);
    EXPECT_EQ(copy[0].src, perm[0]);
    EXPECT_EQ(copy[0].dst, perm[1]);
    EXPECT_EQ(copy[1].src, perm[2]);
    EXPECT_EQ(copy[1].dst, perm[3]);
}

}  // namespace
}  // namespace sge
