#pragma once

#include <span>
#include <vector>

#include "graph/csr_graph.hpp"

namespace sge {

/// Vertex relabellings that trade generator-given ids for
/// locality-friendly ones — the data-layout lever behind the paper's
/// "innovative data layout that enhances memory locality": with hot
/// (high-degree, or co-visited) vertices packed into adjacent ids, the
/// bitmap and parent-array lines they share stay resident.
///
/// All permutations map old id -> new id.

/// Hubs first: new id 0 is the highest-degree vertex. Packs the R-MAT
/// heavy tail into a few cache lines of bitmap.
std::vector<vertex_t> degree_descending_order(const CsrGraph& g);

/// BFS visit order from `root` (unreached vertices keep relative order
/// after the reached ones). Neighbouring-by-distance vertices get
/// neighbouring ids — the RCM idea without the bandwidth refinement.
std::vector<vertex_t> bfs_visit_order(const CsrGraph& g, vertex_t root);

/// Rebuilds the graph under `perm` (must be a permutation of [0, n)).
/// Throws std::invalid_argument otherwise.
CsrGraph apply_vertex_permutation(const CsrGraph& g,
                                  std::span<const vertex_t> perm);

}  // namespace sge
