#include "analytics/label_propagation.hpp"

#include <numeric>
#include <unordered_map>

#include "runtime/prng.hpp"

namespace sge {

CommunityResult label_propagation(const CsrGraph& g,
                                  const LabelPropagationOptions& options) {
    const vertex_t n = g.num_vertices();
    CommunityResult result;
    result.community.resize(n);
    if (n == 0) {
        result.converged = true;
        return result;
    }

    // Labels start unique; the sweep order is a fixed random permutation
    // (asynchronous LP needs *some* order randomisation to avoid the
    // bipartite oscillation of the synchronous variant).
    std::vector<vertex_t> label(n);
    std::iota(label.begin(), label.end(), vertex_t{0});
    std::vector<vertex_t> order(n);
    std::iota(order.begin(), order.end(), vertex_t{0});
    Xoshiro256 rng(options.seed);
    for (vertex_t i = n; i > 1; --i)
        std::swap(order[i - 1], order[rng.next_below(i)]);

    std::unordered_map<vertex_t, std::uint32_t> votes;
    for (result.iterations = 0; result.iterations < options.max_iterations;
         ++result.iterations) {
        bool changed = false;
        for (const vertex_t v : order) {
            const auto adj = g.neighbors(v);
            if (adj.empty()) continue;
            votes.clear();
            for (const vertex_t w : adj) ++votes[label[w]];
            // Most frequent neighbour label; ties -> smallest label, so
            // the result is deterministic.
            vertex_t best = label[v];
            std::uint32_t best_count = 0;
            for (const auto& [lab, count] : votes) {
                if (count > best_count ||
                    (count == best_count && lab < best)) {
                    best = lab;
                    best_count = count;
                }
            }
            if (best != label[v]) {
                label[v] = best;
                changed = true;
            }
        }
        if (!changed) {
            result.converged = true;
            ++result.iterations;
            break;
        }
    }

    // Densify label ids.
    std::unordered_map<vertex_t, std::uint32_t> dense;
    for (vertex_t v = 0; v < n; ++v) {
        const auto [it, inserted] =
            dense.try_emplace(label[v], static_cast<std::uint32_t>(dense.size()));
        result.community[v] = it->second;
    }
    result.num_communities = static_cast<std::uint32_t>(dense.size());
    return result;
}

}  // namespace sge
