#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "concurrency/channel.hpp"
#include "runtime/affinity.hpp"
#include "runtime/cache_info.hpp"

namespace sge {
namespace {

// ---------- affinity ----------

TEST(Affinity, PinToCpuZeroSucceedsOnLinux) {
#ifdef __linux__
    // CPU 0 always exists; inside restrictive cpusets the call may
    // legitimately fail, so accept either but require no crash and a
    // sane current_cpu afterwards.
    const bool pinned = pin_current_thread(0);
    if (pinned) {
        EXPECT_EQ(current_cpu(), 0);
    }
#endif
    EXPECT_GE(current_cpu(), -1);
}

TEST(Affinity, NegativeCpuIsNoOp) {
    EXPECT_FALSE(pin_current_thread(-1));
    EXPECT_FALSE(pin_current_thread(-42));
}

TEST(Affinity, BogusCpuFailsGracefully) {
    // A CPU id far beyond anything plausible: must return false, not
    // crash or partially apply.
    EXPECT_FALSE(pin_current_thread(1 << 20));
}

TEST(Affinity, PinningFromWorkerThread) {
    std::atomic<bool> ok{true};
    std::thread worker([&] {
        pin_current_thread(0);  // result irrelevant; must not interfere
        if (current_cpu() < -1) ok.store(false);
    });
    worker.join();
    EXPECT_TRUE(ok.load());
}

// ---------- cache detection ----------

TEST(CacheInfo, DetectReturnsConsistentLevels) {
    const auto caches = detect_caches(0);
    // Containers may hide sysfs entirely; when present, entries must be
    // sane and sorted by level.
    for (std::size_t i = 0; i < caches.size(); ++i) {
        EXPECT_GE(caches[i].level, 1);
        EXPECT_GT(caches[i].size_bytes, 0u);
        if (i > 0) {
            EXPECT_LE(caches[i - 1].level, caches[i].level);
        }
    }
}

TEST(CacheInfo, DescribeHandlesEmptyAndPopulated) {
    EXPECT_EQ(describe_caches({}), "unknown");
    std::vector<CacheLevel> fake;
    fake.push_back({1, "Data", 32 * 1024, 64});
    fake.push_back({3, "Unified", 24 * 1024 * 1024, 64});
    const std::string s = describe_caches(fake);
    EXPECT_NE(s.find("L1 Data 32 KB"), std::string::npos) << s;
    EXPECT_NE(s.find("L3 Unified 24 MB"), std::string::npos) << s;
}

TEST(CacheInfo, BogusCpuYieldsEmpty) {
    EXPECT_TRUE(detect_caches(1 << 20).empty());
}

// ---------- channel under hostile sizing + real concurrency ----------

TEST(ChannelStress, TinyRingConcurrentProducersAndConsumers) {
    // Ring of 2 entries: effectively all traffic rides the spill path
    // while producers and consumers overlap in time.
    Channel<std::uint64_t, ~0ULL> channel(2);
    constexpr int kProducers = 3;
    constexpr int kConsumers = 2;
    constexpr std::uint64_t kPerProducer = 30000;

    std::atomic<std::uint64_t> produced{0};
    std::atomic<std::uint64_t> consumed{0};
    std::atomic<bool> done_producing{false};
    std::atomic<std::uint64_t> checksum_in{0};
    std::atomic<std::uint64_t> checksum_out{0};

    std::vector<std::thread> threads;
    for (int p = 0; p < kProducers; ++p) {
        threads.emplace_back([&, p] {
            std::uint64_t local_sum = 0;
            std::uint64_t batch[5];
            std::size_t fill = 0;
            for (std::uint64_t i = 0; i < kPerProducer; ++i) {
                const std::uint64_t value =
                    (static_cast<std::uint64_t>(p) << 32) | i;
                batch[fill++] = value;
                local_sum += value;
                if (fill == 5) {
                    channel.push_batch(batch, fill);
                    fill = 0;
                }
            }
            if (fill) channel.push_batch(batch, fill);
            checksum_in.fetch_add(local_sum);
            produced.fetch_add(kPerProducer);
        });
    }
    for (int c = 0; c < kConsumers; ++c) {
        threads.emplace_back([&] {
            std::uint64_t buf[7];
            std::uint64_t local_sum = 0;
            std::uint64_t local_count = 0;
            for (;;) {
                std::size_t got = channel.pop_batch(buf, 7);
                if (got == 0) {
                    if (!done_producing.load()) {
                        std::this_thread::yield();
                        continue;
                    }
                    // One post-flag probe: anything pushed before the
                    // flag became visible is reachable now.
                    got = channel.pop_batch(buf, 7);
                    if (got == 0) break;
                }
                for (std::size_t i = 0; i < got; ++i) local_sum += buf[i];
                local_count += got;
            }
            checksum_out.fetch_add(local_sum);
            consumed.fetch_add(local_count);
        });
    }

    // Producers are the first kProducers threads.
    for (int p = 0; p < kProducers; ++p) threads[static_cast<std::size_t>(p)].join();
    done_producing.store(true);
    for (std::size_t t = kProducers; t < threads.size(); ++t) threads[t].join();

    // Final single-threaded drain catches anything the consumers'
    // termination race left behind.
    std::uint64_t buf[64];
    for (;;) {
        const std::size_t got = channel.pop_batch(buf, 64);
        if (got == 0) break;
        for (std::size_t i = 0; i < got; ++i)
            checksum_out.fetch_add(buf[i]);
        consumed.fetch_add(got);
    }

    EXPECT_EQ(consumed.load(), produced.load());
    EXPECT_EQ(checksum_out.load(), checksum_in.load());
}

}  // namespace
}  // namespace sge
