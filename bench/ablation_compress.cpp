// Ablation bench: CSR backend (BfsOptions::backend).
//
// The experiment behind docs/PERF_MODEL.md "Bytes vs ALU": on an
// emulated 2-socket machine, sweep plain / compressed over the bitmap
// and hybrid engines on the paper's uniform and R-MAT workloads, and
// report
//
//   * the processing rate (the paper's metric),
//   * the representation cost: memory bytes, bits per edge, and the
//     compression ratio against the plain 4 B/edge targets array,
//   * the decode counters: bytes_decoded (exact) and decode_ns (a
//     sampled estimate; see docs/OBSERVABILITY.md),
//   * a correctness gate: both backends must produce identical level
//     arrays on every cell (the bench exits non-zero otherwise).
//
// A deterministic micro-measurement section prices the codec — decode
// cost per edge and the effective decode throughput — and derives the
// modeled crossover bandwidth quoted in docs/PERF_MODEL.md: the DRAM
// bandwidth above which trading varint ALU for stream bytes wins.
//
// With SGE_BENCH_JSON set the same cells land in
// BENCH_ablation_compress.json (backend encoded 0=plain, 1=compressed);
// CI feeds that to check_bench_json.py --compare to keep the compressed
// backend from regressing against plain.

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "graph/csr_compressed.hpp"
#include "report.hpp"
#include "runtime/timer.hpp"

namespace {

using namespace sge;
using namespace sge::bench;

constexpr int kThreads = 8;
constexpr int kRuns = 3;

int backend_code(GraphBackend b) {
    return b == GraphBackend::kCompressed ? 1 : 0;
}

struct Cell {
    double rate = 0.0;            // best edges/second over timed runs
    double bytes_decoded = 0.0;   // summed over levels, from the best run
    double decode_ns = 0.0;       // sampled estimate, same run
    std::vector<level_t> levels;  // for the cross-backend identity gate
};

vertex_t fixed_root(const CsrGraph& g) {
    // Fixed root: the identity gate compares level arrays across
    // backends, so every cell must traverse from the same source.
    vertex_t root = 0;
    while (root + 1 < g.num_vertices() && g.degree(root) == 0) ++root;
    return root;
}

template <class Graph>
Cell measure(const Graph& g, vertex_t root, BfsEngine engine,
             const Topology& topo) {
    BfsOptions options;
    options.engine = engine;
    options.threads = kThreads;
    options.topology = topo;
    options.collect_stats = obs::enabled();
    BfsRunner runner(options);

    (void)runner.run(g, root);  // warmup: page in the arrays
    Cell cell;
    for (int i = 0; i < kRuns; ++i) {
        const BfsResult r = runner.run(g, root);
        if (r.edges_per_second() > cell.rate) {
            cell.rate = r.edges_per_second();
            double bytes = 0.0;
            double ns = 0.0;
            for (const BfsLevelStats& s : r.level_stats) {
                bytes += static_cast<double>(s.bytes_decoded);
                ns += static_cast<double>(s.decode_ns);
            }
            cell.bytes_decoded = bytes;
            cell.decode_ns = ns;
        }
        if (i == 0) cell.levels = r.level;
    }
    return cell;
}

bool sweep(const char* workload, const CsrGraph& g,
           const CompressedCsrGraph& zg, const Topology& topo,
           BenchReport& report) {
    const double plain_bpe =
        8.0 * static_cast<double>(g.memory_bytes()) /
        static_cast<double>(g.num_edges());
    std::printf("\nworkload: %s (%u vertices, %llu arcs; %.1f -> %.1f "
                "bits/edge, %.2fx)\n",
                workload, g.num_vertices(),
                static_cast<unsigned long long>(g.num_edges()), plain_bpe,
                zg.bits_per_edge(),
                static_cast<double>(g.memory_bytes()) /
                    static_cast<double>(zg.memory_bytes()));

    const std::pair<BfsEngine, const char*> engines[] = {
        {BfsEngine::kBitmap, "bitmap"},
        {BfsEngine::kHybrid, "hybrid"},
    };
    const vertex_t root = fixed_root(g);

    bool ok = true;
    for (const auto& [engine, engine_name] : engines) {
        Table table({"backend", "rate", "vs plain", "bits/edge",
                     "decoded MB", "decode ms"});
        const Cell plain = measure(g, root, engine, topo);
        const Cell comp = measure(zg, root, engine, topo);
        if (comp.levels != plain.levels) {
            // The backend must be invisible in the output: identical
            // level arrays (parents may differ — any BFS tree wins
            // races differently — but distances never do).
            std::fprintf(stderr,
                         "FAIL: %s/%s level arrays differ between plain "
                         "and compressed backends\n",
                         engine_name, workload);
            ok = false;
        }
        table.add_row({"plain", fmt("%.1f ME/s", plain.rate / 1e6), "-",
                       fmt("%.1f", plain_bpe), "-", "-"});
        table.add_row(
            {"compressed", fmt("%.1f ME/s", comp.rate / 1e6),
             fmt("%+.0f%%", 100.0 * (comp.rate / plain.rate - 1.0)),
             fmt("%.1f", zg.bits_per_edge()),
             fmt("%.1f", comp.bytes_decoded / 1e6),
             fmt("%.2f", comp.decode_ns / 1e6)});

        report.add(std::string(engine_name) + "_" + workload,
                   {{"threads", kThreads},
                    {"backend", backend_code(GraphBackend::kPlain)}},
                   {{"edges_per_second", plain.rate},
                    {"bits_per_edge", plain_bpe},
                    {"bytes_decoded", plain.bytes_decoded},
                    {"decode_ns", plain.decode_ns}});
        report.add(std::string(engine_name) + "_" + workload,
                   {{"threads", kThreads},
                    {"backend", backend_code(GraphBackend::kCompressed)}},
                   {{"edges_per_second", comp.rate},
                    {"bits_per_edge", zg.bits_per_edge()},
                    {"bytes_decoded", comp.bytes_decoded},
                    {"decode_ns", comp.decode_ns}});
        std::printf("engine: %s\n", engine_name);
        table.print();
    }
    return ok;
}

// ---------------------------------------------------------------------
// Codec costs and the modeled crossover (docs/PERF_MODEL.md).
//
//   T_plain(e)      ~= bytes_plain / B        stream 4 B per edge
//   T_compressed(e) ~= bytes_comp / B + c_dec stream fewer bytes + decode
//
// Crossover: B* = (bytes_plain - bytes_comp) / c_dec. Above B* the
// adjacency stream outruns the varint ALU, and decoding fewer bytes is
// a net win; below it the decoder is the bottleneck. Measured here so
// the numbers in the docs regenerate with the bench.
// ---------------------------------------------------------------------

void cost_model(const CsrGraph& g, const CompressedCsrGraph& zg,
                BenchReport& report) {
    // c_dec: single-thread full-graph decode, neighbours consumed into a
    // checksum so the loop cannot be elided.
    const vertex_t n = zg.num_vertices();
    std::uint64_t checksum = 0;
    std::size_t bytes = 0;
    WallTimer timer;
    for (vertex_t v = 0; v < n; ++v)
        bytes += zg.neighbors_for_each(v, [&](vertex_t w) { checksum += w; });
    const double seconds = timer.seconds() + (checksum == 1 ? 1e-12 : 0.0);
    const double edges = static_cast<double>(zg.num_edges());
    const double c_dec_ns = seconds * 1e9 / edges;
    const double decode_gbps =
        static_cast<double>(bytes) / seconds / 1e9;

    const double blob_bytes_per_edge = static_cast<double>(bytes) / edges;
    const double plain_bytes_per_edge = static_cast<double>(sizeof(vertex_t));
    const double saved = plain_bytes_per_edge - blob_bytes_per_edge;
    // Crossover bandwidth in GB/s; 0 encodes "never wins" (the encoding
    // saved nothing — schema forbids negative metrics).
    const double crossover_gbps =
        saved > 0.0 ? saved / c_dec_ns : 0.0;

    std::printf("\ncodec costs (single thread, R-MAT workload):\n");
    Table table({"quantity", "value"});
    table.add_row({"decode cost per edge (c_dec)", fmt("%.2f ns", c_dec_ns)});
    table.add_row({"decode throughput", fmt("%.2f GB/s of blob", decode_gbps)});
    table.add_row({"adjacency bytes/edge, plain", fmt("%.1f", plain_bytes_per_edge)});
    table.add_row({"adjacency bytes/edge, compressed", fmt("%.2f", blob_bytes_per_edge)});
    table.add_row({"crossover bandwidth B*",
                   crossover_gbps > 0.0
                       ? fmt("%.1f GB/s", crossover_gbps)
                       : "none (no bytes saved)"});
    table.print();
    std::printf("above B* the varint decode is cheaper than streaming the "
                "extra plain bytes\n");

    report.add("cost_model", {{"threads", 1}},
               {{"decode_ns_per_edge", c_dec_ns},
                {"decode_gbps", decode_gbps},
                {"blob_bytes_per_edge", blob_bytes_per_edge},
                {"plain_bytes_per_edge", plain_bytes_per_edge},
                {"crossover_gbps", crossover_gbps}});
    (void)g;
}

}  // namespace

int main() {
    banner("Ablation: CSR backend (plain / compressed)",
           "delta+varint adjacency, docs/PERF_MODEL.md");

    // Two emulated sockets, 8 workers: the same shape as the other
    // ablations, so rates are comparable across reports.
    const Topology topo = Topology::emulate(2, 2, 2);
    std::printf("topology: %s, %d threads, %d timed runs per cell\n",
                topo.describe().c_str(), kThreads, kRuns);
    if (!obs::enabled() || !obs::compiled_in())
        std::printf("note: decoded-bytes/decode-ms columns need an SGE_OBS "
                    "build with SGE_OBS != 0\n");

    BenchReport report("ablation_compress", "compressed-backend ablation");
    report.set_topology(topo.describe());

    const std::uint64_t n = scaled(1 << 14);
    // Uniform: incompressible-ish gaps (mean gap n/d). R-MAT at arity
    // 16: the heavy tail clusters low vertex ids, so sorted gaps are
    // short and the varint blob shrinks hardest — label-shuffled here,
    // matching the other benches' workload.
    const CsrGraph uniform = uniform_graph(n, 8 * n);
    const CsrGraph rmat = rmat_graph(n, 16 * n);
    const CompressedCsrGraph zuniform = csr_compress(uniform);
    const CompressedCsrGraph zrmat = csr_compress(rmat);
    report.set_workload("uniform+rmat", n);

    // Natural-order R-MAT (no label shuffle): the generator's id
    // locality survives, the best case for delta coding — the <= 16
    // bits/edge configuration quoted in docs/ALGORITHMS.md.
    RmatParams natural;
    natural.scale = 0;
    while ((1ULL << natural.scale) < n) ++natural.scale;
    natural.num_edges = 16 * n;
    natural.seed = 1;
    const CsrGraph rmat_nat = csr_from_edges(generate_rmat(natural));
    const CompressedCsrGraph zrmat_nat = csr_compress(rmat_nat);

    std::printf("\ncompression (plain counts offsets+targets, compressed "
                "counts offsets+degrees+blob):\n");
    Table sizes({"workload", "plain", "compressed", "ratio", "bits/edge"});
    const std::pair<const char*, std::pair<const CsrGraph*,
                                           const CompressedCsrGraph*>>
        rows[] = {{"uniform", {&uniform, &zuniform}},
                  {"rmat (shuffled)", {&rmat, &zrmat}},
                  {"rmat (natural)", {&rmat_nat, &zrmat_nat}}};
    for (const auto& [name, pair] : rows) {
        const auto& [pg, zg] = pair;
        sizes.add_row({name, fmt_bytes(pg->memory_bytes()),
                       fmt_bytes(zg->memory_bytes()),
                       fmt("%.2fx", static_cast<double>(pg->memory_bytes()) /
                                        static_cast<double>(zg->memory_bytes())),
                       fmt("%.1f", zg->bits_per_edge())});
        report.add(std::string("compression_") +
                       (zg == &zrmat_nat ? "rmat_natural"
                        : zg == &zrmat   ? "rmat"
                                         : "uniform"),
                   {{"backend", 1}},
                   {{"memory_bytes",
                     static_cast<double>(zg->memory_bytes())},
                    {"bits_per_edge", zg->bits_per_edge()}});
    }
    sizes.print();

    bool ok = sweep("uniform", uniform, zuniform, topo, report);
    ok = sweep("rmat", rmat, zrmat, topo, report) && ok;
    cost_model(rmat, zrmat, report);

    report.write();
    return ok ? 0 : 1;
}
