// Randomized property tests: hundreds of generated cases per suite,
// each checked against a reference model or the serial oracle. Seeds
// are the parameter, so failures reproduce exactly.

#include <gtest/gtest.h>

#include <deque>
#include <vector>

#include "concurrency/channel.hpp"
#include "concurrency/spsc_ring.hpp"
#include "core/bfs.hpp"
#include "core/validate.hpp"
#include "gen/rmat.hpp"
#include "gen/small_world.hpp"
#include "gen/uniform.hpp"
#include "graph/builder.hpp"
#include "runtime/prng.hpp"
#include "test_util.hpp"

namespace sge {
namespace {

// ---------------------------------------------------------------------
// Builder fuzz: arbitrary edge lists, arbitrary build flags.
// ---------------------------------------------------------------------

class BuilderFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BuilderFuzz, CsrInvariantsHoldForArbitraryInput) {
    Xoshiro256 rng(GetParam());
    const auto n = static_cast<vertex_t>(1 + rng.next_below(2000));
    const std::size_t m = rng.next_below(5 * static_cast<std::uint64_t>(n));

    EdgeList edges(n);
    for (std::size_t e = 0; e < m; ++e)
        edges.add(static_cast<vertex_t>(rng.next_below(n)),
                  static_cast<vertex_t>(rng.next_below(n)));

    BuildOptions opts;
    opts.make_undirected = rng.next() & 1;
    opts.remove_self_loops = rng.next() & 1;
    opts.deduplicate = rng.next() & 1;
    opts.sort_neighbors = opts.deduplicate || (rng.next() & 1);

    const CsrGraph g = csr_from_edges(edges, opts);
    ASSERT_TRUE(g.well_formed());
    ASSERT_EQ(g.num_vertices(), n);

    if (opts.sort_neighbors) {
        for (vertex_t v = 0; v < n; ++v) {
            const auto adj = g.neighbors(v);
            ASSERT_TRUE(std::is_sorted(adj.begin(), adj.end())) << "vertex " << v;
        }
    }
    if (opts.deduplicate) {
        for (vertex_t v = 0; v < n; ++v) {
            const auto adj = g.neighbors(v);
            ASSERT_TRUE(std::adjacent_find(adj.begin(), adj.end()) == adj.end())
                << "duplicate neighbour at vertex " << v;
        }
    }
    if (opts.remove_self_loops) {
        for (vertex_t v = 0; v < n; ++v) ASSERT_FALSE(g.has_edge(v, v));
    }
    if (opts.make_undirected && opts.deduplicate) {
        for (vertex_t v = 0; v < n; ++v)
            for (const vertex_t w : g.neighbors(v))
                ASSERT_TRUE(g.has_edge(w, v)) << v << "-" << w;
    }
    if (!opts.make_undirected && !opts.deduplicate) {
        // Arc count is exact: input arcs minus removed self-loops.
        std::size_t expect = 0;
        for (const Edge& e : edges)
            expect += !(opts.remove_self_loops && e.src == e.dst);
        ASSERT_EQ(g.num_edges(), expect);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BuilderFuzz, ::testing::Range<std::uint64_t>(1, 33));

// ---------------------------------------------------------------------
// Engine fuzz: random graph family x random engine config vs the
// serial oracle.
// ---------------------------------------------------------------------

class EngineFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EngineFuzz, AllEnginesMatchSerialOnRandomWorkloads) {
    Xoshiro256 rng(GetParam() * 7919);

    // Random workload.
    CsrGraph g;
    switch (rng.next_below(3)) {
        case 0: {
            UniformParams params;
            params.num_vertices = static_cast<vertex_t>(2 + rng.next_below(3000));
            params.degree = static_cast<std::uint32_t>(1 + rng.next_below(12));
            params.seed = rng.next();
            g = csr_from_edges(generate_uniform(params));
            break;
        }
        case 1: {
            RmatParams params;
            params.scale = static_cast<std::uint32_t>(6 + rng.next_below(6));
            params.num_edges = (2 + rng.next_below(14)) << params.scale;
            params.seed = rng.next();
            g = csr_from_edges(generate_rmat(params));
            break;
        }
        default: {
            SmallWorldParams params;
            params.num_vertices = static_cast<vertex_t>(16 + rng.next_below(3000));
            params.mean_degree = static_cast<std::uint32_t>(
                2 + rng.next_below(6));
            params.rewire_probability = rng.next_double();
            params.seed = rng.next();
            g = csr_from_edges(generate_small_world(params));
            break;
        }
    }
    const auto root = static_cast<vertex_t>(rng.next_below(g.num_vertices()));

    BfsOptions serial;
    serial.engine = BfsEngine::kSerial;
    const BfsResult expected = bfs(g, root, serial);

    // Random engine configuration.
    BfsOptions opts;
    const BfsEngine engines[] = {BfsEngine::kNaive, BfsEngine::kBitmap,
                                 BfsEngine::kMultiSocket, BfsEngine::kHybrid};
    opts.engine = engines[rng.next_below(4)];
    const int sockets = static_cast<int>(1 + rng.next_below(4));
    const int cores = static_cast<int>(1 + rng.next_below(4));
    opts.topology = Topology::emulate(sockets, cores, 1);
    opts.threads = static_cast<int>(1 + rng.next_below(
        static_cast<std::uint64_t>(sockets) * cores));
    opts.batch_size = 1 + rng.next_below(128);
    opts.chunk_size = 1 + rng.next_below(256);
    opts.channel_capacity = 2 + rng.next_below(512);
    opts.bitmap_double_check = rng.next() & 1;
    opts.remote_sender_filter = rng.next() & 1;

    const BfsResult actual = bfs(g, root, opts);
    test::expect_equivalent(expected, actual);
    const ValidationReport report = validate_bfs_tree(g, root, actual);
    ASSERT_TRUE(report.ok) << to_string(opts.engine) << " t=" << opts.threads
                           << ": " << report.error;
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineFuzz, ::testing::Range<std::uint64_t>(1, 41));

// ---------------------------------------------------------------------
// Channel fuzz: random push/pop sequences vs a deque model.
// ---------------------------------------------------------------------

class ChannelFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChannelFuzz, DeliversEveryItemExactlyOnceUnderRandomBatches) {
    // The channel's contract is *set* delivery (see channel.hpp: global
    // FIFO is not guaranteed once the spill engages), so the model is a
    // pending-multiset, not a queue. Values are unique, so a plain set
    // of outstanding items suffices.
    Xoshiro256 rng(GetParam() * 104729);
    Channel<std::uint64_t, ~0ULL> channel(1 + rng.next_below(64));
    std::vector<bool> outstanding;  // outstanding[value]
    std::size_t outstanding_count = 0;

    std::uint64_t next_value = 0;
    std::vector<std::uint64_t> buf(256);
    const auto consume = [&](std::size_t got) {
        for (std::size_t i = 0; i < got; ++i) {
            ASSERT_LT(buf[i], next_value) << "value never pushed";
            ASSERT_TRUE(outstanding[buf[i]]) << "duplicate delivery";
            outstanding[buf[i]] = false;
            --outstanding_count;
        }
    };

    for (int step = 0; step < 2000; ++step) {
        if (rng.next() & 1) {
            const std::size_t count = 1 + rng.next_below(64);
            for (std::size_t i = 0; i < count; ++i) {
                buf[i] = next_value++;
                outstanding.push_back(true);
                ++outstanding_count;
            }
            channel.push_batch(buf.data(), count);
        } else {
            const std::size_t want = 1 + rng.next_below(64);
            const std::size_t got = channel.pop_batch(buf.data(), want);
            ASSERT_LE(got, want);
            // Single-threaded: empty result means genuinely drained.
            if (got == 0) {
                ASSERT_EQ(outstanding_count, 0u);
            }
            consume(got);
        }
    }
    for (;;) {
        const std::size_t got = channel.pop_batch(buf.data(), buf.size());
        if (got == 0) break;
        consume(got);
    }
    ASSERT_EQ(outstanding_count, 0u);
    ASSERT_EQ(channel.pushed(), channel.popped());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChannelFuzz, ::testing::Range<std::uint64_t>(1, 17));

// ---------------------------------------------------------------------
// SPSC ring fuzz: random interleavings vs a deque model.
// ---------------------------------------------------------------------

class SpscFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SpscFuzz, MatchesQueueModel) {
    Xoshiro256 rng(GetParam() * 31337);
    SpscRing<std::uint64_t, ~0ULL> ring(1 + rng.next_below(32));
    std::deque<std::uint64_t> model;

    std::uint64_t next_value = 0;
    for (int step = 0; step < 5000; ++step) {
        if (rng.next() & 1) {
            const bool pushed = ring.try_push(next_value);
            if (pushed) {
                model.push_back(next_value);
                ++next_value;
            } else {
                ASSERT_EQ(model.size(), ring.capacity()) << "spurious full";
            }
        } else {
            const auto popped = ring.try_pop();
            if (popped) {
                ASSERT_FALSE(model.empty());
                ASSERT_EQ(*popped, model.front());
                model.pop_front();
            } else {
                ASSERT_TRUE(model.empty()) << "spurious empty";
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpscFuzz, ::testing::Range<std::uint64_t>(1, 17));

}  // namespace
}  // namespace sge
