#!/usr/bin/env python3
"""Validate BENCH_*.json reports emitted by the fig* drivers.

Usage:
    python3 bench/check_bench_json.py FILE_OR_DIR [...]
        [--compare BASELINE.json_or_dir] [--tolerance 0.15]

For each file (or every BENCH_*.json under each directory) the script
checks the sge.bench schema: required top-level fields and their types,
series entry shape (string name, integer params, numeric metrics), and a
few semantic invariants (edges_per_second > 0 on rate series; per-level
counter sanity on Figure 4-style level series). Exits non-zero and
prints one line per violation when anything fails — made for CI.

Regression guard (--compare): every (bench, name, params) rate cell
present in both the checked files and the baseline must satisfy
current >= baseline * (1 - tolerance). Independently of the baseline,
any file whose series carry a "policy" param (the scheduling ablation:
0=static, 1=edge_weighted, 2=stealing) must show edge_weighted no
slower than static by more than the tolerance on each matching cell —
the default schedule may never regress the pre-scheduler behaviour.
Likewise any file whose series carry a "reuse" param (bench_throughput:
0=one-shot bfs(), 1=reused runner + workspace) must show the reused
queries_per_second no lower than one-shot by more than the tolerance on
each matching cell — workspace reuse may never cost throughput.
Likewise any file whose series carry a "frontier_gen" param (the
frontier-generation ablation: 0=atomic, 1=compact) must show compact no
slower than atomic by more than 2x the tolerance on each matching cell
— the widened band absorbs the extra per-level barrier that a
time-shared single-core CI host bills at (threads-1) x level wall,
which real hardware does not (docs/PERF_MODEL.md).
Likewise any file whose series carry a "backend" param (the compressed-
backend ablation: 0=plain CSR, 1=delta+varint): on the hybrid engine's
R-MAT cells — the bottom-up, bandwidth-bound configuration the backend
targets — compressed must not fall more than 2x the tolerance below
plain. And any backend=1 series whose name mentions rmat must report
bits_per_edge < 32: the compressed representation beating the plain
4 B/edge targets array on a skewed graph is the point of the encoding.
Likewise any file whose series carry a "paged" param (the semi-external
paged-backend ablation) must show the warm paged rate at >= 0.85x the
in-memory rate on the hybrid R-MAT cell, and any "prefetch" param pair
(cold cells: 0=demand faulting, 1=frontier-ahead prefetch) must show
prefetch-on no slower than prefetch-off by more than 2x the tolerance
and — when the off side records a meaningful cold signal — no more
major faults than prefetch-off: absorbing cold-start IO is the
prefetcher's job. Any series reporting both prefetch_hits and
prefetch_issued must satisfy hits <= issued.
Comparing a file against itself exercises only these intra-file guards.
Independently of any baseline, a series whose params carry "faults"=0
(bench_service clean runs) must report zero "degraded" and zero "shed"
requests — degradation and shedding are fault responses, never
steady-state behaviour. Likewise a series whose params carry
"deletes"=0 (bench_live insert-only ingest) must report zero
"rebuilds" — insert-only traffic repairs tracked levels incrementally —
and any series with "delta_edges" > 0 must have "snapshots_published"
> 0, since an unpublished delta is invisible to every reader.

The schema itself is documented in docs/OBSERVABILITY.md.
"""

import json
import pathlib
import sys

REQUIRED_TOP = {
    "schema": str,
    "schema_version": int,
    "bench": str,
    "figure": str,
    "unix_time": int,
    "scale_shift": int,
    "obs_compiled_in": bool,
    "series": list,
}


def fail(errors, path, message):
    errors.append(f"{path}: {message}")


def check_entry(errors, path, i, entry):
    where = f"series[{i}]"
    if not isinstance(entry, dict):
        fail(errors, path, f"{where} is not an object")
        return
    name = entry.get("name")
    if not isinstance(name, str) or not name:
        fail(errors, path, f"{where}.name missing or not a string")
        return
    params = entry.get("params")
    if not isinstance(params, dict):
        fail(errors, path, f"{where}.params missing or not an object")
        return
    for k, v in params.items():
        if not isinstance(v, int) or isinstance(v, bool):
            fail(errors, path, f"{where}.params.{k} is not an integer: {v!r}")
    metrics = entry.get("metrics")
    if not isinstance(metrics, dict) or not metrics:
        fail(errors, path, f"{where}.metrics missing or empty")
        return
    for k, v in metrics.items():
        if isinstance(v, bool) or not isinstance(v, (int, float)):
            fail(errors, path, f"{where}.metrics.{k} is not a number: {v!r}")
        elif v < 0:
            fail(errors, path, f"{where}.metrics.{k} is negative: {v!r}")

    # Semantic spot checks per series flavour.
    if params.get("deletes") == 0 and metrics.get("rebuilds"):
        # Insert-only ingest (bench_live) repairs tracked levels through
        # incremental waves; a rebuild there means the repair path was
        # bypassed.
        fail(errors, path,
             f"{where} ({name}): rebuilds={metrics['rebuilds']!r} in a "
             f"deletes=0 series (insert-only ingest must repair, not rebuild)")
    if metrics.get("delta_edges") and not metrics.get("snapshots_published"):
        # Edges changed but no snapshot was published: readers could
        # never observe the delta.
        fail(errors, path,
             f"{where} ({name}): delta_edges={metrics['delta_edges']!r} "
             f"with snapshots_published=0")
    if "staleness_p50" in metrics and "staleness_max" in metrics:
        if metrics["staleness_p50"] > metrics["staleness_max"]:
            fail(errors, path,
                 f"{where} ({name}): staleness_p50 > staleness_max")
    if params.get("faults") == 0:
        # A fault-free service run must not degrade or shed: both are
        # fault responses, never steady-state behaviour (bench_service).
        for forbidden in ("degraded", "shed"):
            if metrics.get(forbidden):
                fail(errors, path,
                     f"{where} ({name}): {forbidden}={metrics[forbidden]!r} "
                     f"in a faults=0 series (must be 0)")
    eps = metrics.get("edges_per_second")
    if eps is not None and not eps > 0:
        fail(errors, path, f"{where} ({name}): edges_per_second not positive")
    if params.get("backend") == 1 and "rmat" in name:
        # The compressed backend exists to beat plain CSR's 4 B/edge on
        # skewed graphs; >= 32 bits/edge there means the encoder broke.
        bpe = metrics.get("bits_per_edge")
        if bpe is not None and not bpe < 32:
            fail(errors, path,
                 f"{where} ({name}): compressed bits_per_edge={bpe!r} "
                 f"not below the plain backend's 32")
    if "prefetch_hits" in metrics and "prefetch_issued" in metrics:
        # Hits are the already-resident subset of issued pages
        # (ablation_paged): more hits than issues means the paged
        # backend's accounting broke.
        if metrics["prefetch_hits"] > metrics["prefetch_issued"]:
            fail(errors, path,
                 f"{where} ({name}): prefetch_hits > prefetch_issued")
    if "bitmap_checks" in metrics and "atomic_ops" in metrics:
        if metrics["atomic_ops"] > metrics["bitmap_checks"]:
            fail(errors, path,
                 f"{where} ({name}): atomic_ops > bitmap_checks")
    if "atomic_wins" in metrics and "atomic_ops" in metrics:
        if metrics["atomic_ops"] and metrics["atomic_wins"] > metrics["atomic_ops"]:
            fail(errors, path,
                 f"{where} ({name}): atomic_wins > atomic_ops")


def check_file(errors, path):
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        fail(errors, path, f"unreadable or invalid JSON: {exc}")
        return

    if not isinstance(doc, dict):
        fail(errors, path, "top level is not an object")
        return
    for key, kind in REQUIRED_TOP.items():
        value = doc.get(key)
        if value is None:
            fail(errors, path, f"missing required field '{key}'")
        elif kind is int and isinstance(value, bool):
            fail(errors, path, f"field '{key}' is a bool, expected {kind.__name__}")
        elif not isinstance(value, kind):
            fail(errors, path, f"field '{key}' is not a {kind.__name__}")
    if errors:
        return
    if doc["schema"] != "sge.bench":
        fail(errors, path, f"schema is {doc['schema']!r}, expected 'sge.bench'")
    if doc["schema_version"] != 1:
        fail(errors, path, f"unsupported schema_version {doc['schema_version']}")
    expected_name = f"BENCH_{doc['bench']}.json"
    if pathlib.Path(path).name != expected_name:
        fail(errors, path, f"file name does not match bench slug "
                           f"(expected {expected_name})")
    workload = doc.get("workload")
    if workload is not None:
        if not isinstance(workload, dict) or \
                not isinstance(workload.get("family"), str) or \
                not isinstance(workload.get("base_vertices"), int):
            fail(errors, path, "workload must be {family: str, base_vertices: int}")
    if not doc["series"]:
        fail(errors, path, "series is empty (driver added no entries)")
    for i, entry in enumerate(doc["series"]):
        check_entry(errors, path, i, entry)


def rate_cells(paths, metric="edges_per_second"):
    """(bench, name, frozen params) -> `metric`, over all files."""
    cells = {}
    for path in paths:
        try:
            with open(path, encoding="utf-8") as fh:
                doc = json.load(fh)
        except (OSError, json.JSONDecodeError):
            continue
        if not isinstance(doc, dict):
            continue
        for entry in doc.get("series") or []:
            if not isinstance(entry, dict):
                continue
            eps = (entry.get("metrics") or {}).get(metric)
            if not isinstance(eps, (int, float)) or isinstance(eps, bool):
                continue
            params = entry.get("params") or {}
            key = (doc.get("bench"), entry.get("name"),
                   frozenset(params.items()))
            cells[key] = float(eps)
    return cells


def split_by_param(cells, param):
    """Regroup rate cells as (bench, name, params - param) -> {param: rate}."""
    by_cell = {}
    for (bench, name, params), rate in cells.items():
        p = dict(params)
        value = p.pop(param, None)
        if value is None:
            continue
        by_cell.setdefault((bench, name, frozenset(p.items())), {})[value] = rate
    return by_cell


def check_compare(errors, files, baseline, tolerance):
    """Rate-regression guard against a baseline run, plus the intra-file
    policy ordering guard (edge_weighted vs static)."""
    current = rate_cells(files)
    base = rate_cells([baseline]) if baseline.is_file() else \
        rate_cells(sorted(baseline.glob("BENCH_*.json")))
    if not base:
        fail(errors, str(baseline), "baseline has no rate cells to compare")

    def describe(key):
        bench, name, params = key
        coords = ", ".join(f"{k}={v}" for k, v in sorted(dict(params).items()))
        return f"{bench}:{name}({coords})"

    for key, eps in sorted(current.items()):
        ref = base.get(key)
        if ref is None or ref <= 0:
            continue
        if eps < ref * (1.0 - tolerance):
            fail(errors, "compare",
                 f"{describe(key)}: rate {eps:.3g} fell below baseline "
                 f"{ref:.3g} by more than {tolerance:.0%}")

    # Policy guard: edge_weighted (1) must not be slower than static (0)
    # on any cell that carries both, regardless of the baseline's age.
    for key, policies in sorted(split_by_param(current, "policy").items()):
        static, weighted = policies.get(0), policies.get(1)
        if static is None or weighted is None or static <= 0:
            continue
        if weighted < static * (1.0 - tolerance):
            fail(errors, "compare",
                 f"{describe(key)}: edge_weighted rate {weighted:.3g} is more "
                 f"than {tolerance:.0%} below static {static:.3g}")

    # Reuse guard: a reused runner + workspace (reuse=1) must not serve
    # fewer queries/second than one-shot bfs() (reuse=0) on any cell of
    # bench_throughput — amortization may never turn into a cost. The
    # tolerance absorbs scheduler noise on the near-parity cells.
    qps = rate_cells(files, metric="queries_per_second")
    for key, modes in sorted(split_by_param(qps, "reuse").items()):
        oneshot, reused = modes.get(0), modes.get(1)
        if oneshot is None or reused is None or oneshot <= 0:
            continue
        if reused < oneshot * (1.0 - tolerance):
            fail(errors, "compare",
                 f"{describe(key)}: reused queries/s {reused:.3g} is more "
                 f"than {tolerance:.0%} below one-shot {oneshot:.3g}")

    # Frontier-generation guard: compact (1) must not be slower than
    # atomic (0) on any engine x workload cell. The band is 2x the
    # baseline tolerance: the compact path's one extra barrier per level
    # costs nothing but cursor-free writes on real hardware, but an
    # oversubscribed single-core CI host charges it (threads-1) x level
    # wall of scheduler time, which would trip the plain tolerance on
    # noise alone (measured spread on the CI shape: ~5-8%).
    for key, gens in sorted(split_by_param(current, "frontier_gen").items()):
        atomic, compact = gens.get(0), gens.get(1)
        if atomic is None or compact is None or atomic <= 0:
            continue
        if compact < atomic * (1.0 - 2.0 * tolerance):
            fail(errors, "compare",
                 f"{describe(key)}: compact rate {compact:.3g} is more than "
                 f"{2.0 * tolerance:.0%} below atomic {atomic:.3g}")

    # Backend guard: the compressed backend (backend=1) must hold its
    # rate against plain (backend=0) on the hybrid engine's R-MAT cells
    # — the bottom-up, bandwidth-bound configuration the encoding
    # targets. Other cells (top-down on a cached workload, uniform's
    # long gaps) legitimately pay the decode ALU, so they are reported
    # but not gated. Same 2x band as the frontier guard: a single-core
    # CI host overstates per-level costs.
    for key, backends in sorted(split_by_param(current, "backend").items()):
        bench, name, _ = key
        if not (isinstance(name, str) and "hybrid" in name and "rmat" in name):
            continue
        plain, compressed = backends.get(0), backends.get(1)
        if plain is None or compressed is None or plain <= 0:
            continue
        if compressed < plain * (1.0 - 2.0 * tolerance):
            fail(errors, "compare",
                 f"{describe(key)}: compressed rate {compressed:.3g} is more "
                 f"than {2.0 * tolerance:.0%} below plain {plain:.3g}")

    # Paged-backend guard (ablation_paged): with the payload warm in
    # the page cache, the semi-external backend must hold >= 0.85x of
    # the in-memory rate on the hybrid R-MAT cell — the same
    # bottom-up, bandwidth-bound configuration the compressed-backend
    # guard gates, for the same reason. The remaining cells pay the
    # callback-scan tax already priced by that ablation (bitmap) or
    # sit inside single-core scheduler noise (uniform) and are
    # reported, not gated.
    for key, modes in sorted(split_by_param(current, "paged").items()):
        bench, name, _ = key
        if not (isinstance(name, str) and name.startswith("warm_hybrid")
                and "rmat" in name):
            continue
        in_memory, paged = modes.get(0), modes.get(1)
        if in_memory is None or paged is None or in_memory <= 0:
            continue
        if paged < in_memory * 0.85:
            fail(errors, "compare",
                 f"{describe(key)}: warm paged rate {paged:.3g} is below "
                 f"0.85x the in-memory rate {in_memory:.3g}")

    # Prefetch guards (ablation_paged cold cells). Rate: frontier-ahead
    # prefetch must never lose to no-prefetch beyond the 2x band — on a
    # single-CPU CI host the inline WILLNEED batch is billed at
    # (threads-1) x the barrier window, the same effect the frontier
    # guard absorbs; on real hardware the background toucher overlaps
    # stripe reads with the level's discovery. Major faults: the
    # prefetcher's actual job is absorbing cold-start IO, so with a
    # meaningful cold signal (off-side >= 8 majors) prefetch-on must
    # not take more major faults than prefetch-off.
    for key, modes in sorted(split_by_param(current, "prefetch").items()):
        off_rate, on_rate = modes.get(0), modes.get(1)
        if off_rate is None or on_rate is None or off_rate <= 0:
            continue
        if on_rate < off_rate * (1.0 - 2.0 * tolerance):
            fail(errors, "compare",
                 f"{describe(key)}: prefetch-on rate {on_rate:.3g} is more "
                 f"than {2.0 * tolerance:.0%} below prefetch-off "
                 f"{off_rate:.3g}")
    faults = rate_cells(files, metric="major_faults")
    for key, modes in sorted(split_by_param(faults, "prefetch").items()):
        off_faults, on_faults = modes.get(0), modes.get(1)
        if off_faults is None or on_faults is None or off_faults < 8:
            continue
        if on_faults > off_faults:
            fail(errors, "compare",
                 f"{describe(key)}: prefetch-on took {on_faults:.0f} major "
                 f"faults, more than prefetch-off's {off_faults:.0f}")


def main(argv):
    args = []
    baseline = None
    tolerance = 0.15
    i = 1
    while i < len(argv):
        if argv[i] == "--compare":
            i += 1
            if i >= len(argv):
                print("check_bench_json: --compare needs a path", file=sys.stderr)
                return 2
            baseline = pathlib.Path(argv[i])
        elif argv[i] == "--tolerance":
            i += 1
            if i >= len(argv):
                print("check_bench_json: --tolerance needs a value",
                      file=sys.stderr)
                return 2
            try:
                tolerance = float(argv[i])
            except ValueError:
                print(f"check_bench_json: bad tolerance {argv[i]!r}",
                      file=sys.stderr)
                return 2
        else:
            args.append(argv[i])
        i += 1
    if not args:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    files = []
    for arg in args:
        p = pathlib.Path(arg)
        if p.is_dir():
            files.extend(sorted(p.glob("BENCH_*.json")))
        else:
            files.append(p)
    if not files:
        print("check_bench_json: no BENCH_*.json files found", file=sys.stderr)
        return 1
    errors = []
    for path in files:
        before = len(errors)
        check_file(errors, str(path))
        status = "FAIL" if len(errors) > before else "ok"
        with open(path, encoding="utf-8") as fh:
            try:
                n = len(json.load(fh).get("series", []))
            except (json.JSONDecodeError, AttributeError):
                n = 0
        print(f"  [{status}] {path} ({n} series entries)")
    if baseline is not None:
        before = len(errors)
        check_compare(errors, files, baseline, tolerance)
        status = "FAIL" if len(errors) > before else "ok"
        print(f"  [{status}] compare vs {baseline} (tolerance {tolerance:.0%})")
    for message in errors:
        print(f"check_bench_json: {message}", file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
