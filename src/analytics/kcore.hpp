#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr_graph.hpp"

namespace sge {

/// k-core decomposition of a symmetric graph.
struct KcoreResult {
    /// core[v] = largest k such that v belongs to the k-core (the
    /// maximal subgraph where every vertex has degree >= k inside it).
    std::vector<std::uint32_t> core;
    /// Largest core number in the graph (degeneracy).
    std::uint32_t degeneracy = 0;

    /// Vertices with core number >= k.
    [[nodiscard]] std::vector<vertex_t> members_of(std::uint32_t k) const;
};

/// Peeling algorithm (Matula & Beck / Batagelj & Zaversnik): O(n + m)
/// bucket sort by degree, repeatedly remove the minimum-degree vertex.
/// The community-analysis companion to connected components from the
/// paper's introduction: cores are the standard "dense group" filter on
/// semantic/social graphs before heavier analyses run.
KcoreResult kcore_decomposition(const CsrGraph& g);

}  // namespace sge
