#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/csr_graph.hpp"
#include "runtime/topology.hpp"

namespace sge {

class ThreadTeam;

/// Connected components of a symmetric graph. The paper's introduction
/// motivates BFS precisely as the building block of community/component
/// analysis on semantic graphs ([4]-[8]); this is that application.
struct ComponentsResult {
    /// component[v] = dense component id in [0, num_components).
    std::vector<std::uint32_t> component;
    /// sizes[c] = vertex count of component c.
    std::vector<std::uint64_t> sizes;

    [[nodiscard]] std::uint32_t num_components() const noexcept {
        return static_cast<std::uint32_t>(sizes.size());
    }

    /// Id of the largest component (0 when the graph is empty).
    [[nodiscard]] std::uint32_t largest_component() const noexcept;

    [[nodiscard]] std::uint64_t largest_size() const noexcept;
};

/// Computes components via a BFS sweep: O(n + m) total across all
/// components. Assumes edges are symmetric (the builder default);
/// on directed input it returns the forward-reachability partition,
/// which is only meaningful per-root.
ComponentsResult connected_components(const CsrGraph& g);

struct ParallelComponentsOptions {
    int threads = 1;
    std::optional<Topology> topology;

    /// Query-throughput mode: run on an existing pinned team (e.g. a
    /// BfsRunner's, via BfsRunner::team()) instead of spinning one up
    /// per call. When set, `threads`/`topology` are ignored — the
    /// team's shape wins.
    ThreadTeam* team = nullptr;
};

/// Shiloach-Vishkin-style parallel components: iterated atomic-min
/// hooking over all edges plus pointer jumping, run on the library's
/// thread team. Converges in O(log n) rounds; each round streams the
/// edge array — the bandwidth-bound complement to the latency-bound
/// BFS sweep, and the variant that wins once a single traversal cannot
/// use all the cores (many small components). Returns the identical
/// partition as connected_components (dense ids assigned in order of
/// each component's smallest vertex).
ComponentsResult connected_components_parallel(
    const CsrGraph& g, const ParallelComponentsOptions& options = {});

}  // namespace sge
