#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "runtime/cacheline.hpp"

namespace sge {

/// Frontier scheduling policy for the parallel engines (the
/// BfsOptions::schedule knob; see docs/PERF_MODEL.md "Load balance").
///
///   kStatic       — fixed vertex-count chunks behind one shared atomic
///                   cursor: the pre-scheduler behaviour, kept as the
///                   ablation baseline.
///   kEdgeWeighted — chunks cut by *out-edge count* (degree prefix sums
///                   over the CSR offsets), shared cursor. Bounds the
///                   work any single claim can carry, so on skewed
///                   frontiers no thread draws a hub while its siblings
///                   idle at the level barrier.
///   kStealing     — edge-weighted chunks dealt to per-thread ranges; a
///                   thread that drains its own range claims chunks from
///                   siblings on the *same socket* (never across — the
///                   paper's working-set hierarchy keeps random accesses
///                   socket-local, and a cross-socket steal would drag
///                   the victim's cache lines with it).
enum class SchedulePolicy { kStatic, kEdgeWeighted, kStealing };

[[nodiscard]] inline std::string to_string(SchedulePolicy policy) {
    switch (policy) {
        case SchedulePolicy::kStatic: return "static";
        case SchedulePolicy::kEdgeWeighted: return "edge_weighted";
        case SchedulePolicy::kStealing: return "stealing";
    }
    return "unknown";
}

/// Edge-aware chunked-claim scheduler over an indexed work list (a
/// frontier queue, or the vertex range [0, n) for bottom-up sweeps).
///
/// One thread *plans* between barriers — cutting [0, count) into chunks,
/// either fixed-size or balanced by a caller-supplied weight (out-degree
/// for BFS frontiers) — and every worker then *claims* chunks through
/// atomic cursors after the next barrier publishes the plan. Plans are
/// cheap: the weighted cut is two passes over the frontier reading
/// degrees the CSR offsets already hold, O(frontier) with no extra
/// memory traffic.
///
/// Two cursor layouts:
///   shared — one cursor, all claimants contend on it (kStatic and
///            kEdgeWeighted). Identical claim protocol to the old
///            FrontierQueue::next_chunk path.
///   owned  — chunks dealt into per-claimant contiguous ranges, one
///            cursor each (kStealing). A claimant drains its own range,
///            then round-robins over the other claimants *on its own
///            socket* and claims from their cursors — stealing is just
///            shared claiming on the victim's cursor, so no deque, no
///            CAS loops, and the same O(1) claim cost either way.
///
/// Thread safety: plan_*/reset_cursors are single-threaded (call from
/// one thread between barriers; the barrier publishes the plan). claim()
/// is safe from any registered claimant concurrently.
class WorkQueue {
  public:
    /// Outcome of one claim attempt.
    enum class Claim {
        kNone,    ///< nothing left this claimant may take
        kOwned,   ///< chunk came from the claimant's own range
        kStolen,  ///< chunk came from a same-socket sibling's range
    };

    WorkQueue() : WorkQueue(1, {0}) {}

    /// `socket_of[c]` is the logical socket of claimant `c`; stealing
    /// never crosses socket boundaries. Size fixes the claimant count.
    explicit WorkQueue(int claimants, std::vector<int> socket_of)
        : claimants_(claimants < 1 ? 1 : claimants),
          socket_of_(std::move(socket_of)) {
        socket_of_.resize(static_cast<std::size_t>(claimants_), 0);
        cursors_ = std::vector<CachePadded<std::atomic<std::size_t>>>(
            static_cast<std::size_t>(claimants_));
        ranges_.resize(static_cast<std::size_t>(claimants_));
        member_rank_.resize(static_cast<std::size_t>(claimants_), 0);
        int max_socket = 0;
        for (const int s : socket_of_) max_socket = s > max_socket ? s : max_socket;
        socket_members_.resize(static_cast<std::size_t>(max_socket) + 1);
        for (int c = 0; c < claimants_; ++c) {
            auto& members = socket_members_[static_cast<std::size_t>(
                socket_of_[static_cast<std::size_t>(c)])];
            member_rank_[static_cast<std::size_t>(c)] =
                static_cast<int>(members.size());
            members.push_back(c);
        }
    }

    WorkQueue(const WorkQueue&) = delete;
    WorkQueue& operator=(const WorkQueue&) = delete;

    // ---- planning (single-threaded, between barriers) ----

    /// Fixed `chunk`-sized chunks over [0, count), one shared cursor —
    /// the kStatic policy and the legacy next_chunk behaviour.
    void plan_static(std::size_t count, std::size_t chunk) {
        weighted_ = false;
        owned_ = false;
        count_ = count;
        chunk_ = chunk < 1 ? 1 : chunk;
        num_chunks_ = (count + chunk_ - 1) / chunk_;
        assign_ranges();
    }

    /// Weight-balanced chunks over [0, count): cut so every chunk
    /// carries roughly total_weight / max_chunks, never more than one
    /// item past the target (a single over-heavy item — a hub — gets a
    /// chunk of its own; no cut can split an item). `weight(i)` must be
    /// >= 1 so zero-degree items still advance the cut. `owned` deals
    /// chunks into per-claimant ranges for the stealing policy.
    template <typename WeightFn>
    void plan_weighted(std::size_t count, std::size_t max_chunks, bool owned,
                       WeightFn&& weight) {
        weighted_ = true;
        owned_ = owned;
        count_ = count;
        bounds_.clear();
        bounds_.push_back(0);
        if (count > 0) {
            std::uint64_t total = 0;
            for (std::size_t i = 0; i < count; ++i) total += weight(i);
            std::size_t chunks = max_chunks < 1 ? 1 : max_chunks;
            if (chunks > count) chunks = count;
            const std::uint64_t target =
                (total + chunks - 1) / static_cast<std::uint64_t>(chunks);
            std::uint64_t acc = 0;
            for (std::size_t i = 0; i < count; ++i) {
                acc += weight(i);
                if (acc >= target && i + 1 < count) {
                    bounds_.push_back(i + 1);
                    acc = 0;
                }
            }
            bounds_.push_back(count);
        }
        num_chunks_ = bounds_.size() - 1;
        assign_ranges();
    }

    /// Rewinds every cursor to the start of its range without replanning
    /// — reuse the same bounds for another pass (the hybrid engine's
    /// bottom-up sweeps re-scan the same [0, n) chunks every level).
    void reset_cursors() noexcept {
        for (int c = 0; c < claimants_; ++c)
            cursors_[static_cast<std::size_t>(c)].value.store(
                ranges_[static_cast<std::size_t>(c)].first,
                std::memory_order_relaxed);
    }

    // ---- claiming (any claimant, after a barrier published the plan) ----

    /// Claims the next chunk for `claimant`; on success [begin, end) is
    /// the item range. kNone means this claimant is done: its own range
    /// and (under owned plans) every same-socket sibling's range are
    /// drained.
    Claim claim(int claimant, std::size_t& begin, std::size_t& end) noexcept {
        if (!owned_) {
            const std::size_t idx = try_claim(0);
            if (idx == kNoChunk) return Claim::kNone;
            chunk_bounds(idx, begin, end);
            return Claim::kOwned;
        }
        const auto c = static_cast<std::size_t>(claimant);
        std::size_t idx = try_claim(claimant);
        if (idx != kNoChunk) {
            chunk_bounds(idx, begin, end);
            return Claim::kOwned;
        }
        // Own range drained: steal from same-socket siblings, starting
        // just past ourselves so concurrent thieves fan out over
        // different victims instead of convoying on one cursor.
        const auto& members =
            socket_members_[static_cast<std::size_t>(socket_of_[c])];
        const std::size_t peers = members.size();
        const auto me = static_cast<std::size_t>(member_rank_[c]);
        for (std::size_t off = 1; off < peers; ++off) {
            const int victim = members[(me + off) % peers];
            idx = try_claim(victim);
            if (idx != kNoChunk) {
                chunk_bounds(idx, begin, end);
                return Claim::kStolen;
            }
        }
        return Claim::kNone;
    }

    // ---- introspection (tests, diagnostics) ----

    [[nodiscard]] std::size_t num_chunks() const noexcept { return num_chunks_; }
    [[nodiscard]] std::size_t count() const noexcept { return count_; }
    [[nodiscard]] bool owned() const noexcept { return owned_; }
    [[nodiscard]] int claimants() const noexcept { return claimants_; }

    /// Item range of chunk `idx` (idx < num_chunks()).
    [[nodiscard]] std::pair<std::size_t, std::size_t> chunk_bounds(
        std::size_t idx) const noexcept {
        std::size_t begin = 0;
        std::size_t end = 0;
        chunk_bounds(idx, begin, end);
        return {begin, end};
    }

    /// Chunk-index range owned by `claimant` under the current plan.
    [[nodiscard]] std::pair<std::size_t, std::size_t> claimant_range(
        int claimant) const noexcept {
        const Range& r = ranges_[static_cast<std::size_t>(claimant)];
        return {r.first, r.last};
    }

  private:
    struct Range {
        std::size_t first = 0;
        std::size_t last = 0;
    };

    static constexpr std::size_t kNoChunk = static_cast<std::size_t>(-1);

    void chunk_bounds(std::size_t idx, std::size_t& begin,
                      std::size_t& end) const noexcept {
        if (weighted_) {
            begin = bounds_[idx];
            end = bounds_[idx + 1];
        } else {
            begin = idx * chunk_;
            end = begin + chunk_ < count_ ? begin + chunk_ : count_;
        }
    }

    /// Deals chunk indices to claimants: everything to cursor 0 under a
    /// shared plan; near-equal contiguous spans under an owned plan
    /// (chunks are weight-balanced, so equal counts ≈ equal edges).
    void assign_ranges() noexcept {
        if (!owned_) {
            ranges_[0] = {0, num_chunks_};
            for (int c = 1; c < claimants_; ++c)
                ranges_[static_cast<std::size_t>(c)] = {num_chunks_, num_chunks_};
        } else {
            const auto parts = static_cast<std::size_t>(claimants_);
            const std::size_t base = num_chunks_ / parts;
            const std::size_t extra = num_chunks_ % parts;
            std::size_t at = 0;
            for (std::size_t c = 0; c < parts; ++c) {
                const std::size_t size = base + (c < extra ? 1 : 0);
                ranges_[c] = {at, at + size};
                at += size;
            }
        }
        reset_cursors();
    }

    /// One fetch_add claim against `slot`'s cursor. The pre-check load
    /// keeps a drained cursor from advancing unboundedly under repeated
    /// steal probes; racing claimants may still each overshoot by one,
    /// which the range check absorbs.
    std::size_t try_claim(int slot) noexcept {
        const Range& r = ranges_[static_cast<std::size_t>(slot)];
        auto& cursor = cursors_[static_cast<std::size_t>(slot)].value;
        if (cursor.load(std::memory_order_relaxed) >= r.last) return kNoChunk;
        const std::size_t idx = cursor.fetch_add(1, std::memory_order_acq_rel);
        return idx < r.last ? idx : kNoChunk;
    }

    int claimants_ = 1;
    std::vector<int> socket_of_;
    std::vector<std::vector<int>> socket_members_;
    std::vector<int> member_rank_;
    std::vector<CachePadded<std::atomic<std::size_t>>> cursors_;
    std::vector<Range> ranges_;
    std::vector<std::size_t> bounds_;  // weighted plans: num_chunks_+1 cuts
    std::size_t count_ = 0;
    std::size_t chunk_ = 1;
    std::size_t num_chunks_ = 0;
    bool weighted_ = false;
    bool owned_ = false;
};

}  // namespace sge
