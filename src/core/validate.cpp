#include "core/validate.hpp"

#include <sstream>

namespace sge {

namespace {

std::string describe_vertex(vertex_t v) {
    std::ostringstream out;
    out << "vertex " << v;
    return out.str();
}

}  // namespace

ValidationReport validate_bfs_tree(const CsrGraph& g, vertex_t root,
                                   const BfsResult& result,
                                   bool check_edge_levels, bool symmetric) {
    const vertex_t n = g.num_vertices();
    if (root >= n) return ValidationReport::failure("root out of range");
    if (result.parent.size() != n)
        return ValidationReport::failure("parent array size != num_vertices");
    const bool have_levels = !result.level.empty();
    if (have_levels && result.level.size() != n)
        return ValidationReport::failure("level array size != num_vertices");

    // Rule 1: root anchors the tree.
    if (result.parent[root] != root)
        return ValidationReport::failure("root is not its own parent");
    if (have_levels && result.level[root] != 0)
        return ValidationReport::failure("root level != 0");

    // Rules 2 + 3 + 5: per-vertex tree checks.
    std::uint64_t reached = 0;
    for (vertex_t v = 0; v < n; ++v) {
        const vertex_t p = result.parent[v];
        if (p == kInvalidVertex) {
            if (have_levels && result.level[v] != kInvalidLevel)
                return ValidationReport::failure(
                    describe_vertex(v) + " unreached but has a level");
            continue;
        }
        ++reached;
        if (v == root) continue;
        if (p >= n)
            return ValidationReport::failure(describe_vertex(v) +
                                             " has out-of-range parent");
        if (result.parent[p] == kInvalidVertex)
            return ValidationReport::failure(describe_vertex(v) +
                                             " has an unreached parent");
        if (!g.has_edge(p, v))
            return ValidationReport::failure("tree edge (" + std::to_string(p) +
                                             ", " + std::to_string(v) +
                                             ") is not a graph edge");
        if (have_levels) {
            if (result.level[v] == kInvalidLevel)
                return ValidationReport::failure(describe_vertex(v) +
                                                 " reached but has no level");
            if (result.level[v] != result.level[p] + 1)
                return ValidationReport::failure(
                    describe_vertex(v) + " level != parent level + 1");
        }
    }

    if (reached != result.vertices_visited)
        return ValidationReport::failure(
            "vertices_visited (" + std::to_string(result.vertices_visited) +
            ") != reached parents (" + std::to_string(reached) + ")");

    // Rule 4: BFS levels are shortest-path distances, so no graph edge
    // may skip a level; and on symmetric graphs the reached set is
    // closed under adjacency.
    if (check_edge_levels && have_levels) {
        for (vertex_t u = 0; u < n; ++u) {
            const bool u_reached = result.parent[u] != kInvalidVertex;
            for (const vertex_t v : g.neighbors(u)) {
                const bool v_reached = result.parent[v] != kInvalidVertex;
                if (u_reached && symmetric && !v_reached)
                    return ValidationReport::failure(
                        "edge (" + std::to_string(u) + ", " + std::to_string(v) +
                        ") leaves the reached set");
                if (u_reached && v_reached) {
                    const auto lu = static_cast<std::int64_t>(result.level[u]);
                    const auto lv = static_cast<std::int64_t>(result.level[v]);
                    if (lv - lu > 1)
                        return ValidationReport::failure(
                            "edge (" + std::to_string(u) + ", " +
                            std::to_string(v) + ") skips a BFS level");
                }
            }
        }
    }

    return {};
}

}  // namespace sge
