#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/csr_graph.hpp"

namespace sge {

/// Degree-distribution summary of a graph. The paper's two workload
/// families differ exactly here: uniformly random graphs have a tight
/// binomial-like distribution, R-MAT graphs a heavy tail ("a few high
/// degree vertices and many low-degree ones") — which is why R-MAT
/// processing rates come out higher (Section IV).
struct DegreeStats {
    std::uint64_t min_degree = 0;
    std::uint64_t max_degree = 0;
    double mean_degree = 0.0;
    std::uint64_t isolated_vertices = 0;
    /// histogram[k] = number of vertices with degree in [2^k, 2^(k+1));
    /// histogram[0] counts degree 0 and 1.
    std::vector<std::uint64_t> log2_histogram;

    [[nodiscard]] std::string describe() const;
};

DegreeStats compute_degree_stats(const CsrGraph& g);

}  // namespace sge
