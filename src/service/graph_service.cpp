#include "service/graph_service.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "core/msbfs.hpp"
#include "runtime/fault.hpp"

namespace sge::service {

namespace {

using clock = PendingQuery::clock;

double seconds_between(clock::time_point from, clock::time_point to) noexcept {
    return std::chrono::duration<double>(to - from).count();
}

}  // namespace

/// One dispatcher: a persistent CancelToken (every run of this worker —
/// parallel, wave, or serial retry — polls it), a BfsRunner owning the
/// pinned team and prepared workspace (null in serial-only fallback
/// mode), and reusable scratch so steady-state queries allocate
/// nothing beyond the result copies handed to callers.
struct GraphService::Worker {
    int id = 0;
    CancelToken token;
    std::unique_ptr<BfsRunner> runner;
    BfsResult scratch;
    /// Per-lane hop distances of the current MS-BFS wave.
    std::vector<std::vector<level_t>> lane_levels;
};

GraphService::GraphService(const CsrGraph& g, ServiceOptions options)
    : graph_(&g),
      options_(std::move(options)),
      queue_(options_.queue_capacity) {
    start();
}

GraphService::GraphService(VersionedGraphStore& store, ServiceOptions options)
    : store_(&store),
      options_(std::move(options)),
      queue_(options_.queue_capacity) {
    start();
}

vertex_t GraphService::graph_vertices() const noexcept {
    return store_ != nullptr ? store_->num_vertices() : graph_->num_vertices();
}

void GraphService::start() {
    if (options_.workers < 1) options_.workers = 1;
    options_.batch_max_roots =
        std::clamp<std::size_t>(options_.batch_max_roots, 1, 64);

    for (int i = 0; i < options_.workers; ++i) {
        auto w = std::make_unique<Worker>();
        w->id = i;
        // A worker that cannot build its runner (injected allocation
        // fault, resource exhaustion) still serves — serially. The pool
        // shrinks; the service starts regardless.
        try {
            BfsOptions bo = options_.bfs;
            bo.cancel = &w->token;
            bo.compute_levels = true;  // service answers are level vectors
            w->runner = std::make_unique<BfsRunner>(std::move(bo));
            healthy_workers_.fetch_add(1, std::memory_order_relaxed);
        } catch (...) {
            counters_.serial_fallbacks.fetch_add(1, std::memory_order_relaxed);
        }
        workers_.push_back(std::move(w));
    }
    for (auto& w : workers_) {
        Worker* raw = w.get();
        threads_.emplace_back([this, raw] { worker_loop(*raw); });
    }
}

GraphService::~GraphService() { stop(); }

SubmitResult GraphService::submit(vertex_t root, double deadline_seconds) {
    return submit(QueryRequest{root, deadline_seconds});
}

SubmitResult GraphService::submit(const QueryRequest& request) {
    if (request.root >= graph_vertices())
        throw std::out_of_range("GraphService::submit: root out of range");
    counters_.submitted.fetch_add(1, std::memory_order_relaxed);

    auto item = std::make_shared<PendingQuery>();
    item->request = request;
    item->submitted = clock::now();
    return enqueue(item, request.deadline_seconds);
}

SubmitResult GraphService::submit_mutation(MutationBatch batch,
                                           double deadline_seconds) {
    if (store_ == nullptr)
        throw std::logic_error(
            "GraphService::submit_mutation: service is not store-backed "
            "(construct it over a VersionedGraphStore)");
    // Caller-bug validation happens here, like submit()'s root check,
    // so the worker-side apply cannot throw out_of_range mid-batch.
    for (const EdgeOp& op : batch.ops)
        if (op.u >= store_->num_vertices() || op.v >= store_->num_vertices())
            throw std::out_of_range(
                "GraphService::submit_mutation: vertex out of range");
    counters_.submitted.fetch_add(1, std::memory_order_relaxed);

    auto item = std::make_shared<PendingQuery>();
    item->kind = RequestKind::kMutation;
    item->mutation = std::move(batch);
    item->submitted = clock::now();
    return enqueue(item, deadline_seconds);
}

SubmitResult GraphService::enqueue(const AdmissionQueue::Item& item,
                                   double deadline_seconds) {
    const double dl = deadline_seconds > 0.0 ? deadline_seconds
                                             : options_.default_deadline_seconds;
    if (dl > 0.0) {
        item->has_deadline = true;
        item->deadline =
            item->submitted + std::chrono::duration_cast<clock::duration>(
                                  std::chrono::duration<double>(dl));
    }

    SubmitResult out;
    out.result = item->promise.get_future();

    bool admitted = false;
    if (!stopping_.load(std::memory_order_acquire)) {
        try {
            fault::maybe_throw(fault::Site::kServiceSubmit);
            admitted = queue_.try_push(item);
        } catch (const fault::FaultInjected&) {
            admitted = false;  // injected admission failure == shed
        }
    }
    if (admitted) {
        counters_.admitted.fetch_add(1, std::memory_order_relaxed);
        out.admitted = true;
    } else {
        QueryResult r;
        r.outcome = Outcome::kShed;
        r.root = item->request.root;
        resolve(item, std::move(r));
    }
    return out;
}

void GraphService::resolve(const AdmissionQueue::Item& item,
                           QueryResult result) {
    if (item->resolved) return;
    item->resolved = true;

    const auto now = clock::now();
    if (item->dispatched == clock::time_point{}) {
        // Never reached a worker (shed at the door / drained at stop):
        // the whole lifetime was waiting.
        result.wait_seconds = seconds_between(item->submitted, now);
        result.run_seconds = 0.0;
    } else {
        result.wait_seconds = seconds_between(item->submitted,
                                              item->dispatched);
        result.run_seconds = seconds_between(item->dispatched, now);
    }

    switch (result.outcome) {
        case Outcome::kCompleted:
            counters_.completed.fetch_add(1, std::memory_order_relaxed);
            if (result.batched)
                counters_.batched.fetch_add(1, std::memory_order_relaxed);
            break;
        case Outcome::kDegraded:
            counters_.degraded.fetch_add(1, std::memory_order_relaxed);
            break;
        case Outcome::kCancelled:
            counters_.cancelled.fetch_add(1, std::memory_order_relaxed);
            break;
        case Outcome::kShed:
            counters_.shed.fetch_add(1, std::memory_order_relaxed);
            break;
        case Outcome::kFailed:
            counters_.failed.fetch_add(1, std::memory_order_relaxed);
            break;
    }
    item->promise.set_value(std::move(result));
}

void GraphService::worker_loop(Worker& w) {
    // Prime the arena: one throwaway traversal prepares the workspace
    // (allocation + first-touch placement) before traffic arrives, so
    // the first real query pays only the epoch-bump reset. Failures
    // (injected faults during chaos runs) are harmless — the lazy
    // prepare inside run_into covers it.
    if (w.runner && graph_vertices() > 0) {
        try {
            w.token.reset();
            const SnapshotRef pin =
                store_ != nullptr ? store_->acquire() : SnapshotRef{};
            w.runner->run_into(w.scratch, pin ? pin.graph() : *graph_, 0);
        } catch (...) {
        }
    }

    const auto window = std::chrono::duration_cast<std::chrono::nanoseconds>(
        std::chrono::duration<double>(
            options_.batch_window_seconds > 0.0 ? options_.batch_window_seconds
                                                : 0.0));
    std::vector<AdmissionQueue::Item> batch;
    for (;;) {
        batch.clear();
        const std::size_t n = queue_.pop_batch(batch, options_.batch_max_roots,
                                               window, &in_flight_);
        if (n == 0) break;  // closed and drained: worker exits
        try {
            process_batch(w, batch);
        } catch (const std::exception&) {
            // The dispatch loop itself faulted (kServiceWorker site, or
            // anything unexpected): answer the batch on the serial
            // engine, then rebuild this worker's runner. The worker —
            // and the service — keep going either way.
            for (const auto& item : batch) run_degraded(w, item);
            rebuild_runner(w);
        }
        in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    }
}

void GraphService::process_batch(Worker& w,
                                 std::vector<AdmissionQueue::Item>& batch) {
    fault::maybe_throw(fault::Site::kServiceWorker);

    const auto now = clock::now();
    std::vector<AdmissionQueue::Item> live;
    live.reserve(batch.size());
    for (const auto& item : batch) {
        item->dispatched = now;
        if (item->expired(now)) {
            QueryResult r;
            r.outcome = Outcome::kCancelled;
            r.root = item->request.root;
            resolve(item, std::move(r));
        } else {
            live.push_back(item);
        }
    }
    if (live.empty()) return;

    // Mutations apply before this batch's queries, so a query admitted
    // together with (or after) a mutation observes the snapshot it
    // published. Application is serialized by the store's writer mutex;
    // with several workers the inter-batch order is whatever the pops
    // interleave to, which the staleness contract already allows.
    std::vector<AdmissionQueue::Item> queries;
    queries.reserve(live.size());
    for (const auto& item : live) {
        if (item->kind == RequestKind::kMutation)
            run_mutation(item);
        else
            queries.push_back(item);
    }
    if (queries.empty()) return;

    if (options_.batching && queries.size() >= 2) {
        run_wave(w, queries);
    } else {
        for (const auto& item : queries) run_single(w, item);
    }
}

void GraphService::run_mutation(const AdmissionQueue::Item& item) {
    if (item->resolved) return;
    QueryResult r;
    r.root = item->request.root;
    if (item->expired(clock::now())) {
        r.outcome = Outcome::kCancelled;
        resolve(item, std::move(r));
        return;
    }
    try {
        r.snapshot_version = store_->apply(item->mutation);
        r.outcome = Outcome::kCompleted;
        counters_.mutations.fetch_add(1, std::memory_order_relaxed);
    } catch (const std::exception&) {
        // Ids were validated at submit, so this is resource exhaustion
        // or similar; the batch was not applied (the store validates
        // before mutating). The future still resolves.
        r.outcome = Outcome::kFailed;
    }
    resolve(item, std::move(r));
}

void GraphService::run_wave(Worker& w,
                            std::vector<AdmissionQueue::Item>& batch) {
    // Flush-path fault site: a failed wave assembly falls back to
    // per-request dispatch (which carries its own degradation ladder).
    try {
        fault::maybe_throw(fault::Site::kServiceFlush);
    } catch (const fault::FaultInjected&) {
        for (const auto& item : batch) run_single(w, item);
        return;
    }

    // Distinct roots become lanes; duplicate requests share a lane
    // (MS-BFS rejects duplicate sources).
    std::vector<vertex_t> roots;
    std::vector<std::size_t> lane_of(batch.size());
    roots.reserve(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
        const vertex_t root = batch[i]->request.root;
        std::size_t lane = roots.size();
        for (std::size_t l = 0; l < roots.size(); ++l)
            if (roots[l] == root) {
                lane = l;
                break;
            }
        if (lane == roots.size()) roots.push_back(root);
        lane_of[i] = lane;
    }

    // The wave's deadline is the tightest member deadline: when it
    // fires, expired members resolve kCancelled and the rest retry
    // individually — no member waits on a lane it no longer needs.
    w.token.reset();
    if (hard_cancel_.load(std::memory_order_acquire)) w.token.cancel();
    bool any_deadline = false;
    clock::time_point min_deadline = clock::time_point::max();
    for (const auto& item : batch)
        if (item->has_deadline) {
            any_deadline = true;
            min_deadline = std::min(min_deadline, item->deadline);
        }
    if (any_deadline) w.token.set_deadline(min_deadline);

    // One pin for the whole wave: every member answers against the
    // same published version (exact on that snapshot, stale by however
    // many batches publish while the wave runs).
    const SnapshotRef pin =
        store_ != nullptr ? store_->acquire() : SnapshotRef{};
    const CsrGraph& graph = pin ? pin.graph() : *graph_;

    const std::size_t n = graph.num_vertices();
    w.lane_levels.resize(roots.size());
    for (std::size_t l = 0; l < roots.size(); ++l)
        w.lane_levels[l].assign(n, kInvalidLevel);

    MsBfsOptions mo;
    mo.team = w.runner ? w.runner->team() : nullptr;
    mo.workspace = mo.team != nullptr && w.runner ? w.runner->workspace()
                                                  : nullptr;
    mo.schedule = options_.bfs.schedule;
    mo.cancel = &w.token;
    if (mo.team == nullptr) mo.threads = 1;

    auto& lanes = w.lane_levels;
    const auto visitor = [&lanes](int, level_t level, vertex_t v,
                                  std::uint64_t mask) {
        while (mask != 0) {
            const int lane = std::countr_zero(mask);
            mask &= mask - 1;
            lanes[static_cast<std::size_t>(lane)][v] = level;
        }
    };

    try {
        multi_source_bfs(graph, roots, visitor, mo);
    } catch (const BfsDeadlineError& e) {
        // Wave cancelled (tightest deadline fired): expired members are
        // done; the rest get an individual run with their own slack.
        const auto now = clock::now();
        for (const auto& item : batch) {
            if (item->expired(now)) {
                QueryResult r;
                r.outcome = Outcome::kCancelled;
                r.root = item->request.root;
                r.level_reached = e.level_reached();
                r.vertices_settled = e.vertices_settled();
                resolve(item, std::move(r));
            } else {
                run_single(w, item);
            }
        }
        return;
    } catch (const std::exception&) {
        // Anything else (injected engine fault, allocation failure):
        // per-request dispatch, each with its own degradation ladder.
        for (const auto& item : batch) run_single(w, item);
        return;
    }

    counters_.waves.fetch_add(1, std::memory_order_relaxed);
    counters_.wave_roots.fetch_add(roots.size(), std::memory_order_relaxed);

    // Summarise each lane once (visited count, level count), then hand
    // every member its lane's levels.
    std::vector<std::pair<std::uint64_t, std::uint32_t>> lane_summary(
        roots.size());
    for (std::size_t l = 0; l < roots.size(); ++l) {
        std::uint64_t visited = 0;
        level_t max_level = 0;
        for (const level_t lv : lanes[l]) {
            if (lv == kInvalidLevel) continue;
            ++visited;
            max_level = std::max(max_level, lv);
        }
        lane_summary[l] = {visited,
                           visited > 0 ? static_cast<std::uint32_t>(max_level) +
                                             1
                                       : 0};
    }
    for (std::size_t i = 0; i < batch.size(); ++i) {
        const std::size_t lane = lane_of[i];
        QueryResult r;
        r.outcome = Outcome::kCompleted;
        r.root = batch[i]->request.root;
        r.batched = true;
        r.snapshot_version = pin ? pin.version() : 0;
        r.level = lanes[lane];  // copy: each caller owns its answer
        r.vertices_visited = lane_summary[lane].first;
        r.num_levels = lane_summary[lane].second;
        resolve(batch[i], std::move(r));
    }
}

void GraphService::run_single(Worker& w, const AdmissionQueue::Item& item) {
    if (item->resolved) return;
    const auto now = clock::now();
    if (item->expired(now)) {
        QueryResult r;
        r.outcome = Outcome::kCancelled;
        r.root = item->request.root;
        resolve(item, std::move(r));
        return;
    }
    if (!w.runner) {
        // Serial-only fallback mode (pool shrunk after a failed rebuild).
        run_degraded(w, item);
        return;
    }

    w.token.reset();
    if (hard_cancel_.load(std::memory_order_acquire)) w.token.cancel();
    if (item->has_deadline) w.token.set_deadline(item->deadline);

    const SnapshotRef pin =
        store_ != nullptr ? store_->acquire() : SnapshotRef{};

    try {
        w.runner->run_into(w.scratch, pin ? pin.graph() : *graph_,
                           item->request.root);
    } catch (const BfsDeadlineError& e) {
        if (e.cancelled()) {
            QueryResult r;
            r.outcome = Outcome::kCancelled;
            r.root = item->request.root;
            r.level_reached = e.level_reached();
            r.vertices_settled = e.vertices_settled();
            resolve(item, std::move(r));
            return;
        }
        run_degraded(w, item);  // watchdog abort: retry serially
        return;
    } catch (const std::exception&) {
        run_degraded(w, item);  // injected fault / bad_alloc / ...
        return;
    }

    QueryResult r;
    r.outcome = Outcome::kCompleted;
    r.root = item->request.root;
    r.snapshot_version = pin ? pin.version() : 0;
    r.level = w.scratch.level;  // copy: the scratch is reused
    r.vertices_visited = w.scratch.vertices_visited;
    r.num_levels = w.scratch.num_levels;
    resolve(item, std::move(r));
}

void GraphService::run_degraded(Worker& w, const AdmissionQueue::Item& item) {
    if (item->resolved) return;
    if (item->kind == RequestKind::kMutation) {
        // A faulted dispatch loop retries mutations here too: apply is
        // idempotent per item (resolved mutations return immediately)
        // and has no injected fault sites, so the batch lands exactly
        // once or resolves kFailed.
        run_mutation(item);
        return;
    }
    const auto now = clock::now();
    if (item->expired(now)) {
        QueryResult r;
        r.outcome = Outcome::kCancelled;
        r.root = item->request.root;
        resolve(item, std::move(r));
        return;
    }

    w.token.reset();
    if (hard_cancel_.load(std::memory_order_acquire)) w.token.cancel();
    if (item->has_deadline) w.token.set_deadline(item->deadline);

    BfsOptions so;
    so.engine = BfsEngine::kSerial;
    so.threads = 1;
    so.compute_levels = true;
    so.cancel = &w.token;

    const SnapshotRef pin =
        store_ != nullptr ? store_->acquire() : SnapshotRef{};

    QueryResult r;
    r.root = item->request.root;
    try {
        const BfsResult res =
            bfs(pin ? pin.graph() : *graph_, item->request.root, so);
        r.outcome = Outcome::kDegraded;
        r.snapshot_version = pin ? pin.version() : 0;
        r.level = res.level;
        r.vertices_visited = res.vertices_visited;
        r.num_levels = res.num_levels;
    } catch (const BfsDeadlineError& e) {
        r.outcome = Outcome::kCancelled;
        r.level_reached = e.level_reached();
        r.vertices_settled = e.vertices_settled();
    } catch (const std::exception&) {
        // The serial engine has no injected fault sites; reaching this
        // means something genuinely unrecoverable. The future still
        // resolves — nothing is ever lost.
        r.outcome = Outcome::kFailed;
    }
    resolve(item, std::move(r));
}

void GraphService::rebuild_runner(Worker& w) {
    counters_.worker_restarts.fetch_add(1, std::memory_order_relaxed);
    const bool was_healthy = w.runner != nullptr;
    try {
        BfsOptions bo = options_.bfs;
        bo.cancel = &w.token;
        bo.compute_levels = true;
        auto fresh = std::make_unique<BfsRunner>(std::move(bo));
        w.runner = std::move(fresh);
        if (!was_healthy)
            healthy_workers_.fetch_add(1, std::memory_order_relaxed);
    } catch (...) {
        // Could not rebuild: shrink to serial-only instead of dying.
        w.runner.reset();
        if (was_healthy)
            healthy_workers_.fetch_sub(1, std::memory_order_relaxed);
        counters_.serial_fallbacks.fetch_add(1, std::memory_order_relaxed);
    }
}

void GraphService::stop() {
    if (stopped_.exchange(true, std::memory_order_acq_rel)) return;
    stopping_.store(true, std::memory_order_release);
    queue_.close();

    // Bounded drain: give queued + in-flight work drain_seconds to
    // finish on its own (workers keep popping a closed queue until it
    // is empty).
    const auto deadline =
        clock::now() + std::chrono::duration_cast<clock::duration>(
                           std::chrono::duration<double>(
                               options_.drain_seconds > 0.0
                                   ? options_.drain_seconds
                                   : 0.0));
    while (clock::now() < deadline) {
        if (queue_.size() == 0 &&
            in_flight_.load(std::memory_order_acquire) == 0)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }

    // Whatever is still running now gets cancelled cooperatively — the
    // engines stop within one level, so the joins below are bounded.
    hard_cancel_.store(true, std::memory_order_release);
    for (auto& w : workers_) w->token.cancel();
    for (auto& t : threads_) t.join();
    threads_.clear();

    // Workers are gone; resolve anything still queued.
    std::vector<AdmissionQueue::Item> leftovers;
    queue_.drain(leftovers);
    for (const auto& item : leftovers) {
        QueryResult r;
        r.outcome = Outcome::kCancelled;
        r.root = item->request.root;
        resolve(item, std::move(r));
    }
}

}  // namespace sge::service
