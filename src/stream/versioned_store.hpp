#pragma once

// VersionedGraphStore — epoch-snapshot graph versioning for live
// graphs: one writer applies batched edge inserts/deletes to a
// DynamicGraph and publishes immutable CsrGraph snapshots; any number
// of concurrent readers pin a snapshot and traverse it while the next
// version is being built. This extends the epoch idiom of
// concurrency/versioned_bitmap.hpp from per-word visited state to
// whole-graph versions: a published snapshot is immutable forever, its
// version number is the epoch, and "reset" is publishing the next
// epoch rather than touching the old one.
//
// Concurrency contract:
//   * writer side (stage_* / flush / apply / track) is serialized by an
//     internal mutex — one logical writer, but calls may come from any
//     thread (the service's workers all forward mutation requests
//     here);
//   * reader side (acquire / version / counters) is safe from any
//     thread at any time. acquire() pins the current snapshot under a
//     short lock; the pin itself is a lock-free refcount, so releasing
//     never blocks a publish;
//   * a retired snapshot (superseded by a newer version) is reclaimed
//     only when its last reader drops — the writer sweeps on each
//     publish, so memory is bounded by "snapshots still pinned + 1".
//
// Consistency guarantee (the staleness contract, see
// docs/ROBUSTNESS.md): a reader never observes a half-applied batch.
// Every pinned snapshot is the exact graph after some prefix of the
// applied batches; queries are stale by at most the batches published
// after their pin, never torn.
//
// Level maintenance: roots registered with track() keep incremental
// BFS levels alongside the graph. Insert-only batches repair them
// through IncrementalBfs (one multi-seed wave per batch);
// delete-containing batches fall back to a rebuild against the new
// state — deletions need level increases, which the decrease-only
// repair cannot produce.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "graph/csr_graph.hpp"
#include "graph/types.hpp"
#include "stream/dynamic_graph.hpp"
#include "stream/incremental_bfs.hpp"

namespace sge {

/// One edge mutation. Undirected, mirroring DynamicGraph: an insert
/// adds the arc pair {u, v} / {v, u}, a remove erases one occurrence.
struct EdgeOp {
    enum class Kind : std::uint8_t { kInsert, kRemove };
    Kind kind = Kind::kInsert;
    vertex_t u = 0;
    vertex_t v = 0;
};

/// An ordered batch of edge mutations, applied atomically with respect
/// to readers: no snapshot ever shows part of a batch.
struct MutationBatch {
    std::vector<EdgeOp> ops;

    void insert(vertex_t u, vertex_t v) {
        ops.push_back({EdgeOp::Kind::kInsert, u, v});
    }
    void remove(vertex_t u, vertex_t v) {
        ops.push_back({EdgeOp::Kind::kRemove, u, v});
    }
    [[nodiscard]] bool empty() const noexcept { return ops.empty(); }
    [[nodiscard]] std::size_t size() const noexcept { return ops.size(); }
};

struct StoreOptions {
    /// Staged ops (stage_insert/stage_remove) auto-flush when this many
    /// are buffered — the capacity half of the capacity-or-window
    /// aggregation discipline (the Grappa idiom, as in the service's
    /// wave batching).
    std::size_t batch_capacity = 256;

    /// ... and when this much time has passed since the first staged op
    /// of the current batch (checked at the next stage_* call; 0 = no
    /// window, flush on capacity or explicitly).
    double flush_window_seconds = 0.0;
};

/// Always-on monotonic counters (the ServiceCounters pattern): ticked
/// by the writer, readable from any thread.
struct StoreCounters {
    std::atomic<std::uint64_t> batches_applied{0};
    std::atomic<std::uint64_t> snapshots_published{0};
    /// Edge ops that actually changed the graph (compacted inserts +
    /// successful removes) — the delta volume, as opposed to ops
    /// submitted.
    std::atomic<std::uint64_t> delta_edges{0};
    /// Removes of absent edges plus insert/remove pairs that cancelled
    /// within one batch — submitted work that produced no delta.
    std::atomic<std::uint64_t> noop_ops{0};
    /// Tracked-root level entries changed by insert-only repair waves.
    std::atomic<std::uint64_t> repair_touched{0};
    /// Tracked-root rebuilds forced by delete-containing batches.
    std::atomic<std::uint64_t> rebuilds{0};
    /// Snapshots superseded by a publish / freed after their last
    /// reader dropped. retired - reclaimed = retired snapshots still
    /// pinned by in-flight readers.
    std::atomic<std::uint64_t> snapshots_retired{0};
    std::atomic<std::uint64_t> snapshots_reclaimed{0};
};

namespace detail {

/// One published graph version. Immutable after publish; `pins` is the
/// reader refcount (lock-free release, mutex-guarded acquire).
struct GraphSnapshot {
    CsrGraph graph;
    std::uint64_t version = 0;
    mutable std::atomic<std::uint64_t> pins{0};
};

}  // namespace detail

class VersionedGraphStore;

/// RAII pin on one published snapshot: the graph it exposes is
/// immutable and outlives the ref, no matter how many versions the
/// writer publishes meanwhile. Move-only; the owning store must
/// outlive every ref. An empty (moved-from / default) ref has no
/// graph.
class SnapshotRef {
  public:
    SnapshotRef() = default;
    SnapshotRef(SnapshotRef&& other) noexcept : snap_(other.snap_) {
        other.snap_ = nullptr;
    }
    SnapshotRef& operator=(SnapshotRef&& other) noexcept {
        if (this != &other) {
            release();
            snap_ = other.snap_;
            other.snap_ = nullptr;
        }
        return *this;
    }
    SnapshotRef(const SnapshotRef&) = delete;
    SnapshotRef& operator=(const SnapshotRef&) = delete;
    ~SnapshotRef() { release(); }

    [[nodiscard]] const CsrGraph& graph() const noexcept {
        return snap_->graph;
    }
    [[nodiscard]] std::uint64_t version() const noexcept {
        return snap_->version;
    }
    [[nodiscard]] explicit operator bool() const noexcept {
        return snap_ != nullptr;
    }

    /// Drops the pin early (idempotent; the destructor does the same).
    void release() noexcept {
        if (snap_ != nullptr) {
            // Release ordering: every read of the graph happens-before
            // the unpin, so the writer's acquire-load of pins == 0
            // licenses reclamation.
            snap_->pins.fetch_sub(1, std::memory_order_release);
            snap_ = nullptr;
        }
    }

  private:
    friend class VersionedGraphStore;
    explicit SnapshotRef(const detail::GraphSnapshot* snap) noexcept
        : snap_(snap) {}

    const detail::GraphSnapshot* snap_ = nullptr;
};

class VersionedGraphStore {
  public:
    /// Seeds the store from a static graph (version 1 is its snapshot).
    explicit VersionedGraphStore(const CsrGraph& initial,
                                 StoreOptions options = {});

    /// Starts from `num_vertices` isolated vertices. The vertex set is
    /// fixed for the store's lifetime; mutations are edge ops.
    explicit VersionedGraphStore(vertex_t num_vertices,
                                 StoreOptions options = {});

    VersionedGraphStore(const VersionedGraphStore&) = delete;
    VersionedGraphStore& operator=(const VersionedGraphStore&) = delete;

    /// Destruction requires every SnapshotRef to have been released.
    ~VersionedGraphStore() = default;

    // ---- reader side (any thread) ----

    /// Pins and returns the latest published snapshot.
    [[nodiscard]] SnapshotRef acquire() const;

    /// Version of the latest published snapshot (>= the version of any
    /// snapshot already acquired — the reader's staleness window is
    /// `version() - ref.version()` batches).
    [[nodiscard]] std::uint64_t version() const noexcept {
        return published_version_.load(std::memory_order_acquire);
    }

    [[nodiscard]] vertex_t num_vertices() const noexcept {
        return num_vertices_;
    }

    [[nodiscard]] const StoreCounters& counters() const noexcept {
        return counters_;
    }

    /// Published snapshots currently alive: the current one plus any
    /// retired versions still pinned by readers.
    [[nodiscard]] std::size_t live_snapshots() const;

    // ---- writer side (serialized internally) ----

    /// Applies `batch` (compacted: in-batch insert/remove pairs cancel)
    /// and publishes the resulting snapshot. Returns the new version.
    /// An empty or fully-cancelled batch publishes nothing and returns
    /// the current version. Throws std::out_of_range on bad vertex ids
    /// (the graph and tracked levels are untouched in that case).
    std::uint64_t apply(const MutationBatch& batch);

    /// Single-op staging: buffered until batch_capacity ops are staged
    /// or flush_window_seconds has passed since the first (checked on
    /// the next stage), then flushed as one batch.
    void stage_insert(vertex_t u, vertex_t v);
    void stage_remove(vertex_t u, vertex_t v);

    /// Ops currently staged and not yet published.
    [[nodiscard]] std::size_t staged() const;

    /// Publishes staged ops now; returns the (possibly unchanged)
    /// current version.
    std::uint64_t flush();

    /// Frees retired snapshots whose last reader has dropped (also done
    /// automatically on every publish). Returns the number freed.
    std::size_t reclaim();

    // ---- tracked roots: incremental levels per published version ----

    /// Registers `root` for incremental level maintenance. Idempotent.
    void track(vertex_t root);
    void untrack(vertex_t root);

    /// Hop distances from a tracked root, consistent with the latest
    /// published version (insert-only batches repaired them, delete
    /// batches rebuilt them — they are never stale). Throws
    /// std::invalid_argument for an untracked root.
    [[nodiscard]] std::vector<level_t> tracked_levels(vertex_t root) const;

  private:
    // *_locked helpers assume writer_mutex_ is held (except
    // reclaim_pins_locked, which needs pin_mutex_).
    std::uint64_t apply_locked(const MutationBatch& batch);
    void maybe_flush_locked();
    std::uint64_t flush_locked();
    void publish_locked();
    std::size_t reclaim_pins_locked();

    const vertex_t num_vertices_;
    const StoreOptions options_;

    /// Serializes all writer-side state: the working graph, staging
    /// buffer and tracked levels.
    mutable std::mutex writer_mutex_;
    DynamicGraph working_;
    MutationBatch staged_;
    std::chrono::steady_clock::time_point first_staged_{};
    std::vector<std::pair<vertex_t, std::unique_ptr<IncrementalBfs>>> tracked_;

    /// Guards current_/retired_ and pin acquisition (short critical
    /// sections only: pointer swap, refcount bump, sweep).
    mutable std::mutex pin_mutex_;
    std::unique_ptr<detail::GraphSnapshot> current_;
    std::vector<std::unique_ptr<detail::GraphSnapshot>> retired_;

    std::atomic<std::uint64_t> published_version_{0};
    mutable StoreCounters counters_;
};

}  // namespace sge
