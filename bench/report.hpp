#pragma once

// Machine-readable benchmark reports (BENCH_<slug>.json).
//
// Every fig* driver prints its paper-style tables to stdout for humans;
// when SGE_BENCH_JSON is set (and the SGE_OBS runtime switch is not 0)
// it *also* drops a JSON report so CI and plotting scripts never have
// to scrape the tables. Validate with bench/check_bench_json.py; the
// schema is documented in docs/OBSERVABILITY.md.
//
//   SGE_BENCH_JSON=1           -> write BENCH_<slug>.json in the CWD
//   SGE_BENCH_JSON=/some/dir   -> write it there
//   unset / 0                  -> off (the default)

#include <cstdint>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "core/bfs.hpp"
#include "runtime/env.hpp"
#include "runtime/obs.hpp"

namespace sge::bench {

/// Directory BENCH_*.json reports go to, or "" when reporting is off.
inline std::string bench_json_dir() {
    const std::string v = env_string("SGE_BENCH_JSON").value_or("");
    if (v.empty() || v == "0" || v == "false" || v == "no" || v == "off")
        return {};
    if (!obs::enabled()) return {};  // SGE_OBS=0 silences the exporters
    if (v == "1" || v == "true" || v == "yes" || v == "on") return ".";
    return v;
}

/// Accumulates one driver's results and writes them as a single JSON
/// object. Construction reads the environment; when reporting is off
/// every method is a cheap no-op, so drivers call unconditionally.
///
/// Data model: a flat list of series entries, each `name` + integer
/// `params` (the experiment coordinates: threads, arity, vertices...)
/// + double `metrics` (the measurements: edges_per_second, seconds...).
/// Flat entries keep the consumer generic — group by name, index by
/// params, plot metrics.
class BenchReport {
  public:
    using Params = std::vector<std::pair<std::string, std::int64_t>>;
    using Metrics = std::vector<std::pair<std::string, double>>;

    BenchReport(std::string slug, std::string figure)
        : slug_(std::move(slug)),
          figure_(std::move(figure)),
          dir_(bench_json_dir()) {}

    [[nodiscard]] bool enabled() const noexcept { return !dir_.empty(); }

    void set_topology(std::string description) {
        topology_ = std::move(description);
    }

    void set_workload(std::string family, std::uint64_t base_vertices) {
        family_ = std::move(family);
        base_vertices_ = base_vertices;
    }

    void add(std::string name, Params params, Metrics metrics) {
        if (!enabled()) return;
        entries_.push_back(
            Entry{std::move(name), std::move(params), std::move(metrics)});
    }

    /// One entry per BFS level, carrying the full per-level counter set
    /// (the Figure 4-style data). `params` is copied into every level's
    /// entry with "level" appended.
    void add_levels(const std::string& name, const Params& params,
                    const std::vector<BfsLevelStats>& levels) {
        if (!enabled()) return;
        for (std::size_t d = 0; d < levels.size(); ++d) {
            const BfsLevelStats& s = levels[d];
            Params p = params;
            p.emplace_back("level", static_cast<std::int64_t>(d));
            Metrics m{{"frontier_size", static_cast<double>(s.frontier_size)},
                      {"edges_scanned", static_cast<double>(s.edges_scanned)},
                      {"bitmap_checks", static_cast<double>(s.bitmap_checks)},
                      {"atomic_ops", static_cast<double>(s.atomic_ops)},
                      {"remote_tuples", static_cast<double>(s.remote_tuples)},
                      {"bitmap_skips", static_cast<double>(s.bitmap_skips)},
                      {"atomic_wins", static_cast<double>(s.atomic_wins)},
                      {"batches_pushed", static_cast<double>(s.batches_pushed)},
                      {"batches_popped", static_cast<double>(s.batches_popped)},
                      {"barrier_wait_ns", static_cast<double>(s.barrier_wait_ns)},
                      {"chunks_claimed", static_cast<double>(s.chunks_claimed)},
                      {"chunks_stolen", static_cast<double>(s.chunks_stolen)},
                      {"prefix_sum_ns", static_cast<double>(s.prefix_sum_ns)},
                      {"compact_writes",
                       static_cast<double>(s.compact_writes)},
                      {"simd_words_scanned",
                       static_cast<double>(s.simd_words_scanned)},
                      {"max_thread_edges",
                       static_cast<double>(s.max_thread_edges)},
                      {"bytes_decoded", static_cast<double>(s.bytes_decoded)},
                      {"decode_ns", static_cast<double>(s.decode_ns)},
                      {"seconds", s.seconds}};
            add(name, std::move(p), std::move(m));
        }
    }

    /// Writes BENCH_<slug>.json. Returns false when reporting is off or
    /// the file cannot be created (reported on stderr; benches never
    /// fail over a report).
    bool write() const {
        if (!enabled()) return false;
        const std::string path = dir_ + "/BENCH_" + slug_ + ".json";
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        if (!out) {
            std::fprintf(stderr, "BenchReport: cannot write %s\n", path.c_str());
            return false;
        }
        obs::JsonWriter w(out);
        w.begin_object();
        w.field("schema", "sge.bench");
        w.field("schema_version", std::int64_t{1});
        w.field("bench", slug_);
        w.field("figure", figure_);
        w.field("unix_time",
                static_cast<std::int64_t>(std::time(nullptr)));
        w.field("scale_shift", scale_shift());
        w.field("obs_compiled_in", obs::compiled_in());
        if (!topology_.empty()) w.field("topology", topology_);
        if (!family_.empty()) {
            w.key("workload");
            w.begin_object();
            w.field("family", family_);
            w.field("base_vertices", base_vertices_);
            w.end_object();
        }
        w.key("series");
        w.begin_array();
        for (const Entry& e : entries_) {
            w.begin_object();
            w.field("name", e.name);
            w.key("params");
            w.begin_object();
            for (const auto& [k, v] : e.params) w.field(k, v);
            w.end_object();
            w.key("metrics");
            w.begin_object();
            for (const auto& [k, v] : e.metrics) w.field(k, v);
            w.end_object();
            w.end_object();
        }
        w.end_array();
        w.end_object();
        out << "\n";
        if (!out) {
            std::fprintf(stderr, "BenchReport: write to %s failed\n",
                         path.c_str());
            return false;
        }
        std::printf("\n[report: %s]\n", path.c_str());
        return true;
    }

  private:
    struct Entry {
        std::string name;
        Params params;
        Metrics metrics;
    };

    std::string slug_;
    std::string figure_;
    std::string dir_;
    std::string topology_;
    std::string family_;
    std::uint64_t base_vertices_ = 0;
    std::vector<Entry> entries_;
};

}  // namespace sge::bench
