#include "runtime/topology.hpp"

#include <unistd.h>

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>

namespace sge {

Topology::Topology(int sockets, int cores_per_socket, int smt_per_core,
                   bool emulated, std::vector<int> cpu_map)
    : sockets_(std::max(1, sockets)),
      cores_per_socket_(std::max(1, cores_per_socket)),
      smt_per_core_(std::max(1, smt_per_core)),
      emulated_(emulated),
      cpu_map_(std::move(cpu_map)) {}

Topology Topology::emulate(int sockets, int cores_per_socket, int smt_per_core) {
    return Topology(sockets, cores_per_socket, smt_per_core, /*emulated=*/true, {});
}

Topology Topology::nehalem_ep() { return emulate(2, 4, 2); }

Topology Topology::nehalem_ex() { return emulate(4, 8, 2); }

namespace {

/// Reads a small integer file like
/// /sys/devices/system/cpu/cpu3/topology/physical_package_id.
int read_int_file(const std::string& path, int fallback) {
    std::ifstream in(path);
    int v = fallback;
    if (in >> v) return v;
    return fallback;
}

}  // namespace

Topology Topology::detect() {
    const long online = sysconf(_SC_NPROCESSORS_ONLN);
    const int ncpu = online > 0 ? static_cast<int>(online) : 1;

    // Group online CPUs by physical package id. When sysfs is absent
    // (containers, non-Linux), everything lands in package 0.
    std::map<int, std::vector<int>> packages;
    for (int cpu = 0; cpu < ncpu; ++cpu) {
        std::ostringstream path;
        path << "/sys/devices/system/cpu/cpu" << cpu
             << "/topology/physical_package_id";
        packages[read_int_file(path.str(), 0)].push_back(cpu);
    }

    const int sockets = static_cast<int>(packages.size());
    int per_socket = 0;
    for (const auto& [pkg, cpus] : packages)
        per_socket = std::max(per_socket, static_cast<int>(cpus.size()));

    // Detection treats each hardware thread as a "core" (smt=1): the
    // worker placement below is socket-major either way, and the library
    // never needs to distinguish an SMT sibling from a real core beyond
    // ordering, which sysfs does not expose portably inside containers.
    std::vector<int> cpu_map;
    cpu_map.reserve(static_cast<std::size_t>(ncpu));
    // Socket-major order: worker 0..per_socket-1 on socket 0, etc. —
    // matching socket_of_thread().
    for (const auto& [pkg, cpus] : packages)
        cpu_map.insert(cpu_map.end(), cpus.begin(), cpus.end());

    return Topology(sockets, per_socket, 1, /*emulated=*/false, std::move(cpu_map));
}

int Topology::socket_of_thread(int t) const noexcept {
    const int total_cores = sockets_ * cores_per_socket_;
    // Fill one thread per physical core, socket by socket; the second
    // SMT layer only starts once every core has a thread (this is how the
    // paper scales EP runs from 8 to 16 threads).
    const int core_index = (t % total_cores + total_cores) % total_cores;
    return core_index / cores_per_socket_;
}

int Topology::cpu_of_thread(int t) const noexcept {
    if (t < 0 || static_cast<std::size_t>(t) >= cpu_map_.size()) return -1;
    return cpu_map_[static_cast<std::size_t>(t)];
}

int Topology::sockets_used(int threads) const noexcept {
    int used = 0;
    for (int t = 0; t < threads; ++t)
        used = std::max(used, socket_of_thread(t) + 1);
    return std::min(used, sockets_);
}

std::string Topology::describe() const {
    std::ostringstream out;
    out << sockets_ << " socket" << (sockets_ > 1 ? "s" : "") << " x "
        << cores_per_socket_ << " core" << (cores_per_socket_ > 1 ? "s" : "")
        << " x " << smt_per_core_ << " SMT"
        << (emulated_ ? " (emulated)" : " (detected)");
    return out.str();
}

}  // namespace sge
