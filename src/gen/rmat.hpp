#pragma once

#include <cstdint>

#include "graph/edge_list.hpp"

namespace sge {

/// R-MAT (Recursive MATrix) scale-free generator — the paper's second
/// workload family, produced there with the GTgraph suite [26]. Each
/// edge picks a quadrant of the adjacency matrix with probabilities
/// (a, b, c, d) recursively, scale times; GTgraph's defaults
/// (0.45, 0.15, 0.15, 0.25) yield power-law degree distributions with
/// community structure ("a few high degree vertices and many low-degree
/// ones", Section IV).
struct RmatParams {
    /// num_vertices = 2^scale.
    std::uint32_t scale = 16;
    std::uint64_t num_edges = 1 << 20;
    double a = 0.45;
    double b = 0.15;
    double c = 0.15;
    double d = 0.25;
    /// Per-level parameter noise (GTgraph applies +-10% jitter so the
    /// quadrant probabilities vary with depth and the degree
    /// distribution does not collapse onto exact powers).
    double noise = 0.1;
    std::uint64_t seed = 1;
};

/// Generates the directed R-MAT edge list; deterministic per seed.
/// Throws std::invalid_argument when the probabilities are negative or
/// do not sum to ~1.
EdgeList generate_rmat(const RmatParams& params);

}  // namespace sge
