#pragma once

#include <cstdint>
#include <vector>

#include "stream/dynamic_graph.hpp"

namespace sge {

/// Incrementally-maintained BFS levels from a fixed root under edge
/// insertions — the streaming companion to the batch engines: after
/// each insertion the levels are repaired locally instead of recomputed
/// from scratch, so a stream of m edges costs O(total repair) rather
/// than O(m * (n + m)).
///
/// Repair rule for a new edge {u, v}: if one endpoint's level can drop
/// (level[u] + 1 < level[v] or vice versa), lower it and propagate the
/// improvement as a BFS wave that only touches vertices whose level
/// actually decreases — each vertex can decrease at most `levels`
/// times over the whole stream, bounding the total work.
///
/// Deletions are out of scope (level *increases* need the full
/// decremental machinery); call rebuild() after removals.
class IncrementalBfs {
  public:
    /// Captures the current state of `graph` and computes initial
    /// levels from `root`. The graph must outlive this object.
    IncrementalBfs(const DynamicGraph& graph, vertex_t root);

    /// Notify that {u, v} has been inserted into the graph (call after
    /// DynamicGraph::add_edge). Returns the number of vertices whose
    /// level changed.
    std::size_t on_edge_added(vertex_t u, vertex_t v);

    /// Notify that a vertex was appended (add_vertex); it starts
    /// unreached.
    void on_vertex_added();

    /// Recomputes from scratch (after deletions or bulk edits).
    void rebuild();

    [[nodiscard]] vertex_t root() const noexcept { return root_; }
    [[nodiscard]] level_t level(vertex_t v) const { return level_.at(v); }
    [[nodiscard]] vertex_t parent(vertex_t v) const { return parent_.at(v); }
    [[nodiscard]] bool reached(vertex_t v) const {
        return level_.at(v) != kInvalidLevel;
    }
    [[nodiscard]] std::uint64_t reached_count() const noexcept {
        return reached_;
    }
    [[nodiscard]] const std::vector<level_t>& levels() const noexcept {
        return level_;
    }

  private:
    void bfs_wave(std::vector<vertex_t>& queue, std::size_t& changed);

    const DynamicGraph& graph_;
    vertex_t root_;
    std::vector<level_t> level_;
    std::vector<vertex_t> parent_;
    std::uint64_t reached_ = 0;
};

}  // namespace sge
