#pragma once

#include <atomic>
#include <cstddef>
#include <cstring>

#include "graph/types.hpp"
#include "runtime/aligned_buffer.hpp"
#include "runtime/cacheline.hpp"

namespace sge {

/// Level frontier: a flat vertex array with two atomic cursors.
///
/// This is the modern realization of the paper's LockedEnqueue /
/// LockedDequeue queues: producers *reserve* a contiguous slice with one
/// fetch_add and memcpy their batch in (the batching optimization of
/// Section III applied to the local queues); consumers *claim* scan
/// chunks with one fetch_add. Because every vertex enters a frontier at
/// most once per BFS (the bitmap guarantees it), capacity == n always
/// suffices and the array never reallocates mid-level.
class FrontierQueue {
  public:
    FrontierQueue() = default;

    explicit FrontierQueue(std::size_t capacity) : slots_(capacity) {
        push_->store(0, std::memory_order_relaxed);
        scan_->store(0, std::memory_order_relaxed);
    }

    // Movable so engines can build std::vector<FrontierQueue> per
    // socket; moves must be externally synchronised (setup time only) —
    // the atomic cursors transfer by value.
    FrontierQueue(FrontierQueue&& other) noexcept
        : slots_(std::move(other.slots_)) {
        push_->store(other.push_->load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
        scan_->store(other.scan_->load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    }
    FrontierQueue& operator=(FrontierQueue&& other) noexcept {
        slots_ = std::move(other.slots_);
        push_->store(other.push_->load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
        scan_->store(other.scan_->load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
        return *this;
    }

    /// Producer: appends `count` vertices. Safe from any thread.
    void push_batch(const vertex_t* items, std::size_t count) noexcept {
        const std::size_t base = push_->fetch_add(count, std::memory_order_acq_rel);
        std::memcpy(slots_.data() + base, items, count * sizeof(vertex_t));
    }

    /// Producer: appends one vertex (the unbatched path of Algorithm 1).
    void push_one(vertex_t v) noexcept { push_batch(&v, 1); }

    /// Consumer: claims the next scan chunk of up to `chunk` vertices.
    /// Returns false when the queue is exhausted. Safe from any thread,
    /// but only meaningful once producers for this level are done
    /// (level-synchronous usage) or for work that was fully enqueued
    /// before scanning begins (how the BFS uses the current queue).
    bool next_chunk(std::size_t chunk, std::size_t& begin, std::size_t& end) noexcept {
        const std::size_t limit = push_->load(std::memory_order_acquire);
        // Cheap pre-check so an exhausted queue does not keep advancing
        // the cursor (keeps reset-free reuse sane and saves the RMW in
        // the common "drained" case). Racing scanners may still each
        // overshoot by one fetch_add, which reset() rewinds.
        if (scan_->load(std::memory_order_relaxed) >= limit) return false;
        const std::size_t base = scan_->fetch_add(chunk, std::memory_order_acq_rel);
        if (base >= limit) return false;
        begin = base;
        end = base + chunk < limit ? base + chunk : limit;
        return true;
    }

    [[nodiscard]] const vertex_t* data() const noexcept { return slots_.data(); }
    [[nodiscard]] vertex_t operator[](std::size_t i) const noexcept {
        return slots_[i];
    }

    /// Mutable slot storage — used by the workspace's first-touch pass so
    /// each socket's workers fault in their own slice of the queue pages.
    [[nodiscard]] vertex_t* slots_mut() noexcept { return slots_.data(); }

    /// Number of vertices enqueued. Exact once producers are quiescent.
    [[nodiscard]] std::size_t size() const noexcept {
        return push_->load(std::memory_order_acquire);
    }

    [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }

    /// Publishes the queue's size after an externally-synchronised
    /// compact fill (FrontierCompactor: workers memcpy disjoint segments
    /// into slots_mut(), a barrier quiesces them, then one thread
    /// publishes the total). Release pairs with size()'s acquire so
    /// scanners see the filled slots. Not for concurrent producers —
    /// that is what push_batch's reservation is for.
    void set_size(std::size_t count) noexcept {
        push_->store(count, std::memory_order_release);
    }

    /// Empties the queue and rewinds the scan cursor for the next level.
    /// Not thread-safe; call between barriers.
    void reset() noexcept {
        push_->store(0, std::memory_order_relaxed);
        scan_->store(0, std::memory_order_relaxed);
    }

  private:
    AlignedBuffer<vertex_t> slots_;
    CachePadded<std::atomic<std::size_t>> push_{};
    CachePadded<std::atomic<std::size_t>> scan_{};
};

/// Local staging buffer a worker fills before paying one atomic
/// reservation (FrontierQueue) or one lock acquisition (Channel) — the
/// batching optimization of Section III. Capacity is a runtime knob
/// (BfsOptions::batch_size).
template <typename T>
class LocalBatch {
  public:
    explicit LocalBatch(std::size_t capacity)
        : items_(capacity < 1 ? 1 : capacity) {}

    /// Appends one item; returns true when the buffer just became full
    /// and must be flushed. Pushing into a full buffer is a bug in the
    /// caller (always flush on `true`).
    bool push(T v) noexcept {
        items_[size_++] = v;
        return size_ == items_.size();
    }

    [[nodiscard]] const T* data() const noexcept { return items_.data(); }
    [[nodiscard]] std::size_t size() const noexcept { return size_; }
    [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
    void clear() noexcept { size_ = 0; }

    [[nodiscard]] std::size_t capacity() const noexcept { return items_.size(); }

  private:
    AlignedBuffer<T> items_;
    std::size_t size_ = 0;
};

}  // namespace sge
