#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "core/frontier.hpp"

namespace sge {
namespace {

TEST(FrontierQueue, PushBatchAndScan) {
    FrontierQueue q(100);
    const vertex_t items[] = {5, 6, 7, 8};
    q.push_batch(items, 4);
    q.push_one(9);
    EXPECT_EQ(q.size(), 5u);

    std::vector<vertex_t> got;
    std::size_t b = 0;
    std::size_t e = 0;
    while (q.next_chunk(2, b, e))
        for (std::size_t i = b; i < e; ++i) got.push_back(q[i]);
    EXPECT_EQ(got, (std::vector<vertex_t>{5, 6, 7, 8, 9}));
}

TEST(FrontierQueue, ResetRewindsBothCursors) {
    FrontierQueue q(10);
    q.push_one(1);
    std::size_t b = 0;
    std::size_t e = 0;
    EXPECT_TRUE(q.next_chunk(4, b, e));
    q.reset();
    EXPECT_EQ(q.size(), 0u);
    EXPECT_FALSE(q.next_chunk(4, b, e));
    q.push_one(2);
    EXPECT_TRUE(q.next_chunk(4, b, e));
    EXPECT_EQ(q[b], 2u);
}

TEST(FrontierQueue, ChunkLargerThanContent) {
    FrontierQueue q(10);
    q.push_one(42);
    std::size_t b = 0;
    std::size_t e = 0;
    ASSERT_TRUE(q.next_chunk(100, b, e));
    EXPECT_EQ(b, 0u);
    EXPECT_EQ(e, 1u);
    EXPECT_FALSE(q.next_chunk(100, b, e));
}

TEST(FrontierQueue, ConcurrentProducersLoseNothing) {
    constexpr int kThreads = 8;
    constexpr vertex_t kPerThread = 10000;
    FrontierQueue q(kThreads * kPerThread);

    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&q, t] {
            vertex_t batch[32];
            std::size_t fill = 0;
            for (vertex_t i = 0; i < kPerThread; ++i) {
                batch[fill++] = static_cast<vertex_t>(t) * kPerThread + i;
                if (fill == 32) {
                    q.push_batch(batch, fill);
                    fill = 0;
                }
            }
            if (fill) q.push_batch(batch, fill);
        });
    }
    for (auto& th : threads) th.join();

    ASSERT_EQ(q.size(), static_cast<std::size_t>(kThreads) * kPerThread);
    std::vector<vertex_t> all(q.data(), q.data() + q.size());
    std::sort(all.begin(), all.end());
    for (std::size_t i = 0; i < all.size(); ++i) ASSERT_EQ(all[i], i);
}

TEST(FrontierQueue, ConcurrentScannersPartitionTheWork) {
    FrontierQueue q(50000);
    for (vertex_t i = 0; i < 50000; ++i) q.push_one(i);

    constexpr int kThreads = 6;
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> count{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            std::uint64_t local_sum = 0;
            std::uint64_t local_count = 0;
            std::size_t b = 0;
            std::size_t e = 0;
            while (q.next_chunk(128, b, e)) {
                for (std::size_t i = b; i < e; ++i) {
                    local_sum += q[i];
                    ++local_count;
                }
            }
            sum.fetch_add(local_sum);
            count.fetch_add(local_count);
        });
    }
    for (auto& th : threads) th.join();

    EXPECT_EQ(count.load(), 50000u);  // every element claimed exactly once
    EXPECT_EQ(sum.load(), 50000ULL * 49999 / 2);
}

TEST(LocalBatch, SignalsFullAtCapacity) {
    LocalBatch<vertex_t> batch(3);
    EXPECT_FALSE(batch.push(1));
    EXPECT_FALSE(batch.push(2));
    EXPECT_TRUE(batch.push(3));
    EXPECT_EQ(batch.size(), 3u);
    batch.clear();
    EXPECT_TRUE(batch.empty());
    EXPECT_FALSE(batch.push(4));
    EXPECT_EQ(batch.data()[0], 4u);
}

TEST(LocalBatch, ZeroCapacityClampsToOne) {
    LocalBatch<vertex_t> batch(0);
    EXPECT_EQ(batch.capacity(), 1u);
    EXPECT_TRUE(batch.push(7));  // immediately full
}

}  // namespace
}  // namespace sge
