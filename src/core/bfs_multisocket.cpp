#include <atomic>
#include <cassert>

#include "concurrency/channel.hpp"
#include "concurrency/spin_barrier.hpp"
#include "concurrency/versioned_bitmap.hpp"
#include "core/bfs_workspace.hpp"
#include "core/engine_common.hpp"
#include "core/frontier.hpp"
#include "graph/csr_compressed.hpp"
#include "graph/paged_graph.hpp"
#include "graph/partition.hpp"
#include "runtime/prefetch.hpp"
#include "runtime/timer.hpp"

namespace sge::detail {

namespace {

/// Algorithm 3: the paper's full multi-socket BFS.
///
/// Vertices are block-partitioned across sockets; each socket owns the
/// slice of the parent array and bitmap for its vertices plus a private
/// current/next queue pair, so the random-access hot data never crosses
/// the coherence boundary. A level runs in two phases:
///
///   Phase 1 — each socket's workers scan their CQ. A neighbour owned
///   locally goes through the bitmap double-check straight into the
///   local NQ; a remote neighbour is *not* touched (its bitmap bit lives
///   on another socket) — the (child, parent) tuple is batched into the
///   owner's channel instead.
///
///   Phase 2 — after a barrier, each socket drains its own channel,
///   applying the same double-checked visit to tuples other sockets
///   sent. Duplicates (multiple senders discovering one vertex) resolve
///   at the single atomic on the owner's bitmap.
///
/// Channels are FastForward rings ticket-locked per side with batched
/// access (Section III: ~30 ns normalized cost per remote vertex). All
/// arenas — queues, channels, schedulers, per-thread staging — live in
/// the workspace and were first-touched by each socket's own pinned
/// workers, so back-to-back queries pay no allocation or page-placement
/// cost.
template <class Graph>
void bfs_multisocket_impl(const Graph& g, vertex_t root,
                          const BfsOptions& options, ThreadTeam& team,
                          BfsWorkspace& ws, BfsResult& result) {
    check_root(g, root);
    const vertex_t n = g.num_vertices();
    const int threads = team.size();
    const int sockets = team.sockets_used();
    const std::size_t chunk = options.chunk_size < 1 ? 1 : options.chunk_size;
    const SocketPartition partition(n, sockets);

    reset_result(result, n, options.compute_levels);

    VersionedBitmap& bitmap = ws.visited;
    // Per-socket queue pairs (queues[phase][socket]), channels and
    // schedulers — workspace-owned, NUMA-placed at prepare() time.
    std::vector<FrontierQueue>* const queues = ws.socket_queues;
    auto& channels = ws.channels;
    auto& wqs = ws.socket_wqs;
    const std::vector<int>& rank_in_socket = ws.rank_in_socket;
    // Compact frontier generation: each worker stages both phases'
    // local discoveries in its private buffer and copies them into its
    // *socket's* NQ at a per-socket prefix offset (the compactor groups
    // claimants by socket) — no queue atomics. Channel traffic is
    // untouched: tuples still batch through the rings; only the NQ
    // append changes (docs/ALGORITHMS.md "Frontier generation").
    const bool compact = options.frontier_gen == FrontierGen::kCompact;
    FrontierCompactor& fc = ws.compactor;
    SpinBarrier barrier(threads);

    struct Shared {
        std::atomic<std::uint64_t> visited{0};
        std::atomic<std::uint64_t> edges{0};
        int current = 0;
        bool done = false;
        bool cancelled = false;  // written by tid 0 between barriers
        // Atomic so the watchdog may snapshot it mid-run.
        std::atomic<std::uint32_t> levels_run{0};
    } shared;

    LevelAccumLog& stats = ws.accum;
    acquire_level_slot(stats, 0).frontier_size = 1;

    vertex_t* const parent = result.parent.data();
    level_t* const level = options.compute_levels ? result.level.data() : nullptr;
    const bool double_check = options.bitmap_double_check;
    const bool collect = options.collect_stats;
    SpanRecorder spans(threads, collect);

    // Diagnostic snapshot for the watchdog: level reached plus, per
    // socket, both queue depths and the channel's pushed/popped totals
    // (all read from atomics; a momentary view, not a quiescent one).
    LevelWatchdog watchdog(resolve_watchdog_seconds(options), barrier, [&] {
        std::string diag =
            "level=" +
            std::to_string(shared.levels_run.load(std::memory_order_relaxed)) +
            " visited=" +
            std::to_string(shared.visited.load(std::memory_order_relaxed));
        for (int s = 0; s < sockets; ++s) {
            diag += "; socket " + std::to_string(s) +
                    ": q0=" + std::to_string(queues[0][s].size()) +
                    " q1=" + std::to_string(queues[1][s].size()) +
                    " channel pushed=" + std::to_string(channels[s]->pushed()) +
                    " popped=" + std::to_string(channels[s]->popped());
        }
        return diag;
    });

#ifndef NDEBUG
    const std::uint64_t allocs_before =
        aligned_alloc_count().load(std::memory_order_relaxed);
#endif
    WallTimer timer;
    team.run([&](int tid) {
        const int my = team.socket_of(tid);
        Channel<std::uint64_t, kEmptyVisit>& my_channel = *channels[my];

        // No init pass: the workspace's epoch bump already cleared the
        // bitmap; unreached parent/level slots are filled post-run.
        if (tid == 0) {
            bitmap.test_and_set(root);
            parent[root] = root;
            if (level != nullptr) level[root] = 0;
            queues[0][partition.socket_of(root)].push_one(root);
            shared.visited.fetch_add(1, std::memory_order_relaxed);
            for (int s = 0; s < sockets; ++s)
                plan_frontier(*wqs[s], queues[0][s].data(), queues[0][s].size(),
                              g, options.schedule, chunk);
        }
        if (!barrier.arrive_and_wait()) return;

        BfsWorkspace::ThreadScratch& scratch =
            ws.scratch[static_cast<std::size_t>(tid)];
        LocalBatch<vertex_t>& staged = scratch.staged;
        std::vector<LocalBatch<std::uint64_t>>& remote = scratch.remote;
        AlignedBuffer<std::uint64_t>& drain = scratch.drain;
        vertex_t* const cbuf = compact ? fc.buffer(tid) : nullptr;
        std::size_t staged_count = 0;  // compact-mode discoveries per level

        // Visit `v` (owned by this socket) with parent `u`; enqueue into
        // `nq` on first visit. Shared by both phases.
        const auto visit_local = [&](vertex_t v, vertex_t u, level_t next_level,
                                     FrontierQueue& nq, ThreadCounters& counters,
                                     std::uint64_t& discovered) {
            ++counters.bitmap_checks;
            if (double_check && bitmap.test(v)) {
                counters.count_skip();
                return;
            }
            ++counters.atomic_ops;
            if (bitmap.test_and_set(v)) return;
            counters.count_win();
            parent[v] = u;
            if (level != nullptr) level[v] = next_level;
            ++discovered;
            if (compact) {
                cbuf[staged_count++] = v;  // plain store
            } else if (staged.push(v)) {
                nq.push_batch(staged.data(), staged.size());
                staged.clear();
            }
        };

        level_t depth = 0;
        std::uint64_t total_edges = 0;
        std::uint64_t discovered = 0;
        WallTimer level_timer;  // tid 0 stamps per-level wall time
        for (;;) {
            const std::uint64_t span_start = spans.now(timer);
            const int cur = shared.current;
            FrontierQueue& cq = queues[cur][my];
            FrontierQueue& nq = queues[1 - cur][my];
            ThreadCounters counters;
            // Deque slots never relocate, so the reference stays valid
            // across tid 0's acquire between the barriers.
            LevelAccum& slot = stats[depth];

            // ---- Phase 1: scan this socket's frontier. ----
            std::size_t begin = 0;
            std::size_t end = 0;
            staged_count = 0;
            WorkQueue::Claim cl;
            while ((cl = wqs[my]->claim(rank_in_socket[tid], begin, end)) !=
                   WorkQueue::Claim::kNone) {
                counters.count_chunk(cl == WorkQueue::Claim::kStolen);
                for (std::size_t i = begin; i < end; ++i) {
                    const vertex_t u = cq[i];
                    if (i + 1 < end) g.prefetch_adjacency(cq[i + 1]);
                    scan_adjacency(
                        g, u, counters, [](vertex_t) {},
                        [&](vertex_t v) {
                            const int s = partition.socket_of(v);
                            if (s == my) {
                                visit_local(v, u, depth + 1, nq, counters,
                                            discovered);
                                return;
                            }
                            // Optional ablation: peek at the owner's bit
                            // before shipping. Costs remote coherence
                            // traffic (why the paper doesn't), saves
                            // channel volume for already-visited hubs.
                            if (options.remote_sender_filter) {
                                ++counters.bitmap_checks;
                                if (bitmap.test(v)) {
                                    counters.count_skip();
                                    return;
                                }
                            }
                            ++counters.remote_tuples;
                            if (remote[s].push(pack_visit(v, u))) {
                                counters.count_batch_push(remote[s].size(),
                                                          remote[s].capacity());
                                channels[s]->push_batch(remote[s].data(),
                                                        remote[s].size());
                                remote[s].clear();
                            }
                        });
                }
            }
            for (int s = 0; s < sockets; ++s) {
                if (!remote[s].empty()) {
                    counters.count_batch_push(remote[s].size(),
                                              remote[s].capacity());
                    channels[s]->push_batch(remote[s].data(), remote[s].size());
                    remote[s].clear();
                }
            }
            if (!staged.empty()) {
                nq.push_batch(staged.data(), staged.size());
                staged.clear();
            }
            if (!timed_wait(barrier, slot, collect)) return;

            // ---- Phase 2: drain tuples other sockets sent us. ----
            for (;;) {
                const std::size_t k = my_channel.pop_batch(drain.data(), drain.size());
                if (k == 0) break;
                counters.count_batch_pop(k);
                for (std::size_t j = 0; j < k; ++j)
                    visit_local(visit_child(drain[j]), visit_parent(drain[j]),
                                depth + 1, nq, counters, discovered);
            }
            // Producers went quiescent at the phase-1 barrier, so an
            // empty pop here means every push this level — including
            // each sender's final partial batch — has been consumed. A
            // leftover tuple would be dropped silently (a missing tree
            // edge), so fail loudly in debug builds.
            assert(my_channel.drained());
            if (compact) {
                fc.publish(tid, staged_count);
            } else if (!staged.empty()) {
                nq.push_batch(staged.data(), staged.size());
                staged.clear();
            }
            total_edges += counters.edges_scanned;
            counters.flush_into(slot);
            if (!timed_wait(barrier, slot, collect)) return;

            if (compact) {
                // Both phases' discoveries are published: copy each
                // worker's segment into its socket's NQ at the socket-
                // group prefix offset, then one more barrier so tid 0's
                // set_size sees every segment.
                compact_copy_out(fc, tid, nq.slots_mut(), slot);
                if (!timed_wait(barrier, slot, collect)) return;
            }

            if (tid == 0) {
                slot.seconds = level_timer.seconds();
                level_timer.reset();
                std::uint64_t next_frontier = 0;
                for (int s = 0; s < sockets; ++s) {
                    queues[cur][s].reset();
                    if (compact)
                        queues[1 - cur][s].set_size(fc.group_total(s));
                    next_frontier += queues[1 - cur][s].size();
                }
                shared.current = 1 - cur;
                shared.done = next_frontier == 0;
                shared.levels_run.fetch_add(1, std::memory_order_relaxed);
                if (!shared.done && poll_cancel(options)) {
                    shared.cancelled = true;
                    shared.done = true;
                }
                if (!shared.done) {
                    acquire_level_slot(stats, depth + 1).frontier_size =
                        next_frontier;
                    for (int s = 0; s < sockets; ++s)
                        plan_frontier(*wqs[s], queues[1 - cur][s].data(),
                                      queues[1 - cur][s].size(), g,
                                      options.schedule, chunk);
                    // Per-socket queues are handed over one by one; the
                    // prefetcher appends unprocessed same-level parts.
                    for (int s = 0; s < sockets; ++s)
                        prefetch_next_frontier(g, queues[1 - cur][s].data(),
                                               queues[1 - cur][s].size());
                }
            }
            if (!timed_wait(barrier, slot, collect)) return;
            spans.record(tid, depth, span_start, spans.now(timer));
            if (shared.done) break;
            ++depth;
        }

        // Unreached sentinels for this socket's slice (replaces the old
        // pre-init pass; writes only unvisited slots).
        {
            const auto [lo, hi] = partition.range(my);
            const auto [b, e] = split_range(
                hi - lo, ws.socket_threads[static_cast<std::size_t>(my)],
                rank_in_socket[static_cast<std::size_t>(tid)]);
            fill_unreached(bitmap, lo + b, lo + e, parent, level);
        }

        shared.edges.fetch_add(total_edges, std::memory_order_relaxed);
        shared.visited.fetch_add(discovered, std::memory_order_relaxed);
    }, &barrier);
#ifndef NDEBUG
    // A prepared workspace makes the traversal allocation-free.
    assert(aligned_alloc_count().load(std::memory_order_relaxed) ==
           allocs_before);
#endif
    const std::uint32_t levels = shared.levels_run.load(std::memory_order_relaxed);
    finish_watchdog(watchdog, "bfs_multisocket", levels,
                    shared.visited.load(std::memory_order_relaxed));
    if (shared.cancelled)
        throw_cancelled("bfs_multisocket", levels,
                        shared.visited.load(std::memory_order_relaxed));
    result.seconds = timer.seconds();
    spans.collect_into(result);

    result.vertices_visited = shared.visited.load(std::memory_order_relaxed);
    result.edges_traversed = shared.edges.load(std::memory_order_relaxed);
    result.num_levels = levels;
    if (options.collect_stats) copy_level_stats(result, stats, levels);
}

}  // namespace

void bfs_multisocket(const CsrGraph& g, vertex_t root,
                     const BfsOptions& options, ThreadTeam& team,
                     BfsWorkspace& ws, BfsResult& result) {
    bfs_multisocket_impl(g, root, options, team, ws, result);
}

void bfs_multisocket(const CompressedCsrGraph& g, vertex_t root,
                     const BfsOptions& options, ThreadTeam& team,
                     BfsWorkspace& ws, BfsResult& result) {
    bfs_multisocket_impl(g, root, options, team, ws, result);
}

void bfs_multisocket(const PagedGraph& g, vertex_t root,
                     const BfsOptions& options, ThreadTeam& team,
                     BfsWorkspace& ws, BfsResult& result) {
    bfs_multisocket_impl(g, root, options, team, ws, result);
}

}  // namespace sge::detail
