// Ablation bench: frontier scheduling policies (BfsOptions::schedule).
//
// The load-balance experiment behind docs/PERF_MODEL.md "Load balance":
// on an emulated 4-socket machine, sweep static / edge_weighted /
// stealing over the parallel engines on the paper's uniform and R-MAT
// workloads, and report
//
//   * the processing rate (the paper's metric),
//   * summed barrier_wait_ns — time threads idled at level barriers,
//     the imbalance a vertex-count split leaves behind on skewed
//     frontiers, and
//   * scheduler counters: chunks claimed / stolen and the per-level
//     max-thread-edges spread versus the ideal edges/threads share.
//
// With SGE_BENCH_JSON set the same cells land in
// BENCH_ablation_schedule.json (policy encoded 0=static,
// 1=edge_weighted, 2=stealing); CI feeds that to check_bench_json.py
// --compare to keep edge_weighted from regressing against static.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "report.hpp"

namespace {

using namespace sge;
using namespace sge::bench;

constexpr int kThreads = 16;
constexpr int kRuns = 3;

const SchedulePolicy kPolicies[] = {SchedulePolicy::kStatic,
                                    SchedulePolicy::kEdgeWeighted,
                                    SchedulePolicy::kStealing};

int policy_code(SchedulePolicy p) {
    return p == SchedulePolicy::kStatic       ? 0
           : p == SchedulePolicy::kEdgeWeighted ? 1
                                                : 2;
}

struct Cell {
    double rate = 0.0;            // best edges/second over timed runs
    double barrier_ns = 0.0;      // summed barrier_wait_ns, min over runs
    double chunks_claimed = 0.0;  // from the min-barrier run
    double chunks_stolen = 0.0;
    double max_thread_edges = 0.0;
    double spread = 0.0;  // max_thread_edges / (edges / threads), >= 1
};

/// Runs one (engine, policy) configuration: warmup + kRuns timed
/// traversals. Rate is the best run; the barrier/chunk counters come
/// from the run with the least summed barrier wait (the least
/// scheduling-noise view of the imbalance the policy leaves behind).
Cell measure(const CsrGraph& g, BfsEngine engine, SchedulePolicy policy,
             const Topology& topo) {
    BfsOptions options;
    options.engine = engine;
    options.threads = kThreads;
    options.topology = topo;
    options.schedule = policy;
    options.collect_stats = obs::enabled();
    BfsRunner runner(options);

    Xoshiro256 rng(99);
    const auto pick_root = [&] {
        vertex_t root;
        do {
            root = static_cast<vertex_t>(rng.next_below(g.num_vertices()));
        } while (g.degree(root) == 0);
        return root;
    };

    (void)runner.run(g, pick_root());  // warmup: page in the arrays
    Cell cell;
    double best_barrier = -1.0;
    for (int i = 0; i < kRuns; ++i) {
        const BfsResult r = runner.run(g, pick_root());
        if (r.edges_per_second() > cell.rate) cell.rate = r.edges_per_second();

        double barrier = 0.0;
        double claimed = 0.0;
        double stolen = 0.0;
        double max_edges = 0.0;
        double edges = 0.0;
        for (const BfsLevelStats& s : r.level_stats) {
            barrier += static_cast<double>(s.barrier_wait_ns);
            claimed += static_cast<double>(s.chunks_claimed);
            stolen += static_cast<double>(s.chunks_stolen);
            max_edges += static_cast<double>(s.max_thread_edges);
            edges += static_cast<double>(s.edges_scanned);
        }
        if (best_barrier < 0.0 || barrier < best_barrier) {
            best_barrier = barrier;
            cell.barrier_ns = barrier;
            cell.chunks_claimed = claimed;
            cell.chunks_stolen = stolen;
            cell.max_thread_edges = max_edges;
            cell.spread =
                edges > 0.0 ? max_edges / (edges / kThreads) : 0.0;
        }
    }
    return cell;
}

// ---------------------------------------------------------------------
// Deterministic plan-quality model.
//
// On a time-shared single-core CI host, wall-clock barrier waits mostly
// measure the OS scheduler, not the plan: with T runnable threads on one
// core, summed wait converges to (T-1) x level wall regardless of how
// well the chunks were cut. So alongside the measured numbers we model
// what barrier_wait_ns measures on real hardware: take the actual
// per-level frontiers of a traversal, cut them with each policy's real
// WorkQueue plan, and simulate dynamic claiming in edge units (threads
// claim chunks as they free up; zero claim cost, unit cost per edge).
// Modeled wait per level = sum over threads of (makespan - own work) —
// the straggler tail a policy leaves behind, reproducible on any host.
// ---------------------------------------------------------------------

/// Simulates shared-cursor dynamic claiming of `chunks` (edge weights)
/// by `claimants` equal-speed threads; appends each thread's total work
/// to `loads`.
void simulate_claims(const std::vector<std::uint64_t>& chunks, int claimants,
                     std::vector<double>& loads) {
    std::vector<double> load(static_cast<std::size_t>(claimants), 0.0);
    for (const std::uint64_t w : chunks) {
        auto it = std::min_element(load.begin(), load.end());
        *it += static_cast<double>(w);
    }
    loads.insert(loads.end(), load.begin(), load.end());
}

/// Modeled summed barrier wait (edge units) for one level under `policy`.
double modeled_level_wait(const CsrGraph& g,
                          const std::vector<vertex_t>& frontier,
                          SchedulePolicy policy, const Topology& topo) {
    std::vector<int> socket_of(static_cast<std::size_t>(kThreads));
    for (int t = 0; t < kThreads; ++t)
        socket_of[static_cast<std::size_t>(t)] = topo.socket_of_thread(t);
    WorkQueue wq(kThreads, socket_of);

    const auto weight = [&](std::size_t i) {
        return static_cast<std::uint64_t>(g.degree(frontier[i])) + 1;
    };
    if (policy == SchedulePolicy::kStatic)
        wq.plan_static(frontier.size(), 128);  // the default chunk_size
    else
        wq.plan_weighted(frontier.size(),
                         static_cast<std::size_t>(kThreads) * 16,
                         policy == SchedulePolicy::kStealing, weight);

    const auto chunk_edges = [&](std::size_t idx) {
        const auto [b, e] = wq.chunk_bounds(idx);
        std::uint64_t w = 0;
        for (std::size_t i = b; i < e; ++i) w += weight(i);
        return w;
    };

    std::vector<double> loads;
    if (!wq.owned()) {
        std::vector<std::uint64_t> chunks(wq.num_chunks());
        for (std::size_t c = 0; c < chunks.size(); ++c)
            chunks[c] = chunk_edges(c);
        simulate_claims(chunks, kThreads, loads);
    } else {
        // Stealing: an idle thread raids same-socket siblings at once,
        // so each socket behaves like a shared cursor over the union of
        // its members' dealt chunks; sockets never exchange work.
        const int sockets = topo.sockets_used(kThreads);
        for (int s = 0; s < sockets; ++s) {
            std::vector<std::uint64_t> chunks;
            int members = 0;
            for (int t = 0; t < kThreads; ++t) {
                if (socket_of[static_cast<std::size_t>(t)] != s) continue;
                ++members;
                const auto [first, last] = wq.claimant_range(t);
                for (std::size_t c = first; c < last; ++c)
                    chunks.push_back(chunk_edges(c));
            }
            if (members > 0) simulate_claims(chunks, members, loads);
        }
    }
    double makespan = 0.0;
    double total = 0.0;
    for (const double l : loads) {
        makespan = std::max(makespan, l);
        total += l;
    }
    return makespan * static_cast<double>(loads.size()) - total;
}

/// Runs one instrumented BFS to recover the level partition, then
/// models every policy's summed wait over the whole traversal.
void model_plan_quality(const char* workload, const CsrGraph& g,
                        const Topology& topo, BenchReport& report) {
    BfsOptions options;
    options.engine = BfsEngine::kBitmap;
    options.threads = kThreads;
    options.topology = topo;
    const BfsResult r = bfs(g, 0, options);

    level_t max_level = 0;
    for (const level_t l : r.level)
        if (l != kInvalidLevel) max_level = std::max(max_level, l);
    std::vector<std::vector<vertex_t>> levels(
        static_cast<std::size_t>(max_level) + 1);
    for (vertex_t v = 0; v < g.num_vertices(); ++v)
        if (r.level[v] != kInvalidLevel)
            levels[r.level[v]].push_back(v);

    std::printf("\nplan quality, %s (modeled wait in edge units; "
                "deterministic):\n", workload);
    Table table({"policy", "modeled wait", "vs static"});
    double base = 0.0;
    for (const SchedulePolicy policy : kPolicies) {
        double wait = 0.0;
        for (const auto& frontier : levels)
            if (!frontier.empty())
                wait += modeled_level_wait(g, frontier, policy, topo);
        if (policy == SchedulePolicy::kStatic) base = wait;
        table.add_row({to_string(policy), fmt("%.3g", wait),
                       policy == SchedulePolicy::kStatic
                           ? "-"
                           : fmt("%+.0f%%", 100.0 * (1.0 - wait / base))});
        report.add("modeled_" + std::string(workload),
                   {{"threads", kThreads}, {"policy", policy_code(policy)}},
                   {{"modeled_wait_edges", wait}});
    }
    table.print();
}

void sweep(const char* workload, const CsrGraph& g, const Topology& topo,
           BenchReport& report) {
    std::printf("\nworkload: %s (%u vertices, %llu arcs)\n", workload,
                g.num_vertices(),
                static_cast<unsigned long long>(g.num_edges()));

    const std::pair<BfsEngine, const char*> engines[] = {
        {BfsEngine::kBitmap, "bitmap"},
        {BfsEngine::kMultiSocket, "multisocket"},
        {BfsEngine::kHybrid, "hybrid"},
    };

    for (const auto& [engine, engine_name] : engines) {
        Table table({"policy", "rate", "barrier ms", "vs static", "chunks",
                     "stolen", "edge spread"});
        double static_barrier = 0.0;
        for (const SchedulePolicy policy : kPolicies) {
            const Cell cell = measure(g, engine, policy, topo);
            if (policy == SchedulePolicy::kStatic)
                static_barrier = cell.barrier_ns;
            const double reduction =
                static_barrier > 0.0
                    ? 100.0 * (1.0 - cell.barrier_ns / static_barrier)
                    : 0.0;
            table.add_row(
                {to_string(policy), fmt("%.1f ME/s", cell.rate / 1e6),
                 fmt("%.2f", cell.barrier_ns / 1e6),
                 policy == SchedulePolicy::kStatic ? "-"
                                                   : fmt("%+.0f%%", reduction),
                 fmt("%.0f", cell.chunks_claimed),
                 fmt("%.0f", cell.chunks_stolen),
                 cell.spread > 0.0 ? fmt("%.2fx", cell.spread) : "n/a"});

            report.add(std::string(engine_name) + "_" + workload,
                       {{"threads", kThreads},
                        {"policy", policy_code(policy)}},
                       {{"edges_per_second", cell.rate},
                        {"barrier_wait_ns", cell.barrier_ns},
                        {"chunks_claimed", cell.chunks_claimed},
                        {"chunks_stolen", cell.chunks_stolen},
                        {"max_thread_edges", cell.max_thread_edges},
                        {"edge_spread", cell.spread}});
        }
        std::printf("engine: %s\n", engine_name);
        table.print();
    }
}

}  // namespace

int main() {
    banner("Ablation: frontier scheduling (static / edge_weighted / stealing)",
           "load-balance model, docs/PERF_MODEL.md");

    // Four emulated sockets, 16 workers spread 4-per-socket: wide
    // enough that a single hub-heavy chunk visibly stalls a static
    // split, while both the per-socket scheduling of Algorithm 3 and
    // the intra-socket steal domains are exercised.
    const Topology topo = Topology::emulate(4, 2, 2);
    std::printf("topology: %s, %d threads, %d timed runs per cell\n",
                topo.describe().c_str(), kThreads, kRuns);
    if (!obs::enabled() || !obs::compiled_in())
        std::printf("note: barrier/chunk columns need an SGE_OBS build with "
                    "SGE_OBS != 0\n");

    BenchReport report("ablation_schedule", "load-balance ablation");
    report.set_topology(topo.describe());

    const std::uint64_t n = scaled(1 << 14);
    // Uniform: every vertex near mean arity — little for weighting to
    // fix; the interesting claim is that it costs nothing. R-MAT at
    // arity 16: heavy hubs, the imbalance the scheduler exists for.
    const CsrGraph uniform = uniform_graph(n, 8 * n);
    const CsrGraph rmat = rmat_graph(n, 16 * n);
    report.set_workload("uniform+rmat", n);

    sweep("uniform", uniform, topo, report);
    sweep("rmat", rmat, topo, report);
    model_plan_quality("uniform", uniform, topo, report);
    model_plan_quality("rmat", rmat, topo, report);

    report.write();
    return 0;
}
