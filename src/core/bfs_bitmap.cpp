#include <atomic>

#include "concurrency/atomic_bitmap.hpp"
#include "concurrency/spin_barrier.hpp"
#include "core/engine_common.hpp"
#include "core/frontier.hpp"
#include "runtime/prefetch.hpp"
#include "runtime/timer.hpp"

namespace sge::detail {

/// Algorithm 2: single-socket parallel BFS with the paper's first two
/// optimizations.
///
///  1. The visited set lives in a bitmap (1 bit/vertex), shrinking the
///     randomly-accessed working set 32x versus the parent array —
///     Figure 2 shows this buys >=4x in raw random-read rate.
///  2. Double-checked test-and-set: a plain load filters the vertices
///     that are already visited before paying the `lock or` (Figure 4:
///     in late levels nearly all checks are filtered). The bit may flip
///     between test and test_and_set, so the atomic still arbitrates the
///     winner; correctness never depends on the plain load.
///
/// Queue accesses are batched (chunked dequeue, local staging buffers)
/// so the shared cursors are touched once per chunk instead of once per
/// vertex.
BfsResult bfs_bitmap(const CsrGraph& g, vertex_t root, const BfsOptions& options,
                     ThreadTeam& team) {
    check_root(g, root);
    const vertex_t n = g.num_vertices();
    const int threads = team.size();
    const std::size_t chunk = options.chunk_size < 1 ? 1 : options.chunk_size;

    BfsResult result;
    result.parent.resize(n);
    if (options.compute_levels) result.level.resize(n);

    AtomicBitmap bitmap(n);
    FrontierQueue queues[2] = {FrontierQueue(n), FrontierQueue(n)};
    SpinBarrier barrier(threads);
    WorkQueue wq(threads, team_socket_map(team));

    struct Shared {
        std::atomic<std::uint64_t> visited{0};
        std::atomic<std::uint64_t> edges{0};
        int current = 0;
        bool done = false;
        // Atomic so the watchdog may snapshot it mid-run.
        std::atomic<std::uint32_t> levels_run{0};
    } shared;

    LevelAccumLog stats;
    stats.emplace_back();
    stats[0].frontier_size = 1;

    vertex_t* const parent = result.parent.data();
    level_t* const level = options.compute_levels ? result.level.data() : nullptr;
    const bool double_check = options.bitmap_double_check;
    const bool collect = options.collect_stats;
    SpanRecorder spans(threads, collect);

    LevelWatchdog watchdog(resolve_watchdog_seconds(options), barrier, [&] {
        return "level=" +
               std::to_string(shared.levels_run.load(std::memory_order_relaxed)) +
               " q0=" + std::to_string(queues[0].size()) +
               " q1=" + std::to_string(queues[1].size()) + " visited=" +
               std::to_string(shared.visited.load(std::memory_order_relaxed));
    });

    WallTimer timer;
    team.run([&](int tid) {
        const auto [init_begin, init_end] = split_range(n, threads, tid);
        for (std::size_t v = init_begin; v < init_end; ++v) {
            parent[v] = kInvalidVertex;
            if (level != nullptr) level[v] = kInvalidLevel;
        }
        if (!barrier.arrive_and_wait()) return;

        if (tid == 0) {
            bitmap.test_and_set(root);
            parent[root] = root;
            if (level != nullptr) level[root] = 0;
            queues[0].push_one(root);
            shared.visited.fetch_add(1, std::memory_order_relaxed);
            plan_frontier(wq, queues[0].data(), queues[0].size(), g,
                          options.schedule, chunk);
        }
        if (!barrier.arrive_and_wait()) return;

        LocalBatch<vertex_t> staged(options.batch_size);
        level_t depth = 0;
        std::uint64_t total_edges = 0;
        std::uint64_t discovered = 0;
        WallTimer level_timer;  // tid 0 stamps per-level wall time
        for (;;) {
            const std::uint64_t span_start = spans.now(timer);
            const int cur = shared.current;
            FrontierQueue& cq = queues[cur];
            FrontierQueue& nq = queues[1 - cur];
            ThreadCounters counters;
            // Deque slots never relocate, so the reference stays valid
            // across tid 0's emplace_back between the two barriers.
            LevelAccum& slot = stats[depth];

            std::size_t begin = 0;
            std::size_t end = 0;
            WorkQueue::Claim cl;
            while ((cl = wq.claim(tid, begin, end)) != WorkQueue::Claim::kNone) {
                counters.count_chunk(cl == WorkQueue::Claim::kStolen);
                for (std::size_t i = begin; i < end; ++i) {
                    const vertex_t u = cq[i];
                    // Keep the next vertex's adjacency metadata in
                    // flight while scanning this one (Section III's
                    // decoupling of computation and memory requests).
                    if (i + 1 < end)
                        prefetch_read(&g.offsets()[cq[i + 1]]);
                    const auto adj = g.neighbors(u);
                    counters.edges_scanned += adj.size();
                    for (const vertex_t v : adj) {
                        ++counters.bitmap_checks;
                        if (double_check && bitmap.test(v)) {
                            counters.count_skip();
                            continue;
                        }
                        ++counters.atomic_ops;
                        if (bitmap.test_and_set(v)) continue;
                        counters.count_win();
                        parent[v] = u;  // winner-only plain store
                        if (level != nullptr) level[v] = depth + 1;
                        ++discovered;
                        if (staged.push(v)) {
                            nq.push_batch(staged.data(), staged.size());
                            staged.clear();
                        }
                    }
                }
            }
            if (!staged.empty()) {
                nq.push_batch(staged.data(), staged.size());
                staged.clear();
            }
            total_edges += counters.edges_scanned;
            counters.flush_into(slot);
            if (!timed_wait(barrier, slot, collect)) return;

            if (tid == 0) {
                slot.seconds = level_timer.seconds();
                level_timer.reset();
                cq.reset();
                shared.current = 1 - cur;
                shared.done = nq.size() == 0;
                shared.levels_run.fetch_add(1, std::memory_order_relaxed);
                if (!shared.done) {
                    stats.emplace_back();
                    stats[depth + 1].frontier_size = nq.size();
                    plan_frontier(wq, nq.data(), nq.size(), g,
                                  options.schedule, chunk);
                }
            }
            if (!timed_wait(barrier, slot, collect)) return;
            spans.record(tid, depth, span_start, spans.now(timer));
            if (shared.done) break;
            ++depth;
        }

        shared.edges.fetch_add(total_edges, std::memory_order_relaxed);
        shared.visited.fetch_add(discovered, std::memory_order_relaxed);
    }, &barrier);
    finish_watchdog(watchdog, "bfs_bitmap");
    result.seconds = timer.seconds();
    spans.collect_into(result);

    const std::uint32_t levels = shared.levels_run.load(std::memory_order_relaxed);
    result.vertices_visited = shared.visited.load(std::memory_order_relaxed);
    result.edges_traversed = shared.edges.load(std::memory_order_relaxed);
    result.num_levels = levels;
    if (options.collect_stats) copy_level_stats(result, stats, levels);
    return result;
}

}  // namespace sge::detail
