#include "graph/reorder.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "graph/builder.hpp"

namespace sge {

std::vector<vertex_t> degree_descending_order(const CsrGraph& g) {
    const vertex_t n = g.num_vertices();
    std::vector<vertex_t> by_degree(n);
    std::iota(by_degree.begin(), by_degree.end(), vertex_t{0});
    // stable: equal-degree vertices keep id order (determinism).
    std::stable_sort(by_degree.begin(), by_degree.end(),
                     [&](vertex_t a, vertex_t b) {
                         return g.degree(a) > g.degree(b);
                     });
    std::vector<vertex_t> perm(n);
    for (vertex_t rank = 0; rank < n; ++rank) perm[by_degree[rank]] = rank;
    return perm;
}

std::vector<vertex_t> bfs_visit_order(const CsrGraph& g, vertex_t root) {
    const vertex_t n = g.num_vertices();
    if (root >= n) throw std::out_of_range("bfs_visit_order: root out of range");

    std::vector<vertex_t> perm(n, kInvalidVertex);
    std::vector<vertex_t> queue;
    queue.reserve(n);
    vertex_t next_id = 0;

    perm[root] = next_id++;
    queue.push_back(root);
    for (std::size_t head = 0; head < queue.size(); ++head) {
        for (const vertex_t w : g.neighbors(queue[head])) {
            if (perm[w] != kInvalidVertex) continue;
            perm[w] = next_id++;
            queue.push_back(w);
        }
    }
    // Unreached vertices: append in original id order.
    for (vertex_t v = 0; v < n; ++v)
        if (perm[v] == kInvalidVertex) perm[v] = next_id++;
    return perm;
}

CsrGraph apply_vertex_permutation(const CsrGraph& g,
                                  std::span<const vertex_t> perm) {
    const vertex_t n = g.num_vertices();
    if (perm.size() != n)
        throw std::invalid_argument(
            "apply_vertex_permutation: permutation size != num_vertices");
    std::vector<bool> hit(n, false);
    for (const vertex_t p : perm) {
        if (p >= n || hit[p])
            throw std::invalid_argument(
                "apply_vertex_permutation: not a permutation of [0, n)");
        hit[p] = true;
    }

    EdgeList edges(n);
    edges.reserve(static_cast<std::size_t>(g.num_edges()));
    for (vertex_t v = 0; v < n; ++v)
        for (const vertex_t w : g.neighbors(v)) edges.add(perm[v], perm[w]);

    // Arcs are copied one-for-one; don't re-symmetrize or dedupe.
    BuildOptions opts;
    opts.make_undirected = false;
    opts.remove_self_loops = false;
    opts.deduplicate = false;
    return csr_from_edges(edges, opts);
}

}  // namespace sge
