#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <set>

#include "analytics/label_propagation.hpp"
#include "gen/ssca2.hpp"
#include "gen/uniform.hpp"
#include "graph/builder.hpp"
#include "graph/io.hpp"
#include "test_util.hpp"

namespace sge {
namespace {

// ---------- label propagation ----------

TEST(LabelPropagation, TwoCliquesSeparate) {
    const CsrGraph g = test::two_cliques(8);
    const CommunityResult r = label_propagation(g);
    EXPECT_TRUE(r.converged);
    EXPECT_EQ(r.num_communities, 2u);
    for (vertex_t v = 1; v < 8; ++v)
        EXPECT_EQ(r.community[v], r.community[0]);
    for (vertex_t v = 9; v < 16; ++v)
        EXPECT_EQ(r.community[v], r.community[8]);
    EXPECT_NE(r.community[0], r.community[8]);
}

TEST(LabelPropagation, CliquesWithWeakBridge) {
    // Two K6 joined by a single edge: LP must keep them apart.
    EdgeList edges(12);
    for (vertex_t base : {vertex_t{0}, vertex_t{6}})
        for (vertex_t a = base; a < base + 6; ++a)
            for (vertex_t b = a + 1; b < base + 6; ++b) edges.add(a, b);
    edges.add(5, 6);  // the bridge
    const CsrGraph g = csr_from_edges(edges);
    const CommunityResult r = label_propagation(g);
    EXPECT_EQ(r.num_communities, 2u);
    EXPECT_NE(r.community[0], r.community[11]);
}

TEST(LabelPropagation, IsolatedVerticesKeepOwnCommunities) {
    const CsrGraph g = csr_from_edges(EdgeList(5));
    const CommunityResult r = label_propagation(g);
    std::set<std::uint32_t> distinct(r.community.begin(), r.community.end());
    EXPECT_EQ(distinct.size(), 5u);
}

TEST(LabelPropagation, CommunitiesNeverSpanComponents) {
    UniformParams params;
    params.num_vertices = 1000;
    params.degree = 2;  // several components
    const CsrGraph g = csr_from_edges(generate_uniform(params));
    const CommunityResult r = label_propagation(g);
    // Any edge's endpoints are in the same component; communities refine
    // components, so a community id must map to a single component.
    // Verify via: for every edge, either same community or not — but
    // crucially two vertices in different components never share one.
    // Cheap check: flood components and compare.
    std::vector<std::uint32_t> comp(g.num_vertices(), ~0u);
    std::uint32_t comp_count = 0;
    std::vector<vertex_t> stack;
    for (vertex_t seed = 0; seed < g.num_vertices(); ++seed) {
        if (comp[seed] != ~0u) continue;
        comp[seed] = comp_count;
        stack.push_back(seed);
        while (!stack.empty()) {
            const vertex_t u = stack.back();
            stack.pop_back();
            for (const vertex_t w : g.neighbors(u)) {
                if (comp[w] != ~0u) continue;
                comp[w] = comp_count;
                stack.push_back(w);
            }
        }
        ++comp_count;
    }
    std::map<std::uint32_t, std::uint32_t> community_component;
    for (vertex_t v = 0; v < g.num_vertices(); ++v) {
        const auto [it, inserted] =
            community_component.try_emplace(r.community[v], comp[v]);
        ASSERT_EQ(it->second, comp[v]) << "community spans components";
    }
    EXPECT_GE(r.num_communities, comp_count);
}

TEST(LabelPropagation, DeterministicPerSeed) {
    Ssca2Params params;
    params.num_vertices = 2000;
    params.seed = 4;
    const CsrGraph g = csr_from_edges(generate_ssca2(params));
    LabelPropagationOptions opts;
    opts.seed = 9;
    const CommunityResult a = label_propagation(g, opts);
    const CommunityResult b = label_propagation(g, opts);
    EXPECT_EQ(a.community, b.community);
    EXPECT_EQ(a.iterations, b.iterations);
}

TEST(LabelPropagation, FindsClusteredStructure) {
    // SSCA#2 is built from cliques: LP should find many communities,
    // far fewer than n, and they should be clique-ish (small).
    Ssca2Params params;
    params.num_vertices = 3000;
    params.max_clique_size = 10;
    const CsrGraph g = csr_from_edges(generate_ssca2(params));
    const CommunityResult r = label_propagation(g);
    EXPECT_GT(r.num_communities, 10u);
    EXPECT_LT(r.num_communities, g.num_vertices());
}

TEST(LabelPropagation, EmptyGraph) {
    const CommunityResult r = label_propagation(csr_from_edges(EdgeList(0)));
    EXPECT_TRUE(r.converged);
    EXPECT_EQ(r.num_communities, 0u);
}

// ---------- weighted I/O ----------

class WeightedIoTest : public ::testing::Test {
  protected:
    void SetUp() override {
        dir_ = std::filesystem::temp_directory_path() / "sge_wio_test";
        std::filesystem::create_directories(dir_);
    }
    void TearDown() override { std::filesystem::remove_all(dir_); }
    std::string path(const char* name) const { return (dir_ / name).string(); }
    std::filesystem::path dir_;
};

TEST_F(WeightedIoTest, RoundTrip) {
    UniformParams params;
    params.num_vertices = 800;
    params.degree = 5;
    const WeightedCsrGraph g = with_random_weights(
        csr_from_edges(generate_uniform(params)), 1, 99, 7);

    write_weighted_csr(g, path("w.csr"));
    const WeightedCsrGraph loaded = read_weighted_csr(path("w.csr"));
    EXPECT_TRUE(g.graph() == loaded.graph());
    ASSERT_EQ(g.all_weights().size(), loaded.all_weights().size());
    for (std::size_t e = 0; e < g.all_weights().size(); ++e)
        ASSERT_EQ(g.all_weights()[e], loaded.all_weights()[e]);
}

TEST_F(WeightedIoTest, RejectsUnweightedMagic) {
    const CsrGraph g = test::path_graph(5);
    write_csr(g, path("plain.csr"));
    EXPECT_THROW(read_weighted_csr(path("plain.csr")), std::runtime_error);
}

TEST_F(WeightedIoTest, RejectsTruncation) {
    const WeightedCsrGraph g =
        with_random_weights(test::path_graph(100), 1, 9, 1);
    write_weighted_csr(g, path("t.csr"));
    const auto full = std::filesystem::file_size(path("t.csr"));
    std::filesystem::resize_file(path("t.csr"), full - 8);
    EXPECT_THROW(read_weighted_csr(path("t.csr")), std::runtime_error);
}

}  // namespace
}  // namespace sge
