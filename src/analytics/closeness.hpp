#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "graph/csr_graph.hpp"
#include "runtime/topology.hpp"

namespace sge {

/// Closeness measurements for one source vertex.
struct ClosenessScore {
    vertex_t vertex = kInvalidVertex;
    /// Vertices reachable from `vertex` (including itself).
    std::uint64_t reachable = 0;
    /// Sum of hop distances to all reachable vertices.
    std::uint64_t distance_sum = 0;

    /// Classic closeness, component-local: (r-1) / sum of distances.
    [[nodiscard]] double closeness() const noexcept {
        return distance_sum == 0
                   ? 0.0
                   : static_cast<double>(reachable - 1) /
                         static_cast<double>(distance_sum);
    }

    /// Lin's index: (r-1)^2 / ((n-1) * sum) — comparable across
    /// components of different sizes.
    [[nodiscard]] double lin_index(std::uint64_t n) const noexcept {
        if (distance_sum == 0 || n < 2) return 0.0;
        const double r1 = static_cast<double>(reachable - 1);
        return r1 * r1 / (static_cast<double>(n - 1) *
                          static_cast<double>(distance_sum));
    }
};

struct ClosenessOptions {
    int threads = 1;
    std::optional<Topology> topology;
};

/// Closeness centrality of the given source vertices, computed with the
/// bit-parallel multi-source BFS (64 sources per traversal batch). One
/// of the "discover nodes ... with desired properties" analyses the
/// paper's introduction motivates; with MS-BFS underneath, scoring k
/// sources costs ~k/64 shared traversals instead of k full ones.
/// Duplicate sources are allowed and scored independently.
std::vector<ClosenessScore> closeness_centrality(
    const CsrGraph& g, std::span<const vertex_t> sources,
    const ClosenessOptions& options = {});

}  // namespace sge
