// Graph500-style benchmark runner: the community-standard protocol the
// paper's metric (traversed edges per second) fed into. Generates a
// Kronecker/R-MAT graph at a given scale, runs 64 BFS iterations from
// random roots, validates every tree, and reports the harmonic-mean
// TEPS — the official aggregate.
//
//   graph500_runner [scale] [edgefactor] [threads]

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/bfs.hpp"
#include "core/validate.hpp"
#include "gen/permute.hpp"
#include "gen/rmat.hpp"
#include "graph/builder.hpp"
#include "runtime/prng.hpp"
#include "runtime/stats.hpp"
#include "runtime/timer.hpp"

int main(int argc, char** argv) {
    using namespace sge;

    const std::uint32_t scale =
        argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 16;
    const std::uint64_t edgefactor =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 16;
    const int threads = argc > 3 ? std::atoi(argv[3]) : 8;
    constexpr int kSearches = 64;  // the Graph500 iteration count

    // --- kernel 0: generation + construction (timed, reported) ---
    WallTimer construction;
    RmatParams params;
    params.scale = scale;
    params.num_edges = edgefactor << scale;
    // Graph500's Kronecker parameters (A=.57, B=.19, C=.19, D=.05).
    params.a = 0.57;
    params.b = 0.19;
    params.c = 0.19;
    params.d = 0.05;
    params.seed = 2;
    EdgeList edges = generate_rmat(params);
    permute_vertices(edges, 3);
    const CsrGraph graph = csr_from_edges(edges);
    const double construction_seconds = construction.seconds();

    std::printf("SCALE %u, edgefactor %llu: %u vertices, %llu arcs\n", scale,
                static_cast<unsigned long long>(edgefactor),
                graph.num_vertices(),
                static_cast<unsigned long long>(graph.num_edges()));
    std::printf("construction_time: %.3f s\n\n", construction_seconds);

    // --- kernel 1: 64 BFS iterations from random non-isolated roots ---
    BfsOptions options;
    options.threads = threads;
    options.topology = Topology::nehalem_ep();
    BfsRunner runner(options);

    Xoshiro256 rng(17);
    std::vector<double> teps;
    teps.reserve(kSearches);
    int validated = 0;
    for (int i = 0; i < kSearches; ++i) {
        vertex_t root;
        do {
            root = static_cast<vertex_t>(rng.next_below(graph.num_vertices()));
        } while (graph.degree(root) == 0);

        const BfsResult r = runner.run(graph, root);
        teps.push_back(r.edges_per_second());

        const ValidationReport report =
            validate_bfs_tree(graph, root, r, /*check_edge_levels=*/i < 4);
        if (!report.ok) {
            std::printf("VALIDATION FAILED at search %d: %s\n", i,
                        report.error.c_str());
            return 1;
        }
        ++validated;
    }

    const SampleSummary summary = summarize(teps);
    std::printf("searches:            %d (all %d validated)\n", kSearches,
                validated);
    std::printf("min_TEPS:            %.3e\n", summary.min);
    std::printf("median_TEPS:         %.3e\n", summary.median);
    std::printf("max_TEPS:            %.3e\n", summary.max);
    std::printf("harmonic_mean_TEPS:  %.3e\n", harmonic_mean(teps));
    std::printf("stddev_TEPS:         %.3e\n", summary.stddev);
    return 0;
}
