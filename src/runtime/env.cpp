#include "runtime/env.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>

namespace sge {

std::optional<std::string> env_string(const char* name) {
    const char* v = std::getenv(name);
    if (v == nullptr || *v == '\0') return std::nullopt;
    return std::string(v);
}

std::int64_t env_int(const char* name, std::int64_t fallback) {
    auto s = env_string(name);
    if (!s) return fallback;
    char* end = nullptr;
    const long long v = std::strtoll(s->c_str(), &end, 10);
    if (end == s->c_str() || (end != nullptr && *end != '\0')) return fallback;
    return v;
}

bool env_bool(const char* name, bool fallback) {
    auto s = env_string(name);
    if (!s) return fallback;
    std::string lowered = *s;
    std::transform(lowered.begin(), lowered.end(), lowered.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (lowered == "1" || lowered == "true" || lowered == "yes" || lowered == "on")
        return true;
    if (lowered == "0" || lowered == "false" || lowered == "no" || lowered == "off")
        return false;
    return fallback;
}

int scale_shift() {
    if (env_bool("SGE_FULL", false)) return 8;  // 256x the CI defaults
    return static_cast<int>(env_int("SGE_SCALE", 0));
}

}  // namespace sge
