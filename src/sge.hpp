#pragma once

// Umbrella header: the full public API of sge ("scalable graph
// exploration"), the SC'10 multicore-BFS reproduction. Include
// individual module headers instead when compile time matters.

// runtime
#include "runtime/aligned_buffer.hpp"
#include "runtime/cache_info.hpp"
#include "runtime/cacheline.hpp"
#include "runtime/env.hpp"
#include "runtime/prefetch.hpp"
#include "runtime/prng.hpp"
#include "runtime/stats.hpp"
#include "runtime/timer.hpp"
#include "runtime/topology.hpp"

// concurrency
#include "concurrency/atomic_bitmap.hpp"
#include "concurrency/cancel_token.hpp"
#include "concurrency/channel.hpp"
#include "concurrency/spin_barrier.hpp"
#include "concurrency/spsc_ring.hpp"
#include "concurrency/thread_team.hpp"
#include "concurrency/ticket_lock.hpp"

// graph
#include "graph/builder.hpp"
#include "graph/csr_graph.hpp"
#include "graph/degree_stats.hpp"
#include "graph/edge_list.hpp"
#include "graph/gpartition.hpp"
#include "graph/io.hpp"
#include "graph/partition.hpp"
#include "graph/reorder.hpp"
#include "graph/subgraph.hpp"
#include "graph/types.hpp"
#include "graph/weighted.hpp"

// generators
#include "gen/grid.hpp"
#include "gen/permute.hpp"
#include "gen/rmat.hpp"
#include "gen/small_world.hpp"
#include "gen/ssca2.hpp"
#include "gen/uniform.hpp"

// core (the paper's contribution)
#include "core/bfs.hpp"
#include "core/msbfs.hpp"
#include "core/validate.hpp"

// query service (admission control, deadlines, MS-BFS batching)
#include "service/admission.hpp"
#include "service/graph_service.hpp"
#include "service/request.hpp"

// distributed-memory-style and streaming extensions
#include "dist/dist_bfs.hpp"
#include "stream/dynamic_graph.hpp"
#include "stream/incremental_bfs.hpp"

// probes (Figures 2-3)
#include "memprobe/atomic_probe.hpp"
#include "memprobe/memory_probe.hpp"

// analytics
#include "analytics/astar.hpp"
#include "analytics/betweenness.hpp"
#include "analytics/closeness.hpp"
#include "analytics/connected_components.hpp"
#include "analytics/diameter.hpp"
#include "analytics/kcore.hpp"
#include "analytics/label_propagation.hpp"
#include "analytics/level_histogram.hpp"
#include "analytics/neighborhood.hpp"
#include "analytics/pagerank.hpp"
#include "analytics/parallel_sssp.hpp"
#include "analytics/shortest_path.hpp"
#include "analytics/sssp.hpp"
#include "analytics/st_connectivity.hpp"
#include "analytics/triangles.hpp"
