#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "core/bfs.hpp"
#include "core/msbfs.hpp"
#include "core/validate.hpp"
#include "gen/permute.hpp"
#include "gen/rmat.hpp"
#include "gen/uniform.hpp"
#include "graph/builder.hpp"
#include "graph/csr_compressed.hpp"
#include "graph/io.hpp"
#include "runtime/obs.hpp"
#include "test_util.hpp"

namespace sge {
namespace {

using test::expect_equivalent;

// ---------------------------------------------------------------------
// Varint codec.
// ---------------------------------------------------------------------

TEST(CompressedCsrCodec, VarintRoundTripBoundaries) {
    const std::uint64_t cases[] = {0,
                                   1,
                                   0x7f,
                                   0x80,
                                   0x3fff,
                                   0x4000,
                                   (std::uint64_t{1} << 21) - 1,
                                   std::uint64_t{1} << 21,
                                   (std::uint64_t{1} << 28) - 1,
                                   std::uint64_t{1} << 28,
                                   (std::uint64_t{1} << 35) - 1};
    for (const std::uint64_t v : cases) {
        std::uint8_t buf[varint::kMaxBytes];
        const std::size_t written = varint::encode_u64(v, buf);
        EXPECT_EQ(written, varint::encoded_size_u64(v)) << v;
        EXPECT_LE(written, varint::kMaxBytes) << v;
        std::uint64_t decoded = 0;
        const std::uint8_t* end = varint::decode_u64(buf, decoded);
        EXPECT_EQ(decoded, v);
        EXPECT_EQ(static_cast<std::size_t>(end - buf), written) << v;
    }
}

TEST(CompressedCsrCodec, VarintRoundTripRandom) {
    std::mt19937_64 rng(42);
    for (int i = 0; i < 2000; ++i) {
        // Mix magnitudes: pure uniform u64 over 35 bits plus small values.
        const std::uint64_t v =
            rng() & ((std::uint64_t{1} << (1 + rng() % 35)) - 1);
        std::uint8_t buf[varint::kMaxBytes];
        const std::size_t written = varint::encode_u64(v, buf);
        std::uint64_t decoded = 0;
        varint::decode_u64(buf, decoded);
        ASSERT_EQ(decoded, v);
        ASSERT_EQ(written, varint::encoded_size_u64(v));
    }
}

TEST(CompressedCsrCodec, ZigZagRoundTrip) {
    const std::int64_t cases[] = {0, -1, 1, -2, 2, 1000, -1000,
                                  static_cast<std::int64_t>(kInvalidVertex),
                                  -static_cast<std::int64_t>(kInvalidVertex)};
    for (const std::int64_t v : cases)
        EXPECT_EQ(varint::zigzag_decode(varint::zigzag_encode(v)), v);
    // The mapping interleaves signs by magnitude so small deltas of
    // either sign stay one byte.
    EXPECT_EQ(varint::zigzag_encode(0), 0u);
    EXPECT_EQ(varint::zigzag_encode(-1), 1u);
    EXPECT_EQ(varint::zigzag_encode(1), 2u);
    EXPECT_EQ(varint::zigzag_encode(-2), 3u);
}

// ---------------------------------------------------------------------
// Encode / decode round-trips.
// ---------------------------------------------------------------------

void expect_round_trip(const CsrGraph& g) {
    const CompressedCsrGraph z = csr_compress(g);
    ASSERT_TRUE(z.well_formed());
    EXPECT_EQ(z.num_vertices(), g.num_vertices());
    EXPECT_EQ(z.num_edges(), g.num_edges());
    for (vertex_t v = 0; v < g.num_vertices(); ++v)
        ASSERT_EQ(z.degree(v), g.degree(v)) << "degree differs at " << v;
    EXPECT_TRUE(csr_decompress(z) == g);
}

TEST(CompressedCsrRoundTrip, EmptyGraph) {
    const CompressedCsrGraph z = csr_compress(csr_from_edges(EdgeList(0)));
    EXPECT_EQ(z.num_vertices(), 0u);
    EXPECT_EQ(z.num_edges(), 0u);
    EXPECT_EQ(z.bits_per_edge(), 0.0);
    EXPECT_TRUE(z.well_formed());
}

TEST(CompressedCsrRoundTrip, SingleVertexNoEdges) {
    expect_round_trip(csr_from_edges(EdgeList(1)));
}

TEST(CompressedCsrRoundTrip, IsolatedVerticesAmongEdges) {
    EdgeList edges(10);  // vertices 3..6 have no edges at all
    edges.add(0, 1);
    edges.add(1, 2);
    edges.add(7, 9);
    expect_round_trip(csr_from_edges(edges));
}

TEST(CompressedCsrRoundTrip, SelfLoopsKept) {
    // A self loop encodes a first delta of exactly 0 — the zig-zag zero.
    EdgeList edges(4);
    edges.add(0, 0);
    edges.add(1, 1);
    edges.add(1, 2);
    BuildOptions opts;
    opts.remove_self_loops = false;
    expect_round_trip(csr_from_edges(edges, opts));
}

TEST(CompressedCsrRoundTrip, DuplicateEdgesKept) {
    // Parallel edges survive a deduplicate=false build as gap-0 varints.
    EdgeList edges(3);
    edges.add(0, 1);
    edges.add(0, 1);
    edges.add(0, 2);
    edges.add(1, 2);
    edges.add(1, 2);
    BuildOptions opts;
    opts.deduplicate = false;
    const CsrGraph g = csr_from_edges(edges, opts);
    ASSERT_GT(g.num_edges(), csr_from_edges(edges).num_edges());
    expect_round_trip(g);
}

TEST(CompressedCsrRoundTrip, RandomizedFamilies) {
    for (const std::uint64_t seed : {1u, 7u, 19u}) {
        UniformParams up;
        up.num_vertices = 2048;
        up.degree = 6;
        up.seed = seed;
        expect_round_trip(csr_from_edges(generate_uniform(up)));

        RmatParams rp;
        rp.scale = 11;
        rp.num_edges = 1 << 14;
        rp.seed = seed;
        EdgeList edges = generate_rmat(rp);
        permute_vertices(edges, seed + 3);
        expect_round_trip(csr_from_edges(edges));
    }
}

TEST(CompressedCsrRoundTrip, NeighborsForEachMatchesPlainSpans) {
    UniformParams params;
    params.num_vertices = 512;
    params.degree = 5;
    params.seed = 9;
    const CsrGraph g = csr_from_edges(generate_uniform(params));
    const CompressedCsrGraph z = csr_compress(g);

    for (vertex_t v = 0; v < g.num_vertices(); ++v) {
        std::vector<vertex_t> decoded;
        const std::size_t bytes =
            z.neighbors_for_each(v, [&](vertex_t w) { decoded.push_back(w); });
        EXPECT_EQ(bytes, z.row_bytes(v)) << "row bytes mismatch at " << v;
        const auto adj = g.neighbors(v);
        ASSERT_EQ(decoded.size(), adj.size()) << v;
        for (std::size_t i = 0; i < adj.size(); ++i)
            ASSERT_EQ(decoded[i], adj[i]) << "vertex " << v << " slot " << i;
    }
}

TEST(CompressedCsrRoundTrip, UntilStopsEarlyAndChargesFewerBytes) {
    const CsrGraph g = test::star_graph(100);
    const CompressedCsrGraph z = csr_compress(g);
    ASSERT_GT(z.degree(0), 1u);

    // Stop after the first neighbour: charged bytes must undercut the
    // full row (the early exit's whole point on the bottom-up probe).
    int calls = 0;
    const std::size_t stopped = z.neighbors_for_each_until(0, [&](vertex_t) {
        ++calls;
        return false;
    });
    EXPECT_EQ(calls, 1);
    EXPECT_LT(stopped, z.row_bytes(0));

    // Never stopping walks the whole row.
    const std::size_t full =
        z.neighbors_for_each_until(0, [](vertex_t) { return true; });
    EXPECT_EQ(full, z.row_bytes(0));
}

TEST(CompressedCsrRoundTrip, CursorRunsConcatenateToAdjacency) {
    RmatParams params;
    params.scale = 10;
    params.num_edges = 1 << 13;
    params.seed = 4;
    const CsrGraph g = csr_from_edges(generate_rmat(params));
    const CompressedCsrGraph z = csr_compress(g);

    for (vertex_t v = 0; v < g.num_vertices(); ++v) {
        std::vector<vertex_t> decoded;
        CompressedCsrGraph::Cursor cursor(z, v);
        for (auto run = cursor.next_run(); !run.empty();
             run = cursor.next_run()) {
            EXPECT_LE(run.size(), CompressedCsrGraph::Cursor::kRunLength);
            decoded.insert(decoded.end(), run.begin(), run.end());
        }
        const auto adj = g.neighbors(v);
        ASSERT_EQ(decoded.size(), adj.size()) << v;
        EXPECT_TRUE(std::equal(decoded.begin(), decoded.end(), adj.begin()))
            << "cursor order differs at " << v;
    }
}

// ---------------------------------------------------------------------
// Input validation and structural hardening.
// ---------------------------------------------------------------------

TEST(CompressedCsrValidation, CompressRejectsUnsortedAdjacency) {
    // Hand-build a CSR whose only row is descending — the trusting raw
    // constructor accepts it; csr_compress must not.
    AlignedBuffer<edge_offset_t> offsets(3);
    offsets[0] = 0;
    offsets[1] = 2;
    offsets[2] = 2;
    AlignedBuffer<vertex_t> targets(2);
    targets[0] = 2;
    targets[1] = 1;  // out of order
    const CsrGraph g(std::move(offsets), std::move(targets));
    try {
        (void)csr_compress(g);
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
        // The diagnostic names the offending vertex.
        EXPECT_NE(std::string(e.what()).find("vertex 0"), std::string::npos)
            << e.what();
    }
}

TEST(CompressedCsrValidation, WellFormedRejectsNonMonotoneOffsets) {
    const CompressedCsrGraph good = csr_compress(test::path_graph(8));
    AlignedBuffer<edge_offset_t> offsets(good.offsets().size());
    std::copy(good.offsets().begin(), good.offsets().end(), offsets.data());
    offsets[2] = offsets[1] + 1000;  // overshoots the blob
    AlignedBuffer<vertex_t> degrees(good.degrees().size());
    std::copy(good.degrees().begin(), good.degrees().end(), degrees.data());
    AlignedBuffer<std::uint8_t> blob(good.blob().size());
    std::copy(good.blob().begin(), good.blob().end(), blob.data());
    const CompressedCsrGraph bad(std::move(offsets), std::move(degrees),
                                 std::move(blob));
    EXPECT_FALSE(bad.well_formed());
}

TEST(CompressedCsrValidation, WellFormedRejectsCorruptBlob) {
    const CompressedCsrGraph good = csr_compress(test::path_graph(8));
    ASSERT_TRUE(good.well_formed());
    // Setting a continuation bit makes a run decode past its byte range;
    // the bounds-checked validation decode must notice, never overrun.
    for (std::size_t i = 0; i < good.blob().size(); ++i) {
        AlignedBuffer<edge_offset_t> offsets(good.offsets().size());
        std::copy(good.offsets().begin(), good.offsets().end(),
                  offsets.data());
        AlignedBuffer<vertex_t> degrees(good.degrees().size());
        std::copy(good.degrees().begin(), good.degrees().end(),
                  degrees.data());
        AlignedBuffer<std::uint8_t> blob(good.blob().size());
        std::copy(good.blob().begin(), good.blob().end(), blob.data());
        blob[i] |= 0x80u;
        const CompressedCsrGraph bad(std::move(offsets), std::move(degrees),
                                     std::move(blob));
        EXPECT_FALSE(bad.well_formed()) << "continuation bit at blob[" << i
                                        << "] accepted";
    }
}

TEST(CompressedCsrValidation, WellFormedRejectsDegreeMismatch) {
    const CompressedCsrGraph good = csr_compress(test::path_graph(8));
    AlignedBuffer<edge_offset_t> offsets(good.offsets().size());
    std::copy(good.offsets().begin(), good.offsets().end(), offsets.data());
    AlignedBuffer<vertex_t> degrees(good.degrees().size());
    std::copy(good.degrees().begin(), good.degrees().end(), degrees.data());
    degrees[0] += 1;  // claims one more neighbour than the run encodes
    AlignedBuffer<std::uint8_t> blob(good.blob().size());
    std::copy(good.blob().begin(), good.blob().end(), blob.data());
    const CompressedCsrGraph bad(std::move(offsets), std::move(degrees),
                                 std::move(blob));
    EXPECT_FALSE(bad.well_formed());
}

// ---------------------------------------------------------------------
// Size accounting: the whole point of the backend.
// ---------------------------------------------------------------------

TEST(CompressedCsrSize, SkewedGraphCompressesUnder16BitsPerEdge) {
    // Natural (unpermuted) R-MAT order: ids cluster low, sorted gaps are
    // tiny, and the ISSUE's <= 16 bits/edge target must hold with the
    // offsets + degrees metadata included.
    RmatParams params;
    params.scale = 14;
    params.num_edges = std::uint64_t{16} << 14;
    params.seed = 1;
    const CsrGraph g = csr_from_edges(generate_rmat(params));
    const CompressedCsrGraph z = csr_compress(g);
    EXPECT_LE(z.bits_per_edge(), 16.0);
    EXPECT_LT(z.memory_bytes(), g.memory_bytes());
    EXPECT_EQ(static_cast<double>(z.memory_bytes()) * 8.0 /
                  static_cast<double>(z.num_edges()),
              z.bits_per_edge());
}

TEST(CompressedCsrSize, BlobNeverBeatsOneByteMinimum) {
    // Every neighbour costs at least one blob byte, so blob >= m always.
    UniformParams params;
    params.num_vertices = 1024;
    params.degree = 4;
    params.seed = 2;
    const CompressedCsrGraph z =
        csr_compress(csr_from_edges(generate_uniform(params)));
    EXPECT_GE(z.blob().size(), z.num_edges());
}

// ---------------------------------------------------------------------
// Binary container ("SGEZSR01").
// ---------------------------------------------------------------------

class CompressedCsrIoTest : public ::testing::Test {
  protected:
    void SetUp() override {
        dir_ = std::filesystem::temp_directory_path() / "sge_zsr_test";
        std::filesystem::create_directories(dir_);
    }
    void TearDown() override { std::filesystem::remove_all(dir_); }

    std::string path(const char* name) const { return (dir_ / name).string(); }

    /// Overwrites 8 bytes at `offset`: n lives at 8, m at 16, blob_bytes
    /// at 24 (after the 8-byte magic).
    static void poke_u64(const std::string& file, std::streamoff offset,
                         std::uint64_t value) {
        std::fstream f(file, std::ios::binary | std::ios::in | std::ios::out);
        ASSERT_TRUE(f.is_open());
        f.seekp(offset);
        f.write(reinterpret_cast<const char*>(&value), sizeof(value));
        ASSERT_TRUE(f.good());
    }

    std::filesystem::path dir_;
};

TEST_F(CompressedCsrIoTest, RoundTrip) {
    RmatParams params;
    params.scale = 10;
    params.num_edges = 8192;
    const CompressedCsrGraph g =
        csr_compress(csr_from_edges(generate_rmat(params)));
    write_compressed_csr(g, path("g.zsr"));
    const CompressedCsrGraph loaded = read_compressed_csr(path("g.zsr"));
    EXPECT_TRUE(g == loaded);
    EXPECT_TRUE(loaded.well_formed());
}

TEST_F(CompressedCsrIoTest, RoundTripEmptyGraph) {
    const CompressedCsrGraph g = csr_compress(csr_from_edges(EdgeList(0)));
    write_compressed_csr(g, path("empty.zsr"));
    const CompressedCsrGraph loaded = read_compressed_csr(path("empty.zsr"));
    EXPECT_EQ(loaded.num_vertices(), 0u);
    EXPECT_EQ(loaded.num_edges(), 0u);
}

TEST_F(CompressedCsrIoTest, RejectsBadMagic) {
    std::ofstream out(path("bad.zsr"), std::ios::binary);
    out << "NOTAZSR0 garbage follows and then some";
    out.close();
    EXPECT_THROW(read_compressed_csr(path("bad.zsr")), std::runtime_error);
    // The plain-CSR magic must not pass either.
    const CsrGraph g = csr_from_edges(EdgeList(10));
    write_csr(g, path("plain.csr"));
    EXPECT_THROW(read_compressed_csr(path("plain.csr")), std::runtime_error);
}

TEST_F(CompressedCsrIoTest, RejectsMissingFile) {
    EXPECT_THROW(read_compressed_csr(path("nope.zsr")), std::runtime_error);
}

TEST_F(CompressedCsrIoTest, RejectsTruncatedHeaderAndPayload) {
    const CompressedCsrGraph g = csr_compress(test::path_graph(64));
    write_compressed_csr(g, path("t.zsr"));
    const auto full = std::filesystem::file_size(path("t.zsr"));
    std::filesystem::resize_file(path("t.zsr"), full - 5);
    EXPECT_THROW(read_compressed_csr(path("t.zsr")), std::runtime_error);
    std::filesystem::resize_file(path("t.zsr"), 20);  // cut mid-header
    EXPECT_THROW(read_compressed_csr(path("t.zsr")), std::runtime_error);
}

TEST_F(CompressedCsrIoTest, RejectsOversizedPayload) {
    const CompressedCsrGraph g = csr_compress(test::path_graph(16));
    write_compressed_csr(g, path("x.zsr"));
    std::ofstream out(path("x.zsr"), std::ios::binary | std::ios::app);
    out << "extra";
    out.close();
    EXPECT_THROW(read_compressed_csr(path("x.zsr")), std::runtime_error);
}

TEST_F(CompressedCsrIoTest, RejectsCorruptHeaderFieldsBeforeAllocation) {
    const CompressedCsrGraph g = csr_compress(test::path_graph(32));
    write_compressed_csr(g, path("h.zsr"));

    poke_u64(path("h.zsr"), 8, std::uint64_t{1} << 61);  // n: huge
    EXPECT_THROW(read_compressed_csr(path("h.zsr")), std::runtime_error);
    poke_u64(path("h.zsr"), 8, kInvalidVertex);  // n: the sentinel itself
    EXPECT_THROW(read_compressed_csr(path("h.zsr")), std::runtime_error);

    write_compressed_csr(g, path("h.zsr"));
    poke_u64(path("h.zsr"), 16, std::uint64_t{1} << 61);  // m: huge
    EXPECT_THROW(read_compressed_csr(path("h.zsr")), std::runtime_error);
    poke_u64(path("h.zsr"), 16, g.num_edges() + 1);  // m: degree-sum lies
    EXPECT_THROW(read_compressed_csr(path("h.zsr")), std::runtime_error);

    write_compressed_csr(g, path("h.zsr"));
    poke_u64(path("h.zsr"), 24, std::uint64_t{1} << 61);  // blob_bytes
    EXPECT_THROW(read_compressed_csr(path("h.zsr")), std::runtime_error);
}

TEST_F(CompressedCsrIoTest, RejectsCorruptBlobViaWellFormed) {
    const CompressedCsrGraph g = csr_compress(test::path_graph(32));
    write_compressed_csr(g, path("b.zsr"));
    // Flip a continuation bit in the last blob byte: sizes all check
    // out, only the full decode validation can catch it.
    const auto full = std::filesystem::file_size(path("b.zsr"));
    std::fstream f(path("b.zsr"),
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekg(static_cast<std::streamoff>(full - 1));
    char last = 0;
    f.get(last);
    f.seekp(static_cast<std::streamoff>(full - 1));
    f.put(static_cast<char>(static_cast<unsigned char>(last) | 0x80u));
    f.close();
    EXPECT_THROW(read_compressed_csr(path("b.zsr")), std::runtime_error);
}

// ---------------------------------------------------------------------
// Traversal equivalence: every engine must produce bit-identical levels
// on the compressed backend, across schedules and frontier modes.
// ---------------------------------------------------------------------

struct BackendConfig {
    BfsEngine engine;
    int threads;
    Topology topology;
    SchedulePolicy schedule;
    FrontierGen frontier_gen;
    const char* label;
};

std::string backend_config_name(
    const ::testing::TestParamInfo<BackendConfig>& info) {
    return info.param.label;
}

class CompressedCsrEngineMatrix
    : public ::testing::TestWithParam<BackendConfig> {
  protected:
    BfsOptions options() const {
        const BackendConfig& cfg = GetParam();
        BfsOptions opts;
        opts.engine = cfg.engine;
        opts.threads = cfg.threads;
        opts.topology = cfg.topology;
        opts.schedule = cfg.schedule;
        opts.frontier_gen = cfg.frontier_gen;
        // Small batches/chunks exercise flush and spill paths.
        opts.batch_size = 8;
        opts.chunk_size = 4;
        opts.channel_capacity = 64;
        return opts;
    }

    /// Plain vs compressed under the same engine config: identical
    /// levels/reachability, and the compressed run's tree must validate
    /// against the original graph.
    void check_backends_agree(const CsrGraph& g, vertex_t root) {
        const CompressedCsrGraph z = csr_compress(g);
        const BfsResult plain = bfs(g, root, options());
        const BfsResult compressed = bfs(z, root, options());
        expect_equivalent(plain, compressed);
        const ValidationReport report = validate_bfs_tree(g, root, compressed);
        EXPECT_TRUE(report.ok) << report.error;
    }
};

TEST_P(CompressedCsrEngineMatrix, PathGraph) {
    check_backends_agree(test::path_graph(64), 0);
}

TEST_P(CompressedCsrEngineMatrix, StarGraph) {
    check_backends_agree(test::star_graph(257), 0);
}

TEST_P(CompressedCsrEngineMatrix, DisconnectedCliques) {
    check_backends_agree(test::two_cliques(13), 20);
}

TEST_P(CompressedCsrEngineMatrix, UniformRandomGraph) {
    UniformParams params;
    params.num_vertices = 4096;
    params.degree = 8;
    params.seed = 11;
    check_backends_agree(csr_from_edges(generate_uniform(params)), 5);
}

TEST_P(CompressedCsrEngineMatrix, RmatGraph) {
    RmatParams params;
    params.scale = 12;
    params.num_edges = 1 << 15;
    params.seed = 23;
    EdgeList edges = generate_rmat(params);
    permute_vertices(edges, 5);
    check_backends_agree(csr_from_edges(edges), 9);
}

INSTANTIATE_TEST_SUITE_P(
    Backends, CompressedCsrEngineMatrix,
    ::testing::Values(
        BackendConfig{BfsEngine::kSerial, 1, Topology::emulate(1, 1, 1),
                      SchedulePolicy::kEdgeWeighted, FrontierGen::kCompact,
                      "serial"},
        BackendConfig{BfsEngine::kNaive, 4, Topology::emulate(1, 4, 1),
                      SchedulePolicy::kEdgeWeighted, FrontierGen::kCompact,
                      "naive_4t"},
        BackendConfig{BfsEngine::kNaive, 4, Topology::emulate(1, 4, 1),
                      SchedulePolicy::kEdgeWeighted, FrontierGen::kAtomic,
                      "naive_4t_atomic"},
        BackendConfig{BfsEngine::kBitmap, 4, Topology::emulate(1, 4, 1),
                      SchedulePolicy::kEdgeWeighted, FrontierGen::kCompact,
                      "bitmap_4t"},
        BackendConfig{BfsEngine::kBitmap, 4, Topology::emulate(1, 4, 1),
                      SchedulePolicy::kStatic, FrontierGen::kAtomic,
                      "bitmap_4t_static_atomic"},
        BackendConfig{BfsEngine::kBitmap, 4, Topology::emulate(1, 4, 1),
                      SchedulePolicy::kStealing, FrontierGen::kCompact,
                      "bitmap_4t_stealing"},
        BackendConfig{BfsEngine::kMultiSocket, 8, Topology::nehalem_ep(),
                      SchedulePolicy::kEdgeWeighted, FrontierGen::kCompact,
                      "multisocket_ep_8t"},
        BackendConfig{BfsEngine::kMultiSocket, 4, Topology::emulate(2, 2, 1),
                      SchedulePolicy::kStatic, FrontierGen::kAtomic,
                      "multisocket_2s_static_atomic"},
        BackendConfig{BfsEngine::kHybrid, 4, Topology::emulate(1, 4, 1),
                      SchedulePolicy::kEdgeWeighted, FrontierGen::kCompact,
                      "hybrid_4t"},
        BackendConfig{BfsEngine::kHybrid, 4, Topology::emulate(1, 4, 1),
                      SchedulePolicy::kEdgeWeighted, FrontierGen::kAtomic,
                      "hybrid_4t_atomic"}),
    backend_config_name);

// The serial engine is deterministic, so the compressed backend must
// reproduce not just levels but the exact parent array (neighbours
// decode in the same ascending order the plain spans store).
TEST(CompressedCsrBfs, SerialParentsBitIdentical) {
    RmatParams params;
    params.scale = 11;
    params.num_edges = 1 << 14;
    params.seed = 3;
    const CsrGraph g = csr_from_edges(generate_rmat(params));
    const CompressedCsrGraph z = csr_compress(g);
    BfsOptions opts;
    opts.engine = BfsEngine::kSerial;
    const BfsResult plain = bfs(g, 0, opts);
    const BfsResult compressed = bfs(z, 0, opts);
    ASSERT_EQ(plain.parent.size(), compressed.parent.size());
    for (std::size_t v = 0; v < plain.parent.size(); ++v)
        ASSERT_EQ(plain.parent[v], compressed.parent[v]) << "vertex " << v;
}

// BfsOptions::backend routes a *plain* graph through the encoder: the
// runner compresses once, caches by graph identity, and must keep
// answering correctly across graphs and roots.
TEST(CompressedCsrBfs, RunnerBackendOptionEncodesAndCaches) {
    BfsOptions opts;
    opts.engine = BfsEngine::kBitmap;
    opts.threads = 4;
    opts.topology = Topology::emulate(1, 4, 1);
    opts.backend = GraphBackend::kCompressed;
    BfsRunner runner(opts);

    const CsrGraph a = test::path_graph(50);
    const CsrGraph b = test::star_graph(50);
    for (const vertex_t root : {0u, 10u, 49u}) {
        const BfsResult ra = runner.run(a, root);
        EXPECT_TRUE(validate_bfs_tree(a, root, ra).ok);
        const BfsResult rb = runner.run(b, root);
        EXPECT_TRUE(validate_bfs_tree(b, root, rb).ok);
    }

    BfsOptions serial;
    serial.engine = BfsEngine::kSerial;
    expect_equivalent(bfs(a, 0, serial), runner.run(a, 0));
}

TEST(CompressedCsrBfs, RunnerReusableAcrossCompressedGraphs) {
    BfsOptions opts;
    opts.engine = BfsEngine::kMultiSocket;
    opts.threads = 4;
    opts.topology = Topology::emulate(2, 2, 1);
    BfsRunner runner(opts);

    const CsrGraph a = test::cycle_graph(101);
    const CsrGraph b = test::two_cliques(9);
    const CompressedCsrGraph za = csr_compress(a);
    const CompressedCsrGraph zb = csr_compress(b);
    for (int round = 0; round < 2; ++round) {
        const BfsResult ra = runner.run(za, 37);
        EXPECT_TRUE(validate_bfs_tree(a, 37, ra).ok);
        const BfsResult rb = runner.run(zb, 3);
        EXPECT_TRUE(validate_bfs_tree(b, 3, rb).ok);
    }
}

// ---------------------------------------------------------------------
// MS-BFS over the compressed backend.
// ---------------------------------------------------------------------

TEST(CompressedCsrMsBfs, LevelsMatchPlainBackend) {
    RmatParams params;
    params.scale = 11;
    params.num_edges = 1 << 14;
    params.seed = 6;
    const CsrGraph g = csr_from_edges(generate_rmat(params));
    const CompressedCsrGraph z = csr_compress(g);
    const std::vector<vertex_t> sources = {0, 17, 99, 1234};

    const auto run = [&](const auto& graph) {
        // levels[lane][v]; kInvalidLevel = never discovered by that lane.
        std::vector<std::vector<level_t>> levels(
            sources.size(),
            std::vector<level_t>(g.num_vertices(), kInvalidLevel));
        MsBfsOptions opts;
        opts.threads = 4;
        opts.topology = Topology::emulate(1, 4, 1);
        const std::uint32_t waves = multi_source_bfs(
            graph, sources,
            [&](int, level_t level, vertex_t v, std::uint64_t mask) {
                while (mask != 0) {
                    const int lane = std::countr_zero(mask);
                    mask &= mask - 1;
                    levels[static_cast<std::size_t>(lane)][v] = level;
                }
            },
            opts);
        return std::pair(waves, std::move(levels));
    };

    const auto [plain_waves, plain_levels] = run(g);
    const auto [z_waves, z_levels] = run(z);
    EXPECT_EQ(plain_waves, z_waves);
    for (std::size_t lane = 0; lane < sources.size(); ++lane)
        for (vertex_t v = 0; v < g.num_vertices(); ++v)
            ASSERT_EQ(plain_levels[lane][v], z_levels[lane][v])
                << "lane " << lane << " vertex " << v;
}

// ---------------------------------------------------------------------
// Observability: decode accounting. The fixture name matches the
// no-obs CI job's -R "Obs" filter, so it must skip itself when the
// extended counters are compiled out.
// ---------------------------------------------------------------------

class CompressedCsrObs : public ::testing::Test {
  protected:
    void SetUp() override {
        if (!obs::compiled_in())
            GTEST_SKIP() << "SGE_OBS compiled out; decode counters are stubs";
    }
};

TEST_F(CompressedCsrObs, BytesDecodedMatchesVisitedRowsExactly) {
    // Top-down engines decode each visited vertex's row exactly once, so
    // summing bytes_decoded over levels must reproduce the row-byte sum
    // over reached vertices — exact, because bytes (unlike decode_ns)
    // are never sampled.
    UniformParams params;
    params.num_vertices = 4096;
    params.degree = 8;
    params.seed = 13;
    const CsrGraph g = csr_from_edges(generate_uniform(params));
    const CompressedCsrGraph z = csr_compress(g);

    for (const BfsEngine engine :
         {BfsEngine::kSerial, BfsEngine::kNaive, BfsEngine::kBitmap,
          BfsEngine::kMultiSocket}) {
        BfsOptions opts;
        opts.engine = engine;
        opts.threads = engine == BfsEngine::kSerial ? 1 : 4;
        opts.topology = engine == BfsEngine::kMultiSocket
                            ? Topology::emulate(2, 2, 1)
                            : Topology::emulate(1, 4, 1);
        opts.collect_stats = true;
        const BfsResult r = bfs(z, 0, opts);

        std::uint64_t expected = 0;
        for (vertex_t v = 0; v < g.num_vertices(); ++v)
            if (r.parent[v] != kInvalidVertex) expected += z.row_bytes(v);
        std::uint64_t decoded = 0;
        for (const BfsLevelStats& s : r.level_stats) decoded += s.bytes_decoded;
        EXPECT_EQ(decoded, expected)
            << "engine " << to_string(engine) << " decode accounting drifted";
    }
}

TEST_F(CompressedCsrObs, HybridDecodesSomethingAndPlainDecodesNothing) {
    UniformParams params;
    params.num_vertices = 4096;
    params.degree = 8;
    params.seed = 17;
    const CsrGraph g = csr_from_edges(generate_uniform(params));
    const CompressedCsrGraph z = csr_compress(g);

    BfsOptions opts;
    opts.engine = BfsEngine::kHybrid;
    opts.threads = 4;
    opts.topology = Topology::emulate(1, 4, 1);
    opts.collect_stats = true;

    // The hybrid's bottom-up probes stop at the first frontier parent,
    // so its total is bounded by (but need not equal) the full-row sum.
    const BfsResult r = bfs(z, 0, opts);
    std::uint64_t decoded = 0;
    for (const BfsLevelStats& s : r.level_stats) decoded += s.bytes_decoded;
    EXPECT_GT(decoded, 0u);

    // The plain backend must report zero decode work.
    const BfsResult plain = bfs(g, 0, opts);
    for (const BfsLevelStats& s : plain.level_stats) {
        EXPECT_EQ(s.bytes_decoded, 0u);
        EXPECT_EQ(s.decode_ns, 0u);
    }
}

}  // namespace
}  // namespace sge
