#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <new>
#include <span>
#include <type_traits>

#include "runtime/cacheline.hpp"
#include "runtime/fault.hpp"

namespace sge {

/// Process-wide count of AlignedBuffer heap allocations. The workspace
/// engines snapshot it around their level loops in debug builds to
/// assert that a prepared workspace really makes traversal
/// allocation-free (Channel spill vectors are by-design untracked
/// overflow). Relaxed: a monotonic diagnostic counter, not a fence.
inline std::atomic<std::uint64_t>& aligned_alloc_count() noexcept {
    static std::atomic<std::uint64_t> count{0};
    return count;
}

/// Fixed-size, cache-line-aligned, heap-allocated array.
///
/// The paper's data layout discipline requires that the big flat arrays
/// (CSR offsets/targets, parent array, visited bitmap, queues) start on a
/// cache-line boundary so that per-socket partitions of the same array do
/// not share lines across the partition cut. std::vector cannot guarantee
/// alignment pre-C++17-allocator gymnastics, so we keep a tiny RAII type.
///
/// Elements are default-initialised only when `zeroed` construction is
/// requested; otherwise the memory is left uninitialised, which matters
/// for multi-gigabyte arrays the owning threads will first-touch later.
template <typename T>
class AlignedBuffer {
    static_assert(std::is_trivially_destructible_v<T>,
                  "AlignedBuffer skips destructor calls; only trivially "
                  "destructible element types are supported");

  public:
    AlignedBuffer() = default;

    /// Allocates `count` elements. If `zeroed`, zero-fills the storage.
    explicit AlignedBuffer(std::size_t count, bool zeroed = false)
        : size_(count) {
        if (count == 0) return;
        // Fault site `alloc`: simulate allocation failure with the same
        // exception a real exhaustion would raise.
        if (fault::should_fire(fault::Site::kAlloc)) throw std::bad_alloc{};
        const std::size_t bytes = round_up_to_cacheline(count * sizeof(T));
        void* p = std::aligned_alloc(kCacheLineSize, bytes);
        if (p == nullptr) throw std::bad_alloc{};
        aligned_alloc_count().fetch_add(1, std::memory_order_relaxed);
        if (zeroed) std::memset(p, 0, bytes);
        data_.reset(static_cast<T*>(p));
    }

    AlignedBuffer(AlignedBuffer&&) noexcept = default;
    AlignedBuffer& operator=(AlignedBuffer&&) noexcept = default;
    AlignedBuffer(const AlignedBuffer&) = delete;
    AlignedBuffer& operator=(const AlignedBuffer&) = delete;

    [[nodiscard]] T* data() noexcept { return data_.get(); }
    [[nodiscard]] const T* data() const noexcept { return data_.get(); }
    [[nodiscard]] std::size_t size() const noexcept { return size_; }
    [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

    T& operator[](std::size_t i) noexcept { return data_.get()[i]; }
    const T& operator[](std::size_t i) const noexcept { return data_.get()[i]; }

    [[nodiscard]] T* begin() noexcept { return data_.get(); }
    [[nodiscard]] T* end() noexcept { return data_.get() + size_; }
    [[nodiscard]] const T* begin() const noexcept { return data_.get(); }
    [[nodiscard]] const T* end() const noexcept { return data_.get() + size_; }

    [[nodiscard]] std::span<T> span() noexcept { return {data_.get(), size_}; }
    [[nodiscard]] std::span<const T> span() const noexcept {
        return {data_.get(), size_};
    }

  private:
    struct FreeDeleter {
        void operator()(T* p) const noexcept { std::free(p); }
    };
    std::unique_ptr<T, FreeDeleter> data_;
    std::size_t size_ = 0;
};

}  // namespace sge
