#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "core/bfs.hpp"
#include "core/validate.hpp"
#include "gen/grid.hpp"
#include "gen/permute.hpp"
#include "gen/rmat.hpp"
#include "gen/ssca2.hpp"
#include "gen/uniform.hpp"
#include "graph/builder.hpp"
#include "test_util.hpp"

namespace sge {
namespace {

using test::expect_equivalent;

// ---------------------------------------------------------------------
// Property sweep: every parallel engine x thread count x topology must
// produce a valid BFS tree with the same reachability and levels as the
// serial reference, on every graph family.
// ---------------------------------------------------------------------

struct EngineConfig {
    BfsEngine engine;
    int threads;
    Topology topology;
    bool double_check;
    const char* label;
};

std::string config_name(const ::testing::TestParamInfo<EngineConfig>& info) {
    return info.param.label;
}

class BfsEngineMatrix : public ::testing::TestWithParam<EngineConfig> {
  protected:
    BfsOptions options() const {
        const EngineConfig& cfg = GetParam();
        BfsOptions opts;
        opts.engine = cfg.engine;
        opts.threads = cfg.threads;
        opts.topology = cfg.topology;
        opts.bitmap_double_check = cfg.double_check;
        // Small batches/chunks/rings on purpose: exercise the flush and
        // spill paths that big defaults would hide.
        opts.batch_size = 8;
        opts.chunk_size = 4;
        opts.channel_capacity = 64;
        return opts;
    }

    void check_against_serial(const CsrGraph& g, vertex_t root) {
        BfsOptions serial;
        serial.engine = BfsEngine::kSerial;
        const BfsResult expected = bfs(g, root, serial);
        const BfsResult actual = bfs(g, root, options());
        expect_equivalent(expected, actual);
        const ValidationReport report = validate_bfs_tree(g, root, actual);
        EXPECT_TRUE(report.ok) << report.error;
    }
};

TEST_P(BfsEngineMatrix, PathGraph) { check_against_serial(test::path_graph(64), 0); }

TEST_P(BfsEngineMatrix, StarGraph) { check_against_serial(test::star_graph(257), 0); }

TEST_P(BfsEngineMatrix, CycleFromArbitraryRoot) {
    check_against_serial(test::cycle_graph(101), 37);
}

TEST_P(BfsEngineMatrix, DisconnectedCliques) {
    check_against_serial(test::two_cliques(13), 20);
}

TEST_P(BfsEngineMatrix, UniformRandomGraph) {
    UniformParams params;
    params.num_vertices = 4096;
    params.degree = 8;
    params.seed = 11;
    check_against_serial(csr_from_edges(generate_uniform(params)), 5);
}

TEST_P(BfsEngineMatrix, SparseUniformManyComponents) {
    UniformParams params;
    params.num_vertices = 4096;
    params.degree = 1;  // forest-like, many components
    params.seed = 3;
    check_against_serial(csr_from_edges(generate_uniform(params)), 100);
}

TEST_P(BfsEngineMatrix, RmatGraph) {
    RmatParams params;
    params.scale = 12;
    params.num_edges = 1 << 15;
    params.seed = 23;
    EdgeList edges = generate_rmat(params);
    permute_vertices(edges, 5);
    check_against_serial(csr_from_edges(edges), 9);
}

TEST_P(BfsEngineMatrix, GridGraph) {
    GridParams params;
    params.width = 64;
    params.height = 32;
    check_against_serial(csr_from_edges(generate_grid(params)), 0);
}

TEST_P(BfsEngineMatrix, Ssca2Graph) {
    Ssca2Params params;
    params.num_vertices = 3000;
    params.seed = 8;
    check_against_serial(csr_from_edges(generate_ssca2(params)), 1500);
}

TEST_P(BfsEngineMatrix, RootAtPartitionBoundary) {
    // Vertex n-1 lands on the last socket; exercises root ownership.
    UniformParams params;
    params.num_vertices = 1000;
    params.degree = 6;
    const CsrGraph g = csr_from_edges(generate_uniform(params));
    check_against_serial(g, 999);
}

TEST_P(BfsEngineMatrix, StatsAccounting) {
    UniformParams params;
    params.num_vertices = 2048;
    params.degree = 8;
    const CsrGraph g = csr_from_edges(generate_uniform(params));

    BfsOptions opts = options();
    opts.collect_stats = true;
    const BfsResult r = bfs(g, 0, opts);

    ASSERT_EQ(r.level_stats.size(), r.num_levels);
    std::uint64_t frontier_total = 0;
    std::uint64_t edges_total = 0;
    for (const BfsLevelStats& s : r.level_stats) {
        frontier_total += s.frontier_size;
        edges_total += s.edges_scanned;
        // Atomics can never exceed checks (double-check filters), and
        // every scanned edge produces exactly one check.
        EXPECT_LE(s.atomic_ops, s.bitmap_checks);
    }
    EXPECT_EQ(frontier_total, r.vertices_visited);
    double level_seconds = 0.0;
    for (const BfsLevelStats& s : r.level_stats) {
        EXPECT_GE(s.seconds, 0.0);
        level_seconds += s.seconds;
    }
    // Level times tile the traversal (allow slack for the epilogue work
    // outside any level window).
    EXPECT_LE(level_seconds, r.seconds * 1.5 + 1e-3);
    if (GetParam().engine == BfsEngine::kHybrid) {
        // The hybrid engine's per-level edges_scanned records the work
        // actually done, which bottom-up levels deliberately decouple
        // from the sum-of-degrees convention in edges_traversed.
        EXPECT_GT(edges_total, 0u);
    } else {
        EXPECT_EQ(edges_total, r.edges_traversed);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Engines, BfsEngineMatrix,
    ::testing::Values(
        // Algorithm 1 baseline.
        EngineConfig{BfsEngine::kNaive, 4, Topology::emulate(1, 4, 1), true,
                     "naive_4t"},
        // Algorithm 2, single socket, with and without the double-check.
        EngineConfig{BfsEngine::kBitmap, 1, Topology::emulate(1, 1, 1), true,
                     "bitmap_1t"},
        EngineConfig{BfsEngine::kBitmap, 4, Topology::emulate(1, 4, 1), true,
                     "bitmap_4t"},
        EngineConfig{BfsEngine::kBitmap, 4, Topology::emulate(1, 4, 1), false,
                     "bitmap_4t_no_double_check"},
        EngineConfig{BfsEngine::kBitmap, 8, Topology::nehalem_ep(), true,
                     "bitmap_8t_ep"},
        // Algorithm 3 across emulated socket shapes.
        EngineConfig{BfsEngine::kMultiSocket, 2, Topology::emulate(2, 1, 1),
                     true, "multisocket_2s_2t"},
        EngineConfig{BfsEngine::kMultiSocket, 8, Topology::nehalem_ep(), true,
                     "multisocket_ep_8t"},
        EngineConfig{BfsEngine::kMultiSocket, 16, Topology::nehalem_ep(), true,
                     "multisocket_ep_16t_smt"},
        EngineConfig{BfsEngine::kMultiSocket, 16, Topology::nehalem_ex(), true,
                     "multisocket_ex_16t"},
        EngineConfig{BfsEngine::kMultiSocket, 64, Topology::nehalem_ex(), true,
                     "multisocket_ex_64t"},
        EngineConfig{BfsEngine::kMultiSocket, 8, Topology::nehalem_ep(), false,
                     "multisocket_ep_8t_no_double_check"},
        // Multi-socket engine degenerating to one socket must still work.
        EngineConfig{BfsEngine::kMultiSocket, 4, Topology::emulate(1, 4, 1),
                     true, "multisocket_single_socket"},
        EngineConfig{BfsEngine::kMultiSocket, 6, Topology::emulate(3, 2, 1),
                     true, "multisocket_3s_6t"},
        // Extension: direction-optimizing engine.
        EngineConfig{BfsEngine::kHybrid, 1, Topology::emulate(1, 1, 1), true,
                     "hybrid_1t"},
        EngineConfig{BfsEngine::kHybrid, 4, Topology::emulate(1, 4, 1), true,
                     "hybrid_4t"},
        EngineConfig{BfsEngine::kHybrid, 8, Topology::nehalem_ep(), true,
                     "hybrid_8t_ep"}),
    config_name);

// ---------------------------------------------------------------------
// Engine selection / runner behaviour.
// ---------------------------------------------------------------------

TEST(BfsRunner, AutoPicksSerialForOneThread) {
    BfsOptions opts;
    opts.threads = 1;
    opts.topology = Topology::emulate(2, 4, 1);
    EXPECT_EQ(BfsRunner(opts).resolved_engine(), BfsEngine::kSerial);
}

TEST(BfsRunner, AutoPicksBitmapWithinOneSocket) {
    BfsOptions opts;
    opts.threads = 4;
    opts.topology = Topology::nehalem_ep();  // 4 threads fit socket 0
    EXPECT_EQ(BfsRunner(opts).resolved_engine(), BfsEngine::kBitmap);
}

TEST(BfsRunner, AutoPicksMultiSocketAcrossSockets) {
    BfsOptions opts;
    opts.threads = 8;
    opts.topology = Topology::nehalem_ep();
    EXPECT_EQ(BfsRunner(opts).resolved_engine(), BfsEngine::kMultiSocket);
}

TEST(BfsRunner, ZeroThreadsMeansAllOfTopology) {
    BfsOptions opts;
    opts.topology = Topology::emulate(2, 2, 2);
    BfsRunner runner(opts);
    EXPECT_EQ(runner.threads(), 8);
}

TEST(BfsRunner, NegativeThreadsRejected) {
    BfsOptions opts;
    opts.threads = -1;
    EXPECT_THROW(BfsRunner{opts}, std::invalid_argument);
}

TEST(BfsRunner, ReusableAcrossGraphsAndRoots) {
    BfsOptions opts;
    opts.engine = BfsEngine::kMultiSocket;
    opts.threads = 4;
    opts.topology = Topology::emulate(2, 2, 1);
    BfsRunner runner(opts);

    const CsrGraph a = test::path_graph(50);
    const CsrGraph b = test::star_graph(50);
    for (const vertex_t root : {0u, 10u, 49u}) {
        const BfsResult ra = runner.run(a, root);
        EXPECT_TRUE(validate_bfs_tree(a, root, ra).ok);
        const BfsResult rb = runner.run(b, root);
        EXPECT_TRUE(validate_bfs_tree(b, root, rb).ok);
    }
}

TEST(BfsRunner, EngineNamesRoundTrip) {
    EXPECT_EQ(to_string(BfsEngine::kSerial), "serial");
    EXPECT_EQ(to_string(BfsEngine::kNaive), "naive");
    EXPECT_EQ(to_string(BfsEngine::kBitmap), "bitmap");
    EXPECT_EQ(to_string(BfsEngine::kMultiSocket), "multisocket");
    EXPECT_EQ(to_string(BfsEngine::kAuto), "auto");
}

// Determinism of *results* (not trees): repeated runs of a parallel
// engine must agree on reachability and levels.
TEST(BfsDeterminism, RepeatedRunsAgreeOnLevels) {
    RmatParams params;
    params.scale = 11;
    params.num_edges = 1 << 14;
    const CsrGraph g = csr_from_edges(generate_rmat(params));

    BfsOptions opts;
    opts.engine = BfsEngine::kMultiSocket;
    opts.threads = 8;
    opts.topology = Topology::nehalem_ep();
    BfsRunner runner(opts);

    const BfsResult first = runner.run(g, 3);
    for (int i = 0; i < 3; ++i) {
        const BfsResult again = runner.run(g, 3);
        expect_equivalent(first, again);
    }
}

}  // namespace
}  // namespace sge
