#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/csr_graph.hpp"
#include "runtime/topology.hpp"

namespace sge {

/// Triangle census of a simple symmetric graph (builder defaults:
/// deduplicated, no self-loops, sorted adjacencies).
struct TriangleCounts {
    /// Total triangles in the graph (each counted once).
    std::uint64_t total = 0;
    /// per_vertex[v] = triangles incident on v.
    std::vector<std::uint64_t> per_vertex;

    /// Global clustering coefficient: 3 * triangles / open wedges.
    [[nodiscard]] double global_clustering(const CsrGraph& g) const;
};

struct TriangleOptions {
    int threads = 1;
    std::optional<Topology> topology;
};

/// Merge-based node-iterator triangle counting: for each edge (u, v)
/// with u < v, intersect the sorted adjacencies and attribute each
/// common neighbour w > v once. O(sum over edges of min(deg u, deg v));
/// parallel over vertices. The SSCA#2/GraphChallenge-style kernel that
/// complements BFS on the paper's community-analysis workloads.
TriangleCounts count_triangles(const CsrGraph& g,
                               const TriangleOptions& options = {});

}  // namespace sge
