#include "graph/builder.hpp"

#include <algorithm>
#include <stdexcept>

namespace sge {

CsrGraph csr_from_edges(const EdgeList& edges, const BuildOptions& opts) {
    const vertex_t n = edges.num_vertices();

    // Validate ids up front: a malformed generator or input file must not
    // turn into out-of-bounds writes during the counting sort.
    for (const Edge& e : edges)
        if (e.src >= n || e.dst >= n)
            throw std::out_of_range("csr_from_edges: edge endpoint >= num_vertices");

    // Pass 1: out-degree histogram.
    AlignedBuffer<edge_offset_t> offsets(static_cast<std::size_t>(n) + 1,
                                         /*zeroed=*/true);
    for (const Edge& e : edges) {
        if (opts.remove_self_loops && e.src == e.dst) continue;
        ++offsets[e.src + 1];
        if (opts.make_undirected) ++offsets[e.dst + 1];
    }

    // Exclusive prefix sum -> provisional offsets.
    for (vertex_t v = 0; v < n; ++v) offsets[v + 1] += offsets[v];
    const edge_offset_t m = offsets[n];

    // Pass 2: scatter targets using a moving cursor per vertex.
    AlignedBuffer<vertex_t> targets(static_cast<std::size_t>(m));
    AlignedBuffer<edge_offset_t> cursor(static_cast<std::size_t>(n));
    for (vertex_t v = 0; v < n; ++v) cursor[v] = offsets[v];
    for (const Edge& e : edges) {
        if (opts.remove_self_loops && e.src == e.dst) continue;
        targets[cursor[e.src]++] = e.dst;
        if (opts.make_undirected) targets[cursor[e.dst]++] = e.src;
    }

    if (!opts.sort_neighbors && !opts.deduplicate)
        return CsrGraph(std::move(offsets), std::move(targets));

    // Pass 3: per-vertex sort (and optional dedup). Deduplication
    // compacts in place and rewrites offsets.
    if (!opts.deduplicate) {
        for (vertex_t v = 0; v < n; ++v)
            std::sort(targets.data() + offsets[v], targets.data() + offsets[v + 1]);
        return CsrGraph(std::move(offsets), std::move(targets));
    }

    edge_offset_t write = 0;
    edge_offset_t prev_begin = 0;
    for (vertex_t v = 0; v < n; ++v) {
        const edge_offset_t begin = prev_begin;
        const edge_offset_t end = offsets[v + 1];
        prev_begin = end;
        std::sort(targets.data() + begin, targets.data() + end);
        const edge_offset_t row_start = write;
        for (edge_offset_t e = begin; e < end; ++e) {
            if (e > begin && targets[e] == targets[e - 1]) continue;
            targets[write++] = targets[e];
        }
        offsets[v] = row_start;
    }
    offsets[n] = write;
    // Shift offsets down: offsets[v] currently holds row starts already.
    // (Row starts were written in increasing v, never clobbering unread
    // data because write <= begin at all times.)

    // Copy the compacted prefix into a right-sized buffer so the graph
    // does not pin the over-allocated storage for its lifetime.
    AlignedBuffer<vertex_t> compact(static_cast<std::size_t>(write));
    std::copy(targets.begin(), targets.begin() + write, compact.begin());
    return CsrGraph(std::move(offsets), std::move(compact));
}

EdgeList edges_from_csr(const CsrGraph& g) {
    EdgeList out(g.num_vertices());
    out.reserve(static_cast<std::size_t>(g.num_edges()));
    for (vertex_t v = 0; v < g.num_vertices(); ++v)
        for (vertex_t w : g.neighbors(v)) out.add(v, w);
    return out;
}

}  // namespace sge
