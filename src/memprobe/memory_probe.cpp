#include "memprobe/memory_probe.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "runtime/aligned_buffer.hpp"
#include "runtime/prng.hpp"
#include "runtime/timer.hpp"

namespace sge {

ProbeResult run_memory_probe(const MemoryProbeParams& params) {
    const std::size_t slots =
        std::max<std::size_t>(params.working_set_bytes / sizeof(std::uint64_t), 2);
    const std::size_t depth = std::max<std::size_t>(params.batch_depth, 1);
    if (depth > 64)
        throw std::invalid_argument("run_memory_probe: batch_depth > 64");

    // Build one random cycle over all slots (Sattolo's algorithm): each
    // slot holds the index of its successor, so a chase is a chain of
    // dependent cache misses with no exploitable pattern.
    AlignedBuffer<std::uint64_t> data(slots);
    for (std::size_t i = 0; i < slots; ++i) data[i] = i;
    Xoshiro256 rng(params.seed);
    for (std::size_t i = slots - 1; i > 0; --i) {
        const std::size_t j = rng.next_below(i);  // j in [0, i): proper cycle
        std::swap(data[i], data[j]);
    }

    // Spread the chains' starting points around the cycle.
    std::vector<std::uint64_t> cursor(depth);
    for (std::size_t c = 0; c < depth; ++c)
        cursor[c] = rng.next_below(slots);

    const std::uint64_t rounds = params.total_reads / depth;
    ProbeResult result;

    WallTimer timer;
    for (std::uint64_t r = 0; r < rounds; ++r) {
        // `depth` independent loads per round; the compiler cannot fuse
        // them into one dependency chain because each chases its own
        // cursor, which is precisely what lets the hardware keep that
        // many line fills in flight.
        for (std::size_t c = 0; c < depth; ++c) cursor[c] = data[cursor[c]];
    }
    result.seconds = timer.seconds();

    result.operations = rounds * depth;
    for (std::size_t c = 0; c < depth; ++c) result.checksum ^= cursor[c];
    return result;
}

}  // namespace sge
