#include "graph/weighted.hpp"

#include <stdexcept>

#include "runtime/prng.hpp"

namespace sge {

WeightedCsrGraph::WeightedCsrGraph(CsrGraph graph, AlignedBuffer<weight_t> weights)
    : graph_(std::move(graph)), weights_(std::move(weights)) {
    if (weights_.size() != graph_.num_edges())
        throw std::invalid_argument(
            "WeightedCsrGraph: weight count != edge count");
}

WeightedCsrGraph with_random_weights(CsrGraph graph, weight_t min_weight,
                                     weight_t max_weight, std::uint64_t seed) {
    if (min_weight > max_weight)
        throw std::invalid_argument("with_random_weights: min > max");

    const std::uint64_t range = std::uint64_t{max_weight} - min_weight + 1;
    AlignedBuffer<weight_t> weights(static_cast<std::size_t>(graph.num_edges()));

    const auto offsets = graph.offsets();
    const auto targets = graph.targets();
    for (vertex_t u = 0; u < graph.num_vertices(); ++u) {
        for (edge_offset_t e = offsets[u]; e < offsets[u + 1]; ++e) {
            const vertex_t v = targets[e];
            // Hash the unordered pair so (u,v) and (v,u) agree without
            // any lookup; fold the seed in so graphs get fresh weights
            // per seed.
            const std::uint64_t lo = u < v ? u : v;
            const std::uint64_t hi = u < v ? v : u;
            SplitMix64 mix(seed ^ (lo << 32 | hi));
            weights[e] = static_cast<weight_t>(min_weight + mix.next() % range);
        }
    }
    return WeightedCsrGraph(std::move(graph), std::move(weights));
}

}  // namespace sge
