#include "stream/incremental_bfs.hpp"

#include <stdexcept>

namespace sge {

IncrementalBfs::IncrementalBfs(const DynamicGraph& graph, vertex_t root)
    : graph_(graph), root_(root) {
    if (root >= graph.num_vertices())
        throw std::out_of_range("IncrementalBfs: root out of range");
    rebuild();
}

void IncrementalBfs::check_sync() const {
    if (observed_version_ != graph_.version())
        throw std::logic_error(
            "IncrementalBfs: graph mutated without notification (levels "
            "would be stale) — call on_edge_added/on_vertex_added for "
            "insertions, rebuild() after removals");
}

void IncrementalBfs::rebuild() {
    const vertex_t n = graph_.num_vertices();
    level_.assign(n, kInvalidLevel);
    parent_.assign(n, kInvalidVertex);
    reached_ = 0;
    stats_ = RepairStats{};
    observed_version_ = graph_.version();

    std::vector<vertex_t> queue{root_};
    level_[root_] = 0;
    parent_[root_] = root_;
    reached_ = 1;
    for (std::size_t head = 0; head < queue.size(); ++head) {
        const vertex_t u = queue[head];
        for (const vertex_t v : graph_.neighbors(u)) {
            if (level_[v] != kInvalidLevel) continue;
            level_[v] = level_[u] + 1;
            parent_[v] = u;
            ++reached_;
            queue.push_back(v);
        }
    }
}

void IncrementalBfs::on_vertex_added() {
    while (level_.size() < graph_.num_vertices()) {
        level_.push_back(kInvalidLevel);
        parent_.push_back(kInvalidVertex);
        ++observed_version_;  // one add_vertex mutation per appended slot
    }
}

/// Tries to lower `to` through the (new or re-examined) arc from ->
/// to; enqueues `to` with its new level on success.
bool IncrementalBfs::seed(vertex_t from, vertex_t to) {
    if (level_[from] == kInvalidLevel) return false;
    const level_t candidate = level_[from] + 1;
    if (level_[to] != kInvalidLevel && level_[to] <= candidate) return false;
    if (level_[to] == kInvalidLevel) ++reached_;
    level_[to] = candidate;
    parent_[to] = from;
    queue_.push_back({to, candidate});
    ++stats_.enqueued;
    return true;
}

void IncrementalBfs::bfs_wave(std::size_t& changed) {
    // Decrease-only relaxation wave: a vertex enters the queue when its
    // level just dropped; its neighbours re-check. An entry whose
    // vertex improved again after enqueue is stale — the better entry
    // is (or was) in the queue too, so the stale one is dropped without
    // rescanning the adjacency. With mixed-level seeds (batched
    // insertions) this is what keeps cascading repairs linear in edges
    // actually re-examined instead of quadratic in the repair region.
    ++stats_.waves;
    for (std::size_t head = 0; head < queue_.size(); ++head) {
        const WaveEntry e = queue_[head];
        if (level_[e.v] != e.enqueue_level) {
            ++stats_.stale_skips;
            continue;
        }
        const auto neighbors = graph_.neighbors(e.v);
        stats_.edges_scanned += neighbors.size();
        const level_t candidate = e.enqueue_level + 1;
        for (const vertex_t w : neighbors) {
            if (level_[w] != kInvalidLevel && level_[w] <= candidate) continue;
            if (level_[w] == kInvalidLevel) ++reached_;
            level_[w] = candidate;
            parent_[w] = e.v;
            ++changed;
            queue_.push_back({w, candidate});
            ++stats_.enqueued;
        }
    }
    queue_.clear();
}

std::size_t IncrementalBfs::on_edge_added(vertex_t u, vertex_t v) {
    const std::pair<vertex_t, vertex_t> edge[] = {{u, v}};
    return on_edges_added(edge);
}

std::size_t IncrementalBfs::on_edges_added(
    std::span<const std::pair<vertex_t, vertex_t>> edges) {
    for (const auto& [u, v] : edges)
        if (u >= level_.size() || v >= level_.size())
            throw std::out_of_range(
                "IncrementalBfs: endpoint out of range "
                "(did you call on_vertex_added?)");
    observed_version_ += edges.size();
    if (observed_version_ > graph_.version())
        throw std::logic_error(
            "IncrementalBfs: notified of more insertions than the graph "
            "has mutations");

    // Seed every improvable endpoint, then run ONE wave over all of
    // them: overlapping repair regions coalesce, and the stale-entry
    // skip drops whichever seeds a better seed already superseded.
    std::size_t changed = 0;
    for (const auto& [u, v] : edges) {
        if (seed(u, v)) ++changed;
        if (seed(v, u)) ++changed;
    }
    if (!queue_.empty()) bfs_wave(changed);
    return changed;
}

}  // namespace sge
