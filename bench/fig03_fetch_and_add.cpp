// Figure 3: "Processing rates with Fetch-and-add and a dual socket
// configuration."
//
// Threads hammer atomic fetch-and-adds on random slots of a shared 4 MB
// buffer, placed socket-major on the paper's dual-socket EP model. The
// paper's findings to look for:
//   * atomics do not pipeline like plain reads (compare the two
//     sections of the table);
//   * crossing the socket boundary (4 -> 5 threads on the EP) flattens
//     or degrades scaling — "using 8 cores on two sockets, we achieve
//     the same processing rate of only 3 cores on a single socket".
// On this container the socket boundary is emulated, so the coherence
// cliff is absent; the atomic-vs-read gap still shows.

#include <cstdio>

#include "bench_util.hpp"
#include "memprobe/atomic_probe.hpp"

int main() {
    using namespace sge;
    using namespace sge::bench;

    banner("Figure 3: fetch-and-add rates across a dual-socket EP", "Fig. 3");

    const Topology ep = Topology::emulate(2, 4, 1);  // 8 cores, no SMT

    Table table({"threads", "sockets", "fetch-add ops/s", "plain reads/s",
                 "atomic penalty"});
    for (int threads = 1; threads <= 8; ++threads) {
        AtomicProbeParams params;
        params.buffer_bytes = 4 << 20;  // the paper's fixed 4 MB buffer
        params.threads = threads;
        params.ops_per_thread = scaled(1 << 20) / threads;
        params.topology = ep;

        params.mode = AtomicProbeParams::Mode::kFetchAdd;
        const ProbeResult atomic = run_atomic_probe(params);
        params.mode = AtomicProbeParams::Mode::kPlainRead;
        const ProbeResult reads = run_atomic_probe(params);

        table.add_row({fmt_u64(threads), fmt_u64(ep.sockets_used(threads)),
                       fmt("%.1f M", atomic.ops_per_second() / 1e6),
                       fmt("%.1f M", reads.ops_per_second() / 1e6),
                       fmt("%.2fx", reads.ops_per_second() /
                                        atomic.ops_per_second())});
    }
    table.print();

    std::printf(
        "\npaper's shape: plain reads scale with threads; fetch-and-add "
        "stalls, with a\nvisible drop at the 4->5 thread socket crossing on "
        "real two-socket hardware.\n");
    return 0;
}
