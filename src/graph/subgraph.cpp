#include "graph/subgraph.hpp"

#include <stdexcept>

#include "graph/builder.hpp"

namespace sge {

Subgraph induced_subgraph(const CsrGraph& g, std::span<const vertex_t> vertices) {
    const vertex_t n = g.num_vertices();

    Subgraph out;
    out.new_of.assign(n, kInvalidVertex);
    for (const vertex_t v : vertices) {
        if (v >= n)
            throw std::out_of_range("induced_subgraph: vertex id out of range");
        if (out.new_of[v] != kInvalidVertex) continue;  // deduplicate
        out.new_of[v] = static_cast<vertex_t>(out.original_of.size());
        out.original_of.push_back(v);
    }

    EdgeList edges(static_cast<vertex_t>(out.original_of.size()));
    for (vertex_t nv = 0; nv < out.original_of.size(); ++nv) {
        const vertex_t old = out.original_of[nv];
        for (const vertex_t w : g.neighbors(old)) {
            if (out.new_of[w] == kInvalidVertex) continue;
            edges.add(nv, out.new_of[w]);
        }
    }

    // The arcs above are already directed pairs from a (typically)
    // symmetric source; rebuild without re-symmetrizing so multiplicity
    // is preserved exactly.
    BuildOptions opts;
    opts.make_undirected = false;
    opts.remove_self_loops = false;
    opts.deduplicate = false;
    out.graph = csr_from_edges(edges, opts);
    return out;
}

Subgraph largest_component_subgraph(const CsrGraph& g) {
    const vertex_t n = g.num_vertices();
    if (n == 0) return induced_subgraph(g, {});

    // Flood-fill component labelling (kept local so the graph layer does
    // not depend on analytics).
    constexpr std::uint32_t kUnassigned = ~0u;
    std::vector<std::uint32_t> component(n, kUnassigned);
    std::vector<std::uint64_t> sizes;
    std::vector<vertex_t> stack;
    for (vertex_t seed = 0; seed < n; ++seed) {
        if (component[seed] != kUnassigned) continue;
        const auto id = static_cast<std::uint32_t>(sizes.size());
        sizes.push_back(0);
        component[seed] = id;
        stack.push_back(seed);
        while (!stack.empty()) {
            const vertex_t u = stack.back();
            stack.pop_back();
            ++sizes[id];
            for (const vertex_t v : g.neighbors(u)) {
                if (component[v] != kUnassigned) continue;
                component[v] = id;
                stack.push_back(v);
            }
        }
    }

    std::uint32_t best = 0;
    for (std::uint32_t c = 1; c < sizes.size(); ++c)
        if (sizes[c] > sizes[best]) best = c;

    std::vector<vertex_t> members;
    members.reserve(static_cast<std::size_t>(sizes[best]));
    for (vertex_t v = 0; v < n; ++v)
        if (component[v] == best) members.push_back(v);
    return induced_subgraph(g, members);
}

}  // namespace sge
