// Ablation bench: vertex-label locality. The paper's layout chapter is
// about making the randomly-accessed hot data (bitmap, parent array)
// cache-resident; how vertices are *numbered* decides which cache lines
// a frontier touches. Four labelings of the same R-MAT graph:
//
//   generator  — raw R-MAT ids (hubs packed at low ids by construction)
//   shuffled   — uniform random relabelling (the honest baseline;
//                GTgraph/Graph500 ship graphs this way)
//   degree     — hubs first (packs the heavy tail into few bitmap lines)
//   bfs-order  — ids in BFS visit order (distance locality)

#include <cstdio>

#include "bench_util.hpp"
#include "graph/reorder.hpp"

int main() {
    using namespace sge;
    using namespace sge::bench;

    banner("Ablation: vertex-label locality (same graph, four labelings)",
           "Section III data-layout discussion");

    const std::uint64_t n = scaled(1 << 16);
    const std::uint64_t m = 16 * n;

    // Build from raw generator output (rmat_graph() already shuffles, so
    // generate by hand here).
    RmatParams params;
    params.scale = 0;
    while ((1ULL << params.scale) < n) ++params.scale;
    params.num_edges = m;
    const CsrGraph generator_labels = csr_from_edges(generate_rmat(params));

    EdgeList shuffled_edges = edges_from_csr(generator_labels);
    permute_vertices(shuffled_edges, 7);
    BuildOptions keep;
    keep.make_undirected = false;  // arcs already symmetric
    const CsrGraph shuffled = csr_from_edges(shuffled_edges, keep);

    const CsrGraph by_degree =
        apply_vertex_permutation(shuffled, degree_descending_order(shuffled));
    vertex_t root0 = 0;
    while (shuffled.degree(root0) == 0) ++root0;
    const CsrGraph by_bfs =
        apply_vertex_permutation(shuffled, bfs_visit_order(shuffled, root0));

    struct Labeled {
        const char* label;
        const CsrGraph* graph;
    };
    const Labeled variants[] = {
        {"generator ids", &generator_labels},
        {"shuffled (baseline)", &shuffled},
        {"degree-descending", &by_degree},
        {"bfs visit order", &by_bfs},
    };

    BfsOptions options;
    options.engine = BfsEngine::kBitmap;
    options.threads = 4;
    options.topology = Topology::emulate(1, 4, 1);

    const double baseline = bfs_rate(shuffled, options, /*runs=*/3);
    Table table({"labeling", "rate", "vs shuffled"});
    for (const Labeled& v : variants) {
        const double rate = bfs_rate(*v.graph, options, /*runs=*/3);
        table.add_row({v.label, fmt("%.1f ME/s", rate / 1e6),
                       fmt("%.2fx", rate / baseline)});
    }
    table.print();

    std::printf(
        "\nexpected shape: locality-aware labelings (degree, BFS order) beat "
        "the shuffled\nbaseline; generator ids sit in between (R-MAT packs "
        "hubs low by construction).\n");
    return 0;
}
