#include <gtest/gtest.h>

#include "core/bfs.hpp"
#include "gen/uniform.hpp"
#include "graph/builder.hpp"
#include "runtime/prng.hpp"
#include "stream/dynamic_graph.hpp"
#include "stream/incremental_bfs.hpp"
#include "test_util.hpp"

namespace sge {
namespace {

// ---------- DynamicGraph ----------

TEST(DynamicGraph, InsertQueryRemove) {
    DynamicGraph g(4);
    EXPECT_EQ(g.num_vertices(), 4u);
    EXPECT_EQ(g.num_arcs(), 0u);

    g.add_edge(0, 1);
    g.add_edge(1, 2);
    EXPECT_EQ(g.num_arcs(), 4u);
    EXPECT_TRUE(g.has_edge(0, 1));
    EXPECT_TRUE(g.has_edge(1, 0));
    EXPECT_FALSE(g.has_edge(0, 2));
    EXPECT_EQ(g.degree(1), 2u);

    EXPECT_TRUE(g.remove_edge(0, 1));
    EXPECT_FALSE(g.has_edge(0, 1));
    EXPECT_FALSE(g.remove_edge(0, 1));  // already gone
    EXPECT_EQ(g.num_arcs(), 2u);
}

TEST(DynamicGraph, SelfLoopCountsOneArc) {
    DynamicGraph g(2);
    g.add_edge(1, 1);
    EXPECT_EQ(g.num_arcs(), 1u);
    EXPECT_TRUE(g.has_edge(1, 1));
    EXPECT_TRUE(g.remove_edge(1, 1));
    EXPECT_EQ(g.num_arcs(), 0u);
}

TEST(DynamicGraph, AddVertexGrows) {
    DynamicGraph g(2);
    const vertex_t v = g.add_vertex();
    EXPECT_EQ(v, 2u);
    EXPECT_EQ(g.num_vertices(), 3u);
    g.add_edge(0, v);
    EXPECT_TRUE(g.has_edge(v, 0));
}

TEST(DynamicGraph, OutOfRangeThrows) {
    DynamicGraph g(3);
    EXPECT_THROW(g.add_edge(0, 3), std::out_of_range);
    EXPECT_THROW((void)g.degree(3), std::out_of_range);
}

TEST(DynamicGraph, SnapshotMatchesBuilder) {
    // Same edges through both paths must yield identical CSR structure.
    UniformParams params;
    params.num_vertices = 500;
    params.degree = 4;
    const EdgeList edges = generate_uniform(params);

    BuildOptions opts;
    opts.deduplicate = false;  // DynamicGraph keeps multiplicity
    opts.remove_self_loops = false;
    const CsrGraph built = csr_from_edges(edges, opts);

    DynamicGraph dynamic(params.num_vertices);
    for (const Edge& e : edges) dynamic.add_edge(e.src, e.dst);
    EXPECT_TRUE(built == dynamic.snapshot());
}

TEST(DynamicGraph, RoundTripFromStatic) {
    const CsrGraph g = test::two_cliques(5);
    const DynamicGraph dynamic(g);
    EXPECT_TRUE(g == dynamic.snapshot());
    EXPECT_EQ(dynamic.num_arcs(), g.num_edges());
}

// ---------- IncrementalBfs ----------

TEST(IncrementalBfs, InitialLevelsMatchBatchBfs) {
    const CsrGraph g = test::cycle_graph(20);
    const DynamicGraph dynamic(g);
    const IncrementalBfs inc(dynamic, 0);

    BfsOptions opts;
    opts.engine = BfsEngine::kSerial;
    const BfsResult batch = bfs(g, 0, opts);
    for (vertex_t v = 0; v < 20; ++v)
        EXPECT_EQ(inc.level(v), batch.level[v]) << v;
    EXPECT_EQ(inc.reached_count(), 20u);
}

TEST(IncrementalBfs, ShortcutEdgeLowersLevels) {
    // Path 0..9; adding edge {0, 9} folds the far end to level 1.
    DynamicGraph g(10);
    for (vertex_t v = 0; v + 1 < 10; ++v) g.add_edge(v, v + 1);
    IncrementalBfs inc(g, 0);
    EXPECT_EQ(inc.level(9), 9u);

    g.add_edge(0, 9);
    const std::size_t changed = inc.on_edge_added(0, 9);
    EXPECT_GT(changed, 0u);
    EXPECT_EQ(inc.level(9), 1u);
    EXPECT_EQ(inc.level(8), 2u);
    EXPECT_EQ(inc.level(5), 5u);  // middle unaffected (min of two waves)
}

TEST(IncrementalBfs, ConnectsNewComponent) {
    DynamicGraph g(6);
    g.add_edge(0, 1);
    g.add_edge(3, 4);
    g.add_edge(4, 5);
    IncrementalBfs inc(g, 0);
    EXPECT_EQ(inc.reached_count(), 2u);
    EXPECT_FALSE(inc.reached(4));

    g.add_edge(1, 3);
    inc.on_edge_added(1, 3);
    EXPECT_EQ(inc.reached_count(), 5u);
    EXPECT_EQ(inc.level(3), 2u);
    EXPECT_EQ(inc.level(5), 4u);
    EXPECT_FALSE(inc.reached(2));
}

TEST(IncrementalBfs, EdgeBetweenUnreachedIsDeferred) {
    DynamicGraph g(5);
    g.add_edge(0, 1);
    IncrementalBfs inc(g, 0);

    g.add_edge(3, 4);  // island edge
    EXPECT_EQ(inc.on_edge_added(3, 4), 0u);
    EXPECT_FALSE(inc.reached(3));

    // Later the island connects; the earlier edge must now count.
    g.add_edge(1, 3);
    inc.on_edge_added(1, 3);
    EXPECT_TRUE(inc.reached(4));
    EXPECT_EQ(inc.level(4), 3u);
}

TEST(IncrementalBfs, VertexGrowth) {
    DynamicGraph g(2);
    g.add_edge(0, 1);
    IncrementalBfs inc(g, 0);
    const vertex_t v = g.add_vertex();
    inc.on_vertex_added();
    EXPECT_FALSE(inc.reached(v));
    g.add_edge(1, v);
    inc.on_edge_added(1, v);
    EXPECT_EQ(inc.level(v), 2u);
}

TEST(IncrementalBfs, RandomStreamMatchesBatchRecompute) {
    // Property test: after every insertion, incremental levels must
    // equal a from-scratch BFS on the snapshot.
    Xoshiro256 rng(2024);
    constexpr vertex_t kN = 300;
    DynamicGraph g(kN);
    IncrementalBfs inc(g, 0);

    BfsOptions opts;
    opts.engine = BfsEngine::kSerial;
    for (int step = 0; step < 400; ++step) {
        const auto u = static_cast<vertex_t>(rng.next_below(kN));
        auto v = static_cast<vertex_t>(rng.next_below(kN - 1));
        if (v >= u) ++v;
        g.add_edge(u, v);
        inc.on_edge_added(u, v);

        if (step % 20 != 0) continue;  // full audit every 20 insertions
        const BfsResult batch = bfs(g.snapshot(), 0, opts);
        for (vertex_t w = 0; w < kN; ++w)
            ASSERT_EQ(inc.level(w), batch.level[w])
                << "step " << step << " vertex " << w;
        ASSERT_EQ(inc.reached_count(), batch.vertices_visited);
    }
}

TEST(IncrementalBfs, RebuildAfterRemoval) {
    DynamicGraph g(4);
    g.add_edge(0, 1);
    g.add_edge(1, 2);
    g.add_edge(2, 3);
    IncrementalBfs inc(g, 0);
    EXPECT_EQ(inc.level(3), 3u);

    g.remove_edge(1, 2);
    inc.rebuild();
    EXPECT_FALSE(inc.reached(2));
    EXPECT_EQ(inc.reached_count(), 2u);
}

TEST(IncrementalBfs, InvalidRootThrows) {
    DynamicGraph g(3);
    EXPECT_THROW(IncrementalBfs(g, 3), std::out_of_range);
}

}  // namespace
}  // namespace sge
