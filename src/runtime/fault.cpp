#include "runtime/fault.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "runtime/env.hpp"
#include "runtime/prng.hpp"

namespace sge::fault {

namespace {

constexpr const char* kSiteNames[kSiteCount] = {
    "alloc",          "pin",           "channel_push",   "channel_pop",
    "barrier",        "service_submit", "service_flush", "service_worker",
    "paged_read",
};

}  // namespace

const char* site_name(Site s) noexcept {
    const auto i = static_cast<unsigned>(s);
    return i < kSiteCount ? kSiteNames[i] : "unknown";
}

#if defined(SGE_FAULT_INJECTION_ENABLED) && SGE_FAULT_INJECTION_ENABLED

namespace detail {
std::atomic<unsigned> g_armed_mask{0};
}  // namespace detail

namespace {

constexpr std::uint64_t kDefaultSeed = 42;

constexpr const char* kSiteEnvNames[kSiteCount] = {
    "SGE_FAULT_ALLOC",          "SGE_FAULT_PIN",
    "SGE_FAULT_CHANNEL_PUSH",   "SGE_FAULT_CHANNEL_POP",
    "SGE_FAULT_BARRIER",        "SGE_FAULT_SERVICE_SUBMIT",
    "SGE_FAULT_SERVICE_FLUSH",  "SGE_FAULT_SERVICE_WORKER",
    "SGE_FAULT_PAGED_READ",
};

/// Parses "p=<double>" or "nth=<u64>". Returns nullopt on garbage —
/// a misspelled spec must not silently arm nothing *or* something.
std::optional<Trigger> parse_trigger(const std::string& spec) {
    Trigger t;
    const char* s = spec.c_str();
    char* end = nullptr;
    if (std::strncmp(s, "p=", 2) == 0) {
        t.probability = std::strtod(s + 2, &end);
        if (end == s + 2 || *end != '\0') return std::nullopt;
        if (t.probability < 0.0 || t.probability > 1.0) return std::nullopt;
        return t;
    }
    if (std::strncmp(s, "nth=", 4) == 0) {
        t.nth = std::strtoull(s + 4, &end, 10);
        if (end == s + 4 || *end != '\0' || t.nth == 0) return std::nullopt;
        return t;
    }
    return std::nullopt;
}

/// Per-site armed state. Triggers change only while the site is
/// disarmed (arm() clears the mask bit first), so fire_slow reads them
/// without locking; counters are atomics.
struct SiteState {
    Trigger trigger;
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> fired{0};
};

SiteState g_sites[kSiteCount];

/// PRNG for probability triggers, shared across sites and threads. The
/// lock is cold: only armed probability sites reach it.
std::mutex g_prng_mutex;
Xoshiro256 g_prng{kDefaultSeed};

/// Applies the SGE_FAULT_* environment once, at load time. A bad spec
/// is reported and ignored rather than terminating the process.
struct EnvLoader {
    EnvLoader() {
        try {
            load_from_env();
        } catch (const std::exception& e) {
            std::fprintf(stderr, "sge: fault injection disabled: %s\n",
                         e.what());
        }
    }
} g_env_loader;

}  // namespace

namespace detail {

bool fire_slow(Site site) noexcept {
    SiteState& st = g_sites[static_cast<unsigned>(site)];
    const std::uint64_t hit =
        st.hits.fetch_add(1, std::memory_order_relaxed) + 1;
    bool fire = false;
    if (st.trigger.nth > 0) {
        fire = hit == st.trigger.nth;
    } else if (st.trigger.probability > 0.0) {
        std::lock_guard guard(g_prng_mutex);
        fire = g_prng.next_double() < st.trigger.probability;
    }
    if (fire) st.fired.fetch_add(1, std::memory_order_relaxed);
    return fire;
}

}  // namespace detail

void arm(Site site, Trigger trigger) noexcept {
    const auto i = static_cast<unsigned>(site);
    if (i >= kSiteCount) return;
    detail::g_armed_mask.fetch_and(~(1U << i), std::memory_order_acq_rel);
    g_sites[i].trigger = trigger;
    g_sites[i].hits.store(0, std::memory_order_relaxed);
    g_sites[i].fired.store(0, std::memory_order_relaxed);
    if (trigger.nth > 0 || trigger.probability > 0.0)
        detail::g_armed_mask.fetch_or(1U << i, std::memory_order_acq_rel);
}

void disarm(Site site) noexcept {
    const auto i = static_cast<unsigned>(site);
    if (i >= kSiteCount) return;
    detail::g_armed_mask.fetch_and(~(1U << i), std::memory_order_acq_rel);
}

void disarm_all() noexcept {
    detail::g_armed_mask.store(0, std::memory_order_release);
    reseed(static_cast<std::uint64_t>(
        env_int("SGE_FAULT_SEED", static_cast<std::int64_t>(kDefaultSeed))));
}

void reseed(std::uint64_t seed) noexcept {
    std::lock_guard guard(g_prng_mutex);
    g_prng = Xoshiro256(seed);
}

std::optional<Trigger> armed_trigger(Site site) noexcept {
    const auto i = static_cast<unsigned>(site);
    if (i >= kSiteCount) return std::nullopt;
    const unsigned mask = detail::g_armed_mask.load(std::memory_order_acquire);
    if ((mask & (1U << i)) == 0) return std::nullopt;
    return g_sites[i].trigger;
}

std::uint64_t hits(Site site) noexcept {
    const auto i = static_cast<unsigned>(site);
    return i < kSiteCount ? g_sites[i].hits.load(std::memory_order_relaxed) : 0;
}

std::uint64_t fired(Site site) noexcept {
    const auto i = static_cast<unsigned>(site);
    return i < kSiteCount ? g_sites[i].fired.load(std::memory_order_relaxed) : 0;
}

void load_from_env() {
    if (!env_bool("SGE_FAULT_INJECTION", false)) return;
    reseed(static_cast<std::uint64_t>(
        env_int("SGE_FAULT_SEED", static_cast<std::int64_t>(kDefaultSeed))));
    for (unsigned i = 0; i < kSiteCount; ++i) {
        const auto spec = env_string(kSiteEnvNames[i]);
        if (!spec) continue;
        const auto trigger = parse_trigger(*spec);
        if (!trigger)
            throw std::invalid_argument(std::string(kSiteEnvNames[i]) +
                                        ": bad trigger spec '" + *spec +
                                        "' (want p=<0..1> or nth=<N>)");
        arm(static_cast<Site>(i), *trigger);
    }
}

#else  // fault sites compiled out: keep the API as inert stubs.

void arm(Site, Trigger) noexcept {}
void disarm(Site) noexcept {}
void disarm_all() noexcept {}
void reseed(std::uint64_t) noexcept {}
std::optional<Trigger> armed_trigger(Site) noexcept { return std::nullopt; }
std::uint64_t hits(Site) noexcept { return 0; }
std::uint64_t fired(Site) noexcept { return 0; }
void load_from_env() {}

#endif

}  // namespace sge::fault
