#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "stream/dynamic_graph.hpp"

namespace sge {

/// Work accounting of the repair waves (cumulative since construction /
/// last rebuild). `stale_skips` counts queue entries abandoned because
/// the vertex's level improved again after it was enqueued — without
/// the skip each such entry would rescan the vertex's full adjacency,
/// which is what made dense repair regions quadratic.
struct RepairStats {
    std::uint64_t waves = 0;        ///< repair waves run
    std::uint64_t enqueued = 0;     ///< queue entries pushed
    std::uint64_t stale_skips = 0;  ///< entries dropped without a rescan
    std::uint64_t edges_scanned = 0;///< adjacency entries examined
};

/// Incrementally-maintained BFS levels from a fixed root under edge
/// insertions — the streaming companion to the batch engines: after
/// each insertion the levels are repaired locally instead of recomputed
/// from scratch, so a stream of m edges costs O(total repair) rather
/// than O(m * (n + m)).
///
/// Repair rule for a new edge {u, v}: if one endpoint's level can drop
/// (level[u] + 1 < level[v] or vice versa), lower it and propagate the
/// improvement as a BFS wave that only touches vertices whose level
/// actually decreases — each vertex can decrease at most `levels`
/// times over the whole stream, bounding the total work. Queue entries
/// record the level at enqueue time; an entry whose vertex has since
/// improved further is skipped without rescanning its adjacency.
///
/// Deletions are out of scope (level *increases* need the full
/// decremental machinery): call rebuild() after removals. This is
/// enforced, not advisory — the object records DynamicGraph::version()
/// as it observes mutations, and any query across an unobserved
/// mutation throws std::logic_error instead of silently answering from
/// stale levels. (Throwing was chosen over auto-rebuild: the mismatch
/// is a caller bug, and a silent rebuild would hide the missing
/// notification while turning an O(1) accessor into an O(n + m) walk.)
class IncrementalBfs {
  public:
    /// Captures the current state of `graph` and computes initial
    /// levels from `root`. The graph must outlive this object.
    IncrementalBfs(const DynamicGraph& graph, vertex_t root);

    /// Notify that {u, v} has been inserted into the graph (call after
    /// DynamicGraph::add_edge). Returns the number of vertices whose
    /// level changed.
    std::size_t on_edge_added(vertex_t u, vertex_t v);

    /// Batched form: notify that every edge in `edges` has been
    /// inserted (call after the add_edge calls). All improved endpoints
    /// seed one repair wave, so a batch of shortcuts into the same
    /// region is repaired in one cascade instead of `edges.size()`
    /// overlapping ones. Returns the number of vertices whose level
    /// changed.
    std::size_t on_edges_added(
        std::span<const std::pair<vertex_t, vertex_t>> edges);

    /// Notify that a vertex was appended (add_vertex); it starts
    /// unreached. Covers every vertex appended since the last
    /// notification.
    void on_vertex_added();

    /// Recomputes from scratch (after deletions or bulk edits) and
    /// re-syncs with the graph's current mutation version.
    void rebuild();

    /// True when every graph mutation has been observed (via the
    /// on_* hooks or rebuild()); queries throw when this is false.
    [[nodiscard]] bool in_sync() const noexcept {
        return observed_version_ == graph_.version();
    }

    [[nodiscard]] vertex_t root() const noexcept { return root_; }
    [[nodiscard]] level_t level(vertex_t v) const {
        check_sync();
        return level_.at(v);
    }
    [[nodiscard]] vertex_t parent(vertex_t v) const {
        check_sync();
        return parent_.at(v);
    }
    [[nodiscard]] bool reached(vertex_t v) const {
        check_sync();
        return level_.at(v) != kInvalidLevel;
    }
    [[nodiscard]] std::uint64_t reached_count() const {
        check_sync();
        return reached_;
    }
    [[nodiscard]] const std::vector<level_t>& levels() const {
        check_sync();
        return level_;
    }

    /// Cumulative repair-wave work counters (reset by rebuild()).
    [[nodiscard]] const RepairStats& repair_stats() const noexcept {
        return stats_;
    }

  private:
    /// A pending repair: `v` entered the queue when its level dropped
    /// to `enqueue_level`; if level_[v] has improved further since, the
    /// entry is stale and is skipped.
    struct WaveEntry {
        vertex_t v;
        level_t enqueue_level;
    };

    void check_sync() const;
    bool seed(vertex_t from, vertex_t to);  // try lower `to` via `from`
    void bfs_wave(std::size_t& changed);

    const DynamicGraph& graph_;
    vertex_t root_;
    std::vector<level_t> level_;
    std::vector<vertex_t> parent_;
    std::vector<WaveEntry> queue_;  // reused across waves
    std::uint64_t reached_ = 0;
    std::uint64_t observed_version_ = 0;
    RepairStats stats_;
};

}  // namespace sge
