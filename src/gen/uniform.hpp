#pragma once

#include <cstdint>

#include "graph/edge_list.hpp"

namespace sge {

/// Parameters for the paper's "Uniformly Random Graphs": n vertices,
/// each with (out-)degree `degree`, neighbours drawn uniformly at
/// random (Section IV). Self-loops are rejected at draw time; parallel
/// edges may occur, exactly as with GTgraph's random generator, and are
/// collapsed (or not) by the CSR builder.
struct UniformParams {
    vertex_t num_vertices = 0;
    std::uint32_t degree = 8;
    std::uint64_t seed = 1;
};

/// Generates the directed edge list (num_vertices * degree edges).
/// Deterministic for a given seed.
EdgeList generate_uniform(const UniformParams& params);

}  // namespace sge
