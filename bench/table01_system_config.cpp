// Tables I & II: system configuration tables.
//
// Table I lists the two Nehalem platforms' parameters; Table II the
// comparison systems. This binary prints the paper's reference values
// next to what this library detects on the host it runs on, making the
// gap between the reproduction environment and the original explicit.

#include <cstdio>

#include "bench_util.hpp"
#include "runtime/cache_info.hpp"
#include "runtime/topology.hpp"

int main() {
    using namespace sge;
    using namespace sge::bench;

    banner("Tables I & II: experimental platforms", "Table I / Table II");

    {
        std::printf("Table I — the paper's Intel platforms:\n");
        Table table({"parameter", "Nehalem-EP (Xeon X5570)",
                     "Nehalem-EX (Xeon 7560)"});
        table.add_row({"sockets", "2", "4"});
        table.add_row({"cores/socket", "4", "8"});
        table.add_row({"SMT/core", "2", "2"});
        table.add_row({"total threads", "16", "64"});
        table.add_row({"core frequency", "2.93 GHz", "2.26 GHz"});
        table.add_row({"L1 / L2 / L3", "32 KB / 256 KB / 8 MB",
                       "32 KB / 256 KB / 24 MB"});
        table.add_row({"cache line", "64 B", "64 B"});
        table.add_row({"memory channels", "3 x DDR3-1066 per socket",
                       "4 x DDR3-1066 per socket"});
        table.add_row({"system memory", "48 GB", "256 GB"});
        table.print();
    }

    {
        std::printf("\nTable II — comparison systems (published BFS results):\n");
        Table table({"system", "clock", "processors", "threads", "memory"});
        table.add_row({"Cray XMT", "500 MHz", "128", "16K", "1 TB"});
        table.add_row({"Cray MTA-2", "220 MHz", "40", "5120", "160 GB"});
        table.add_row({"IBM BlueGene/L", "700 MHz", "256 nodes", "512",
                       "512 MB/node"});
        table.add_row({"AMD Opteron 2350", "2.0 GHz", "2", "8", "16 GB"});
        table.add_row({"Intel Xeon X5580", "3.2 GHz", "2", "16", "16 GB"});
        table.print();
    }

    {
        const Topology host = Topology::detect();
        std::printf("\nThis reproduction host:\n");
        Table table({"parameter", "value"});
        table.add_row({"detected topology", host.describe()});
        table.add_row({"hardware threads", fmt_u64(host.max_threads())});
        table.add_row({"cache hierarchy", describe_caches(detect_caches(0))});
        table.add_row({"emulated EP model", Topology::nehalem_ep().describe()});
        table.add_row({"emulated EX model", Topology::nehalem_ex().describe()});
        table.print();
        std::printf(
            "\nThe benches run the paper's machine *models* (socket-major "
            "thread grouping,\nper-socket data placement, inter-socket "
            "channels) on whatever CPUs exist here;\nphysical NUMA latency "
            "asymmetry is absent. See DESIGN.md, Substitutions.\n");
    }
    return 0;
}
