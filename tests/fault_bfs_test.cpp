#include <gtest/gtest.h>

#include <chrono>
#include <new>
#include <string>

#include "concurrency/spin_barrier.hpp"
#include "core/bfs.hpp"
#include "core/engine_common.hpp"
#include "core/validate.hpp"
#include "gen/rmat.hpp"
#include "graph/builder.hpp"
#include "runtime/fault.hpp"
#include "runtime/stats.hpp"

namespace sge {
namespace {

using fault::Site;
using fault::Trigger;

/// End-to-end fault-injection stress: BFS under injected faults must
/// either complete with a valid tree or fail with a clean, prompt
/// error — never hang, crash, or return a corrupt result.
class FaultBfsTest : public ::testing::Test {
  protected:
    void SetUp() override {
        fault::disarm_all();
        if (!fault::compiled_in())
            GTEST_SKIP() << "built with SGE_FAULT_INJECTION=OFF";
        RmatParams params;
        params.scale = 12;
        params.num_edges = 16384;
        params.seed = 7;
        graph_ = csr_from_edges(generate_rmat(params));
    }
    void TearDown() override { fault::disarm_all(); }

    static BfsOptions multisocket_options() {
        BfsOptions options;
        options.engine = BfsEngine::kMultiSocket;
        options.threads = 8;
        options.topology = Topology::emulate(2, 4, 1);
        options.channel_capacity = 64;  // small ring: spill path is live
        return options;
    }

    CsrGraph graph_;
};

TEST_F(FaultBfsTest, MultisocketSurvivesChannelFaults) {
    // Channel faults are perturbations, not errors: forced spills and
    // throttled drains exercise the overflow machinery but must never
    // change the answer.
    fault::reseed(99);
    fault::arm(Site::kChannelPush, Trigger{.probability = 0.3, .nth = 0});
    fault::arm(Site::kChannelPop, Trigger{.probability = 0.3, .nth = 0});
    const BfsResult result = bfs(graph_, 0, multisocket_options());
    fault::disarm_all();
    EXPECT_GT(fault::hits(Site::kChannelPush), 0u);
    const ValidationReport report = validate_bfs_tree(graph_, 0, result);
    EXPECT_TRUE(report.ok) << report.error;
}

TEST_F(FaultBfsTest, BarrierFaultPropagatesQuickly) {
    // A worker dying at a barrier must unwind the whole team and
    // surface as FaultInjected in bounded time — not strand siblings.
    fault::arm(Site::kBarrier, Trigger{.probability = 0.0, .nth = 20});
    const auto start = std::chrono::steady_clock::now();
    EXPECT_THROW(bfs(graph_, 0, multisocket_options()), fault::FaultInjected);
    const auto elapsed = std::chrono::steady_clock::now() - start;
    EXPECT_LT(elapsed, std::chrono::seconds(5));
    fault::disarm_all();

    // The same options must work again afterwards: nothing leaked.
    const BfsResult result = bfs(graph_, 0, multisocket_options());
    const ValidationReport report = validate_bfs_tree(graph_, 0, result);
    EXPECT_TRUE(report.ok) << report.error;
}

TEST_F(FaultBfsTest, AllocFaultUnwindsCleanly) {
    // Armed after the graph is built, the first engine-side aligned
    // allocation throws std::bad_alloc; the run must unwind cleanly.
    fault::arm(Site::kAlloc, Trigger{.probability = 0.0, .nth = 1});
    const auto start = std::chrono::steady_clock::now();
    EXPECT_THROW(bfs(graph_, 0, multisocket_options()), std::bad_alloc);
    const auto elapsed = std::chrono::steady_clock::now() - start;
    EXPECT_LT(elapsed, std::chrono::seconds(5));
    fault::disarm_all();

    const BfsResult result = bfs(graph_, 0, multisocket_options());
    const ValidationReport report = validate_bfs_tree(graph_, 0, result);
    EXPECT_TRUE(report.ok) << report.error;
}

TEST_F(FaultBfsTest, EveryParallelEngineSurvivesBarrierFault) {
    for (const BfsEngine engine :
         {BfsEngine::kNaive, BfsEngine::kBitmap, BfsEngine::kMultiSocket,
          BfsEngine::kHybrid}) {
        fault::arm(Site::kBarrier, Trigger{.probability = 0.0, .nth = 5});
        BfsOptions options = multisocket_options();
        options.engine = engine;
        EXPECT_THROW(bfs(graph_, 0, options), fault::FaultInjected)
            << to_string(engine);
        fault::disarm_all();
        const BfsResult result = bfs(graph_, 0, options);
        const ValidationReport report = validate_bfs_tree(graph_, 0, result);
        EXPECT_TRUE(report.ok) << to_string(engine) << ": " << report.error;
    }
}

TEST(LevelWatchdogTest, FiresOnStalledBarrierAndCapturesDiagnostics) {
    // A two-party barrier with only ever one arrival models a stalled
    // level step: the watchdog must fire, capture the diagnostic, and
    // release the waiter via abort.
    SpinBarrier barrier(2);
    detail::LevelWatchdog watchdog(0.05, barrier,
                                   [] { return std::string("level=3 q0=17"); });
    const auto start = std::chrono::steady_clock::now();
    EXPECT_FALSE(barrier.arrive_and_wait());  // released by the abort
    const auto elapsed = std::chrono::steady_clock::now() - start;
    EXPECT_LT(elapsed, std::chrono::seconds(5));
    watchdog.disarm();
    EXPECT_TRUE(watchdog.fired());
    EXPECT_EQ(watchdog.report(), "level=3 q0=17");
    EXPECT_THROW(detail::finish_watchdog(watchdog, "test"), BfsDeadlineError);
}

TEST(LevelWatchdogTest, DisarmedBeforeDeadlineIsFree) {
    SpinBarrier barrier(1);
    detail::LevelWatchdog watchdog(60.0, barrier, [] { return std::string(); });
    watchdog.disarm();
    EXPECT_FALSE(watchdog.fired());
    EXPECT_FALSE(barrier.aborted());
    detail::finish_watchdog(watchdog, "test");  // must not throw
}

TEST(LevelWatchdogTest, ZeroDeadlineNeverArms) {
    SpinBarrier barrier(1);
    detail::LevelWatchdog watchdog(0.0, barrier, [] { return std::string(); });
    watchdog.disarm();
    EXPECT_FALSE(watchdog.fired());
}

TEST_F(FaultBfsTest, WatchdogConvertsStallIntoDiagnosticError) {
    // Throttle the channel drain to one tuple per pop and give the run
    // a deadline it cannot meet: the watchdog must abort the run and
    // the engine must throw BfsDeadlineError carrying diagnostics.
    fault::arm(Site::kChannelPop, Trigger{.probability = 1.0, .nth = 0});
    BfsOptions options = multisocket_options();
    options.watchdog_seconds = 0.001;
    const std::uint64_t fires_before =
        runtime_warnings().watchdog_fires.load(std::memory_order_relaxed);
    try {
        const BfsResult result = bfs(graph_, 0, options);
        // Plausible on a very fast host: the run beat the deadline.
        // Then the result must still be valid.
        fault::disarm_all();
        const ValidationReport report = validate_bfs_tree(graph_, 0, result);
        EXPECT_TRUE(report.ok) << report.error;
    } catch (const BfsDeadlineError& e) {
        fault::disarm_all();
        const std::string what = e.what();
        EXPECT_NE(what.find("watchdog deadline exceeded"), std::string::npos)
            << what;
        EXPECT_NE(what.find("level="), std::string::npos) << what;
        EXPECT_NE(what.find("socket"), std::string::npos) << what;
        EXPECT_GT(runtime_warnings().watchdog_fires.load(
                      std::memory_order_relaxed),
                  fires_before);
    }
}

}  // namespace
}  // namespace sge
