#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/topology.hpp"

namespace sge {

class SpinBarrier;

/// Persistent team of worker threads with socket-aware placement.
///
/// Every parallel region in the library (BFS levels, generators' sanity
/// sweeps, probes) executes as `team.run([](int tid){...})`. Workers are
/// created once, pinned to the CPUs the Topology prescribes (a no-op for
/// emulated topologies), and parked on a condition variable between
/// regions — the BFS engines then synchronise *inside* a region with
/// SpinBarrier, so the condvar cost is paid once per BFS, not per level.
///
/// Fault tolerance: a worker whose pin attempt fails degrades to an
/// unpinned run (counted in runtime_warnings(), warned once). A region
/// that synchronises internally with a SpinBarrier should pass that
/// barrier to run(): the first worker exception then aborts the barrier,
/// releasing siblings that would otherwise spin forever waiting for the
/// thrower, so run() completes and rethrows in bounded time.
class ThreadTeam {
  public:
    /// Spawns `threads` workers placed per `topo` (see
    /// Topology::socket_of_thread for the fill order).
    ThreadTeam(int threads, Topology topo);

    /// Convenience: detected topology.
    explicit ThreadTeam(int threads) : ThreadTeam(threads, Topology::detect()) {}

    ~ThreadTeam();

    ThreadTeam(const ThreadTeam&) = delete;
    ThreadTeam& operator=(const ThreadTeam&) = delete;

    /// Number of workers.
    [[nodiscard]] int size() const noexcept { return static_cast<int>(workers_.size()); }

    [[nodiscard]] const Topology& topology() const noexcept { return topo_; }

    /// Logical socket of worker `tid`.
    [[nodiscard]] int socket_of(int tid) const noexcept {
        return topo_.socket_of_thread(tid);
    }

    /// Number of logical sockets engaged by this team's workers.
    [[nodiscard]] int sockets_used() const noexcept {
        return topo_.sockets_used(size());
    }

    /// Runs `fn(tid)` on every worker; returns when all have finished.
    /// Exceptions thrown by workers are rethrown (the first one) on the
    /// caller after all workers complete the region.
    ///
    /// When the region synchronises internally on `abort_barrier`, pass
    /// it here: the first worker that throws poisons the barrier, so
    /// waiting siblings observe `arrive_and_wait() == false`, unwind,
    /// and the region completes instead of deadlocking. Workers must
    /// honor that contract by returning when arrive_and_wait yields
    /// false.
    void run(const std::function<void(int)>& fn,
             SpinBarrier* abort_barrier = nullptr);

  private:
    void worker_main(int tid);

    Topology topo_;
    std::vector<std::thread> workers_;

    std::mutex mutex_;
    std::condition_variable start_cv_;
    std::condition_variable done_cv_;
    const std::function<void(int)>* job_ = nullptr;
    SpinBarrier* abort_barrier_ = nullptr;
    std::uint64_t epoch_ = 0;
    int remaining_ = 0;
    bool shutdown_ = false;
    std::exception_ptr first_error_;
};

}  // namespace sge
