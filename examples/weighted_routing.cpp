// Weighted route planning — the paper's introduction cites BFS as the
// building block of "best-first search, uniform-cost search,
// greedy-search and A*, which are commonly used in motion planning".
// This example runs uniform-cost search (Dijkstra) and delta-stepping
// on a weighted torus "road grid" with random per-road costs, and
// contrasts hop-shortest (BFS) with cost-shortest routes.

#include <cstdio>
#include <cstdlib>

#include "analytics/astar.hpp"
#include "analytics/shortest_path.hpp"
#include "analytics/sssp.hpp"
#include "core/bfs.hpp"
#include "gen/grid.hpp"
#include "graph/builder.hpp"
#include "graph/weighted.hpp"
#include "runtime/timer.hpp"

int main(int argc, char** argv) {
    using namespace sge;

    GridParams grid;
    grid.width = argc > 1 ? static_cast<std::uint32_t>(std::atol(argv[1])) : 256;
    grid.height = grid.width;
    grid.diagonal = true;  // 8-connected, like a motion-planning lattice
    const WeightedCsrGraph map = with_random_weights(
        csr_from_edges(generate_grid(grid)), /*min=*/1, /*max=*/20, /*seed=*/5);

    const vertex_t start = 0;  // top-left corner
    const vertex_t goal =
        static_cast<vertex_t>(map.num_vertices() - 1);  // bottom-right

    std::printf("road grid: %ux%u, 8-connected, costs 1..20\n", grid.width,
                grid.height);

    // Hop-shortest route (ignores costs): plain BFS.
    BfsOptions bfs_opts;
    bfs_opts.engine = BfsEngine::kBitmap;
    bfs_opts.threads = 4;
    bfs_opts.topology = Topology::emulate(1, 4, 1);
    WallTimer timer;
    const auto hop_route = shortest_path(map.graph(), start, goal, bfs_opts);
    const double bfs_ms = timer.seconds() * 1e3;

    // Cost-shortest route: uniform-cost search.
    timer.reset();
    const SsspResult exact = dijkstra(map, start);
    const double dijkstra_ms = timer.seconds() * 1e3;

    timer.reset();
    const SsspResult bucketed = delta_stepping(map, start);
    const double delta_ms = timer.seconds() * 1e3;

    // Goal-directed: A* with an admissible Chebyshev heuristic (the
    // grid is 8-connected; min edge weight is 1).
    timer.reset();
    const AstarResult guided =
        astar(map, start, goal, grid_chebyshev_heuristic(grid.width, goal, 1));
    const double astar_ms = timer.seconds() * 1e3;

    if (!hop_route || exact.distance[goal] == kInfiniteDistance) {
        std::printf("goal unreachable?!\n");
        return 1;
    }

    // Cost of the hop-shortest route, for contrast.
    std::uint64_t hop_route_cost = 0;
    for (std::size_t i = 0; i + 1 < hop_route->size(); ++i) {
        const vertex_t u = (*hop_route)[i];
        const auto adj = map.neighbors(u);
        const auto w = map.weights(u);
        for (std::size_t e = 0; e < adj.size(); ++e) {
            if (adj[e] == (*hop_route)[i + 1]) {
                hop_route_cost += w[e];
                break;
            }
        }
    }

    // Hop count of the cost-shortest route.
    std::uint64_t cheap_route_hops = 0;
    for (vertex_t v = goal; exact.parent[v] != v; v = exact.parent[v])
        ++cheap_route_hops;

    std::printf("\nroute %u -> %u:\n", start, goal);
    std::printf("  hop-shortest (BFS):        %zu hops, cost %llu   (%.2f ms)\n",
                hop_route->size() - 1,
                static_cast<unsigned long long>(hop_route_cost), bfs_ms);
    std::printf("  cost-shortest (Dijkstra):  %llu hops, cost %llu   (%.2f ms)\n",
                static_cast<unsigned long long>(cheap_route_hops),
                static_cast<unsigned long long>(exact.distance[goal]),
                dijkstra_ms);
    std::printf("  delta-stepping agrees:     %s               (%.2f ms)\n",
                bucketed.distance[goal] == exact.distance[goal] ? "yes" : "NO",
                delta_ms);
    std::printf("  A* (Chebyshev) agrees:     %s               (%.2f ms)\n",
                guided.found && guided.distance == exact.distance[goal]
                    ? "yes"
                    : "NO",
                astar_ms);
    std::printf(
        "\neffort: dijkstra %llu relaxations (whole map), delta-stepping "
        "%llu,\n        A* expanded %llu of %u vertices (goal-directed)\n",
        static_cast<unsigned long long>(exact.edges_relaxed),
        static_cast<unsigned long long>(bucketed.edges_relaxed),
        static_cast<unsigned long long>(guided.vertices_expanded),
        map.num_vertices());
    const bool ok = bucketed.distance[goal] == exact.distance[goal] &&
                    guided.found && guided.distance == exact.distance[goal];
    return ok ? 0 : 1;
}
