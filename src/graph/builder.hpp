#pragma once

#include "graph/csr_graph.hpp"
#include "graph/edge_list.hpp"

namespace sge {

/// CSR construction knobs.
struct BuildOptions {
    /// Insert the reverse of every edge (the paper's BFS workloads are
    /// symmetric traversals; generators emit one direction).
    bool make_undirected = true;
    /// Drop v -> v edges (they add scan work but never discover anyone).
    bool remove_self_loops = true;
    /// Collapse parallel edges after sorting.
    bool deduplicate = true;
    /// Sort each adjacency ascending. Costs O(m log) at build time,
    /// enables O(log deg) has_edge and makes traversal order
    /// deterministic for the serial reference.
    bool sort_neighbors = true;
};

/// Builds a CSR graph from an edge list via counting sort on the source
/// vertex: O(n + m) time, no comparison sort over the full edge set.
CsrGraph csr_from_edges(const EdgeList& edges, const BuildOptions& opts = {});

/// Convenience: extract the full edge list back out of a CSR (tests and
/// permutation round-trips).
EdgeList edges_from_csr(const CsrGraph& g);

}  // namespace sge
