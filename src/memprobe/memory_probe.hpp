#pragma once

#include <cstddef>
#include <cstdint>

namespace sge {

/// Result of a probe run.
struct ProbeResult {
    double seconds = 0.0;
    std::uint64_t operations = 0;
    /// Checksum folded from the loaded values; defeats dead-code
    /// elimination and lets tests verify the probe really walked memory.
    std::uint64_t checksum = 0;

    [[nodiscard]] double ops_per_second() const noexcept {
        return seconds > 0 ? static_cast<double>(operations) / seconds : 0.0;
    }
};

/// The Figure 2 microbenchmark: pseudo-random read-only accesses over a
/// working set of a given size, with a configurable number of
/// *independent* request chains in flight.
///
/// The working set is a single random cycle of next-indices (Sattolo's
/// algorithm), so each chain is fully dependent internally — every load
/// must complete before the next issues — while `batch_depth` chains
/// progress independently, exactly the software-pipelining structure the
/// paper uses ("the core issues a batch of up to 16 memory requests and
/// then waits for the completion of all of them"). batch_depth == 1
/// measures raw load-to-use latency; 16 exposes the memory-level
/// parallelism of the machine.
struct MemoryProbeParams {
    std::size_t working_set_bytes = 1 << 22;
    std::size_t batch_depth = 16;
    /// Total loads to issue across all chains.
    std::uint64_t total_reads = 1 << 22;
    std::uint64_t seed = 1;
};

ProbeResult run_memory_probe(const MemoryProbeParams& params);

}  // namespace sge
