#include <gtest/gtest.h>

#include "core/bfs.hpp"
#include "core/validate.hpp"
#include "gen/grid.hpp"
#include "gen/permute.hpp"
#include "gen/ssca2.hpp"
#include "graph/builder.hpp"
#include "graph/gpartition.hpp"
#include "graph/reorder.hpp"
#include "test_util.hpp"

namespace sge {
namespace {

void expect_valid_assignment(const PartitionAssignment& a, vertex_t n,
                             int parts) {
    ASSERT_EQ(a.part.size(), n);
    ASSERT_EQ(a.parts, parts);
    for (const int p : a.part) {
        ASSERT_GE(p, 0);
        ASSERT_LT(p, parts);
    }
}

TEST(Gpartition, EvaluateCountsCutArcs) {
    // Path 0-1-2-3 split {0,1} | {2,3}: one undirected cut edge = 2 arcs.
    const CsrGraph g = test::path_graph(4);
    const std::vector<int> part = {0, 0, 1, 1};
    const PartitionQuality q = evaluate_partition(g, part, 2);
    EXPECT_EQ(q.cut_arcs, 2u);
    EXPECT_DOUBLE_EQ(q.imbalance, 0.0);
}

TEST(Gpartition, EvaluateDetectsImbalance) {
    const CsrGraph g = test::path_graph(4);
    const std::vector<int> part = {0, 0, 0, 1};
    const PartitionQuality q = evaluate_partition(g, part, 2);
    EXPECT_DOUBLE_EQ(q.imbalance, 0.5);  // 3 / 2 - 1
}

TEST(Gpartition, EvaluateRejectsBadInput) {
    const CsrGraph g = test::path_graph(4);
    const std::vector<int> wrong_size = {0, 1};
    EXPECT_THROW(evaluate_partition(g, wrong_size, 2), std::invalid_argument);
    const std::vector<int> bad_id = {0, 0, 0, 7};
    EXPECT_THROW(evaluate_partition(g, bad_id, 2), std::invalid_argument);
}

TEST(Gpartition, BlockMatchesSocketPartition) {
    const PartitionAssignment a = block_partition(100, 4);
    expect_valid_assignment(a, 100, 4);
    EXPECT_EQ(a.part[0], 0);
    EXPECT_EQ(a.part[24], 0);
    EXPECT_EQ(a.part[25], 1);
    EXPECT_EQ(a.part[99], 3);
}

TEST(Gpartition, BfsGrowAssignsEveryVertexWithinBalance) {
    Ssca2Params params;
    params.num_vertices = 3000;
    params.seed = 6;
    const CsrGraph g = csr_from_edges(generate_ssca2(params));
    for (const int parts : {2, 3, 8}) {
        const PartitionAssignment a = bfs_grow_partition(g, parts, 1);
        expect_valid_assignment(a, g.num_vertices(), parts);
        const PartitionQuality q = evaluate_partition(g, a.part, parts);
        EXPECT_LE(q.imbalance, 0.25) << parts << " parts";
    }
}

TEST(Gpartition, BfsGrowBeatsBlocksOnShuffledGrid) {
    // A grid with shuffled labels: block partition cuts ~everything;
    // region growing rediscovers the geometry.
    GridParams params;
    params.width = 48;
    params.height = 48;
    EdgeList edges = generate_grid(params);
    permute_vertices(edges, 11);
    const CsrGraph g = csr_from_edges(edges);

    const PartitionAssignment blocks = block_partition(g.num_vertices(), 4);
    const PartitionAssignment grown = bfs_grow_partition(g, 4, 2);
    const auto q_blocks = evaluate_partition(g, blocks.part, 4);
    const auto q_grown = evaluate_partition(g, grown.part, 4);
    EXPECT_LT(q_grown.cut_arcs, q_blocks.cut_arcs / 2)
        << "region growing found no locality";
}

TEST(Gpartition, PartitionOrderMakesPartsContiguous) {
    Ssca2Params params;
    params.num_vertices = 500;
    const CsrGraph g = csr_from_edges(generate_ssca2(params));
    const PartitionAssignment a = bfs_grow_partition(g, 3, 4);
    const auto perm = partition_order(a);

    // perm must be a permutation and sort vertices by part.
    std::vector<int> part_of_new(g.num_vertices(), -1);
    std::vector<bool> hit(g.num_vertices(), false);
    for (vertex_t v = 0; v < g.num_vertices(); ++v) {
        ASSERT_LT(perm[v], g.num_vertices());
        ASSERT_FALSE(hit[perm[v]]);
        hit[perm[v]] = true;
        part_of_new[perm[v]] = a.part[v];
    }
    for (vertex_t i = 0; i + 1 < g.num_vertices(); ++i)
        ASSERT_LE(part_of_new[i], part_of_new[i + 1]) << "not contiguous at " << i;
}

TEST(Gpartition, RelabeledPartitionFeedsMultiSocketBfs) {
    // End to end: grow a partition, relabel, run Algorithm 3 with the
    // matching emulated socket count, validate.
    GridParams params;
    params.width = 40;
    params.height = 40;
    EdgeList edges = generate_grid(params);
    permute_vertices(edges, 3);
    const CsrGraph g = csr_from_edges(edges);

    const PartitionAssignment a = bfs_grow_partition(g, 4, 9);
    const CsrGraph relabeled = apply_vertex_permutation(g, partition_order(a));

    BfsOptions opts;
    opts.engine = BfsEngine::kMultiSocket;
    opts.threads = 4;
    opts.topology = Topology::emulate(4, 1, 1);
    opts.collect_stats = true;
    const BfsResult r = bfs(relabeled, 0, opts);
    EXPECT_TRUE(validate_bfs_tree(relabeled, 0, r).ok);
    EXPECT_EQ(r.vertices_visited, g.num_vertices());

    // The relabeled run should ship notably fewer tuples than the raw
    // shuffled labels under block partition.
    const BfsResult raw = bfs(g, 0, opts);
    std::uint64_t tuples_relabeled = 0;
    std::uint64_t tuples_raw = 0;
    for (const auto& s : r.level_stats) tuples_relabeled += s.remote_tuples;
    for (const auto& s : raw.level_stats) tuples_raw += s.remote_tuples;
    EXPECT_LT(tuples_relabeled, tuples_raw);
}

TEST(Gpartition, MorePartsThanVerticesClamps) {
    const CsrGraph g = test::path_graph(3);
    const PartitionAssignment a = bfs_grow_partition(g, 10, 1);
    EXPECT_EQ(a.parts, 3);
    expect_valid_assignment(a, 3, 3);
}

TEST(Gpartition, InvalidPartsThrows) {
    const CsrGraph g = test::path_graph(3);
    EXPECT_THROW(bfs_grow_partition(g, 0), std::invalid_argument);
}

}  // namespace
}  // namespace sge
