#pragma once

namespace sge {

/// Pins the calling thread to OS CPU `cpu`. Returns true on success.
/// `cpu < 0` is a no-op returning false — the convention Topology uses
/// for emulated topologies, where workers float.
///
/// Pinning is best-effort: inside containers or cpusets the syscall can
/// legitimately fail, and the library must keep working (the paper's
/// algorithms are correct regardless of placement; affinity only affects
/// performance).
bool pin_current_thread(int cpu) noexcept;

/// Returns the OS CPU the calling thread last ran on, or -1 if unknown.
int current_cpu() noexcept;

}  // namespace sge
