#include "gen/small_world.hpp"

#include <algorithm>
#include <stdexcept>

#include "runtime/prng.hpp"

namespace sge {

EdgeList generate_small_world(const SmallWorldParams& params) {
    const vertex_t n = params.num_vertices;
    if (n == 0) return EdgeList{};
    if (params.rewire_probability < 0.0 || params.rewire_probability > 1.0)
        throw std::invalid_argument(
            "generate_small_world: rewire_probability outside [0, 1]");

    const std::uint32_t half_k = std::max<std::uint32_t>(params.mean_degree / 2, 1);
    if (2 * half_k >= n)
        throw std::invalid_argument(
            "generate_small_world: mean_degree must be < num_vertices");

    EdgeList edges(n);
    edges.reserve(static_cast<std::size_t>(n) * half_k);

    Xoshiro256 rng(params.seed);
    for (vertex_t u = 0; u < n; ++u) {
        for (std::uint32_t j = 1; j <= half_k; ++j) {
            vertex_t v = static_cast<vertex_t>((u + j) % n);
            if (params.rewire_probability > 0.0 &&
                rng.next_double() < params.rewire_probability) {
                // Rewire the far endpoint to a uniform non-self target.
                v = static_cast<vertex_t>(rng.next_below(n - 1));
                if (v >= u) ++v;
            }
            edges.add(u, v);
        }
    }
    return edges;
}

}  // namespace sge
