#include "analytics/triangles.hpp"

#include <algorithm>
#include <atomic>

#include "concurrency/thread_team.hpp"

namespace sge {

double TriangleCounts::global_clustering(const CsrGraph& g) const {
    // Open wedges centred at v: deg(v) choose 2.
    double wedges = 0.0;
    for (vertex_t v = 0; v < g.num_vertices(); ++v) {
        const double d = static_cast<double>(g.degree(v));
        wedges += d * (d - 1.0) / 2.0;
    }
    return wedges == 0.0 ? 0.0 : 3.0 * static_cast<double>(total) / wedges;
}

TriangleCounts count_triangles(const CsrGraph& g, const TriangleOptions& options) {
    const vertex_t n = g.num_vertices();
    TriangleCounts counts;
    counts.per_vertex.assign(n, 0);
    if (n == 0) return counts;

    const int threads = std::max(1, options.threads);
    ThreadTeam team(threads,
                    options.topology ? *options.topology : Topology::detect());

    std::atomic<std::uint64_t> total{0};
    std::atomic<std::size_t> cursor{0};
    constexpr std::size_t kChunk = 64;

    // per_vertex updates go through atomic_ref: triangle (u, v, w) is
    // found exactly once (u < v < w) but credits three vertices, two of
    // which another worker may own.
    std::uint64_t* const per_vertex = counts.per_vertex.data();

    team.run([&](int) {
        std::uint64_t local_total = 0;
        for (;;) {
            const std::size_t base =
                cursor.fetch_add(kChunk, std::memory_order_relaxed);
            if (base >= n) break;
            const std::size_t stop = std::min<std::size_t>(base + kChunk, n);
            for (std::size_t ui = base; ui < stop; ++ui) {
                const auto u = static_cast<vertex_t>(ui);
                const auto adj_u = g.neighbors(u);
                for (const vertex_t v : adj_u) {
                    if (v <= u) continue;  // orient: u < v
                    const auto adj_v = g.neighbors(v);
                    // Merge-intersect the suffixes > v of both lists.
                    auto iu = std::lower_bound(adj_u.begin(), adj_u.end(),
                                               v + 1);
                    auto iv = std::lower_bound(adj_v.begin(), adj_v.end(),
                                               v + 1);
                    while (iu != adj_u.end() && iv != adj_v.end()) {
                        if (*iu < *iv) {
                            ++iu;
                        } else if (*iv < *iu) {
                            ++iv;
                        } else {
                            const vertex_t w = *iu;
                            ++local_total;
                            std::atomic_ref<std::uint64_t>(per_vertex[u])
                                .fetch_add(1, std::memory_order_relaxed);
                            std::atomic_ref<std::uint64_t>(per_vertex[v])
                                .fetch_add(1, std::memory_order_relaxed);
                            std::atomic_ref<std::uint64_t>(per_vertex[w])
                                .fetch_add(1, std::memory_order_relaxed);
                            ++iu;
                            ++iv;
                        }
                    }
                }
            }
        }
        total.fetch_add(local_total, std::memory_order_relaxed);
    });

    counts.total = total.load(std::memory_order_relaxed);
    return counts;
}

}  // namespace sge
