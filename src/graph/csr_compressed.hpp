#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "graph/csr_graph.hpp"
#include "graph/types.hpp"
#include "runtime/aligned_buffer.hpp"
#include "runtime/cacheline.hpp"
#include "runtime/prefetch.hpp"

namespace sge {

/// LEB128-style variable-length integers (7 payload bits per byte, high
/// bit = continuation), little-endian groups — the codec behind
/// CompressedCsrGraph. Kept header-inline: decode_u64 is the innermost
/// loop of every compressed adjacency scan.
namespace varint {

/// Worst case for one encoded value here: the zig-zagged first delta
/// spans 33 bits (vertex ids are 32-bit, the delta is signed), so
/// ceil(33 / 7) = 5 bytes; unsigned 32-bit gaps also need at most 5.
inline constexpr std::size_t kMaxBytes = 5;

/// Appends `value` at `out`; returns the bytes written (<= kMaxBytes
/// for values below 2^35).
inline std::size_t encode_u64(std::uint64_t value, std::uint8_t* out) noexcept {
    std::size_t i = 0;
    while (value >= 0x80) {
        out[i++] = static_cast<std::uint8_t>(value) | 0x80u;
        value >>= 7;
    }
    out[i++] = static_cast<std::uint8_t>(value);
    return i;
}

[[nodiscard]] inline std::size_t encoded_size_u64(std::uint64_t value) noexcept {
    std::size_t bytes = 1;
    while (value >= 0x80) {
        value >>= 7;
        ++bytes;
    }
    return bytes;
}

/// Unchecked decode of one value; returns the advanced cursor. The
/// caller guarantees a complete value is present — csr_compress wrote
/// the blob, or well_formed() validated an untrusted file before any
/// engine scans it (mirrors plain CSR, where neighbors() indexes
/// unchecked after the reader's validation).
inline const std::uint8_t* decode_u64(const std::uint8_t* p,
                                      std::uint64_t& value) noexcept {
    std::uint8_t byte = *p++;
    std::uint64_t v = byte & 0x7fu;
    unsigned shift = 7;
    while (byte & 0x80u) {
        byte = *p++;
        v |= static_cast<std::uint64_t>(byte & 0x7fu) << shift;
        shift += 7;
    }
    value = v;
    return p;
}

/// Zig-zag mapping for the signed first delta: 0, -1, 1, -2, ... ->
/// 0, 1, 2, 3, ... so small magnitudes of either sign encode short.
[[nodiscard]] inline constexpr std::uint64_t zigzag_encode(
    std::int64_t v) noexcept {
    return (static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63);
}

[[nodiscard]] inline constexpr std::int64_t zigzag_decode(
    std::uint64_t u) noexcept {
    return static_cast<std::int64_t>(u >> 1) ^
           -static_cast<std::int64_t>(u & 1);
}

}  // namespace varint

/// Immutable delta + varint compressed CSR — the decode-on-scan backend.
///
/// Per vertex v the sorted adjacency is stored byte-aligned in a shared
/// blob: the first neighbour as the zig-zag varint of (first - v) (most
/// graphs have locality, so the signed delta is short), every later
/// neighbour as the varint of its gap to the predecessor (gap 0 is
/// legal — duplicate edges survive a deduplicate=false build). Sorted
/// gaps on skewed graphs are small, so the blob lands at 2-4x below the
/// plain 4 B/edge targets[] array — and BFS expansion is bandwidth-
/// bound on exactly that stream, which is the trade: varint ALU for
/// DRAM bytes (docs/ALGORITHMS.md "Compressed adjacency").
///
/// Alongside the blob: byte offsets[n+1] delimiting each vertex's run,
/// and a degree[n] array so degree() is O(1) — scheduler weights, the
/// hybrid heuristic and zero-degree bottom-up probes never decode.
///
/// Requires sorted adjacency (the builder default); csr_compress()
/// validates and throws on unsorted input.
class CompressedCsrGraph {
  public:
    CompressedCsrGraph() = default;

    /// Takes ownership of prebuilt arrays: `byte_offsets` has
    /// num_vertices+1 entries delimiting each vertex's encoded run in
    /// `blob`, `degrees` one entry per vertex. Trusts its inputs; use
    /// csr_compress() / read_compressed_csr() for checked construction.
    CompressedCsrGraph(AlignedBuffer<edge_offset_t> byte_offsets,
                       AlignedBuffer<vertex_t> degrees,
                       AlignedBuffer<std::uint8_t> blob);

    CompressedCsrGraph(CompressedCsrGraph&&) noexcept = default;
    CompressedCsrGraph& operator=(CompressedCsrGraph&&) noexcept = default;

    /// GraphAccessor backend marker (CsrGraph carries the `false` side):
    /// engines branch `if constexpr` on it to pick span scans vs decode.
    static constexpr bool kCompressed = true;

    [[nodiscard]] vertex_t num_vertices() const noexcept {
        return degrees_.empty() ? 0 : static_cast<vertex_t>(degrees_.size());
    }

    [[nodiscard]] edge_offset_t num_edges() const noexcept {
        return num_edges_;
    }

    [[nodiscard]] edge_offset_t degree(vertex_t v) const noexcept {
        return degrees_[v];
    }

    /// Encoded bytes of v's adjacency run.
    [[nodiscard]] std::size_t row_bytes(vertex_t v) const noexcept {
        return static_cast<std::size_t>(byte_offsets_[v + 1] -
                                        byte_offsets_[v]);
    }

    /// Decodes v's full adjacency, calling `fn(w)` per neighbour in
    /// storage (ascending) order. Returns the blob bytes consumed — the
    /// bytes_decoded observability feed.
    template <class Fn>
    std::size_t neighbors_for_each(vertex_t v, Fn&& fn) const noexcept {
        const vertex_t deg = degrees_[v];
        if (deg == 0) return 0;
        const std::uint8_t* p = blob_.data() + byte_offsets_[v];
        const std::uint8_t* const start = p;
        std::uint64_t u = 0;
        p = varint::decode_u64(p, u);
        auto prev = static_cast<vertex_t>(static_cast<std::int64_t>(v) +
                                          varint::zigzag_decode(u));
        fn(prev);
        for (vertex_t i = 1; i < deg; ++i) {
            p = varint::decode_u64(p, u);
            prev = static_cast<vertex_t>(prev + u);
            fn(prev);
        }
        return static_cast<std::size_t>(p - start);
    }

    /// Early-exit variant for the bottom-up probe: `fn(w)` returns true
    /// to continue, false to stop. Returns the bytes consumed up to and
    /// including the stopping neighbour — the early exit's savings show
    /// up as fewer bytes decoded, exactly like the plain backend's
    /// shorter span walk.
    template <class Fn>
    std::size_t neighbors_for_each_until(vertex_t v, Fn&& fn) const noexcept {
        const vertex_t deg = degrees_[v];
        if (deg == 0) return 0;
        const std::uint8_t* p = blob_.data() + byte_offsets_[v];
        const std::uint8_t* const start = p;
        std::uint64_t u = 0;
        p = varint::decode_u64(p, u);
        auto prev = static_cast<vertex_t>(static_cast<std::int64_t>(v) +
                                          varint::zigzag_decode(u));
        if (fn(prev)) {
            for (vertex_t i = 1; i < deg; ++i) {
                p = varint::decode_u64(p, u);
                prev = static_cast<vertex_t>(prev + u);
                if (!fn(prev)) break;
            }
        }
        return static_cast<std::size_t>(p - start);
    }

    /// Run-buffered iterator: each next_run() decodes up to one cache
    /// line of vertex_t ids (16) into an internal buffer and returns
    /// them as a span — for consumers that want slices instead of
    /// per-neighbour callbacks. An empty span means the adjacency is
    /// exhausted.
    class Cursor {
      public:
        static constexpr std::size_t kRunLength =
            kCacheLineSize / sizeof(vertex_t);

        Cursor(const CompressedCsrGraph& g, vertex_t v) noexcept
            : p_(g.blob().data() + g.offsets()[v]),
              remaining_(static_cast<vertex_t>(g.degree(v))),
              prev_(v),
              first_(true) {}

        [[nodiscard]] std::span<const vertex_t> next_run() noexcept {
            std::size_t k = 0;
            while (k < kRunLength && remaining_ != 0) {
                std::uint64_t u = 0;
                p_ = varint::decode_u64(p_, u);
                prev_ = first_
                            ? static_cast<vertex_t>(
                                  static_cast<std::int64_t>(prev_) +
                                  varint::zigzag_decode(u))
                            : static_cast<vertex_t>(prev_ + u);
                first_ = false;
                buf_[k++] = prev_;
                --remaining_;
            }
            return {buf_, k};
        }

      private:
        const std::uint8_t* p_;
        vertex_t remaining_;
        vertex_t prev_;
        bool first_;
        vertex_t buf_[kRunLength];
    };

    /// Prefetches the adjacency metadata a scan of `v` reads first —
    /// the CompressedCsrGraph counterpart of prefetching a plain CSR
    /// offsets entry.
    void prefetch_adjacency(vertex_t v) const noexcept {
        prefetch_read(&byte_offsets_[v]);
        prefetch_read(&degrees_[v]);
    }

    /// Byte offsets into blob(), n+1 entries (the workspace uses the
    /// array's address as this graph's identity tag, like plain CSR
    /// offsets).
    [[nodiscard]] std::span<const edge_offset_t> offsets() const noexcept {
        return byte_offsets_.span();
    }
    [[nodiscard]] std::span<const vertex_t> degrees() const noexcept {
        return degrees_.span();
    }
    [[nodiscard]] std::span<const std::uint8_t> blob() const noexcept {
        return blob_.span();
    }

    /// Heap bytes of the whole representation: byte offsets (8 B/vertex)
    /// + degrees (4 B/vertex) + varint blob.
    [[nodiscard]] std::size_t memory_bytes() const noexcept {
        return byte_offsets_.size() * sizeof(edge_offset_t) +
               degrees_.size() * sizeof(vertex_t) + blob_.size();
    }

    /// Storage cost per arc, metadata included: 8 * memory_bytes() / m.
    /// Plain CSR at mean degree d costs 32 + 96/d bits by the same
    /// accounting; skewed (R-MAT-like) graphs compress to <= 16 here.
    [[nodiscard]] double bits_per_edge() const noexcept {
        return num_edges_ == 0
                   ? 0.0
                   : 8.0 * static_cast<double>(memory_bytes()) /
                         static_cast<double>(num_edges_);
    }

    /// Structural checks on an untrusted instance (the binary reader's
    /// gate): monotone byte offsets bounded by the blob, degree sum ==
    /// num_edges(), and a full bounds-checked decode — every run must
    /// consume exactly its byte range and yield sorted in-range ids.
    /// After this returns true the unchecked hot-path decode is safe.
    [[nodiscard]] bool well_formed() const noexcept;

    /// Deep structural equality (same offsets, degrees and blob).
    friend bool operator==(const CompressedCsrGraph& a,
                           const CompressedCsrGraph& b) noexcept;

  private:
    AlignedBuffer<edge_offset_t> byte_offsets_;  // n+1 offsets into blob_
    AlignedBuffer<vertex_t> degrees_;            // n out-degrees
    AlignedBuffer<std::uint8_t> blob_;           // varint payload
    edge_offset_t num_edges_ = 0;                // sum of degrees_
};

/// Encodes a plain CSR. Requires every adjacency list sorted ascending
/// (duplicates allowed) — the BuildOptions::sort_neighbors default;
/// throws std::invalid_argument diagnosing the first offending
/// (vertex, position) otherwise, because an unsorted list would encode
/// into garbage negative gaps silently.
[[nodiscard]] CompressedCsrGraph csr_compress(const CsrGraph& g);

/// Decodes back to a plain CSR (round-trip tests; materializing for a
/// plain-backend consumer). csr_decompress(csr_compress(g)) == g.
[[nodiscard]] CsrGraph csr_decompress(const CompressedCsrGraph& g);

}  // namespace sge
