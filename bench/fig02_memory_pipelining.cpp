// Figure 2: "Impact of memory pipelining, Nehalem EP."
//
// Random read-only accesses over working sets from 4 KB up, with 1..16
// independent request chains in flight. The paper's two observations to
// look for in the output:
//   * rates step down as the working set overflows L1 -> L2 -> L3 ->
//     DRAM;
//   * more requests in flight multiply throughput (they report ~8x at
//     depth 16 for DRAM-resident sets) because the memory system
//     overlaps the line fills.

#include <cstdio>

#include "bench_util.hpp"
#include "memprobe/memory_probe.hpp"

int main() {
    using namespace sge;
    using namespace sge::bench;

    banner("Figure 2: memory pipelining (random reads vs working set)",
           "Fig. 2");

    const std::size_t depths[] = {1, 2, 4, 8, 16};
    const std::uint64_t max_ws = scaled(64ULL << 20);  // paper goes to 8 GB

    Table table({"working set", "reads/s d=1", "d=2", "d=4", "d=8", "d=16",
                 "speedup d16/d1"});
    for (std::uint64_t ws = 4 << 10; ws <= max_ws; ws <<= 2) {
        std::vector<std::string> row{fmt_bytes(ws)};
        double rate1 = 0.0;
        double rate16 = 0.0;
        for (const std::size_t depth : depths) {
            MemoryProbeParams params;
            params.working_set_bytes = ws;
            params.batch_depth = depth;
            // Fewer total reads for big (slow, DRAM-bound) sets.
            params.total_reads = ws <= (1 << 20) ? scaled(1 << 22)
                                                 : scaled(1 << 20);
            const ProbeResult r = run_memory_probe(params);
            const double mps = r.ops_per_second() / 1e6;
            row.push_back(fmt("%.1f M", mps));
            if (depth == 1) rate1 = mps;
            if (depth == 16) rate16 = mps;
        }
        row.push_back(fmt("%.2fx", rate1 > 0 ? rate16 / rate1 : 0.0));
        table.add_row(std::move(row));
    }
    table.print();

    std::printf(
        "\npaper's shape: steps at each cache-size boundary; depth-16 "
        "speedup grows\ntoward ~8x once the set is DRAM-resident "
        "(~40 M reads/s at 2 GB on Nehalem EP).\n");
    return 0;
}
