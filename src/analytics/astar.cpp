#include "analytics/astar.hpp"

#include <algorithm>
#include <cstdlib>
#include <queue>
#include <stdexcept>

namespace sge {

AstarResult astar(const WeightedCsrGraph& g, vertex_t start, vertex_t goal,
                  const HeuristicFn& heuristic) {
    const vertex_t n = g.num_vertices();
    if (start >= n || goal >= n)
        throw std::out_of_range("astar: endpoint out of range");

    AstarResult result;
    std::vector<dist_t> best(n, kInfiniteDistance);  // g-values
    std::vector<vertex_t> parent(n, kInvalidVertex);

    using Entry = std::pair<dist_t, vertex_t>;  // (f = g + h, vertex)
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> open;
    best[start] = 0;
    parent[start] = start;
    open.emplace(heuristic(start), start);

    while (!open.empty()) {
        const auto [f, u] = open.top();
        open.pop();
        const dist_t gu = best[u];
        // Stale entry: u was re-queued with a better g since.
        if (f > gu + heuristic(u)) continue;
        ++result.vertices_expanded;
        if (u == goal) break;  // first expansion of the goal is optimal

        const auto adj = g.neighbors(u);
        const auto w = g.weights(u);
        for (std::size_t e = 0; e < adj.size(); ++e) {
            ++result.edges_relaxed;
            const dist_t nd = gu + w[e];
            if (nd < best[adj[e]]) {
                best[adj[e]] = nd;
                parent[adj[e]] = u;
                open.emplace(nd + heuristic(adj[e]), adj[e]);
            }
        }
    }

    if (best[goal] == kInfiniteDistance) return result;
    result.found = true;
    result.distance = best[goal];
    for (vertex_t v = goal;; v = parent[v]) {
        result.path.push_back(v);
        if (parent[v] == v) break;
    }
    std::reverse(result.path.begin(), result.path.end());
    return result;
}

AstarResult uniform_cost_search(const WeightedCsrGraph& g, vertex_t start,
                                vertex_t goal) {
    return astar(g, start, goal, [](vertex_t) { return dist_t{0}; });
}

namespace {

std::pair<std::int64_t, std::int64_t> grid_xy(std::uint32_t width, vertex_t v) {
    return {static_cast<std::int64_t>(v % width),
            static_cast<std::int64_t>(v / width)};
}

}  // namespace

HeuristicFn grid_manhattan_heuristic(std::uint32_t width, vertex_t goal,
                                     weight_t min_edge_weight) {
    if (width == 0) throw std::invalid_argument("grid heuristic: width == 0");
    const auto [gx, gy] = grid_xy(width, goal);
    return [=](vertex_t v) -> dist_t {
        const auto [x, y] = grid_xy(width, v);
        return static_cast<dist_t>(std::llabs(x - gx) + std::llabs(y - gy)) *
               min_edge_weight;
    };
}

HeuristicFn grid_chebyshev_heuristic(std::uint32_t width, vertex_t goal,
                                     weight_t min_edge_weight) {
    if (width == 0) throw std::invalid_argument("grid heuristic: width == 0");
    const auto [gx, gy] = grid_xy(width, goal);
    return [=](vertex_t v) -> dist_t {
        const auto [x, y] = grid_xy(width, v);
        return static_cast<dist_t>(
                   std::max(std::llabs(x - gx), std::llabs(y - gy))) *
               min_edge_weight;
    };
}

}  // namespace sge
