#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <stdexcept>
#include <vector>

#include "concurrency/spin_barrier.hpp"
#include "concurrency/thread_team.hpp"

namespace sge {
namespace {

TEST(ThreadTeam, RunsEveryWorkerExactlyOnce) {
    ThreadTeam team(8, Topology::emulate(2, 4, 1));
    std::atomic<int> hits[8] = {};
    team.run([&](int tid) { hits[tid].fetch_add(1); });
    for (int t = 0; t < 8; ++t) EXPECT_EQ(hits[t].load(), 1) << t;
}

TEST(ThreadTeam, ReusableAcrossRegions) {
    ThreadTeam team(4, Topology::emulate(1, 4, 1));
    std::atomic<int> total{0};
    for (int round = 0; round < 50; ++round)
        team.run([&](int) { total.fetch_add(1); });
    EXPECT_EQ(total.load(), 200);
}

TEST(ThreadTeam, SocketMapping) {
    ThreadTeam team(16, Topology::nehalem_ep());
    EXPECT_EQ(team.size(), 16);
    EXPECT_EQ(team.sockets_used(), 2);
    EXPECT_EQ(team.socket_of(0), 0);
    EXPECT_EQ(team.socket_of(4), 1);
    EXPECT_EQ(team.socket_of(8), 0);  // SMT wrap
}

TEST(ThreadTeam, SingleSocketWhenFewThreads) {
    ThreadTeam team(4, Topology::nehalem_ep());
    EXPECT_EQ(team.sockets_used(), 1);
}

TEST(ThreadTeam, PropagatesWorkerException) {
    ThreadTeam team(4, Topology::emulate(1, 4, 1));
    EXPECT_THROW(
        team.run([](int tid) {
            if (tid == 2) throw std::runtime_error("worker 2 failed");
        }),
        std::runtime_error);
    // The team must survive a throwing region.
    std::atomic<int> total{0};
    team.run([&](int) { total.fetch_add(1); });
    EXPECT_EQ(total.load(), 4);
}

TEST(ThreadTeam, WorkerExceptionReleasesBarrierWaiters) {
    // One worker throws while its siblings sit inside the registered
    // barrier: the abort protocol must release them, run() must finish
    // in bounded time, and the original exception must surface.
    ThreadTeam team(4, Topology::emulate(1, 4, 1));
    SpinBarrier barrier(4);
    const auto start = std::chrono::steady_clock::now();
    EXPECT_THROW(
        team.run(
            [&](int tid) {
                if (tid == 0) throw std::runtime_error("worker 0 failed");
                // Siblings barrier forever; only the abort frees them.
                while (barrier.arrive_and_wait()) {
                }
            },
            &barrier),
        std::runtime_error);
    const auto elapsed = std::chrono::steady_clock::now() - start;
    EXPECT_LT(elapsed, std::chrono::seconds(5));
    EXPECT_TRUE(barrier.aborted());

    // The team must survive: no leaked or wedged workers.
    std::atomic<int> total{0};
    team.run([&](int) { total.fetch_add(1); });
    EXPECT_EQ(total.load(), 4);
}

TEST(ThreadTeam, ZeroThreadsClampsToOne) {
    ThreadTeam team(0, Topology::emulate(1, 1, 1));
    EXPECT_EQ(team.size(), 1);
    std::atomic<int> ran{0};
    team.run([&](int) { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadTeam, WorkersSeeDistinctTids) {
    ThreadTeam team(12, Topology::emulate(3, 4, 1));
    std::vector<std::atomic<int>> seen(12);
    team.run([&](int tid) { seen[static_cast<std::size_t>(tid)].fetch_add(1); });
    for (const auto& s : seen) EXPECT_EQ(s.load(), 1);
}

TEST(ThreadTeam, OversubscriptionStillCompletes) {
    // 64 workers on however few CPUs this host has: the team and the
    // paper's emulated-topology mode must not deadlock.
    ThreadTeam team(64, Topology::nehalem_ex());
    std::atomic<int> total{0};
    team.run([&](int) { total.fetch_add(1); });
    EXPECT_EQ(total.load(), 64);
}

}  // namespace
}  // namespace sge
