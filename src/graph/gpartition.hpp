#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr_graph.hpp"

namespace sge {

/// An explicit vertex -> part assignment (contrast SocketPartition,
/// which is the implicit contiguous-block rule).
struct PartitionAssignment {
    std::vector<int> part;  ///< part[v] in [0, parts)
    int parts = 0;
};

/// Quality metrics of an assignment. Cut arcs are exactly the tuples
/// Algorithm 3 ships through channels (and the distributed BFS sends as
/// messages), so minimising them minimises inter-socket traffic.
struct PartitionQuality {
    std::uint64_t cut_arcs = 0;
    /// max part size / ideal size - 1 (0 = perfectly balanced).
    double imbalance = 0.0;
};

PartitionQuality evaluate_partition(const CsrGraph& g,
                                    std::span<const int> part, int parts);

/// The baseline the paper uses: contiguous id blocks.
PartitionAssignment block_partition(vertex_t num_vertices, int parts);

/// Greedy BFS region growing: `parts` seeds, frontiers grown
/// breadth-first round-robin under a balance cap, unreached debris
/// backfilled to the emptiest parts. On graphs with locality (grids,
/// communities) this cuts far fewer edges than blocks over shuffled
/// labels; combined with partition_order() it feeds Algorithm 3
/// directly.
PartitionAssignment bfs_grow_partition(const CsrGraph& g, int parts,
                                       std::uint64_t seed = 1);

/// Permutation (old id -> new id) that renumbers vertices so each
/// part's vertices form one contiguous block, part 0 first — the layout
/// SocketPartition assumes. apply_vertex_permutation() then makes any
/// PartitionAssignment usable by the multi-socket/distributed engines.
std::vector<vertex_t> partition_order(const PartitionAssignment& assignment);

}  // namespace sge
