#pragma once

#include <cstdint>
#include <limits>

namespace sge {

/// Vertex identifier. 32 bits cover the paper's largest instance
/// (200 M vertices / 1 B edges) at half the memory traffic of 64-bit
/// ids — and memory traffic is the whole game in BFS.
using vertex_t = std::uint32_t;

/// Index into the CSR target array; 64 bits because edge counts exceed
/// 2^32 in the paper's workloads.
using edge_offset_t = std::uint64_t;

/// Sentinel for "no vertex": unreached parent entries, empty queue
/// slots, etc. Graphs may therefore hold at most 2^32 - 1 vertices.
inline constexpr vertex_t kInvalidVertex =
    std::numeric_limits<vertex_t>::max();

/// BFS level (hop distance from the root).
using level_t = std::uint32_t;

/// Sentinel level for unreached vertices.
inline constexpr level_t kInvalidLevel = std::numeric_limits<level_t>::max();

/// Packs a (child, parent) tuple for the inter-socket channels; the
/// all-ones pattern is reserved as the channel's Empty slot marker,
/// which is unreachable because child == kInvalidVertex never ships.
inline constexpr std::uint64_t pack_visit(vertex_t child, vertex_t parent) noexcept {
    return (static_cast<std::uint64_t>(parent) << 32) | child;
}

inline constexpr vertex_t visit_child(std::uint64_t packed) noexcept {
    return static_cast<vertex_t>(packed & 0xffffffffULL);
}

inline constexpr vertex_t visit_parent(std::uint64_t packed) noexcept {
    return static_cast<vertex_t>(packed >> 32);
}

/// The channels' Empty marker (see SpscRing).
inline constexpr std::uint64_t kEmptyVisit = ~0ULL;

}  // namespace sge
