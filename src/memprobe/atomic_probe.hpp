#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>

#include "memprobe/memory_probe.hpp"
#include "runtime/topology.hpp"

namespace sge {

/// The Figure 3 microbenchmark: concurrent atomic fetch-and-add on
/// random slots of a shared buffer (the paper uses 4 MB across two EP
/// sockets). The `lock`-prefixed RMW cannot be pipelined like plain
/// loads, and once the worker set crosses a socket boundary the
/// invalidation traffic flattens scaling — the observation that
/// motivates Algorithm 3's channels.
///
/// `mode` lets the same harness measure the contrast the paper draws:
/// pipelined plain reads scale; atomics do not.
struct AtomicProbeParams {
    enum class Mode { kFetchAdd, kPlainRead };

    std::size_t buffer_bytes = 4 << 20;
    int threads = 1;
    std::uint64_t ops_per_thread = 1 << 20;
    Mode mode = Mode::kFetchAdd;
    /// Placement model for the workers (socket-major fill). Defaults to
    /// detection.
    std::optional<Topology> topology;
    std::uint64_t seed = 1;
};

ProbeResult run_atomic_probe(const AtomicProbeParams& params);

}  // namespace sge
