// Compiles the umbrella header and exercises cross-module flows that no
// single-module test covers: partitioner -> distributed BFS, stream ->
// snapshot -> analytics, reorder -> weighted search.

#include "sge.hpp"  // the whole public API in one include

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace sge {
namespace {

TEST(Api, PartitionerFeedsDistributedBfs) {
    // Grow a partition, relabel so parts are contiguous, run the
    // distributed engine with matching rank count: the message volume
    // must drop versus raw labels.
    GridParams grid;
    grid.width = 48;
    grid.height = 48;
    EdgeList edges = generate_grid(grid);
    permute_vertices(edges, 21);
    const CsrGraph raw = csr_from_edges(edges);

    const PartitionAssignment grown = bfs_grow_partition(raw, 4, 3);
    const CsrGraph relabeled =
        apply_vertex_permutation(raw, partition_order(grown));

    DistBfsOptions opts;
    opts.ranks = 4;
    opts.collect_stats = true;

    const auto tuples = [&](const CsrGraph& g) {
        const BfsResult r = distributed_bfs(g, 0, opts);
        EXPECT_EQ(r.vertices_visited, g.num_vertices());
        std::uint64_t total = 0;
        for (const auto& s : r.level_stats) total += s.remote_tuples;
        return total;
    };
    EXPECT_LT(tuples(relabeled), tuples(raw) / 4);
}

TEST(Api, StreamSnapshotRunsFullAnalyticsStack) {
    // Ingest a stream, snapshot, and push the snapshot through several
    // analytics in sequence — the intended "query the current state"
    // path.
    RmatParams params;
    params.scale = 11;
    params.num_edges = 1 << 14;
    const EdgeList stream = generate_rmat(params);

    DynamicGraph dynamic(1u << 11);
    for (const Edge& e : stream)
        if (e.src != e.dst) dynamic.add_edge(e.src, e.dst);
    const CsrGraph snapshot = dynamic.snapshot();

    const ComponentsResult cc = connected_components(snapshot);
    EXPECT_GT(cc.largest_size(), 0u);

    BfsOptions bfs_opts;
    bfs_opts.engine = BfsEngine::kHybrid;
    bfs_opts.threads = 2;
    bfs_opts.topology = Topology::emulate(1, 2, 1);
    vertex_t root = 0;
    while (snapshot.degree(root) == 0) ++root;
    const BfsResult r = bfs(snapshot, root, bfs_opts);
    EXPECT_TRUE(validate_bfs_tree(snapshot, root, r).ok);

    const KcoreResult kc = kcore_decomposition(snapshot);
    EXPECT_GT(kc.degeneracy, 0u);
    const TriangleCounts tc = count_triangles(snapshot);
    EXPECT_GE(tc.global_clustering(snapshot), 0.0);
}

TEST(Api, ReorderedWeightedGraphKeepsDistancesUnderRelabel) {
    UniformParams params;
    params.num_vertices = 800;
    params.degree = 5;
    const CsrGraph g = csr_from_edges(generate_uniform(params));
    const auto perm = degree_descending_order(g);
    const CsrGraph h = apply_vertex_permutation(g, perm);

    // Weights hash unordered *ids*, so weight the graphs independently
    // and only compare structure-level facts: reachability counts.
    const WeightedCsrGraph wg = with_random_weights(
        csr_from_edges(edges_from_csr(g),
                       {.make_undirected = false, .remove_self_loops = false,
                        .deduplicate = false}),
        1, 9, 5);
    const SsspResult a = dijkstra(wg, 0);

    BfsOptions serial;
    serial.engine = BfsEngine::kSerial;
    const BfsResult rb = bfs(h, perm[0], serial);
    EXPECT_EQ(a.vertices_settled, rb.vertices_visited);
}

TEST(Api, EffectiveDiameterAndDoubleSweepAgree) {
    SmallWorldParams params;
    params.num_vertices = 3000;
    params.mean_degree = 8;
    params.rewire_probability = 0.05;
    const CsrGraph g = csr_from_edges(generate_small_world(params));

    BfsOptions opts;
    opts.engine = BfsEngine::kSerial;
    const DiameterEstimate sweep = estimate_diameter(g, 0, opts);

    NeighborhoodOptions nopts;
    nopts.sample_sources = 64;
    const NeighborhoodFunction nf = approximate_neighborhood_function(g, nopts);
    // Effective (90th percentile) diameter can never exceed the true
    // upper bound, and the certified lower bound caps how small the
    // hop range can be.
    EXPECT_LE(nf.effective_diameter(), sweep.upper_bound);
    EXPECT_GE(sweep.lower_bound, static_cast<std::uint32_t>(
                                     nf.effective_diameter() / 2.0));
}

}  // namespace
}  // namespace sge
