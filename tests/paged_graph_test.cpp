#include <gtest/gtest.h>

#include <unistd.h>

#include <bit>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "core/bfs.hpp"
#include "core/msbfs.hpp"
#include "core/validate.hpp"
#include "gen/permute.hpp"
#include "gen/rmat.hpp"
#include "gen/uniform.hpp"
#include "graph/builder.hpp"
#include "graph/csr_compressed.hpp"
#include "graph/paged_graph.hpp"
#include "runtime/fault.hpp"
#include "runtime/obs.hpp"
#include "test_util.hpp"

namespace sge {
namespace {

using test::expect_equivalent;

// ---------------------------------------------------------------------
// Round-trips: the paged container must reproduce the source adjacency
// exactly, for both payload formats.
// ---------------------------------------------------------------------

class PagedGraphTest : public ::testing::Test {
  protected:
    void SetUp() override {
        // Per-process dir: ctest -j runs each test in its own process.
        dir_ = std::filesystem::temp_directory_path() /
               ("sge_pgr_test_" + std::to_string(::getpid()));
        std::filesystem::create_directories(dir_);
    }
    void TearDown() override { std::filesystem::remove_all(dir_); }

    std::string path(const char* name) const { return (dir_ / name).string(); }

    /// Overwrites 8 bytes at `offset` in the manifest: payload_kind is
    /// at 8, n at 16, m at 24, payload_bytes at 32, stripe_bytes at 40,
    /// num_stripes at 48 (after the 8-byte magic); byte_offsets follow
    /// at 56.
    static void poke_u64(const std::string& file, std::streamoff offset,
                         std::uint64_t value) {
        std::fstream f(file, std::ios::binary | std::ios::in | std::ios::out);
        ASSERT_TRUE(f.is_open());
        f.seekp(offset);
        f.write(reinterpret_cast<const char*>(&value), sizeof(value));
        ASSERT_TRUE(f.good());
    }

    std::filesystem::path dir_;
};

void expect_same_adjacency(const CsrGraph& g, const PagedGraph& p) {
    ASSERT_EQ(p.num_vertices(), g.num_vertices());
    ASSERT_EQ(p.num_edges(), g.num_edges());
    EXPECT_TRUE(p.well_formed());
    for (vertex_t v = 0; v < g.num_vertices(); ++v) {
        ASSERT_EQ(p.degree(v), g.degree(v)) << "degree differs at " << v;
        std::vector<vertex_t> got;
        p.neighbors_for_each(v, [&](vertex_t w) { got.push_back(w); });
        const auto want = g.neighbors(v);
        ASSERT_EQ(got.size(), want.size()) << "row size differs at " << v;
        for (std::size_t i = 0; i < got.size(); ++i)
            ASSERT_EQ(got[i], want[i]) << "row " << v << " slot " << i;
    }
}

TEST_F(PagedGraphTest, RoundTripBothPayloads) {
    RmatParams params;
    params.scale = 10;
    params.num_edges = 8192;
    const CsrGraph g = csr_from_edges(generate_rmat(params));
    for (const PagedPayload kind :
         {PagedPayload::kPlainTargets, PagedPayload::kVarintBlob}) {
        PagedWriteOptions wopts;
        wopts.payload = kind;
        wopts.stripe_bytes = 1 << 12;  // many stripes on a small graph
        const PagedGraph p =
            make_paged(g, path(to_string(kind).c_str()), wopts);
        SCOPED_TRACE(to_string(kind));
        expect_same_adjacency(g, p);
        EXPECT_EQ(p.payload(), kind);
        // The resident footprint must exclude the payload entirely.
        EXPECT_EQ(p.memory_bytes(),
                  (g.num_vertices() + 1) * sizeof(edge_offset_t) +
                      g.num_vertices() * sizeof(vertex_t));
    }
}

TEST_F(PagedGraphTest, RoundTripFromCompressedGraph) {
    const CsrGraph g = test::two_cliques(17);
    const CompressedCsrGraph z = csr_compress(g);
    write_paged_graph(z, path("z.pgr"));
    const PagedGraph p = open_paged_graph(path("z.pgr"));
    EXPECT_EQ(p.payload(), PagedPayload::kVarintBlob);
    EXPECT_EQ(p.payload_bytes(), z.blob().size());
    expect_same_adjacency(g, p);
}

TEST_F(PagedGraphTest, RoundTripEmptyAndEdgelessGraphs) {
    const PagedGraph empty = make_paged(csr_from_edges(EdgeList(0)),
                                        path("empty.pgr"));
    EXPECT_EQ(empty.num_vertices(), 0u);
    EXPECT_EQ(empty.num_edges(), 0u);
    EXPECT_TRUE(empty.well_formed());

    const PagedGraph edgeless =
        make_paged(csr_from_edges(EdgeList(64)), path("edgeless.pgr"));
    EXPECT_EQ(edgeless.num_vertices(), 64u);
    EXPECT_EQ(edgeless.num_edges(), 0u);
    EXPECT_EQ(edgeless.payload_bytes(), 0u);
    EXPECT_TRUE(edgeless.well_formed());
}

TEST_F(PagedGraphTest, RowsSpanStripeBoundariesTransparently) {
    // One 4 KiB stripe holds 1024 plain targets; a star of 4000 leaves
    // forces the hub row across four stripes.
    const CsrGraph g = test::star_graph(4001);
    PagedWriteOptions wopts;
    wopts.stripe_bytes = 1 << 12;
    const PagedGraph p = make_paged(g, path("star.pgr"), wopts);
    expect_same_adjacency(g, p);
    EXPECT_GT(std::filesystem::file_size(path("star.pgr.s0001")), 0u);
}

TEST_F(PagedGraphTest, OwnsFilesUnlinksOnDestruction) {
    const CsrGraph g = test::path_graph(64);
    PagedOpenOptions oopts;
    oopts.owns_files = true;
    {
        write_paged_graph(g, path("own.pgr"));
        const PagedGraph p = open_paged_graph(path("own.pgr"), oopts);
        EXPECT_TRUE(std::filesystem::exists(path("own.pgr")));
    }
    EXPECT_FALSE(std::filesystem::exists(path("own.pgr")));
    EXPECT_FALSE(std::filesystem::exists(path("own.pgr.s0000")));
}

TEST_F(PagedGraphTest, RemovePagedFilesSweepsStripes) {
    const CsrGraph g = test::star_graph(4001);
    PagedWriteOptions wopts;
    wopts.stripe_bytes = 1 << 12;
    write_paged_graph(g, path("rm.pgr"), wopts);
    ASSERT_TRUE(std::filesystem::exists(path("rm.pgr.s0003")));
    remove_paged_files(path("rm.pgr"));
    EXPECT_FALSE(std::filesystem::exists(path("rm.pgr")));
    EXPECT_FALSE(std::filesystem::exists(path("rm.pgr.s0000")));
    EXPECT_FALSE(std::filesystem::exists(path("rm.pgr.s0003")));
}

// ---------------------------------------------------------------------
// Hostile files: every corruption is a typed PagedIoError at open,
// never UB or a wrong traversal.
// ---------------------------------------------------------------------

TEST_F(PagedGraphTest, RejectsBadMagicAndMissingFile) {
    std::ofstream out(path("bad.pgr"), std::ios::binary);
    out << "NOTPAGED and then some garbage bytes";
    out.close();
    EXPECT_THROW((void)open_paged_graph(path("bad.pgr")), PagedIoError);
    EXPECT_THROW((void)open_paged_graph(path("nope.pgr")), PagedIoError);
}

TEST_F(PagedGraphTest, RejectsTruncatedManifest) {
    write_paged_graph(test::path_graph(64), path("t.pgr"));
    const auto full = std::filesystem::file_size(path("t.pgr"));
    std::filesystem::resize_file(path("t.pgr"), full - 5);
    EXPECT_THROW((void)open_paged_graph(path("t.pgr")), PagedIoError);
    std::filesystem::resize_file(path("t.pgr"), 20);  // cut mid-header
    EXPECT_THROW((void)open_paged_graph(path("t.pgr")), PagedIoError);
}

TEST_F(PagedGraphTest, RejectsCorruptHeaderFieldsBeforeAllocation) {
    const CsrGraph g = test::path_graph(32);

    write_paged_graph(g, path("h.pgr"));
    poke_u64(path("h.pgr"), 8, 7);  // unknown payload kind
    EXPECT_THROW((void)open_paged_graph(path("h.pgr")), PagedIoError);

    write_paged_graph(g, path("h.pgr"));
    poke_u64(path("h.pgr"), 16, std::uint64_t{1} << 61);  // n: huge
    EXPECT_THROW((void)open_paged_graph(path("h.pgr")), PagedIoError);
    poke_u64(path("h.pgr"), 16, kInvalidVertex);  // n: the sentinel
    EXPECT_THROW((void)open_paged_graph(path("h.pgr")), PagedIoError);

    write_paged_graph(g, path("h.pgr"));
    poke_u64(path("h.pgr"), 24, std::uint64_t{1} << 61);  // m: huge
    EXPECT_THROW((void)open_paged_graph(path("h.pgr")), PagedIoError);
    poke_u64(path("h.pgr"), 24, g.num_edges() + 1);  // m: degree-sum lies
    EXPECT_THROW((void)open_paged_graph(path("h.pgr")), PagedIoError);

    write_paged_graph(g, path("h.pgr"));
    poke_u64(path("h.pgr"), 32, std::uint64_t{1} << 61);  // payload_bytes
    EXPECT_THROW((void)open_paged_graph(path("h.pgr")), PagedIoError);

    write_paged_graph(g, path("h.pgr"));
    poke_u64(path("h.pgr"), 40, 123);  // stripe_bytes: not a page multiple
    EXPECT_THROW((void)open_paged_graph(path("h.pgr")), PagedIoError);

    write_paged_graph(g, path("h.pgr"));
    poke_u64(path("h.pgr"), 48, 99);  // num_stripes: wrong
    EXPECT_THROW((void)open_paged_graph(path("h.pgr")), PagedIoError);
}

TEST_F(PagedGraphTest, RejectsOffsetPastPayloadEof) {
    const CsrGraph g = test::path_graph(32);
    write_paged_graph(g, path("o.pgr"));
    // byte_offsets[1] (at 56 + 8) pushed past payload_bytes: the open
    // validation must reject it before any scan could fault past the
    // mapping.
    poke_u64(path("o.pgr"), 56 + 8, std::uint64_t{1} << 40);
    EXPECT_THROW((void)open_paged_graph(path("o.pgr")), PagedIoError);
}

TEST_F(PagedGraphTest, RejectsMissingTruncatedAndOversizedStripes) {
    const CsrGraph g = test::star_graph(4001);
    PagedWriteOptions wopts;
    wopts.stripe_bytes = 1 << 12;

    write_paged_graph(g, path("s.pgr"), wopts);
    std::filesystem::remove(path("s.pgr.s0002"));
    EXPECT_THROW((void)open_paged_graph(path("s.pgr")), PagedIoError);

    write_paged_graph(g, path("s.pgr"), wopts);
    std::filesystem::resize_file(path("s.pgr.s0001"), 100);
    EXPECT_THROW((void)open_paged_graph(path("s.pgr")), PagedIoError);

    write_paged_graph(g, path("s.pgr"), wopts);
    std::ofstream app(path("s.pgr.s0000"), std::ios::binary | std::ios::app);
    app << "extra";
    app.close();
    EXPECT_THROW((void)open_paged_graph(path("s.pgr")), PagedIoError);
}

TEST_F(PagedGraphTest, RejectsUnreadableStripe) {
    // Root ignores permission bits, so simulate "unreadable" with a
    // directory in the stripe's place: stat size mismatches (or the map
    // fails) — either way a typed error, never UB.
    const CsrGraph g = test::path_graph(64);
    write_paged_graph(g, path("u.pgr"));
    std::filesystem::remove(path("u.pgr.s0000"));
    std::filesystem::create_directory(path("u.pgr.s0000"));
    EXPECT_THROW((void)open_paged_graph(path("u.pgr")), PagedIoError);
}

TEST_F(PagedGraphTest, RejectsCorruptVarintPayloadViaValidation) {
    const CsrGraph g = test::path_graph(32);
    PagedWriteOptions wopts;
    wopts.payload = PagedPayload::kVarintBlob;
    write_paged_graph(g, path("v.pgr"), wopts);
    // Set a continuation bit in the last payload byte: sizes all check
    // out, only the bounds-checked decode can catch it.
    const std::string stripe = path("v.pgr.s0000");
    const auto size = std::filesystem::file_size(stripe);
    // The stripe is the exact payload length (last stripe, short).
    std::fstream f(stripe, std::ios::binary | std::ios::in | std::ios::out);
    f.seekg(static_cast<std::streamoff>(size - 1));
    char last = 0;
    f.get(last);
    f.seekp(static_cast<std::streamoff>(size - 1));
    f.put(static_cast<char>(static_cast<unsigned char>(last) | 0x80u));
    f.close();
    EXPECT_THROW((void)open_paged_graph(path("v.pgr")), PagedIoError);

    // With validation off the open succeeds but well_formed reports it.
    PagedOpenOptions oopts;
    oopts.validate_payload = false;
    oopts.prefetch = false;
    const PagedGraph p = open_paged_graph(path("v.pgr"), oopts);
    EXPECT_FALSE(p.well_formed());
}

// ---------------------------------------------------------------------
// Fault injection: SGE_FAULT_PAGED_READ.
// ---------------------------------------------------------------------

class PagedFaultTest : public PagedGraphTest {
  protected:
    void SetUp() override {
        PagedGraphTest::SetUp();
        if (!fault::compiled_in())
            GTEST_SKIP() << "fault sites compiled out";
        fault::disarm_all();
    }
    void TearDown() override {
        if (fault::compiled_in()) fault::disarm_all();
        PagedGraphTest::TearDown();
    }
};

TEST_F(PagedFaultTest, OpenFailsWithTypedError) {
    write_paged_graph(test::path_graph(64), path("f.pgr"));
    fault::arm(fault::Site::kPagedRead, fault::Trigger{.nth = 1});
    EXPECT_THROW((void)open_paged_graph(path("f.pgr")), PagedIoError);
    fault::disarm_all();
    EXPECT_NO_THROW((void)open_paged_graph(path("f.pgr")));
}

TEST_F(PagedFaultTest, PrefetchFailureDegradesNeverWrongTraversal) {
    RmatParams params;
    params.scale = 11;
    params.num_edges = 1 << 14;
    params.seed = 5;
    const CsrGraph g = csr_from_edges(generate_rmat(params));
    const PagedGraph p = make_paged(g, path("pf.pgr"));

    BfsOptions opts;
    opts.engine = BfsEngine::kBitmap;
    opts.threads = 4;
    opts.topology = Topology::emulate(1, 4, 1);

    // Every background prefetch range hits the fault and is skipped;
    // the demand-fault path must still produce the exact traversal.
    fault::arm(fault::Site::kPagedRead,
               fault::Trigger{.probability = 1.0, .nth = 0});
    const BfsResult faulty = bfs(p, 0, opts);
    fault::disarm_all();
    p.prefetch_quiesce();

    const BfsResult clean = bfs(g, 0, opts);
    expect_equivalent(clean, faulty);
    EXPECT_TRUE(validate_bfs_tree(g, 0, faulty).ok);
}

// ---------------------------------------------------------------------
// Eviction, prefetch counters.
// ---------------------------------------------------------------------

TEST_F(PagedGraphTest, EvictDropsResidencyAndRetraversalAgrees) {
    RmatParams params;
    params.scale = 11;
    params.num_edges = 1 << 14;
    params.seed = 7;
    const CsrGraph g = csr_from_edges(generate_rmat(params));
    const PagedGraph p = make_paged(g, path("e.pgr"));

    BfsOptions opts;
    opts.engine = BfsEngine::kSerial;
    const BfsResult before = bfs(p, 0, opts);
    p.prefetch_quiesce();
    EXPECT_GT(p.resident_payload_bytes(), 0u);

    p.evict();
    EXPECT_EQ(p.resident_payload_bytes(), 0u);

    const BfsResult after = bfs(p, 0, opts);
    expect_equivalent(before, after);
}

TEST_F(PagedGraphTest, PrefetchCountersHoldInvariants) {
    RmatParams params;
    params.scale = 11;
    params.num_edges = 1 << 14;
    params.seed = 9;
    const CsrGraph g = csr_from_edges(generate_rmat(params));
    const PagedGraph p = make_paged(g, path("c.pgr"));
    ASSERT_TRUE(p.prefetch_enabled());

    BfsOptions opts;
    opts.engine = BfsEngine::kBitmap;
    opts.threads = 4;
    opts.topology = Topology::emulate(1, 4, 1);
    (void)bfs(p, 0, opts);
    p.prefetch_quiesce();

    const PagedIoStats& stats = p.io_stats();
    const std::uint64_t issued =
        stats.prefetch_issued.load(std::memory_order_relaxed);
    const std::uint64_t hits =
        stats.prefetch_hits.load(std::memory_order_relaxed);
    EXPECT_GT(issued, 0u) << "multi-level BFS should trigger prefetch";
    EXPECT_LE(hits, issued);
    EXPECT_GT(stats.stripe_reads.load(std::memory_order_relaxed), 0u);
    EXPECT_GE(stats.bytes_mapped.load(std::memory_order_relaxed),
              p.payload_bytes());
}

TEST_F(PagedGraphTest, PrefetchOffNeverStartsWorker) {
    const CsrGraph g = test::path_graph(64);
    write_paged_graph(g, path("np.pgr"));
    PagedOpenOptions oopts;
    oopts.prefetch = false;
    const PagedGraph p = open_paged_graph(path("np.pgr"), oopts);
    EXPECT_FALSE(p.prefetch_enabled());
    p.prefetch_frontier(nullptr, 0);  // no-op, no crash
    p.prefetch_quiesce();
    const BfsResult r = bfs(p, 0, BfsOptions{});
    EXPECT_TRUE(validate_bfs_tree(g, 0, r).ok);
}

// ---------------------------------------------------------------------
// Traversal equivalence: every engine cell from the compressed-backend
// matrix, re-run over PagedGraph with both payload formats — levels
// must be bit-identical to the plain in-memory backend.
// ---------------------------------------------------------------------

struct BackendConfig {
    BfsEngine engine;
    int threads;
    Topology topology;
    SchedulePolicy schedule;
    FrontierGen frontier_gen;
    const char* label;
};

std::string backend_config_name(
    const ::testing::TestParamInfo<BackendConfig>& info) {
    return info.param.label;
}

class PagedEngineMatrix : public ::testing::TestWithParam<BackendConfig> {
  protected:
    void SetUp() override {
        dir_ = std::filesystem::temp_directory_path() /
               ("sge_pgr_matrix_" + std::to_string(::getpid()));
        std::filesystem::create_directories(dir_);
    }
    void TearDown() override { std::filesystem::remove_all(dir_); }

    BfsOptions options() const {
        const BackendConfig& cfg = GetParam();
        BfsOptions opts;
        opts.engine = cfg.engine;
        opts.threads = cfg.threads;
        opts.topology = cfg.topology;
        opts.schedule = cfg.schedule;
        opts.frontier_gen = cfg.frontier_gen;
        // Small batches/chunks exercise flush and spill paths.
        opts.batch_size = 8;
        opts.chunk_size = 4;
        opts.channel_capacity = 64;
        return opts;
    }

    /// Plain in-memory vs paged-plain vs paged-varint under the same
    /// engine config: identical levels/reachability, and the paged
    /// runs' trees must validate against the original graph.
    void check_backends_agree(const CsrGraph& g, vertex_t root) {
        const BfsResult plain = bfs(g, root, options());
        for (const PagedPayload kind :
             {PagedPayload::kPlainTargets, PagedPayload::kVarintBlob}) {
            SCOPED_TRACE(to_string(kind));
            PagedWriteOptions wopts;
            wopts.payload = kind;
            wopts.stripe_bytes = 1 << 12;
            const std::string file =
                (dir_ / (to_string(kind) + ".pgr")).string();
            const PagedGraph p = make_paged(g, file, wopts);
            const BfsResult paged = bfs(p, root, options());
            expect_equivalent(plain, paged);
            const ValidationReport report = validate_bfs_tree(g, root, paged);
            EXPECT_TRUE(report.ok) << report.error;
            p.prefetch_quiesce();
            EXPECT_LE(p.io_stats().prefetch_hits.load(),
                      p.io_stats().prefetch_issued.load());
        }
    }

    std::filesystem::path dir_;
};

TEST_P(PagedEngineMatrix, PathGraph) {
    check_backends_agree(test::path_graph(64), 0);
}

TEST_P(PagedEngineMatrix, StarGraph) {
    check_backends_agree(test::star_graph(257), 0);
}

TEST_P(PagedEngineMatrix, DisconnectedCliques) {
    check_backends_agree(test::two_cliques(13), 20);
}

TEST_P(PagedEngineMatrix, UniformRandomGraph) {
    UniformParams params;
    params.num_vertices = 4096;
    params.degree = 8;
    params.seed = 11;
    check_backends_agree(csr_from_edges(generate_uniform(params)), 5);
}

TEST_P(PagedEngineMatrix, RmatGraph) {
    RmatParams params;
    params.scale = 12;
    params.num_edges = 1 << 15;
    params.seed = 23;
    EdgeList edges = generate_rmat(params);
    permute_vertices(edges, 5);
    check_backends_agree(csr_from_edges(edges), 9);
}

INSTANTIATE_TEST_SUITE_P(
    Backends, PagedEngineMatrix,
    ::testing::Values(
        BackendConfig{BfsEngine::kSerial, 1, Topology::emulate(1, 1, 1),
                      SchedulePolicy::kEdgeWeighted, FrontierGen::kCompact,
                      "serial"},
        BackendConfig{BfsEngine::kNaive, 4, Topology::emulate(1, 4, 1),
                      SchedulePolicy::kEdgeWeighted, FrontierGen::kCompact,
                      "naive_4t"},
        BackendConfig{BfsEngine::kNaive, 4, Topology::emulate(1, 4, 1),
                      SchedulePolicy::kEdgeWeighted, FrontierGen::kAtomic,
                      "naive_4t_atomic"},
        BackendConfig{BfsEngine::kBitmap, 4, Topology::emulate(1, 4, 1),
                      SchedulePolicy::kEdgeWeighted, FrontierGen::kCompact,
                      "bitmap_4t"},
        BackendConfig{BfsEngine::kBitmap, 4, Topology::emulate(1, 4, 1),
                      SchedulePolicy::kStatic, FrontierGen::kAtomic,
                      "bitmap_4t_static_atomic"},
        BackendConfig{BfsEngine::kBitmap, 4, Topology::emulate(1, 4, 1),
                      SchedulePolicy::kStealing, FrontierGen::kCompact,
                      "bitmap_4t_stealing"},
        BackendConfig{BfsEngine::kMultiSocket, 8, Topology::nehalem_ep(),
                      SchedulePolicy::kEdgeWeighted, FrontierGen::kCompact,
                      "multisocket_ep_8t"},
        BackendConfig{BfsEngine::kMultiSocket, 4, Topology::emulate(2, 2, 1),
                      SchedulePolicy::kStatic, FrontierGen::kAtomic,
                      "multisocket_2s_static_atomic"},
        BackendConfig{BfsEngine::kHybrid, 4, Topology::emulate(1, 4, 1),
                      SchedulePolicy::kEdgeWeighted, FrontierGen::kCompact,
                      "hybrid_4t"},
        BackendConfig{BfsEngine::kHybrid, 4, Topology::emulate(1, 4, 1),
                      SchedulePolicy::kEdgeWeighted, FrontierGen::kAtomic,
                      "hybrid_4t_atomic"}),
    backend_config_name);

// The serial engine is deterministic, so the paged backend must
// reproduce the exact parent array, not just levels.
TEST_F(PagedGraphTest, SerialParentsBitIdentical) {
    RmatParams params;
    params.scale = 11;
    params.num_edges = 1 << 14;
    params.seed = 3;
    const CsrGraph g = csr_from_edges(generate_rmat(params));
    BfsOptions opts;
    opts.engine = BfsEngine::kSerial;
    const BfsResult plain = bfs(g, 0, opts);
    for (const PagedPayload kind :
         {PagedPayload::kPlainTargets, PagedPayload::kVarintBlob}) {
        PagedWriteOptions wopts;
        wopts.payload = kind;
        const PagedGraph p =
            make_paged(g, path(to_string(kind).c_str()), wopts);
        const BfsResult paged = bfs(p, 0, opts);
        ASSERT_EQ(plain.parent.size(), paged.parent.size());
        for (std::size_t v = 0; v < plain.parent.size(); ++v)
            ASSERT_EQ(plain.parent[v], paged.parent[v])
                << to_string(kind) << " vertex " << v;
    }
}

// ---------------------------------------------------------------------
// Runner integration: BfsOptions::backend spills + caches.
// ---------------------------------------------------------------------

TEST_F(PagedGraphTest, RunnerBackendOptionSpillsAndCaches) {
    setenv("SGE_PAGED_DIR", dir_.string().c_str(), 1);
    for (const GraphBackend backend :
         {GraphBackend::kPaged, GraphBackend::kPagedCompressed}) {
        SCOPED_TRACE(to_string(backend));
        BfsOptions opts;
        opts.engine = BfsEngine::kBitmap;
        opts.threads = 4;
        opts.topology = Topology::emulate(1, 4, 1);
        opts.backend = backend;
        BfsRunner runner(opts);

        const CsrGraph a = test::path_graph(50);
        const CsrGraph b = test::star_graph(50);
        for (const vertex_t root : {0u, 10u, 49u}) {
            const BfsResult ra = runner.run(a, root);
            EXPECT_TRUE(validate_bfs_tree(a, root, ra).ok);
            const BfsResult rb = runner.run(b, root);
            EXPECT_TRUE(validate_bfs_tree(b, root, rb).ok);
        }

        BfsOptions serial;
        serial.engine = BfsEngine::kSerial;
        expect_equivalent(bfs(a, 0, serial), runner.run(a, 0));
    }
    unsetenv("SGE_PAGED_DIR");
    // The spills were owns_files: nothing left behind.
    std::size_t leftovers = 0;
    for (const auto& entry : std::filesystem::directory_iterator(dir_))
        if (entry.path().filename().string().rfind("sge_paged_", 0) == 0)
            ++leftovers;
    EXPECT_EQ(leftovers, 0u);
}

TEST_F(PagedGraphTest, RunnerReusableAcrossPagedGraphs) {
    BfsOptions opts;
    opts.engine = BfsEngine::kMultiSocket;
    opts.threads = 4;
    opts.topology = Topology::emulate(2, 2, 1);
    BfsRunner runner(opts);

    const CsrGraph a = test::cycle_graph(101);
    const CsrGraph b = test::two_cliques(9);
    const PagedGraph pa = make_paged(a, path("a.pgr"));
    const PagedGraph pb = make_paged(b, path("b.pgr"));
    for (int round = 0; round < 2; ++round) {
        const BfsResult ra = runner.run(pa, 37);
        EXPECT_TRUE(validate_bfs_tree(a, 37, ra).ok);
        const BfsResult rb = runner.run(pb, 3);
        EXPECT_TRUE(validate_bfs_tree(b, 3, rb).ok);
    }
}

// ---------------------------------------------------------------------
// MS-BFS over the paged backend.
// ---------------------------------------------------------------------

TEST_F(PagedGraphTest, MsBfsLevelsMatchPlainBackend) {
    RmatParams params;
    params.scale = 11;
    params.num_edges = 1 << 14;
    params.seed = 6;
    const CsrGraph g = csr_from_edges(generate_rmat(params));
    const PagedGraph p = make_paged(g, path("ms.pgr"));
    const std::vector<vertex_t> sources = {0, 17, 99, 1234};

    const auto run = [&](const auto& graph) {
        std::vector<std::vector<level_t>> levels(
            sources.size(),
            std::vector<level_t>(g.num_vertices(), kInvalidLevel));
        MsBfsOptions opts;
        opts.threads = 4;
        opts.topology = Topology::emulate(1, 4, 1);
        const std::uint32_t waves = multi_source_bfs(
            graph, sources,
            [&](int, level_t level, vertex_t v, std::uint64_t mask) {
                while (mask != 0) {
                    const int lane = std::countr_zero(mask);
                    mask &= mask - 1;
                    levels[static_cast<std::size_t>(lane)][v] = level;
                }
            },
            opts);
        return std::pair(waves, std::move(levels));
    };

    const auto [plain_waves, plain_levels] = run(g);
    const auto [paged_waves, paged_levels] = run(p);
    EXPECT_EQ(plain_waves, paged_waves);
    for (std::size_t lane = 0; lane < sources.size(); ++lane)
        for (vertex_t v = 0; v < g.num_vertices(); ++v)
            ASSERT_EQ(plain_levels[lane][v], paged_levels[lane][v])
                << "lane " << lane << " vertex " << v;
}

// ---------------------------------------------------------------------
// Observability: bytes_decoded on the paged backend counts payload
// bytes streamed from the mapping. The fixture name matches the no-obs
// CI job's -R "Obs" filter, so it skips itself when counters are out.
// ---------------------------------------------------------------------

class PagedGraphObs : public PagedGraphTest {
  protected:
    void SetUp() override {
        PagedGraphTest::SetUp();
        if (!obs::compiled_in())
            GTEST_SKIP() << "SGE_OBS compiled out; byte counters are stubs";
    }
};

TEST_F(PagedGraphObs, BytesStreamedMatchVisitedRowsExactly) {
    UniformParams params;
    params.num_vertices = 4096;
    params.degree = 8;
    params.seed = 13;
    const CsrGraph g = csr_from_edges(generate_uniform(params));

    for (const PagedPayload kind :
         {PagedPayload::kPlainTargets, PagedPayload::kVarintBlob}) {
        PagedWriteOptions wopts;
        wopts.payload = kind;
        const PagedGraph p =
            make_paged(g, path(to_string(kind).c_str()), wopts);

        BfsOptions opts;
        opts.engine = BfsEngine::kBitmap;
        opts.threads = 4;
        opts.topology = Topology::emulate(1, 4, 1);
        opts.collect_stats = true;
        const BfsResult r = bfs(p, 0, opts);

        std::uint64_t expected = 0;
        for (vertex_t v = 0; v < g.num_vertices(); ++v)
            if (r.parent[v] != kInvalidVertex) expected += p.row_bytes(v);
        std::uint64_t streamed = 0;
        for (const BfsLevelStats& s : r.level_stats)
            streamed += s.bytes_decoded;
        EXPECT_EQ(streamed, expected)
            << to_string(kind) << " byte accounting drifted";
    }
}

}  // namespace
}  // namespace sge
