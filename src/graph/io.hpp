#pragma once

#include <string>

#include "graph/csr_compressed.hpp"
#include "graph/csr_graph.hpp"
#include "graph/edge_list.hpp"
#include "graph/weighted.hpp"

namespace sge {

/// Binary CSR container ("SGECSR01"): magic, n, m, offsets[n+1],
/// targets[m], little-endian. Round-trips a built graph so benchmark
/// runs do not pay generation + build on every invocation.
void write_csr(const CsrGraph& g, const std::string& path);

/// Reads a file written by write_csr. Throws std::runtime_error on
/// malformed input (bad magic, truncation, non-well-formed CSR).
CsrGraph read_csr(const std::string& path);

/// Reads a whitespace-separated text edge list ("src dst" per line,
/// '#'-prefixed comment lines skipped) — the common interchange format
/// of SNAP/DIMACS-style graph collections.
EdgeList read_edge_list_text(const std::string& path);

/// Binary weighted-CSR container ("SGEWSR01"): the CSR payload followed
/// by the per-arc weight array.
void write_weighted_csr(const WeightedCsrGraph& g, const std::string& path);

/// Reads a file written by write_weighted_csr. Throws
/// std::runtime_error on malformed input.
WeightedCsrGraph read_weighted_csr(const std::string& path);

/// Binary compressed-CSR container ("SGEZSR01"): magic, n, m,
/// blob_bytes, byte_offsets[n+1], degrees[n], blob, little-endian.
/// Lets benchmarks load a pre-encoded graph without paying
/// csr_compress() on every invocation.
void write_compressed_csr(const CompressedCsrGraph& g, const std::string& path);

/// Reads a file written by write_compressed_csr. The untrusted header
/// is validated against the file size before any allocation (same
/// hardening as read_csr), and the decoded payload must pass
/// CompressedCsrGraph::well_formed() — after which the engines'
/// unchecked hot-path decode is safe. Throws std::runtime_error on
/// malformed input.
CompressedCsrGraph read_compressed_csr(const std::string& path);

/// Writes an EdgeList in the same text format.
void write_edge_list_text(const EdgeList& edges, const std::string& path);

}  // namespace sge
