#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "concurrency/cancel_token.hpp"
#include "concurrency/thread_team.hpp"
#include "concurrency/work_queue.hpp"
#include "graph/csr_graph.hpp"
#include "graph/types.hpp"
#include "runtime/obs.hpp"
#include "runtime/topology.hpp"

namespace sge {

class CompressedCsrGraph;  // graph/csr_compressed.hpp
class PagedGraph;          // graph/paged_graph.hpp

/// Which BFS implementation to run.
enum class BfsEngine {
    kSerial,       ///< textbook two-queue BFS, the sequential reference
    kNaive,        ///< Algorithm 1: shared queues, CAS on the parent array
    kBitmap,       ///< Algorithm 2: visited bitmap + double-checked atomics
    kMultiSocket,  ///< Algorithm 3: per-socket queues + inter-socket channels
    kHybrid,       ///< extension: direction-optimizing (top-down/bottom-up)
    kAuto,         ///< pick by thread count / sockets engaged
};

[[nodiscard]] std::string to_string(BfsEngine engine);

/// How the parallel engines build the next-level frontier queue (NQ);
/// see docs/ALGORITHMS.md "Frontier generation".
enum class FrontierGen {
    /// Legacy path: producers reserve NQ slots with fetch_add (per
    /// vertex in the naive engine, per 64-vertex batch elsewhere).
    /// Retained for the bench/ablation_frontier A/B.
    kAtomic,
    /// Count -> parallel exclusive prefix sum -> contiguous writes
    /// (FrontierCompactor): zero atomics in NQ construction, plus
    /// word-at-a-time (SIMD-assisted) bitmap and lane-mask scans in the
    /// bottom-up, harvest and MS-BFS sweeps. The default.
    kCompact,
};

[[nodiscard]] std::string to_string(FrontierGen gen);

/// Which adjacency representation a run traverses; see
/// docs/ALGORITHMS.md "Compressed adjacency".
enum class GraphBackend {
    /// The plain CSR targets[] array (4 B/edge, streamed raw).
    kPlain,
    /// Delta+varint CompressedCsrGraph, decoded on scan: 2-4x fewer
    /// adjacency bytes on skewed graphs at the cost of decode ALU — a
    /// net win when the scan is bandwidth-bound (docs/PERF_MODEL.md
    /// "Bytes vs ALU").
    kCompressed,
    /// Semi-external PagedGraph over the plain targets[] payload: the
    /// adjacency bytes live in striped memory-mapped spill files with a
    /// frontier-ahead async prefetcher; only byte offsets + degrees
    /// stay resident (docs/PERF_MODEL.md "Disk regime").
    kPaged,
    /// Semi-external PagedGraph over the delta+varint payload: the
    /// compressed blob on disk — the fewest bytes faulted per scan.
    kPagedCompressed,
};

[[nodiscard]] std::string to_string(GraphBackend backend);

/// Tuning and instrumentation knobs. Defaults reproduce the paper's
/// most-optimized configuration.
struct BfsOptions {
    BfsEngine engine = BfsEngine::kAuto;

    /// Worker threads; 0 means "all threads of the topology".
    int threads = 0;

    /// Socket/core model; defaults to Topology::detect(). Use
    /// Topology::nehalem_ep()/nehalem_ex() to reproduce the paper's
    /// machines on any host (emulated placement, see DESIGN.md).
    std::optional<Topology> topology;

    /// Vertices per inter-socket channel batch (Algorithm 3's batching
    /// optimization: amortizes the ticket-lock acquisition).
    std::size_t batch_size = 64;

    /// Vertices a worker claims from the current queue at a time
    /// (the chunk granularity of the kStatic schedule).
    std::size_t chunk_size = 128;

    /// How the parallel engines divide each level's frontier across
    /// workers (see SchedulePolicy in concurrency/work_queue.hpp and
    /// docs/PERF_MODEL.md "Load balance"): kStatic is the legacy
    /// vertex-count chunking, kEdgeWeighted (default) cuts chunks by
    /// out-edge count so hubs cannot stall the level barrier, kStealing
    /// adds per-thread ranges with intra-socket work stealing on top.
    SchedulePolicy schedule = SchedulePolicy::kEdgeWeighted;

    /// How the next-level frontier is materialized (see FrontierGen and
    /// docs/ALGORITHMS.md "Frontier generation"): kCompact (default)
    /// builds NQ with per-thread buffers + a prefix sum — no atomics in
    /// queue construction — and vectorizes the bottom-up/harvest bitmap
    /// sweeps; kAtomic keeps the legacy fetch_add appends and scalar
    /// sweeps for ablation (bench/ablation_frontier). The visited-claim
    /// atomics (test_and_set / parent CAS) are required for correctness
    /// and remain in both modes. Ignored by the serial engine.
    FrontierGen frontier_gen = FrontierGen::kCompact;

    /// Adjacency representation for BfsRunner::run(const CsrGraph&) /
    /// bfs(): kCompressed makes the runner delta+varint-encode the graph
    /// once (cached by graph identity, so back-to-back queries reuse the
    /// encoding) and traverse decode-on-scan. The
    /// run(const CompressedCsrGraph&) overloads ignore this — a graph
    /// that is already compressed is always traversed compressed.
    GraphBackend backend = GraphBackend::kPlain;

    /// kHybrid: vertices per bottom-up range claim (and per conversion
    /// sweep claim). 0 (default) derives n / (threads * 64) clamped to
    /// [64, 4096], so big graphs get coarse claims and small graphs
    /// still produce enough chunks to balance.
    std::size_t bottomup_chunk = 0;

    /// FastForward ring capacity per inter-socket channel (entries).
    std::size_t channel_capacity = 1 << 15;

    /// Fill BfsResult::level (hop distance per vertex).
    bool compute_levels = true;

    /// Collect per-level counters (frontier sizes, bitmap checks,
    /// atomic ops, remote tuples) into BfsResult::level_stats.
    bool collect_stats = false;

    /// Algorithm 2's cheap-test-before-atomic optimization. Disabling it
    /// makes every visited check a `lock or` — the Figure 4/5 ablation.
    bool bitmap_double_check = true;

    /// Algorithm 3 ablation: also consult the (possibly remote) bitmap
    /// before shipping a tuple through a channel. The paper does NOT do
    /// this — the bit lives on the owner socket and reading it remotely
    /// is exactly the coherence traffic the channels exist to avoid —
    /// but on low-latency hosts the filter can win by shrinking channel
    /// traffic. Measured in bench/ablation_tuning.
    bool remote_sender_filter = false;

    /// kHybrid: switch top-down -> bottom-up when the frontier's
    /// unexplored out-edges exceed (remaining edges)/alpha, and back
    /// when the frontier shrinks below vertices/beta. Beamer et al.'s
    /// defaults.
    double hybrid_alpha = 14.0;
    double hybrid_beta = 24.0;

    /// Opt-in watchdog deadline for the whole traversal, in seconds.
    /// <= 0 disables (the default; SGE_BFS_WATCHDOG_MS then supplies a
    /// process-wide default). When the deadline passes before the run
    /// completes, the engine aborts its barrier — unwinding every
    /// worker in bounded time — and throws BfsDeadlineError carrying a
    /// diagnostic snapshot (level reached, queue depths, channel
    /// counters) instead of hanging.
    double watchdog_seconds = 0.0;

    /// Optional cooperative cancellation (not owned; must outlive the
    /// run). Thread 0 polls once per level; a fired token ends the
    /// traversal at the next level barrier and the engine throws
    /// BfsDeadlineError with cancelled() == true and the partial
    /// progress filled in. Unlike the watchdog this never aborts the
    /// barrier, so the workspace stays immediately reusable — it is the
    /// per-request deadline mechanism of the query service, which
    /// supersedes the global watchdog for service runs.
    CancelToken* cancel = nullptr;
};

/// Thrown by the engines when a run ends before the traversal completes:
/// either BfsOptions::watchdog_seconds (or SGE_BFS_WATCHDOG_MS) expired
/// — cancelled() == false — or a BfsOptions::cancel token fired —
/// cancelled() == true. what() carries the stall diagnostics; the
/// accessors carry the partial progress so callers (and the service's
/// degraded-retry path) can report how far the run got instead of a
/// bare timeout.
class BfsDeadlineError : public std::runtime_error {
  public:
    explicit BfsDeadlineError(const std::string& what_arg,
                              std::uint32_t level_reached = 0,
                              std::uint64_t vertices_settled = 0,
                              bool cancelled = false)
        : std::runtime_error(what_arg),
          level_reached_(level_reached),
          vertices_settled_(vertices_settled),
          cancelled_(cancelled) {}

    /// Deepest BFS level that fully completed before the run stopped.
    [[nodiscard]] std::uint32_t level_reached() const noexcept {
        return level_reached_;
    }

    /// Vertices whose parent was settled before the run stopped.
    [[nodiscard]] std::uint64_t vertices_settled() const noexcept {
        return vertices_settled_;
    }

    /// True for cooperative cancellation (a fired CancelToken), false
    /// for a watchdog abort.
    [[nodiscard]] bool cancelled() const noexcept { return cancelled_; }

  private:
    std::uint32_t level_reached_ = 0;
    std::uint64_t vertices_settled_ = 0;
    bool cancelled_ = false;
};

/// Buckets of the per-level channel-batch occupancy histogram: bucket i
/// counts batches whose fill fraction lies in (i/8, (i+1)/8] of the
/// configured batch capacity — bucket 7 is "flushed full" (the batching
/// optimization working as designed), bucket 0 is "nearly empty"
/// (end-of-level stragglers paying a whole lock acquisition for a
/// handful of vertices).
inline constexpr std::size_t kBatchOccupancyBuckets = 8;

/// Histogram bucket for a batch of `size` items flushed from a staging
/// buffer of `capacity` (see kBatchOccupancyBuckets). `size` is clamped
/// to [1, capacity].
[[nodiscard]] constexpr std::size_t batch_occupancy_bucket(
    std::size_t size, std::size_t capacity) noexcept {
    if (capacity == 0 || size == 0) return 0;
    if (size > capacity) size = capacity;
    return (size - 1) * kBatchOccupancyBuckets / capacity;
}

/// Per-level instrumentation (Figure 4 reproduces from this; see
/// docs/OBSERVABILITY.md for the full counter glossary and
/// docs/PERF_MODEL.md for which paper claim each field evidences).
///
/// The first five fields are collected by every build; the fields below
/// them require the extended counters (CMake option SGE_OBS, on by
/// default — `obs::compiled_in()`), and read zero when compiled out.
struct BfsLevelStats {
    std::uint64_t frontier_size = 0;   ///< vertices expanded this level
    std::uint64_t edges_scanned = 0;   ///< adjacency entries examined
    std::uint64_t bitmap_checks = 0;   ///< plain bitmap/parent queries
    std::uint64_t atomic_ops = 0;      ///< locked RMW instructions issued
    std::uint64_t remote_tuples = 0;   ///< (v,u) pairs shipped via channels
    double seconds = 0.0;              ///< wall time of this level

    // ---- extended counters (SGE_OBS builds) ----

    /// Neighbours filtered by the *plain* visited test before any locked
    /// instruction — the double-check optimization's savings (Figure 4:
    /// bitmap_checks - atomic_ops). Counted by the engines that carry a
    /// cheap pre-test (bitmap, multisocket, hybrid; the serial and
    /// distributed engines count their plain already-visited hits here
    /// so the ratio stays comparable).
    std::uint64_t bitmap_skips = 0;

    /// Visited claims that *succeeded* — the claimer became the BFS
    /// parent. Summed over all levels this is exactly n-1 on a connected
    /// graph (every non-root vertex is claimed once). For the atomic
    /// engines atomic_wins <= atomic_ops and the difference is wasted
    /// locked RMWs (lost races plus double-check misses); the serial and
    /// distributed engines have no atomics (atomic_ops == 0) but still
    /// count their plain claims here so the invariant "wins == n-1"
    /// holds for every engine.
    std::uint64_t atomic_wins = 0;

    /// Channel batches pushed into / popped out of the inter-socket
    /// (or inter-rank) channels this level. Zero for engines without
    /// channels. pushed counts Channel::push_batch calls, popped counts
    /// pop_batch calls that returned at least one item.
    std::uint64_t batches_pushed = 0;
    std::uint64_t batches_popped = 0;

    /// Occupancy histogram over the *pushed* channel batches (see
    /// kBatchOccupancyBuckets). Sums to batches_pushed.
    std::uint64_t batch_occupancy[kBatchOccupancyBuckets] = {};

    /// Nanoseconds workers spent waiting at the level's barriers, summed
    /// across threads — the load-imbalance signal. Zero for the serial
    /// engine.
    std::uint64_t barrier_wait_ns = 0;

    /// Frontier chunks claimed through the scheduler this level, summed
    /// across threads; chunks_stolen counts the subset taken from a
    /// same-socket sibling's range (kStealing only — zero under shared
    /// cursors). claimed == chunks planned for the level, every chunk
    /// claimed exactly once.
    std::uint64_t chunks_claimed = 0;
    std::uint64_t chunks_stolen = 0;

    /// Nanoseconds spent in the compact frontier-generation phase
    /// (exclusive prefix offsets + contiguous copy-out), summed across
    /// threads. Zero under FrontierGen::kAtomic. This is the cost the
    /// prefix-sum scheme pays to delete the queue atomics; compare
    /// against barrier_wait_ns in docs/PERF_MODEL.md's crossover model.
    std::uint64_t prefix_sum_ns = 0;

    /// Vertices written into next-level queues by compact copy-out this
    /// level. Invariant: compact_writes == the next level's
    /// frontier_size (exact cover — every discovery written exactly
    /// once), so summed over a run it equals vertices_visited - 1.
    /// Zero under FrontierGen::kAtomic.
    std::uint64_t compact_writes = 0;

    /// Bitmap / lane-mask words examined by the word-at-a-time scans
    /// (bottom-up unvisited sweep, bits->queue harvest, MS-BFS frontier
    /// scans), whether vector-skipped or iterated with ctz. Zero under
    /// FrontierGen::kAtomic (those paths test per vertex instead).
    std::uint64_t simd_words_scanned = 0;

    /// Largest per-thread edges_scanned this level — the numerator of
    /// the edge spread (max_thread_edges * threads / edges_scanned is
    /// 1.0 for a perfectly balanced level, ~threads when one worker
    /// scanned everything).
    std::uint64_t max_thread_edges = 0;

    /// Varint blob bytes decoded by adjacency scans this level, summed
    /// across threads (GraphBackend::kCompressed only — zero on the
    /// plain backend). Compare against 4 * edges_scanned, the bytes the
    /// plain targets[] stream would have moved: the ratio is the
    /// bandwidth saving the compressed backend buys.
    std::uint64_t bytes_decoded = 0;

    /// Estimated nanoseconds inside varint decode this level, summed
    /// across threads. Sampled: every 64th decode call is timed and
    /// scaled (a timer per call would dwarf a short row's decode), so
    /// treat as a statistical estimate, not an exact integral. Zero on
    /// the plain backend.
    std::uint64_t decode_ns = 0;
};

/// One thread's participation in one BFS level, stamped against the
/// traversal's start. Collected by the parallel engines when
/// BfsOptions::collect_stats is set (and SGE_OBS is compiled in); the
/// raw material of the Chrome trace export (make_bfs_trace).
struct BfsThreadSpan {
    int thread = 0;             ///< worker id within the team
    std::uint32_t level = 0;    ///< BFS depth this span covers
    std::uint64_t start_ns = 0; ///< level start, ns since traversal start
    std::uint64_t end_ns = 0;   ///< level end (after the closing barrier)
};

/// Output of one BFS run.
struct BfsResult {
    /// parent[v] is v's BFS-tree parent; the root is its own parent;
    /// kInvalidVertex marks unreached vertices.
    std::vector<vertex_t> parent;

    /// Hop distance from the root (kInvalidLevel when unreached);
    /// empty when !BfsOptions::compute_levels.
    std::vector<level_t> level;

    std::uint64_t vertices_visited = 0;

    /// ma in the paper: adjacency entries actually scanned. Processing
    /// rate = ma / seconds.
    std::uint64_t edges_traversed = 0;

    std::uint32_t num_levels = 0;
    double seconds = 0.0;

    /// Filled when BfsOptions::collect_stats.
    std::vector<BfsLevelStats> level_stats;

    /// Per-thread, per-level timeline (parallel engines, collect_stats
    /// + SGE_OBS builds only). Ordered by thread, then level.
    std::vector<BfsThreadSpan> thread_spans;

    [[nodiscard]] double edges_per_second() const noexcept {
        return seconds > 0 ? static_cast<double>(edges_traversed) / seconds : 0.0;
    }
};

class BfsWorkspace;

/// Lifetime counters of a runner's workspace (see docs/PERF_MODEL.md
/// "Query throughput & amortization" and docs/OBSERVABILITY.md).
struct BfsWorkspaceStats {
    /// Full (re)allocations + first-touch passes: 1 for a runner used on
    /// one graph size, +1 per graph-size/engine change.
    std::uint64_t prepares = 0;
    /// Queries that reused the prepared arena (epoch-bump reset only).
    std::uint64_t workspace_reuses = 0;
    /// Bitmap/claim words physically rewritten by resets — 0 on the
    /// epoch fast path, the full word count on a wraparound sweep.
    std::uint64_t reset_words_touched = 0;
};

/// Reusable BFS executor: owns the worker team so repeated traversals
/// (benchmarks, connected components, multi-root analytics) do not pay
/// thread creation per run, and a NUMA-aware BfsWorkspace arena so they
/// do not pay allocation, zero-fill or first-touch placement per run
/// either (the query-throughput mode; see docs/PERF_MODEL.md).
class BfsRunner {
  public:
    explicit BfsRunner(BfsOptions options = {});
    ~BfsRunner();

    BfsRunner(BfsRunner&&) noexcept;
    BfsRunner& operator=(BfsRunner&&) noexcept;

    /// Runs a BFS from `root`. Throws std::out_of_range for an invalid
    /// root or std::invalid_argument for inconsistent options. With
    /// BfsOptions::backend == kCompressed the graph is encoded once
    /// (cached by identity — offsets address + shape) and traversed
    /// decode-on-scan.
    BfsResult run(const CsrGraph& g, vertex_t root);

    /// Runs over an already-compressed graph (always decode-on-scan,
    /// whatever BfsOptions::backend says).
    BfsResult run(const CompressedCsrGraph& g, vertex_t root);

    /// Runs over an already-opened paged graph (semi-external scan,
    /// whatever BfsOptions::backend says).
    BfsResult run(const PagedGraph& g, vertex_t root);

    /// Runs a BFS from `root` into caller-owned `result`, reusing its
    /// buffers (no allocation on back-to-back queries over one graph).
    /// The previous contents of `result` are discarded.
    void run_into(BfsResult& result, const CsrGraph& g, vertex_t root);
    void run_into(BfsResult& result, const CompressedCsrGraph& g,
                  vertex_t root);
    void run_into(BfsResult& result, const PagedGraph& g, vertex_t root);

    [[nodiscard]] const BfsOptions& options() const noexcept { return options_; }

    /// Engine actually selected (kAuto resolved) for `g`-independent
    /// options; what run() will dispatch to.
    [[nodiscard]] BfsEngine resolved_engine() const noexcept;

    [[nodiscard]] int threads() const noexcept;
    [[nodiscard]] const Topology& topology() const noexcept { return topology_; }

    /// The runner's worker team (null for serial-only runners). Exposed
    /// so repeated-traversal analytics can share one team instead of
    /// spawning their own.
    [[nodiscard]] ThreadTeam* team() noexcept { return team_.get(); }

    /// The runner's reusable arena (null until the first parallel run,
    /// and always null for serial-only runners). Exposed for tests and
    /// for sharing with multi_source_bfs.
    [[nodiscard]] BfsWorkspace* workspace() noexcept { return workspace_.get(); }

    /// Lifetime workspace counters (zeroes for serial-only runners).
    [[nodiscard]] const BfsWorkspaceStats& workspace_stats() const noexcept;

  private:
    template <class Graph>
    void run_into_impl(BfsResult& result, const Graph& g, vertex_t root);

    /// run(const CsrGraph&) with backend == kCompressed: returns the
    /// cached encoding of `g`, re-encoding only when the graph identity
    /// (offsets address + shape) changed since the last query.
    const CompressedCsrGraph& compressed_for(const CsrGraph& g);

    /// run(const CsrGraph&) with backend == kPaged / kPagedCompressed:
    /// returns the cached spill of `g` — written once to
    /// $SGE_PAGED_DIR (default: the system temp directory) and
    /// re-spilled only when the graph identity changed. The spill files
    /// are owned by the cached graph and unlinked with it.
    const PagedGraph& paged_for(const CsrGraph& g, bool compressed);

    BfsOptions options_;
    Topology topology_;
    std::unique_ptr<ThreadTeam> team_;  // null for serial-only runners
    std::unique_ptr<BfsWorkspace> workspace_;  // lazily built on first run

    // Cached encoding for the backend == kCompressed plain-graph path.
    std::unique_ptr<CompressedCsrGraph> compressed_;
    const void* compressed_tag_ = nullptr;  // source offsets address
    vertex_t compressed_n_ = 0;
    std::uint64_t compressed_m_ = 0;

    // Cached spill for the backend == kPaged* plain-graph paths.
    std::unique_ptr<PagedGraph> paged_;
    const void* paged_tag_ = nullptr;  // source offsets address
    bool paged_compressed_ = false;
    vertex_t paged_n_ = 0;
    std::uint64_t paged_m_ = 0;
};

/// One-shot convenience wrapper around BfsRunner.
BfsResult bfs(const CsrGraph& g, vertex_t root, const BfsOptions& options = {});
BfsResult bfs(const CompressedCsrGraph& g, vertex_t root,
              const BfsOptions& options = {});
BfsResult bfs(const PagedGraph& g, vertex_t root,
              const BfsOptions& options = {});

/// Builds a Chrome trace-event timeline from an instrumented run (run
/// with BfsOptions::collect_stats): one track per worker thread carrying
/// its level spans (falling back to a single synthesized track from
/// level_stats when thread_spans is empty, e.g. the serial engine or a
/// SGE_OBS=OFF build), plus counter series — frontier size, edges
/// scanned, atomic attempts vs wins, remote tuples, barrier wait — at
/// each level boundary. Write with obs::ChromeTrace::write_file and load
/// in chrome://tracing or Perfetto; see docs/OBSERVABILITY.md.
[[nodiscard]] obs::ChromeTrace make_bfs_trace(const BfsResult& result,
                                              const std::string& name = "bfs");

namespace detail {

// Engine entry points (exposed for tests; use BfsRunner in user code).
// The parallel engines require a workspace already prepare()d for
// (g, engine, options, team); they write into `result` after rewinding
// it (reset_result). Each engine is one template body instantiated for
// both CSR backends (docs/ALGORITHMS.md "Compressed adjacency") — the
// overload pairs are the two instantiations.
void bfs_serial(const CsrGraph& g, vertex_t root, const BfsOptions& options,
                BfsResult& result);
void bfs_serial(const CompressedCsrGraph& g, vertex_t root,
                const BfsOptions& options, BfsResult& result);
void bfs_serial(const PagedGraph& g, vertex_t root,
                const BfsOptions& options, BfsResult& result);
void bfs_naive(const CsrGraph& g, vertex_t root, const BfsOptions& options,
               ThreadTeam& team, BfsWorkspace& ws, BfsResult& result);
void bfs_naive(const CompressedCsrGraph& g, vertex_t root,
               const BfsOptions& options, ThreadTeam& team, BfsWorkspace& ws,
               BfsResult& result);
void bfs_naive(const PagedGraph& g, vertex_t root,
               const BfsOptions& options, ThreadTeam& team, BfsWorkspace& ws,
               BfsResult& result);
void bfs_bitmap(const CsrGraph& g, vertex_t root, const BfsOptions& options,
                ThreadTeam& team, BfsWorkspace& ws, BfsResult& result);
void bfs_bitmap(const CompressedCsrGraph& g, vertex_t root,
                const BfsOptions& options, ThreadTeam& team, BfsWorkspace& ws,
                BfsResult& result);
void bfs_bitmap(const PagedGraph& g, vertex_t root,
                const BfsOptions& options, ThreadTeam& team, BfsWorkspace& ws,
                BfsResult& result);
void bfs_multisocket(const CsrGraph& g, vertex_t root,
                     const BfsOptions& options, ThreadTeam& team,
                     BfsWorkspace& ws, BfsResult& result);
void bfs_multisocket(const CompressedCsrGraph& g, vertex_t root,
                     const BfsOptions& options, ThreadTeam& team,
                     BfsWorkspace& ws, BfsResult& result);
void bfs_multisocket(const PagedGraph& g, vertex_t root,
                     const BfsOptions& options, ThreadTeam& team,
                     BfsWorkspace& ws, BfsResult& result);
void bfs_hybrid(const CsrGraph& g, vertex_t root, const BfsOptions& options,
                ThreadTeam& team, BfsWorkspace& ws, BfsResult& result);
void bfs_hybrid(const CompressedCsrGraph& g, vertex_t root,
                const BfsOptions& options, ThreadTeam& team, BfsWorkspace& ws,
                BfsResult& result);
void bfs_hybrid(const PagedGraph& g, vertex_t root,
                const BfsOptions& options, ThreadTeam& team, BfsWorkspace& ws,
                BfsResult& result);

}  // namespace detail

}  // namespace sge
