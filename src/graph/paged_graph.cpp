#include "graph/paged_graph.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <mutex>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "runtime/fault.hpp"

namespace sge {

namespace {

constexpr char kPagedMagic[8] = {'S', 'G', 'E', 'P', 'G', 'R', '0', '1'};

/// magic + payload kind + n + m + payload_bytes + stripe_bytes +
/// num_stripes, all u64 except the magic.
constexpr std::uint64_t kManifestHeaderBytes =
    sizeof(kPagedMagic) + 6 * sizeof(std::uint64_t);

std::size_t page_bytes() noexcept {
    const long p = ::sysconf(_SC_PAGESIZE);
    return p > 0 ? static_cast<std::size_t>(p) : 4096;
}

std::string stripe_path(const std::string& path, std::size_t index) {
    char suffix[32];
    std::snprintf(suffix, sizeof(suffix), ".s%04zu", index);
    return path + suffix;
}

[[noreturn]] void fail(const char* who, const char* why,
                       const std::string& path) {
    throw PagedIoError(std::string(who) + ": " + why + ": " + path);
}

void write_raw(std::ofstream& out, const void* p, std::size_t bytes,
               const std::string& path) {
    out.write(static_cast<const char*>(p),
              static_cast<std::streamsize>(bytes));
    if (!out) fail("write_paged_graph", "short write", path);
}

void read_raw(std::ifstream& in, void* p, std::size_t bytes,
              const std::string& path) {
    in.read(static_cast<char*>(p), static_cast<std::streamsize>(bytes));
    if (static_cast<std::size_t>(in.gcount()) != bytes)
        fail("open_paged_graph", "truncated manifest", path);
}

/// Bounds-checked varint decode for untrusted payload validation (the
/// hot-path decode in the header trusts well_formed()'s pass).
bool decode_u64_checked(const std::uint8_t*& p, const std::uint8_t* end,
                        std::uint64_t& value) noexcept {
    std::uint64_t v = 0;
    unsigned shift = 0;
    while (p < end && shift < 64) {
        const std::uint8_t byte = *p++;
        v |= static_cast<std::uint64_t>(byte & 0x7fu) << shift;
        shift += 7;
        if ((byte & 0x80u) == 0) {
            value = v;
            return true;
        }
    }
    return false;
}

/// Writes the manifest + stripe files for prebuilt arrays. The payload
/// kind only matters to readers; here it is an opaque byte stream.
void write_paged_container(const std::string& path, PagedPayload kind,
                           std::uint64_t n, std::uint64_t m,
                           const edge_offset_t* byte_offsets,
                           const vertex_t* degrees,
                           const std::uint8_t* payload,
                           std::uint64_t payload_bytes,
                           std::size_t stripe_bytes_opt) {
    const std::size_t page = page_bytes();
    std::size_t stripe_bytes = stripe_bytes_opt < page ? page : stripe_bytes_opt;
    stripe_bytes = (stripe_bytes + page - 1) / page * page;
    const std::uint64_t num_stripes =
        payload_bytes == 0 ? 0 : (payload_bytes + stripe_bytes - 1) / stripe_bytes;

    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) fail("write_paged_graph", "cannot open manifest", path);
    const auto kind_raw = static_cast<std::uint64_t>(kind);
    const auto stripe_bytes64 = static_cast<std::uint64_t>(stripe_bytes);
    write_raw(out, kPagedMagic, sizeof(kPagedMagic), path);
    write_raw(out, &kind_raw, sizeof(kind_raw), path);
    write_raw(out, &n, sizeof(n), path);
    write_raw(out, &m, sizeof(m), path);
    write_raw(out, &payload_bytes, sizeof(payload_bytes), path);
    write_raw(out, &stripe_bytes64, sizeof(stripe_bytes64), path);
    write_raw(out, &num_stripes, sizeof(num_stripes), path);
    write_raw(out, byte_offsets, (n + 1) * sizeof(edge_offset_t), path);
    write_raw(out, degrees, n * sizeof(vertex_t), path);
    out.close();
    if (!out) fail("write_paged_graph", "short write", path);

    for (std::uint64_t i = 0; i < num_stripes; ++i) {
        const std::uint64_t begin = i * stripe_bytes;
        const std::uint64_t len =
            std::min<std::uint64_t>(stripe_bytes, payload_bytes - begin);
        const std::string spath = stripe_path(path, i);
        std::ofstream sout(spath, std::ios::binary | std::ios::trunc);
        if (!sout) fail("write_paged_graph", "cannot open stripe", spath);
        write_raw(sout, payload + begin, static_cast<std::size_t>(len), spath);
        sout.close();
        if (!sout) fail("write_paged_graph", "short write", spath);
    }
}

}  // namespace

std::string to_string(PagedPayload payload) {
    switch (payload) {
        case PagedPayload::kPlainTargets: return "plain_targets";
        case PagedPayload::kVarintBlob: return "varint_blob";
    }
    return "unknown";
}

// ---------------------------------------------------------------------
// Io: mapping, stripe fds and the async prefetcher.
// ---------------------------------------------------------------------

struct PagedGraph::Io {
    std::string manifest_path;
    std::vector<std::string> stripe_paths;
    std::vector<int> fds;
    std::uint8_t* base = nullptr;
    std::size_t map_len = 0;      // page-rounded reservation
    std::size_t payload_len = 0;  // exact payload bytes
    std::size_t stripe_len = 0;   // bytes per full stripe
    std::size_t page = 4096;
    bool owns_files = false;

    // Resident-metadata mirrors for the prefetcher thread; stable
    // across PagedGraph moves because AlignedBuffer storage never
    // relocates.
    const edge_offset_t* offsets = nullptr;
    const vertex_t* degrees = nullptr;
    std::size_t n = 0;

    mutable PagedIoStats stats;

    // ---- prefetcher state ----
    bool prefetch_on = false;
    // Background-touching pages is only a win when a hart is free to
    // absorb the stripe reads; on a single-CPU machine the toucher
    // would timeslice against the traversal itself, so the worker
    // stops at madvise(WILLNEED) and lets the kernel's async readahead
    // provide the only overlap available.
    bool touch_pages = true;
    // On a single-CPU machine a dedicated worker thread adds nothing
    // but wakeup/preemption churn to every level barrier; the batch is
    // processed inline instead (same counters, same WILLNEED batching,
    // no thread).
    bool inline_prefetch = false;
    mutable std::mutex mu;
    mutable std::condition_variable cv;
    mutable std::vector<vertex_t> pending;  // latest unprocessed request
    mutable std::vector<std::uint64_t> wanted;  // worker's page bitmap
    mutable bool has_pending = false;
    mutable bool busy = false;
    bool stop = false;
    std::thread worker;

    ~Io() {
        if (worker.joinable()) {
            {
                std::lock_guard guard(mu);
                stop = true;
            }
            cv.notify_all();
            worker.join();
        }
        if (base != nullptr) ::munmap(base, map_len);
        for (const int fd : fds)
            if (fd >= 0) ::close(fd);
        if (owns_files) {
            ::unlink(manifest_path.c_str());
            for (const std::string& s : stripe_paths) ::unlink(s.c_str());
        }
    }

    void start_prefetcher() {
        prefetch_on = true;
        touch_pages = std::thread::hardware_concurrency() > 1;
        inline_prefetch = !touch_pages;
        if (inline_prefetch) return;
        pending.reserve(n);
        worker = std::thread([this] { prefetch_loop(); });
    }

    void prefetch_loop() {
        std::vector<vertex_t> working;
        working.reserve(n);
        std::unique_lock lock(mu);
        for (;;) {
            cv.wait(lock, [this] { return stop || has_pending; });
            if (stop) return;
            working.swap(pending);
            pending.clear();
            has_pending = false;
            busy = true;
            lock.unlock();
            process(working.data(), working.size());
            working.clear();
            lock.lock();
            busy = false;
            cv.notify_all();  // wake prefetch_quiesce waiters
        }
    }

    /// Coalesces the frontier's rows into merged page ranges, then per
    /// range: count resident pages (prefetch_hits), madvise(WILLNEED),
    /// and background-touch the non-resident pages so the stripe read
    /// happens on this thread, not under a worker's scan. A failure —
    /// including the SGE_FAULT_PAGED_READ site — degrades to skipping
    /// the range; the demand fault path still yields a correct scan.
    void process(const vertex_t* ids, std::size_t count) const {
        if (base == nullptr) return;
        const std::size_t num_pages = (payload_len + page - 1) / page;
        if (num_pages == 0) return;
        // Page bitmap instead of a sorted range list: marking is
        // O(frontier), the merge walk O(payload pages) — the worker
        // must stay cheap enough that stealing it a timeslice from the
        // traversal costs less than the faults it hides.
        wanted.assign((num_pages + 63) / 64, 0);
        bool any = false;
        for (const vertex_t v : std::span(ids, count)) {
            if (static_cast<std::size_t>(v) >= n || degrees[v] == 0) continue;
            const auto begin = static_cast<std::size_t>(offsets[v]);
            const auto end = static_cast<std::size_t>(offsets[v + 1]);
            const std::size_t p1 = (end - 1) / page;
            for (std::size_t p = begin / page; p <= p1; ++p)
                wanted[p >> 6] |= std::uint64_t{1} << (p & 63u);
            any = true;
        }
        if (!any) return;
        std::vector<unsigned char> residency;
        const auto flush = [&](std::size_t first, std::size_t last) {
            const std::size_t pages = last - first + 1;
            std::uint8_t* addr = base + first * page;
            std::size_t len = pages * page;
            if (first * page + len > map_len) len = map_len - first * page;
            stats.prefetch_issued.fetch_add(pages, std::memory_order_relaxed);
            residency.assign(pages, 0);
            if (::mincore(addr, len, residency.data()) == 0) {
                std::size_t hits = 0;
                for (const unsigned char r : residency) hits += r & 1u;
                stats.prefetch_hits.fetch_add(hits, std::memory_order_relaxed);
            }
            if (fault::should_fire(fault::Site::kPagedRead)) return;
            ::madvise(addr, len, MADV_WILLNEED);
            if (stripe_len > 0) {
                const std::size_t s0 = (first * page) / stripe_len;
                const std::size_t s1 = (first * page + len - 1) / stripe_len;
                stats.stripe_reads.fetch_add(s1 - s0 + 1,
                                             std::memory_order_relaxed);
            }
            if (!touch_pages) return;
            for (std::size_t i = 0; i < pages; ++i) {
                if (residency[i] & 1u) continue;
                const volatile std::uint8_t* touch = addr + i * page;
                (void)*touch;
            }
        };
        // Runs of set pages are exactly the merged intervals the old
        // sorted-range walk produced (adjacent rows share pages, a
        // clear page separates intervals).
        std::size_t run_first = 0;
        bool in_run = false;
        for (std::size_t p = 0; p < num_pages; ++p) {
            const bool set =
                (wanted[p >> 6] >> (p & 63u)) & std::uint64_t{1};
            if (set && !in_run) {
                run_first = p;
                in_run = true;
            } else if (!set && in_run) {
                flush(run_first, p - 1);
                in_run = false;
            }
        }
        if (in_run) flush(run_first, num_pages - 1);
    }
};

PagedGraph::PagedGraph() = default;
PagedGraph::PagedGraph(PagedGraph&&) noexcept = default;
PagedGraph& PagedGraph::operator=(PagedGraph&&) noexcept = default;
PagedGraph::~PagedGraph() = default;

void PagedGraph::prefetch_frontier(const vertex_t* items,
                                   std::size_t count) const {
    if (!io_ || !io_->prefetch_on || items == nullptr || count == 0) return;
    if (io_->inline_prefetch) {
        // Single-CPU machines: issue the WILLNEED batch from the
        // calling thread — a worker would only preempt the traversal.
        io_->process(items, count);
        return;
    }
    {
        std::lock_guard guard(io_->mu);
        // Append to an unprocessed request (the multisocket engine hands
        // over one per-socket queue at a time); once the worker picks a
        // batch up, the next call starts a fresh one.
        if (io_->has_pending) {
            io_->pending.insert(io_->pending.end(), items, items + count);
        } else {
            io_->pending.assign(items, items + count);
            io_->has_pending = true;
        }
    }
    io_->cv.notify_one();
}

bool PagedGraph::prefetch_enabled() const noexcept {
    return io_ != nullptr && io_->prefetch_on;
}

void PagedGraph::prefetch_quiesce() const {
    if (!io_ || !io_->prefetch_on) return;
    std::unique_lock lock(io_->mu);
    io_->cv.wait(lock, [this] { return !io_->has_pending && !io_->busy; });
}

void PagedGraph::evict() const noexcept {
    if (!io_ || io_->base == nullptr) return;
    ::madvise(io_->base, io_->map_len, MADV_DONTNEED);
    for (const int fd : io_->fds) {
        if (fd < 0) continue;
        // Freshly written stripes may still be dirty in the page cache,
        // and DONTNEED cannot drop dirty pages — flush them first so
        // eviction works right after a spill (the cold-run bench path).
        ::fdatasync(fd);
        ::posix_fadvise(fd, 0, 0, POSIX_FADV_DONTNEED);
    }
}

std::size_t PagedGraph::resident_payload_bytes() const {
    if (!io_ || io_->base == nullptr) return 0;
    const std::size_t pages = io_->map_len / io_->page;
    std::vector<unsigned char> residency(pages, 0);
    if (::mincore(io_->base, io_->map_len, residency.data()) != 0) return 0;
    std::size_t resident = 0;
    for (const unsigned char r : residency) resident += r & 1u;
    return std::min(resident * io_->page, io_->payload_len);
}

const PagedIoStats& PagedGraph::io_stats() const noexcept {
    static const PagedIoStats kZero{};
    return io_ ? io_->stats : kZero;
}

const std::string& PagedGraph::path() const noexcept {
    static const std::string kEmpty;
    return io_ ? io_->manifest_path : kEmpty;
}

bool PagedGraph::well_formed() const noexcept {
    const std::size_t n = degrees_.size();
    if (byte_offsets_.size() != (n == 0 ? 0 : n + 1)) return n == 0;
    if (n == 0) return true;
    if (byte_offsets_[0] != 0) return false;
    const std::size_t payload_len = io_ ? io_->payload_len : 0;
    std::uint64_t degree_sum = 0;
    for (std::size_t v = 0; v < n; ++v) {
        if (byte_offsets_[v + 1] < byte_offsets_[v]) return false;
        degree_sum += degrees_[v];
    }
    if (byte_offsets_[n] != payload_len) return false;
    if (degree_sum != num_edges_) return false;
    if (payload_len > 0 && payload_ == nullptr) return false;

    if (payload_kind_ == PagedPayload::kPlainTargets) {
        for (std::size_t v = 0; v < n; ++v) {
            const std::uint64_t bytes = byte_offsets_[v + 1] - byte_offsets_[v];
            if (bytes != static_cast<std::uint64_t>(degrees_[v]) *
                             sizeof(vertex_t))
                return false;
            const auto* adj = reinterpret_cast<const vertex_t*>(
                payload_ + byte_offsets_[v]);
            for (vertex_t i = 0; i < degrees_[v]; ++i)
                if (adj[i] >= n) return false;
        }
        return true;
    }

    // Varint payload: every run must decode within exactly its byte
    // range to sorted, in-range ids — mirrors
    // CompressedCsrGraph::well_formed.
    for (std::size_t v = 0; v < n; ++v) {
        const vertex_t deg = degrees_[v];
        const std::uint8_t* p = payload_ + byte_offsets_[v];
        const std::uint8_t* const end = payload_ + byte_offsets_[v + 1];
        if (deg == 0) {
            if (p != end) return false;
            continue;
        }
        std::uint64_t u = 0;
        if (!decode_u64_checked(p, end, u)) return false;
        const std::int64_t first =
            static_cast<std::int64_t>(v) + varint::zigzag_decode(u);
        if (first < 0 || first >= static_cast<std::int64_t>(n)) return false;
        std::uint64_t prev = static_cast<std::uint64_t>(first);
        for (vertex_t i = 1; i < deg; ++i) {
            if (!decode_u64_checked(p, end, u)) return false;
            prev += u;
            if (prev >= n) return false;
        }
        if (p != end) return false;
    }
    return true;
}

// ---------------------------------------------------------------------
// Writers.
// ---------------------------------------------------------------------

void write_paged_graph(const CsrGraph& g, const std::string& path,
                       const PagedWriteOptions& options) {
    if (options.payload == PagedPayload::kVarintBlob) {
        write_paged_graph(csr_compress(g), path, options);
        return;
    }
    const std::uint64_t n = g.num_vertices();
    const std::uint64_t m = g.num_edges();
    AlignedBuffer<edge_offset_t> byte_offsets(static_cast<std::size_t>(n) + 1);
    AlignedBuffer<vertex_t> degrees(static_cast<std::size_t>(n));
    for (std::uint64_t v = 0; v <= n; ++v)
        byte_offsets[v] = g.offsets()[v] * sizeof(vertex_t);
    for (std::uint64_t v = 0; v < n; ++v)
        degrees[v] = static_cast<vertex_t>(g.degree(static_cast<vertex_t>(v)));
    write_paged_container(
        path, PagedPayload::kPlainTargets, n, m, byte_offsets.data(),
        degrees.data(),
        reinterpret_cast<const std::uint8_t*>(g.targets().data()),
        m * sizeof(vertex_t), options.stripe_bytes);
}

void write_paged_graph(const CompressedCsrGraph& g, const std::string& path,
                       const PagedWriteOptions& options) {
    const std::uint64_t n = g.num_vertices();
    write_paged_container(path, PagedPayload::kVarintBlob, n, g.num_edges(),
                          g.offsets().data(), g.degrees().data(),
                          g.blob().data(), g.blob().size(),
                          options.stripe_bytes);
}

// ---------------------------------------------------------------------
// Reader.
// ---------------------------------------------------------------------

PagedGraph open_paged_graph(const std::string& path,
                            const PagedOpenOptions& options) {
    // Fault site paged_read: simulate an unreadable backing store with
    // the same typed error a real failure raises.
    if (fault::should_fire(fault::Site::kPagedRead))
        fail("open_paged_graph", "paged_read fault injected", path);

    std::ifstream in(path, std::ios::binary);
    if (!in) fail("open_paged_graph", "cannot open manifest", path);
    in.seekg(0, std::ios::end);
    const std::streamoff size = in.tellg();
    in.seekg(0, std::ios::beg);
    if (size < 0) fail("open_paged_graph", "cannot stat manifest", path);
    const auto file_bytes = static_cast<std::uint64_t>(size);

    char magic[8];
    read_raw(in, magic, sizeof(magic), path);
    if (std::memcmp(magic, kPagedMagic, sizeof(kPagedMagic)) != 0)
        fail("open_paged_graph", "bad magic", path);

    std::uint64_t kind_raw = 0;
    std::uint64_t n = 0;
    std::uint64_t m = 0;
    std::uint64_t payload_bytes = 0;
    std::uint64_t stripe_bytes = 0;
    std::uint64_t num_stripes = 0;
    read_raw(in, &kind_raw, sizeof(kind_raw), path);
    read_raw(in, &n, sizeof(n), path);
    read_raw(in, &m, sizeof(m), path);
    read_raw(in, &payload_bytes, sizeof(payload_bytes), path);
    read_raw(in, &stripe_bytes, sizeof(stripe_bytes), path);
    read_raw(in, &num_stripes, sizeof(num_stripes), path);

    // Size-gate every untrusted header field against the file before
    // any allocation (the read_csr discipline): a corrupt 56-byte
    // header must not demand a multi-GB buffer.
    const std::size_t page = page_bytes();
    if (kind_raw > static_cast<std::uint64_t>(PagedPayload::kVarintBlob))
        fail("open_paged_graph", "unknown payload kind", path);
    const auto kind = static_cast<PagedPayload>(kind_raw);
    if (n >= kInvalidVertex)
        fail("open_paged_graph", "vertex count out of range", path);
    if (file_bytes != kManifestHeaderBytes +
                          (n + 1) * sizeof(edge_offset_t) +
                          n * sizeof(vertex_t))
        fail("open_paged_graph", "manifest size does not match header", path);
    if (stripe_bytes == 0 || stripe_bytes % page != 0)
        fail("open_paged_graph", "stripe size not a page multiple", path);
    const std::uint64_t expected_stripes =
        payload_bytes == 0 ? 0
                           : (payload_bytes + stripe_bytes - 1) / stripe_bytes;
    if (num_stripes != expected_stripes)
        fail("open_paged_graph", "stripe count does not match payload", path);
    if (kind == PagedPayload::kPlainTargets) {
        if (payload_bytes != m * sizeof(vertex_t))
            fail("open_paged_graph", "payload size does not match edge count",
                 path);
    } else if (m > payload_bytes) {
        // Every encoded edge costs at least one payload byte.
        fail("open_paged_graph", "header claims more edges than the payload",
             path);
    }

    AlignedBuffer<edge_offset_t> byte_offsets(static_cast<std::size_t>(n) + 1);
    AlignedBuffer<vertex_t> degrees(static_cast<std::size_t>(n));
    read_raw(in, byte_offsets.data(),
             byte_offsets.size() * sizeof(edge_offset_t), path);
    read_raw(in, degrees.data(), degrees.size() * sizeof(vertex_t), path);
    in.close();

    auto io = std::make_unique<PagedGraph::Io>();
    io->manifest_path = path;
    io->payload_len = static_cast<std::size_t>(payload_bytes);
    io->stripe_len = static_cast<std::size_t>(stripe_bytes);
    io->page = page;
    io->owns_files = options.owns_files;
    io->offsets = byte_offsets.data();
    io->degrees = degrees.data();
    io->n = static_cast<std::size_t>(n);

    if (payload_bytes > 0) {
        io->map_len = (io->payload_len + page - 1) / page * page;
        void* base = ::mmap(nullptr, io->map_len, PROT_NONE,
                            MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
        if (base == MAP_FAILED) {
            io->map_len = 0;
            fail("open_paged_graph", "cannot reserve payload mapping", path);
        }
        io->base = static_cast<std::uint8_t*>(base);
        io->fds.reserve(static_cast<std::size_t>(num_stripes));
        io->stripe_paths.reserve(static_cast<std::size_t>(num_stripes));
        for (std::uint64_t i = 0; i < num_stripes; ++i) {
            const std::string spath = stripe_path(path, i);
            io->stripe_paths.push_back(spath);
            const std::uint64_t begin = i * stripe_bytes;
            const std::uint64_t expect =
                std::min<std::uint64_t>(stripe_bytes, payload_bytes - begin);
            if (fault::should_fire(fault::Site::kPagedRead))
                fail("open_paged_graph", "paged_read fault injected", spath);
            struct ::stat st {};
            if (::stat(spath.c_str(), &st) != 0)
                fail("open_paged_graph", "missing stripe", spath);
            if (static_cast<std::uint64_t>(st.st_size) != expect)
                fail("open_paged_graph", "stripe size mismatch", spath);
            const int fd = ::open(spath.c_str(), O_RDONLY);
            if (fd < 0) fail("open_paged_graph", "cannot open stripe", spath);
            io->fds.push_back(fd);
            void* mapped = ::mmap(io->base + begin,
                                  static_cast<std::size_t>(expect), PROT_READ,
                                  MAP_PRIVATE | MAP_FIXED, fd, 0);
            if (mapped == MAP_FAILED)
                fail("open_paged_graph", "cannot map stripe", spath);
        }
        io->stats.bytes_mapped.store(io->map_len, std::memory_order_relaxed);
    }

    PagedGraph g;
    g.byte_offsets_ = std::move(byte_offsets);
    g.degrees_ = std::move(degrees);
    g.payload_ = io->base;
    g.payload_kind_ = kind;
    g.io_ = std::move(io);

    // Structural validation over the resident metadata + (optionally)
    // the mapped payload. Offsets that overshoot the payload — "offset
    // past EOF" — die here as a typed error, never as a later SIGBUS.
    std::uint64_t degree_sum = 0;
    for (std::uint64_t v = 0; v < n; ++v) {
        if (g.byte_offsets_[v + 1] < g.byte_offsets_[v])
            fail("open_paged_graph", "non-monotone byte offsets", path);
        degree_sum += g.degrees_[v];
    }
    if (n > 0 && (g.byte_offsets_[0] != 0 ||
                  g.byte_offsets_[n] != payload_bytes))
        fail("open_paged_graph", "byte offsets do not span the payload", path);
    if (degree_sum != m)
        fail("open_paged_graph", "degree sum does not match edge count", path);
    g.num_edges_ = m;

    if (options.validate_payload && !g.well_formed())
        fail("open_paged_graph", "payload failed validation", path);

    if (options.prefetch && payload_bytes > 0) g.io_->start_prefetcher();
    return g;
}

PagedGraph make_paged(const CsrGraph& g, const std::string& path,
                      const PagedWriteOptions& write_options,
                      const PagedOpenOptions& open_options) {
    write_paged_graph(g, path, write_options);
    return open_paged_graph(path, open_options);
}

void remove_paged_files(const std::string& path) noexcept {
    std::ifstream in(path, std::ios::binary);
    std::uint64_t num_stripes = 0;
    if (in) {
        char magic[8];
        in.read(magic, sizeof(magic));
        if (in.gcount() == sizeof(magic) &&
            std::memcmp(magic, kPagedMagic, sizeof(kPagedMagic)) == 0) {
            in.seekg(static_cast<std::streamoff>(sizeof(kPagedMagic) +
                                                 5 * sizeof(std::uint64_t)));
            in.read(reinterpret_cast<char*>(&num_stripes),
                    sizeof(num_stripes));
            if (in.gcount() != sizeof(num_stripes)) num_stripes = 0;
        }
        in.close();
    }
    // Cap the sweep so a corrupt count cannot spin forever; fall back
    // to probing until the first missing stripe.
    if (num_stripes > (std::uint64_t{1} << 20)) num_stripes = 1 << 20;
    for (std::uint64_t i = 0; i < num_stripes; ++i)
        ::unlink(stripe_path(path, i).c_str());
    ::unlink(path.c_str());
}

}  // namespace sge
