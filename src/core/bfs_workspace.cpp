#include "core/bfs_workspace.hpp"

#include <cstring>

#include "concurrency/thread_team.hpp"
#include "graph/csr_compressed.hpp"
#include "graph/paged_graph.hpp"
#include "graph/partition.hpp"

namespace sge {

namespace {

/// Word range of the vertex slice [vlo, vhi) — boundary words shared
/// with a neighbouring slice are covered by both sides; the zero stores
/// are idempotent, so the overlap is harmless.
std::pair<std::size_t, std::size_t> word_range(std::size_t vlo,
                                               std::size_t vhi) noexcept {
    constexpr std::size_t w = VersionedBitmap::kSlotsPerWord;
    return {vlo / w, (vhi + w - 1) / w};
}

}  // namespace

template <class Graph>
void BfsWorkspace::prepare_impl(const Graph& g, BfsEngine engine,
                                const BfsOptions& options, ThreadTeam& team) {
    if (g.num_vertices() != prepared_n_ || engine != prepared_engine_ ||
        team.size() != prepared_threads_ ||
        options.frontier_gen != prepared_gen_) {
        allocate(g.num_vertices(), engine, options, team);
        ++stats.prepares;
    } else {
        ++stats.workspace_reuses;
    }
    note_graph(g.offsets().data(), g.num_vertices(), g.num_edges());
    reset_for_query(engine);
}

void BfsWorkspace::prepare(const CsrGraph& g, BfsEngine engine,
                           const BfsOptions& options, ThreadTeam& team) {
    prepare_impl(g, engine, options, team);
}

void BfsWorkspace::prepare(const CompressedCsrGraph& g, BfsEngine engine,
                           const BfsOptions& options, ThreadTeam& team) {
    prepare_impl(g, engine, options, team);
}

void BfsWorkspace::prepare(const PagedGraph& g, BfsEngine engine,
                           const BfsOptions& options, ThreadTeam& team) {
    prepare_impl(g, engine, options, team);
}

void BfsWorkspace::note_graph(const void* offsets, vertex_t n,
                              std::uint64_t m) {
    if (offsets == tag_offsets_ && n == tag_n_ && m == tag_m_) return;
    // Different graph (even at equal n): degree-derived plans are stale.
    range_planned = false;
    ms_planned = false;
    tag_offsets_ = offsets;
    tag_n_ = n;
    tag_m_ = m;
}

void BfsWorkspace::allocate(vertex_t n, BfsEngine engine,
                            const BfsOptions& options, ThreadTeam& team) {
    const int threads = team.size();
    const int sockets = team.sockets_used();
    const std::size_t batch = options.batch_size < 1 ? 1 : options.batch_size;

    // Poison until every allocation lands: a fault-injected bad_alloc
    // mid-way must force a full clean retry on the next prepare.
    prepared_n_ = kInvalidVertex;

    rank_in_socket.assign(static_cast<std::size_t>(threads), 0);
    socket_threads.assign(static_cast<std::size_t>(sockets), 0);
    for (int t = 0; t < threads; ++t) {
        const int s = team.socket_of(t);
        rank_in_socket[static_cast<std::size_t>(t)] = socket_threads[s]++;
    }

    // Release every engine-specific arena, then build the selected
    // engine's. A runner only dispatches one engine, so the workspace
    // only ever pays for one.
    visited = VersionedBitmap();
    frontier_bits[0] = VersionedBitmap();
    frontier_bits[1] = VersionedBitmap();
    claim = AlignedBuffer<std::atomic<std::uint64_t>>();
    claim_epoch = 0;
    queues[0] = FrontierQueue();
    queues[1] = FrontierQueue();
    socket_queues[0].clear();
    socket_queues[1].clear();
    channels.clear();
    wq.reset();
    range_wq.reset();
    range_planned = false;
    socket_wqs.clear();
    scratch.clear();
    compactor.clear();

    switch (engine) {
        case BfsEngine::kNaive:
            claim = AlignedBuffer<std::atomic<std::uint64_t>>(n);
            queues[0] = FrontierQueue(n);
            queues[1] = FrontierQueue(n);
            wq = std::make_unique<WorkQueue>(threads,
                                             detail::team_socket_map(team));
            break;
        case BfsEngine::kBitmap:
            visited = VersionedBitmap(n, /*zeroed=*/false);
            queues[0] = FrontierQueue(n);
            queues[1] = FrontierQueue(n);
            wq = std::make_unique<WorkQueue>(threads,
                                             detail::team_socket_map(team));
            scratch.resize(static_cast<std::size_t>(threads));
            for (ThreadScratch& s : scratch)
                s.staged = LocalBatch<vertex_t>(batch);
            break;
        case BfsEngine::kMultiSocket: {
            const SocketPartition partition(n, sockets);
            visited = VersionedBitmap(n, /*zeroed=*/false);
            for (int s = 0; s < sockets; ++s) {
                socket_queues[0].emplace_back(partition.size(s));
                socket_queues[1].emplace_back(partition.size(s));
                channels.push_back(
                    std::make_unique<Channel<std::uint64_t, kEmptyVisit>>(
                        options.channel_capacity));
                const int peers = socket_threads[static_cast<std::size_t>(s)];
                socket_wqs.push_back(std::make_unique<WorkQueue>(
                    peers < 1 ? 1 : peers,
                    std::vector<int>(
                        static_cast<std::size_t>(peers < 1 ? 1 : peers), 0)));
            }
            scratch.resize(static_cast<std::size_t>(threads));
            for (ThreadScratch& s : scratch) {
                s.staged = LocalBatch<vertex_t>(batch);
                s.remote.clear();
                s.remote.reserve(static_cast<std::size_t>(sockets));
                for (int k = 0; k < sockets; ++k) s.remote.emplace_back(batch);
                s.drain = AlignedBuffer<std::uint64_t>(batch);
            }
            break;
        }
        case BfsEngine::kHybrid:
            visited = VersionedBitmap(n, /*zeroed=*/false);
            frontier_bits[0] = VersionedBitmap(n, /*zeroed=*/false);
            frontier_bits[1] = VersionedBitmap(n, /*zeroed=*/false);
            queues[0] = FrontierQueue(n);
            queues[1] = FrontierQueue(n);
            wq = std::make_unique<WorkQueue>(threads,
                                             detail::team_socket_map(team));
            range_wq = std::make_unique<WorkQueue>(
                threads, detail::team_socket_map(team));
            scratch.resize(static_cast<std::size_t>(threads));
            for (ThreadScratch& s : scratch)
                s.staged = LocalBatch<vertex_t>(batch);
            break;
        case BfsEngine::kSerial:
        case BfsEngine::kAuto:
            break;  // no parallel arena
    }

    // Compact frontier generation: one private discovery buffer per
    // worker (capped by what that worker can discover in a level — n,
    // or its socket's partition for the per-socket queues) plus the
    // published counts. kAtomic mode skips the whole arena.
    if (options.frontier_gen == FrontierGen::kCompact) {
        switch (engine) {
            case BfsEngine::kNaive:
            case BfsEngine::kBitmap:
            case BfsEngine::kHybrid:
                compactor.configure(threads, static_cast<std::size_t>(n));
                break;
            case BfsEngine::kMultiSocket: {
                const SocketPartition partition(n, sockets);
                std::vector<std::size_t> caps(
                    static_cast<std::size_t>(threads));
                std::vector<int> groups(static_cast<std::size_t>(threads));
                for (int t = 0; t < threads; ++t) {
                    const int s = team.socket_of(t);
                    caps[static_cast<std::size_t>(t)] = partition.size(s);
                    groups[static_cast<std::size_t>(t)] = s;
                }
                compactor.configure(threads, caps, std::move(groups));
                break;
            }
            default:
                break;
        }
    }

    first_touch(engine, team);

    prepared_n_ = n;
    prepared_engine_ = engine;
    prepared_threads_ = threads;
    prepared_gen_ = options.frontier_gen;
}

void BfsWorkspace::first_touch(BfsEngine engine, ThreadTeam& team) {
    const vertex_t vertices = [&] {
        switch (engine) {
            case BfsEngine::kNaive:
                return static_cast<vertex_t>(claim.size());
            case BfsEngine::kBitmap:
            case BfsEngine::kMultiSocket:
            case BfsEngine::kHybrid:
                return static_cast<vertex_t>(visited.size_bits());
            default:
                return vertex_t{0};
        }
    }();
    if (vertices == 0) return;

    const int sockets = team.sockets_used();
    const SocketPartition partition(vertices, sockets);

    // Each socket's pinned workers fault in that socket's slice of every
    // vertex-indexed array — the paper's placement rule, applied once at
    // allocation instead of every traversal.
    team.run([&](int tid) {
        // Each worker faults in its own compact discovery buffer: the
        // pages land on the node of the thread that will fill them.
        if (tid < compactor.claimants()) compactor.first_touch(tid);

        const int my = team.socket_of(tid);
        const auto [lo, hi] = partition.range(my);
        const int peers = socket_threads[static_cast<std::size_t>(my)];
        const auto [b, e] = detail::split_range(
            hi - lo, peers, rank_in_socket[static_cast<std::size_t>(tid)]);
        const std::size_t vlo = lo + b;
        const std::size_t vhi = lo + e;
        if (vlo >= vhi) return;
        const auto [wlo, whi] = word_range(vlo, vhi);

        switch (engine) {
            case BfsEngine::kNaive:
                for (std::size_t v = vlo; v < vhi; ++v)
                    claim[v].store(0, std::memory_order_relaxed);
                for (FrontierQueue& q : queues)
                    std::memset(q.slots_mut() + vlo, 0,
                                (vhi - vlo) * sizeof(vertex_t));
                break;
            case BfsEngine::kBitmap:
                visited.clear_words(wlo, whi);
                for (FrontierQueue& q : queues)
                    std::memset(q.slots_mut() + vlo, 0,
                                (vhi - vlo) * sizeof(vertex_t));
                break;
            case BfsEngine::kMultiSocket:
                visited.clear_words(wlo, whi);
                // The socket's queues are indexed by socket-local
                // position; this worker's share is [b, e).
                for (auto* phase : {&socket_queues[0], &socket_queues[1]}) {
                    FrontierQueue& q = (*phase)[static_cast<std::size_t>(my)];
                    std::memset(q.slots_mut() + b, 0,
                                (e - b) * sizeof(vertex_t));
                }
                break;
            case BfsEngine::kHybrid:
                visited.clear_words(wlo, whi);
                frontier_bits[0].clear_words(wlo, whi);
                frontier_bits[1].clear_words(wlo, whi);
                for (FrontierQueue& q : queues)
                    std::memset(q.slots_mut() + vlo, 0,
                                (vhi - vlo) * sizeof(vertex_t));
                break;
            default:
                break;
        }
    });
}

void BfsWorkspace::reset_for_query(BfsEngine engine) {
    switch (engine) {
        case BfsEngine::kNaive:
            if (claim_epoch == VersionedBitmap::kMaxEpoch) {
                // Once per ~4 billion queries: physically rewind the
                // claim stamps and restart the epoch sequence.
                for (std::size_t v = 0; v < claim.size(); ++v)
                    claim[v].store(0, std::memory_order_relaxed);
                claim_epoch = 1;
                stats.reset_words_touched += claim.size();
            } else {
                ++claim_epoch;
            }
            queues[0].reset();
            queues[1].reset();
            break;
        case BfsEngine::kBitmap:
            stats.reset_words_touched += visited.advance_epoch();
            queues[0].reset();
            queues[1].reset();
            break;
        case BfsEngine::kMultiSocket: {
            stats.reset_words_touched += visited.advance_epoch();
            for (FrontierQueue& q : socket_queues[0]) q.reset();
            for (FrontierQueue& q : socket_queues[1]) q.reset();
            // An aborted run (watchdog / fault injection) can leave
            // undrained tuples behind; flush them so they cannot leak
            // into the next query as phantom visits.
            std::uint64_t sink[64];
            for (auto& ch : channels)
                while (ch->pop_batch(sink, 64) != 0) {
                }
            break;
        }
        case BfsEngine::kHybrid:
            stats.reset_words_touched += visited.advance_epoch();
            stats.reset_words_touched += frontier_bits[0].advance_epoch();
            stats.reset_words_touched += frontier_bits[1].advance_epoch();
            queues[0].reset();
            queues[1].reset();
            break;
        default:
            break;
    }
    for (ThreadScratch& s : scratch) {
        s.staged.clear();
        for (LocalBatch<std::uint64_t>& r : s.remote) r.clear();
    }
    compactor.reset();
}

template <class Graph>
void BfsWorkspace::prepare_ms_impl(const Graph& g, SchedulePolicy schedule,
                                   ThreadTeam& team) {
    const vertex_t n = g.num_vertices();
    const int threads = team.size();
    if (n != ms_n_ || threads != ms_threads_) {
        ms_n_ = kInvalidVertex;  // poison until all three land
        ms_seen = AlignedBuffer<std::atomic<std::uint64_t>>(n);
        ms_frontier = AlignedBuffer<std::uint64_t>(n);
        ms_next = AlignedBuffer<std::atomic<std::uint64_t>>(n);
        ms_wq = std::make_unique<WorkQueue>(threads,
                                            detail::team_socket_map(team));
        ms_planned = false;
        ms_n_ = n;
        ms_threads_ = threads;
        ++stats.prepares;
    } else {
        ++stats.workspace_reuses;
    }
    note_graph(g.offsets().data(), g.num_vertices(), g.num_edges());
    if (schedule != ms_schedule_) ms_planned = false;
    if (schedule == SchedulePolicy::kStatic) return;
    // Cut the degree-weighted [0, n) plan once per (graph, schedule);
    // later calls only rewind its cursors. MS-BFS's own init pass zeroes
    // (and on the first call first-touches) the lane buffers — a full
    // clear is inherent to the 64-lane masks.
    if (!ms_planned) {
        detail::plan_vertex_range(
            *ms_wq, n, g, schedule,
            detail::resolve_bottomup_chunk({}, n, threads));
        ms_planned = true;
        ms_schedule_ = schedule;
    } else {
        ms_wq->reset_cursors();
    }
}

void BfsWorkspace::prepare_ms(const CsrGraph& g, SchedulePolicy schedule,
                              ThreadTeam& team) {
    prepare_ms_impl(g, schedule, team);
}

void BfsWorkspace::prepare_ms(const CompressedCsrGraph& g,
                              SchedulePolicy schedule, ThreadTeam& team) {
    prepare_ms_impl(g, schedule, team);
}

void BfsWorkspace::prepare_ms(const PagedGraph& g, SchedulePolicy schedule,
                              ThreadTeam& team) {
    prepare_ms_impl(g, schedule, team);
}

}  // namespace sge
