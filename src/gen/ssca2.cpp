#include "gen/ssca2.hpp"

#include <vector>

#include "runtime/prng.hpp"

namespace sge {

EdgeList generate_ssca2(const Ssca2Params& params) {
    const vertex_t n = params.num_vertices;
    if (n == 0) return EdgeList{};

    Xoshiro256 rng(params.seed);

    // Carve the vertex range into cliques of size U[1, max_clique_size].
    std::vector<vertex_t> clique_start;
    vertex_t v = 0;
    while (v < n) {
        clique_start.push_back(v);
        const auto size =
            static_cast<vertex_t>(1 + rng.next_below(params.max_clique_size));
        v = (v > n - size) ? n : v + size;  // overflow-safe clamp to n
    }
    clique_start.push_back(n);  // sentinel
    const std::size_t cliques = clique_start.size() - 1;

    EdgeList edges(n);
    for (std::size_t c = 0; c < cliques; ++c) {
        const vertex_t begin = clique_start[c];
        const vertex_t end = clique_start[c + 1];
        // Complete intra-clique subgraph (each undirected pair once).
        for (vertex_t a = begin; a < end; ++a)
            for (vertex_t b = a + 1; b < end; ++b) edges.add(a, b);
        // Inter-clique edges: geometrically prefer nearby cliques, the
        // SSCA#2 trait that yields strong community structure.
        for (vertex_t a = begin; a < end; ++a) {
            for (std::uint32_t k = 0; k < params.inter_clique_edges; ++k) {
                if (cliques < 2) break;
                std::size_t hop = 1;
                while (hop < cliques - 1 && rng.next_double() < 0.5) hop <<= 1;
                const std::size_t target_clique =
                    (c + 1 + rng.next_below(hop)) % cliques;
                if (target_clique == c) continue;
                const vertex_t tb = clique_start[target_clique];
                const vertex_t te = clique_start[target_clique + 1];
                edges.add(a, tb + static_cast<vertex_t>(rng.next_below(te - tb)));
            }
        }
    }
    return edges;
}

}  // namespace sge
