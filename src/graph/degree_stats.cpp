#include "graph/degree_stats.hpp"

#include <bit>
#include <limits>
#include <sstream>

namespace sge {

namespace {

// One body for both backends: degree() is O(1) on each (the compressed
// graph keeps an explicit degree array), and each reports its own
// representation's footprint via memory_bytes().
template <class Graph>
DegreeStats compute_impl(const Graph& g) {
    DegreeStats stats;
    const vertex_t n = g.num_vertices();
    stats.memory_bytes = g.memory_bytes();
    if (g.num_edges() != 0)
        stats.bits_per_edge = 8.0 * static_cast<double>(stats.memory_bytes) /
                              static_cast<double>(g.num_edges());
    if (n == 0) return stats;

    stats.min_degree = std::numeric_limits<std::uint64_t>::max();
    std::uint64_t total = 0;
    for (vertex_t v = 0; v < n; ++v) {
        const std::uint64_t d = g.degree(v);
        total += d;
        stats.min_degree = std::min(stats.min_degree, d);
        stats.max_degree = std::max(stats.max_degree, d);
        if (d == 0) ++stats.isolated_vertices;
        const std::size_t bucket = d < 2 ? 0 : std::bit_width(d) - 1;
        if (stats.log2_histogram.size() <= bucket)
            stats.log2_histogram.resize(bucket + 1, 0);
        ++stats.log2_histogram[bucket];
    }
    stats.mean_degree = static_cast<double>(total) / static_cast<double>(n);
    return stats;
}

}  // namespace

DegreeStats compute_degree_stats(const CsrGraph& g) { return compute_impl(g); }

DegreeStats compute_degree_stats(const CompressedCsrGraph& g) {
    return compute_impl(g);
}

std::string DegreeStats::describe() const {
    std::ostringstream out;
    out << "degree min=" << min_degree << " max=" << max_degree
        << " mean=" << mean_degree << " isolated=" << isolated_vertices
        << " memory=" << memory_bytes << "B bits/edge=" << bits_per_edge;
    return out.str();
}

}  // namespace sge
