// Shared-memory Algorithm 3 vs the distributed-memory-style BFS
// (src/dist) on identical workloads and rank/socket counts: what the
// paper's future-work extension costs relative to its shared-memory
// design, plus the communication volume the 1-D partition generates.

#include <cstdio>

#include "bench_util.hpp"
#include "dist/dist_bfs.hpp"

int main() {
    using namespace sge;
    using namespace sge::bench;

    banner("Distributed-memory-style BFS vs shared-memory Algorithm 3",
           "Section V future work (PGAS/distributed extension)");

    const std::uint64_t n = scaled(1 << 16);
    const CsrGraph g = uniform_graph(n, 16 * n);
    std::printf("workload: uniform, %llu vertices, %llu arcs\n\n",
                static_cast<unsigned long long>(n),
                static_cast<unsigned long long>(g.num_edges()));

    Table table({"partitions", "shared (Alg.3)", "distributed (msg-only)",
                 "msg volume (tuples)", "tuples/edge"});
    for (const int parts : {1, 2, 4, 8}) {
        BfsOptions shared_opts;
        shared_opts.engine = BfsEngine::kMultiSocket;
        shared_opts.threads = parts;
        shared_opts.topology = Topology::emulate(parts, 1, 1);
        const double shared_rate = bfs_rate(g, shared_opts);

        DistBfsOptions dist_opts;
        dist_opts.ranks = parts;
        dist_opts.collect_stats = true;
        // Manual best-of-2 timing (distributed_bfs has no runner reuse —
        // each call is a fresh "job launch", which is part of the model).
        double dist_rate = 0.0;
        std::uint64_t tuples = 0;
        for (int run = 0; run < 2; ++run) {
            const BfsResult r = distributed_bfs(g, 0, dist_opts);
            dist_rate = std::max(dist_rate, r.edges_per_second());
            tuples = 0;
            for (const auto& s : r.level_stats) tuples += s.remote_tuples;
        }

        table.add_row({fmt_u64(parts), fmt("%.1f ME/s", shared_rate / 1e6),
                       fmt("%.1f ME/s", dist_rate / 1e6), fmt_u64(tuples),
                       fmt("%.3f", static_cast<double>(tuples) /
                                       static_cast<double>(g.num_edges()))});
    }
    table.print();

    std::printf(
        "\nexpected shape: with one partition the two are near-identical; "
        "as partitions\ngrow, the distributed variant pays per-tuple "
        "messaging for every cut edge\n(~(p-1)/p of edges under random "
        "partition), the cost Algorithm 3's shared bitmap\navoids — the "
        "quantitative argument for the paper's shared-memory design.\n");
    return 0;
}
