#include <gtest/gtest.h>

#include "core/bfs.hpp"
#include "core/validate.hpp"
#include "gen/uniform.hpp"
#include "graph/builder.hpp"
#include "test_util.hpp"

namespace sge {
namespace {

BfsResult good_result(const CsrGraph& g, vertex_t root) {
    BfsOptions opts;
    opts.engine = BfsEngine::kSerial;
    return bfs(g, root, opts);
}

class ValidatorTest : public ::testing::Test {
  protected:
    void SetUp() override {
        UniformParams params;
        params.num_vertices = 500;
        params.degree = 4;
        g_ = csr_from_edges(generate_uniform(params));
        result_ = good_result(g_, 0);
    }

    CsrGraph g_;
    BfsResult result_;
};

TEST_F(ValidatorTest, AcceptsCorrectResult) {
    const auto report = validate_bfs_tree(g_, 0, result_);
    EXPECT_TRUE(report.ok) << report.error;
}

TEST_F(ValidatorTest, RejectsRootNotItsOwnParent) {
    result_.parent[0] = 1;
    EXPECT_FALSE(validate_bfs_tree(g_, 0, result_).ok);
}

TEST_F(ValidatorTest, RejectsWrongRootLevel) {
    result_.level[0] = 1;
    EXPECT_FALSE(validate_bfs_tree(g_, 0, result_).ok);
}

TEST_F(ValidatorTest, RejectsNonEdgeParent) {
    // Find a reached vertex whose claimed parent we can corrupt to a
    // non-neighbour.
    for (vertex_t v = 1; v < g_.num_vertices(); ++v) {
        if (result_.parent[v] == kInvalidVertex) continue;
        vertex_t fake = kInvalidVertex;
        for (vertex_t w = 0; w < g_.num_vertices(); ++w) {
            if (w != v && !g_.has_edge(w, v) &&
                result_.parent[w] != kInvalidVertex) {
                fake = w;
                break;
            }
        }
        if (fake == kInvalidVertex) continue;
        result_.parent[v] = fake;
        // Keep the level consistent so only the edge rule can fire.
        result_.level[v] = result_.level[fake] + 1;
        const auto report = validate_bfs_tree(g_, 0, result_,
                                              /*check_edge_levels=*/false);
        EXPECT_FALSE(report.ok);
        EXPECT_NE(report.error.find("not a graph edge"), std::string::npos)
            << report.error;
        return;
    }
    GTEST_SKIP() << "no corruptible vertex found";
}

TEST_F(ValidatorTest, RejectsLevelSkew) {
    for (vertex_t v = 1; v < g_.num_vertices(); ++v) {
        if (result_.parent[v] == kInvalidVertex || v == 0) continue;
        result_.level[v] += 1;  // breaks level[v] == level[parent]+1
        EXPECT_FALSE(validate_bfs_tree(g_, 0, result_).ok);
        return;
    }
    GTEST_SKIP();
}

TEST_F(ValidatorTest, RejectsUnreachedWithLevel) {
    const CsrGraph g = test::two_cliques(4);
    BfsResult r = good_result(g, 0);
    r.level[6] = 3;  // vertex 6 is in the other clique
    EXPECT_FALSE(validate_bfs_tree(g, 0, r).ok);
}

TEST_F(ValidatorTest, RejectsVisitedCountMismatch) {
    result_.vertices_visited += 1;
    EXPECT_FALSE(validate_bfs_tree(g_, 0, result_).ok);
}

TEST_F(ValidatorTest, RejectsReachedSetNotClosed) {
    // Mark a reached vertex unreached: one of its neighbours' edges now
    // leaves the reached set.
    for (vertex_t v = 1; v < g_.num_vertices(); ++v) {
        if (result_.parent[v] == kInvalidVertex) continue;
        if (g_.degree(v) == 0) continue;
        result_.parent[v] = kInvalidVertex;
        result_.level[v] = kInvalidLevel;
        result_.vertices_visited -= 1;
        EXPECT_FALSE(validate_bfs_tree(g_, 0, result_).ok);
        return;
    }
    GTEST_SKIP();
}

TEST_F(ValidatorTest, RejectsWrongArraySizes) {
    result_.parent.pop_back();
    EXPECT_FALSE(validate_bfs_tree(g_, 0, result_).ok);
}

TEST_F(ValidatorTest, RejectsOutOfRangeRoot) {
    EXPECT_FALSE(validate_bfs_tree(g_, g_.num_vertices(), result_).ok);
}

TEST_F(ValidatorTest, WorksWithoutLevels) {
    BfsOptions opts;
    opts.engine = BfsEngine::kSerial;
    opts.compute_levels = false;
    const BfsResult r = bfs(g_, 0, opts);
    const auto report = validate_bfs_tree(g_, 0, r);
    EXPECT_TRUE(report.ok) << report.error;
}

TEST_F(ValidatorTest, EdgeLevelSweepCatchesSkippedLevel) {
    // Construct a fake result on a path graph where vertex 2 claims
    // level 3: the edge (1,2) then skips a level.
    const CsrGraph g = test::path_graph(5);
    BfsResult r = good_result(g, 0);
    r.level[2] = 3;
    r.level[3] = 4;
    r.level[4] = 5;
    r.parent[3] = 2;
    r.parent[4] = 3;
    // Parent-chain levels stay consistent; only the full-edge sweep can
    // see that edge (1,2) spans levels 1 -> 3.
    const auto strict = validate_bfs_tree(g, 0, r, /*check_edge_levels=*/true);
    EXPECT_FALSE(strict.ok);
    // But the parent of 2 is vertex 1 at level 1, so the per-vertex rule
    // fires too unless we also doctor parent[2]... verify the error
    // mentions either rule.
    EXPECT_FALSE(strict.error.empty());
}

}  // namespace
}  // namespace sge
