#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/csr_graph.hpp"
#include "runtime/topology.hpp"

namespace sge {

class ThreadTeam;

/// Options for betweenness centrality.
struct BetweennessOptions {
    /// Number of BFS sources to sample; 0 runs the exact algorithm from
    /// every vertex (O(nm) — fine for test-sized graphs, prohibitive at
    /// paper scale, where sampling is the standard estimator).
    std::uint32_t sample_sources = 0;
    std::uint64_t seed = 1;
    /// Scale scores by 2 / ((n-1)(n-2)) (undirected normalization).
    bool normalize = true;
    /// Worker threads; sources are processed in parallel, one private
    /// traversal state per worker (the SSCA#2 kernel-4 pattern — the
    /// same per-socket independence Figure 10 measures).
    int threads = 1;
    std::optional<Topology> topology;

    /// Query-throughput mode: run on an existing pinned team (e.g. a
    /// BfsRunner's, via BfsRunner::team()) instead of spinning one up
    /// per call. When set, `threads`/`topology` are ignored — the
    /// team's shape wins.
    ThreadTeam* team = nullptr;
};

/// Brandes' betweenness centrality (unweighted): for each sampled source
/// a BFS counts shortest paths (sigma), then a reverse sweep accumulates
/// pair dependencies. BFS is the inner kernel — this is the canonical
/// "BFS as a building block" application the paper's introduction
/// motivates (community/importance analysis of semantic graphs), and the
/// kernel 4 of the SSCA#2 suite whose throughput mode Figure 10 models.
std::vector<double> betweenness_centrality(const CsrGraph& g,
                                           const BetweennessOptions& options = {});

}  // namespace sge
