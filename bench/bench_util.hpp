#pragma once

// Shared harness for the figure/table reproduction benches.
//
// Workload sizing: every bench multiplies its base sizes by
// 2^scale_shift(). The CI defaults finish in seconds on one core;
// SGE_SCALE=k doubles sizes k times, SGE_FULL=1 approaches the paper's
// instances (needs tens of GB and a real multi-socket machine).

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "core/bfs.hpp"
#include "gen/permute.hpp"
#include "gen/rmat.hpp"
#include "gen/uniform.hpp"
#include "graph/builder.hpp"
#include "graph/paged_graph.hpp"
#include "runtime/env.hpp"
#include "runtime/prng.hpp"

namespace sge::bench {

inline std::uint64_t scaled(std::uint64_t base) {
    return base << scale_shift();
}

/// Builds the paper's "uniformly random" workload: n vertices, m edges
/// (mean arity m/n), symmetrized.
inline CsrGraph uniform_graph(std::uint64_t n, std::uint64_t m,
                              std::uint64_t seed = 1) {
    UniformParams params;
    params.num_vertices = static_cast<vertex_t>(n);
    params.degree = static_cast<std::uint32_t>(m / n);
    params.seed = seed;
    return csr_from_edges(generate_uniform(params));
}

/// Builds the paper's R-MAT workload at GTgraph defaults, label-shuffled.
inline CsrGraph rmat_graph(std::uint64_t n, std::uint64_t m,
                           std::uint64_t seed = 1) {
    RmatParams params;
    params.scale = 0;
    while ((1ULL << params.scale) < n) ++params.scale;
    params.num_edges = m;
    params.seed = seed;
    EdgeList edges = generate_rmat(params);
    permute_vertices(edges, seed + 17);
    return csr_from_edges(edges);
}

/// Runs `runs` timed BFS traversals from pseudo-random non-isolated
/// roots (after one untimed warmup) and returns the best processing rate
/// in edges/second — the paper reports peak rates per configuration.
inline double bfs_rate(const CsrGraph& g, BfsRunner& runner, int runs = 2,
                       std::uint64_t seed = 99) {
    Xoshiro256 rng(seed);
    const auto pick_root = [&] {
        vertex_t root;
        do {
            root = static_cast<vertex_t>(rng.next_below(g.num_vertices()));
        } while (g.degree(root) == 0);
        return root;
    };

    (void)runner.run(g, pick_root());  // warmup: page in the arrays
    double best = 0.0;
    for (int i = 0; i < runs; ++i) {
        const BfsResult r = runner.run(g, pick_root());
        if (r.edges_per_second() > best) best = r.edges_per_second();
    }
    return best;
}

/// Convenience: one-shot runner construction + rate measurement.
inline double bfs_rate(const CsrGraph& g, const BfsOptions& options,
                       int runs = 2, std::uint64_t seed = 99) {
    BfsRunner runner(options);
    return bfs_rate(g, runner, runs, seed);
}

/// --drop-caches-free cold-run emulation. Drops the paged graph's
/// mapped payload (MADV_DONTNEED) and the stripes' page-cache copies
/// (fdatasync + POSIX_FADV_DONTNEED), so the next traversal re-reads
/// every touched page from the filesystem — the measurable part of a
/// cold start — without needing root for /proc/sys/vm/drop_caches.
/// Quiesces the prefetcher first so an in-flight WILLNEED batch cannot
/// re-populate pages behind the eviction.
inline void evict_paged(const PagedGraph& g) {
    g.prefetch_quiesce();
    g.evict();
}

// ---------------------------------------------------------------------
// Minimal fixed-width table printer for paper-style output.
// ---------------------------------------------------------------------

class Table {
  public:
    explicit Table(std::vector<std::string> headers)
        : headers_(std::move(headers)) {}

    void add_row(std::vector<std::string> cells) {
        rows_.push_back(std::move(cells));
    }

    void print() const {
        std::vector<std::size_t> widths(headers_.size());
        for (std::size_t c = 0; c < headers_.size(); ++c)
            widths[c] = headers_[c].size();
        for (const auto& row : rows_)
            for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c)
                widths[c] = std::max(widths[c], row[c].size());

        print_row(headers_, widths);
        std::string rule;
        for (const std::size_t w : widths) rule += std::string(w + 2, '-');
        std::printf("%s\n", rule.c_str());
        for (const auto& row : rows_) print_row(row, widths);
    }

  private:
    static void print_row(const std::vector<std::string>& row,
                          const std::vector<std::size_t>& widths) {
        for (std::size_t c = 0; c < row.size(); ++c)
            std::printf("%-*s  ", static_cast<int>(widths[c]), row[c].c_str());
        std::printf("\n");
    }

    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(const char* format, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), format, value);
    return buf;
}

inline std::string fmt_u64(std::uint64_t value) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(value));
    return buf;
}

/// Human-readable byte count ("4 KB", "8 MB").
inline std::string fmt_bytes(std::uint64_t bytes) {
    const char* units[] = {"B", "KB", "MB", "GB"};
    int u = 0;
    double v = static_cast<double>(bytes);
    while (v >= 1024.0 && u < 3) {
        v /= 1024.0;
        ++u;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f %s", v, units[u]);
    return buf;
}

inline void banner(const char* title, const char* paper_ref) {
    std::printf("\n=== %s ===\n", title);
    std::printf("(reproduces %s; sizes scaled by 2^%d — set SGE_SCALE/SGE_FULL "
                "for larger runs)\n\n",
                paper_ref, scale_shift());
}

}  // namespace sge::bench
