#include "stream/versioned_store.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <utility>

namespace sge {

namespace {

/// Normalized undirected-edge key for batch compaction.
[[nodiscard]] std::uint64_t edge_key(vertex_t u, vertex_t v) noexcept {
    const vertex_t lo = u < v ? u : v;
    const vertex_t hi = u < v ? v : u;
    return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

}  // namespace

VersionedGraphStore::VersionedGraphStore(const CsrGraph& initial,
                                         StoreOptions options)
    : num_vertices_(initial.num_vertices()),
      options_(options),
      working_(initial) {
    std::lock_guard guard(writer_mutex_);
    publish_locked();
}

VersionedGraphStore::VersionedGraphStore(vertex_t num_vertices,
                                         StoreOptions options)
    : num_vertices_(num_vertices), options_(options), working_(num_vertices) {
    std::lock_guard guard(writer_mutex_);
    publish_locked();
}

SnapshotRef VersionedGraphStore::acquire() const {
    std::lock_guard guard(pin_mutex_);
    // The bump can be relaxed: the mutex orders it against any publish,
    // and the matching release/acquire pair lives on the unpin side.
    current_->pins.fetch_add(1, std::memory_order_relaxed);
    return SnapshotRef(current_.get());
}

std::size_t VersionedGraphStore::live_snapshots() const {
    std::lock_guard guard(pin_mutex_);
    return (current_ ? 1 : 0) + retired_.size();
}

std::size_t VersionedGraphStore::reclaim() {
    std::lock_guard guard(pin_mutex_);
    return reclaim_pins_locked();
}

std::size_t VersionedGraphStore::reclaim_pins_locked() {
    // Safe sweep: a retired snapshot can never gain pins (acquire()
    // only pins current_, under this same mutex), so pins == 0 here is
    // final. The acquire load pairs with SnapshotRef::release()'s
    // fetch_sub(release): every reader access happens-before the free.
    const auto dead = std::remove_if(
        retired_.begin(), retired_.end(), [](const auto& snap) {
            return snap->pins.load(std::memory_order_acquire) == 0;
        });
    const auto freed = static_cast<std::size_t>(retired_.end() - dead);
    retired_.erase(dead, retired_.end());
    counters_.snapshots_reclaimed.fetch_add(freed, std::memory_order_relaxed);
    return freed;
}

void VersionedGraphStore::publish_locked() {
    auto snap = std::make_unique<detail::GraphSnapshot>();
    snap->graph = working_.snapshot();
    snap->version = published_version_.load(std::memory_order_relaxed) + 1;

    {
        std::lock_guard guard(pin_mutex_);
        if (current_ != nullptr) {
            retired_.push_back(std::move(current_));
            counters_.snapshots_retired.fetch_add(1,
                                                  std::memory_order_relaxed);
        }
        current_ = std::move(snap);
        // Version becomes visible before the pin lock drops, so a
        // reader can never acquire() a snapshot newer than version().
        published_version_.store(current_->version,
                                 std::memory_order_release);
        reclaim_pins_locked();
    }
    counters_.snapshots_published.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t VersionedGraphStore::apply(const MutationBatch& batch) {
    std::lock_guard guard(writer_mutex_);
    return apply_locked(batch);
}

std::uint64_t VersionedGraphStore::apply_locked(const MutationBatch& batch) {
    // Validate everything up front: a bad id must not leave the batch
    // half-applied (readers would never see it — publish is atomic —
    // but the writer's working state would diverge from the ops log).
    for (const EdgeOp& op : batch.ops)
        if (op.u >= num_vertices_ || op.v >= num_vertices_)
            throw std::out_of_range(
                "VersionedGraphStore: edge op vertex out of range");

    // Compact: a remove cancels a pending in-batch insert of the same
    // edge (exact under multiset semantics — net copies are equal —
    // and it keeps cancelled churn out of the repair waves). A remove
    // with no pending insert stays: it targets a pre-existing copy.
    std::vector<char> cancelled(batch.ops.size(), 0);
    std::unordered_map<std::uint64_t, std::vector<std::size_t>> pending;
    for (std::size_t i = 0; i < batch.ops.size(); ++i) {
        const EdgeOp& op = batch.ops[i];
        const std::uint64_t key = edge_key(op.u, op.v);
        if (op.kind == EdgeOp::Kind::kInsert) {
            pending[key].push_back(i);
        } else if (auto it = pending.find(key);
                   it != pending.end() && !it->second.empty()) {
            cancelled[it->second.back()] = 1;
            cancelled[i] = 1;
            it->second.pop_back();
            counters_.noop_ops.fetch_add(2, std::memory_order_relaxed);
        }
    }

    std::vector<std::pair<vertex_t, vertex_t>> inserted;
    std::uint64_t removed = 0;
    for (std::size_t i = 0; i < batch.ops.size(); ++i) {
        if (cancelled[i]) continue;
        const EdgeOp& op = batch.ops[i];
        if (op.kind == EdgeOp::Kind::kInsert) {
            working_.add_edge(op.u, op.v);
            inserted.emplace_back(op.u, op.v);
        } else if (working_.remove_edge(op.u, op.v)) {
            ++removed;
        } else {
            counters_.noop_ops.fetch_add(1, std::memory_order_relaxed);
        }
    }

    if (!batch.ops.empty())
        counters_.batches_applied.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t delta = inserted.size() + removed;
    if (delta == 0) return version();  // nothing changed: no new epoch
    counters_.delta_edges.fetch_add(delta, std::memory_order_relaxed);

    // Level maintenance before publish, so tracked levels and the new
    // snapshot change together: insert-only batches repair through one
    // multi-seed wave per root; anything with a delete rebuilds (level
    // increases are outside the decrease-only repair).
    if (removed > 0) {
        for (auto& [root, ibfs] : tracked_) {
            ibfs->rebuild();
            counters_.rebuilds.fetch_add(1, std::memory_order_relaxed);
        }
    } else {
        for (auto& [root, ibfs] : tracked_) {
            const std::size_t touched = ibfs->on_edges_added(inserted);
            counters_.repair_touched.fetch_add(touched,
                                               std::memory_order_relaxed);
        }
    }

    publish_locked();
    return version();
}

void VersionedGraphStore::stage_insert(vertex_t u, vertex_t v) {
    std::lock_guard guard(writer_mutex_);
    if (u >= num_vertices_ || v >= num_vertices_)
        throw std::out_of_range("VersionedGraphStore: vertex out of range");
    if (staged_.empty()) first_staged_ = std::chrono::steady_clock::now();
    staged_.insert(u, v);
    maybe_flush_locked();
}

void VersionedGraphStore::stage_remove(vertex_t u, vertex_t v) {
    std::lock_guard guard(writer_mutex_);
    if (u >= num_vertices_ || v >= num_vertices_)
        throw std::out_of_range("VersionedGraphStore: vertex out of range");
    if (staged_.empty()) first_staged_ = std::chrono::steady_clock::now();
    staged_.remove(u, v);
    maybe_flush_locked();
}

void VersionedGraphStore::maybe_flush_locked() {
    if (staged_.size() >= options_.batch_capacity) {
        flush_locked();
        return;
    }
    if (options_.flush_window_seconds > 0.0) {
        const auto window = std::chrono::duration<double>(
            options_.flush_window_seconds);
        if (std::chrono::steady_clock::now() - first_staged_ >= window)
            flush_locked();
    }
}

std::uint64_t VersionedGraphStore::flush_locked() {
    if (staged_.empty()) return version();
    MutationBatch batch;
    batch.ops.swap(staged_.ops);
    return apply_locked(batch);
}

std::size_t VersionedGraphStore::staged() const {
    std::lock_guard guard(writer_mutex_);
    return staged_.size();
}

std::uint64_t VersionedGraphStore::flush() {
    std::lock_guard guard(writer_mutex_);
    return flush_locked();
}

void VersionedGraphStore::track(vertex_t root) {
    std::lock_guard guard(writer_mutex_);
    for (const auto& [r, ibfs] : tracked_)
        if (r == root) return;  // idempotent
    tracked_.emplace_back(root,
                          std::make_unique<IncrementalBfs>(working_, root));
}

void VersionedGraphStore::untrack(vertex_t root) {
    std::lock_guard guard(writer_mutex_);
    std::erase_if(tracked_,
                  [root](const auto& entry) { return entry.first == root; });
}

std::vector<level_t> VersionedGraphStore::tracked_levels(vertex_t root) const {
    std::lock_guard guard(writer_mutex_);
    for (const auto& [r, ibfs] : tracked_)
        if (r == root) return ibfs->levels();
    throw std::invalid_argument(
        "VersionedGraphStore: root is not tracked (call track() first)");
}

}  // namespace sge
