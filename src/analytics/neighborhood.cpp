#include "analytics/neighborhood.hpp"

#include <algorithm>
#include <mutex>
#include <numeric>
#include <stdexcept>

#include "core/msbfs.hpp"
#include "runtime/prng.hpp"

namespace sge {

double NeighborhoodFunction::effective_diameter(double quantile) const {
    if (pairs.empty()) return 0.0;
    if (quantile <= 0.0 || quantile > 1.0)
        throw std::invalid_argument(
            "effective_diameter: quantile must be in (0, 1]");
    const double target = quantile * pairs.back();
    if (pairs[0] >= target) return 0.0;
    for (std::size_t h = 1; h < pairs.size(); ++h) {
        if (pairs[h] < target) continue;
        // Linear interpolation between h-1 and h (the convention of
        // Palmer/Gibbons/Faloutsos' ANF and SNAP).
        const double below = pairs[h - 1];
        const double span = pairs[h] - below;
        return span <= 0.0
                   ? static_cast<double>(h)
                   : static_cast<double>(h - 1) + (target - below) / span;
    }
    return static_cast<double>(pairs.size() - 1);
}

NeighborhoodFunction approximate_neighborhood_function(
    const CsrGraph& g, const NeighborhoodOptions& options) {
    const vertex_t n = g.num_vertices();
    NeighborhoodFunction nf;
    if (n == 0) return nf;

    // Sample distinct sources (all of them when samples >= n).
    std::vector<vertex_t> sources(n);
    std::iota(sources.begin(), sources.end(), vertex_t{0});
    const std::uint32_t k = std::min<std::uint32_t>(
        std::max<std::uint32_t>(options.sample_sources, 1), n);
    Xoshiro256 rng(options.seed);
    for (std::uint32_t i = 0; i < k; ++i) {
        const auto j = static_cast<std::size_t>(i + rng.next_below(n - i));
        std::swap(sources[i], sources[j]);
    }
    sources.resize(k);

    // counts[h] = #(sampled source, vertex) discoveries at level h,
    // accumulated across MS-BFS batches of 64 lanes. The visitor runs
    // concurrently; a mutex-guarded vector is fine because discoveries
    // arrive pre-aggregated per (vertex, level).
    std::vector<std::uint64_t> counts;
    std::mutex mu;
    MsBfsOptions ms;
    ms.threads = options.threads;
    ms.topology = options.topology;
    for (std::size_t base = 0; base < sources.size(); base += 64) {
        const std::size_t take = std::min<std::size_t>(64, sources.size() - base);
        multi_source_bfs(
            g, {sources.data() + base, take},
            [&](int, level_t level, vertex_t, std::uint64_t mask) {
                const auto found =
                    static_cast<std::uint64_t>(__builtin_popcountll(mask));
                std::lock_guard lock(mu);
                if (counts.size() <= level) counts.resize(level + 1, 0);
                counts[level] += found;
            },
            ms);
    }

    // Cumulative sum, scaled from k sampled rows to all n rows.
    const double scale = static_cast<double>(n) / static_cast<double>(k);
    nf.pairs.resize(counts.size());
    double running = 0.0;
    for (std::size_t h = 0; h < counts.size(); ++h) {
        running += static_cast<double>(counts[h]);
        nf.pairs[h] = running * scale;
    }
    return nf;
}

}  // namespace sge
