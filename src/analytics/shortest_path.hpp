#pragma once

#include <optional>
#include <vector>

#include "core/bfs.hpp"
#include "graph/csr_graph.hpp"

namespace sge {

/// Extracts the root -> target path from a BFS parent array. Returns
/// nullopt when `target` was not reached. Throws std::invalid_argument
/// when the parent array is corrupt (chain longer than n, i.e. a cycle —
/// which validate_bfs_tree would also flag).
std::optional<std::vector<vertex_t>> extract_path(const BfsResult& result,
                                                  vertex_t target);

/// Single-pair shortest (hop) path: runs a BFS from `source` with the
/// given options and extracts the path. This is the paper's motivating
/// semantic-graph primitive ("the relationship between two vertices is
/// expressed by the properties of the shortest path between them").
std::optional<std::vector<vertex_t>> shortest_path(const CsrGraph& g,
                                                   vertex_t source,
                                                   vertex_t target,
                                                   const BfsOptions& options = {});

}  // namespace sge
