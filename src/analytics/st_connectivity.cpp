#include "analytics/st_connectivity.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "graph/types.hpp"

namespace sge {

namespace {

constexpr std::uint32_t kInf = std::numeric_limits<std::uint32_t>::max();

/// Reconstructs root -> v by chasing the parent chain, then reverses.
std::vector<vertex_t> chain_to_root(const std::vector<vertex_t>& parent,
                                    vertex_t v) {
    std::vector<vertex_t> out;
    for (vertex_t cur = v;; cur = parent[cur]) {
        out.push_back(cur);
        if (parent[cur] == cur) break;
    }
    std::reverse(out.begin(), out.end());
    return out;
}

}  // namespace

StResult st_connectivity(const CsrGraph& g, vertex_t s, vertex_t t) {
    const vertex_t n = g.num_vertices();
    if (s >= n || t >= n)
        throw std::out_of_range("st_connectivity: endpoint out of range");

    StResult result;
    if (s == t) {
        result.connected = true;
        result.path = {s};
        return result;
    }

    std::vector<std::uint32_t> dist_s(n, kInf);
    std::vector<std::uint32_t> dist_t(n, kInf);
    std::vector<vertex_t> parent_s(n, kInvalidVertex);
    std::vector<vertex_t> parent_t(n, kInvalidVertex);

    std::vector<vertex_t> frontier_s{s};
    std::vector<vertex_t> frontier_t{t};
    std::vector<vertex_t> next;
    dist_s[s] = 0;
    dist_t[t] = 0;
    parent_s[s] = s;
    parent_t[t] = t;
    std::uint32_t depth_s = 0;  // completed levels from s
    std::uint32_t depth_t = 0;

    // Best meeting edge found so far: a path s ~> mu .. mv ~> t of
    // length best_len.
    std::uint32_t best_len = kInf;
    vertex_t meet_u = kInvalidVertex;
    vertex_t meet_v = kInvalidVertex;
    bool meet_from_s = true;

    // Standard bidirectional-BFS termination: once the completed search
    // radii alone exceed the best candidate, no shorter path can appear
    // (any unseen path is at least depth_s + depth_t + 1 long).
    while (!frontier_s.empty() && !frontier_t.empty() &&
           depth_s + depth_t + 1 < best_len) {
        // Expand the cheaper side, measured by total adjacency size —
        // frontier cardinality misleads on hub-heavy R-MAT graphs.
        std::uint64_t work_s = 0;
        std::uint64_t work_t = 0;
        for (const vertex_t v : frontier_s) work_s += g.degree(v);
        for (const vertex_t v : frontier_t) work_t += g.degree(v);
        const bool from_s = work_s <= work_t;

        auto& frontier = from_s ? frontier_s : frontier_t;
        auto& dist = from_s ? dist_s : dist_t;
        auto& other_dist = from_s ? dist_t : dist_s;
        auto& parent = from_s ? parent_s : parent_t;
        const std::uint32_t next_depth = (from_s ? depth_s : depth_t) + 1;

        next.clear();
        for (const vertex_t u : frontier) {
            ++result.vertices_expanded;
            for (const vertex_t v : g.neighbors(u)) {
                if (other_dist[v] != kInf) {
                    const std::uint32_t len = next_depth + other_dist[v];
                    if (len < best_len) {
                        best_len = len;
                        meet_u = u;
                        meet_v = v;
                        meet_from_s = from_s;
                    }
                }
                if (dist[v] != kInf) continue;
                dist[v] = next_depth;
                parent[v] = u;
                next.push_back(v);
            }
        }
        frontier.swap(next);
        (from_s ? depth_s : depth_t) = next_depth;
    }

    if (best_len == kInf) return result;  // disconnected

    // Stitch s ~> meet_u, edge (meet_u, meet_v), meet_v ~> t. When the
    // meeting expansion ran from t, swap roles so the chains line up.
    const vertex_t on_s_side = meet_from_s ? meet_u : meet_v;
    const vertex_t on_t_side = meet_from_s ? meet_v : meet_u;
    result.path = chain_to_root(parent_s, on_s_side);
    auto tail = chain_to_root(parent_t, on_t_side);  // t .. on_t_side
    for (auto it = tail.rbegin(); it != tail.rend(); ++it)
        result.path.push_back(*it);
    result.connected = true;
    result.distance = best_len;
    return result;
}

}  // namespace sge
