#include "analytics/connected_components.hpp"

#include <algorithm>
#include <atomic>
#include <limits>
#include <map>
#include <memory>

#include "concurrency/thread_team.hpp"

namespace sge {

std::uint32_t ComponentsResult::largest_component() const noexcept {
    if (sizes.empty()) return 0;
    return static_cast<std::uint32_t>(
        std::max_element(sizes.begin(), sizes.end()) - sizes.begin());
}

std::uint64_t ComponentsResult::largest_size() const noexcept {
    if (sizes.empty()) return 0;
    return *std::max_element(sizes.begin(), sizes.end());
}

ComponentsResult connected_components_parallel(
    const CsrGraph& g, const ParallelComponentsOptions& options) {
    const vertex_t n = g.num_vertices();
    ComponentsResult result;
    result.component.resize(n);
    if (n == 0) return result;

    // label[v]: current representative; converges to the component's
    // minimum vertex id.
    std::vector<vertex_t> label(n);
    std::unique_ptr<ThreadTeam> owned_team;
    if (options.team == nullptr)
        owned_team = std::make_unique<ThreadTeam>(
            std::max(1, options.threads),
            options.topology ? *options.topology : Topology::detect());
    ThreadTeam& team = options.team != nullptr ? *options.team : *owned_team;
    const int threads = team.size();
    std::atomic<bool> changed{true};

    const auto atomic_min = [&](vertex_t slot, vertex_t value) {
        std::atomic_ref<vertex_t> ref(label[slot]);
        vertex_t cur = ref.load(std::memory_order_relaxed);
        while (value < cur) {
            if (ref.compare_exchange_weak(cur, value,
                                          std::memory_order_relaxed))
                return true;
        }
        return false;
    };

    const std::size_t per = (n + static_cast<std::size_t>(threads) - 1) / threads;
    team.run([&](int tid) {
        const std::size_t begin = static_cast<std::size_t>(tid) * per;
        const std::size_t end = std::min<std::size_t>(begin + per, n);
        for (std::size_t v = begin; v < end; ++v)
            label[v] = static_cast<vertex_t>(v);
    });

    while (changed.load(std::memory_order_relaxed)) {
        changed.store(false, std::memory_order_relaxed);
        // Hook: pull each neighbour's label down to the minimum seen.
        team.run([&](int tid) {
            const std::size_t begin = static_cast<std::size_t>(tid) * per;
            const std::size_t end = std::min<std::size_t>(begin + per, n);
            bool local_changed = false;
            for (std::size_t vi = begin; vi < end; ++vi) {
                const auto v = static_cast<vertex_t>(vi);
                if (g.degree(v) == 0) continue;
                const vertex_t lv =
                    std::atomic_ref<vertex_t>(label[v]).load(
                        std::memory_order_relaxed);
                for (const vertex_t w : g.neighbors(v)) {
                    if (atomic_min(w, lv)) local_changed = true;
                    // And pull v down toward w's label (symmetric hook
                    // halves the rounds on long chains).
                    const vertex_t lw = std::atomic_ref<vertex_t>(label[w])
                                            .load(std::memory_order_relaxed);
                    if (atomic_min(v, lw)) local_changed = true;
                }
            }
            if (local_changed) changed.store(true, std::memory_order_relaxed);
        });
        // Pointer jumping: compress label chains.
        team.run([&](int tid) {
            const std::size_t begin = static_cast<std::size_t>(tid) * per;
            const std::size_t end = std::min<std::size_t>(begin + per, n);
            const auto load = [&](vertex_t i) {
                return std::atomic_ref<vertex_t>(label[i]).load(
                    std::memory_order_relaxed);
            };
            for (std::size_t v = begin; v < end; ++v) {
                vertex_t l = load(static_cast<vertex_t>(v));
                for (vertex_t next = load(l); next != l; next = load(l))
                    l = next;
                std::atomic_ref<vertex_t>(label[v]).store(
                    l, std::memory_order_relaxed);
            }
        });
    }

    // Densify: components numbered by order of their minimum vertex,
    // matching the BFS sweep's ordering (component of vertex 0 is 0...).
    std::map<vertex_t, std::uint32_t> dense;
    for (vertex_t v = 0; v < n; ++v) {
        const auto [it, inserted] = dense.try_emplace(
            label[v], static_cast<std::uint32_t>(dense.size()));
        result.component[v] = it->second;
    }
    result.sizes.assign(dense.size(), 0);
    for (vertex_t v = 0; v < n; ++v) ++result.sizes[result.component[v]];
    return result;
}

ComponentsResult connected_components(const CsrGraph& g) {
    const vertex_t n = g.num_vertices();
    constexpr std::uint32_t kUnassigned = std::numeric_limits<std::uint32_t>::max();

    ComponentsResult result;
    result.component.assign(n, kUnassigned);

    std::vector<vertex_t> stack;
    for (vertex_t seed = 0; seed < n; ++seed) {
        if (result.component[seed] != kUnassigned) continue;
        const auto id = static_cast<std::uint32_t>(result.sizes.size());
        result.sizes.push_back(0);

        // BFS flood fill from the seed (order within the component does
        // not matter for labelling, so a simple stack suffices).
        result.component[seed] = id;
        stack.push_back(seed);
        while (!stack.empty()) {
            const vertex_t u = stack.back();
            stack.pop_back();
            ++result.sizes[id];
            for (const vertex_t v : g.neighbors(u)) {
                if (result.component[v] != kUnassigned) continue;
                result.component[v] = id;
                stack.push_back(v);
            }
        }
    }
    return result;
}

}  // namespace sge
