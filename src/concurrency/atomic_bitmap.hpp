#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "runtime/aligned_buffer.hpp"

namespace sge {

/// Concurrent visited-set bitmap — the paper's first key optimization
/// (Algorithm 2). One bit per vertex shrinks the randomly-accessed
/// working set 32x versus querying the parent array directly: 4 MB
/// covers a 32 M-vertex graph, which Figure 2 shows is worth ≥4x in raw
/// random-read rate because the set fits in cache levels that the parent
/// array overflows.
///
/// The double-checked protocol the BFS engines use:
///   if (!bitmap.test(v))              // plain load, no bus lock
///       if (!bitmap.test_and_set(v))  // lock or — only when promising
///           ... first visitor wins ...
/// Figure 4 quantifies the payoff: in late BFS levels almost every
/// neighbour is already visited, so the cheap test filters out nearly
/// all `lock or` instructions, which Figure 3 shows do not scale across
/// sockets.
class AtomicBitmap {
  public:
    AtomicBitmap() = default;

    /// Creates a bitmap of `bits` zeroed bits.
    explicit AtomicBitmap(std::size_t bits)
        : bits_(bits), words_((bits + kBitsPerWord - 1) / kBitsPerWord) {
        clear_all();
    }

    AtomicBitmap(AtomicBitmap&&) noexcept = default;
    AtomicBitmap& operator=(AtomicBitmap&&) noexcept = default;

    /// Non-atomic-RMW test: a single acquire load. May race with a
    /// concurrent set — callers must treat `false` as "maybe unvisited"
    /// and confirm with test_and_set.
    [[nodiscard]] bool test(std::size_t i) const noexcept {
        return (words_[i / kBitsPerWord].load(std::memory_order_acquire) &
                bit(i)) != 0;
    }

    /// Atomically sets bit `i`; returns its previous value. This is the
    /// paper's LockedReadSet (__sync_or_and_fetch in their
    /// implementation), i.e. one `lock or` instruction.
    bool test_and_set(std::size_t i) noexcept {
        const std::uint64_t prev = words_[i / kBitsPerWord].fetch_or(
            bit(i), std::memory_order_acq_rel);
        return (prev & bit(i)) != 0;
    }

    /// Zeroes every bit. Not thread-safe against concurrent writers.
    void clear_all() noexcept {
        for (std::size_t w = 0; w < words_.size(); ++w)
            words_[w].store(0, std::memory_order_relaxed);
    }

    /// Population count; not thread-safe against concurrent writers.
    [[nodiscard]] std::size_t count() const noexcept {
        std::size_t total = 0;
        for (std::size_t w = 0; w < words_.size(); ++w)
            total += static_cast<std::size_t>(__builtin_popcountll(
                words_[w].load(std::memory_order_relaxed)));
        return total;
    }

    [[nodiscard]] std::size_t size_bits() const noexcept { return bits_; }
    [[nodiscard]] std::size_t size_bytes() const noexcept {
        return words_.size() * sizeof(std::uint64_t);
    }

  private:
    static constexpr std::size_t kBitsPerWord = 64;
    static constexpr std::uint64_t bit(std::size_t i) noexcept {
        return 1ULL << (i % kBitsPerWord);
    }

    std::size_t bits_ = 0;
    AlignedBuffer<std::atomic<std::uint64_t>> words_;
};

}  // namespace sge
