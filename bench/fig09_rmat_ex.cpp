// Figure 9: R-MAT graphs on the 4-socket Nehalem EX — (a) rates,
// (b) scalability, (c) sensitivity to graph size.

#include "fig_rate_suite.hpp"

int main() {
    using namespace sge;
    using namespace sge::bench;

    banner("Figure 9: R-MAT graphs, Nehalem EX model", "Fig. 9a/b/c");

    RateSuiteConfig cfg;
    cfg.figure = "Figure 9";
    cfg.slug = "fig09_rmat_ex";
    cfg.family = "rmat";
    cfg.topology = Topology::nehalem_ex();
    cfg.threads = {1, 2, 4, 8, 16, 32, 64};
    cfg.base_vertices = 1 << 16;
    cfg.arities = {8, 16, 32};
    run_rate_suite(cfg);

    std::printf(
        "\npaper's shape: as Figure 8 with higher absolute rates (hub "
        "amortisation);\n0.55-1.3 GE/s on the real 4-socket EX at 32 M "
        "vertices.\n");
    return 0;
}
