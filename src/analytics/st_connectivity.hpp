#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr_graph.hpp"

namespace sge {

/// Result of an s-t connectivity query.
struct StResult {
    bool connected = false;
    /// Hop distance from s to t when connected.
    std::uint32_t distance = 0;
    /// A shortest path s ... t (inclusive) when connected.
    std::vector<vertex_t> path;
    /// Vertices the search expanded (for benchmarking search effort).
    std::uint64_t vertices_expanded = 0;
};

/// Bidirectional BFS s-t connectivity on a symmetric graph — the
/// companion problem of Bader & Madduri's MTA-2 study [16] that the
/// paper benchmarks against. Expanding the smaller frontier from both
/// ends visits O(sqrt) of what a full single-source BFS touches on
/// random graphs.
StResult st_connectivity(const CsrGraph& g, vertex_t s, vertex_t t);

}  // namespace sge
