// Query-throughput mode: many BFS queries over one resident graph.
//
// The figure benches measure one traversal; real deployments (the
// paper's Section I semantic-graph services, the SSCA#2 kernel-3 loop
// of Figure 10) issue *streams* of queries against a graph that stays
// in memory. This bench measures queries/second over N random roots in
// two regimes:
//
//   one-shot — every query pays the full setup: spawn+pin a team,
//              allocate the visited/queue/channel arenas, first-touch
//              them, O(n)-initialise the parent array;
//   reused   — one BfsRunner serves all queries: the team persists and
//              the NUMA-placed BfsWorkspace is reset per query by an
//              epoch bump (O(touched), not O(n)).
//
// The gap between the two rows is the amortization the workspace buys;
// see docs/PERF_MODEL.md "Query throughput & amortization". CI guards
// reused >= one-shot on the small cells via check_bench_json.py.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/bfs.hpp"
#include "report.hpp"
#include "runtime/prng.hpp"
#include "runtime/timer.hpp"

namespace {

using namespace sge;
using namespace sge::bench;

constexpr int kQueries = 64;

std::vector<vertex_t> pick_roots(const CsrGraph& g, std::uint64_t seed) {
    Xoshiro256 rng(seed);
    std::vector<vertex_t> roots;
    roots.reserve(kQueries);
    while (roots.size() < kQueries) {
        const auto root = static_cast<vertex_t>(rng.next_below(g.num_vertices()));
        if (g.degree(root) > 0) roots.push_back(root);
    }
    return roots;
}

struct CellResult {
    double seconds = 0.0;
    std::uint64_t edges = 0;

    [[nodiscard]] double qps() const {
        return seconds > 0 ? kQueries / seconds : 0.0;
    }
    [[nodiscard]] double eps() const {
        return seconds > 0 ? static_cast<double>(edges) / seconds : 0.0;
    }
};

/// One-shot regime: a fresh runner (team + workspace) per query.
CellResult run_oneshot(const CsrGraph& g, const BfsOptions& opts,
                       const std::vector<vertex_t>& roots) {
    (void)bfs(g, roots[0], opts);  // warmup: page in the graph
    CellResult cell;
    WallTimer timer;
    for (const vertex_t root : roots) {
        const BfsResult r = bfs(g, root, opts);
        cell.edges += r.edges_traversed;
    }
    cell.seconds = timer.seconds();
    return cell;
}

/// Reused regime: one runner, one result buffer, epoch-bump resets.
CellResult run_reused(const CsrGraph& g, const std::vector<vertex_t>& roots,
                      BfsRunner& runner) {
    BfsResult r;
    runner.run_into(r, g, roots[0]);  // warmup: allocate + first-touch
    CellResult cell;
    WallTimer timer;
    for (const vertex_t root : roots) {
        runner.run_into(r, g, root);
        cell.edges += r.edges_traversed;
    }
    cell.seconds = timer.seconds();
    return cell;
}

struct EngineConfig {
    const char* name;
    BfsEngine engine;
    Topology topology;
    int threads;
};

}  // namespace

int main() {
    banner("Query throughput: one-shot bfs() vs reused runner + workspace",
           "Section I query streams / Figure 10 throughput mode");

    BenchReport report("bench_throughput", "query throughput");
    report.set_topology("emulated 1x4 (bitmap/hybrid), 2x2 (multisocket)");
    report.set_workload("uniform+rmat", scaled(1 << 12));

    struct Workload {
        std::string name;
        CsrGraph graph;
        std::uint32_t arity;
    };
    std::vector<Workload> workloads;
    {
        const std::uint64_t small_n = scaled(1 << 12);
        const std::uint64_t medium_n = scaled(1 << 14);
        workloads.push_back(
            {"uniform-small", uniform_graph(small_n, 8 * small_n, 11), 8});
        workloads.push_back(
            {"uniform-medium", uniform_graph(medium_n, 16 * medium_n, 12), 16});
        workloads.push_back(
            {"rmat-small", rmat_graph(small_n, 8 * small_n, 13), 8});
        workloads.push_back(
            {"rmat-medium", rmat_graph(medium_n, 16 * medium_n, 14), 16});
    }

    const EngineConfig engines[] = {
        {"bitmap", BfsEngine::kBitmap, Topology::emulate(1, 4, 1), 4},
        {"multisocket", BfsEngine::kMultiSocket, Topology::emulate(2, 2, 1), 4},
        {"hybrid", BfsEngine::kHybrid, Topology::emulate(1, 4, 1), 4},
    };

    Table table({"workload", "engine", "mode", "queries/s", "Medges/s",
                 "speedup"});

    for (const Workload& w : workloads) {
        const std::vector<vertex_t> roots = pick_roots(w.graph, 1234567);
        for (const EngineConfig& e : engines) {
            BfsOptions opts;
            opts.engine = e.engine;
            opts.threads = e.threads;
            opts.topology = e.topology;

            const CellResult oneshot = run_oneshot(w.graph, opts, roots);

            BfsRunner runner(opts);
            const CellResult reused = run_reused(w.graph, roots, runner);
            const BfsWorkspaceStats& ws = runner.workspace_stats();

            table.add_row({w.name, e.name, "one-shot",
                           fmt("%.0f", oneshot.qps()),
                           fmt("%.1f", oneshot.eps() / 1e6), ""});
            table.add_row({w.name, e.name, "reused", fmt("%.0f", reused.qps()),
                           fmt("%.1f", reused.eps() / 1e6),
                           fmt("%.2fx", oneshot.seconds > 0
                                            ? oneshot.seconds / reused.seconds
                                            : 0.0)});

            const auto vertices =
                static_cast<std::int64_t>(w.graph.num_vertices());
            for (int reuse = 0; reuse < 2; ++reuse) {
                const CellResult& cell = reuse ? reused : oneshot;
                report.add(
                    w.name + "/" + e.name,
                    {{"vertices", vertices},
                     {"arity", static_cast<std::int64_t>(w.arity)},
                     {"threads", e.threads},
                     {"reuse", reuse}},
                    {{"queries_per_second", cell.qps()},
                     {"edges_per_second", cell.eps()},
                     {"seconds_total", cell.seconds},
                     {"workspace_reuses",
                      reuse ? static_cast<double>(ws.workspace_reuses) : 0.0},
                     {"reset_words_touched",
                      reuse ? static_cast<double>(ws.reset_words_touched)
                            : 0.0}});
            }
        }
    }

    table.print();
    std::printf("\n%d queries per cell; 'reused' amortizes team spawn, arena "
                "allocation,\nfirst-touch placement and O(n) init across the "
                "stream (epoch-versioned resets).\n",
                kQueries);
    report.write();
    return 0;
}
