#include "graph/io.hpp"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <stdexcept>

namespace sge {

namespace {

constexpr char kMagic[8] = {'S', 'G', 'E', 'C', 'S', 'R', '0', '1'};
constexpr char kWeightedMagic[8] = {'S', 'G', 'E', 'W', 'S', 'R', '0', '1'};
constexpr char kCompressedMagic[8] = {'S', 'G', 'E', 'Z', 'S', 'R', '0', '1'};
constexpr std::uint64_t kHeaderBytes =
    sizeof(kMagic) + 2 * sizeof(std::uint64_t);  // magic + n + m
constexpr std::uint64_t kCompressedHeaderBytes =
    sizeof(kCompressedMagic) +
    3 * sizeof(std::uint64_t);  // magic + n + m + blob_bytes

void write_raw(std::ofstream& out, const void* p, std::size_t bytes) {
    out.write(static_cast<const char*>(p), static_cast<std::streamsize>(bytes));
    if (!out) throw std::runtime_error("write_csr: short write");
}

void read_raw(std::ifstream& in, void* p, std::size_t bytes) {
    in.read(static_cast<char*>(p), static_cast<std::streamsize>(bytes));
    if (static_cast<std::size_t>(in.gcount()) != bytes)
        throw std::runtime_error("read_csr: truncated file");
}

/// Size of an open stream in bytes (position is restored to 0).
std::uint64_t stream_size(std::ifstream& in) {
    in.seekg(0, std::ios::end);
    const std::streamoff size = in.tellg();
    in.seekg(0, std::ios::beg);
    if (size < 0) throw std::runtime_error("read_csr: cannot stat file size");
    return static_cast<std::uint64_t>(size);
}

/// Validates the untrusted n/m header of a CSR container against the
/// actual file size *before* any allocation, so a corrupt 16-byte
/// header cannot demand a multi-GB buffer. `per_edge_bytes` is
/// sizeof(vertex_t) (+ sizeof(weight_t) for the weighted format).
void check_csr_header(const char* reader, const std::string& path,
                      std::uint64_t file_bytes, std::uint64_t n,
                      std::uint64_t m, std::uint64_t per_edge_bytes) {
    const auto fail = [&](const char* why) {
        throw std::runtime_error(std::string(reader) + ": " + why + ": " + path);
    };
    if (n >= kInvalidVertex) fail("vertex count out of range");
    if (file_bytes < kHeaderBytes) fail("truncated file");
    const std::uint64_t payload = file_bytes - kHeaderBytes;
    const std::uint64_t offsets_bytes = (n + 1) * sizeof(edge_offset_t);
    if (offsets_bytes > payload)
        fail("header claims more vertices than the file holds");
    if (m > (payload - offsets_bytes) / per_edge_bytes)
        fail("header claims more edges than the file holds");
    if (offsets_bytes + m * per_edge_bytes != payload)
        fail("payload size does not match header");
}

}  // namespace

void write_csr(const CsrGraph& g, const std::string& path) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("write_csr: cannot open " + path);

    const std::uint64_t n = g.num_vertices();
    const std::uint64_t m = g.num_edges();
    write_raw(out, kMagic, sizeof(kMagic));
    write_raw(out, &n, sizeof(n));
    write_raw(out, &m, sizeof(m));
    write_raw(out, g.offsets().data(), g.offsets().size() * sizeof(edge_offset_t));
    write_raw(out, g.targets().data(), g.targets().size() * sizeof(vertex_t));
}

CsrGraph read_csr(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw std::runtime_error("read_csr: cannot open " + path);
    const std::uint64_t file_bytes = stream_size(in);

    char magic[8];
    read_raw(in, magic, sizeof(magic));
    if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
        throw std::runtime_error("read_csr: bad magic in " + path);

    std::uint64_t n = 0;
    std::uint64_t m = 0;
    read_raw(in, &n, sizeof(n));
    read_raw(in, &m, sizeof(m));
    check_csr_header("read_csr", path, file_bytes, n, m, sizeof(vertex_t));

    AlignedBuffer<edge_offset_t> offsets(static_cast<std::size_t>(n) + 1);
    AlignedBuffer<vertex_t> targets(static_cast<std::size_t>(m));
    read_raw(in, offsets.data(), offsets.size() * sizeof(edge_offset_t));
    read_raw(in, targets.data(), targets.size() * sizeof(vertex_t));

    CsrGraph g(std::move(offsets), std::move(targets));
    if (!g.well_formed())
        throw std::runtime_error("read_csr: file is not a well-formed CSR: " + path);
    return g;
}

void write_compressed_csr(const CompressedCsrGraph& g,
                          const std::string& path) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        throw std::runtime_error("write_compressed_csr: cannot open " + path);

    const std::uint64_t n = g.num_vertices();
    const std::uint64_t m = g.num_edges();
    const std::uint64_t blob_bytes = g.blob().size();
    write_raw(out, kCompressedMagic, sizeof(kCompressedMagic));
    write_raw(out, &n, sizeof(n));
    write_raw(out, &m, sizeof(m));
    write_raw(out, &blob_bytes, sizeof(blob_bytes));
    write_raw(out, g.offsets().data(),
              g.offsets().size() * sizeof(edge_offset_t));
    write_raw(out, g.degrees().data(), g.degrees().size() * sizeof(vertex_t));
    write_raw(out, g.blob().data(), g.blob().size());
}

CompressedCsrGraph read_compressed_csr(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw std::runtime_error("read_compressed_csr: cannot open " + path);
    const std::uint64_t file_bytes = stream_size(in);

    char magic[8];
    read_raw(in, magic, sizeof(magic));
    if (std::memcmp(magic, kCompressedMagic, sizeof(kCompressedMagic)) != 0)
        throw std::runtime_error("read_compressed_csr: bad magic in " + path);

    std::uint64_t n = 0;
    std::uint64_t m = 0;
    std::uint64_t blob_bytes = 0;
    read_raw(in, &n, sizeof(n));
    read_raw(in, &m, sizeof(m));
    read_raw(in, &blob_bytes, sizeof(blob_bytes));

    // Same pre-allocation discipline as check_csr_header: a corrupt
    // 32-byte header must not demand a multi-GB buffer. Every encoded
    // edge costs at least one blob byte, so m > blob_bytes can only be
    // a lie.
    const auto fail = [&](const char* why) {
        throw std::runtime_error(std::string("read_compressed_csr: ") + why +
                                 ": " + path);
    };
    if (n >= kInvalidVertex) fail("vertex count out of range");
    if (file_bytes < kCompressedHeaderBytes) fail("truncated file");
    const std::uint64_t payload = file_bytes - kCompressedHeaderBytes;
    const std::uint64_t offsets_bytes = (n + 1) * sizeof(edge_offset_t);
    const std::uint64_t degrees_bytes = n * sizeof(vertex_t);
    if (offsets_bytes > payload || degrees_bytes > payload - offsets_bytes)
        fail("header claims more vertices than the file holds");
    if (blob_bytes != payload - offsets_bytes - degrees_bytes)
        fail("payload size does not match header");
    if (m > blob_bytes) fail("header claims more edges than the blob holds");

    AlignedBuffer<edge_offset_t> offsets(static_cast<std::size_t>(n) + 1);
    AlignedBuffer<vertex_t> degrees(static_cast<std::size_t>(n));
    AlignedBuffer<std::uint8_t> blob(static_cast<std::size_t>(blob_bytes));
    read_raw(in, offsets.data(), offsets.size() * sizeof(edge_offset_t));
    read_raw(in, degrees.data(), degrees.size() * sizeof(vertex_t));
    read_raw(in, blob.data(), blob.size());

    CompressedCsrGraph g(std::move(offsets), std::move(degrees),
                         std::move(blob));
    if (g.num_edges() != m)
        fail("degree sum does not match the header edge count");
    if (!g.well_formed())
        fail("file is not a well-formed compressed CSR");
    return g;
}

void write_weighted_csr(const WeightedCsrGraph& g, const std::string& path) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("write_weighted_csr: cannot open " + path);

    const std::uint64_t n = g.num_vertices();
    const std::uint64_t m = g.num_edges();
    write_raw(out, kWeightedMagic, sizeof(kWeightedMagic));
    write_raw(out, &n, sizeof(n));
    write_raw(out, &m, sizeof(m));
    write_raw(out, g.graph().offsets().data(),
              g.graph().offsets().size() * sizeof(edge_offset_t));
    write_raw(out, g.graph().targets().data(),
              g.graph().targets().size() * sizeof(vertex_t));
    write_raw(out, g.all_weights().data(),
              g.all_weights().size() * sizeof(weight_t));
}

WeightedCsrGraph read_weighted_csr(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw std::runtime_error("read_weighted_csr: cannot open " + path);
    const std::uint64_t file_bytes = stream_size(in);

    char magic[8];
    read_raw(in, magic, sizeof(magic));
    if (std::memcmp(magic, kWeightedMagic, sizeof(kWeightedMagic)) != 0)
        throw std::runtime_error("read_weighted_csr: bad magic in " + path);

    std::uint64_t n = 0;
    std::uint64_t m = 0;
    read_raw(in, &n, sizeof(n));
    read_raw(in, &m, sizeof(m));
    check_csr_header("read_weighted_csr", path, file_bytes, n, m,
                     sizeof(vertex_t) + sizeof(weight_t));

    AlignedBuffer<edge_offset_t> offsets(static_cast<std::size_t>(n) + 1);
    AlignedBuffer<vertex_t> targets(static_cast<std::size_t>(m));
    AlignedBuffer<weight_t> weights(static_cast<std::size_t>(m));
    read_raw(in, offsets.data(), offsets.size() * sizeof(edge_offset_t));
    read_raw(in, targets.data(), targets.size() * sizeof(vertex_t));
    read_raw(in, weights.data(), weights.size() * sizeof(weight_t));

    CsrGraph g(std::move(offsets), std::move(targets));
    if (!g.well_formed())
        throw std::runtime_error(
            "read_weighted_csr: file is not a well-formed CSR: " + path);
    return WeightedCsrGraph(std::move(g), std::move(weights));
}

namespace {

[[noreturn]] void edge_list_error(const std::string& path, std::size_t line_no,
                                  const std::string& why) {
    throw std::runtime_error("read_edge_list_text: " + path + ":" +
                            std::to_string(line_no) + ": " + why);
}

/// Parses one vertex id starting at `*cursor`, advancing past it.
/// Rejects signs (negative ids), non-digit tokens, overflow, and ids
/// >= kInvalidVertex — sscanf("%llu") silently accepted all of these.
vertex_t parse_vertex(const std::string& path, std::size_t line_no,
                      const char*& cursor) {
    while (*cursor == ' ' || *cursor == '\t') ++cursor;
    if (*cursor == '\0')
        edge_list_error(path, line_no, "expected two vertex ids");
    if (*cursor == '-' || *cursor == '+')
        edge_list_error(path, line_no,
                        std::string("signed vertex id '") + cursor + "'");
    if (!std::isdigit(static_cast<unsigned char>(*cursor)))
        edge_list_error(path, line_no,
                        std::string("non-numeric token '") + cursor + "'");
    errno = 0;
    char* end = nullptr;
    const unsigned long long id = std::strtoull(cursor, &end, 10);
    if (errno == ERANGE || id >= kInvalidVertex)
        edge_list_error(path, line_no, "vertex id out of range");
    if (end != cursor &&
        std::isalpha(static_cast<unsigned char>(*end)))  // e.g. "12abc"
        edge_list_error(path, line_no,
                        std::string("non-numeric token '") + cursor + "'");
    cursor = end;
    return static_cast<vertex_t>(id);
}

}  // namespace

EdgeList read_edge_list_text(const std::string& path) {
    std::ifstream in(path);
    if (!in) throw std::runtime_error("read_edge_list_text: cannot open " + path);

    EdgeList edges;
    std::string line;
    vertex_t max_id = 0;
    bool any = false;
    std::size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        if (!line.empty() && line.back() == '\r') line.pop_back();
        if (line.empty() || line[0] == '#' || line[0] == '%') continue;
        const char* cursor = line.c_str();
        const vertex_t src = parse_vertex(path, line_no, cursor);
        const vertex_t dst = parse_vertex(path, line_no, cursor);
        while (*cursor == ' ' || *cursor == '\t') ++cursor;
        if (*cursor != '\0')
            edge_list_error(path, line_no,
                            std::string("trailing garbage '") + cursor + "'");
        edges.add(src, dst);
        max_id = std::max({max_id, src, dst});
        any = true;
    }
    if (any) edges.set_num_vertices(max_id + 1);
    return edges;
}

void write_edge_list_text(const EdgeList& edges, const std::string& path) {
    std::ofstream out(path, std::ios::trunc);
    if (!out) throw std::runtime_error("write_edge_list_text: cannot open " + path);
    out << "# sge edge list: " << edges.num_vertices() << " vertices, "
        << edges.num_edges() << " edges\n";
    for (const Edge& e : edges) out << e.src << ' ' << e.dst << '\n';
    if (!out) throw std::runtime_error("write_edge_list_text: short write");
}

}  // namespace sge
