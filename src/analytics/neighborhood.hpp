#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/csr_graph.hpp"
#include "runtime/topology.hpp"

namespace sge {

/// The neighbourhood function N(h): how many ordered vertex pairs are
/// within h hops of each other. Its saturation point is the *effective
/// diameter* — the standard small-world summary statistic of the
/// semantic/social graphs the paper's workloads model.
struct NeighborhoodFunction {
    /// pairs[h] = estimated #ordered pairs (u, v) with dist(u,v) <= h
    /// (including u == v at h = 0).
    std::vector<double> pairs;

    /// Smallest h (linearly interpolated) where N(h) reaches `quantile`
    /// of its final value. The conventional effective diameter uses
    /// quantile = 0.9.
    [[nodiscard]] double effective_diameter(double quantile = 0.9) const;
};

struct NeighborhoodOptions {
    /// Sources to sample (clamped to n). Estimates scale by n/samples;
    /// with samples >= n the function is exact.
    std::uint32_t sample_sources = 64;
    std::uint64_t seed = 1;
    int threads = 1;
    std::optional<Topology> topology;
};

/// ANF-style estimate via the bit-parallel MS-BFS: sampled sources run
/// 64 to a traversal, each discovery (s, v, h) contributes to N(h).
NeighborhoodFunction approximate_neighborhood_function(
    const CsrGraph& g, const NeighborhoodOptions& options = {});

}  // namespace sge
