#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "graph/types.hpp"

namespace sge {

/// A directed edge (src -> dst).
struct Edge {
    vertex_t src;
    vertex_t dst;

    friend bool operator==(const Edge&, const Edge&) = default;
};

/// Mutable edge container produced by the generators and consumed by the
/// CSR builder. Stores the intended vertex-count explicitly because
/// generated graphs may have isolated vertices beyond max(src, dst).
class EdgeList {
  public:
    EdgeList() = default;
    explicit EdgeList(vertex_t num_vertices) : num_vertices_(num_vertices) {}

    void reserve(std::size_t edges) { edges_.reserve(edges); }

    void add(vertex_t src, vertex_t dst) { edges_.push_back({src, dst}); }

    /// Grows the declared vertex count (never shrinks below observed ids).
    void set_num_vertices(vertex_t n) {
        if (n > num_vertices_) num_vertices_ = n;
    }

    [[nodiscard]] vertex_t num_vertices() const noexcept { return num_vertices_; }
    [[nodiscard]] std::size_t num_edges() const noexcept { return edges_.size(); }
    [[nodiscard]] bool empty() const noexcept { return edges_.empty(); }

    [[nodiscard]] std::span<const Edge> edges() const noexcept { return edges_; }
    [[nodiscard]] std::span<Edge> edges() noexcept { return edges_; }

    [[nodiscard]] const Edge& operator[](std::size_t i) const noexcept {
        return edges_[i];
    }

    auto begin() const noexcept { return edges_.begin(); }
    auto end() const noexcept { return edges_.end(); }

  private:
    std::vector<Edge> edges_;
    vertex_t num_vertices_ = 0;
};

}  // namespace sge
