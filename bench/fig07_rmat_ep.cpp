// Figure 7: R-MAT graphs on the dual-socket Nehalem EP — (a) rates,
// (b) scalability, (c) sensitivity to graph size.
//
// The paper notes R-MAT rates exceed the uniform ones: the few fat hubs
// amortise queue and bitmap traffic better than the many low-degree
// vertices hurt.

#include "fig_rate_suite.hpp"

int main() {
    using namespace sge;
    using namespace sge::bench;

    banner("Figure 7: R-MAT graphs, Nehalem EP model", "Fig. 7a/b/c");

    RateSuiteConfig cfg;
    cfg.figure = "Figure 7";
    cfg.slug = "fig07_rmat_ep";
    cfg.family = "rmat";
    cfg.topology = Topology::nehalem_ep();
    cfg.threads = {1, 2, 4, 8, 16};
    cfg.base_vertices = 1 << 16;
    cfg.arities = {8, 16, 32};
    run_rate_suite(cfg);

    std::printf(
        "\npaper's shape: same scaling profile as Figure 6 with uniformly "
        "higher rates;\nslope eases from 4 to 8 threads where the two-phase "
        "channel algorithm kicks in.\n");
    return 0;
}
