#pragma once

#include <cstdint>
#include <vector>

#include "graph/edge_list.hpp"

namespace sge {

/// Applies a uniformly random relabelling to all vertex ids in `edges`
/// (Fisher-Yates permutation, deterministic per seed). Generators like
/// R-MAT leave structural artefacts in the id space (low ids are the
/// hubs); Graph500 and GTgraph both shuffle labels so the traversal
/// cannot exploit id locality the real workload would not have.
/// Returns the permutation used (perm[old_id] == new_id) so callers can
/// map roots or results back.
std::vector<vertex_t> permute_vertices(EdgeList& edges, std::uint64_t seed);

}  // namespace sge
