#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/csr_graph.hpp"
#include "runtime/topology.hpp"

namespace sge {

struct PageRankOptions {
    double damping = 0.85;
    /// Converged when the L1 change between iterations drops below this.
    double tolerance = 1e-7;
    int max_iterations = 100;
    int threads = 1;
    std::optional<Topology> topology;
};

struct PageRankResult {
    /// score[v] sums to 1 over all vertices.
    std::vector<double> score;
    int iterations = 0;
    double error = 0.0;  ///< final L1 change
    bool converged = false;
};

/// Pull-based PageRank power iteration, parallel over vertex ranges on
/// the library's thread team — the "business analytics" counterpoint to
/// the traversal kernels: same CSR, same workers, but streaming
/// (bandwidth-bound) instead of frontier-driven (latency-bound).
///
/// Treats the stored arcs as both in- and out-edges, i.e. expects a
/// symmetric graph (the builder default). Dangling vertices' mass is
/// redistributed uniformly each iteration, so scores always sum to 1.
PageRankResult pagerank(const CsrGraph& g, const PageRankOptions& options = {});

}  // namespace sge
