// Deliberately hostile engine configurations: worst-case knob settings
// that the default-sized tests would never hit.

#include <gtest/gtest.h>

#include "core/bfs.hpp"
#include "core/validate.hpp"
#include "gen/rmat.hpp"
#include "gen/uniform.hpp"
#include "graph/builder.hpp"
#include "test_util.hpp"

namespace sge {
namespace {

using test::expect_equivalent;

BfsResult serial_reference(const CsrGraph& g, vertex_t root) {
    BfsOptions opts;
    opts.engine = BfsEngine::kSerial;
    return bfs(g, root, opts);
}

TEST(EngineEdgeCases, MinimalChannelForcesMassiveSpill) {
    // Ring of 2 entries under a 64-thread 4-socket run: essentially all
    // remote traffic takes the spill path.
    UniformParams params;
    params.num_vertices = 4000;
    params.degree = 8;
    const CsrGraph g = csr_from_edges(generate_uniform(params));

    BfsOptions opts;
    opts.engine = BfsEngine::kMultiSocket;
    opts.threads = 64;
    opts.topology = Topology::nehalem_ex();
    opts.channel_capacity = 2;
    opts.batch_size = 3;
    const BfsResult r = bfs(g, 0, opts);
    expect_equivalent(serial_reference(g, 0), r);
}

TEST(EngineEdgeCases, BatchLargerThanGraph) {
    const CsrGraph g = test::cycle_graph(50);
    BfsOptions opts;
    opts.engine = BfsEngine::kMultiSocket;
    opts.threads = 4;
    opts.topology = Topology::emulate(2, 2, 1);
    opts.batch_size = 1 << 20;
    opts.chunk_size = 1 << 20;
    expect_equivalent(serial_reference(g, 0), bfs(g, 0, opts));
}

TEST(EngineEdgeCases, BatchAndChunkOfOne) {
    RmatParams params;
    params.scale = 10;
    params.num_edges = 8192;
    const CsrGraph g = csr_from_edges(generate_rmat(params));
    for (const BfsEngine engine :
         {BfsEngine::kBitmap, BfsEngine::kMultiSocket, BfsEngine::kHybrid}) {
        BfsOptions opts;
        opts.engine = engine;
        opts.threads = 3;
        opts.topology = Topology::emulate(3, 1, 1);
        opts.batch_size = 1;
        opts.chunk_size = 1;
        expect_equivalent(serial_reference(g, 5), bfs(g, 5, opts));
    }
}

TEST(EngineEdgeCases, ManyMoreThreadsThanWork) {
    // 64 workers, 10-vertex graph: most threads find nothing to do at
    // every level and must still synchronize correctly.
    const CsrGraph g = test::path_graph(10);
    BfsOptions opts;
    opts.engine = BfsEngine::kMultiSocket;
    opts.threads = 64;
    opts.topology = Topology::nehalem_ex();
    expect_equivalent(serial_reference(g, 0), bfs(g, 0, opts));
}

TEST(EngineEdgeCases, TwoVertexGraph) {
    EdgeList edges(2);
    edges.add(0, 1);
    const CsrGraph g = csr_from_edges(edges);
    for (const BfsEngine engine :
         {BfsEngine::kNaive, BfsEngine::kBitmap, BfsEngine::kMultiSocket,
          BfsEngine::kHybrid}) {
        BfsOptions opts;
        opts.engine = engine;
        opts.threads = 2;
        opts.topology = Topology::emulate(2, 1, 1);
        const BfsResult r = bfs(g, 1, opts);
        EXPECT_EQ(r.vertices_visited, 2u) << to_string(engine);
        EXPECT_EQ(r.level[0], 1u) << to_string(engine);
    }
}

TEST(EngineEdgeCases, StarFromHubWithSingleFatLevel) {
    // One level of n-1 simultaneous discoveries: maximal contention on
    // the next-queue cursor and channels.
    const CsrGraph g = test::star_graph(20000);
    BfsOptions opts;
    opts.engine = BfsEngine::kMultiSocket;
    opts.threads = 8;
    opts.topology = Topology::nehalem_ep();
    opts.batch_size = 7;  // non-power-of-two
    const BfsResult r = bfs(g, 0, opts);
    expect_equivalent(serial_reference(g, 0), r);
    EXPECT_TRUE(validate_bfs_tree(g, 0, r).ok);
}

TEST(EngineEdgeCases, RemoteFilterEquivalence) {
    UniformParams params;
    params.num_vertices = 3000;
    params.degree = 10;
    const CsrGraph g = csr_from_edges(generate_uniform(params));
    const BfsResult expected = serial_reference(g, 2);
    for (const bool filter : {false, true}) {
        BfsOptions opts;
        opts.engine = BfsEngine::kMultiSocket;
        opts.threads = 6;
        opts.topology = Topology::emulate(3, 2, 1);
        opts.remote_sender_filter = filter;
        expect_equivalent(expected, bfs(g, 2, opts));
    }
}

TEST(EngineEdgeCases, HybridOnStarFlipsAndRecovers) {
    // Star from a leaf: level 1 is the hub alone, level 2 is everyone —
    // the flip happens on a frontier of size 1 -> guard must hold —
    // then the explosion may flip bottom-up and immediately terminate.
    const CsrGraph g = test::star_graph(5000);
    BfsOptions opts;
    opts.engine = BfsEngine::kHybrid;
    opts.threads = 4;
    opts.topology = Topology::emulate(1, 4, 1);
    const BfsResult r = bfs(g, 17, opts);
    expect_equivalent(serial_reference(g, 17), r);
}

TEST(EngineEdgeCases, SmtOversubscribedEpModel) {
    // All 16 EP threads (SMT layer included) on whatever CPUs exist.
    RmatParams params;
    params.scale = 11;
    params.num_edges = 1 << 14;
    const CsrGraph g = csr_from_edges(generate_rmat(params));
    BfsOptions opts;
    opts.threads = 16;
    opts.topology = Topology::nehalem_ep();
    // kAuto must select the multi-socket engine here.
    BfsRunner runner(opts);
    EXPECT_EQ(runner.resolved_engine(), BfsEngine::kMultiSocket);
    expect_equivalent(serial_reference(g, 0), runner.run(g, 0));
}

}  // namespace
}  // namespace sge
