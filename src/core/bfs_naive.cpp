#include <atomic>
#include <cassert>

#include "concurrency/spin_barrier.hpp"
#include "core/bfs_workspace.hpp"
#include "core/engine_common.hpp"
#include "core/frontier.hpp"
#include "graph/csr_compressed.hpp"
#include "graph/paged_graph.hpp"
#include "graph/partition.hpp"
#include "runtime/prefetch.hpp"
#include "runtime/timer.hpp"

namespace sge::detail {

namespace {

/// Algorithm 1: the high-level parallel BFS before any of the paper's
/// optimizations. One shared current/next queue pair; the visited check
/// is an unconditional atomic per neighbour (the listing's lines 10-12
/// "must be executed atomically"); vertices are dequeued and enqueued
/// one at a time (LockedDequeue/LockedEnqueue). This is the baseline
/// curve of Figure 5.
///
/// Workspace reuse: the claim array packs `epoch | parent` per vertex
/// (stale stamp == unclaimed), so back-to-back queries skip the O(n)
/// parent/level re-initialisation — unreached sentinels are written by
/// a post-traversal fill sweep instead.
template <class Graph>
void bfs_naive_impl(const Graph& g, vertex_t root, const BfsOptions& options,
                    ThreadTeam& team, BfsWorkspace& ws, BfsResult& result) {
    check_root(g, root);
    const vertex_t n = g.num_vertices();
    const int threads = team.size();
    const int sockets = team.sockets_used();
    const SocketPartition partition(n, sockets);

    reset_result(result, n, options.compute_levels);

    FrontierQueue* const queues = ws.queues;
    WorkQueue& wq = *ws.wq;
    // Compact frontier generation: discoveries go to private per-thread
    // buffers and reach NQ via prefix-sum copy-out — no queue atomics
    // (docs/ALGORITHMS.md "Frontier generation"). In the naive engine
    // this deletes one fetch_add per discovered vertex, the largest
    // relative saving of any engine (push_one has no batching).
    const bool compact = options.frontier_gen == FrontierGen::kCompact;
    FrontierCompactor& fc = ws.compactor;
    std::atomic<std::uint64_t>* const claim = ws.claim.data();
    const std::uint32_t epoch = ws.claim_epoch;
    const std::uint64_t stamp = static_cast<std::uint64_t>(epoch) << 32;
    SpinBarrier barrier(threads);

    struct Shared {
        std::atomic<std::uint64_t> visited{0};
        std::atomic<std::uint64_t> edges{0};
        int current = 0;   // queue index; written by tid 0 between barriers
        bool done = false; // written by tid 0 between barriers
        bool cancelled = false;  // written by tid 0 between barriers
        // Atomic so the watchdog may snapshot it mid-run.
        std::atomic<std::uint32_t> levels_run{0};
    } shared;

    LevelAccumLog& stats = ws.accum;
    acquire_level_slot(stats, 0).frontier_size = 1;

    vertex_t* const parent = result.parent.data();
    level_t* const level = options.compute_levels ? result.level.data() : nullptr;
    const bool collect = options.collect_stats;
    SpanRecorder spans(threads, collect);

    LevelWatchdog watchdog(resolve_watchdog_seconds(options), barrier, [&] {
        return "level=" +
               std::to_string(shared.levels_run.load(std::memory_order_relaxed)) +
               " q0=" + std::to_string(queues[0].size()) +
               " q1=" + std::to_string(queues[1].size());
    });

#ifndef NDEBUG
    const std::uint64_t allocs_before =
        aligned_alloc_count().load(std::memory_order_relaxed);
#endif
    WallTimer timer;
    team.run([&](int tid) {
        // No init pass: the workspace's epoch bump already "cleared" the
        // claim array, and unreached parent/level slots are filled after
        // the traversal.
        if (tid == 0) {
            claim[root].store(stamp | root, std::memory_order_relaxed);
            parent[root] = root;
            if (level != nullptr) level[root] = 0;
            queues[0].push_one(root);
            shared.visited.fetch_add(1, std::memory_order_relaxed);
            plan_frontier(wq, queues[0].data(), queues[0].size(), g,
                          options.schedule, 1);
        }
        if (!barrier.arrive_and_wait()) return;

        level_t depth = 0;
        std::uint64_t total_edges = 0;
        std::uint64_t discovered = 0;
        vertex_t* const cbuf = compact ? fc.buffer(tid) : nullptr;
        WallTimer level_timer;  // tid 0 stamps per-level wall time
        for (;;) {
            const std::uint64_t span_start = spans.now(timer);
            const int cur = shared.current;
            FrontierQueue& cq = queues[cur];
            FrontierQueue& nq = queues[1 - cur];
            ThreadCounters counters;
            // Deque slots never relocate, so the reference stays valid
            // across tid 0's acquire between the two barriers.
            LevelAccum& slot = stats[depth];

            std::size_t begin = 0;
            std::size_t end = 0;
            std::size_t staged = 0;  // compact-mode discoveries this level
            WorkQueue::Claim cl;
            while ((cl = wq.claim(tid, begin, end)) != WorkQueue::Claim::kNone) {
                counters.count_chunk(cl == WorkQueue::Claim::kStolen);
                for (std::size_t i = begin; i < end; ++i) {
                    const vertex_t u = cq[i];
                    // Keep the next vertex's adjacency metadata in
                    // flight while scanning this one (Section III's
                    // decoupling of computation and memory requests).
                    if (i + 1 < end) g.prefetch_adjacency(cq[i + 1]);
                    scan_adjacency(
                        g, u, counters,
                        [&](vertex_t w) { prefetch_read(&claim[w]); },
                        [&](vertex_t v) {
                            // Unconditional atomic claim on the epoch-
                            // stamped word (Algorithm 1's atomic
                            // P[v] == INF -> u).
                            ++counters.bitmap_checks;
                            ++counters.atomic_ops;
                            std::atomic<std::uint64_t>& cw = claim[v];
                            std::uint64_t seen =
                                cw.load(std::memory_order_relaxed);
                            bool won = false;
                            while ((seen >> 32) != epoch) {
                                if (cw.compare_exchange_weak(
                                        seen, stamp | u,
                                        std::memory_order_acq_rel,
                                        std::memory_order_relaxed)) {
                                    won = true;
                                    break;
                                }
                            }
                            if (won) {
                                counters.count_win();
                                parent[v] = u;  // winner-only plain store
                                if (level != nullptr) level[v] = depth + 1;
                                if (compact)
                                    cbuf[staged++] = v;  // plain store
                                else
                                    nq.push_one(v);
                                ++discovered;
                            }
                        });
                }
            }
            if (compact) fc.publish(tid, staged);
            total_edges += counters.edges_scanned;
            counters.flush_into(slot);
            if (!timed_wait(barrier, slot, collect)) return;

            if (compact) {
                // Every thread's counts are published and barrier-
                // ordered: compute the exclusive offset and memcpy the
                // staged segment into NQ — contiguous, disjoint, no
                // atomics. One extra barrier so tid 0's set_size (and
                // the plan over NQ) sees the complete queue.
                compact_copy_out(fc, tid, nq.slots_mut(), slot);
                if (!timed_wait(barrier, slot, collect)) return;
            }

            if (tid == 0) {
                slot.seconds = level_timer.seconds();
                level_timer.reset();
                cq.reset();
                if (compact) nq.set_size(fc.total());
                shared.current = 1 - cur;
                shared.done = nq.size() == 0;
                shared.levels_run.fetch_add(1, std::memory_order_relaxed);
                if (!shared.done && poll_cancel(options)) {
                    shared.cancelled = true;
                    shared.done = true;
                }
                if (!shared.done) {
                    acquire_level_slot(stats, depth + 1).frontier_size =
                        nq.size();
                    plan_frontier(wq, nq.data(), nq.size(), g,
                                  options.schedule, 1);
                    prefetch_next_frontier(g, nq.data(), nq.size());
                }
            }
            if (!timed_wait(barrier, slot, collect)) return;
            spans.record(tid, depth, span_start, spans.now(timer));
            if (shared.done) break;
            ++depth;
        }

        // Fill the unreached sentinels for this socket's slice (replaces
        // the old pre-init pass; writes only unclaimed slots).
        {
            const int my = team.socket_of(tid);
            const auto [lo, hi] = partition.range(my);
            const auto [b, e] = split_range(
                hi - lo, ws.socket_threads[static_cast<std::size_t>(my)],
                ws.rank_in_socket[static_cast<std::size_t>(tid)]);
            for (std::size_t v = lo + b; v < lo + e; ++v) {
                if ((claim[v].load(std::memory_order_relaxed) >> 32) != epoch) {
                    parent[v] = kInvalidVertex;
                    if (level != nullptr) level[v] = kInvalidLevel;
                }
            }
        }

        shared.edges.fetch_add(total_edges, std::memory_order_relaxed);
        shared.visited.fetch_add(discovered, std::memory_order_relaxed);
    }, &barrier);
#ifndef NDEBUG
    // A prepared workspace makes the traversal allocation-free.
    assert(aligned_alloc_count().load(std::memory_order_relaxed) ==
           allocs_before);
#endif
    const std::uint32_t levels = shared.levels_run.load(std::memory_order_relaxed);
    finish_watchdog(watchdog, "bfs_naive", levels,
                    shared.visited.load(std::memory_order_relaxed));
    if (shared.cancelled)
        throw_cancelled("bfs_naive", levels,
                        shared.visited.load(std::memory_order_relaxed));
    result.seconds = timer.seconds();
    spans.collect_into(result);

    result.vertices_visited = shared.visited.load(std::memory_order_relaxed);
    result.edges_traversed = shared.edges.load(std::memory_order_relaxed);
    result.num_levels = levels;
    if (options.collect_stats) copy_level_stats(result, stats, levels);
}

}  // namespace

void bfs_naive(const CsrGraph& g, vertex_t root, const BfsOptions& options,
               ThreadTeam& team, BfsWorkspace& ws, BfsResult& result) {
    bfs_naive_impl(g, root, options, team, ws, result);
}

void bfs_naive(const CompressedCsrGraph& g, vertex_t root,
               const BfsOptions& options, ThreadTeam& team, BfsWorkspace& ws,
               BfsResult& result) {
    bfs_naive_impl(g, root, options, team, ws, result);
}

void bfs_naive(const PagedGraph& g, vertex_t root, const BfsOptions& options,
               ThreadTeam& team, BfsWorkspace& ws, BfsResult& result) {
    bfs_naive_impl(g, root, options, team, ws, result);
}

}  // namespace sge::detail
