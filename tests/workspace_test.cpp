#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "analytics/betweenness.hpp"
#include "analytics/connected_components.hpp"
#include "analytics/diameter.hpp"
#include "concurrency/thread_team.hpp"
#include "concurrency/versioned_bitmap.hpp"
#include "core/bfs.hpp"
#include "core/bfs_workspace.hpp"
#include "core/msbfs.hpp"
#include "core/validate.hpp"
#include "gen/rmat.hpp"
#include "gen/uniform.hpp"
#include "graph/builder.hpp"
#include "test_util.hpp"

namespace sge {
namespace {

using test::expect_equivalent;

CsrGraph uniform_test_graph(vertex_t n, std::uint32_t degree,
                            std::uint64_t seed) {
    UniformParams params;
    params.num_vertices = n;
    params.degree = degree;
    params.seed = seed;
    return csr_from_edges(generate_uniform(params));
}

CsrGraph rmat_test_graph(std::uint32_t scale, std::uint64_t edges,
                         std::uint64_t seed) {
    RmatParams params;
    params.scale = scale;
    params.num_edges = edges;
    params.seed = seed;
    return csr_from_edges(generate_rmat(params));
}

// ---------------------------------------------------------------------
// VersionedBitmap primitive.
// ---------------------------------------------------------------------

TEST(WorkspaceBitmap, SetTestAndEpochReset) {
    VersionedBitmap b(100);
    EXPECT_FALSE(b.test(0));
    EXPECT_FALSE(b.test_and_set(0));
    EXPECT_TRUE(b.test(0));
    EXPECT_TRUE(b.test_and_set(0));
    EXPECT_FALSE(b.test(1));  // same word, different slot

    EXPECT_EQ(b.advance_epoch(), 0u);  // fast path: no words written
    EXPECT_FALSE(b.test(0));           // stale stamp reads clear
    EXPECT_FALSE(b.test_and_set(0));   // lazy reclamation wins again
    EXPECT_TRUE(b.test(0));
}

TEST(WorkspaceBitmap, WraparoundPhysicallyClears) {
    VersionedBitmap b(64);
    b.test_and_set(63);
    b.set_epoch(VersionedBitmap::kMaxEpoch);
    EXPECT_FALSE(b.test(63));  // jumped past the stored stamp
    b.test_and_set(63);
    EXPECT_TRUE(b.test(63));
    // At kMaxEpoch the advance must sweep and restart at epoch 1.
    EXPECT_EQ(b.advance_epoch(), b.num_words());
    EXPECT_EQ(b.epoch(), 1u);
    EXPECT_FALSE(b.test(63));
    EXPECT_FALSE(b.test_and_set(63));
    EXPECT_TRUE(b.test(63));
}

// ---------------------------------------------------------------------
// Reuse determinism: the same runner answering many queries must match
// a fresh runner (and the serial reference semantics) on every query,
// for every engine and schedule policy.
// ---------------------------------------------------------------------

struct ReuseConfig {
    BfsEngine engine;
    SchedulePolicy schedule;
    Topology topology;
    const char* label;
};

std::string reuse_name(const ::testing::TestParamInfo<ReuseConfig>& info) {
    return info.param.label;
}

class WorkspaceReuseMatrix : public ::testing::TestWithParam<ReuseConfig> {
  protected:
    BfsOptions options() const {
        const ReuseConfig& cfg = GetParam();
        BfsOptions opts;
        opts.engine = cfg.engine;
        opts.threads = 4;
        opts.topology = cfg.topology;
        opts.schedule = cfg.schedule;
        // Small batches/chunks/rings on purpose: exercise the flush and
        // spill paths that big defaults would hide.
        opts.batch_size = 8;
        opts.chunk_size = 4;
        opts.channel_capacity = 64;
        return opts;
    }
};

TEST_P(WorkspaceReuseMatrix, TenRootsMatchFreshRunner) {
    const CsrGraph g = rmat_test_graph(9, 4096, 7);
    BfsRunner reused(options());
    BfsResult result;
    for (int q = 0; q < 10; ++q) {
        const auto root =
            static_cast<vertex_t>((q * 131u + 17u) % g.num_vertices());
        reused.run_into(result, g, root);

        BfsRunner fresh(options());
        const BfsResult expected = fresh.run(g, root);
        expect_equivalent(expected, result);

        const ValidationReport report = validate_bfs_tree(g, root, result);
        EXPECT_TRUE(report.ok) << report.error << " (query " << q << ")";
    }
    EXPECT_EQ(reused.workspace_stats().prepares, 1u);
    EXPECT_EQ(reused.workspace_stats().workspace_reuses, 9u);
}

INSTANTIATE_TEST_SUITE_P(
    Engines, WorkspaceReuseMatrix,
    ::testing::Values(
        ReuseConfig{BfsEngine::kNaive, SchedulePolicy::kStatic,
                    Topology::emulate(1, 4, 1), "naive_static"},
        ReuseConfig{BfsEngine::kNaive, SchedulePolicy::kEdgeWeighted,
                    Topology::emulate(1, 4, 1), "naive_edge"},
        ReuseConfig{BfsEngine::kBitmap, SchedulePolicy::kStatic,
                    Topology::emulate(1, 4, 1), "bitmap_static"},
        ReuseConfig{BfsEngine::kBitmap, SchedulePolicy::kEdgeWeighted,
                    Topology::emulate(1, 4, 1), "bitmap_edge"},
        ReuseConfig{BfsEngine::kBitmap, SchedulePolicy::kStealing,
                    Topology::emulate(1, 4, 1), "bitmap_stealing"},
        ReuseConfig{BfsEngine::kMultiSocket, SchedulePolicy::kStatic,
                    Topology::emulate(2, 2, 1), "multisocket_static"},
        ReuseConfig{BfsEngine::kMultiSocket, SchedulePolicy::kEdgeWeighted,
                    Topology::emulate(2, 2, 1), "multisocket_edge"},
        ReuseConfig{BfsEngine::kMultiSocket, SchedulePolicy::kStealing,
                    Topology::emulate(2, 2, 1), "multisocket_stealing"},
        ReuseConfig{BfsEngine::kHybrid, SchedulePolicy::kStatic,
                    Topology::emulate(1, 4, 1), "hybrid_static"},
        ReuseConfig{BfsEngine::kHybrid, SchedulePolicy::kEdgeWeighted,
                    Topology::emulate(1, 4, 1), "hybrid_edge"}),
    reuse_name);

// ---------------------------------------------------------------------
// Graph swap: one runner across different graphs and sizes.
// ---------------------------------------------------------------------

TEST(WorkspaceSwap, GrowShrinkAndReplanAcrossGraphs) {
    BfsOptions opts;
    opts.engine = BfsEngine::kBitmap;
    opts.threads = 4;
    opts.topology = Topology::emulate(1, 4, 1);

    const CsrGraph small = uniform_test_graph(200, 4, 1);
    const CsrGraph big = uniform_test_graph(3000, 6, 2);
    const CsrGraph other_small = uniform_test_graph(200, 5, 3);

    BfsRunner runner(opts);
    BfsResult result;
    for (const CsrGraph* g : {&small, &big, &other_small, &small}) {
        runner.run_into(result, *g, 0);
        BfsRunner fresh(opts);
        expect_equivalent(fresh.run(*g, 0), result);
        const ValidationReport report = validate_bfs_tree(*g, 0, result);
        EXPECT_TRUE(report.ok) << report.error;
    }
    // 200 -> 3000 -> 200 re-allocated twice; the last swap (equal n,
    // different graph) reuses buffers but re-plans.
    EXPECT_EQ(runner.workspace_stats().prepares, 3u);
    EXPECT_EQ(runner.workspace_stats().workspace_reuses, 1u);
}

TEST(WorkspaceSwap, HybridRangePlanInvalidatedOnGraphChange) {
    BfsOptions opts;
    opts.engine = BfsEngine::kHybrid;
    opts.threads = 4;
    opts.topology = Topology::emulate(1, 4, 1);
    // Dense graphs so the direction heuristic actually flips bottom-up
    // (exercising the range plan) on both graphs.
    const CsrGraph a = rmat_test_graph(9, 8192, 21);
    const CsrGraph b = rmat_test_graph(9, 8192, 22);

    BfsRunner runner(opts);
    BfsResult result;
    for (const CsrGraph* g : {&a, &b, &a}) {
        runner.run_into(result, *g, 1);
        BfsRunner fresh(opts);
        expect_equivalent(fresh.run(*g, 1), result);
        const ValidationReport report = validate_bfs_tree(*g, 1, result);
        EXPECT_TRUE(report.ok) << report.error;
    }
}

// ---------------------------------------------------------------------
// Epoch wraparound on the real query path.
// ---------------------------------------------------------------------

TEST(WorkspaceEpoch, BitmapWraparoundMidStream) {
    BfsOptions opts;
    opts.engine = BfsEngine::kBitmap;
    opts.threads = 4;
    opts.topology = Topology::emulate(1, 4, 1);
    const CsrGraph g = uniform_test_graph(500, 6, 5);

    BfsRunner runner(opts);
    BfsResult result;
    runner.run_into(result, g, 0);
    // Force the next reset onto the wraparound sweep.
    ASSERT_NE(runner.workspace(), nullptr);
    runner.workspace()->visited.set_epoch(VersionedBitmap::kMaxEpoch);
    const std::uint64_t touched_before =
        runner.workspace_stats().reset_words_touched;

    runner.run_into(result, g, 3);
    EXPECT_GT(runner.workspace_stats().reset_words_touched, touched_before);
    EXPECT_EQ(runner.workspace()->visited.epoch(), 1u);  // swept + restarted

    BfsRunner fresh(opts);
    expect_equivalent(fresh.run(g, 3), result);
    const ValidationReport report = validate_bfs_tree(g, 3, result);
    EXPECT_TRUE(report.ok) << report.error;
}

TEST(WorkspaceEpoch, NaiveClaimWraparoundMidStream) {
    BfsOptions opts;
    opts.engine = BfsEngine::kNaive;
    opts.threads = 4;
    opts.topology = Topology::emulate(1, 4, 1);
    const CsrGraph g = uniform_test_graph(500, 6, 6);

    BfsRunner runner(opts);
    BfsResult result;
    runner.run_into(result, g, 0);
    ASSERT_NE(runner.workspace(), nullptr);
    runner.workspace()->claim_epoch = VersionedBitmap::kMaxEpoch;
    runner.run_into(result, g, 3);
    EXPECT_EQ(runner.workspace()->claim_epoch, 1u);  // swept + restarted

    BfsRunner fresh(opts);
    expect_equivalent(fresh.run(g, 3), result);
    const ValidationReport report = validate_bfs_tree(g, 3, result);
    EXPECT_TRUE(report.ok) << report.error;

    runner.run_into(result, g, 7);  // and the stream keeps going
    expect_equivalent(fresh.run(g, 7), result);
}

TEST(WorkspaceEpoch, HybridFrontierBitsWraparound) {
    BfsOptions opts;
    opts.engine = BfsEngine::kHybrid;
    opts.threads = 4;
    opts.topology = Topology::emulate(1, 4, 1);
    const CsrGraph g = rmat_test_graph(9, 8192, 23);

    BfsRunner runner(opts);
    BfsResult result;
    runner.run_into(result, g, 0);
    ASSERT_NE(runner.workspace(), nullptr);
    runner.workspace()->visited.set_epoch(VersionedBitmap::kMaxEpoch);
    runner.workspace()->frontier_bits[0].set_epoch(VersionedBitmap::kMaxEpoch);
    runner.workspace()->frontier_bits[1].set_epoch(VersionedBitmap::kMaxEpoch);
    runner.run_into(result, g, 5);

    BfsRunner fresh(opts);
    expect_equivalent(fresh.run(g, 5), result);
    const ValidationReport report = validate_bfs_tree(g, 5, result);
    EXPECT_TRUE(report.ok) << report.error;
}

// ---------------------------------------------------------------------
// run_into buffer reuse.
// ---------------------------------------------------------------------

TEST(WorkspaceRunInto, ReusesResultBuffers) {
    BfsOptions opts;
    opts.engine = BfsEngine::kBitmap;
    opts.threads = 2;
    opts.topology = Topology::emulate(1, 2, 1);
    const CsrGraph g = uniform_test_graph(1000, 5, 8);

    BfsRunner runner(opts);
    BfsResult result;
    runner.run_into(result, g, 0);
    const vertex_t* parent_ptr = result.parent.data();
    const level_t* level_ptr = result.level.data();
    for (vertex_t root = 1; root < 5; ++root) {
        runner.run_into(result, g, root);
        EXPECT_EQ(result.parent.data(), parent_ptr);
        EXPECT_EQ(result.level.data(), level_ptr);
    }
}

TEST(WorkspaceRunInto, SerialEngineWritesOutParam) {
    BfsOptions opts;
    opts.engine = BfsEngine::kSerial;
    const CsrGraph g = test::path_graph(32);
    BfsRunner runner(opts);
    BfsResult result;
    runner.run_into(result, g, 0);
    EXPECT_EQ(result.vertices_visited, 32u);
    runner.run_into(result, g, 31);
    EXPECT_EQ(result.level[0], 31u);
    // Serial runners never materialize a workspace.
    EXPECT_EQ(runner.workspace(), nullptr);
    EXPECT_EQ(runner.workspace_stats().prepares, 0u);
}

TEST(WorkspaceRunInto, CollectStatsStableAcrossReuse) {
    BfsOptions opts;
    opts.engine = BfsEngine::kMultiSocket;
    opts.threads = 4;
    opts.topology = Topology::emulate(2, 2, 1);
    opts.collect_stats = true;
    opts.batch_size = 8;
    const CsrGraph g = rmat_test_graph(8, 2048, 31);

    BfsRunner runner(opts);
    BfsResult result;
    std::vector<std::uint64_t> first_frontiers;
    for (int q = 0; q < 3; ++q) {
        runner.run_into(result, g, 2);
        ASSERT_EQ(result.level_stats.size(), result.num_levels);
        std::vector<std::uint64_t> frontiers;
        std::uint64_t wins = 0;
        for (const BfsLevelStats& s : result.level_stats) {
            frontiers.push_back(s.frontier_size);
            wins += s.atomic_wins;
        }
        if (obs::compiled_in()) {
            EXPECT_EQ(wins, result.vertices_visited - 1) << "query " << q;
        }
        if (q == 0)
            first_frontiers = frontiers;
        else
            EXPECT_EQ(frontiers, first_frontiers) << "query " << q;
    }
}

// ---------------------------------------------------------------------
// Analytics riding an external team / runner.
// ---------------------------------------------------------------------

TEST(WorkspaceAnalytics, ComponentsOnExternalTeam) {
    const CsrGraph g = uniform_test_graph(800, 3, 9);

    ParallelComponentsOptions owned;
    owned.threads = 4;
    owned.topology = Topology::emulate(1, 4, 1);
    const ComponentsResult expected = connected_components_parallel(g, owned);

    ThreadTeam team(4, Topology::emulate(1, 4, 1));
    ParallelComponentsOptions external;
    external.team = &team;
    const ComponentsResult actual = connected_components_parallel(g, external);

    EXPECT_EQ(expected.component, actual.component);
    EXPECT_EQ(expected.sizes, actual.sizes);
}

TEST(WorkspaceAnalytics, BetweennessOnExternalTeam) {
    const CsrGraph g = rmat_test_graph(8, 2048, 10);

    BetweennessOptions owned;
    owned.threads = 4;
    owned.topology = Topology::emulate(1, 4, 1);
    owned.sample_sources = 16;
    const std::vector<double> expected = betweenness_centrality(g, owned);

    ThreadTeam team(4, Topology::emulate(1, 4, 1));
    BetweennessOptions external = owned;
    external.team = &team;
    const std::vector<double> actual = betweenness_centrality(g, external);

    ASSERT_EQ(expected.size(), actual.size());
    for (std::size_t v = 0; v < expected.size(); ++v)
        EXPECT_DOUBLE_EQ(expected[v], actual[v]) << "vertex " << v;
}

TEST(WorkspaceAnalytics, DiameterThroughSharedRunner) {
    const CsrGraph g = uniform_test_graph(600, 4, 11);

    BfsOptions opts;
    opts.engine = BfsEngine::kBitmap;
    opts.threads = 4;
    opts.topology = Topology::emulate(1, 4, 1);
    const DiameterEstimate expected = estimate_diameter(g, 0, opts);

    BfsRunner runner(opts);
    const DiameterEstimate actual = estimate_diameter(g, 0, runner);
    EXPECT_EQ(expected.lower_bound, actual.lower_bound);
    EXPECT_EQ(expected.upper_bound, actual.upper_bound);
    EXPECT_EQ(expected.sweeps, actual.sweeps);

    // The runner stays usable for direct queries afterwards.
    const BfsResult r = runner.run(g, 0);
    const ValidationReport report = validate_bfs_tree(g, 0, r);
    EXPECT_TRUE(report.ok) << report.error;
}

TEST(WorkspaceAnalytics, DiameterRejectsRunnerWithoutLevels) {
    const CsrGraph g = test::path_graph(16);
    BfsOptions opts;
    opts.compute_levels = false;
    BfsRunner runner(opts);
    EXPECT_THROW(estimate_diameter(g, 0, runner), std::invalid_argument);
}

// ---------------------------------------------------------------------
// MS-BFS on a shared team + workspace.
// ---------------------------------------------------------------------

TEST(WorkspaceMsBfs, SharedWorkspaceMatchesFresh) {
    const CsrGraph g = rmat_test_graph(8, 2048, 12);
    std::vector<vertex_t> sources;
    for (vertex_t s = 0; s < 8; ++s)
        sources.push_back(static_cast<vertex_t>(s * 7 % g.num_vertices()));
    std::sort(sources.begin(), sources.end());
    sources.erase(std::unique(sources.begin(), sources.end()), sources.end());

    using Key = std::pair<level_t, vertex_t>;
    const auto run = [&](const MsBfsOptions& opts) {
        std::vector<std::pair<Key, std::uint64_t>> visits;
        std::mutex mu;
        const std::uint32_t levels = multi_source_bfs(
            g, sources,
            [&](int, level_t level, vertex_t v, std::uint64_t mask) {
                const std::lock_guard<std::mutex> lock(mu);
                visits.emplace_back(Key{level, v}, mask);
            },
            opts);
        std::sort(visits.begin(), visits.end());
        return std::pair{levels, visits};
    };

    MsBfsOptions fresh;
    fresh.threads = 4;
    fresh.topology = Topology::emulate(1, 4, 1);
    const auto expected = run(fresh);

    // One team + workspace across three calls: all must match.
    ThreadTeam team(4, Topology::emulate(1, 4, 1));
    BfsWorkspace ws;
    MsBfsOptions shared;
    shared.team = &team;
    shared.workspace = &ws;
    for (int call = 0; call < 3; ++call) {
        const auto actual = run(shared);
        EXPECT_EQ(expected.first, actual.first) << "call " << call;
        EXPECT_EQ(expected.second, actual.second) << "call " << call;
    }
    EXPECT_EQ(ws.stats.prepares, 1u);
    EXPECT_EQ(ws.stats.workspace_reuses, 2u);
}

TEST(WorkspaceMsBfs, WorkspaceWithoutTeamThrows) {
    const CsrGraph g = test::path_graph(8);
    BfsWorkspace ws;
    MsBfsOptions opts;
    opts.workspace = &ws;
    const std::vector<vertex_t> sources{0};
    EXPECT_THROW(multi_source_bfs(
                     g, sources, [](int, level_t, vertex_t, std::uint64_t) {},
                     opts),
                 std::invalid_argument);
}

// ---------------------------------------------------------------------
// Sharing one runner's workspace with MS-BFS (the bfs.hpp accessors).
// ---------------------------------------------------------------------

TEST(WorkspaceSharing, RunnerWorkspaceServesMsBfs) {
    const CsrGraph g = rmat_test_graph(8, 2048, 13);
    BfsOptions opts;
    opts.engine = BfsEngine::kBitmap;
    opts.threads = 4;
    opts.topology = Topology::emulate(1, 4, 1);

    BfsRunner runner(opts);
    BfsResult result;
    runner.run_into(result, g, 0);
    ASSERT_NE(runner.team(), nullptr);
    ASSERT_NE(runner.workspace(), nullptr);

    MsBfsOptions ms;
    ms.team = runner.team();
    ms.workspace = runner.workspace();
    std::vector<vertex_t> sources{0};
    std::atomic<std::uint64_t> visits{0};
    const std::uint32_t levels = multi_source_bfs(
        g, sources,
        [&](int, level_t, vertex_t, std::uint64_t) {
            visits.fetch_add(1, std::memory_order_relaxed);
        },
        ms);

    // Single-source MS-BFS agrees with the runner's own traversal.
    EXPECT_EQ(visits.load(), result.vertices_visited);
    EXPECT_EQ(levels, result.num_levels);

    // And the runner's BFS path still works after the MS-BFS interlude.
    runner.run_into(result, g, 5);
    BfsRunner fresh(opts);
    expect_equivalent(fresh.run(g, 5), result);
}

}  // namespace
}  // namespace sge
