#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "concurrency/spin_barrier.hpp"

namespace sge {
namespace {

TEST(SpinBarrier, SinglePartyNeverBlocks) {
    SpinBarrier barrier(1);
    for (int i = 0; i < 100; ++i) barrier.arrive_and_wait();
    EXPECT_EQ(barrier.parties(), 1);
}

TEST(SpinBarrier, NormalArrivalReturnsTrue) {
    SpinBarrier barrier(2);
    std::thread peer([&] {
        for (int i = 0; i < 10; ++i) EXPECT_TRUE(barrier.arrive_and_wait());
    });
    for (int i = 0; i < 10; ++i) EXPECT_TRUE(barrier.arrive_and_wait());
    peer.join();
    EXPECT_FALSE(barrier.aborted());
}

TEST(SpinBarrier, AbortReleasesWaitersPromptly) {
    // A waiter stuck at the barrier (its peer never arrives) must be
    // released by abort() with a `false` return, in bounded time.
    SpinBarrier barrier(2);
    std::atomic<bool> released{false};
    std::atomic<bool> result{true};
    std::thread waiter([&] {
        result.store(barrier.arrive_and_wait());
        released.store(true);
    });
    // Give the waiter time to actually park in the spin loop.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    EXPECT_FALSE(released.load());

    const auto start = std::chrono::steady_clock::now();
    barrier.abort();
    waiter.join();
    const auto elapsed = std::chrono::steady_clock::now() - start;
    EXPECT_TRUE(released.load());
    EXPECT_FALSE(result.load());
    EXPECT_LT(elapsed, std::chrono::seconds(5));
}

TEST(SpinBarrier, AbortIsSticky) {
    SpinBarrier barrier(4);
    barrier.abort();
    EXPECT_TRUE(barrier.aborted());
    // Every later arrival bails out immediately — no party count needed.
    for (int i = 0; i < 3; ++i) EXPECT_FALSE(barrier.arrive_and_wait());
    barrier.abort();  // idempotent
    EXPECT_TRUE(barrier.aborted());
}

TEST(SpinBarrier, PhasesDoNotOverlap) {
    constexpr int kThreads = 8;
    constexpr int kPhases = 200;
    SpinBarrier barrier(kThreads);
    std::atomic<int> in_phase[kPhases] = {};
    std::atomic<bool> violated{false};

    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            for (int p = 0; p < kPhases; ++p) {
                in_phase[p].fetch_add(1);
                barrier.arrive_and_wait();
                // After the barrier, every thread must have entered
                // phase p — if not, someone raced ahead a full phase.
                if (in_phase[p].load() != kThreads) violated.store(true);
                barrier.arrive_and_wait();
            }
        });
    }
    for (auto& th : threads) th.join();
    EXPECT_FALSE(violated.load());
}

TEST(SpinBarrier, ProvidesHappensBefore) {
    // Writes before the barrier must be visible after it without any
    // extra synchronisation — the BFS engines depend on this for the
    // plain (non-atomic) parent/level stores.
    constexpr int kThreads = 4;
    constexpr int kRounds = 500;
    SpinBarrier barrier(kThreads);
    int data[kThreads] = {};  // deliberately non-atomic
    std::atomic<bool> ok{true};

    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (int r = 0; r < kRounds; ++r) {
                data[t] = r + 1;
                barrier.arrive_and_wait();
                for (int u = 0; u < kThreads; ++u)
                    if (data[u] != r + 1) ok.store(false);
                barrier.arrive_and_wait();
            }
        });
    }
    for (auto& th : threads) th.join();
    EXPECT_TRUE(ok.load());
}

}  // namespace
}  // namespace sge
