#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/csr_compressed.hpp"
#include "graph/csr_graph.hpp"

namespace sge {

/// Degree-distribution summary of a graph. The paper's two workload
/// families differ exactly here: uniformly random graphs have a tight
/// binomial-like distribution, R-MAT graphs a heavy tail ("a few high
/// degree vertices and many low-degree ones") — which is why R-MAT
/// processing rates come out higher (Section IV).
struct DegreeStats {
    std::uint64_t min_degree = 0;
    std::uint64_t max_degree = 0;
    double mean_degree = 0.0;
    std::uint64_t isolated_vertices = 0;
    /// histogram[k] = number of vertices with degree in [2^k, 2^(k+1));
    /// histogram[0] counts degree 0 and 1.
    std::vector<std::uint64_t> log2_histogram;

    /// Heap footprint of the analysed representation (offsets + targets
    /// for plain CSR; byte offsets + degrees + varint blob for the
    /// compressed backend) and its storage cost per arc — the headline
    /// numbers of the compression ablation, surfaced by graph_explorer
    /// --stats.
    std::uint64_t memory_bytes = 0;
    double bits_per_edge = 0.0;

    [[nodiscard]] std::string describe() const;
};

DegreeStats compute_degree_stats(const CsrGraph& g);
DegreeStats compute_degree_stats(const CompressedCsrGraph& g);

}  // namespace sge
