#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <new>
#include <vector>

#include "concurrency/channel.hpp"
#include "concurrency/spin_barrier.hpp"
#include "concurrency/thread_team.hpp"
#include "runtime/affinity.hpp"
#include "runtime/aligned_buffer.hpp"
#include "runtime/fault.hpp"
#include "runtime/stats.hpp"

namespace sge {
namespace {

using fault::Site;
using fault::Trigger;

/// Every test starts and ends with all sites disarmed; tests that are
/// meaningless without compiled-in sites skip themselves.
class FaultTest : public ::testing::Test {
  protected:
    void SetUp() override {
        fault::disarm_all();
        if (!fault::compiled_in())
            GTEST_SKIP() << "built with SGE_FAULT_INJECTION=OFF";
    }
    void TearDown() override {
        fault::disarm_all();
        ::unsetenv("SGE_FAULT_INJECTION");
        ::unsetenv("SGE_FAULT_ALLOC");
        ::unsetenv("SGE_FAULT_BARRIER");
        ::unsetenv("SGE_FAULT_SEED");
    }
};

TEST_F(FaultTest, DisarmedSitesAreInert) {
    for (unsigned i = 0; i < fault::kSiteCount; ++i)
        EXPECT_FALSE(fault::armed_trigger(static_cast<Site>(i)).has_value());
    for (int i = 0; i < 100; ++i) {
        AlignedBuffer<int> buf(64);
        EXPECT_EQ(buf.size(), 64u);
    }
    EXPECT_EQ(fault::fired(Site::kAlloc), 0u);
}

TEST_F(FaultTest, NthTriggerFiresExactlyOnce) {
    fault::arm(Site::kAlloc, Trigger{.probability = 0.0, .nth = 3});
    int failures = 0;
    for (int i = 0; i < 10; ++i) {
        try {
            AlignedBuffer<int> buf(16);
        } catch (const std::bad_alloc&) {
            ++failures;
            EXPECT_EQ(i, 2) << "must fire on the 3rd allocation";
        }
    }
    EXPECT_EQ(failures, 1);
    EXPECT_EQ(fault::fired(Site::kAlloc), 1u);
    EXPECT_EQ(fault::hits(Site::kAlloc), 10u);
}

TEST_F(FaultTest, ProbabilityZeroNeverFiresProbabilityOneAlwaysFires) {
    fault::arm(Site::kBarrier, Trigger{.probability = 0.0, .nth = 0});
    // p=0 does not even set the armed bit: nothing to evaluate.
    EXPECT_FALSE(fault::armed_trigger(Site::kBarrier).has_value());
    SpinBarrier solo(1);
    for (int i = 0; i < 100; ++i) EXPECT_TRUE(solo.arrive_and_wait());

    fault::arm(Site::kBarrier, Trigger{.probability = 1.0, .nth = 0});
    SpinBarrier solo2(1);
    EXPECT_THROW(solo2.arrive_and_wait(), fault::FaultInjected);
    EXPECT_EQ(fault::fired(Site::kBarrier), 1u);
}

TEST_F(FaultTest, ProbabilityIsDeterministicForFixedSeed) {
    const auto run_once = [] {
        fault::reseed(1234);
        fault::arm(Site::kBarrier, Trigger{.probability = 0.5, .nth = 0});
        std::vector<bool> fired;
        SpinBarrier solo(1);
        for (int i = 0; i < 64; ++i) {
            try {
                solo.arrive_and_wait();
                fired.push_back(false);
            } catch (const fault::FaultInjected&) {
                fired.push_back(true);
            }
        }
        fault::disarm(Site::kBarrier);
        return fired;
    };
    EXPECT_EQ(run_once(), run_once());
}

TEST_F(FaultTest, ForcedChannelSpillLosesNothing) {
    Channel<std::uint64_t, 0> ch(8);
    fault::arm(Site::kChannelPush, Trigger{.probability = 1.0, .nth = 0});
    std::vector<std::uint64_t> sent;
    std::uint64_t batch[7];
    for (std::uint64_t base = 1; base <= 92; base += 7) {
        for (std::uint64_t j = 0; j < 7; ++j) batch[j] = base + j;
        ch.push_batch(batch, 7);
        sent.insert(sent.end(), batch, batch + 7);
    }
    EXPECT_GT(fault::fired(Site::kChannelPush), 0u);
    fault::disarm(Site::kChannelPush);

    std::vector<std::uint64_t> got;
    std::uint64_t out[16];
    for (;;) {
        const std::size_t k = ch.pop_batch(out, 16);
        if (k == 0) break;
        got.insert(got.end(), out, out + k);
    }
    std::sort(sent.begin(), sent.end());
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, sent);
}

TEST_F(FaultTest, ThrottledPopStillDrainsEverything) {
    Channel<std::uint64_t, 0> ch(128);
    std::vector<std::uint64_t> sent(50);
    for (std::uint64_t i = 0; i < 50; ++i) sent[i] = i + 1;
    ch.push_batch(sent.data(), sent.size());

    fault::arm(Site::kChannelPop, Trigger{.probability = 1.0, .nth = 0});
    std::vector<std::uint64_t> got;
    std::uint64_t out[16];
    for (;;) {
        const std::size_t k = ch.pop_batch(out, 16);
        EXPECT_LE(k, 1u) << "drain must be throttled to one item per call";
        if (k == 0) break;
        got.push_back(out[0]);
    }
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, sent);
}

TEST_F(FaultTest, PinSiteForcesFailureAndWarningCounter) {
    fault::arm(Site::kPin, Trigger{.probability = 1.0, .nth = 0});
    EXPECT_FALSE(pin_current_thread(0));

    // A team built while the pin site is hot degrades to unpinned
    // workers: the run still completes, and each failure is counted.
    // Workers past the host's CPU count get no pin target (-1), so the
    // expected count comes from the topology, not the team size.
    const Topology topo = Topology::detect();
    std::uint64_t expected = 0;
    for (int t = 0; t < 2; ++t)
        if (topo.cpu_of_thread(t) >= 0) ++expected;
    ASSERT_GE(expected, 1u);
    const std::uint64_t before =
        runtime_warnings().pin_failures.load(std::memory_order_relaxed);
    ThreadTeam team(2, topo);
    std::atomic<int> ran{0};
    team.run([&](int) { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), 2);
    EXPECT_GE(runtime_warnings().pin_failures.load(std::memory_order_relaxed),
              before + expected);
}

TEST_F(FaultTest, EnvArmingParsesTriggers) {
    ::setenv("SGE_FAULT_INJECTION", "1", 1);
    ::setenv("SGE_FAULT_BARRIER", "nth=17", 1);
    ::setenv("SGE_FAULT_ALLOC", "p=0.25", 1);
    fault::load_from_env();

    const auto barrier = fault::armed_trigger(Site::kBarrier);
    ASSERT_TRUE(barrier.has_value());
    EXPECT_EQ(barrier->nth, 17u);
    const auto alloc = fault::armed_trigger(Site::kAlloc);
    ASSERT_TRUE(alloc.has_value());
    EXPECT_DOUBLE_EQ(alloc->probability, 0.25);
}

TEST_F(FaultTest, EnvMasterSwitchDefaultsOff) {
    ::setenv("SGE_FAULT_ALLOC", "p=1", 1);  // no SGE_FAULT_INJECTION
    fault::load_from_env();
    EXPECT_FALSE(fault::armed_trigger(Site::kAlloc).has_value());
    AlignedBuffer<int> buf(16);  // must not throw
    EXPECT_EQ(buf.size(), 16u);
}

TEST_F(FaultTest, EnvBadSpecIsRejected) {
    ::setenv("SGE_FAULT_INJECTION", "1", 1);
    ::setenv("SGE_FAULT_ALLOC", "banana", 1);
    EXPECT_THROW(fault::load_from_env(), std::invalid_argument);
    ::setenv("SGE_FAULT_ALLOC", "p=2.5", 1);  // out of range
    EXPECT_THROW(fault::load_from_env(), std::invalid_argument);
    ::setenv("SGE_FAULT_ALLOC", "nth=0", 1);  // nth must be >= 1
    EXPECT_THROW(fault::load_from_env(), std::invalid_argument);
}

TEST_F(FaultTest, SiteNamesAreStable) {
    EXPECT_STREQ(fault::site_name(Site::kAlloc), "alloc");
    EXPECT_STREQ(fault::site_name(Site::kPin), "pin");
    EXPECT_STREQ(fault::site_name(Site::kChannelPush), "channel_push");
    EXPECT_STREQ(fault::site_name(Site::kChannelPop), "channel_pop");
    EXPECT_STREQ(fault::site_name(Site::kBarrier), "barrier");
}

}  // namespace
}  // namespace sge
