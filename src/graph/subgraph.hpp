#pragma once

#include <span>
#include <vector>

#include "graph/csr_graph.hpp"

namespace sge {

/// A vertex-induced subgraph together with the id mapping back to the
/// original graph.
struct Subgraph {
    CsrGraph graph;
    /// original_of[new_id] = id in the source graph.
    std::vector<vertex_t> original_of;
    /// new_of[old_id] = id in the subgraph, kInvalidVertex if excluded.
    std::vector<vertex_t> new_of;
};

/// Extracts the subgraph induced by `vertices` (deduplicated,
/// order-preserving relabelling: the i-th distinct selected vertex
/// becomes id i). Edges with both endpoints selected are kept. Throws
/// std::out_of_range for ids outside the source graph.
Subgraph induced_subgraph(const CsrGraph& g, std::span<const vertex_t> vertices);

/// Extracts the largest connected component — the standard preprocessing
/// step for traversal benchmarks (sparse random graphs leave debris
/// components that would otherwise dominate root sampling).
Subgraph largest_component_subgraph(const CsrGraph& g);

}  // namespace sge
