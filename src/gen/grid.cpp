#include "gen/grid.hpp"

#include <stdexcept>

namespace sge {

EdgeList generate_grid(const GridParams& params) {
    const std::uint64_t w = params.width;
    const std::uint64_t h = params.height;
    const std::uint64_t n = w * h;
    if (n >= kInvalidVertex)
        throw std::invalid_argument("generate_grid: grid exceeds vertex id space");
    if (n == 0) return EdgeList{};

    EdgeList edges(static_cast<vertex_t>(n));
    // 2 lattice edges per vertex (right, down), 4 with diagonals.
    edges.reserve(static_cast<std::size_t>(n) * (params.diagonal ? 4 : 2));

    const auto id = [w](std::uint64_t x, std::uint64_t y) {
        return static_cast<vertex_t>(y * w + x);
    };

    for (std::uint64_t y = 0; y < h; ++y) {
        for (std::uint64_t x = 0; x < w; ++x) {
            const vertex_t v = id(x, y);
            const bool has_right = x + 1 < w;
            const bool has_down = y + 1 < h;
            // Emit each undirected edge from its lexicographically first
            // endpoint; wrap edges close the torus on the last row/col.
            if (has_right) edges.add(v, id(x + 1, y));
            else if (params.wrap && w > 2) edges.add(v, id(0, y));
            if (has_down) edges.add(v, id(x, y + 1));
            else if (params.wrap && h > 2) edges.add(v, id(x, 0));
            if (params.diagonal) {
                if (has_right && has_down) edges.add(v, id(x + 1, y + 1));
                if (x > 0 && has_down) edges.add(v, id(x - 1, y + 1));
            }
        }
    }
    return edges;
}

}  // namespace sge
