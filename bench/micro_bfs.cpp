// google-benchmark over the BFS engines themselves: steady-state
// traversal cost per engine on a fixed R-MAT workload, with
// items/second = traversed edges/second (the paper's metric, as a
// google-benchmark counter).

#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "core/bfs.hpp"

namespace {

using namespace sge;
using namespace sge::bench;

const CsrGraph& shared_graph() {
    static const CsrGraph g = rmat_graph(1 << 15, 16ULL << 15, 1);
    return g;
}

void run_engine(benchmark::State& state, BfsEngine engine, int threads) {
    const CsrGraph& g = shared_graph();
    BfsOptions options;
    options.engine = engine;
    options.threads = threads;
    options.topology = Topology::emulate(1, std::max(threads, 1), 1);
    BfsRunner runner(options);

    std::int64_t edges = 0;
    for (auto _ : state) {
        const BfsResult r = runner.run(g, 0);
        edges += static_cast<std::int64_t>(r.edges_traversed);
        benchmark::DoNotOptimize(r.parent.data());
    }
    state.SetItemsProcessed(edges);
}

void BM_BfsSerial(benchmark::State& state) {
    run_engine(state, BfsEngine::kSerial, 1);
}
BENCHMARK(BM_BfsSerial)->UseRealTime()->Unit(benchmark::kMillisecond);

void BM_BfsNaive(benchmark::State& state) {
    run_engine(state, BfsEngine::kNaive, static_cast<int>(state.range(0)));
}
BENCHMARK(BM_BfsNaive)->Arg(1)->Arg(4)->UseRealTime()->Unit(benchmark::kMillisecond);

void BM_BfsBitmap(benchmark::State& state) {
    run_engine(state, BfsEngine::kBitmap, static_cast<int>(state.range(0)));
}
BENCHMARK(BM_BfsBitmap)->Arg(1)->Arg(4)->UseRealTime()->Unit(benchmark::kMillisecond);

void BM_BfsMultiSocket(benchmark::State& state) {
    const int threads = static_cast<int>(state.range(0));
    const CsrGraph& g = shared_graph();
    BfsOptions options;
    options.engine = BfsEngine::kMultiSocket;
    options.threads = threads;
    options.topology = Topology::emulate(2, std::max(threads / 2, 1), 1);
    BfsRunner runner(options);
    std::int64_t edges = 0;
    for (auto _ : state) {
        const BfsResult r = runner.run(g, 0);
        edges += static_cast<std::int64_t>(r.edges_traversed);
    }
    state.SetItemsProcessed(edges);
}
BENCHMARK(BM_BfsMultiSocket)->Arg(2)->Arg(4)->UseRealTime()->Unit(benchmark::kMillisecond);

void BM_BfsHybrid(benchmark::State& state) {
    run_engine(state, BfsEngine::kHybrid, static_cast<int>(state.range(0)));
}
BENCHMARK(BM_BfsHybrid)->Arg(1)->Arg(4)->UseRealTime()->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
