#pragma once

// Shared driver for Figures 6-9: the processing-rate / scalability /
// graph-size-sensitivity triptych the paper repeats for {uniformly
// random, R-MAT} x {Nehalem EP, Nehalem EX}.
//
// Panel (a): rate vs thread count, one series per edge count;
// Panel (b): the same runs as speedup over 1 thread;
// Panel (c): rate at full thread count over an (n, m) grid.
//
// Thread placement and engine selection follow the paper: one thread
// per core socket-by-socket, SMT last; single-socket configurations run
// Algorithm 2 (channels disabled), multi-socket ones Algorithm 3.

#include <cstdio>
#include <functional>
#include <vector>

#include "bench_util.hpp"
#include "report.hpp"

namespace sge::bench {

struct RateSuiteConfig {
    const char* figure;       // "Figure 6" ...
    const char* slug;         // "fig06_uniform_ep" — names BENCH_<slug>.json
    const char* family;       // "uniform" | "rmat"
    Topology topology = Topology::nehalem_ep();  // or nehalem_ex()
    std::vector<int> threads; // x axis
    std::uint64_t base_vertices;
    std::vector<int> arities; // edge counts = arity * n
};

using GraphFactory =
    std::function<CsrGraph(std::uint64_t n, std::uint64_t m, std::uint64_t seed)>;

inline GraphFactory family_factory(const std::string& family) {
    if (family == "rmat")
        return [](std::uint64_t n, std::uint64_t m, std::uint64_t seed) {
            return rmat_graph(n, m, seed);
        };
    return [](std::uint64_t n, std::uint64_t m, std::uint64_t seed) {
        return uniform_graph(n, m, seed);
    };
}

inline BfsOptions suite_options(const Topology& topo, int threads) {
    BfsOptions options;
    options.threads = threads;
    options.topology = topo;
    // kAuto reproduces the paper's policy: serial at 1 thread, bitmap
    // within one socket, channels across sockets.
    options.engine = BfsEngine::kAuto;
    return options;
}

inline void run_rate_suite(const RateSuiteConfig& cfg) {
    const GraphFactory make = family_factory(cfg.family);
    const std::uint64_t n = scaled(cfg.base_vertices);

    BenchReport report(cfg.slug, cfg.figure);
    report.set_topology(cfg.topology.describe());
    report.set_workload(cfg.family, cfg.base_vertices);

    std::printf("machine model: %s\n", cfg.topology.describe().c_str());
    std::printf("workload family: %s, %llu vertices\n\n", cfg.family,
                static_cast<unsigned long long>(n));

    // ---- panels (a) + (b): rate and speedup vs threads ----
    std::vector<std::vector<double>> rates(cfg.arities.size());
    for (std::size_t a = 0; a < cfg.arities.size(); ++a) {
        const std::uint64_t m = static_cast<std::uint64_t>(cfg.arities[a]) * n;
        const CsrGraph g = make(n, m, 1);
        for (std::size_t t = 0; t < cfg.threads.size(); ++t) {
            const int threads = cfg.threads[t];
            const double rate =
                bfs_rate(g, suite_options(cfg.topology, threads));
            rates[a].push_back(rate);
            report.add("rate_vs_threads",
                       {{"threads", threads},
                        {"arity", cfg.arities[a]},
                        {"vertices", static_cast<std::int64_t>(n)},
                        {"edges", static_cast<std::int64_t>(m)}},
                       {{"edges_per_second", rate},
                        {"speedup", rates[a][0] > 0 ? rate / rates[a][0]
                                                    : 0.0}});
        }
    }

    {
        std::printf("(a) processing rates [million edges/s]\n");
        std::vector<std::string> headers{"threads"};
        for (const int arity : cfg.arities)
            headers.push_back("m = " + fmt_u64(static_cast<std::uint64_t>(arity) * n));
        Table table(headers);
        for (std::size_t t = 0; t < cfg.threads.size(); ++t) {
            std::vector<std::string> row{fmt_u64(cfg.threads[t])};
            for (std::size_t a = 0; a < cfg.arities.size(); ++a)
                row.push_back(fmt("%.1f", rates[a][t] / 1e6));
            table.add_row(std::move(row));
        }
        table.print();
    }

    {
        std::printf("\n(b) speedup over 1 thread\n");
        std::vector<std::string> headers{"threads"};
        for (const int arity : cfg.arities)
            headers.push_back("arity " + fmt_u64(arity));
        Table table(headers);
        for (std::size_t t = 0; t < cfg.threads.size(); ++t) {
            std::vector<std::string> row{fmt_u64(cfg.threads[t])};
            for (std::size_t a = 0; a < cfg.arities.size(); ++a)
                row.push_back(fmt("%.2fx", rates[a][t] / rates[a][0]));
            table.add_row(std::move(row));
        }
        table.print();
    }

    // ---- panel (c): sensitivity to graph size at full threads ----
    {
        std::printf("\n(c) rate at %d threads vs vertex count [million edges/s]\n",
                    cfg.threads.back());
        const int max_arity = cfg.arities.back();
        std::vector<std::string> headers{"vertices"};
        for (const int arity : cfg.arities)
            headers.push_back("arity " + fmt_u64(arity));
        Table table(headers);
        for (const std::uint64_t nv : {n / 4, n / 2, n}) {
            std::vector<std::string> row{fmt_u64(nv)};
            for (const int arity : cfg.arities) {
                const CsrGraph g = make(nv, static_cast<std::uint64_t>(arity) * nv, 2);
                const double rate =
                    bfs_rate(g, suite_options(cfg.topology, cfg.threads.back()));
                report.add("rate_vs_size",
                           {{"threads", cfg.threads.back()},
                            {"arity", arity},
                            {"vertices", static_cast<std::int64_t>(nv)},
                            {"edges", static_cast<std::int64_t>(
                                          static_cast<std::uint64_t>(arity) *
                                          nv)}},
                           {{"edges_per_second", rate}});
                row.push_back(fmt("%.1f", rate / 1e6));
            }
            table.add_row(std::move(row));
        }
        table.print();
        (void)max_arity;
    }

    report.write();
}

}  // namespace sge::bench
