#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "runtime/aligned_buffer.hpp"

namespace sge {

/// Epoch-versioned concurrent bitmap: AtomicBitmap's double-checked
/// protocol with O(1) whole-bitmap reset, for query-serving workloads
/// that run many traversals over one prepared graph.
///
/// Each 64-bit word packs `epoch (high 32) | payload bits (low 32)`, so
/// one word covers 32 vertices. A word whose stamp is older than the
/// current epoch is logically all-clear: `advance_epoch()` bumps the
/// counter and every previously-set bit goes stale without being
/// touched. Reset cost is therefore O(words actually rewritten by the
/// *next* traversal), not O(n) — the stale words are reclaimed lazily
/// by the first test_and_set that lands on them.
///
/// The price versus AtomicBitmap is 2x the bytes per vertex (2 bits/
/// vertex of payload density instead of 1). The paper's Figure-2
/// argument still holds: 8 MB covers a 32 M-vertex graph, well inside
/// the LLC sizes where the bitmap's random-read advantage over the
/// parent array lives.
///
/// Epoch wraparound: the 32-bit epoch is bumped once per query; at
/// kMaxEpoch the advance physically zeroes every word and restarts at
/// epoch 1 — one O(n/32) sweep every ~4 billion queries. Words are
/// zero-initialized and the epoch starts at 1, so a fresh bitmap reads
/// all-clear (stamp 0 < epoch 1).
class VersionedBitmap {
  public:
    static constexpr std::size_t kSlotsPerWord = 32;
    static constexpr std::uint32_t kMaxEpoch = 0xFFFFFFFFu;

    VersionedBitmap() = default;

    /// Creates a bitmap covering `bits` slots, all clear. Pass
    /// `zeroed = false` to skip the zero-fill when the caller will
    /// first-touch the words itself via clear_words (NUMA placement).
    explicit VersionedBitmap(std::size_t bits, bool zeroed = true)
        : bits_(bits), words_((bits + kSlotsPerWord - 1) / kSlotsPerWord) {
        if (zeroed) clear_words(0, words_.size());
    }

    VersionedBitmap(VersionedBitmap&&) noexcept = default;
    VersionedBitmap& operator=(VersionedBitmap&&) noexcept = default;

    /// Non-RMW test: one acquire load plus an epoch compare. As with
    /// AtomicBitmap::test, `false` means "maybe unvisited" — confirm
    /// with test_and_set before acting on it.
    [[nodiscard]] bool test(std::size_t i) const noexcept {
        const std::uint64_t w =
            words_[i / kSlotsPerWord].load(std::memory_order_acquire);
        return (w >> 32) == epoch_ && (w & bit(i)) != 0;
    }

    /// Atomically sets slot `i` in the current epoch; returns its
    /// previous value. A stale-stamped word counts as all-clear and is
    /// overwritten wholesale with `epoch | bit` — this CAS loop is the
    /// lazy reclamation that makes advance_epoch O(1).
    bool test_and_set(std::size_t i) noexcept {
        std::atomic<std::uint64_t>& word = words_[i / kSlotsPerWord];
        const std::uint64_t stamp = static_cast<std::uint64_t>(epoch_) << 32;
        std::uint64_t cur = word.load(std::memory_order_acquire);
        for (;;) {
            const bool fresh = (cur >> 32) == epoch_;
            if (fresh && (cur & bit(i)) != 0) return true;
            const std::uint64_t want = (fresh ? cur : stamp) | bit(i);
            if (word.compare_exchange_weak(cur, want,
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire))
                return false;
        }
    }

    /// Logically clears every slot by bumping the epoch. Returns the
    /// number of words physically written (0 on the fast path; all of
    /// them on the once-per-4-billion wraparound). Not thread-safe
    /// against concurrent test/test_and_set.
    std::size_t advance_epoch() noexcept {
        if (epoch_ == kMaxEpoch) {
            clear_words(0, words_.size());
            epoch_ = 1;
            return words_.size();
        }
        ++epoch_;
        return 0;
    }

    /// Test hook: jump the epoch forward to `e` (must be >= the current
    /// epoch). Safe because every stored stamp is then strictly older.
    void set_epoch(std::uint32_t e) noexcept {
        if (e > epoch_) epoch_ = e;
    }

    /// Physically zeroes words [lo, hi) with relaxed stores. Used for
    /// socket-parallel first touch; overlapping calls that rewrite a
    /// boundary word are idempotent.
    void clear_words(std::size_t lo, std::size_t hi) noexcept {
        for (std::size_t w = lo; w < hi && w < words_.size(); ++w)
            words_[w].store(0, std::memory_order_relaxed);
    }

    /// Address of the word holding slot `i` — prefetch hint target for
    /// the double-checked test.
    [[nodiscard]] const void* word_addr(std::size_t i) const noexcept {
        return &words_[i / kSlotsPerWord];
    }

    /// Raw word storage (`epoch | payload` packing) for the
    /// word-at-a-time scans in runtime/simd_scan.hpp. Payload bits past
    /// size_bits() in the tail word are never set by test_and_set, so a
    /// whole-word mask needs no tail clipping for set bits — only
    /// unvisited-mask consumers must clip to their vertex range.
    [[nodiscard]] const std::atomic<std::uint64_t>* words() const noexcept {
        return words_.data();
    }

    [[nodiscard]] std::size_t num_words() const noexcept {
        return words_.size();
    }
    [[nodiscard]] std::size_t size_bits() const noexcept { return bits_; }
    [[nodiscard]] std::uint32_t epoch() const noexcept { return epoch_; }

  private:
    static constexpr std::uint64_t bit(std::size_t i) noexcept {
        return 1ULL << (i % kSlotsPerWord);
    }

    std::size_t bits_ = 0;
    std::uint32_t epoch_ = 1;
    AlignedBuffer<std::atomic<std::uint64_t>> words_;
};

}  // namespace sge
