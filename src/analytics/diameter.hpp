#pragma once

#include <cstdint>

#include "core/bfs.hpp"
#include "graph/csr_graph.hpp"

namespace sge {

/// Result of a diameter estimation on the component of the start vertex.
struct DiameterEstimate {
    /// Largest eccentricity observed across the sweeps: a certified
    /// *lower* bound on the component's diameter.
    std::uint32_t lower_bound = 0;
    /// 2 x min eccentricity observed: a (crude) upper bound.
    std::uint32_t upper_bound = 0;
    /// Vertex realising the lower bound (an endpoint of a longest
    /// observed shortest path).
    vertex_t peripheral_vertex = kInvalidVertex;
    /// BFS traversals spent.
    std::uint32_t sweeps = 0;

    [[nodiscard]] bool exact() const noexcept {
        return lower_bound == upper_bound;
    }
};

/// Estimates the diameter of `start`'s connected component by repeated
/// double sweeps: BFS from the current vertex, hop to the farthest
/// vertex found, repeat while the eccentricity keeps growing (up to
/// `max_sweeps`). On trees this is exact; on general graphs it is the
/// standard high-quality lower bound (Magnien, Latapy, Habib). Every
/// sweep is a full traversal through the engine selected in `options` —
/// this doubles as a realistic multi-BFS workload for the library.
DiameterEstimate estimate_diameter(const CsrGraph& g, vertex_t start,
                                   const BfsOptions& options = {},
                                   std::uint32_t max_sweeps = 8);

/// Query-throughput variant: runs the sweeps through a caller-owned
/// runner, reusing its team and workspace (and one BfsResult across
/// sweeps), so interleaved diameter probes over many graphs/roots pay no
/// per-call thread or arena setup. The runner must compute levels
/// (BfsOptions::compute_levels; throws std::invalid_argument otherwise —
/// this variant cannot silently override caller options).
DiameterEstimate estimate_diameter(const CsrGraph& g, vertex_t start,
                                   BfsRunner& runner,
                                   std::uint32_t max_sweeps = 8);

}  // namespace sge
