// Live graphs: sustained edge ingest + concurrent queries over a
// VersionedGraphStore-backed GraphService.
//
// bench_service measures the query service over a frozen graph; this
// bench measures the live-graph path: an open-loop query stream races
// a mutation stream through the same admission queue, the writer
// publishes epoch snapshots, and every answer is exact on the version
// it reports. Measured: query qps and latency under ingest, the
// store's publish/repair counters, and the staleness window readers
// actually observed (current version minus the answered snapshot's
// version, sampled as each future is harvested — an upper bound, since
// the version keeps advancing between resolution and harvest).
//
// Series param: deletes (0 = insert-only ingest, tracked levels repair
// incrementally; 1 = churn with removals, every delete-containing batch
// rebuilds tracked levels). CI guards the semantics via
// check_bench_json.py: a deletes=0 series must report zero rebuilds,
// and any series that moved edges (delta_edges > 0) must have published
// snapshots.

#include <algorithm>
#include <cstdio>
#include <future>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "report.hpp"
#include "runtime/prng.hpp"
#include "runtime/timer.hpp"
#include "service/graph_service.hpp"
#include "stream/versioned_store.hpp"

namespace {

using namespace sge;
using namespace sge::bench;
using service::GraphService;
using service::QueryResult;
using service::ServiceOptions;

constexpr int kQueries = 384;
constexpr int kMutationEvery = 8;  // one mutation batch per N queries
constexpr int kOpsPerBatch = 16;
constexpr int kBurst = 32;  // arrivals per pacing tick

double percentile(std::vector<double>& sorted, double p) {
    if (sorted.empty()) return 0.0;
    const auto rank =
        static_cast<std::size_t>(p * static_cast<double>(sorted.size() - 1));
    return sorted[rank];
}

}  // namespace

int main() {
    banner("Live graphs: concurrent ingest + queries over epoch snapshots",
           "streaming extension (paper SsVI conclusion)");

    BenchReport report("bench_live", "live-graph service");
    report.set_topology("emulated 2x2");
    report.set_workload("rmat", scaled(1 << 12));

    const std::uint64_t n = scaled(1 << 12);
    const CsrGraph initial = rmat_graph(n, 4 * n, 33);

    Table table({"deletes", "queries/s", "p50 ms", "p99 ms", "completed",
                 "mutations", "published", "repair", "rebuilds", "stale p50",
                 "stale max"});

    for (const bool deletes : {false, true}) {
        VersionedGraphStore store(initial);
        store.track(0);  // tracked levels ride along with every publish

        ServiceOptions options;
        options.bfs.engine = BfsEngine::kBitmap;
        options.bfs.threads = 4;
        options.bfs.topology = Topology::emulate(2, 2, 1);
        options.workers = 2;
        options.queue_capacity = kQueries + kQueries / kMutationEvery;
        options.batch_window_seconds = 0.0005;
        GraphService svc(store, options);

        // Removals target edges known to exist (previously ingested),
        // so a churn series really exercises the rebuild path instead
        // of no-op removes.
        Xoshiro256 rng(424242);
        std::vector<std::pair<vertex_t, vertex_t>> ingested;
        std::vector<std::future<QueryResult>> queries;
        std::vector<std::future<QueryResult>> mutations;
        queries.reserve(kQueries);

        WallTimer timer;
        for (int i = 0; i < kQueries; ++i) {
            if (i % kMutationEvery == 0) {
                MutationBatch batch;
                for (int k = 0; k < kOpsPerBatch; ++k) {
                    if (deletes && !ingested.empty() &&
                        rng.next_below(4) == 0) {
                        const std::size_t pick =
                            rng.next_below(ingested.size());
                        const auto [u, v] = ingested[pick];
                        ingested[pick] = ingested.back();
                        ingested.pop_back();
                        batch.remove(u, v);
                    } else {
                        const auto u = static_cast<vertex_t>(
                            rng.next_below(store.num_vertices()));
                        const auto v = static_cast<vertex_t>(
                            rng.next_below(store.num_vertices()));
                        batch.insert(u, v);
                        ingested.emplace_back(u, v);
                    }
                }
                mutations.push_back(
                    svc.submit_mutation(std::move(batch)).result);
            }
            const auto root = static_cast<vertex_t>(
                rng.next_below(store.num_vertices()));
            queries.push_back(svc.submit(root).result);
            if ((i + 1) % kBurst == 0)
                std::this_thread::sleep_for(std::chrono::microseconds(200));
        }

        std::vector<double> latencies_ms;
        std::vector<double> staleness;
        latencies_ms.reserve(queries.size());
        for (auto& f : queries) {
            const QueryResult r = f.get();
            latencies_ms.push_back(r.latency_seconds() * 1e3);
            if (r.answered())
                staleness.push_back(static_cast<double>(
                    store.version() - r.snapshot_version));
        }
        const double seconds = timer.seconds();
        for (auto& f : mutations) (void)f.get();
        svc.stop();

        std::sort(latencies_ms.begin(), latencies_ms.end());
        std::sort(staleness.begin(), staleness.end());
        const double qps = seconds > 0 ? kQueries / seconds : 0.0;
        const double p50 = percentile(latencies_ms, 0.50);
        const double p99 = percentile(latencies_ms, 0.99);
        const double stale_p50 = percentile(staleness, 0.50);
        const double stale_max = staleness.empty() ? 0.0 : staleness.back();

        const auto& c = svc.counters();
        const auto& sc = store.counters();
        table.add_row({deletes ? "on" : "off", fmt("%.0f", qps),
                       fmt("%.3f", p50), fmt("%.3f", p99),
                       fmt_u64(c.completed.load()),
                       fmt_u64(c.mutations.load()),
                       fmt_u64(sc.snapshots_published.load()),
                       fmt_u64(sc.repair_touched.load()),
                       fmt_u64(sc.rebuilds.load()), fmt("%.0f", stale_p50),
                       fmt("%.0f", stale_max)});

        report.add(
            std::string("rmat/") + (deletes ? "churn" : "insert_only"),
            {{"vertices", static_cast<std::int64_t>(store.num_vertices())},
             {"workers", options.workers},
             {"threads", options.bfs.threads},
             {"deletes", deletes ? 1 : 0}},
            {{"queries_per_second", qps},
             {"p50_ms", p50},
             {"p99_ms", p99},
             {"completed", static_cast<double>(c.completed.load())},
             {"degraded", static_cast<double>(c.degraded.load())},
             {"cancelled", static_cast<double>(c.cancelled.load())},
             {"shed", static_cast<double>(c.shed.load())},
             {"mutations", static_cast<double>(c.mutations.load())},
             {"snapshots_published",
              static_cast<double>(sc.snapshots_published.load())},
             {"delta_edges", static_cast<double>(sc.delta_edges.load())},
             {"repair_touched",
              static_cast<double>(sc.repair_touched.load())},
             {"rebuilds", static_cast<double>(sc.rebuilds.load())},
             {"snapshots_reclaimed",
              static_cast<double>(sc.snapshots_reclaimed.load())},
             {"staleness_p50", stale_p50},
             {"staleness_max", stale_max}});
    }

    table.print();
    std::printf(
        "\n%d open-loop queries racing one %d-op mutation batch per %d "
        "arrivals through the same\nadmission queue. staleness = versions "
        "behind the writer when the answer was harvested.\n",
        kQueries, kOpsPerBatch, kMutationEvery);
    report.write();
    return 0;
}
