#pragma once

// GraphService — a long-lived, fault-tolerant concurrent BFS query
// service over one CsrGraph (the ROADMAP's "service that survives
// heavy traffic" north star; see docs/ROBUSTNESS.md "Service
// guarantees"), or — constructed over a VersionedGraphStore — over a
// live graph: queries pin an immutable published snapshot for their
// whole run while submit_mutation() feeds edge batches through the
// same admission queue, so updates and traversals never block each
// other and every answer is exact on some published version.
//
// Shape: submit() is non-blocking and pushes into a bounded
// AdmissionQueue (full queue => the request is shed with an explicit
// Outcome::kShed — backpressure, never unbounded buffering). Worker
// threads — each owning a BfsRunner with its pinned ThreadTeam and
// prepared BfsWorkspace — pop requests in batches and either run them
// individually or coalesce concurrent single-source queries into one
// bit-parallel MS-BFS wave (flush on 64 distinct roots or a batch
// window, Grappa's buffer-then-flush idiom).
//
// Robustness ladder, in order:
//   * per-request deadlines ride a CancelToken polled at every level
//     barrier (superseding the global watchdog for service runs): a
//     late query stops within one level and resolves kCancelled, and
//     the workspace is immediately reusable;
//   * a parallel run that throws (injected fault, allocation failure,
//     watchdog) is retried once on the serial engine => kDegraded with
//     a still-correct answer;
//   * a worker whose dispatch loop faults degrades its current batch,
//     then rebuilds its runner (team + workspace); if the rebuild
//     fails too, the worker falls back to serial-only — the pool
//     shrinks, the service never dies;
//   * stop() drains in-flight queries within a bounded deadline, then
//     cancels stragglers — every future resolves.
//
// Every outcome ticks ServiceCounters (sge::obs-style: always-on
// monotonic atomics, the RuntimeWarnings pattern), which is how tests,
// the chaos soak, and bench/bench_service.cpp observe shedding,
// degradation and wave coalescing.

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "core/bfs.hpp"
#include "graph/csr_graph.hpp"
#include "service/admission.hpp"
#include "service/request.hpp"
#include "stream/versioned_store.hpp"

namespace sge::service {

struct ServiceOptions {
    /// Engine configuration for the parallel attempts (engine, threads,
    /// topology, schedule...). `cancel` and `watchdog_seconds` are
    /// overridden per worker: the service's deadline mechanism is the
    /// CancelToken, not the global watchdog.
    BfsOptions bfs;

    /// Dispatcher threads, each owning an independent BfsRunner (team +
    /// workspace). More workers = more concurrent waves in flight.
    int workers = 1;

    /// Admission queue capacity; a full queue sheds (Outcome::kShed).
    std::size_t queue_capacity = 256;

    /// Coalescing: batch up to this many distinct roots into one MS-BFS
    /// wave (clamped to 64, the lane width) ...
    std::size_t batch_max_roots = 64;

    /// ... flushing early once this window has elapsed since the first
    /// request of the batch (0 = no waiting: whatever is queued right
    /// now forms the batch).
    double batch_window_seconds = 0.0005;

    /// Deadline applied to requests that do not carry their own
    /// (QueryRequest::deadline_seconds <= 0). 0 = no default deadline.
    double default_deadline_seconds = 0.0;

    /// Disable wave coalescing (every request runs individually) —
    /// the A/B switch bench_service measures.
    bool batching = true;

    /// stop() waits this long for in-flight + queued work to drain
    /// before hard-cancelling the stragglers.
    double drain_seconds = 5.0;
};

/// Always-on monotonic counters (the RuntimeWarnings pattern): one
/// instance per service, ticked on every resolution. completed +
/// degraded + cancelled + shed + failed == submitted once the service
/// is stopped — the zero-lost-requests invariant, assertable by tests.
struct ServiceCounters {
    std::atomic<std::uint64_t> submitted{0};
    std::atomic<std::uint64_t> admitted{0};
    std::atomic<std::uint64_t> completed{0};
    std::atomic<std::uint64_t> degraded{0};
    std::atomic<std::uint64_t> cancelled{0};
    std::atomic<std::uint64_t> shed{0};
    std::atomic<std::uint64_t> failed{0};
    /// Requests answered from a coalesced MS-BFS wave (subset of
    /// completed), waves run, and total distinct roots across waves —
    /// wave_roots / waves is the coalescing factor.
    std::atomic<std::uint64_t> batched{0};
    std::atomic<std::uint64_t> waves{0};
    std::atomic<std::uint64_t> wave_roots{0};
    /// Worker dispatch loops that faulted and rebuilt their runner, and
    /// workers that could not rebuild and fell back to serial-only.
    std::atomic<std::uint64_t> worker_restarts{0};
    std::atomic<std::uint64_t> serial_fallbacks{0};
    /// Mutation batches applied to the backing store (store-backed
    /// services only; a subset of completed).
    std::atomic<std::uint64_t> mutations{0};

    [[nodiscard]] std::uint64_t resolved() const noexcept {
        return completed.load() + degraded.load() + cancelled.load() +
               shed.load() + failed.load();
    }
};

class GraphService {
  public:
    /// Starts the worker pool immediately. The graph must outlive the
    /// service.
    explicit GraphService(const CsrGraph& g, ServiceOptions options = {});

    /// Live-graph mode: queries pin a published snapshot from `store`
    /// for their whole run (a wave's members all answer against the
    /// same version), and submit_mutation() feeds edge batches through
    /// the same admission queue. The store must outlive the service.
    explicit GraphService(VersionedGraphStore& store,
                          ServiceOptions options = {});

    /// Equivalent to stop().
    ~GraphService();

    GraphService(const GraphService&) = delete;
    GraphService& operator=(const GraphService&) = delete;

    /// Non-blocking submission. The returned future ALWAYS resolves
    /// (kShed immediately when not admitted). Throws std::out_of_range
    /// for a root outside the graph — a caller bug, not a service
    /// outcome. `deadline_seconds` <= 0 selects the service default.
    SubmitResult submit(vertex_t root, double deadline_seconds = 0.0);
    SubmitResult submit(const QueryRequest& request);

    /// Non-blocking mutation submission (store-backed services only;
    /// throws std::logic_error otherwise, std::out_of_range for bad
    /// vertex ids — caller bugs, not service outcomes). Resolves
    /// kCompleted with QueryResult::snapshot_version = the version the
    /// batch published, kShed under backpressure, kCancelled when a
    /// deadline or shutdown drain fired first — mutations ride the same
    /// bounded AdmissionQueue and zero-lost-requests invariant as
    /// queries. Workers serialize application through the store's
    /// writer mutex, so multi-worker services stay single-writer.
    SubmitResult submit_mutation(MutationBatch batch,
                                 double deadline_seconds = 0.0);

    /// True when this service runs over a VersionedGraphStore.
    [[nodiscard]] bool live() const noexcept { return store_ != nullptr; }

    /// Drains and joins: closes admission, waits up to
    /// ServiceOptions::drain_seconds for queued + in-flight work, then
    /// cancels stragglers and resolves anything left as kCancelled.
    /// Idempotent; submit() after stop() sheds.
    void stop();

    [[nodiscard]] const ServiceCounters& counters() const noexcept {
        return counters_;
    }

    /// Current admission backlog.
    [[nodiscard]] std::size_t queue_depth() const { return queue_.size(); }

    /// Workers still running their full parallel runner (not serial
    /// fallback). Starts at ServiceOptions::workers.
    [[nodiscard]] int healthy_workers() const noexcept {
        return healthy_workers_.load(std::memory_order_relaxed);
    }

    [[nodiscard]] const ServiceOptions& options() const noexcept {
        return options_;
    }

  private:
    struct Worker;

    void start();
    SubmitResult enqueue(const AdmissionQueue::Item& item,
                         double deadline_seconds);
    void worker_loop(Worker& w);
    void process_batch(Worker& w, std::vector<AdmissionQueue::Item>& batch);
    void run_wave(Worker& w, std::vector<AdmissionQueue::Item>& batch);
    void run_single(Worker& w, const AdmissionQueue::Item& item);
    void run_degraded(Worker& w, const AdmissionQueue::Item& item);
    void run_mutation(const AdmissionQueue::Item& item);
    void resolve(const AdmissionQueue::Item& item, QueryResult result);
    void rebuild_runner(Worker& w);
    [[nodiscard]] vertex_t graph_vertices() const noexcept;

    /// Exactly one of these is set: a static graph (graph_) or a live
    /// store (store_) whose snapshots queries pin per run.
    const CsrGraph* graph_ = nullptr;
    VersionedGraphStore* store_ = nullptr;
    ServiceOptions options_;
    AdmissionQueue queue_;
    ServiceCounters counters_;
    std::vector<std::unique_ptr<Worker>> workers_;
    std::vector<std::thread> threads_;
    std::atomic<int> healthy_workers_{0};
    /// Batches popped but not yet fully resolved (see
    /// AdmissionQueue::pop_batch's in_flight contract).
    std::atomic<int> in_flight_{0};
    std::atomic<bool> stopping_{false};
    std::atomic<bool> hard_cancel_{false};
    std::atomic<bool> stopped_{false};
};

}  // namespace sge::service
