#pragma once

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <span>
#include <vector>

namespace sge {

/// Process-wide robustness counters. Degradations that used to be
/// silent (a failed pin, an aborted barrier, a tripped watchdog) tick
/// these so operators and tests can observe them; they are monotonic
/// and never reset.
///
/// These are *health* signals, distinct from the per-traversal
/// performance counters in BfsResult::level_stats: a traversal's stats
/// are reset every run and describe work done, while RuntimeWarnings
/// accumulate for the process lifetime and describe things that went
/// wrong. docs/ROBUSTNESS.md discusses how the two relate.
struct RuntimeWarnings {
    /// Threads that requested CPU pinning but could not get it (the run
    /// continues unpinned; see note_pin_failure below).
    std::atomic<std::uint64_t> pin_failures{0};
    /// Barrier waits that ended by abort rather than a full rendezvous
    /// (a worker failed or a watchdog cancelled the phase).
    std::atomic<std::uint64_t> barrier_aborts{0};
    /// LevelWatchdog deadlines that expired and triggered an abort of
    /// the traversal in progress.
    std::atomic<std::uint64_t> watchdog_fires{0};
};

/// The process-wide RuntimeWarnings singleton. Thread-safe: fields are
/// atomics and the instance is constructed on first use. Read it in
/// tests or operational code to assert that a run stayed clean
/// (e.g. `runtime_warnings().barrier_aborts.load() == 0`).
inline RuntimeWarnings& runtime_warnings() noexcept {
    static RuntimeWarnings w;
    return w;
}

/// Records a failed thread-pin attempt. The run degrades to unpinned
/// placement (correctness is unaffected; only locality suffers), so
/// this warns on stderr exactly once per process and counts every
/// occurrence in runtime_warnings().
inline void note_pin_failure(int cpu) noexcept {
    runtime_warnings().pin_failures.fetch_add(1, std::memory_order_relaxed);
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true, std::memory_order_acq_rel))
        std::fprintf(stderr,
                     "sge: warning: failed to pin thread to CPU %d; "
                     "continuing unpinned (further failures counted "
                     "silently)\n",
                     cpu);
}

/// Order statistics + moments of a sample — what the benchmark harness
/// reports instead of single-shot numbers (multi-run medians are far
/// more stable than minima under OS jitter on shared machines).
struct SampleSummary {
    std::size_t count = 0;
    double min = 0.0;
    double max = 0.0;
    double mean = 0.0;
    double median = 0.0;
    double stddev = 0.0;  // population standard deviation
};

/// Summarises `values` (empty input yields an all-zero summary).
inline SampleSummary summarize(std::span<const double> values) {
    SampleSummary s;
    s.count = values.size();
    if (values.empty()) return s;

    std::vector<double> sorted(values.begin(), values.end());
    std::sort(sorted.begin(), sorted.end());
    s.min = sorted.front();
    s.max = sorted.back();
    const std::size_t mid = sorted.size() / 2;
    s.median = sorted.size() % 2 == 1
                   ? sorted[mid]
                   : 0.5 * (sorted[mid - 1] + sorted[mid]);

    double total = 0.0;
    for (const double v : sorted) total += v;
    s.mean = total / static_cast<double>(sorted.size());

    double var = 0.0;
    for (const double v : sorted) var += (v - s.mean) * (v - s.mean);
    s.stddev = std::sqrt(var / static_cast<double>(sorted.size()));
    return s;
}

/// Harmonic mean — the Graph500 aggregate for TEPS rates (the arithmetic
/// mean over rates overweights easy roots).
inline double harmonic_mean(std::span<const double> values) {
    if (values.empty()) return 0.0;
    double inv = 0.0;
    for (const double v : values) {
        if (v <= 0.0) return 0.0;
        inv += 1.0 / v;
    }
    return static_cast<double>(values.size()) / inv;
}

}  // namespace sge
