#include "gen/uniform.hpp"

#include <stdexcept>

#include "runtime/prng.hpp"

namespace sge {

EdgeList generate_uniform(const UniformParams& params) {
    const vertex_t n = params.num_vertices;
    if (n == 0) return EdgeList{};
    if (n == 1 && params.degree > 0)
        throw std::invalid_argument(
            "generate_uniform: cannot draw non-self-loop neighbours with n == 1");

    EdgeList edges(n);
    edges.reserve(static_cast<std::size_t>(n) * params.degree);

    Xoshiro256 rng(params.seed);
    for (vertex_t v = 0; v < n; ++v) {
        for (std::uint32_t k = 0; k < params.degree; ++k) {
            // Draw from [0, n-1) and shift past v: uniform over the
            // other n-1 vertices with a single draw, no rejection loop.
            auto w = static_cast<vertex_t>(rng.next_below(n - 1));
            if (w >= v) ++w;
            edges.add(v, w);
        }
    }
    return edges;
}

}  // namespace sge
