#include "stream/dynamic_graph.hpp"

#include <algorithm>

#include "runtime/aligned_buffer.hpp"

namespace sge {

CsrGraph DynamicGraph::snapshot() const {
    const vertex_t n = num_vertices();
    AlignedBuffer<edge_offset_t> offsets(static_cast<std::size_t>(n) + 1);
    offsets[0] = 0;
    for (vertex_t v = 0; v < n; ++v)
        offsets[v + 1] = offsets[v] + adjacency_[v].size();

    AlignedBuffer<vertex_t> targets(static_cast<std::size_t>(offsets[n]));
    for (vertex_t v = 0; v < n; ++v) {
        std::copy(adjacency_[v].begin(), adjacency_[v].end(),
                  targets.data() + offsets[v]);
        std::sort(targets.data() + offsets[v], targets.data() + offsets[v + 1]);
    }
    return CsrGraph(std::move(offsets), std::move(targets));
}

}  // namespace sge
