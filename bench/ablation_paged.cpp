// Semi-external paged-backend ablation (docs/PERF_MODEL.md "Disk
// regime").
//
// Three experiments, one per claim the backend makes:
//
//  1. Warm rates: the paged backend with its payload page-cache
//     resident vs the in-memory CSR on the same engine x workload
//     cells. This prices the mmap indirection + callback scan alone —
//     CI guards warm paged >= 0.85x in-memory (check_bench_json.py).
//
//  2. Cold prefetch A/B: evict_paged() before every timed run (the
//     --drop-caches-free cold emulation, bench_util.hpp), then the same
//     traversal with the frontier-ahead prefetcher on vs off. Prefetch
//     walks the next frontier at each level barrier and touches its
//     pages from a background thread, so the stripe faults overlap the
//     current level's discovery — it must never lose to no-prefetch.
//
//  3. Residency budget: a high-diameter band graph traversed level by
//     level with the payload evicted whenever residency crosses
//     payload/8. The traversal completes, matches the in-memory levels,
//     and the payload was never more than fractionally resident — the
//     semi-external regime (graph bigger than RAM) demonstrated without
//     a cgroup.
//
// Every paged cell is gated on level-array identity against the
// in-memory backend: paging must be invisible in the output.

#include <sys/resource.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "core/bfs.hpp"
#include "graph/builder.hpp"
#include "graph/paged_graph.hpp"
#include "report.hpp"
#include "runtime/obs.hpp"
#include "runtime/timer.hpp"

using namespace sge;
using namespace sge::bench;

namespace {

constexpr int kThreads = 8;
constexpr int kRuns = 3;
// Cold cells pair prefetch-off/on rounds and keep the best of each
// side; more rounds than the warm cells because eviction makes every
// round see the host's IO and scheduler jitter in full.
constexpr int kColdRounds = 5;

std::string paged_path(const char* tag) {
    return (std::filesystem::temp_directory_path() /
            (std::string("sge_ablation_paged_") +
             std::to_string(static_cast<long>(::getpid())) + "_" + tag))
        .string();
}

std::uint64_t major_faults() {
    struct rusage ru {};
    ::getrusage(RUSAGE_SELF, &ru);
    return static_cast<std::uint64_t>(ru.ru_majflt);
}

vertex_t fixed_root(const CsrGraph& g) {
    // Fixed root: the identity gate compares level arrays across
    // backends, so every cell must traverse from the same source.
    vertex_t root = 0;
    while (root + 1 < g.num_vertices() && g.degree(root) == 0) ++root;
    return root;
}

struct Cell {
    double rate = 0.0;            // best edges/second over timed runs
    std::uint64_t majflt = 0;     // rusage major-fault delta, all runs
    std::vector<level_t> levels;  // for the cross-backend identity gate
};

/// Warm measurement: one untimed warmup pages everything in, then
/// best-of-kRuns. Works for both backends through the accessor seam.
template <class Graph>
Cell measure_warm(const Graph& g, vertex_t root, BfsEngine engine,
                  const Topology& topo) {
    BfsOptions options;
    options.engine = engine;
    options.threads = kThreads;
    options.topology = topo;
    BfsRunner runner(options);

    (void)runner.run(g, root);  // warmup: page in payload + state
    Cell cell;
    for (int i = 0; i < kRuns; ++i) {
        const BfsResult r = runner.run(g, root);
        cell.rate = std::max(cell.rate, r.edges_per_second());
        if (i == 0) cell.levels = r.level;
    }
    return cell;
}

/// One cold traversal: evict, then run. The caller owns warmup policy.
void cold_run(Cell& cell, const PagedGraph& g, vertex_t root,
              BfsRunner& runner) {
    evict_paged(g);
    const std::uint64_t faults0 = major_faults();
    const BfsResult r = runner.run(g, root);
    cell.majflt += major_faults() - faults0;
    cell.rate = std::max(cell.rate, r.edges_per_second());
    if (cell.levels.empty()) cell.levels = r.level;
}

// ---------------------------------------------------------------------
// Experiment 1: warm paged vs in-memory.
// ---------------------------------------------------------------------

bool warm_sweep(const char* workload, const CsrGraph& g, const Topology& topo,
                BenchReport& report) {
    PagedOpenOptions open;
    open.owns_files = true;
    open.validate_payload = false;  // just written from a validated graph
    const PagedGraph paged =
        make_paged(g, paged_path(workload), PagedWriteOptions{}, open);

    std::printf("\nworkload: %s (%u vertices, %llu arcs; payload %s in %s "
                "stripes)\n",
                workload, g.num_vertices(),
                static_cast<unsigned long long>(g.num_edges()),
                fmt_bytes(paged.payload_bytes()).c_str(),
                fmt_bytes(PagedWriteOptions{}.stripe_bytes).c_str());

    const std::pair<BfsEngine, const char*> engines[] = {
        {BfsEngine::kBitmap, "bitmap"},
        {BfsEngine::kHybrid, "hybrid"},
    };
    const vertex_t root = fixed_root(g);

    bool ok = true;
    Table table({"engine", "in-memory", "paged (warm)", "vs in-memory"});
    for (const auto& [engine, engine_name] : engines) {
        const Cell mem = measure_warm(g, root, engine, topo);
        const Cell warm = measure_warm(paged, root, engine, topo);
        if (warm.levels != mem.levels) {
            // Paging must be invisible in the output: identical level
            // arrays (parents may differ — any BFS tree wins races
            // differently — but distances never do).
            std::fprintf(stderr,
                         "FAIL: %s/%s level arrays differ between in-memory "
                         "and paged backends\n",
                         engine_name, workload);
            ok = false;
        }
        table.add_row({engine_name, fmt("%.1f ME/s", mem.rate / 1e6),
                       fmt("%.1f ME/s", warm.rate / 1e6),
                       fmt("%+.0f%%", 100.0 * (warm.rate / mem.rate - 1.0))});

        const std::string cell = std::string("warm_") + engine_name + "_" +
                                 workload;
        report.add(cell, {{"threads", kThreads}, {"paged", 0}},
                   {{"edges_per_second", mem.rate}});
        report.add(cell, {{"threads", kThreads}, {"paged", 1}},
                   {{"edges_per_second", warm.rate}});
    }
    table.print();
    return ok;
}

// ---------------------------------------------------------------------
// Experiment 2: cold runs, prefetch on vs off.
// ---------------------------------------------------------------------

bool cold_sweep(const char* workload, const CsrGraph& g, const Topology& topo,
                BenchReport& report) {
    // One set of stripe files, one mapping alive at a time: a second
    // concurrent mapping would keep the payload's page-cache pages
    // referenced, and evict_paged() could never produce a real cold
    // start. Neither reader owns the files; swept explicitly at the end.
    const std::string path = paged_path((std::string("cold_") + workload).c_str());
    write_paged_graph(g, path, PagedWriteOptions{});
    PagedOpenOptions open;
    open.validate_payload = false;

    const vertex_t root = fixed_root(g);
    // The identity reference: one in-memory traversal of the same cell.
    const Cell mem = measure_warm(g, root, BfsEngine::kBitmap, topo);

    BfsOptions options;
    options.engine = BfsEngine::kBitmap;
    options.threads = kThreads;
    options.topology = topo;
    BfsRunner runner(options);  // one runner: workspace reused throughout

    // Paired rounds, alternating prefetch off/on, so scheduler drift on
    // a time-shared host hits both sides of the comparison equally.
    // Only one mapping is alive at a time: a second concurrent mapping
    // of the same stripes would keep the payload's page-cache pages
    // referenced and evict_paged() could never produce a real cold
    // start. Best-of-rounds on each side, like every other rate cell.
    Cell off, on;
    std::size_t payload = 0;
    std::uint64_t issued = 0, hits = 0, stripe_reads = 0, bytes_mapped = 0;
    for (int round = 0; round < kColdRounds; ++round) {
        {
            open.prefetch = false;
            const PagedGraph without = open_paged_graph(path, open);
            if (round == 0) {
                payload = without.payload_bytes();
                evict_paged(without);
                (void)runner.run(without, root);  // workspace, off the clock
            }
            cold_run(off, without, root, runner);
        }
        {
            open.prefetch = true;
            const PagedGraph with_prefetch = open_paged_graph(path, open);
            cold_run(on, with_prefetch, root, runner);
            const PagedIoStats& io = with_prefetch.io_stats();
            issued += io.prefetch_issued.load();
            hits += io.prefetch_hits.load();
            stripe_reads += io.stripe_reads.load();
            bytes_mapped = io.bytes_mapped.load();
        }
    }

    bool ok = true;
    if (on.levels != mem.levels || off.levels != mem.levels) {
        std::fprintf(stderr,
                     "FAIL: cold %s level arrays differ from the in-memory "
                     "backend\n",
                     workload);
        ok = false;
    }
    if (hits > issued) {
        std::fprintf(stderr,
                     "FAIL: cold %s prefetch_hits %llu > prefetch_issued "
                     "%llu\n",
                     workload, static_cast<unsigned long long>(hits),
                     static_cast<unsigned long long>(issued));
        ok = false;
    }

    std::printf("\ncold runs, %s (payload %s evicted before every run):\n",
                workload, fmt_bytes(payload).c_str());
    Table table({"prefetch", "rate", "vs off", "major faults", "pages issued",
                 "already resident"});
    table.add_row({"off", fmt("%.1f ME/s", off.rate / 1e6), "-",
                   fmt_u64(off.majflt), "-", "-"});
    table.add_row({"on", fmt("%.1f ME/s", on.rate / 1e6),
                   fmt("%+.0f%%", 100.0 * (on.rate / off.rate - 1.0)),
                   fmt_u64(on.majflt), fmt_u64(issued), fmt_u64(hits)});
    table.print();
    if (std::thread::hardware_concurrency() <= 1)
        std::printf("note: single-CPU host — the prefetcher issues WILLNEED "
                    "inline and its win shows as absorbed major faults, not "
                    "rate; rate overlap needs a free hart "
                    "(docs/PERF_MODEL.md, disk regime)\n");

    const std::string cell = std::string("cold_bitmap_") + workload;
    report.add(cell,
               {{"threads", kThreads}, {"paged", 1}, {"prefetch", 0}},
               {{"edges_per_second", off.rate},
                {"major_faults", static_cast<double>(off.majflt)}});
    report.add(cell,
               {{"threads", kThreads}, {"paged", 1}, {"prefetch", 1}},
               {{"edges_per_second", on.rate},
                {"major_faults", static_cast<double>(on.majflt)},
                {"prefetch_issued", static_cast<double>(issued)},
                {"prefetch_hits", static_cast<double>(hits)},
                {"stripe_reads", static_cast<double>(stripe_reads)},
                {"bytes_mapped", static_cast<double>(bytes_mapped)}});

    remove_paged_files(path);
    return ok;
}

// ---------------------------------------------------------------------
// Experiment 3: traversal under a residency budget.
// ---------------------------------------------------------------------

/// n vertices, each connected to its `half_width` successors (both
/// directions): diameter ~ n / half_width, so a level-synchronous BFS
/// touches a thin moving window of the payload — the shape that lets a
/// semi-external traversal hold residency far below the payload size.
CsrGraph band_graph(std::uint64_t n, std::uint32_t half_width) {
    EdgeList edges(static_cast<vertex_t>(n));
    edges.reserve(static_cast<std::size_t>(n) * 2 * half_width);
    for (std::uint64_t v = 0; v < n; ++v)
        for (std::uint32_t k = 1; k <= half_width; ++k) {
            if (v + k >= n) break;
            edges.add(static_cast<vertex_t>(v), static_cast<vertex_t>(v + k));
            edges.add(static_cast<vertex_t>(v + k), static_cast<vertex_t>(v));
        }
    return csr_from_edges(edges);
}

bool budget_run(const Topology& topo, BenchReport& report) {
    // 8 MB of payload: large against the kernel's sequential readahead
    // window (~128 KB), which is what mincore reports as resident the
    // moment a fault lands near it — at smaller payloads readahead
    // alone counts as half the file and drowns the measurement.
    const std::uint64_t n = scaled(1 << 18);
    const CsrGraph band = band_graph(n, 4);

    // Small stripes so the report shows real striping even at CI scale.
    PagedWriteOptions write;
    write.stripe_bytes = std::size_t{256} << 10;
    PagedOpenOptions open;
    open.owns_files = true;
    open.validate_payload = false;
    open.prefetch = false;  // a WILLNEED batch would repopulate behind evict()
    const PagedGraph paged =
        make_paged(band, paged_path("band"), write, open);

    const std::size_t payload = paged.payload_bytes();
    const std::size_t budget = std::max<std::size_t>(payload / 8, 64 << 10);

    // Level-synchronous traversal, enforcing the budget at each level
    // barrier: whenever mincore says residency crossed it, drop the
    // payload. Correctness cannot suffer — evicted pages fault straight
    // back in on the next touch.
    std::vector<level_t> level(band.num_vertices(), kInvalidLevel);
    std::vector<vertex_t> cur, next;
    const vertex_t root = fixed_root(band);
    level[root] = 0;
    cur.push_back(root);
    evict_paged(paged);

    WallTimer timer;
    std::size_t peak_resident = 0;
    std::uint64_t evictions = 0;
    level_t depth = 0;
    while (!cur.empty()) {
        for (const vertex_t u : cur)
            paged.neighbors_for_each(u, [&](vertex_t v) {
                if (level[v] == kInvalidLevel) {
                    level[v] = depth + 1;
                    next.push_back(v);
                }
            });
        // Sample residency every 16 levels: one mincore sweep per
        // sample, and the band advances ~one page per 16 levels, so the
        // peak estimate stays tight without billing a sweep per level.
        if ((depth & 15u) == 0) {
            const std::size_t resident = paged.resident_payload_bytes();
            peak_resident = std::max(peak_resident, resident);
            if (resident > budget) {
                paged.evict();
                ++evictions;
            }
        }
        cur.swap(next);
        next.clear();
        ++depth;
    }
    const double seconds = timer.seconds();

    // The traversal must agree with the in-memory backend...
    BfsOptions serial;
    serial.engine = BfsEngine::kSerial;
    serial.topology = topo;
    const BfsResult reference = sge::bfs(band, root, serial);
    bool ok = true;
    if (reference.level != level) {
        std::fprintf(stderr,
                     "FAIL: budget traversal levels differ from the "
                     "in-memory serial backend\n");
        ok = false;
    }
    // ...and the payload must have stayed mostly on disk: that is the
    // semi-external claim. 2x headroom over the sampled peak keeps the
    // gate honest about sampling skew.
    if (peak_resident * 2 > payload) {
        std::fprintf(stderr,
                     "FAIL: peak residency %zu B is not below half the "
                     "payload %zu B — the budget run never left the "
                     "in-memory regime\n",
                     peak_resident, payload);
        ok = false;
    }

    std::printf("\nresidency budget (band graph, %llu vertices, diameter "
                "%u):\n",
                static_cast<unsigned long long>(n), depth);
    Table table({"quantity", "value"});
    table.add_row({"payload on disk", fmt_bytes(payload)});
    table.add_row({"residency budget", fmt_bytes(budget)});
    table.add_row({"peak resident (sampled)", fmt_bytes(peak_resident)});
    table.add_row({"evictions", fmt_u64(evictions)});
    table.add_row({"traversal", fmt("%.3f s", seconds)});
    table.print();
    std::printf("BFS completed with at most %.0f%% of the payload resident\n",
                100.0 * static_cast<double>(peak_resident) /
                    static_cast<double>(payload));

    report.add("budget_band", {{"threads", 1}, {"paged", 1}},
               {{"payload_bytes", static_cast<double>(payload)},
                {"budget_bytes", static_cast<double>(budget)},
                {"peak_resident_bytes", static_cast<double>(peak_resident)},
                {"evictions", static_cast<double>(evictions)},
                {"levels", static_cast<double>(depth)},
                {"seconds", seconds}});
    return ok;
}

}  // namespace

int main() {
    banner("Ablation: semi-external paged backend",
           "striped mmap adjacency + frontier-ahead prefetch, "
           "docs/PERF_MODEL.md");

    // Two emulated sockets, 8 workers: the same shape as the other
    // ablations, so rates are comparable across reports.
    const Topology topo = Topology::emulate(2, 2, 2);
    std::printf("topology: %s, %d threads, %d timed runs per cell\n",
                topo.describe().c_str(), kThreads, kRuns);

    BenchReport report("ablation_paged", "paged-backend ablation");
    report.set_topology(topo.describe());

    const std::uint64_t n = scaled(1 << 14);
    const CsrGraph uniform = uniform_graph(n, 8 * n);
    const CsrGraph rmat = rmat_graph(n, 16 * n);
    // The cold cell is R-MAT only, 4x larger so the evicted payload is
    // big enough for the prefetch overlap to be measurable. R-MAT is
    // the workload the prefetcher exists for: its shuffled frontier
    // touches payload pages in scattered order, which kernel readahead
    // cannot anticipate but the frontier walk can. (A uniform/band
    // cold cell reads near-sequentially, readahead already covers it,
    // and the prefetch thread is pure contention there.)
    const std::uint64_t n_cold = scaled(1 << 16);
    const CsrGraph rmat_cold = rmat_graph(n_cold, 16 * n_cold);
    report.set_workload("uniform+rmat+band", n);

    bool ok = warm_sweep("uniform", uniform, topo, report);
    ok = warm_sweep("rmat", rmat, topo, report) && ok;
    ok = cold_sweep("rmat", rmat_cold, topo, report) && ok;
    ok = budget_run(topo, report) && ok;

    report.write();
    return ok ? 0 : 1;
}
