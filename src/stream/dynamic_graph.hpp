#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr_graph.hpp"
#include "graph/types.hpp"

namespace sge {

/// Mutable adjacency structure for streaming workloads — the paper's
/// conclusion points the design at "streaming and irregular
/// applications"; this is the ingestion side: edges arrive over time,
/// queries (BFS, analytics) run against the current state.
///
/// Representation: one growable vector per vertex with amortised-O(1)
/// undirected insertion. Not thread-safe for concurrent mutation (a
/// stream has one writer); snapshot() produces an immutable CsrGraph
/// for the parallel engines, which is the intended query path for
/// anything heavier than the incremental BFS maintenance in
/// stream/incremental_bfs.hpp. For concurrent readers against a single
/// writer, wrap it in stream/versioned_store.hpp instead of sharing
/// this object across threads.
///
/// Every mutation bumps a monotonic version() counter. Derived state
/// (IncrementalBfs) records the version it has observed and refuses to
/// answer queries across unobserved mutations — the guard that turned
/// "call rebuild() after removals" from a comment into a contract.
class DynamicGraph {
  public:
    explicit DynamicGraph(vertex_t num_vertices)
        : adjacency_(num_vertices), sorted_(num_vertices, 1) {}

    /// Builds from an existing static graph (arcs copied as-is; lists
    /// already sorted by the CSR builder snapshot straight through).
    explicit DynamicGraph(const CsrGraph& g)
        : adjacency_(g.num_vertices()), sorted_(g.num_vertices()) {
        for (vertex_t v = 0; v < g.num_vertices(); ++v) {
            const auto adj = g.neighbors(v);
            adjacency_[v].assign(adj.begin(), adj.end());
            sorted_[v] = std::is_sorted(adj.begin(), adj.end()) ? 1 : 0;
            num_arcs_ += adj.size();
        }
    }

    [[nodiscard]] vertex_t num_vertices() const noexcept {
        return static_cast<vertex_t>(adjacency_.size());
    }
    [[nodiscard]] std::uint64_t num_arcs() const noexcept { return num_arcs_; }

    /// Monotonic mutation counter: bumped once per add_vertex, add_edge
    /// and (successful) remove_edge. Consumers that maintain state
    /// derived from the adjacency (IncrementalBfs) record the last
    /// version they observed; a mismatch at query time means a mutation
    /// slipped past their notification hooks.
    [[nodiscard]] std::uint64_t version() const noexcept { return version_; }

    /// Appends a new isolated vertex; returns its id.
    vertex_t add_vertex() {
        adjacency_.emplace_back();
        sorted_.push_back(1);
        ++version_;
        return static_cast<vertex_t>(adjacency_.size() - 1);
    }

    /// Inserts the undirected edge {u, v} (two arcs). No deduplication —
    /// streams may carry repeats; has_edge/degree see multiplicity.
    /// Throws std::out_of_range for bad ids.
    void add_edge(vertex_t u, vertex_t v) {
        check(u);
        check(v);
        append_arc(u, v);
        if (u != v) append_arc(v, u);
        num_arcs_ += (u == v) ? 1 : 2;
        ++version_;
    }

    /// Removes one occurrence of the undirected edge {u, v}; returns
    /// false when absent (and does not count as a mutation).
    bool remove_edge(vertex_t u, vertex_t v) {
        check(u);
        check(v);
        if (!erase_one(u, v)) return false;
        if (u != v) erase_one(v, u);
        num_arcs_ -= (u == v) ? 1 : 2;
        ++version_;
        return true;
    }

    /// Neighbour multiset of `v`. Order is unspecified: snapshot() may
    /// lazily sort lists in place.
    [[nodiscard]] std::span<const vertex_t> neighbors(vertex_t v) const {
        check(v);
        return adjacency_[v];
    }

    [[nodiscard]] std::uint64_t degree(vertex_t v) const {
        check(v);
        return adjacency_[v].size();
    }

    [[nodiscard]] bool has_edge(vertex_t u, vertex_t v) const {
        check(u);
        check(v);
        for (const vertex_t w : adjacency_[u])
            if (w == v) return true;
        return false;
    }

    /// Vertices whose adjacency list is not currently known-sorted —
    /// exactly the lists the next snapshot() must sort before copying
    /// out. Clean lists (untouched since the last snapshot, or built by
    /// ascending insertion) memcpy straight through.
    [[nodiscard]] std::size_t dirty_vertices() const noexcept {
        std::size_t dirty = 0;
        for (const std::uint8_t s : sorted_) dirty += (s == 0);
        return dirty;
    }

    /// Immutable CSR snapshot of the current state (sorted adjacency).
    /// Amortised cost: only lists dirtied since the previous snapshot
    /// are re-sorted (in place, clearing their dirty bit); clean lists
    /// are a straight copy.
    [[nodiscard]] CsrGraph snapshot() const;

  private:
    void check(vertex_t v) const {
        if (v >= adjacency_.size())
            throw std::out_of_range("DynamicGraph: vertex out of range");
    }

    void append_arc(vertex_t u, vertex_t v) {
        auto& adj = adjacency_[u];
        if (!adj.empty() && v < adj.back()) sorted_[u] = 0;
        adj.push_back(v);
    }

    bool erase_one(vertex_t u, vertex_t v) {
        auto& adj = adjacency_[u];
        for (std::size_t i = 0; i < adj.size(); ++i) {
            if (adj[i] == v) {
                // Swap-erase breaks order unless the victim was already
                // the last element.
                if (i + 1 != adj.size()) {
                    adj[i] = adj.back();
                    sorted_[u] = 0;
                }
                adj.pop_back();
                if (adj.size() <= 1) sorted_[u] = 1;
                return true;
            }
        }
        return false;
    }

    // `mutable`: snapshot() is logically const (the neighbour multiset
    // is unchanged) but lazily sorts dirty lists in place so repeated
    // snapshots of an untouched graph are pure copies.
    mutable std::vector<std::vector<vertex_t>> adjacency_;
    mutable std::vector<std::uint8_t> sorted_;
    std::uint64_t num_arcs_ = 0;
    std::uint64_t version_ = 0;
};

}  // namespace sge
