#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstring>
#include <vector>

#include "graph/types.hpp"
#include "runtime/aligned_buffer.hpp"
#include "runtime/cacheline.hpp"

namespace sge {

/// Atomic-free next-queue (NQ) construction: count, prefix-sum, write.
///
/// The legacy path builds NQ with atomic appends — each producer
/// reserves queue slots with a fetch_add (per vertex in the naive
/// engine, per 64-vertex batch elsewhere), so frontier construction
/// serializes on the queue cursor. The compactor removes every atomic
/// from the construction itself (the count -> exclusive prefix sum ->
/// contiguous write scheme of Tithi et al., arXiv 2209.08764):
///
///   1. during the scan, each claimant appends discoveries to its own
///      private buffer with plain stores and publishes the final count;
///   2. after the level barrier, each claimant computes its exclusive
///      prefix offset over the published counts and memcpy's its
///      segment into the queue at that offset — disjoint destinations,
///      zero atomics, no false sharing beyond segment edges;
///   3. one thread publishes the total as the queue size.
///
/// The prefix sum is the degenerate block-scan of a work-efficient
/// parallel exclusive scan: with one count per claimant there is
/// nothing to up-sweep, so each claimant independently sums the counts
/// before it (O(T) each, O(T^2) total — at most a few thousand adds for
/// T <= 64, far cheaper than the extra barrier a tree phase would add).
/// Counts are relaxed atomics: the level barrier between publish and
/// read provides the happens-before edge.
///
/// Claimants may be partitioned into groups with independent offset
/// spaces (the multisocket engine compacts into one queue per socket);
/// single-queue engines leave every claimant in group 0. All storage is
/// preallocated from the BfsWorkspace arena and reused across levels
/// and queries; see docs/ALGORITHMS.md ("Frontier generation").
class FrontierCompactor {
  public:
    FrontierCompactor() = default;

    /// Allocates per-claimant buffers and counts. `capacities[t]` bounds
    /// claimant t's discoveries per level (n, or its socket partition
    /// size). `group_of[t]` selects the claimant's offset space; empty
    /// means one shared group. Not thread-safe; call before the team runs.
    void configure(int claimants, const std::vector<std::size_t>& capacities,
                   std::vector<int> group_of = {}) {
        assert(claimants >= 0 &&
               capacities.size() == static_cast<std::size_t>(claimants));
        assert(group_of.empty() ||
               group_of.size() == static_cast<std::size_t>(claimants));
        claimants_ = claimants;
        group_of_ = std::move(group_of);
        counts_ = AlignedBuffer<CachePadded<std::atomic<std::uint64_t>>>(
            static_cast<std::size_t>(claimants), /*zeroed=*/true);
        buffers_.clear();
        buffers_.reserve(static_cast<std::size_t>(claimants));
        for (int t = 0; t < claimants; ++t)
            buffers_.emplace_back(capacities[static_cast<std::size_t>(t)]);
    }

    /// Convenience: uniform capacity, optional grouping.
    void configure(int claimants, std::size_t capacity,
                   std::vector<int> group_of = {}) {
        configure(claimants,
                  std::vector<std::size_t>(static_cast<std::size_t>(
                                               claimants < 0 ? 0 : claimants),
                                           capacity),
                  std::move(group_of));
    }

    /// Releases all storage (kAtomic mode keeps the workspace lean).
    void clear() {
        claimants_ = 0;
        group_of_.clear();
        counts_ = {};
        buffers_.clear();
    }

    [[nodiscard]] bool configured() const noexcept { return claimants_ > 0; }
    [[nodiscard]] int claimants() const noexcept { return claimants_; }

    /// Claimant t's private discovery buffer (plain stores only).
    [[nodiscard]] vertex_t* buffer(int tid) noexcept {
        return buffers_[static_cast<std::size_t>(tid)].data();
    }
    [[nodiscard]] std::size_t buffer_capacity(int tid) const noexcept {
        return buffers_[static_cast<std::size_t>(tid)].size();
    }

    /// Publishes claimant t's discovery count for this level. Relaxed:
    /// the level barrier orders it before any offset computation.
    void publish(int tid, std::size_t count) noexcept {
        assert(count <= buffer_capacity(tid));
        counts_[static_cast<std::size_t>(tid)]->store(
            count, std::memory_order_relaxed);
    }

    [[nodiscard]] std::size_t count(int tid) const noexcept {
        return counts_[static_cast<std::size_t>(tid)]->load(
            std::memory_order_relaxed);
    }

    /// Exclusive prefix of claimant t's group: the sum of the published
    /// counts of every earlier claimant in the same group. Call only
    /// after the barrier that follows the publishes.
    [[nodiscard]] std::size_t offset_of(int tid) const noexcept {
        const int mine = group(tid);
        std::size_t sum = 0;
        for (int t = 0; t < tid; ++t)
            if (group(t) == mine) sum += count(t);
        return sum;
    }

    /// Total published discoveries in `grp` (a compacted queue's size).
    [[nodiscard]] std::size_t group_total(int grp) const noexcept {
        std::size_t sum = 0;
        for (int t = 0; t < claimants_; ++t)
            if (group(t) == grp) sum += count(t);
        return sum;
    }

    /// Total published discoveries across all groups.
    [[nodiscard]] std::size_t total() const noexcept {
        std::size_t sum = 0;
        for (int t = 0; t < claimants_; ++t) sum += count(t);
        return sum;
    }

    /// Copies claimant t's segment into `dst` (its group's queue slots)
    /// at the claimant's exclusive offset; returns the count copied.
    std::size_t copy_out(int tid, vertex_t* dst) const noexcept {
        const std::size_t cnt = count(tid);
        if (cnt != 0)
            std::memcpy(dst + offset_of(tid),
                        buffers_[static_cast<std::size_t>(tid)].data(),
                        cnt * sizeof(vertex_t));
        return cnt;
    }

    /// First-touches claimant t's buffer from the thread that will fill
    /// it, so the pages land on that thread's NUMA node.
    void first_touch(int tid) noexcept {
        auto& buf = buffers_[static_cast<std::size_t>(tid)];
        if (!buf.empty())
            std::memset(buf.data(), 0, buf.size() * sizeof(vertex_t));
        counts_[static_cast<std::size_t>(tid)]->store(
            0, std::memory_order_relaxed);
    }

    /// Zeroes all published counts (query-reset hygiene; every level
    /// republishes before reading, so this is belt-and-braces).
    void reset() noexcept {
        for (int t = 0; t < claimants_; ++t)
            counts_[static_cast<std::size_t>(t)]->store(
                0, std::memory_order_relaxed);
    }

  private:
    [[nodiscard]] int group(int tid) const noexcept {
        return group_of_.empty() ? 0
                                 : group_of_[static_cast<std::size_t>(tid)];
    }

    int claimants_ = 0;
    std::vector<int> group_of_;
    AlignedBuffer<CachePadded<std::atomic<std::uint64_t>>> counts_;
    std::vector<AlignedBuffer<vertex_t>> buffers_;
};

}  // namespace sge
