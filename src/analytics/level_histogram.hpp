#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/bfs.hpp"

namespace sge {

/// histogram[d] = number of vertices at BFS distance d from the root.
/// Computed from BfsResult::level (requires compute_levels). The shape
/// of this curve is what separates the paper's workloads: R-MAT graphs
/// have a short, explosive frontier (tiny diameter), grids a long flat
/// one.
std::vector<std::uint64_t> level_histogram(const BfsResult& result);

/// Renders the histogram as a fixed-width ASCII bar chart (examples and
/// debugging output).
std::string render_level_histogram(const std::vector<std::uint64_t>& histogram,
                                   std::size_t max_width = 60);

}  // namespace sge
