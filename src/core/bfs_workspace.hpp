#pragma once

// Internal header (like engine_common.hpp): include only from
// src/core/*.cpp, bench and tests.

#include <cstdint>
#include <memory>
#include <vector>

#include "concurrency/channel.hpp"
#include "concurrency/versioned_bitmap.hpp"
#include "concurrency/work_queue.hpp"
#include "core/bfs.hpp"
#include "core/engine_common.hpp"
#include "core/frontier.hpp"
#include "core/frontier_compact.hpp"
#include "graph/csr_graph.hpp"
#include "graph/types.hpp"
#include "runtime/aligned_buffer.hpp"
#include "runtime/cacheline.hpp"

namespace sge {

class ThreadTeam;

/// Reusable, NUMA-aware BFS arena — the query-throughput mode's core.
///
/// One workspace serves one (graph size, engine, team) combination at a
/// time, owned by a BfsRunner. prepare() allocates every buffer a
/// traversal needs — parent/visited state, CQ/NQ frontier queues,
/// inter-socket channels, scheduler plans, per-thread staging — exactly
/// once, with first-touch initialisation performed by each owning
/// socket's pinned workers (the paper's placement rule: "if graph node
/// v ∈ socket s then both P[v] and Bitmap[v] ∈ socket s"). Back-to-back
/// queries then reset in O(touched): the visited/claim state is
/// epoch-versioned (VersionedBitmap), so a reset is an epoch bump, not
/// an O(n) memset.
///
/// All members are public engine-facing state, not a stable API: the
/// engines (bfs_naive/bitmap/multisocket/hybrid, multi_source_bfs) are
/// the only intended readers/writers, and prepare()/prepare_ms() are the
/// only entry points callers use.
class BfsWorkspace {
  public:
    BfsWorkspace() = default;
    BfsWorkspace(const BfsWorkspace&) = delete;
    BfsWorkspace& operator=(const BfsWorkspace&) = delete;

    /// Readies the workspace for one query of `engine` over `g` on
    /// `team`: (re)allocates + first-touches when the graph size,
    /// engine or team changed (stats.prepares), otherwise performs the
    /// cheap epoch-bump reset (stats.workspace_reuses). Also drains any
    /// residue an aborted previous run (watchdog, fault injection) left
    /// in queues or channels, so a failed query never poisons the next.
    void prepare(const CsrGraph& g, BfsEngine engine, const BfsOptions& options,
                 ThreadTeam& team);
    void prepare(const CompressedCsrGraph& g, BfsEngine engine,
                 const BfsOptions& options, ThreadTeam& team);
    void prepare(const PagedGraph& g, BfsEngine engine,
                 const BfsOptions& options, ThreadTeam& team);

    /// Readies the MS-BFS lane buffers (seen/frontier/next masks) and
    /// the dense-scan plan for one multi_source_bfs call on `team`.
    void prepare_ms(const CsrGraph& g, SchedulePolicy schedule,
                    ThreadTeam& team);
    void prepare_ms(const CompressedCsrGraph& g, SchedulePolicy schedule,
                    ThreadTeam& team);
    void prepare_ms(const PagedGraph& g, SchedulePolicy schedule,
                    ThreadTeam& team);

    // ---- engine-facing state ------------------------------------------

    /// Visited set (bitmap/multisocket/hybrid engines).
    VersionedBitmap visited;

    /// Frontier-as-bitmap pair (hybrid engine only).
    VersionedBitmap frontier_bits[2];

    /// Naive engine's claim array: word v packs `epoch (high 32) |
    /// parent (low 32)`; a stale stamp means unclaimed. Mirrors the
    /// bitmap's epoch trick at per-vertex granularity so Algorithm 1
    /// keeps its one-atomic-per-edge character without an O(n) reset.
    AlignedBuffer<std::atomic<std::uint64_t>> claim;
    std::uint32_t claim_epoch = 0;

    /// Global CQ/NQ pair (naive/bitmap/hybrid engines).
    FrontierQueue queues[2];

    /// Per-socket CQ/NQ pairs, socket_queues[phase][socket]
    /// (multisocket engine).
    std::vector<FrontierQueue> socket_queues[2];

    /// Inter-socket channels, one per owner socket (multisocket).
    std::vector<std::unique_ptr<Channel<std::uint64_t, kEmptyVisit>>> channels;

    /// Frontier scheduler (naive/bitmap/hybrid) and the hybrid's
    /// whole-vertex-range scheduler with its cut-once flag.
    std::unique_ptr<WorkQueue> wq;
    std::unique_ptr<WorkQueue> range_wq;
    bool range_planned = false;

    /// Per-socket frontier schedulers (multisocket).
    std::vector<std::unique_ptr<WorkQueue>> socket_wqs;

    /// Socket-local worker ranks: rank_in_socket[tid] and
    /// socket_threads[socket] (first-touch splits + multisocket claims).
    std::vector<int> rank_in_socket;
    std::vector<int> socket_threads;

    /// Per-thread staging hoisted out of the engines' level loops so a
    /// prepared traversal is allocation-free (asserted in debug builds
    /// via aligned_alloc_count()).
    struct alignas(kCacheLineSize) ThreadScratch {
        LocalBatch<vertex_t> staged{0};               ///< NQ staging
        std::vector<LocalBatch<std::uint64_t>> remote;  ///< per-socket tuples
        AlignedBuffer<std::uint64_t> drain;           ///< channel drain buffer
    };
    std::vector<ThreadScratch> scratch;

    /// Atomic-free frontier-generation arena (FrontierGen::kCompact):
    /// per-thread discovery buffers plus the published counts the
    /// exclusive prefix sum runs over, reused across levels and queries.
    /// Unconfigured (empty) when the runner uses FrontierGen::kAtomic.
    FrontierCompactor compactor;

    /// Per-level stats slots, reused across queries (acquire_level_slot).
    detail::LevelAccumLog accum;

    // ---- MS-BFS lane state (multi_source_bfs) -------------------------

    AlignedBuffer<std::atomic<std::uint64_t>> ms_seen;
    AlignedBuffer<std::uint64_t> ms_frontier;
    AlignedBuffer<std::atomic<std::uint64_t>> ms_next;
    std::unique_ptr<WorkQueue> ms_wq;
    bool ms_planned = false;

    /// Lifetime counters (prepares / reuses / reset words).
    BfsWorkspaceStats stats;

  private:
    // Backend-generic bodies behind the prepare()/prepare_ms() overload
    // pairs (defined in bfs_workspace.cpp — legal because the overloads
    // there are the only instantiation points). Either backend's
    // offsets-array address serves as the graph identity tag.
    template <class Graph>
    void prepare_impl(const Graph& g, BfsEngine engine,
                      const BfsOptions& options, ThreadTeam& team);
    template <class Graph>
    void prepare_ms_impl(const Graph& g, SchedulePolicy schedule,
                         ThreadTeam& team);

    void allocate(vertex_t n, BfsEngine engine, const BfsOptions& options,
                  ThreadTeam& team);
    void first_touch(BfsEngine engine, ThreadTeam& team);
    void reset_for_query(BfsEngine engine);
    void note_graph(const void* offsets, vertex_t n, std::uint64_t m);

    // Identity of the last-prepared configuration. prepared_n_ is
    // poisoned (kInvalidVertex) while allocate() is in flight so a
    // fault-injected partial allocation forces a clean retry.
    vertex_t prepared_n_ = kInvalidVertex;
    BfsEngine prepared_engine_ = BfsEngine::kAuto;
    int prepared_threads_ = 0;
    FrontierGen prepared_gen_ = FrontierGen::kAtomic;

    // Identity of the last-seen graph (offsets pointer + sizes): a swap
    // at equal n keeps the buffers but invalidates degree-derived plans.
    const void* tag_offsets_ = nullptr;
    vertex_t tag_n_ = 0;
    std::uint64_t tag_m_ = 0;

    // MS-BFS plan identity.
    vertex_t ms_n_ = kInvalidVertex;
    int ms_threads_ = 0;
    SchedulePolicy ms_schedule_ = SchedulePolicy::kStatic;
};

}  // namespace sge
