#!/usr/bin/env python3
"""Check markdown cross-references in this repo's documentation.

Usage:
    python3 tools/check_doc_links.py FILE_OR_DIR [...]

For every markdown file given (directories are scanned for *.md), the
script extracts inline links and images (`[text](target)`) and verifies:

  * relative file targets exist on disk (resolved against the linking
    file's directory; external http(s)/mailto targets are skipped),
  * `#anchor` fragments — both intra-document and cross-document —
    resolve to a heading in the target file, using GitHub's slugging
    rules (lowercase, punctuation stripped, spaces to hyphens, `-N`
    suffixes for duplicates).

Exits non-zero and prints one line per dangling link — made for CI.
"""

import pathlib
import re
import sys

LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
CODE_FENCE_RE = re.compile(r"^(```|~~~)")


def slugify(heading, seen):
    """GitHub-style anchor for a heading line."""
    # Strip inline code/emphasis markers and links before slugging.
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", heading)
    text = re.sub(r"[`*_]", "", text)
    slug = "".join(c for c in text.lower() if c.isalnum() or c in " -")
    slug = slug.replace(" ", "-")
    if slug in seen:
        seen[slug] += 1
        return f"{slug}-{seen[slug]}"
    seen[slug] = 0
    return slug


def parse(path):
    """Returns (anchors, links) for one markdown file; links are
    (line_number, raw_target) with code fences skipped."""
    anchors = set()
    links = []
    seen = {}
    in_fence = False
    for lineno, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1):
        if CODE_FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        m = HEADING_RE.match(line)
        if m:
            anchors.add(slugify(m.group(2), seen))
        for link in LINK_RE.findall(line):
            links.append((lineno, link))
    return anchors, links


def main(argv):
    files = []
    for arg in argv[1:]:
        p = pathlib.Path(arg)
        if p.is_dir():
            files.extend(sorted(p.glob("*.md")))
        elif p.exists():
            files.append(p)
        else:
            print(f"check_doc_links: no such file: {arg}", file=sys.stderr)
            return 2
    if not files:
        print(__doc__.strip(), file=sys.stderr)
        return 2

    parsed = {p.resolve(): parse(p) for p in files}
    errors = []
    for path in files:
        _, links = parsed[path.resolve()]
        for lineno, target in links:
            if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # http:, mailto:
                continue
            where = f"{path}:{lineno}"
            base, _, fragment = target.partition("#")
            dest = path.resolve() if not base else \
                (path.parent / base).resolve()
            if base and not dest.exists():
                errors.append(f"{where}: broken link target: {target}")
                continue
            if not fragment:
                continue
            if dest.suffix != ".md":
                continue  # anchors into non-markdown files: not checked
            if dest not in parsed:
                parsed[dest] = parse(dest)
            anchors, _ = parsed[dest]
            if fragment.lower() not in anchors:
                errors.append(f"{where}: dangling anchor: {target}")
        print(f"  [{'ok' if not any(e.startswith(str(path) + ':') for e in errors) else 'FAIL'}] "
              f"{path} ({len(links)} links)")
    for e in errors:
        print(f"check_doc_links: {e}", file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
