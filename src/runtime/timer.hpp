#pragma once

#include <chrono>
#include <cstdint>

namespace sge {

/// Monotonic wall-clock timer used by every benchmark and by the BFS
/// engines' per-level timing. Nanosecond resolution via steady_clock.
class WallTimer {
  public:
    WallTimer() : start_(clock::now()) {}

    /// Restarts the timer.
    void reset() noexcept { start_ = clock::now(); }

    /// Seconds elapsed since construction or the last reset().
    [[nodiscard]] double seconds() const noexcept {
        return std::chrono::duration<double>(clock::now() - start_).count();
    }

    /// Nanoseconds elapsed since construction or the last reset().
    [[nodiscard]] std::uint64_t nanoseconds() const noexcept {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() - start_)
                .count());
    }

  private:
    using clock = std::chrono::steady_clock;
    clock::time_point start_;
};

}  // namespace sge
