#include <atomic>
#include <cassert>

#include "concurrency/spin_barrier.hpp"
#include "concurrency/versioned_bitmap.hpp"
#include "core/bfs_workspace.hpp"
#include "core/engine_common.hpp"
#include "core/frontier.hpp"
#include "graph/csr_compressed.hpp"
#include "graph/paged_graph.hpp"
#include "graph/partition.hpp"
#include "runtime/prefetch.hpp"
#include "runtime/timer.hpp"

namespace sge::detail {

namespace {

/// Algorithm 2: single-socket parallel BFS with the paper's first two
/// optimizations.
///
///  1. The visited set lives in a bitmap, shrinking the randomly-
///     accessed working set versus the parent array — Figure 2 shows
///     this buys >=4x in raw random-read rate. (The workspace's
///     epoch-versioned bitmap packs 32 payload bits per word; still
///     well inside the cache levels the parent array overflows.)
///  2. Double-checked test-and-set: a plain load filters the vertices
///     that are already visited before paying the `lock or` (Figure 4:
///     in late levels nearly all checks are filtered). The bit may flip
///     between test and test_and_set, so the atomic still arbitrates the
///     winner; correctness never depends on the plain load.
///
/// Queue accesses are batched (chunked dequeue, local staging buffers)
/// so the shared cursors are touched once per chunk instead of once per
/// vertex.
template <class Graph>
void bfs_bitmap_impl(const Graph& g, vertex_t root, const BfsOptions& options,
                     ThreadTeam& team, BfsWorkspace& ws, BfsResult& result) {
    check_root(g, root);
    const vertex_t n = g.num_vertices();
    const int threads = team.size();
    const int sockets = team.sockets_used();
    const std::size_t chunk = options.chunk_size < 1 ? 1 : options.chunk_size;
    const SocketPartition partition(n, sockets);

    reset_result(result, n, options.compute_levels);

    VersionedBitmap& bitmap = ws.visited;
    FrontierQueue* const queues = ws.queues;
    WorkQueue& wq = *ws.wq;
    // Compact frontier generation: discoveries stage in per-thread
    // buffers and land in NQ via prefix-sum copy-out instead of batched
    // push_batch reservations (docs/ALGORITHMS.md), deleting the
    // remaining one-fetch_add-per-64-vertices of queue contention.
    const bool compact = options.frontier_gen == FrontierGen::kCompact;
    FrontierCompactor& fc = ws.compactor;
    SpinBarrier barrier(threads);

    struct Shared {
        std::atomic<std::uint64_t> visited{0};
        std::atomic<std::uint64_t> edges{0};
        int current = 0;
        bool done = false;
        bool cancelled = false;  // written by tid 0 between barriers
        // Atomic so the watchdog may snapshot it mid-run.
        std::atomic<std::uint32_t> levels_run{0};
    } shared;

    LevelAccumLog& stats = ws.accum;
    acquire_level_slot(stats, 0).frontier_size = 1;

    vertex_t* const parent = result.parent.data();
    level_t* const level = options.compute_levels ? result.level.data() : nullptr;
    const bool double_check = options.bitmap_double_check;
    const bool collect = options.collect_stats;
    SpanRecorder spans(threads, collect);

    LevelWatchdog watchdog(resolve_watchdog_seconds(options), barrier, [&] {
        return "level=" +
               std::to_string(shared.levels_run.load(std::memory_order_relaxed)) +
               " q0=" + std::to_string(queues[0].size()) +
               " q1=" + std::to_string(queues[1].size()) + " visited=" +
               std::to_string(shared.visited.load(std::memory_order_relaxed));
    });

#ifndef NDEBUG
    const std::uint64_t allocs_before =
        aligned_alloc_count().load(std::memory_order_relaxed);
#endif
    WallTimer timer;
    team.run([&](int tid) {
        // No init pass: the workspace's epoch bump already cleared the
        // bitmap; unreached parent/level slots are filled post-run.
        if (tid == 0) {
            bitmap.test_and_set(root);
            parent[root] = root;
            if (level != nullptr) level[root] = 0;
            queues[0].push_one(root);
            shared.visited.fetch_add(1, std::memory_order_relaxed);
            plan_frontier(wq, queues[0].data(), queues[0].size(), g,
                          options.schedule, chunk);
        }
        if (!barrier.arrive_and_wait()) return;

        LocalBatch<vertex_t>& staged =
            ws.scratch[static_cast<std::size_t>(tid)].staged;
        vertex_t* const cbuf = compact ? fc.buffer(tid) : nullptr;
        level_t depth = 0;
        std::uint64_t total_edges = 0;
        std::uint64_t discovered = 0;
        WallTimer level_timer;  // tid 0 stamps per-level wall time
        for (;;) {
            const std::uint64_t span_start = spans.now(timer);
            const int cur = shared.current;
            FrontierQueue& cq = queues[cur];
            FrontierQueue& nq = queues[1 - cur];
            ThreadCounters counters;
            // Deque slots never relocate, so the reference stays valid
            // across tid 0's acquire between the two barriers.
            LevelAccum& slot = stats[depth];

            std::size_t begin = 0;
            std::size_t end = 0;
            std::size_t staged_count = 0;  // compact-mode discoveries
            WorkQueue::Claim cl;
            while ((cl = wq.claim(tid, begin, end)) != WorkQueue::Claim::kNone) {
                counters.count_chunk(cl == WorkQueue::Claim::kStolen);
                for (std::size_t i = begin; i < end; ++i) {
                    const vertex_t u = cq[i];
                    // Keep the next vertex's adjacency metadata in
                    // flight while scanning this one (Section III's
                    // decoupling of computation and memory requests).
                    if (i + 1 < end) g.prefetch_adjacency(cq[i + 1]);
                    scan_adjacency(
                        g, u, counters,
                        [&](vertex_t w) {
                            prefetch_read(bitmap.word_addr(w));
                        },
                        [&](vertex_t v) {
                            ++counters.bitmap_checks;
                            if (double_check && bitmap.test(v)) {
                                counters.count_skip();
                                return;
                            }
                            ++counters.atomic_ops;
                            if (bitmap.test_and_set(v)) return;
                            counters.count_win();
                            parent[v] = u;  // winner-only plain store
                            if (level != nullptr) level[v] = depth + 1;
                            ++discovered;
                            if (compact) {
                                cbuf[staged_count++] = v;  // plain store
                            } else if (staged.push(v)) {
                                nq.push_batch(staged.data(), staged.size());
                                staged.clear();
                            }
                        });
                }
            }
            if (compact) {
                fc.publish(tid, staged_count);
            } else if (!staged.empty()) {
                nq.push_batch(staged.data(), staged.size());
                staged.clear();
            }
            total_edges += counters.edges_scanned;
            counters.flush_into(slot);
            if (!timed_wait(barrier, slot, collect)) return;

            if (compact) {
                // Prefix-sum copy-out into NQ (counts barrier-ordered);
                // extra barrier so tid 0's set_size sees every segment.
                compact_copy_out(fc, tid, nq.slots_mut(), slot);
                if (!timed_wait(barrier, slot, collect)) return;
            }

            if (tid == 0) {
                slot.seconds = level_timer.seconds();
                level_timer.reset();
                cq.reset();
                if (compact) nq.set_size(fc.total());
                shared.current = 1 - cur;
                shared.done = nq.size() == 0;
                shared.levels_run.fetch_add(1, std::memory_order_relaxed);
                if (!shared.done && poll_cancel(options)) {
                    shared.cancelled = true;
                    shared.done = true;
                }
                if (!shared.done) {
                    acquire_level_slot(stats, depth + 1).frontier_size =
                        nq.size();
                    plan_frontier(wq, nq.data(), nq.size(), g,
                                  options.schedule, chunk);
                    prefetch_next_frontier(g, nq.data(), nq.size());
                }
            }
            if (!timed_wait(barrier, slot, collect)) return;
            spans.record(tid, depth, span_start, spans.now(timer));
            if (shared.done) break;
            ++depth;
        }

        // Unreached sentinels for this socket's slice (replaces the old
        // pre-init pass; writes only unvisited slots).
        {
            const int my = team.socket_of(tid);
            const auto [lo, hi] = partition.range(my);
            const auto [b, e] = split_range(
                hi - lo, ws.socket_threads[static_cast<std::size_t>(my)],
                ws.rank_in_socket[static_cast<std::size_t>(tid)]);
            fill_unreached(bitmap, lo + b, lo + e, parent, level);
        }

        shared.edges.fetch_add(total_edges, std::memory_order_relaxed);
        shared.visited.fetch_add(discovered, std::memory_order_relaxed);
    }, &barrier);
#ifndef NDEBUG
    // A prepared workspace makes the traversal allocation-free.
    assert(aligned_alloc_count().load(std::memory_order_relaxed) ==
           allocs_before);
#endif
    const std::uint32_t levels = shared.levels_run.load(std::memory_order_relaxed);
    finish_watchdog(watchdog, "bfs_bitmap", levels,
                    shared.visited.load(std::memory_order_relaxed));
    if (shared.cancelled)
        throw_cancelled("bfs_bitmap", levels,
                        shared.visited.load(std::memory_order_relaxed));
    result.seconds = timer.seconds();
    spans.collect_into(result);

    result.vertices_visited = shared.visited.load(std::memory_order_relaxed);
    result.edges_traversed = shared.edges.load(std::memory_order_relaxed);
    result.num_levels = levels;
    if (options.collect_stats) copy_level_stats(result, stats, levels);
}

}  // namespace

void bfs_bitmap(const CsrGraph& g, vertex_t root, const BfsOptions& options,
                ThreadTeam& team, BfsWorkspace& ws, BfsResult& result) {
    bfs_bitmap_impl(g, root, options, team, ws, result);
}

void bfs_bitmap(const CompressedCsrGraph& g, vertex_t root,
                const BfsOptions& options, ThreadTeam& team, BfsWorkspace& ws,
                BfsResult& result) {
    bfs_bitmap_impl(g, root, options, team, ws, result);
}

void bfs_bitmap(const PagedGraph& g, vertex_t root, const BfsOptions& options,
                ThreadTeam& team, BfsWorkspace& ws, BfsResult& result) {
    bfs_bitmap_impl(g, root, options, team, ws, result);
}

}  // namespace sge::detail
