#pragma once

#include <atomic>
#include <cstddef>
#include <mutex>
#include <vector>

#include "concurrency/spsc_ring.hpp"
#include "concurrency/ticket_lock.hpp"
#include "runtime/fault.hpp"

namespace sge {

/// Inter-socket communication channel: the paper's composition of a
/// FastForward SPSC ring with a Ticket Lock on each side ("the remote
/// channel is implemented as a FastForward queue where both producers
/// and consumers are protected on their respective side by a Ticket
/// Lock", Section III). Many producers (all workers of the *other*
/// sockets) and many consumers (workers of the owning socket) time-share
/// the two SPSC endpoints; batching amortises the lock acquisition so
/// the normalized cost per vertex stays tens of nanoseconds.
///
/// The BFS drains a channel only after a barrier, at which point the
/// ring is bounded by whatever fit; anything beyond ring capacity would
/// stall producers that cannot be allowed to block (the drain phase has
/// not started yet). push_batch therefore spills to an overflow vector
/// — still under the producer lock, so still race-free — and pop_batch
/// splices the spill back in after the ring runs dry. Channels never
/// lose or duplicate items and never deadlock regardless of sizing.
///
/// Ordering contract: items of a single push_batch are delivered in
/// order, but once the spill path engages, items from different batches
/// may be delivered out of global FIFO order (ring and spill drain
/// independently). The BFS drains a whole level as a set, so this is
/// free — callers needing strict FIFO must size the ring for their
/// worst case.
template <typename T, T Empty>
class Channel {
  public:
    explicit Channel(std::size_t ring_capacity) : ring_(ring_capacity) {}

    Channel(const Channel&) = delete;
    Channel& operator=(const Channel&) = delete;

    /// Producer side: enqueue `count` items. Never fails, never blocks
    /// on the consumer.
    ///
    /// Fault site `channel_push`: when armed and firing, the batch
    /// bypasses the ring entirely and goes to the spill vector — the
    /// exact path a full ring takes, exercised on demand. No item is
    /// ever lost either way.
    void push_batch(const T* items, std::size_t count) {
        std::lock_guard guard(producer_lock_);
        std::size_t i = 0;
        if (!fault::should_fire(fault::Site::kChannelPush)) [[likely]]
            while (i < count && ring_.try_push(items[i])) ++i;
        if (i < count) spill_.insert(spill_.end(), items + i, items + count);
        pushed_.fetch_add(count, std::memory_order_relaxed);
    }

    /// Consumer side: dequeue up to `max` items into `out`; returns the
    /// number dequeued. Returns 0 only when the channel is drained (with
    /// respect to all push_batch calls that happened-before, e.g. across
    /// a barrier).
    ///
    /// Fault site `channel_pop`: when armed and firing, the drain is
    /// throttled to a single item — a delayed-drain consumer. Callers
    /// loop until 0, so throttling slows them down without dropping or
    /// reordering anything they would not already tolerate.
    std::size_t pop_batch(T* out, std::size_t max) {
        if (max > 1 && fault::should_fire(fault::Site::kChannelPop)) max = 1;
        std::lock_guard guard(consumer_lock_);
        std::size_t n = ring_.pop_bulk(out, max);
        if (n == max) {
            popped_.fetch_add(n, std::memory_order_relaxed);
            return n;
        }
        // Ring dry: splice any spilled items into the consumer-side
        // pending buffer. Lock order is always consumer -> producer.
        if (pending_cursor_ >= pending_.size()) {
            pending_.clear();
            pending_cursor_ = 0;
            std::lock_guard pguard(producer_lock_);
            pending_.swap(spill_);
        }
        while (n < max && pending_cursor_ < pending_.size())
            out[n++] = pending_[pending_cursor_++];
        popped_.fetch_add(n, std::memory_order_relaxed);
        return n;
    }

    /// Total items ever pushed/popped. Exact while quiescent (the BFS
    /// uses these after barriers for termination accounting); safe to
    /// read concurrently for diagnostics (watchdog reports), where they
    /// are merely a momentary snapshot.
    [[nodiscard]] std::size_t pushed() const noexcept {
        return pushed_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::size_t popped() const noexcept {
        return popped_.load(std::memory_order_relaxed);
    }

    /// True when every push has been consumed. Exact only while both
    /// sides are quiescent, or for the consumer whose pop_batch just
    /// returned 0 with producers quiescent (the consumer lock orders
    /// that 0-return after every counted pop) — how the BFS asserts the
    /// level's final partial batches were not left behind.
    [[nodiscard]] bool drained() const noexcept { return popped() == pushed(); }

    [[nodiscard]] std::size_t ring_capacity() const noexcept {
        return ring_.capacity();
    }

  private:
    SpscRing<T, Empty> ring_;
    TicketLock producer_lock_;
    TicketLock consumer_lock_;
    std::vector<T> spill_;         // guarded by producer_lock_
    std::vector<T> pending_;       // guarded by consumer_lock_
    std::size_t pending_cursor_ = 0;  // guarded by consumer_lock_
    // Atomic (not lock-guarded) so diagnostics may snapshot them while
    // workers are mid-level; writers still hold the respective lock.
    std::atomic<std::size_t> pushed_{0};
    std::atomic<std::size_t> popped_{0};
};

}  // namespace sge
