#pragma once

// Request/result vocabulary of the concurrent query service
// (service/graph_service.hpp). Kept separate so tests and benches can
// name outcomes without pulling in the service machinery.

#include <chrono>
#include <cstdint>
#include <future>
#include <string>
#include <vector>

#include "concurrency/cancel_token.hpp"
#include "graph/types.hpp"
#include "stream/versioned_store.hpp"

namespace sge::service {

/// What a pending request asks the service to do. Queries run a BFS
/// against the current (or, store-backed, a pinned) graph; mutations
/// apply a MutationBatch to the backing VersionedGraphStore and
/// publish the next snapshot version.
enum class RequestKind : std::uint8_t { kQuery, kMutation };

/// Terminal state of one submitted query. Every submit() resolves to
/// exactly one of these — the service never loses a request.
enum class Outcome {
    /// Answered by a parallel engine or an MS-BFS wave.
    kCompleted,
    /// The parallel attempt threw (injected fault, allocation failure,
    /// watchdog); the serial retry answered. The result is still a
    /// correct BFS — only slower.
    kDegraded,
    /// The per-request deadline fired before an answer was produced
    /// (includes requests cancelled by a shutdown drain).
    kCancelled,
    /// Rejected at admission: the bounded queue was full (backpressure)
    /// or the service was stopping. Resolved immediately at submit().
    kShed,
    /// Both the parallel attempt and the serial retry threw something
    /// other than a deadline. Should not occur in practice — the serial
    /// engine has no injected fault sites — but the enum is total so
    /// callers never hang on an unresolved future.
    kFailed,
};

[[nodiscard]] inline const char* to_string(Outcome o) noexcept {
    switch (o) {
        case Outcome::kCompleted: return "completed";
        case Outcome::kDegraded: return "degraded";
        case Outcome::kCancelled: return "cancelled";
        case Outcome::kShed: return "shed";
        case Outcome::kFailed: return "failed";
    }
    return "unknown";
}

/// One single-source BFS query.
struct QueryRequest {
    vertex_t root = 0;
    /// Per-request deadline in seconds from submit; <= 0 means "the
    /// service default" (ServiceOptions::default_deadline_seconds, which
    /// itself may be "none").
    double deadline_seconds = 0.0;
};

/// Answer to one query. The service computes hop distances, not parent
/// trees: batched requests ride an MS-BFS wave, which produces levels
/// per lane, and BFS levels are unique for a (graph, root) pair —
/// making single-run and batched answers bit-comparable (parent trees
/// are not: any valid BFS tree may differ between engines).
struct QueryResult {
    Outcome outcome = Outcome::kFailed;
    vertex_t root = 0;

    /// Hop distance per vertex (kInvalidLevel = unreached). Empty for
    /// kCancelled / kShed / kFailed.
    std::vector<level_t> level;

    std::uint64_t vertices_visited = 0;
    std::uint32_t num_levels = 0;

    /// True when the answer came from a coalesced MS-BFS wave.
    bool batched = false;

    /// Store-backed services only: for queries, the version of the
    /// pinned snapshot the answer was computed on (the staleness window
    /// at resolution is store.version() - snapshot_version); for
    /// mutations, the version this batch published. 0 for a service
    /// over a static CsrGraph.
    std::uint64_t snapshot_version = 0;

    /// Partial progress of a cancelled run (BfsDeadlineError passthrough;
    /// zero otherwise).
    std::uint32_t level_reached = 0;
    std::uint64_t vertices_settled = 0;

    /// Time spent queued before a worker picked the request up, and time
    /// spent executing (including any degraded retry). Shed requests
    /// have both ~0.
    double wait_seconds = 0.0;
    double run_seconds = 0.0;

    [[nodiscard]] double latency_seconds() const noexcept {
        return wait_seconds + run_seconds;
    }

    /// A resolution that carries a usable BFS answer.
    [[nodiscard]] bool answered() const noexcept {
        return outcome == Outcome::kCompleted || outcome == Outcome::kDegraded;
    }
};

/// What submit() hands back: `admitted` is the backpressure signal
/// (false = shed at the door), and `result` ALWAYS becomes ready —
/// shed requests resolve immediately with Outcome::kShed, so callers
/// can wait on every future they were given without tracking admission
/// separately.
struct SubmitResult {
    bool admitted = false;
    std::future<QueryResult> result;
};

/// A query sitting in the admission queue (service-internal, exposed
/// here so AdmissionQueue stays header-only and testable).
struct PendingQuery {
    using clock = CancelToken::clock;

    RequestKind kind = RequestKind::kQuery;
    QueryRequest request;
    /// The edge ops of a kMutation request (empty for queries).
    MutationBatch mutation;
    std::promise<QueryResult> promise;
    clock::time_point submitted{};
    /// Stamped by the worker that picked the batch up (wait vs run time
    /// split); a default value means "never dispatched" (shed / drained).
    clock::time_point dispatched{};
    /// Absolute deadline, valid when has_deadline.
    clock::time_point deadline{};
    bool has_deadline = false;
    /// Guards single resolution. Touched only by the owning worker (or
    /// by submit/stop before/after the queue hand-off), so plain bool.
    bool resolved = false;

    [[nodiscard]] bool expired(clock::time_point now) const noexcept {
        return has_deadline && now >= deadline;
    }
};

}  // namespace sge::service
