#include <gtest/gtest.h>

#include <map>
#include <mutex>
#include <vector>

#include "analytics/betweenness.hpp"
#include "analytics/closeness.hpp"
#include "core/bfs.hpp"
#include "core/msbfs.hpp"
#include "gen/uniform.hpp"
#include "graph/builder.hpp"
#include "test_util.hpp"

namespace sge {
namespace {

BetweennessOptions unnormalized() {
    BetweennessOptions opts;
    opts.normalize = false;
    return opts;
}

// ---------- Brandes betweenness ----------

TEST(Betweenness, PathGraphExactScores) {
    // Path 0-1-2-3-4: interior vertices carry {3, 4, 3} pair paths.
    const CsrGraph g = test::path_graph(5);
    const auto bc = betweenness_centrality(g, unnormalized());
    ASSERT_EQ(bc.size(), 5u);
    EXPECT_DOUBLE_EQ(bc[0], 0.0);
    EXPECT_DOUBLE_EQ(bc[1], 3.0);
    EXPECT_DOUBLE_EQ(bc[2], 4.0);
    EXPECT_DOUBLE_EQ(bc[3], 3.0);
    EXPECT_DOUBLE_EQ(bc[4], 0.0);
}

TEST(Betweenness, StarCenterCarriesAllPairs) {
    const CsrGraph g = test::star_graph(20);
    const auto bc = betweenness_centrality(g, unnormalized());
    EXPECT_DOUBLE_EQ(bc[0], 19.0 * 18.0 / 2.0);
    for (vertex_t v = 1; v < 20; ++v) EXPECT_DOUBLE_EQ(bc[v], 0.0);
}

TEST(Betweenness, CycleIsUniform) {
    const CsrGraph g = test::cycle_graph(5);
    const auto bc = betweenness_centrality(g, unnormalized());
    for (vertex_t v = 0; v < 5; ++v) EXPECT_NEAR(bc[v], 1.0, 1e-12);
}

TEST(Betweenness, NormalizationScales) {
    const CsrGraph g = test::star_graph(20);
    BetweennessOptions opts;
    opts.normalize = true;
    const auto bc = betweenness_centrality(g, opts);
    EXPECT_NEAR(bc[0], 1.0, 1e-12);  // the star centre is maximal
}

TEST(Betweenness, ParallelMatchesSerial) {
    UniformParams params;
    params.num_vertices = 400;
    params.degree = 5;
    const CsrGraph g = csr_from_edges(generate_uniform(params));

    const auto serial = betweenness_centrality(g, unnormalized());
    BetweennessOptions par = unnormalized();
    par.threads = 4;
    par.topology = Topology::emulate(2, 2, 1);
    const auto parallel = betweenness_centrality(g, par);
    for (vertex_t v = 0; v < g.num_vertices(); ++v)
        ASSERT_NEAR(serial[v], parallel[v], 1e-6 + serial[v] * 1e-9)
            << "vertex " << v;
}

TEST(Betweenness, SampledEstimatorTracksExact) {
    // The star's contrast is extreme enough that even a small sample
    // must rank the centre far above every leaf.
    const CsrGraph g = test::star_graph(200);
    BetweennessOptions opts = unnormalized();
    opts.sample_sources = 20;
    opts.seed = 3;
    const auto bc = betweenness_centrality(g, opts);
    for (vertex_t v = 1; v < 200; ++v) ASSERT_GT(bc[0], 100.0 * (bc[v] + 1.0));
}

TEST(Betweenness, DisconnectedComponentsScoreIndependently) {
    const CsrGraph g = test::two_cliques(4);  // cliques: all distances 1
    const auto bc = betweenness_centrality(g, unnormalized());
    for (vertex_t v = 0; v < 8; ++v) EXPECT_DOUBLE_EQ(bc[v], 0.0);
}

TEST(Betweenness, EmptyGraph) {
    EXPECT_TRUE(betweenness_centrality(csr_from_edges(EdgeList(0))).empty());
}

// ---------- MS-BFS ----------

TEST(MsBfs, SingleSourceMatchesBfsLevels) {
    UniformParams params;
    params.num_vertices = 1000;
    params.degree = 4;
    const CsrGraph g = csr_from_edges(generate_uniform(params));

    std::vector<level_t> levels(g.num_vertices(), kInvalidLevel);
    const vertex_t sources[] = {17};
    multi_source_bfs(g, sources,
                     [&](int, level_t level, vertex_t v, std::uint64_t mask) {
                         ASSERT_EQ(mask, 1u);
                         levels[v] = level;
                     });

    BfsOptions serial;
    serial.engine = BfsEngine::kSerial;
    const BfsResult r = bfs(g, 17, serial);
    for (vertex_t v = 0; v < g.num_vertices(); ++v)
        ASSERT_EQ(levels[v], r.level[v]) << "vertex " << v;
}

TEST(MsBfs, SixtyFourLanesMatchIndividualTraversals) {
    UniformParams params;
    params.num_vertices = 2000;
    params.degree = 6;
    params.seed = 8;
    const CsrGraph g = csr_from_edges(generate_uniform(params));

    std::vector<vertex_t> sources;
    for (vertex_t s = 0; s < 64; ++s) sources.push_back(s * 31 % 2000);
    // Ensure distinct (31 and 2000 are coprime, so they are).

    // lane-major level matrix from MS-BFS.
    std::vector<std::vector<level_t>> ms(64,
        std::vector<level_t>(g.num_vertices(), kInvalidLevel));
    std::mutex mu;  // serialize: test clarity over speed
    multi_source_bfs(
        g, sources,
        [&](int, level_t level, vertex_t v, std::uint64_t mask) {
            std::lock_guard lock(mu);
            while (mask) {
                const int lane = __builtin_ctzll(mask);
                mask &= mask - 1;
                ms[static_cast<std::size_t>(lane)][v] = level;
            }
        },
        {.threads = 4, .topology = Topology::emulate(1, 4, 1)});

    BfsOptions serial;
    serial.engine = BfsEngine::kSerial;
    for (std::size_t lane = 0; lane < sources.size(); ++lane) {
        const BfsResult r = bfs(g, sources[lane], serial);
        for (vertex_t v = 0; v < g.num_vertices(); ++v)
            ASSERT_EQ(ms[lane][v], r.level[v])
                << "lane " << lane << " vertex " << v;
    }
}

TEST(MsBfs, RejectsBadBatches) {
    const CsrGraph g = test::path_graph(10);
    const auto visit = [](int, level_t, vertex_t, std::uint64_t) {};
    EXPECT_THROW(multi_source_bfs(g, {}, visit), std::invalid_argument);
    std::vector<vertex_t> too_many(65, 1);
    EXPECT_THROW(multi_source_bfs(g, too_many, visit), std::invalid_argument);
    const vertex_t dup[] = {3, 3};
    EXPECT_THROW(multi_source_bfs(g, dup, visit), std::invalid_argument);
    const vertex_t oob[] = {10};
    EXPECT_THROW(multi_source_bfs(g, oob, visit), std::out_of_range);
}

TEST(MsBfs, SharedFrontiersVisitEachVertexOncePerLane) {
    const CsrGraph g = test::two_cliques(10);
    const vertex_t sources[] = {0, 1, 10};  // two lanes left, one right
    std::map<std::pair<vertex_t, int>, int> seen;
    std::mutex mu;
    multi_source_bfs(g, sources,
                     [&](int, level_t, vertex_t v, std::uint64_t mask) {
                         std::lock_guard lock(mu);
                         while (mask) {
                             const int lane = __builtin_ctzll(mask);
                             mask &= mask - 1;
                             ++seen[{v, lane}];
                         }
                     });
    // Lanes 0,1 cover clique A (10 vertices each); lane 2 covers B.
    EXPECT_EQ(seen.size(), 30u);
    for (const auto& [key, count] : seen) EXPECT_EQ(count, 1);
}

// ---------- closeness ----------

TEST(Closeness, PathEndpointsAndMiddle) {
    const CsrGraph g = test::path_graph(5);
    const std::vector<vertex_t> sources = {0, 2};
    const auto scores = closeness_centrality(g, sources);
    ASSERT_EQ(scores.size(), 2u);
    EXPECT_EQ(scores[0].vertex, 0u);
    EXPECT_EQ(scores[0].reachable, 5u);
    EXPECT_EQ(scores[0].distance_sum, 10u);  // 1+2+3+4
    EXPECT_DOUBLE_EQ(scores[0].closeness(), 0.4);
    EXPECT_EQ(scores[1].distance_sum, 6u);  // 2+1+1+2
    EXPECT_GT(scores[1].closeness(), scores[0].closeness());
}

TEST(Closeness, StarCenterIsPerfect) {
    const CsrGraph g = test::star_graph(30);
    const std::vector<vertex_t> sources = {0};
    const auto scores = closeness_centrality(g, sources);
    EXPECT_DOUBLE_EQ(scores[0].closeness(), 1.0);
    EXPECT_DOUBLE_EQ(scores[0].lin_index(30), 1.0);
}

TEST(Closeness, ComponentLocalReachability) {
    const CsrGraph g = test::two_cliques(6);
    const std::vector<vertex_t> sources = {0, 7};
    const auto scores = closeness_centrality(g, sources);
    EXPECT_EQ(scores[0].reachable, 6u);
    EXPECT_EQ(scores[1].reachable, 6u);
    EXPECT_DOUBLE_EQ(scores[0].closeness(), 1.0);  // clique: all at dist 1
}

TEST(Closeness, BatchesBeyondSixtyFourSources) {
    UniformParams params;
    params.num_vertices = 500;
    params.degree = 5;
    const CsrGraph g = csr_from_edges(generate_uniform(params));
    std::vector<vertex_t> sources;
    for (vertex_t v = 0; v < 150; ++v) sources.push_back(v);

    ClosenessOptions opts;
    opts.threads = 3;
    opts.topology = Topology::emulate(1, 3, 1);
    const auto scores = closeness_centrality(g, sources, opts);
    ASSERT_EQ(scores.size(), 150u);

    // Spot-check a few against a plain BFS.
    BfsOptions serial;
    serial.engine = BfsEngine::kSerial;
    for (const std::size_t i : {0u, 64u, 149u}) {
        const BfsResult r = bfs(g, sources[i], serial);
        std::uint64_t sum = 0;
        std::uint64_t reach = 0;
        for (const level_t l : r.level) {
            if (l == kInvalidLevel) continue;
            sum += l;
            ++reach;
        }
        EXPECT_EQ(scores[i].distance_sum, sum) << "source " << i;
        EXPECT_EQ(scores[i].reachable, reach) << "source " << i;
    }
}

TEST(Closeness, DuplicateSourcesScoredIndependently) {
    const CsrGraph g = test::path_graph(6);
    const std::vector<vertex_t> sources = {2, 2, 2};
    const auto scores = closeness_centrality(g, sources);
    ASSERT_EQ(scores.size(), 3u);
    for (const auto& s : scores) {
        EXPECT_EQ(s.vertex, 2u);
        EXPECT_EQ(s.distance_sum, scores[0].distance_sum);
    }
}

TEST(Closeness, IsolatedSourceScoresZero) {
    const CsrGraph g = csr_from_edges(EdgeList(4));
    const std::vector<vertex_t> sources = {1};
    const auto scores = closeness_centrality(g, sources);
    EXPECT_EQ(scores[0].reachable, 1u);
    EXPECT_DOUBLE_EQ(scores[0].closeness(), 0.0);
    EXPECT_DOUBLE_EQ(scores[0].lin_index(4), 0.0);
}

}  // namespace
}  // namespace sge
