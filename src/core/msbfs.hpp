#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "core/bfs.hpp"
#include "graph/csr_graph.hpp"
#include "runtime/topology.hpp"

namespace sge {

class ThreadTeam;
class BfsWorkspace;

/// Discovery callback for multi_source_bfs. Invoked once per (vertex,
/// level) with a bitmask over the source batch: bit i set means
/// sources[i] first reaches `v` at distance `level`. May be called
/// concurrently from different workers (distinct vertices); `tid`
/// identifies the worker so callers can keep per-thread accumulators.
using MsBfsVisitor =
    std::function<void(int tid, level_t level, vertex_t v, std::uint64_t mask)>;

struct MsBfsOptions {
    int threads = 1;
    std::optional<Topology> topology;

    /// Query-throughput mode: run on an existing pinned team instead of
    /// spinning one up per call (when set, `threads`/`topology` are
    /// ignored — the team's shape wins).
    ThreadTeam* team = nullptr;

    /// Reuse a BfsRunner-owned workspace's MS-BFS lane buffers and
    /// dense-scan plan across calls (prepare_ms). Requires `team` (the
    /// buffers are first-touched/placed for that team's pinning). When
    /// null, per-call buffers are allocated as before.
    BfsWorkspace* workspace = nullptr;

    /// Scan-phase scheduling. kStatic keeps the legacy fixed per-thread
    /// vertex slices; the weighted policies claim degree-balanced chunks
    /// of [0, n) so one hub-heavy slice cannot stall the level barrier.
    /// The swap/report phase always uses fixed slices (each worker owns
    /// its frontier[] writes).
    SchedulePolicy schedule = SchedulePolicy::kEdgeWeighted;

    /// MS-BFS builds no vertex queues, so there are no enqueue atomics
    /// to delete — here the knob toggles the vectorized lane-mask scans
    /// (simd_scan.hpp): kCompact sweeps the frontier/next arrays a word
    /// (or four, under AVX2) at a time and block-swaps each worker's
    /// slice; kAtomic keeps the scalar per-vertex loops for ablation.
    /// The seen[] fetch_or discipline is identical in both modes.
    FrontierGen frontier_gen = FrontierGen::kCompact;

    /// Collect per-level counters into *level_stats. frontier_size
    /// counts vertices active in *any* lane; atomic_wins counts
    /// fetch_or calls that claimed at least one new lane (the n-1
    /// single-source invariant does not apply to a multi-source run).
    bool collect_stats = false;

    /// Where collect_stats writes its per-level counters (cleared and
    /// refilled on each call). Ignored when null or !collect_stats.
    std::vector<BfsLevelStats>* level_stats = nullptr;

    /// Optional cooperative cancellation (not owned; must outlive the
    /// call). Thread 0 polls once per level; a fired token ends the wave
    /// at the next level barrier and multi_source_bfs throws
    /// BfsDeadlineError with cancelled() == true. All lanes stop
    /// together — the service maps a cancelled wave back onto its member
    /// requests (expired members are cancelled, the rest retried).
    CancelToken* cancel = nullptr;
};

/// Bit-parallel multi-source BFS (the MS-BFS technique of Then et al.,
/// VLDB 2014): runs up to 64 traversals simultaneously, one bit lane per
/// source, sharing every adjacency scan among all sources whose
/// frontiers overlap. On small-world graphs frontiers overlap heavily,
/// so 64 traversals cost a small multiple of one — which is what makes
/// all-pairs-flavoured analytics (closeness, diameter sampling)
/// affordable on the paper's workloads.
///
/// Levels are synchronous across all lanes, computed with the same
/// frontier/next + fetch_or discipline as the paper's Algorithm 2.
/// Returns the number of levels executed (max over lanes).
/// Throws std::invalid_argument for > 64 or zero sources, or duplicate
/// source vertices; std::out_of_range for bad ids.
std::uint32_t multi_source_bfs(const CsrGraph& g,
                               std::span<const vertex_t> sources,
                               const MsBfsVisitor& visit,
                               const MsBfsOptions& options = {});

/// Compressed-backend overload: identical semantics, decoding each
/// adjacency row on the fly (BfsLevelStats::bytes_decoded/decode_ns
/// report the decode work when stats are collected).
std::uint32_t multi_source_bfs(const CompressedCsrGraph& g,
                               std::span<const vertex_t> sources,
                               const MsBfsVisitor& visit,
                               const MsBfsOptions& options = {});

/// Paged-backend overload: identical semantics over the semi-external
/// mapping. The lane frontier is a whole-graph bitmap, so the
/// frontier-ahead prefetcher does not apply; scans fault pages on
/// demand.
std::uint32_t multi_source_bfs(const PagedGraph& g,
                               std::span<const vertex_t> sources,
                               const MsBfsVisitor& visit,
                               const MsBfsOptions& options = {});

}  // namespace sge
