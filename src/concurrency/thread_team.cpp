#include "concurrency/thread_team.hpp"

#include <algorithm>

#include "runtime/affinity.hpp"

namespace sge {

ThreadTeam::ThreadTeam(int threads, Topology topo) : topo_(std::move(topo)) {
    const int n = std::max(1, threads);
    workers_.reserve(static_cast<std::size_t>(n));
    for (int t = 0; t < n; ++t)
        workers_.emplace_back([this, t] { worker_main(t); });
}

ThreadTeam::~ThreadTeam() {
    {
        std::lock_guard guard(mutex_);
        shutdown_ = true;
    }
    start_cv_.notify_all();
    for (auto& w : workers_) w.join();
}

void ThreadTeam::run(const std::function<void(int)>& fn) {
    std::unique_lock lock(mutex_);
    job_ = &fn;
    remaining_ = size();
    first_error_ = nullptr;
    ++epoch_;
    start_cv_.notify_all();
    done_cv_.wait(lock, [this] { return remaining_ == 0; });
    job_ = nullptr;
    if (first_error_) std::rethrow_exception(first_error_);
}

void ThreadTeam::worker_main(int tid) {
    pin_current_thread(topo_.cpu_of_thread(tid));

    std::uint64_t seen_epoch = 0;
    for (;;) {
        const std::function<void(int)>* job = nullptr;
        {
            std::unique_lock lock(mutex_);
            start_cv_.wait(lock, [&] { return shutdown_ || epoch_ != seen_epoch; });
            if (shutdown_) return;
            seen_epoch = epoch_;
            job = job_;
        }
        std::exception_ptr error;
        try {
            (*job)(tid);
        } catch (...) {
            error = std::current_exception();
        }
        {
            std::lock_guard guard(mutex_);
            if (error && !first_error_) first_error_ = error;
            if (--remaining_ == 0) done_cv_.notify_all();
        }
    }
}

}  // namespace sge
