#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "concurrency/spsc_ring.hpp"

namespace sge {
namespace {

constexpr std::uint64_t kEmpty = ~0ULL;
using Ring = SpscRing<std::uint64_t, kEmpty>;

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
    EXPECT_EQ(Ring(1).capacity(), 2u);
    EXPECT_EQ(Ring(2).capacity(), 2u);
    EXPECT_EQ(Ring(3).capacity(), 4u);
    EXPECT_EQ(Ring(1000).capacity(), 1024u);
}

TEST(SpscRing, StartsEmpty) {
    Ring ring(8);
    EXPECT_TRUE(ring.empty());
    EXPECT_FALSE(ring.try_pop().has_value());
}

TEST(SpscRing, FifoOrder) {
    Ring ring(16);
    for (std::uint64_t i = 0; i < 10; ++i) ASSERT_TRUE(ring.try_push(i * 7));
    for (std::uint64_t i = 0; i < 10; ++i) {
        const auto v = ring.try_pop();
        ASSERT_TRUE(v.has_value());
        EXPECT_EQ(*v, i * 7);
    }
    EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, PushFailsWhenFull) {
    Ring ring(4);
    for (std::uint64_t i = 0; i < 4; ++i) ASSERT_TRUE(ring.try_push(i));
    EXPECT_FALSE(ring.try_push(99));
    EXPECT_EQ(ring.try_pop().value(), 0u);
    EXPECT_TRUE(ring.try_push(99));  // slot freed
}

TEST(SpscRing, WrapsAroundManyTimes) {
    Ring ring(4);
    for (std::uint64_t i = 0; i < 1000; ++i) {
        ASSERT_TRUE(ring.try_push(i));
        ASSERT_EQ(ring.try_pop().value(), i);
    }
}

TEST(SpscRing, PopBulkDrains) {
    Ring ring(16);
    for (std::uint64_t i = 0; i < 10; ++i) ring.try_push(i);
    std::uint64_t out[16];
    EXPECT_EQ(ring.pop_bulk(out, 4), 4u);
    for (std::uint64_t i = 0; i < 4; ++i) EXPECT_EQ(out[i], i);
    EXPECT_EQ(ring.pop_bulk(out, 16), 6u);
    for (std::uint64_t i = 0; i < 6; ++i) EXPECT_EQ(out[i], i + 4);
    EXPECT_EQ(ring.pop_bulk(out, 16), 0u);
}

TEST(SpscRing, ProducerConsumerStressPreservesSequence) {
    Ring ring(64);
    constexpr std::uint64_t kCount = 200000;

    std::thread producer([&] {
        for (std::uint64_t i = 0; i < kCount; ++i) {
            while (!ring.try_push(i)) std::this_thread::yield();
        }
    });

    std::uint64_t expected = 0;
    bool ok = true;
    while (expected < kCount) {
        const auto v = ring.try_pop();
        if (!v) {
            std::this_thread::yield();
            continue;
        }
        if (*v != expected) {
            ok = false;
            break;
        }
        ++expected;
    }
    producer.join();
    EXPECT_TRUE(ok);
    EXPECT_EQ(expected, kCount);
}

TEST(SpscRing, BulkConsumerStress) {
    Ring ring(32);
    constexpr std::uint64_t kCount = 100000;

    std::thread producer([&] {
        for (std::uint64_t i = 0; i < kCount; ++i) {
            while (!ring.try_push(i)) std::this_thread::yield();
        }
    });

    std::uint64_t out[8];
    std::uint64_t expected = 0;
    bool ok = true;
    while (expected < kCount && ok) {
        const std::size_t k = ring.pop_bulk(out, 8);
        if (k == 0) {
            std::this_thread::yield();
            continue;
        }
        for (std::size_t j = 0; j < k; ++j) {
            if (out[j] != expected++) {
                ok = false;
                break;
            }
        }
    }
    producer.join();
    EXPECT_TRUE(ok);
    EXPECT_EQ(expected, kCount);
}

}  // namespace
}  // namespace sge
