// Ablation bench: frontier generation (BfsOptions::frontier_gen).
//
// The experiment behind docs/PERF_MODEL.md "Frontier generation": on an
// emulated 2-socket machine, sweep atomic / compact over the parallel
// engines on the paper's uniform and R-MAT workloads, and report
//
//   * the processing rate (the paper's metric),
//   * the compaction counters: prefix_sum_ns (copy-out wall time),
//     compact_writes (must sum to visited-1), simd_words_scanned,
//   * a correctness gate: both modes must produce identical level
//     arrays on every cell (the bench exits non-zero otherwise).
//
// A deterministic micro-measurement section prices the two designs'
// primitives — per-element fetch_add cost, per-element copy cost, and
// the barrier round-trip the compact path adds — and prints the modeled
// crossover frontier size quoted in docs/PERF_MODEL.md.
//
// With SGE_BENCH_JSON set the same cells land in
// BENCH_ablation_frontier.json (frontier_gen encoded 0=atomic,
// 1=compact); CI feeds that to check_bench_json.py --compare to keep
// compact from regressing against atomic.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "concurrency/spin_barrier.hpp"
#include "report.hpp"
#include "runtime/simd_scan.hpp"
#include "runtime/timer.hpp"

namespace {

using namespace sge;
using namespace sge::bench;

constexpr int kThreads = 8;
constexpr int kRuns = 3;

constexpr FrontierGen kModes[] = {FrontierGen::kAtomic, FrontierGen::kCompact};

int gen_code(FrontierGen gen) { return gen == FrontierGen::kCompact ? 1 : 0; }

struct Cell {
    double rate = 0.0;        // best edges/second over timed runs
    double prefix_ns = 0.0;   // summed prefix_sum_ns, from the best run
    double writes = 0.0;      // summed compact_writes
    double simd_words = 0.0;  // summed simd_words_scanned
    double barrier_ns = 0.0;  // summed barrier_wait_ns
    std::vector<level_t> levels;  // for the cross-mode identity gate
};

Cell measure(const CsrGraph& g, BfsEngine engine, FrontierGen gen,
             const Topology& topo) {
    BfsOptions options;
    options.engine = engine;
    options.threads = kThreads;
    options.topology = topo;
    options.frontier_gen = gen;
    options.collect_stats = obs::enabled();
    BfsRunner runner(options);

    // Fixed root: the identity gate compares level arrays across modes,
    // so every cell must traverse from the same source.
    vertex_t root = 0;
    while (root + 1 < g.num_vertices() && g.degree(root) == 0) ++root;

    (void)runner.run(g, root);  // warmup: page in the arrays
    Cell cell;
    for (int i = 0; i < kRuns; ++i) {
        const BfsResult r = runner.run(g, root);
        if (r.edges_per_second() > cell.rate) {
            cell.rate = r.edges_per_second();
            double prefix = 0.0;
            double writes = 0.0;
            double simd = 0.0;
            double barrier = 0.0;
            for (const BfsLevelStats& s : r.level_stats) {
                prefix += static_cast<double>(s.prefix_sum_ns);
                writes += static_cast<double>(s.compact_writes);
                simd += static_cast<double>(s.simd_words_scanned);
                barrier += static_cast<double>(s.barrier_wait_ns);
            }
            cell.prefix_ns = prefix;
            cell.writes = writes;
            cell.simd_words = simd;
            cell.barrier_ns = barrier;
        }
        if (i == 0) cell.levels = r.level;
    }
    return cell;
}

bool sweep(const char* workload, const CsrGraph& g, const Topology& topo,
           BenchReport& report) {
    std::printf("\nworkload: %s (%u vertices, %llu arcs)\n", workload,
                g.num_vertices(),
                static_cast<unsigned long long>(g.num_edges()));

    const std::pair<BfsEngine, const char*> engines[] = {
        {BfsEngine::kNaive, "naive"},
        {BfsEngine::kBitmap, "bitmap"},
        {BfsEngine::kMultiSocket, "multisocket"},
        {BfsEngine::kHybrid, "hybrid"},
    };

    bool ok = true;
    for (const auto& [engine, engine_name] : engines) {
        Table table({"frontier_gen", "rate", "vs atomic", "prefix-sum ms",
                     "writes", "simd words"});
        double atomic_rate = 0.0;
        std::vector<level_t> atomic_levels;
        for (const FrontierGen gen : kModes) {
            const Cell cell = measure(g, engine, gen, topo);
            if (gen == FrontierGen::kAtomic) {
                atomic_rate = cell.rate;
                atomic_levels = cell.levels;
            } else if (cell.levels != atomic_levels) {
                // The knob must be invisible in the output: identical
                // level arrays (parents may differ — any BFS tree wins
                // races differently — but distances never do).
                std::fprintf(stderr,
                             "FAIL: %s/%s level arrays differ between "
                             "atomic and compact modes\n",
                             engine_name, workload);
                ok = false;
            }
            table.add_row(
                {to_string(gen), fmt("%.1f ME/s", cell.rate / 1e6),
                 gen == FrontierGen::kAtomic
                     ? "-"
                     : fmt("%+.0f%%", 100.0 * (cell.rate / atomic_rate - 1.0)),
                 fmt("%.2f", cell.prefix_ns / 1e6), fmt("%.0f", cell.writes),
                 fmt("%.0f", cell.simd_words)});

            report.add(std::string(engine_name) + "_" + workload,
                       {{"threads", kThreads}, {"frontier_gen", gen_code(gen)}},
                       {{"edges_per_second", cell.rate},
                        {"prefix_sum_ns", cell.prefix_ns},
                        {"compact_writes", cell.writes},
                        {"simd_words_scanned", cell.simd_words},
                        {"barrier_wait_ns", cell.barrier_ns}});
        }
        std::printf("engine: %s\n", engine_name);
        table.print();
    }
    return ok;
}

// ---------------------------------------------------------------------
// Primitive costs and the modeled crossover (docs/PERF_MODEL.md).
//
//   T_atomic(F)  ~= (F / batch) * c_fa          queue-cursor fetch_adds
//   T_compact(F) ~= c_barrier + F * c_copy      one extra barrier + memcpy
//
// Crossover: F* = c_barrier / (c_fa / batch - c_copy). Below F* the
// atomic path's few fetch_adds are cheaper than a barrier round-trip;
// above it the contended cursor loses. Measured here so the numbers in
// the docs regenerate with the bench.
// ---------------------------------------------------------------------

void cost_model(BenchReport& report) {
    constexpr std::uint64_t kOps = 1 << 20;

    // c_fa, contended: all threads hammer one cache line, the
    // steady-state cost of a shared queue cursor.
    std::atomic<std::uint64_t> cursor{0};
    SpinBarrier barrier(kThreads);
    WallTimer timer;
    {
        std::vector<std::thread> workers;
        for (int t = 0; t < kThreads; ++t)
            workers.emplace_back([&] {
                barrier.arrive_and_wait();
                for (std::uint64_t i = 0; i < kOps / kThreads; ++i)
                    cursor.fetch_add(1, std::memory_order_acq_rel);
            });
        for (auto& w : workers) w.join();
    }
    const double c_fa = timer.seconds() * 1e9 / static_cast<double>(kOps);

    // c_copy: per-element cost of the compact path's staged memcpy.
    const std::size_t kElems = 1 << 22;
    std::vector<vertex_t> src(kElems, 7);
    std::vector<vertex_t> dst(kElems);
    timer.reset();
    std::memcpy(dst.data(), src.data(), kElems * sizeof(vertex_t));
    const double c_copy =
        timer.seconds() * 1e9 / static_cast<double>(kElems) +
        (dst[kElems / 2] == 7 ? 0.0 : 1.0);  // defeat dead-store elision

    // c_barrier: round-trip of the extra barrier the compact path adds
    // per level (kThreads waiters).
    constexpr int kRounds = 2000;
    SpinBarrier round(kThreads);
    timer.reset();
    {
        std::vector<std::thread> workers;
        for (int t = 0; t < kThreads; ++t)
            workers.emplace_back([&] {
                for (int i = 0; i < kRounds; ++i) round.arrive_and_wait();
            });
        for (auto& w : workers) w.join();
    }
    const double c_barrier = timer.seconds() * 1e9 / kRounds;

    // Crossover per engine class: the naive engine pays one fetch_add
    // per discovery (batch = 1); the batched engines amortize the
    // cursor over a 64-slot LocalBatch flush.
    const auto crossover_for = [&](double batch) {
        const double per_vertex = c_fa / batch;
        return per_vertex > c_copy ? c_barrier / (per_vertex - c_copy) : -1.0;
    };
    const double cross_naive = crossover_for(1.0);
    const double cross_batched = crossover_for(64.0);

    std::printf("\nprimitive costs (%d threads; oversubscribed hosts "
                "overstate c_barrier):\n", kThreads);
    Table table({"primitive", "cost"});
    table.add_row({"contended fetch_add (c_fa)", fmt("%.1f ns", c_fa)});
    table.add_row({"copy per vertex (c_copy)", fmt("%.2f ns", c_copy)});
    table.add_row({"barrier round-trip (c_barrier)",
                   fmt("%.0f ns", c_barrier)});
    table.add_row({"crossover F*, batch=1 (naive)",
                   cross_naive > 0.0 ? fmt("%.0f vertices", cross_naive)
                                     : "none (copy >= fetch_add)"});
    table.add_row({"crossover F*, batch=64 (batched)",
                   cross_batched > 0.0 ? fmt("%.0f vertices", cross_batched)
                                       : "none (copy >= amortized fetch_add)"});
    table.print();
    std::printf("simd dispatch: %s\n", to_string(simd::active_level()));

    // Schema forbids negative metrics: 0 encodes "no crossover" (the
    // copy outruns the amortized fetch_add at every frontier size).
    report.add("cost_model", {{"threads", kThreads}},
               {{"c_fa_ns", c_fa},
                {"c_copy_ns", c_copy},
                {"c_barrier_ns", c_barrier},
                {"crossover_naive_vertices", std::max(cross_naive, 0.0)},
                {"crossover_batched_vertices", std::max(cross_batched, 0.0)}});
}

}  // namespace

int main() {
    banner("Ablation: frontier generation (atomic / compact)",
           "prefix-sum compaction, docs/PERF_MODEL.md");

    // Two emulated sockets, 8 workers: enough claimants that the shared
    // queue cursor is contended and the per-socket group offsets of the
    // multisocket compactor are exercised.
    const Topology topo = Topology::emulate(2, 2, 2);
    std::printf("topology: %s, %d threads, %d timed runs per cell\n",
                topo.describe().c_str(), kThreads, kRuns);
    if (!obs::enabled() || !obs::compiled_in())
        std::printf("note: prefix-sum/writes/simd columns need an SGE_OBS "
                    "build with SGE_OBS != 0\n");

    BenchReport report("ablation_frontier", "frontier-generation ablation");
    report.set_topology(topo.describe());

    const std::uint64_t n = scaled(1 << 14);
    // Uniform: mid-size frontiers for many levels. R-MAT at arity 16:
    // two explosive levels where the queue cursor is hottest.
    const CsrGraph uniform = uniform_graph(n, 8 * n);
    const CsrGraph rmat = rmat_graph(n, 16 * n);
    report.set_workload("uniform+rmat", n);

    bool ok = sweep("uniform", uniform, topo, report);
    ok = sweep("rmat", rmat, topo, report) && ok;
    cost_model(report);

    report.write();
    return ok ? 0 : 1;
}
