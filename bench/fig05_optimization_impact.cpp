// Figure 5: "Impact of various optimizations" (Nehalem EP).
//
// Four algorithm variants over 1..16 threads on the emulated dual-socket
// EP, uniformly random graph:
//   base        — Algorithm 1 (shared queues, unconditional atomics)
//   +bitmap     — Algorithm 2 without the double-check (every visited
//                 test is a lock'ed RMW on the bitmap)
//   +doublecheck— full Algorithm 2
//   +channels   — Algorithm 3 (per-socket queues + batched channels)
//
// On real hardware the gaps widen with thread count and the channel
// variant is what keeps scaling past the socket boundary; on this
// 1-CPU container the per-edge instruction savings still separate the
// variants, while the thread axis shows overhead rather than speedup.

#include <cstdio>

#include "bench_util.hpp"
#include "report.hpp"

int main() {
    using namespace sge;
    using namespace sge::bench;

    banner("Figure 5: impact of the optimizations (uniform graph, EP model)",
           "Fig. 5");

    BenchReport report("fig05_optimization_impact", "Figure 5");
    report.set_topology(Topology::nehalem_ep().describe());
    report.set_workload("uniform", 1 << 16);

    const std::uint64_t n = scaled(1 << 16);
    const std::uint64_t m = 8 * n;
    const CsrGraph g = uniform_graph(n, m);
    std::printf("workload: uniform, %llu vertices, %llu edges (arity 8)\n\n",
                static_cast<unsigned long long>(n),
                static_cast<unsigned long long>(m));

    struct Variant {
        const char* label;
        const char* slug;  // series name in the JSON report
        BfsEngine engine;
        bool double_check;
    };
    const Variant variants[] = {
        {"base (Alg.1)", "base", BfsEngine::kNaive, true},
        {"+bitmap", "bitmap", BfsEngine::kBitmap, false},
        {"+double-check", "double_check", BfsEngine::kBitmap, true},
        {"+channels (Alg.3)", "channels", BfsEngine::kMultiSocket, true},
    };

    Table table({"threads", "base (Alg.1)", "+bitmap", "+double-check",
                 "+channels (Alg.3)"});
    for (const int threads : {1, 2, 4, 8, 16}) {
        std::vector<std::string> row{fmt_u64(threads)};
        for (const Variant& variant : variants) {
            BfsOptions options;
            options.engine = variant.engine;
            options.threads = threads;
            options.topology = Topology::nehalem_ep();
            options.bitmap_double_check = variant.double_check;
            const double rate = bfs_rate(g, options);
            report.add(variant.slug, {{"threads", threads}},
                       {{"edges_per_second", rate}});
            row.push_back(fmt("%.1f ME/s", rate / 1e6));
        }
        table.add_row(std::move(row));
    }
    table.print();
    report.write();

    std::printf(
        "\npaper's shape: each optimization adds a constant-factor gain; "
        "the channel\nvariant changes slope at the socket boundary (4->8 "
        "threads) instead of flattening.\n");
    return 0;
}
