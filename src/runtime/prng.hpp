#pragma once

#include <cstdint>

namespace sge {

/// SplitMix64: used to seed the main generator and as a cheap stateless
/// mixer. Reference: Steele, Lea, Flood — "Fast Splittable Pseudorandom
/// Number Generators", OOPSLA 2014 (public-domain reference code).
class SplitMix64 {
  public:
    explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

    constexpr std::uint64_t next() noexcept {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

  private:
    std::uint64_t state_;
};

/// xoshiro256**: the library-wide PRNG. Fast (sub-ns per draw), passes
/// BigCrush, and trivially seedable per thread — each worker gets an
/// independent stream by seeding from SplitMix64(seed ^ thread_id).
/// Graph generators depend on it being deterministic across platforms.
class Xoshiro256 {
  public:
    explicit constexpr Xoshiro256(std::uint64_t seed) noexcept : s_{0, 0, 0, 0} {
        SplitMix64 sm(seed);
        for (auto& w : s_) w = sm.next();
    }

    constexpr std::uint64_t next() noexcept {
        const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
        const std::uint64_t t = s_[1] << 17;
        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);
        return result;
    }

    /// Uniform integer in [0, bound). Lemire's multiply-shift rejection
    /// method; unbiased and branch-light.
    constexpr std::uint64_t next_below(std::uint64_t bound) noexcept {
        // For bound == 0 the contract is undefined; callers guard.
        __uint128_t m = static_cast<__uint128_t>(next()) * bound;
        auto lo = static_cast<std::uint64_t>(m);
        if (lo < bound) {
            const std::uint64_t threshold = (0 - bound) % bound;
            while (lo < threshold) {
                m = static_cast<__uint128_t>(next()) * bound;
                lo = static_cast<std::uint64_t>(m);
            }
        }
        return static_cast<std::uint64_t>(m >> 64);
    }

    /// Uniform double in [0, 1) with 53 bits of entropy.
    constexpr double next_double() noexcept {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    // UniformRandomBitGenerator interface, so <algorithm> shuffles work.
    using result_type = std::uint64_t;
    static constexpr result_type min() noexcept { return 0; }
    static constexpr result_type max() noexcept { return ~0ULL; }
    constexpr result_type operator()() noexcept { return next(); }

  private:
    static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
        return (x << k) | (x >> (64 - k));
    }
    std::uint64_t s_[4];
};

}  // namespace sge
