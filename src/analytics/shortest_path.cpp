#include "analytics/shortest_path.hpp"

#include <algorithm>
#include <stdexcept>

namespace sge {

std::optional<std::vector<vertex_t>> extract_path(const BfsResult& result,
                                                  vertex_t target) {
    if (target >= result.parent.size())
        throw std::out_of_range("extract_path: target out of range");
    if (result.parent[target] == kInvalidVertex) return std::nullopt;

    std::vector<vertex_t> path;
    vertex_t cur = target;
    for (;;) {
        path.push_back(cur);
        const vertex_t p = result.parent[cur];
        if (p == cur) break;  // reached the root
        if (p == kInvalidVertex || path.size() > result.parent.size())
            throw std::invalid_argument(
                "extract_path: corrupt parent array (broken chain or cycle)");
        cur = p;
    }
    std::reverse(path.begin(), path.end());
    return path;
}

std::optional<std::vector<vertex_t>> shortest_path(const CsrGraph& g,
                                                   vertex_t source,
                                                   vertex_t target,
                                                   const BfsOptions& options) {
    const BfsResult result = bfs(g, source, options);
    return extract_path(result, target);
}

}  // namespace sge
