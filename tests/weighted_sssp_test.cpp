#include <gtest/gtest.h>

#include "analytics/sssp.hpp"
#include "core/bfs.hpp"
#include "gen/rmat.hpp"
#include "gen/uniform.hpp"
#include "graph/builder.hpp"
#include "graph/weighted.hpp"
#include "test_util.hpp"

namespace sge {
namespace {

/// 0 --1-- 1 --1-- 2
///  \--5-------/        (direct 0-2 edge of weight 5)
WeightedCsrGraph diamond() {
    EdgeList edges(3);
    edges.add(0, 1);
    edges.add(1, 2);
    edges.add(0, 2);
    CsrGraph g = csr_from_edges(edges);
    // Hand-build weights matching the sorted CSR adjacency.
    AlignedBuffer<weight_t> w(static_cast<std::size_t>(g.num_edges()));
    for (vertex_t u = 0; u < 3; ++u) {
        const auto adj = g.neighbors(u);
        const auto base = g.offsets()[u];
        for (std::size_t i = 0; i < adj.size(); ++i) {
            const vertex_t v = adj[i];
            const bool direct02 = (u == 0 && v == 2) || (u == 2 && v == 0);
            w[base + i] = direct02 ? 5 : 1;
        }
    }
    return WeightedCsrGraph(std::move(g), std::move(w));
}

// ---------- WeightedCsrGraph ----------

TEST(WeightedGraph, WeightsAlignWithNeighbors) {
    const WeightedCsrGraph g = diamond();
    const auto adj = g.neighbors(0);
    const auto w = g.weights(0);
    ASSERT_EQ(adj.size(), w.size());
    for (std::size_t i = 0; i < adj.size(); ++i)
        EXPECT_EQ(w[i], adj[i] == 2 ? 5u : 1u);
}

TEST(WeightedGraph, RejectsMismatchedWeightCount) {
    CsrGraph g = test::path_graph(4);
    AlignedBuffer<weight_t> w(2);  // wrong: graph has 6 arcs
    EXPECT_THROW(WeightedCsrGraph(std::move(g), std::move(w)),
                 std::invalid_argument);
}

TEST(WeightedGraph, RandomWeightsAreSymmetricAndInRange) {
    UniformParams params;
    params.num_vertices = 500;
    params.degree = 6;
    const WeightedCsrGraph g = with_random_weights(
        csr_from_edges(generate_uniform(params)), 3, 17, 9);

    for (vertex_t u = 0; u < g.num_vertices(); ++u) {
        const auto adj = g.neighbors(u);
        const auto w = g.weights(u);
        for (std::size_t i = 0; i < adj.size(); ++i) {
            ASSERT_GE(w[i], 3u);
            ASSERT_LE(w[i], 17u);
            // Find the reverse arc and compare weights.
            const vertex_t v = adj[i];
            const auto radj = g.neighbors(v);
            const auto rw = g.weights(v);
            for (std::size_t j = 0; j < radj.size(); ++j) {
                if (radj[j] == u) {
                    ASSERT_EQ(w[i], rw[j])
                        << "asymmetric weight on edge " << u << "-" << v;
                    break;
                }
            }
        }
    }
}

TEST(WeightedGraph, RejectsInvertedRange) {
    EXPECT_THROW(
        with_random_weights(test::path_graph(3), 10, 5, 1),
        std::invalid_argument);
}

// ---------- Dijkstra ----------

TEST(Dijkstra, PrefersLongerCheaperPath) {
    const WeightedCsrGraph g = diamond();
    const SsspResult r = dijkstra(g, 0);
    EXPECT_EQ(r.distance[0], 0u);
    EXPECT_EQ(r.distance[1], 1u);
    EXPECT_EQ(r.distance[2], 2u);  // via 1, not the direct weight-5 edge
    EXPECT_EQ(r.parent[2], 1u);
    EXPECT_EQ(r.vertices_settled, 3u);
}

TEST(Dijkstra, UnreachableVerticesStayInfinite) {
    CsrGraph g = test::two_cliques(3);
    const WeightedCsrGraph wg = with_random_weights(std::move(g), 1, 5, 2);
    const SsspResult r = dijkstra(wg, 0);
    for (vertex_t v = 3; v < 6; ++v) {
        EXPECT_EQ(r.distance[v], kInfiniteDistance);
        EXPECT_EQ(r.parent[v], kInvalidVertex);
    }
}

TEST(Dijkstra, UnitWeightsReduceToBfsLevels) {
    UniformParams params;
    params.num_vertices = 1500;
    params.degree = 5;
    CsrGraph g = csr_from_edges(generate_uniform(params));

    BfsOptions serial;
    serial.engine = BfsEngine::kSerial;
    const BfsResult b = bfs(g, 7, serial);

    const WeightedCsrGraph wg = with_random_weights(std::move(g), 1, 1, 3);
    const SsspResult r = dijkstra(wg, 7);
    for (vertex_t v = 0; v < wg.num_vertices(); ++v) {
        if (b.level[v] == kInvalidLevel) {
            ASSERT_EQ(r.distance[v], kInfiniteDistance);
        } else {
            ASSERT_EQ(r.distance[v], b.level[v]) << "vertex " << v;
        }
    }
}

TEST(Dijkstra, OutOfRangeSourceThrows) {
    const WeightedCsrGraph g = diamond();
    EXPECT_THROW(dijkstra(g, 3), std::out_of_range);
}

TEST(Dijkstra, TreeEdgesSatisfyDistanceEquation) {
    RmatParams params;
    params.scale = 10;
    params.num_edges = 6000;
    const WeightedCsrGraph g = with_random_weights(
        csr_from_edges(generate_rmat(params)), 1, 100, 5);
    const SsspResult r = dijkstra(g, 0);
    for (vertex_t v = 0; v < g.num_vertices(); ++v) {
        if (v == 0 || r.parent[v] == kInvalidVertex) continue;
        const vertex_t p = r.parent[v];
        // distance[v] == distance[p] + w(p, v) for the tree edge.
        const auto adj = g.neighbors(p);
        const auto w = g.weights(p);
        bool found = false;
        for (std::size_t i = 0; i < adj.size(); ++i) {
            if (adj[i] == v && r.distance[p] + w[i] == r.distance[v]) {
                found = true;
                break;
            }
        }
        ASSERT_TRUE(found) << "vertex " << v;
    }
}

// ---------- delta-stepping ----------

class DeltaSteppingMatchesDijkstra
    : public ::testing::TestWithParam<weight_t> {};

TEST_P(DeltaSteppingMatchesDijkstra, OnRandomWeightedGraphs) {
    UniformParams params;
    params.num_vertices = 2000;
    params.degree = 6;
    const WeightedCsrGraph g = with_random_weights(
        csr_from_edges(generate_uniform(params)), 1, 50, 13);

    const SsspResult expected = dijkstra(g, 42);
    DeltaSteppingOptions opts;
    opts.delta = GetParam();
    const SsspResult actual = delta_stepping(g, 42, opts);

    ASSERT_EQ(expected.distance.size(), actual.distance.size());
    for (vertex_t v = 0; v < g.num_vertices(); ++v)
        ASSERT_EQ(expected.distance[v], actual.distance[v]) << "vertex " << v;
    EXPECT_EQ(expected.vertices_settled, actual.vertices_settled);
}

INSTANTIATE_TEST_SUITE_P(DeltaSweep, DeltaSteppingMatchesDijkstra,
                         ::testing::Values(0,   // auto (mean weight)
                                           1,   // Dijkstra-like buckets
                                           5, 25,
                                           1000  // Bellman-Ford-like
                                           ),
                         [](const auto& info) {
                             return info.param == 0
                                        ? std::string("auto")
                                        : "delta_" + std::to_string(info.param);
                         });

TEST(DeltaStepping, DiamondShortcut) {
    const WeightedCsrGraph g = diamond();
    const SsspResult r = delta_stepping(g, 0);
    EXPECT_EQ(r.distance[2], 2u);
    EXPECT_EQ(r.parent[2], 1u);
}

TEST(DeltaStepping, RmatWithHeavyTail) {
    RmatParams params;
    params.scale = 11;
    params.num_edges = 1 << 14;
    const WeightedCsrGraph g = with_random_weights(
        csr_from_edges(generate_rmat(params)), 1, 1000, 21);
    const SsspResult expected = dijkstra(g, 1);
    const SsspResult actual = delta_stepping(g, 1);
    for (vertex_t v = 0; v < g.num_vertices(); ++v)
        ASSERT_EQ(expected.distance[v], actual.distance[v]) << "vertex " << v;
}

TEST(DeltaStepping, SingleVertex) {
    CsrGraph g = csr_from_edges(EdgeList(1));
    const WeightedCsrGraph wg(std::move(g), AlignedBuffer<weight_t>(0));
    const SsspResult r = delta_stepping(wg, 0);
    EXPECT_EQ(r.distance[0], 0u);
    EXPECT_EQ(r.vertices_settled, 1u);
}

}  // namespace
}  // namespace sge
