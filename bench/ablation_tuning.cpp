// Ablation bench: the design choices DESIGN.md calls out, each swept in
// isolation on a fixed workload:
//
//   * channel batch size — Algorithm 3's batching optimization
//     ("rather than inserting at a granularity of a single vertex, each
//     thread batches a set of vertices to amortize the locking
//     overhead");
//   * current-queue chunk size — how many vertices a worker claims per
//     shared-cursor fetch_add;
//   * channel ring capacity — FastForward ring size before the spill
//     path engages;
//   * sender-side remote filter — consult the (remote) bitmap before
//     shipping a tuple; the paper deliberately does not, to keep random
//     reads socket-local.

#include <cstdio>

#include "bench_util.hpp"

namespace {

using namespace sge;
using namespace sge::bench;

BfsOptions base_options() {
    BfsOptions options;
    options.engine = BfsEngine::kMultiSocket;
    options.threads = 8;
    options.topology = Topology::nehalem_ep();
    return options;
}

void sweep_batch_size(const CsrGraph& g) {
    std::printf("(1) channel/queue batch size (default 64)\n");
    Table table({"batch", "rate", "vs batch=1"});
    double base_rate = 0.0;
    for (const std::size_t batch : {1u, 4u, 16u, 64u, 256u, 1024u}) {
        BfsOptions options = base_options();
        options.batch_size = batch;
        const double rate = bfs_rate(g, options);
        if (batch == 1) base_rate = rate;
        table.add_row({fmt_u64(batch), fmt("%.1f ME/s", rate / 1e6),
                       fmt("%.2fx", rate / base_rate)});
    }
    table.print();
}

void sweep_chunk_size(const CsrGraph& g) {
    std::printf("\n(2) frontier scan chunk size (default 128)\n");
    Table table({"chunk", "rate", "vs chunk=1"});
    double base_rate = 0.0;
    for (const std::size_t chunk : {1u, 8u, 32u, 128u, 512u}) {
        BfsOptions options = base_options();
        options.chunk_size = chunk;
        const double rate = bfs_rate(g, options);
        if (chunk == 1) base_rate = rate;
        table.add_row({fmt_u64(chunk), fmt("%.1f ME/s", rate / 1e6),
                       fmt("%.2fx", rate / base_rate)});
    }
    table.print();
}

void sweep_channel_capacity(const CsrGraph& g) {
    std::printf("\n(3) FastForward ring capacity (default 32768 entries)\n");
    Table table({"ring entries", "rate"});
    for (const std::size_t cap : {64u, 1024u, 32768u, 262144u}) {
        BfsOptions options = base_options();
        options.channel_capacity = cap;
        table.add_row({fmt_u64(cap),
                       fmt("%.1f ME/s", bfs_rate(g, options) / 1e6)});
    }
    table.print();
}

void sweep_remote_filter(const CsrGraph& g) {
    std::printf("\n(4) sender-side remote bitmap filter (paper: off)\n");
    Table table({"filter", "rate", "remote tuples shipped"});
    for (const bool filter : {false, true}) {
        BfsOptions options = base_options();
        options.remote_sender_filter = filter;
        options.collect_stats = true;
        BfsRunner runner(options);
        const BfsResult r = runner.run(g, 0);
        std::uint64_t shipped = 0;
        for (const auto& s : r.level_stats) shipped += s.remote_tuples;
        table.add_row({filter ? "on" : "off",
                       fmt("%.1f ME/s", bfs_rate(g, runner) / 1e6),
                       fmt_u64(shipped)});
    }
    table.print();
    std::printf(
        "on real NUMA hardware the filter's remote reads defeat the "
        "channels' purpose;\non a single-die host it only trades bitmap "
        "loads against channel volume.\n");
}

}  // namespace

int main() {
    banner("Ablations: batching, chunking, ring capacity, remote filter",
           "Section III design choices");

    const std::uint64_t n = scaled(1 << 16);
    const CsrGraph g = uniform_graph(n, 8 * n);
    std::printf("workload: uniform, %llu vertices, arity 8, Algorithm 3 on "
                "the EP model, 8 threads\n\n",
                static_cast<unsigned long long>(n));

    sweep_batch_size(g);
    sweep_chunk_size(g);
    sweep_channel_capacity(g);
    sweep_remote_filter(g);
    return 0;
}
