#include "analytics/closeness.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/msbfs.hpp"
#include "runtime/cacheline.hpp"

namespace sge {

std::vector<ClosenessScore> closeness_centrality(const CsrGraph& g,
                                                 std::span<const vertex_t> sources,
                                                 const ClosenessOptions& options) {
    for (const vertex_t s : sources)
        if (s >= g.num_vertices())
            throw std::out_of_range("closeness_centrality: source out of range");

    std::vector<ClosenessScore> results(sources.size());
    for (std::size_t i = 0; i < sources.size(); ++i)
        results[i].vertex = sources[i];

    const int threads = std::max(1, options.threads);

    // Greedy batching: up to 64 *distinct* vertices per MS-BFS run
    // (duplicate requests land in later batches and are scored
    // independently).
    std::vector<std::size_t> pending(sources.size());
    for (std::size_t i = 0; i < pending.size(); ++i) pending[i] = i;

    while (!pending.empty()) {
        std::vector<std::size_t> batch;       // indices into `sources`
        std::vector<vertex_t> batch_vertices;
        std::vector<std::size_t> postponed;
        for (const std::size_t idx : pending) {
            const bool dup = std::find(batch_vertices.begin(),
                                       batch_vertices.end(),
                                       sources[idx]) != batch_vertices.end();
            if (batch.size() < 64 && !dup) {
                batch.push_back(idx);
                batch_vertices.push_back(sources[idx]);
            } else {
                postponed.push_back(idx);
            }
        }
        pending = std::move(postponed);

        // Per-worker, per-lane accumulators; padded rows so workers
        // never share lines.
        struct Accum {
            std::uint64_t sum[64] = {};
            std::uint64_t count[64] = {};
        };
        std::vector<CachePadded<Accum>> accum(static_cast<std::size_t>(threads));

        MsBfsOptions ms;
        ms.threads = threads;
        ms.topology = options.topology;
        multi_source_bfs(
            g, batch_vertices,
            [&](int tid, level_t level, vertex_t, std::uint64_t mask) {
                Accum& a = accum[static_cast<std::size_t>(tid)].value;
                while (mask != 0) {
                    const int lane = __builtin_ctzll(mask);
                    mask &= mask - 1;
                    a.sum[lane] += level;
                    a.count[lane] += 1;
                }
            },
            ms);

        for (std::size_t lane = 0; lane < batch.size(); ++lane) {
            ClosenessScore& score = results[batch[lane]];
            for (const auto& a : accum) {
                score.distance_sum += a.value.sum[lane];
                score.reachable += a.value.count[lane];
            }
        }
    }
    return results;
}

}  // namespace sge
