#include "core/msbfs.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <memory>
#include <stdexcept>

#include "concurrency/spin_barrier.hpp"
#include "concurrency/thread_team.hpp"
#include "core/bfs_workspace.hpp"
#include "core/engine_common.hpp"
#include "graph/csr_compressed.hpp"
#include "graph/paged_graph.hpp"
#include "runtime/aligned_buffer.hpp"
#include "runtime/simd_scan.hpp"
#include "runtime/timer.hpp"

namespace sge {

namespace {

template <class Graph>
std::uint32_t multi_source_bfs_impl(const Graph& g,
                                    std::span<const vertex_t> sources,
                                    const MsBfsVisitor& visit,
                                    const MsBfsOptions& options) {
    const vertex_t n = g.num_vertices();
    if (sources.empty() || sources.size() > 64)
        throw std::invalid_argument(
            "multi_source_bfs: need 1..64 sources per batch");
    for (const vertex_t s : sources)
        if (s >= n) throw std::out_of_range("multi_source_bfs: source out of range");
    // Validate before entering the parallel region: a worker throwing
    // between barriers would strand its teammates.
    for (std::size_t i = 0; i < sources.size(); ++i)
        for (std::size_t j = i + 1; j < sources.size(); ++j)
            if (sources[i] == sources[j])
                throw std::invalid_argument(
                    "multi_source_bfs: duplicate source vertex");

    if (options.workspace != nullptr && options.team == nullptr)
        throw std::invalid_argument(
            "multi_source_bfs: workspace reuse requires an external team");

    // External team (query-throughput mode) or a per-call one.
    std::unique_ptr<ThreadTeam> owned_team;
    if (options.team == nullptr)
        owned_team = std::make_unique<ThreadTeam>(
            std::max(1, options.threads),
            options.topology ? *options.topology : Topology::detect());
    ThreadTeam& team = options.team != nullptr ? *options.team : *owned_team;
    const int threads = team.size();
    SpinBarrier barrier(threads);

    // seen: union of lanes that reached each vertex; frontier/next: the
    // lanes that reached it exactly this level / next level. Either
    // per-call buffers or the workspace's reusable lane arenas.
    BfsWorkspace* const ws = options.workspace;
    AlignedBuffer<std::atomic<std::uint64_t>> local_seen;
    AlignedBuffer<std::uint64_t> local_frontier;
    AlignedBuffer<std::atomic<std::uint64_t>> local_next;
    std::unique_ptr<WorkQueue> local_wq;

    // Degree-weighted scan scheduling: one cut of [0, n) up front (the
    // weights never change), cursors rewound each level by tid 0.
    // kStatic bypasses the queue entirely — fixed slices, the legacy
    // behaviour.
    const bool scheduled = options.schedule != SchedulePolicy::kStatic;
    // kCompact: word-at-a-time lane-mask sweeps (there are no enqueue
    // atomics to delete here — see MsBfsOptions::frontier_gen).
    const bool compact = options.frontier_gen == FrontierGen::kCompact;
    const simd::IsaLevel isa = simd::active_level();
    if (ws != nullptr) {
        // prepare_ms (re)allocates the lane buffers on shape change and
        // cuts/rewinds the dense-scan plan.
        ws->prepare_ms(g, options.schedule, team);
    } else {
        local_seen = AlignedBuffer<std::atomic<std::uint64_t>>(n);
        local_frontier = AlignedBuffer<std::uint64_t>(n);
        local_next = AlignedBuffer<std::atomic<std::uint64_t>>(n);
        local_wq =
            std::make_unique<WorkQueue>(threads, detail::team_socket_map(team));
        if (scheduled)
            detail::plan_vertex_range(
                *local_wq, n, g, options.schedule,
                detail::resolve_bottomup_chunk({}, n, threads));
    }
    std::atomic<std::uint64_t>* const seen =
        ws != nullptr ? ws->ms_seen.data() : local_seen.data();
    std::uint64_t* const frontier =
        ws != nullptr ? ws->ms_frontier.data() : local_frontier.data();
    std::atomic<std::uint64_t>* const next =
        ws != nullptr ? ws->ms_next.data() : local_next.data();
    WorkQueue& wq = ws != nullptr ? *ws->ms_wq : *local_wq;

    struct Shared {
        std::atomic<std::uint64_t> active{0};
        bool done = false;
        bool cancelled = false;  // written by tid 0 between barriers
        std::uint32_t levels = 0;
        std::atomic<std::uint64_t> settled{0};
    } shared;

    const bool collect =
        options.collect_stats && options.level_stats != nullptr;
    detail::LevelAccumLog local_stats;
    detail::LevelAccumLog& stats = ws != nullptr ? ws->accum : local_stats;
    detail::acquire_level_slot(stats, 0).frontier_size = sources.size();

    team.run([&](int tid) {
        // Parallel init.
        const std::size_t per = (n + threads - 1) / threads;
        const std::size_t begin = static_cast<std::size_t>(tid) * per;
        const std::size_t end = std::min<std::size_t>(begin + per, n);
        for (std::size_t v = begin; v < end; ++v) {
            seen[v].store(0, std::memory_order_relaxed);
            frontier[v] = 0;
            next[v].store(0, std::memory_order_relaxed);
        }
        if (!barrier.arrive_and_wait()) return;

        if (tid == 0) {
            for (std::size_t i = 0; i < sources.size(); ++i) {
                const std::uint64_t bit = 1ULL << i;
                const vertex_t s = sources[i];
                seen[s].store(bit, std::memory_order_relaxed);
                frontier[s] |= bit;
            }
        }
        if (!barrier.arrive_and_wait()) return;

        // Level-0 callbacks: each worker reports the sources in its slice.
        for (std::size_t v = begin; v < end; ++v)
            if (frontier[v] != 0)
                visit(tid, 0, static_cast<vertex_t>(v), frontier[v]);
        if (!barrier.arrive_and_wait()) return;

        level_t level = 0;
        WallTimer level_timer;  // tid 0 stamps per-level wall time
        for (;;) {
            detail::ThreadCounters counters;
            // Deque slots never relocate, so the reference stays valid
            // across tid 0's emplace_back between the barriers.
            detail::LevelAccum& slot = stats[level];

            // Scan: spread each frontier vertex's lanes to neighbours.
            std::uint64_t scan_words = 0;
            const auto scan_vertex = [&](std::size_t vi, std::uint64_t lanes) {
                detail::scan_adjacency(
                    g, static_cast<vertex_t>(vi), counters, [](vertex_t) {},
                    [&](vertex_t w) {
                        ++counters.bitmap_checks;
                        std::uint64_t propagate =
                            lanes & ~seen[w].load(std::memory_order_relaxed);
                        if (propagate == 0) {
                            // All lanes already reached w: the plain load
                            // filtered the fetch_or, same as the bitmap
                            // engine's double check.
                            counters.count_skip();
                            return;
                        }
                        ++counters.atomic_ops;
                        const std::uint64_t prev = seen[w].fetch_or(
                            propagate, std::memory_order_acq_rel);
                        propagate &= ~prev;  // lanes we actually won
                        if (propagate != 0) {
                            counters.count_win();
                            ++counters.atomic_ops;
                            next[w].fetch_or(propagate,
                                             std::memory_order_relaxed);
                        }
                    });
            };
            const auto scan_span = [&](std::size_t lo, std::size_t hi) {
                if (compact) {
                    // frontier[] is read-only during the scan phase, so
                    // empty lane masks are skipped a word block at a
                    // time instead of one load+branch per vertex.
                    simd::for_each_nonzero_u64(frontier, lo, hi, isa,
                                               scan_words, scan_vertex);
                } else {
                    for (std::size_t vi = lo; vi < hi; ++vi) {
                        const std::uint64_t lanes = frontier[vi];
                        if (lanes == 0) continue;
                        scan_vertex(vi, lanes);
                    }
                }
            };
            if (scheduled) {
                std::size_t lo = 0;
                std::size_t hi = 0;
                WorkQueue::Claim cl;
                while ((cl = wq.claim(tid, lo, hi)) != WorkQueue::Claim::kNone) {
                    counters.count_chunk(cl == WorkQueue::Claim::kStolen);
                    scan_span(lo, hi);
                }
            } else {
                scan_span(begin, end);
            }
            counters.count_simd_words(scan_words);
            counters.flush_into(slot);
            if (!detail::timed_wait(barrier, slot, collect)) return;

            // Swap + report: each worker publishes its slice of `next`.
            std::uint64_t local_active = 0;
            if (compact) {
                // The level barrier quiesced next[], so this worker's
                // slice block-copies into frontier[] and zeroes without
                // per-word atomics; the callbacks then ride the nonzero-
                // word sweep. (Counters were flushed above — swap-phase
                // words go straight to the level slot.)
                static_assert(sizeof(std::atomic<std::uint64_t>) ==
                                  sizeof(std::uint64_t),
                              "lane swap relies on lock-free layout");
                if (end > begin) {
                    std::memcpy(frontier + begin,
                                static_cast<const void*>(next + begin),
                                (end - begin) * sizeof(std::uint64_t));
                    std::memset(static_cast<void*>(next + begin), 0,
                                (end - begin) * sizeof(std::uint64_t));
                }
                std::uint64_t swap_words = 0;
                simd::for_each_nonzero_u64(
                    frontier, begin, end, isa, swap_words,
                    [&](std::size_t v, std::uint64_t lanes) {
                        ++local_active;
                        visit(tid, level + 1, static_cast<vertex_t>(v), lanes);
                    });
                detail::note_simd_words(slot, swap_words);
            } else {
                for (std::size_t v = begin; v < end; ++v) {
                    const std::uint64_t lanes =
                        next[v].load(std::memory_order_relaxed);
                    frontier[v] = lanes;
                    next[v].store(0, std::memory_order_relaxed);
                    if (lanes != 0) {
                        ++local_active;
                        visit(tid, level + 1, static_cast<vertex_t>(v), lanes);
                    }
                }
            }
            shared.active.fetch_add(local_active, std::memory_order_relaxed);
            if (!detail::timed_wait(barrier, slot, collect)) return;

            if (tid == 0) {
                slot.seconds = level_timer.seconds();
                level_timer.reset();
                const std::uint64_t active =
                    shared.active.load(std::memory_order_relaxed);
                shared.done = active == 0;
                shared.active.store(0, std::memory_order_relaxed);
                shared.settled.fetch_add(active, std::memory_order_relaxed);
                ++shared.levels;
                if (!shared.done && options.cancel != nullptr &&
                    options.cancel->poll()) {
                    shared.cancelled = true;
                    shared.done = true;
                }
                if (!shared.done) {
                    detail::acquire_level_slot(stats, level + 1).frontier_size =
                        active;
                    if (scheduled) wq.reset_cursors();
                }
            }
            if (!detail::timed_wait(barrier, slot, collect)) return;
            if (shared.done) break;
            ++level;
        }
    }, &barrier);

    if (shared.cancelled)
        detail::throw_cancelled(
            "multi_source_bfs", shared.levels,
            shared.settled.load(std::memory_order_relaxed));
    if (collect)
        detail::copy_level_stats(*options.level_stats, stats, shared.levels);
    return shared.levels;
}

}  // namespace

std::uint32_t multi_source_bfs(const CsrGraph& g,
                               std::span<const vertex_t> sources,
                               const MsBfsVisitor& visit,
                               const MsBfsOptions& options) {
    return multi_source_bfs_impl(g, sources, visit, options);
}

std::uint32_t multi_source_bfs(const CompressedCsrGraph& g,
                               std::span<const vertex_t> sources,
                               const MsBfsVisitor& visit,
                               const MsBfsOptions& options) {
    return multi_source_bfs_impl(g, sources, visit, options);
}

std::uint32_t multi_source_bfs(const PagedGraph& g,
                               std::span<const vertex_t> sources,
                               const MsBfsVisitor& visit,
                               const MsBfsOptions& options) {
    return multi_source_bfs_impl(g, sources, visit, options);
}

}  // namespace sge
