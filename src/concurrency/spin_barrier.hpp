#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

#include "concurrency/ticket_lock.hpp"
#include "runtime/cacheline.hpp"

namespace sge {

/// Centralized sense-reversing barrier for the level-synchronous BFS
/// ("Synchronize" in Algorithms 2 and 3).
///
/// A generation counter doubles as the sense: arrivals decrement a
/// count, the last arrival resets it and bumps the generation, everyone
/// else spins until the generation moves. The spin is bounded and falls
/// back to yield because emulated topologies oversubscribe the physical
/// CPUs (64 workers on this container's single core must not spin-wait
/// on each other).
class SpinBarrier {
  public:
    explicit SpinBarrier(int parties) noexcept
        : parties_(parties) {
        count_->store(parties, std::memory_order_relaxed);
    }

    SpinBarrier(const SpinBarrier&) = delete;
    SpinBarrier& operator=(const SpinBarrier&) = delete;

    void arrive_and_wait() noexcept {
        const std::uint64_t gen = generation_->load(std::memory_order_acquire);
        if (count_->fetch_sub(1, std::memory_order_acq_rel) == 1) {
            count_->store(parties_, std::memory_order_relaxed);
            generation_->fetch_add(1, std::memory_order_release);
            return;
        }
        int spins = 0;
        while (generation_->load(std::memory_order_acquire) == gen) {
            if (++spins < kSpinLimit) {
                TicketLock::cpu_pause();
            } else {
                std::this_thread::yield();
            }
        }
    }

    [[nodiscard]] int parties() const noexcept { return parties_; }

  private:
    static constexpr int kSpinLimit = 128;
    const int parties_;
    CachePadded<std::atomic<int>> count_{};
    CachePadded<std::atomic<std::uint64_t>> generation_{};
};

}  // namespace sge
